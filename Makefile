# Developer entry points. `make check` is what CI runs.

DUNE ?= dune
SMOKE_SCALE ?= 0.05

.PHONY: all build test bench-smoke check clean

all: build

build:
	$(DUNE) build @all

test: build
	$(DUNE) runtest

# Small-scale benchmark smoke in --json mode: exercises the traced
# scenario driver and the metrics plumbing end to end, then re-parses
# the BENCH_*.json output and enforces the DT message budget.
bench-smoke: build
	$(DUNE) exec bench/main.exe -- fig4 --scale $(SMOKE_SCALE) --json > /dev/null
	$(DUNE) exec bench/main.exe -- fig6 --scale $(SMOKE_SCALE) --json > /dev/null
	$(DUNE) exec tools/validate_bench.exe BENCH_fig4.json BENCH_fig6.json

check: build test bench-smoke
	@echo "check: OK"

clean:
	$(DUNE) clean
	rm -f BENCH_*.json
