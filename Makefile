# Developer entry points. `make check` is what CI runs.

DUNE ?= dune
SMOKE_SCALE ?= 0.05
# Pinned seeds for the deterministic crash-equivalence sweep; override
# with RTS_FAULT_SEEDS=a,b,c to explore other trajectories.
RTS_FAULT_SEEDS ?= 11,23,47
# Pinned seeds for the networked-DT equivalence sweep (drop/dup/reorder
# fault trajectories); override with RTS_NET_SEEDS=a,b,c.
RTS_NET_SEEDS ?= 7,19,101
# Pinned seeds for the sharded-ingestion equivalence sweep (merged
# output vs unsharded, all executors); override with RTS_SHARD_SEEDS=a,b,c.
RTS_SHARD_SEEDS ?= 5,17,91
# Pinned seeds for the combined-fault serving soak (simultaneous storage
# crash/short-write/ENOSPC plans and network drop/dup/reorder, verified
# against the WAL oracle); override with RTS_SERVE_SEEDS=a,b,c.
RTS_SERVE_SEEDS ?= 3,13,29
# Pinned seeds for the replicated-serving failover soak (primary kill /
# wedge under combined storage+network faults, promoted log verified
# against the fault-free oracle); override with RTS_REPLICA_SEEDS=a,b,c.
RTS_REPLICA_SEEDS ?= 2,11,23
# Pinned seeds for the approximate-tier equivalence sweep (crprecis and
# heavy maturity logs held to "late subset of the exact baseline" on
# paper-style scenarios); override with RTS_APPROX_SEEDS=a,b,c.
RTS_APPROX_SEEDS ?= 7,21,63

.PHONY: all build lint test bench-smoke bench-perf bench-alloc bench-shard \
        bench-par bench-approx diff-bench check check-fault check-net check-shard \
        check-serve check-replica check-approx clean

all: build

build:
	$(DUNE) build @all

# Fast formatting/type gate: builds every module (including ones not yet
# linked into an executable) without running anything. CI runs this first
# and fails fast before spending minutes on the test matrix.
lint:
	$(DUNE) build @check
	@echo "lint: OK"

test: build
	$(DUNE) runtest

# Small-scale benchmark smoke in --json mode: exercises the traced
# scenario driver and the metrics plumbing end to end, then re-parses
# the BENCH_*.json output and enforces the DT message budget.
bench-smoke: build
	$(DUNE) exec bench/main.exe -- fig4 --scale $(SMOKE_SCALE) --json > /dev/null
	$(DUNE) exec bench/main.exe -- fig6 --scale $(SMOKE_SCALE) --json > /dev/null
	$(DUNE) exec tools/validate_bench.exe BENCH_fig4.json BENCH_fig6.json

# Perf smoke: run the batched-ingestion benchmark at the smoke scale
# (deterministic work counters for a pinned seed), then hold the
# BENCH_perf.json output to the checked-in budgets. Wall clock is
# reported but NOT gated -- only work-counter regressions fail the job.
bench-perf: build
	$(DUNE) exec bench/main.exe -- perf --scale $(SMOKE_SCALE) --reps 3 --json > /dev/null
	$(DUNE) exec tools/validate_bench.exe -- --perf-budgets tools/perf_budgets.json BENCH_perf.json

# Allocation gate: the same perf run, held to BOTH budget sets -- the
# work counters AND the zero-allocation contract of the DT hot path
# (allocated_words_per_element = 0 at every batch size, no tolerance:
# Rts_obs.Alloc calibrates out its own bracket overhead, so a genuinely
# allocation-free feed reports exactly 0 on every compiler leg). A
# single boxed float argument or stray closure on the feed path fails
# this target.
bench-alloc: build
	$(DUNE) exec bench/main.exe -- perf --scale $(SMOKE_SCALE) --reps 3 --json > /dev/null
	$(DUNE) exec tools/validate_bench.exe -- \
	  --perf-budgets tools/perf_budgets.json \
	  --alloc-budgets tools/alloc_budgets.json BENCH_perf.json

# Shard smoke: run the sharded-ingestion benchmark (k = 1/2/4/8 curve,
# maturity log asserted bit-identical to the unsharded reference inside
# the bench itself), then hold BENCH_shard.json to the checked-in
# per-(engine, k) work-counter budgets. Counters are executor-invariant:
# seq and domains executors do identical work, so the same budgets gate
# both CI legs. Wall clock (and hence speedup) is informational only --
# a single-core runner cannot show parallel speedups at all.
bench-shard: build
	$(DUNE) exec bench/main.exe -- shard --scale $(SMOKE_SCALE) --reps 3 --json > /dev/null
	$(DUNE) exec tools/validate_bench.exe -- --shard-budgets tools/shard_budgets.json BENCH_shard.json

# Parallel-ingestion smoke: the element-partitioned sweep (k = 1/2/4/8,
# Domains executor, maturity log asserted bit-identical to the unsharded
# reference inside the bench itself). The bench REFUSES to emit JSON on
# a host with fewer than 2 usable cores (an honest single-core "speedup"
# curve is noise), so this target validates BENCH_par.json when it
# appears and reports the refusal otherwise. RTS_PAR_CORES=N overrides
# core detection (CI uses it to exercise the guard deterministically).
bench-par: build
	rm -f BENCH_par.json
	$(DUNE) exec bench/main.exe -- par --scale $(SMOKE_SCALE) --reps 3 --json > /dev/null
	@if [ -f BENCH_par.json ]; then \
	  $(DUNE) exec tools/validate_bench.exe -- --shard-budgets tools/par_budgets.json BENCH_par.json; \
	else \
	  echo "bench-par: skipped (fewer than 2 cores available -- no JSON emitted)"; \
	fi

# Approximate-tier bench smoke: sketch footprint, certified error vs a
# brute-force exact scan, never-early + top-n parity verdicts (the bench
# aborts before emitting JSON if either fails), held to the checked-in
# per-engine budgets. Everything gated is deterministic per (scale,
# seed) — the sketches use no hash families — so the budgets carry no
# tolerance band, and approx_bound_violations must be exactly 0.
bench-approx: build
	$(DUNE) exec bench/main.exe -- approx --scale $(SMOKE_SCALE) --reps 3 --json > /dev/null
	$(DUNE) exec tools/validate_bench.exe -- --approx-budgets tools/approx_budgets.json BENCH_approx.json

# Approximate-tier suite on its own: qcheck certified-bound containment
# and never-early properties against brute-force references, top-n
# threshold-search exactness, and the pinned-seed scenario sweep (every
# approximate maturity also matures in the exact baseline, no earlier),
# then the bench-approx budget gate. CI runs this as a separate job on
# both compiler legs.
check-approx: build
	RTS_APPROX_SEEDS=$(RTS_APPROX_SEEDS) $(DUNE) exec test/test_approx.exe
	$(MAKE) bench-approx
	@echo "check-approx: OK"

# Bench-budget drift report: for every budgeted work counter, print a
# markdown delta table (budget / actual / headroom / drift) so a counter
# creeping toward its ceiling is visible long before it trips the gate.
# Exits 1 if any counter is OVER budget; LOOSE rows (actual < 50% of
# budget) are informational hints to tighten the budget. Requires
# BENCH_perf.json and BENCH_shard.json (run bench-perf / bench-shard
# first, or let this target produce them). BENCH_par.json joins the
# table when the host could produce it (>= 2 cores).
diff-bench: bench-perf bench-shard bench-par bench-approx
	$(DUNE) exec tools/diff_bench.exe -- \
	  --budgets tools/perf_budgets.json BENCH_perf.json \
	  --budgets tools/alloc_budgets.json BENCH_perf.json \
	  --budgets tools/shard_budgets.json BENCH_shard.json \
	  --budgets tools/approx_budgets.json BENCH_approx.json \
	  $(if $(wildcard BENCH_par.json),--budgets tools/par_budgets.json BENCH_par.json,)

# Fault-injection suite on its own: crash the durable engine at every op
# boundary (torn writes, bit flips, corrupt checkpoints) for the pinned
# seeds and assert the recovered maturity log is bit-identical to an
# uninterrupted run. CI runs this as a separate job.
check-fault: build
	RTS_FAULT_SEEDS=$(RTS_FAULT_SEEDS) $(DUNE) exec test/test_resilience.exe
	@echo "check-fault: OK"

# Networked-DT suite on its own: zero-fault parity, maturity-ordinal
# equivalence under lossy/reordering/duplicating links, the exhaustive
# drop-of-every-envelope-kind sweep and degradation behaviour, for the
# pinned seeds; then a bench net --json smoke whose net_* fields are
# re-validated. CI runs this as a separate job.
check-net: build
	RTS_NET_SEEDS=$(RTS_NET_SEEDS) $(DUNE) exec test/test_net.exe
	$(DUNE) exec bench/main.exe -- net --scale $(SMOKE_SCALE) --json > /dev/null
	$(DUNE) exec tools/validate_bench.exe BENCH_net.json
	@echo "check-net: OK"

# Sharded-ingestion suite on its own: rendezvous-hash properties, the
# executor pool contract, randomized step-by-step equivalence episodes,
# and the pinned-seed scenario sweep (k in {1,2,4}, every engine, both
# executors where the toolchain provides Domains) asserting the merged
# maturity log is verbatim-identical to the unsharded run. CI runs this
# as a separate job on both the 4.14 (seq) and 5.x (domains) legs.
check-shard: build
	RTS_SHARD_SEEDS=$(RTS_SHARD_SEEDS) $(DUNE) exec test/test_shard.exe
	@echo "check-shard: OK"

# Serving suite on its own: frame codec, typed admission refusals,
# backpressure, watchdog wedge recovery, and the combined-fault soak
# (storage faults + net faults at once) for the pinned seeds, asserting
# the maturity stream every subscriber saw is bit-identical to the WAL
# oracle — exactly once, never early, across every crash and restart.
# Then one soak through the real rts-serve binary for an end-to-end
# smoke. CI runs this as a separate job on both compiler legs.
check-serve: build
	RTS_SERVE_SEEDS=$(RTS_SERVE_SEEDS) $(DUNE) exec test/test_serve.exe
	$(DUNE) exec bin/rts_serve.exe -- soak --seed 3 --quiet
	@echo "check-serve: OK"

# Replicated-serving suite on its own: rep codec, clean replication,
# kill/wedge failover with zombie fencing, and the pinned-seed replica
# soak — the promoted node's merged maturity log (archived segments +
# surviving chain) must be bit-identical to the fault-free oracle, with
# WAL disk bounded by segment pruning below the replication ack floor.
# Then two failover soaks through the real rts-serve binary under
# aggressive segment rotation (the rotation stress leg). CI runs this
# as a separate job on both compiler legs.
check-replica: build
	RTS_REPLICA_SEEDS=$(RTS_REPLICA_SEEDS) $(DUNE) exec test/test_replica.exe
	$(DUNE) exec bin/rts_serve.exe -- failover-soak --seed 3 \
	  --segment-records 16 --checkpoint-every 43 --quiet
	$(DUNE) exec bin/rts_serve.exe -- failover-soak --seed 7 --scenario wedge \
	  --segment-records 16 --quiet
	@echo "check-replica: OK"

check: build test bench-smoke
	@echo "check: OK"

clean:
	$(DUNE) clean
	rm -f BENCH_*.json
