# Developer entry points. `make check` is what CI runs.

DUNE ?= dune
SMOKE_SCALE ?= 0.05
# Pinned seeds for the deterministic crash-equivalence sweep; override
# with RTS_FAULT_SEEDS=a,b,c to explore other trajectories.
RTS_FAULT_SEEDS ?= 11,23,47
# Pinned seeds for the networked-DT equivalence sweep (drop/dup/reorder
# fault trajectories); override with RTS_NET_SEEDS=a,b,c.
RTS_NET_SEEDS ?= 7,19,101

.PHONY: all build test bench-smoke bench-perf check check-fault check-net clean

all: build

build:
	$(DUNE) build @all

test: build
	$(DUNE) runtest

# Small-scale benchmark smoke in --json mode: exercises the traced
# scenario driver and the metrics plumbing end to end, then re-parses
# the BENCH_*.json output and enforces the DT message budget.
bench-smoke: build
	$(DUNE) exec bench/main.exe -- fig4 --scale $(SMOKE_SCALE) --json > /dev/null
	$(DUNE) exec bench/main.exe -- fig6 --scale $(SMOKE_SCALE) --json > /dev/null
	$(DUNE) exec tools/validate_bench.exe BENCH_fig4.json BENCH_fig6.json

# Perf smoke: run the batched-ingestion benchmark at the smoke scale
# (deterministic work counters for a pinned seed), then hold the
# BENCH_perf.json output to the checked-in budgets. Wall clock is
# reported but NOT gated -- only work-counter regressions fail the job.
bench-perf: build
	$(DUNE) exec bench/main.exe -- perf --scale $(SMOKE_SCALE) --reps 3 --json > /dev/null
	$(DUNE) exec tools/validate_bench.exe -- --perf-budgets tools/perf_budgets.json BENCH_perf.json

# Fault-injection suite on its own: crash the durable engine at every op
# boundary (torn writes, bit flips, corrupt checkpoints) for the pinned
# seeds and assert the recovered maturity log is bit-identical to an
# uninterrupted run. CI runs this as a separate job.
check-fault: build
	RTS_FAULT_SEEDS=$(RTS_FAULT_SEEDS) $(DUNE) exec test/test_resilience.exe
	@echo "check-fault: OK"

# Networked-DT suite on its own: zero-fault parity, maturity-ordinal
# equivalence under lossy/reordering/duplicating links, the exhaustive
# drop-of-every-envelope-kind sweep and degradation behaviour, for the
# pinned seeds; then a bench net --json smoke whose net_* fields are
# re-validated. CI runs this as a separate job.
check-net: build
	RTS_NET_SEEDS=$(RTS_NET_SEEDS) $(DUNE) exec test/test_net.exe
	$(DUNE) exec bench/main.exe -- net --scale $(SMOKE_SCALE) --json > /dev/null
	$(DUNE) exec tools/validate_bench.exe BENCH_net.json
	@echo "check-net: OK"

check: build test bench-smoke
	@echo "check: OK"

clean:
	$(DUNE) clean
	rm -f BENCH_*.json
