examples/quickstart.mli:
