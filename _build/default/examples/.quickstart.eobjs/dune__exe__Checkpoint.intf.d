examples/checkpoint.mli:
