examples/pubsub.ml: Float Printf Rts_core Rts_structures Rts_util
