examples/pubsub.mli:
