examples/index_monitor.ml: Float List Printf Rts_core Rts_util
