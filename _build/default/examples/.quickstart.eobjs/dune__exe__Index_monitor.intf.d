examples/index_monitor.mli:
