examples/stock_alerts.ml: Array Baseline_engine Float List Printf Rts_core Rts_util Types
