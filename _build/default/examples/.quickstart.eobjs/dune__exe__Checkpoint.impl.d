examples/checkpoint.ml: List Printf Rts_core Rts_util String
