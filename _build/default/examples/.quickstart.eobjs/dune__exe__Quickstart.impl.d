examples/quickstart.ml: List Option Printf Rts_core
