(* Two-dimensional triggers — the paper's second introductory example.

   "Alert me when 100,000 shares of AAPL have been sold by transactions e
    satisfying: the selling price of e is in [100, 105], AND when e takes
    place the NASDAQ index is at 4,600 or lower."

   Each stream element is the point (price, nasdaq) with weight = shares;
   each trigger is a rectangle — here [100,105] x (-inf, 4600] — which the
   engine handles natively: one-sided ranges are rectangles with infinite
   bounds. We lay a grid of such conditioned triggers over the
   (price, index) plane and stream a correlated simulation through them.

     dune exec examples/index_monitor.exe                                 *)

module Rts = Rts_core.Rts
module Prng = Rts_util.Prng

let () =
  let rng = Prng.create ~seed:11 in
  let monitor = Rts.create ~dim:2 () in

  (* The verbatim query from the paper's introduction. *)
  let paper_query =
    Rts.subscribe monitor ~label:"paper: [100,105] x (-inf,4600]"
      ~on_mature:(fun s -> Printf.printf ">>> %s\n" (Rts.describe s))
      (Rts.box [| (100., 105.); (neg_infinity, 4600.) |])
      ~threshold:100_000
  in

  (* A sheet of conditioned triggers: price bands crossed with index
     regimes ("only count volume while the market is depressed/elevated"). *)
  let regimes = [ ("bear", neg_infinity, 4500.); ("flat", 4450., 4750.); ("bull", 4700., infinity) ] in
  List.iter
    (fun (regime, ilo, ihi) ->
      for band = 0 to 19 do
        let plo = 95. +. float_of_int band in
        ignore
          (Rts.subscribe monitor
             ~label:(Printf.sprintf "%s: price [%.0f,%.0f]" regime plo (plo +. 2.))
             ~on_mature:(fun s -> Printf.printf "    alert: %s\n" (Rts.describe s))
             (Rts.box [| (plo, plo +. 2.); (ilo, ihi) |])
             ~threshold:400_000)
      done)
    regimes;
  Printf.printf "monitoring %d two-dimensional triggers\n\n" (Rts.live_count monitor);

  (* Correlated simulation: the index drifts; price follows the index with
     idiosyncratic noise; volume spikes when the index falls fast. *)
  let index = ref 4650. and price = ref 104. and momentum = ref 0. in
  for tick = 1 to 300_000 do
    momentum := (0.995 *. !momentum) +. Prng.gaussian rng ~mean:0. ~stddev:0.15;
    index := Float.max 4300. (Float.min 5000. (!index +. !momentum));
    let coupling = (!index -. 4650.) *. 0.002 in
    price :=
      Float.max 90. (Float.min 120. (!price +. coupling +. Prng.gaussian rng ~mean:0. ~stddev:0.04));
    let panic = if !momentum < -0.3 then 3. else 1. in
    let shares = max 1 (int_of_float (panic *. exp (Prng.gaussian rng ~mean:5.0 ~stddev:0.7))) in
    let matured = Rts.feed monitor ~weight:shares [| !price; !index |] in
    List.iter
      (fun s ->
        if Rts.id s = Rts.id paper_query then
          Printf.printf "(fired at tick %d, index %.0f, price %.2f)\n" tick !index !price)
      matured
  done;

  Printf.printf "\nend of stream: %d alerts fired, %d still live\n" (Rts.matured_count monitor)
    (Rts.live_count monitor);
  if Rts.status paper_query = `Live then
    Printf.printf "the paper's query accumulated %d of %d shares\n"
      (Rts.progress monitor paper_query)
      (Rts.threshold paper_query)
