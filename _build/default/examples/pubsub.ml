(* Publish/subscribe churn — RTS as a subscription trigger (Section 3.3).

   A pub/sub system carries a firehose of items, each scored along one
   dimension (say, a relevance score). Users subscribe to "tell me when
   enough traffic lands in my score range"; subscriptions arrive and are
   cancelled continuously — the paper's Scenario 2 dynamism. This example
   drives the engine with a fixed load of live subscriptions (every
   departure replaced immediately) and prints a running summary, showing
   the REGISTER / TERMINATE path of the logarithmic method at work.

     dune exec examples/pubsub.exe                                        *)

module Rts = Rts_core.Rts
module Prng = Rts_util.Prng
module Handle_heap = Rts_structures.Handle_heap

let live_target = 2_000

let ticks = 150_000

let () =
  let rng = Prng.create ~seed:23 in
  let monitor = Rts.create ~dim:1 () in
  (* expiry queue: subscriptions auto-cancel after a random TTL *)
  let expiries = Handle_heap.create ~leq:(fun (a, _) (b, _) -> a <= b) () in
  let fired = ref 0 and cancelled = ref 0 and created = ref 0 in

  let new_subscription now =
    (* score ranges cluster around "interesting" scores, as user interests do *)
    let center = Float.min 99. (Float.max 1. (Prng.gaussian rng ~mean:50. ~stddev:20.)) in
    let width = 2. +. Prng.float rng 10. in
    let lo = Float.max 0. (center -. width) and hi = Float.min 100. (center +. width) in
    let threshold = 5_000 * (1 + Prng.int rng 20) in
    let s =
      Rts.subscribe monitor
        ~label:(Printf.sprintf "scores [%.1f, %.1f]" lo hi)
        ~on_mature:(fun _ -> incr fired)
        (Rts.interval ~lo ~hi) ~threshold
    in
    incr created;
    let ttl = 2_000 + Prng.int rng 40_000 in
    ignore (Handle_heap.push expiries (now + ttl, s))
  in

  for _ = 1 to live_target do
    new_subscription 0
  done;

  for now = 1 to ticks do
    (* expire due subscriptions (they may have matured already) *)
    let rec expire () =
      match Handle_heap.peek expiries with
      | Some (t, s) when t <= now ->
          ignore (Handle_heap.pop expiries);
          if Rts.status s = `Live then begin
            Rts.cancel monitor s;
            incr cancelled
          end;
          expire ()
      | _ -> ()
    in
    expire ();
    (* one published item: score skewed toward the hot center *)
    let score = Float.min 100. (Float.max 0. (Prng.gaussian rng ~mean:50. ~stddev:25.)) in
    let weight = 1 + Prng.int rng 100 in
    ignore (Rts.feed monitor ~weight [| score |]);
    (* fixed load: replace departures immediately *)
    while Rts.live_count monitor < live_target do
      new_subscription now
    done;
    if now mod 25_000 = 0 then
      Printf.printf "tick %6d: %d live, %d created, %d fired, %d cancelled\n%!" now
        (Rts.live_count monitor) !created !fired !cancelled
  done;

  Printf.printf "\nfinal: %d subscriptions served (%d fired, %d cancelled, %d live)\n" !created
    !fired !cancelled (Rts.live_count monitor);
  assert (!created = !fired + !cancelled + Rts.live_count monitor)
