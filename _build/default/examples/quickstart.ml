(* Quickstart: the smallest possible RTS program.

   Register a couple of 1D range-threshold triggers, feed a handful of
   weighted stream elements, and watch the alerts fire exactly when the
   accumulated weight in the range crosses the threshold.

     dune exec examples/quickstart.exe                                   *)

module Rts = Rts_core.Rts

let () =
  let monitor = Rts.create ~dim:1 () in

  (* "Alert me when 250 units have landed in [10, 20]." *)
  let a =
    Rts.subscribe monitor ~label:"hot range [10,20]"
      ~on_mature:(fun s -> Printf.printf ">>> ALERT: %s\n" (Rts.describe s))
      (Rts.interval ~lo:10. ~hi:20.)
      ~threshold:250
  in
  (* A second, overlapping trigger with a smaller threshold. *)
  let b =
    Rts.subscribe monitor ~label:"warm range [15,30]"
      ~on_mature:(fun s -> Printf.printf ">>> ALERT: %s\n" (Rts.describe s))
      (Rts.interval ~lo:15. ~hi:30.)
      ~threshold:100
  in

  let stream = [ (12., 80); (25., 60); (18., 90); (5., 500); (16., 70); (11., 40) ] in
  List.iter
    (fun (value, weight) ->
      Printf.printf "element value=%.0f weight=%d\n" value weight;
      let matured = Rts.feed monitor ~weight [| value |] in
      if matured = [] then
        Printf.printf "    progress: %s=%d/%d  %s=%d/%d\n"
          (Option.get (Rts.label a)) (Rts.progress monitor a) (Rts.threshold a)
          (Option.get (Rts.label b))
          (if Rts.status b = `Live then Rts.progress monitor b else Rts.threshold b)
          (Rts.threshold b))
    stream;

  Printf.printf "done: %d alert(s) fired, %d trigger(s) still live\n"
    (Rts.matured_count monitor) (Rts.live_count monitor)
