(* Stock alerts — the paper's motivating scenario (Section 1).

   A fund manager watches trading volume inside sensitive price bands:

     "Alert me when 100,000 shares of AAPL have been sold in the price
      range [100, 105] from now."

   We simulate a day of AAPL trades (price = mean-reverting random walk,
   trade size = rounded log-normal), register a few hundred such band
   triggers, and stream the trades through the paper's DT engine. At the
   end we replay the same day against the naive baseline to show both that
   the alerts agree exactly and how the processing costs compare.

     dune exec examples/stock_alerts.exe                                  *)

module Rts = Rts_core.Rts
module Prng = Rts_util.Prng
module Timer = Rts_util.Timer
open Rts_core

type trade = { price : float; shares : int }

let simulate_day rng ~trades =
  let price = ref 102.5 in
  Array.init trades (fun _ ->
      (* mean-reverting walk around 102.5 with occasional jumps *)
      let pull = (102.5 -. !price) *. 0.001 in
      let noise = Prng.gaussian rng ~mean:0. ~stddev:0.05 in
      let jump = if Prng.bernoulli rng 0.001 then Prng.gaussian rng ~mean:0. ~stddev:1.5 else 0. in
      price := Float.max 80. (Float.min 125. (!price +. pull +. noise +. jump));
      let shares =
        let z = Prng.gaussian rng ~mean:5.5 ~stddev:0.8 in
        max 1 (int_of_float (exp z))
      in
      { price = !price; shares })

(* Price bands of interest: $2-wide bands laid over [90, 115], at several
   volume thresholds — the kind of alert sheet a trading desk maintains. *)
let band_specs =
  List.concat_map
    (fun threshold ->
      List.init 50 (fun i ->
          let lo = 90. +. (0.5 *. float_of_int i) in
          (lo, lo +. 2., threshold)))
    [ 100_000; 250_000; 500_000 ]

let () =
  let rng = Prng.create ~seed:7 in
  let trades = simulate_day rng ~trades:200_000 in
  Printf.printf "simulated %d trades, %.1fM shares total\n" (Array.length trades)
    (float_of_int (Array.fold_left (fun acc t -> acc + t.shares) 0 trades) /. 1e6);

  (* --- the paper's engine, via the high-level monitor API --- *)
  let monitor = Rts.create ~dim:1 () in
  let alerts = ref [] in
  List.iter
    (fun (lo, hi, threshold) ->
      ignore
        (Rts.subscribe monitor
           ~label:(Printf.sprintf "%dk shares in [%.1f, %.1f]" (threshold / 1000) lo hi)
           ~on_mature:(fun s -> alerts := Rts.describe s :: !alerts)
           (Rts.interval ~lo ~hi) ~threshold))
    band_specs;
  Printf.printf "registered %d band triggers\n\n" (Rts.live_count monitor);

  let (), dt_time =
    Timer.time (fun () ->
        Array.iter (fun t -> ignore (Rts.feed monitor ~weight:t.shares [| t.price |])) trades)
  in
  let dt_alerts = List.rev !alerts in
  Printf.printf "first alerts of the day:\n";
  List.iteri (fun i a -> if i < 8 then Printf.printf "  %s\n" a) dt_alerts;
  Printf.printf "  ... %d alerts in total\n\n" (List.length dt_alerts);

  (* --- same day against the O(nm) baseline: agreement + cost --- *)
  let oracle = Baseline_engine.create ~dim:1 () in
  List.iteri
    (fun id (lo, hi, threshold) ->
      Baseline_engine.register oracle { Types.id; rect = Types.interval_closed lo hi; threshold })
    band_specs;
  let baseline_matured = ref 0 in
  let (), base_time =
    Timer.time (fun () ->
        Array.iter
          (fun t ->
            let m = Baseline_engine.process oracle { Types.value = [| t.price |]; weight = t.shares } in
            baseline_matured := !baseline_matured + List.length m)
          trades)
  in
  assert (!baseline_matured = List.length dt_alerts);
  Printf.printf "engines agree: %d alerts from both\n" !baseline_matured;
  Printf.printf "stream processing time: dt=%.3fs baseline=%.3fs (%.1fx)\n" dt_time base_time
    (base_time /. dt_time);
  Printf.printf "(the gap widens with the number of registered triggers: Figure 4 of the paper)\n"
