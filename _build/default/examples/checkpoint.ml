(* Checkpoint and resume — operational persistence for long-lived monitors.

   A production trigger service cannot lose subscription progress on
   restart. This example runs a monitor halfway through a stream, takes a
   snapshot (a plain printable string), "crashes", restores a new monitor
   from the snapshot, and shows that the restored monitor fires the exact
   same alerts at the exact same stream positions as an uninterrupted one.

     dune exec examples/checkpoint.exe                                    *)

module Rts = Rts_core.Rts
module Prng = Rts_util.Prng

let () =
  let rng = Prng.create ~seed:99 in
  let mk_monitor () =
    let m = Rts.create ~dim:1 () in
    for i = 0 to 199 do
      let lo = float_of_int (Prng.int (Prng.create ~seed:i) 900) in
      ignore
        (Rts.subscribe m
           ~label:(Printf.sprintf "zone-%03d" i)
           (Rts.interval ~lo ~hi:(lo +. 100.))
           ~threshold:26_000)
    done;
    m
  in
  let uninterrupted = mk_monitor () in
  let service = mk_monitor () in

  let element () =
    (Prng.float rng 1000., 1 + Prng.int rng 100)
  in

  (* Phase 1: both monitors see the same first half of the stream. *)
  let alerts_a = ref [] and alerts_b = ref [] in
  for tick = 1 to 5_000 do
    let x, w = element () in
    List.iter (fun s -> alerts_a := (tick, Rts.id s) :: !alerts_a)
      (Rts.feed uninterrupted ~weight:w [| x |]);
    List.iter (fun s -> alerts_b := (tick, Rts.id s) :: !alerts_b)
      (Rts.feed service ~weight:w [| x |])
  done;
  Printf.printf "phase 1: %d alerts from both monitors\n" (List.length !alerts_a);

  (* Checkpoint the service and "crash" it. *)
  let snapshot = Rts.snapshot service in
  Printf.printf "checkpoint: %d live subscriptions serialized to %d bytes\n"
    (Rts.live_count service) (String.length snapshot);
  let restored =
    Rts.restore ~on_mature:(fun s -> Printf.printf "  restored monitor fired: %s\n" (Rts.describe s))
      snapshot
  in
  Printf.printf "restored: %d subscriptions live again\n\n" (Rts.live_count restored);

  (* Phase 2: the uninterrupted monitor and the restored one see the same
     second half; alerts must coincide exactly. *)
  let mismatches = ref 0 and fired = ref 0 in
  for tick = 5_001 to 10_000 do
    let x, w = element () in
    let a = List.map Rts.id (Rts.feed uninterrupted ~weight:w [| x |]) in
    let b = List.map Rts.id (Rts.feed restored ~weight:w [| x |]) in
    if a <> b then incr mismatches;
    fired := !fired + List.length a;
    ignore tick
  done;
  Printf.printf "\nphase 2: %d more alerts; %d mismatches between uninterrupted and restored\n"
    !fired !mismatches;
  assert (!mismatches = 0);
  Printf.printf "resume was exact: restart lost nothing.\n"
