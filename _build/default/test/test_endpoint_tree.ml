(* Endpoint_tree: canonical-set structure (fanout bounds), exact counter
   semantics, DT telemetry bounds (the in-tree analogue of the
   O(h log tau) message bound), removal, and weight accounting — the
   building block underneath Dt_engine. *)

open Rts_core
module Prng = Rts_util.Prng

let q ~id ~threshold bounds = { Types.id; rect = Types.rect_make bounds; threshold }

let elem1 x w = { Types.value = [| x |]; weight = w }

let build1 ?(on_mature = fun _ -> ()) batch = Endpoint_tree.build ~dim:1 ~on_mature batch

let test_empty_tree () =
  let t = build1 [] in
  Alcotest.(check int) "alive" 0 (Endpoint_tree.alive_count t);
  Endpoint_tree.process t (elem1 5. 1);
  Alcotest.(check int) "still empty" 0 (Endpoint_tree.alive_count t)

let test_single_query_basic () =
  let matured = ref [] in
  let t =
    build1 ~on_mature:(fun id -> matured := id :: !matured)
      [ (q ~id:7 ~threshold:3 [| (10., 20.) |], 3) ]
  in
  Alcotest.(check int) "W=0" 0 (Endpoint_tree.current_weight t 7);
  Endpoint_tree.process t (elem1 15. 1);
  Alcotest.(check int) "W=1" 1 (Endpoint_tree.current_weight t 7);
  Endpoint_tree.process t (elem1 9.9 1);
  (* below range *)
  Endpoint_tree.process t (elem1 20. 1);
  (* right endpoint excluded *)
  Alcotest.(check int) "W still 1" 1 (Endpoint_tree.current_weight t 7);
  Endpoint_tree.process t (elem1 10. 1);
  (* left endpoint included *)
  Alcotest.(check int) "W=2" 2 (Endpoint_tree.current_weight t 7);
  Alcotest.(check (list int)) "not yet" [] !matured;
  Endpoint_tree.process t (elem1 19.999 1);
  Alcotest.(check (list int)) "matured" [ 7 ] !matured;
  Alcotest.(check int) "alive" 0 (Endpoint_tree.alive_count t);
  Alcotest.(check bool) "no longer alive" false (Endpoint_tree.is_alive t 7)

let test_maturity_exact_with_weights () =
  (* Crossing, not landing: threshold 10, weights 4+4+4 -> maturity on the
     third element. *)
  let matured = ref [] in
  let t =
    build1 ~on_mature:(fun id -> matured := id :: !matured)
      [ (q ~id:1 ~threshold:10 [| (0., 1.) |], 10) ]
  in
  Endpoint_tree.process t (elem1 0.5 4);
  Endpoint_tree.process t (elem1 0.5 4);
  Alcotest.(check (list int)) "8 < 10" [] !matured;
  Endpoint_tree.process t (elem1 0.5 4);
  Alcotest.(check (list int)) "12 >= 10" [ 1 ] !matured

let test_shared_endpoints () =
  (* Queries sharing endpoints exercise canonical-set sharing (Q(u)). *)
  let matured = ref [] in
  let batch =
    [
      (q ~id:1 ~threshold:2 [| (0., 10.) |], 2);
      (q ~id:2 ~threshold:2 [| (0., 10.) |], 2);
      (q ~id:3 ~threshold:2 [| (5., 10.) |], 2);
      (q ~id:4 ~threshold:2 [| (0., 5.) |], 2);
    ]
  in
  let t = build1 ~on_mature:(fun id -> matured := id :: !matured) batch in
  Endpoint_tree.process t (elem1 7. 1);
  Endpoint_tree.process t (elem1 2. 1);
  (* ids 1 and 2 have seen 2; ids 3 and 4 have seen 1 each *)
  Alcotest.(check (list int)) "1,2 matured" [ 1; 2 ] (List.sort compare !matured);
  Alcotest.(check int) "W(3)" 1 (Endpoint_tree.current_weight t 3);
  Alcotest.(check int) "W(4)" 1 (Endpoint_tree.current_weight t 4)

let test_remove () =
  let t = build1 [ (q ~id:1 ~threshold:5 [| (0., 10.) |], 5); (q ~id:2 ~threshold:5 [| (0., 10.) |], 5) ] in
  Endpoint_tree.remove t 1;
  Alcotest.(check int) "alive" 1 (Endpoint_tree.alive_count t);
  Alcotest.check_raises "double remove" Not_found (fun () -> Endpoint_tree.remove t 1);
  Alcotest.check_raises "weight of removed" Not_found (fun () ->
      ignore (Endpoint_tree.current_weight t 1));
  (* removed query must not mature *)
  let matured = ref [] in
  let t2 =
    build1 ~on_mature:(fun id -> matured := id :: !matured)
      [ (q ~id:1 ~threshold:1 [| (0., 10.) |], 1); (q ~id:2 ~threshold:2 [| (0., 10.) |], 2) ]
  in
  Endpoint_tree.remove t2 1;
  Endpoint_tree.process t2 (elem1 5. 1);
  Endpoint_tree.process t2 (elem1 5. 1);
  Alcotest.(check (list int)) "only 2" [ 2 ] !matured

let test_remaining () =
  let t = build1 [ (q ~id:1 ~threshold:10 [| (0., 10.) |], 10) ] in
  Endpoint_tree.process t (elem1 5. 3);
  Alcotest.(check int) "remaining" 7 (Endpoint_tree.remaining t 1);
  Alcotest.(check int) "weight" 3 (Endpoint_tree.current_weight t 1)

let test_alive_queries_snapshot () =
  let t =
    build1
      [ (q ~id:1 ~threshold:10 [| (0., 10.) |], 10); (q ~id:2 ~threshold:20 [| (5., 15.) |], 20) ]
  in
  Endpoint_tree.process t (elem1 7. 4);
  let snap = List.sort compare (Endpoint_tree.alive_queries t) in
  match snap with
  | [ (q1, r1); (q2, r2) ] ->
      Alcotest.(check int) "q1 id" 1 q1.Types.id;
      Alcotest.(check int) "q1 remaining" 6 r1;
      Alcotest.(check int) "q2 id" 2 q2.Types.id;
      Alcotest.(check int) "q2 remaining" 16 r2
  | _ -> Alcotest.fail "expected two alive queries"

let test_migration_semantics () =
  (* Rebuilding a tree from alive_queries must preserve exact maturity:
     the remaining thresholds "carry" the accumulated weight. *)
  let matured = ref [] in
  let t1 = build1 [ (q ~id:1 ~threshold:10 [| (0., 10.) |], 10) ] in
  Endpoint_tree.process t1 (elem1 5. 6);
  let batch = Endpoint_tree.alive_queries t1 in
  let t2 = Endpoint_tree.build ~dim:1 ~on_mature:(fun id -> matured := id :: !matured) batch in
  Endpoint_tree.process t2 (elem1 5. 3);
  Alcotest.(check (list int)) "6+3 < 10" [] !matured;
  Endpoint_tree.process t2 (elem1 5. 1);
  Alcotest.(check (list int)) "6+3+1 >= 10" [ 1 ] !matured

let test_fanout_bound_1d () =
  (* h_q <= 2 levels' worth: for a tree on <= 2m endpoints, the canonical
     set has at most 2 ceil(log2(2m)) nodes. *)
  let rng = Prng.create ~seed:9 in
  let m = 256 in
  let batch =
    List.init m (fun id ->
        let a = Prng.float rng 1000. in
        let b = a +. 1. +. Prng.float rng 500. in
        (q ~id ~threshold:1000 [| (a, b) |], 1000))
  in
  let t = build1 batch in
  let log2m = int_of_float (ceil (log (float_of_int (2 * m)) /. log 2.)) in
  List.iter
    (fun ((qq : Types.query), _) ->
      let h = Endpoint_tree.fanout t qq.id in
      Alcotest.(check bool)
        (Printf.sprintf "h_q=%d <= 2*(log2m+1)=%d" h (2 * (log2m + 1)))
        true
        (h >= 1 && h <= 2 * (log2m + 1)))
    batch

let test_fanout_bound_2d () =
  let rng = Prng.create ~seed:10 in
  let m = 128 in
  let batch =
    List.init m (fun id ->
        let mk () =
          let a = Prng.float rng 1000. in
          (a, a +. 1. +. Prng.float rng 500.)
        in
        ({ Types.id; rect = Types.rect_make [| mk (); mk () |]; threshold = 1000 }, 1000))
  in
  let t = Endpoint_tree.build ~dim:2 ~on_mature:(fun _ -> ()) batch in
  let log2m = ceil (log (float_of_int (2 * m)) /. log 2.) +. 1. in
  let bound = int_of_float (4. *. log2m *. log2m) in
  List.iter
    (fun ((qq : Types.query), _) ->
      let h = Endpoint_tree.fanout t qq.id in
      Alcotest.(check bool)
        (Printf.sprintf "h_q=%d <= O(log^2 m)=%d" h bound)
        true (h >= 1 && h <= bound))
    batch

let test_counters_exact_vs_naive () =
  (* Random stream: W from the tree must equal a naive per-query count. *)
  let rng = Prng.create ~seed:11 in
  let m = 60 in
  let batch =
    List.init m (fun id ->
        let a = float_of_int (Prng.int rng 50) in
        let b = a +. 1. +. float_of_int (Prng.int rng 30) in
        (q ~id ~threshold:1_000_000 [| (a, b) |], 1_000_000))
  in
  let t = build1 batch in
  let naive = Array.make m 0 in
  for _ = 1 to 2000 do
    let x = float_of_int (Prng.int rng 90) in
    let w = 1 + Prng.int rng 9 in
    Endpoint_tree.process t (elem1 x w);
    List.iter
      (fun ((qq : Types.query), _) ->
        if Types.rect_contains qq.rect [| x |] then naive.(qq.id) <- naive.(qq.id) + w)
      batch
  done;
  List.iter
    (fun ((qq : Types.query), _) ->
      Alcotest.(check int)
        (Printf.sprintf "W(q%d)" qq.id)
        naive.(qq.id)
        (Endpoint_tree.current_weight t qq.id))
    batch

let test_telemetry_bounds () =
  (* Signals and round-ends are the in-tree image of the DT message bound:
     per query O(h log tau) signals overall. We check a generous concrete
     constant on a workload that matures everything. *)
  let rng = Prng.create ~seed:12 in
  let m = 100 and tau = 5_000 in
  let matured = ref 0 in
  let batch =
    List.init m (fun id ->
        let a = float_of_int (Prng.int rng 40) in
        let b = a +. 5. +. float_of_int (Prng.int rng 20) in
        (q ~id ~threshold:tau [| (a, b) |], tau))
  in
  let t = Endpoint_tree.build ~dim:1 ~on_mature:(fun _ -> incr matured) batch in
  let i = ref 0 in
  while Endpoint_tree.alive_count t > 0 && !i < 2_000_000 do
    let x = float_of_int (Prng.int rng 70) in
    Endpoint_tree.process t (elem1 x (1 + Prng.int rng 9));
    incr i
  done;
  Alcotest.(check int) "all matured" m !matured;
  let st = Endpoint_tree.stats t in
  let log2 x = log (float_of_int x) /. log 2. in
  let h_max = 2. *. (log2 (2 * m) +. 1.) in
  let per_query = 8. *. h_max *. (log2 tau +. 2.) in
  let bound = int_of_float (float_of_int m *. per_query) in
  Alcotest.(check bool)
    (Printf.sprintf "signals %d <= O(m h log tau) = %d" st.signals bound)
    true (st.signals <= bound);
  Alcotest.(check bool)
    (Printf.sprintf "round ends %d <= O(m log tau) = %d" st.round_ends
       (int_of_float (float_of_int m *. (log2 tau +. 2.) *. 2.)))
    true
    (st.round_ends <= int_of_float (float_of_int m *. (log2 tau +. 2.) *. 2.))

let test_one_sided_query () =
  let matured = ref [] in
  let t =
    Endpoint_tree.build ~dim:1
      ~on_mature:(fun id -> matured := id :: !matured)
      [ ({ Types.id = 1; rect = Types.rect_make [| (100., infinity) |]; threshold = 2 }, 2) ]
  in
  Endpoint_tree.process t (elem1 1e12 1);
  Endpoint_tree.process t (elem1 99. 1);
  Alcotest.(check (list int)) "not yet" [] !matured;
  Endpoint_tree.process t (elem1 100. 1);
  Alcotest.(check (list int)) "matured via +inf side" [ 1 ] !matured

let test_build_validation () =
  Alcotest.check_raises "remaining < 1"
    (Invalid_argument "Endpoint_tree.build: remaining < 1") (fun () ->
      ignore (build1 [ (q ~id:1 ~threshold:5 [| (0., 1.) |], 0) ]));
  Alcotest.check_raises "remaining > threshold"
    (Invalid_argument "Endpoint_tree.build: remaining exceeds threshold") (fun () ->
      ignore (build1 [ (q ~id:1 ~threshold:5 [| (0., 1.) |], 6) ]));
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Endpoint_tree.build: duplicate query id") (fun () ->
      ignore
        (build1
           [ (q ~id:1 ~threshold:5 [| (0., 1.) |], 5); (q ~id:1 ~threshold:5 [| (2., 3.) |], 5) ]))

let test_space_counts () =
  let batch =
    [
      (q ~id:1 ~threshold:10 [| (0., 10.) |], 10);
      (q ~id:2 ~threshold:10 [| (5., 15.) |], 10);
      (q ~id:3 ~threshold:10 [| (0., 15.) |], 10);
    ]
  in
  let t = build1 batch in
  let s = Endpoint_tree.space t in
  let fanouts = List.map (fun ((qq : Types.query), _) -> Endpoint_tree.fanout t qq.id) batch in
  Alcotest.(check int) "live entries = sum of fanouts" (List.fold_left ( + ) 0 fanouts)
    s.live_entries;
  Alcotest.(check bool) "has nodes" true (s.tree_nodes > 0);
  Endpoint_tree.remove t 1;
  let s' = Endpoint_tree.space t in
  Alcotest.(check int) "entries drop by h_1"
    (s.live_entries - List.nth fanouts 0)
    s'.live_entries

let prop_weight_exact =
  QCheck.Test.make ~count:100 ~name:"tree weight = naive count (random)"
    QCheck.(triple small_int (int_range 1 3) (int_range 1 40))
    (fun (seed, dim, m) ->
      let rng = Prng.create ~seed in
      let batch =
        List.init m (fun id ->
            let bounds =
              Array.init dim (fun _ ->
                  let a = float_of_int (Prng.int rng 12) in
                  (a, a +. 1. +. float_of_int (Prng.int rng 6)))
            in
            ({ Types.id; rect = Types.rect_make bounds; threshold = max_int / 2 }, max_int / 2))
      in
      let t = Endpoint_tree.build ~dim ~on_mature:(fun _ -> ()) batch in
      let naive = Array.make m 0 in
      for _ = 1 to 300 do
        let v = Array.init dim (fun _ -> float_of_int (Prng.int rng 20)) in
        let w = 1 + Prng.int rng 5 in
        Endpoint_tree.process t { Types.value = v; weight = w };
        List.iter
          (fun ((qq : Types.query), _) ->
            if Types.rect_contains qq.rect v then naive.(qq.id) <- naive.(qq.id) + w)
          batch
      done;
      List.for_all
        (fun ((qq : Types.query), _) -> Endpoint_tree.current_weight t qq.id = naive.(qq.id))
        batch)

let () =
  Alcotest.run "endpoint_tree"
    [
      ( "unit",
        [
          Alcotest.test_case "empty tree" `Quick test_empty_tree;
          Alcotest.test_case "single query basics" `Quick test_single_query_basic;
          Alcotest.test_case "maturity exact with weights" `Quick test_maturity_exact_with_weights;
          Alcotest.test_case "shared endpoints" `Quick test_shared_endpoints;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "remaining" `Quick test_remaining;
          Alcotest.test_case "alive_queries snapshot" `Quick test_alive_queries_snapshot;
          Alcotest.test_case "migration semantics" `Quick test_migration_semantics;
          Alcotest.test_case "fanout bound 1d" `Quick test_fanout_bound_1d;
          Alcotest.test_case "fanout bound 2d" `Quick test_fanout_bound_2d;
          Alcotest.test_case "counters exact vs naive" `Quick test_counters_exact_vs_naive;
          Alcotest.test_case "telemetry bounds" `Quick test_telemetry_bounds;
          Alcotest.test_case "one-sided query" `Quick test_one_sided_query;
          Alcotest.test_case "build validation" `Quick test_build_validation;
          Alcotest.test_case "space counts" `Quick test_space_counts;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_weight_exact ]);
    ]
