(* Weight_balanced_tree (scapegoat): model-based correctness, the height
   bound under adversarial (sorted) insertion, deletion-triggered
   rebuilds, and order statistics. *)

module Wb = Rts_structures.Weight_balanced_tree
module Prng = Rts_util.Prng

let test_empty () =
  let t : unit Wb.t = Wb.create () in
  Alcotest.(check int) "size" 0 (Wb.size t);
  Alcotest.(check bool) "is_empty" true (Wb.is_empty t);
  Alcotest.(check int) "height" 0 (Wb.height t);
  Alcotest.check_raises "min" Not_found (fun () -> ignore (Wb.min_key t));
  Alcotest.check_raises "max" Not_found (fun () -> ignore (Wb.max_key t));
  Alcotest.check_raises "find" Not_found (fun () -> ignore (Wb.find t ~key:1.))

let test_basic_ops () =
  let t = Wb.create () in
  List.iter (fun k -> Wb.insert t ~key:k (int_of_float k)) [ 5.; 2.; 8.; 1.; 9. ];
  Wb.check_invariants t;
  Alcotest.(check int) "size" 5 (Wb.size t);
  Alcotest.(check int) "find" 8 (Wb.find t ~key:8.);
  Alcotest.(check bool) "mem" true (Wb.mem t ~key:2.);
  Alcotest.(check bool) "not mem" false (Wb.mem t ~key:3.);
  Alcotest.(check (float 0.)) "min" 1. (Wb.min_key t);
  Alcotest.(check (float 0.)) "max" 9. (Wb.max_key t);
  let keys = ref [] in
  Wb.iter t (fun k _ -> keys := k :: !keys);
  Alcotest.(check (list (float 0.))) "in order" [ 1.; 2.; 5.; 8.; 9. ] (List.rev !keys)

let test_duplicate_rejected () =
  let t = Wb.create () in
  Wb.insert t ~key:1. ();
  Alcotest.check_raises "dup" (Invalid_argument "Weight_balanced_tree.insert: duplicate key")
    (fun () -> Wb.insert t ~key:1. ());
  Alcotest.check_raises "nan" (Invalid_argument "Weight_balanced_tree.insert: non-finite key")
    (fun () -> Wb.insert t ~key:Float.nan ())

let test_sorted_insertion_stays_balanced () =
  (* The adversarial case scapegoat rebuilding exists for. *)
  let t = Wb.create () in
  let n = 10_000 in
  for i = 1 to n do
    Wb.insert t ~key:(float_of_int i) ()
  done;
  Wb.check_invariants t;
  (* log_{1/0.7}(10000) ~ 25.8 *)
  Alcotest.(check bool)
    (Printf.sprintf "height %d logarithmic" (Wb.height t))
    true
    (Wb.height t <= 28);
  Alcotest.(check bool) "rebuilds happened" true (Wb.rebuilds t > 0);
  (* amortization: rebuild count is O(n / something), not per-insert *)
  Alcotest.(check bool)
    (Printf.sprintf "rebuilds %d amortized" (Wb.rebuilds t))
    true
    (Wb.rebuilds t < n / 4)

let test_delete () =
  let t = Wb.create () in
  for i = 1 to 100 do
    Wb.insert t ~key:(float_of_int i) i
  done;
  for i = 1 to 50 do
    Wb.delete t ~key:(float_of_int (2 * i))
  done;
  Wb.check_invariants t;
  Alcotest.(check int) "size" 50 (Wb.size t);
  Alcotest.(check bool) "odd kept" true (Wb.mem t ~key:51.);
  Alcotest.(check bool) "even gone" false (Wb.mem t ~key:52.);
  Alcotest.check_raises "delete missing" Not_found (fun () -> Wb.delete t ~key:52.)

let test_mass_deletion_rebuilds () =
  let t = Wb.create () in
  for i = 1 to 4096 do
    Wb.insert t ~key:(float_of_int i) ()
  done;
  let before = Wb.rebuilds t in
  for i = 1 to 3000 do
    Wb.delete t ~key:(float_of_int i)
  done;
  Wb.check_invariants t;
  Alcotest.(check bool) "full rebuilds triggered" true (Wb.rebuilds t > before);
  Alcotest.(check bool)
    (Printf.sprintf "height %d tight after shrink" (Wb.height t))
    true
    (Wb.height t <= 14)

let test_order_statistics () =
  let t = Wb.create () in
  List.iter (fun k -> Wb.insert t ~key:k ()) [ 10.; 20.; 30.; 40.; 50. ];
  Alcotest.(check int) "rank of present" 2 (Wb.rank t ~key:30.);
  Alcotest.(check int) "rank of absent" 3 (Wb.rank t ~key:35.);
  Alcotest.(check int) "rank below all" 0 (Wb.rank t ~key:0.);
  Alcotest.(check int) "rank above all" 5 (Wb.rank t ~key:100.);
  Alcotest.(check (float 0.)) "nth 0" 10. (fst (Wb.nth t 0));
  Alcotest.(check (float 0.)) "nth 4" 50. (fst (Wb.nth t 4));
  Alcotest.check_raises "nth out of range"
    (Invalid_argument "Weight_balanced_tree.nth: out of range") (fun () -> ignore (Wb.nth t 5))

let test_payloads_survive_rebuilds () =
  let t = Wb.create () in
  for i = 0 to 999 do
    Wb.insert t ~key:(float_of_int i) (i * 7)
  done;
  for i = 0 to 999 do
    Alcotest.(check int) (Printf.sprintf "payload %d" i) (i * 7) (Wb.find t ~key:(float_of_int i))
  done

let prop_model =
  QCheck.Test.make ~count:200 ~name:"scapegoat tree vs sorted-assoc model"
    QCheck.(pair small_int (int_range 20 300))
    (fun (seed, steps) ->
      let rng = Prng.create ~seed in
      let t = Wb.create () in
      let model = ref [] in
      let ok = ref true in
      for _ = 1 to steps do
        let r = Prng.int rng 10 in
        let key = float_of_int (Prng.int rng 50) in
        if r < 5 then begin
          if not (List.mem_assoc key !model) then begin
            let v = Prng.int rng 1000 in
            Wb.insert t ~key v;
            model := (key, v) :: !model
          end
        end
        else if r < 7 then begin
          match Wb.mem t ~key with
          | true ->
              Wb.delete t ~key;
              model := List.remove_assoc key !model
          | false -> if List.mem_assoc key !model then ok := false
        end
        else begin
          let tree_value = try Some (Wb.find t ~key) with Not_found -> None in
          if tree_value <> List.assoc_opt key !model then ok := false;
          (* rank must agree with the model count *)
          let expected_rank = List.length (List.filter (fun (k, _) -> k < key) !model) in
          if Wb.rank t ~key <> expected_rank then ok := false
        end;
        Wb.check_invariants t
      done;
      !ok
      && Wb.size t = List.length !model
      &&
      let sorted = List.sort compare (List.map fst !model) in
      let got = ref [] in
      Wb.iter t (fun k _ -> got := k :: !got);
      List.rev !got = sorted)

let () =
  Alcotest.run "weight_balanced_tree"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "basic operations" `Quick test_basic_ops;
          Alcotest.test_case "duplicate/invalid rejected" `Quick test_duplicate_rejected;
          Alcotest.test_case "sorted insertion stays balanced" `Quick
            test_sorted_insertion_stays_balanced;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "mass deletion rebuilds" `Quick test_mass_deletion_rebuilds;
          Alcotest.test_case "order statistics" `Quick test_order_statistics;
          Alcotest.test_case "payloads survive rebuilds" `Quick test_payloads_survive_rebuilds;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_model ]);
    ]
