(* Types: rectangle construction, the closed-bound infinitesimal trick,
   containment semantics, and validation errors. *)

open Rts_core

let test_rect_make () =
  let r = Types.rect_make [| (0., 1.); (2., 5.) |] in
  Alcotest.(check int) "dim" 2 (Types.dim_of_rect r);
  Alcotest.(check (float 0.)) "lo0" 0. r.lo.(0);
  Alcotest.(check (float 0.)) "hi1" 5. r.hi.(1)

let test_rect_make_empty_side () =
  Alcotest.check_raises "lo = hi"
    (Invalid_argument "Types.rect_make: requires lo < hi in every dimension") (fun () ->
      ignore (Types.rect_make [| (1., 1.) |]));
  Alcotest.check_raises "lo > hi"
    (Invalid_argument "Types.rect_make: requires lo < hi in every dimension") (fun () ->
      ignore (Types.rect_make [| (2., 1.) |]))

let test_rect_make_zero_dim () =
  Alcotest.check_raises "d=0" (Invalid_argument "Types.rect_make: zero-dimensional rectangle")
    (fun () -> ignore (Types.rect_make [||]))

let test_closed_trick () =
  (* [lo, hi] as [lo, succ hi): the closed upper bound itself is inside,
     but nothing beyond it. *)
  let r = Types.interval_closed 0. 10. in
  Alcotest.(check bool) "hi included" true (Types.rect_contains r [| 10. |]);
  Alcotest.(check bool) "just above excluded" false
    (Types.rect_contains r [| Float.succ 10. |]);
  Alcotest.(check bool) "lo included" true (Types.rect_contains r [| 0. |])

let test_half_open_contains () =
  let r = Types.interval 0. 10. in
  Alcotest.(check bool) "lo in" true (Types.rect_contains r [| 0. |]);
  Alcotest.(check bool) "mid in" true (Types.rect_contains r [| 5. |]);
  Alcotest.(check bool) "hi out" false (Types.rect_contains r [| 10. |]);
  Alcotest.(check bool) "below out" false (Types.rect_contains r [| -0.1 |])

let test_contains_2d () =
  let r = Types.rect_make [| (0., 1.); (0., 1.) |] in
  Alcotest.(check bool) "inside" true (Types.rect_contains r [| 0.5; 0.5 |]);
  Alcotest.(check bool) "one coord out" false (Types.rect_contains r [| 0.5; 1. |])

let test_contains_dim_mismatch () =
  let r = Types.interval 0. 1. in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Types.rect_contains: dimensionality mismatch") (fun () ->
      ignore (Types.rect_contains r [| 0.; 0. |]))

let test_one_sided_ranges () =
  (* The paper's NASDAQ example: (-inf, 4600]. *)
  let r = Types.rect_closed [| (neg_infinity, 4600.) |] in
  Alcotest.(check bool) "deep negative in" true (Types.rect_contains r [| -1e12 |]);
  Alcotest.(check bool) "bound in" true (Types.rect_contains r [| 4600. |]);
  Alcotest.(check bool) "above out" false (Types.rect_contains r [| 4601. |]);
  let up = Types.rect_make [| (100., infinity) |] in
  Alcotest.(check bool) "unbounded above" true (Types.rect_contains up [| 1e12 |]);
  Alcotest.(check bool) "below lo out" false (Types.rect_contains up [| 99. |])

let test_validate_query () =
  Types.validate_query ~dim:1 { id = 1; rect = Types.interval 0. 1.; threshold = 1 };
  Alcotest.check_raises "bad dim" (Invalid_argument "query: dimensionality mismatch") (fun () ->
      Types.validate_query ~dim:2 { id = 1; rect = Types.interval 0. 1.; threshold = 1 });
  Alcotest.check_raises "bad threshold" (Invalid_argument "query: threshold < 1") (fun () ->
      Types.validate_query ~dim:1 { id = 1; rect = Types.interval 0. 1.; threshold = 0 })

let test_validate_elem () =
  Types.validate_elem ~dim:1 { value = [| 0.5 |]; weight = 1 };
  Alcotest.check_raises "bad weight" (Invalid_argument "element: weight < 1") (fun () ->
      Types.validate_elem ~dim:1 { value = [| 0.5 |]; weight = 0 });
  Alcotest.check_raises "nan" (Invalid_argument "element: NaN coordinate") (fun () ->
      Types.validate_elem ~dim:1 { value = [| Float.nan |]; weight = 1 });
  Alcotest.check_raises "bad dim" (Invalid_argument "element: dimensionality mismatch")
    (fun () -> Types.validate_elem ~dim:2 { value = [| 0.5 |]; weight = 1 })

let test_pp_smoke () =
  let r = Types.rect_make [| (0., 1.); (2., 3.) |] in
  let s = Format.asprintf "%a" Types.pp_rect r in
  Alcotest.(check string) "rect" "[0, 1) x [2, 3)" s;
  let e = { Types.value = [| 1.; 2. |]; weight = 7 } in
  Alcotest.(check string) "elem" "(1, 2)*7" (Format.asprintf "%a" Types.pp_elem e);
  let q = { Types.id = 3; rect = r; threshold = 5 } in
  Alcotest.(check string) "query" "q3: [0, 1) x [2, 3) >= 5" (Format.asprintf "%a" Types.pp_query q)

let prop_contains_matches_manual =
  QCheck.Test.make ~count:500 ~name:"rect_contains = manual check"
    QCheck.(
      pair
        (list_of_size (Gen.return 2) (pair (float_bound_exclusive 100.) (float_range 100.1 200.)))
        (list_of_size (Gen.return 2) (float_bound_exclusive 250.)))
    (fun (bounds, point) ->
      QCheck.assume (List.length bounds = 2 && List.length point = 2);
      let r = Types.rect_make (Array.of_list bounds) in
      let p = Array.of_list point in
      let manual =
        List.for_all2 (fun (lo, hi) x -> lo <= x && x < hi) bounds point
      in
      Types.rect_contains r p = manual)

let () =
  Alcotest.run "types"
    [
      ( "unit",
        [
          Alcotest.test_case "rect_make" `Quick test_rect_make;
          Alcotest.test_case "rect_make empty side" `Quick test_rect_make_empty_side;
          Alcotest.test_case "rect_make zero dim" `Quick test_rect_make_zero_dim;
          Alcotest.test_case "closed-bound trick" `Quick test_closed_trick;
          Alcotest.test_case "half-open contains" `Quick test_half_open_contains;
          Alcotest.test_case "2d contains" `Quick test_contains_2d;
          Alcotest.test_case "contains dim mismatch" `Quick test_contains_dim_mismatch;
          Alcotest.test_case "one-sided ranges" `Quick test_one_sided_ranges;
          Alcotest.test_case "validate query" `Quick test_validate_query;
          Alcotest.test_case "validate elem" `Quick test_validate_elem;
          Alcotest.test_case "pretty printers" `Quick test_pp_smoke;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_contains_matches_manual ]);
    ]
