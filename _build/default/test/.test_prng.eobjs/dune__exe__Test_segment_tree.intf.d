test/test_segment_tree.mli:
