test/test_replay.ml: Alcotest Baseline_engine Csv_io Dt_engine Engine List Replay Rtree_engine Rts_core Rts_util Rts_workload Stab1d_engine String Types
