test/test_interval_tree.mli:
