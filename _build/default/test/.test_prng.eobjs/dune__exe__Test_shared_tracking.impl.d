test/test_shared_tracking.ml: Alcotest Array List Printf QCheck QCheck_alcotest Rts_dt Rts_util
