test/test_distributed_tracking.ml: Alcotest List Printf QCheck QCheck_alcotest Rts_dt Rts_util Unix
