test/test_types.ml: Alcotest Array Float Format Gen List QCheck QCheck_alcotest Rts_core Types
