test/test_handle_heap.ml: Alcotest List QCheck QCheck_alcotest Rts_structures Rts_util Test
