test/test_engines.ml: Alcotest Array Baseline_engine Dt_engine Engine List Printf QCheck QCheck_alcotest Rtree_engine Rts_core Rts_util Stab1d_engine Stab2d_engine Types
