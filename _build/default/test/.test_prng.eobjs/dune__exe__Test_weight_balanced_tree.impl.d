test/test_weight_balanced_tree.ml: Alcotest Float List Printf QCheck QCheck_alcotest Rts_structures Rts_util
