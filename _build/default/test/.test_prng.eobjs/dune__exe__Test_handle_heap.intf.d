test/test_handle_heap.mli:
