test/test_endpoint_tree.mli:
