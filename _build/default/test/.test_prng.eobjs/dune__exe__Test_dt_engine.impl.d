test/test_dt_engine.ml: Alcotest Dt_engine List Printf QCheck QCheck_alcotest Rts_core Rts_util Types
