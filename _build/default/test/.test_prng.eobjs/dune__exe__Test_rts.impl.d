test/test_rts.ml: Alcotest Baseline_engine Dt_engine Engine List Printf Rts_core Rts_util String Types
