test/test_workload.ml: Alcotest Array Baseline_engine Dt_engine Generator Hashtbl List Option Printf Rtree_engine Rts_core Rts_util Rts_workload Scenario Stab1d_engine Stab2d_engine Types
