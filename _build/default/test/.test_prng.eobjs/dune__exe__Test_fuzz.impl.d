test/test_fuzz.ml: Alcotest Array Baseline_engine Dt_engine Engine List Printf Replay Rtree_engine Rts_core Rts_util Rts_workload Scenario Stab1d_engine Stab2d_engine String Types
