test/test_distributed_tracking.mli:
