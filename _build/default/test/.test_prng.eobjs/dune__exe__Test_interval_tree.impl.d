test/test_interval_tree.ml: Alcotest List QCheck QCheck_alcotest Rts_structures Rts_util
