test/test_csv_io.mli:
