test/test_csv_io.ml: Alcotest Array Csv_io Filename Fun Generator List Rts_core Rts_workload String Sys Types
