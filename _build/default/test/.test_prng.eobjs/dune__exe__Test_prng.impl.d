test/test_prng.ml: Alcotest Array Printf QCheck QCheck_alcotest Rts_util
