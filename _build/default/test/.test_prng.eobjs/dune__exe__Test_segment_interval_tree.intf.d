test/test_segment_interval_tree.mli:
