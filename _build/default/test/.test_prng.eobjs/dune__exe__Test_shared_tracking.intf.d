test/test_shared_tracking.mli:
