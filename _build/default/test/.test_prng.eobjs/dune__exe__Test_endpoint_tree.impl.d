test/test_endpoint_tree.ml: Alcotest Array Endpoint_tree List Printf QCheck QCheck_alcotest Rts_core Rts_util Types
