test/test_segment_tree.ml: Alcotest Array List Option Printf QCheck QCheck_alcotest Rts_structures Rts_util
