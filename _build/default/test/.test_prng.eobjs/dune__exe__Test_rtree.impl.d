test/test_rtree.ml: Alcotest Array List Printf QCheck QCheck_alcotest Rts_structures Rts_util
