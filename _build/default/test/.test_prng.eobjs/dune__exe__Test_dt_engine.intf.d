test/test_dt_engine.mli:
