test/test_weight_balanced_tree.mli:
