(* PRNG: determinism, ranges, and coarse distribution sanity. The point is
   not to certify SplitMix64 statistically, but to catch plumbing bugs
   (sign overflows, swapped bounds, biased rejection loops) that would
   silently skew every workload in the repository. *)

module Prng = Rts_util.Prng
module Stats = Rts_util.Stats

let test_determinism () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  for i = 1 to 1000 do
    Alcotest.(check int64) (Printf.sprintf "draw %d" i) (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seeds_differ () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_copy_replays () =
  let a = Prng.create ~seed:99 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  for _ = 1 to 100 do
    Alcotest.(check int64) "copy replays" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_split_independent () =
  let a = Prng.create ~seed:5 in
  let child = Prng.split a in
  (* Parent and child must not produce the same stream. *)
  let same = ref 0 in
  for _ = 1 to 100 do
    if Prng.bits64 a = Prng.bits64 child then incr same
  done;
  Alcotest.(check int) "split decorrelates" 0 !same

let test_int_range () =
  let g = Prng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Prng.int g 7 in
    Alcotest.(check bool) "0 <= v < 7" true (v >= 0 && v < 7)
  done

let test_int_bound_one () =
  let g = Prng.create ~seed:3 in
  for _ = 1 to 100 do
    Alcotest.(check int) "bound 1 is constant 0" 0 (Prng.int g 1)
  done

let test_int_covers_all_residues () =
  let g = Prng.create ~seed:11 in
  let seen = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Prng.int g 10 in
    seen.(v) <- seen.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "residue %d roughly uniform" i) true
        (c > 700 && c < 1300))
    seen

let test_int_in () =
  let g = Prng.create ~seed:13 in
  for _ = 1 to 10_000 do
    let v = Prng.int_in g (-5) 5 in
    Alcotest.(check bool) "-5 <= v <= 5" true (v >= -5 && v <= 5)
  done

let test_float_range () =
  let g = Prng.create ~seed:17 in
  for _ = 1 to 10_000 do
    let v = Prng.float g 2.5 in
    Alcotest.(check bool) "0 <= v < 2.5" true (v >= 0. && v < 2.5)
  done

let test_float_mean () =
  let g = Prng.create ~seed:19 in
  let xs = Array.init 50_000 (fun _ -> Prng.float g 1.) in
  let m = Stats.mean xs in
  Alcotest.(check bool) "mean close to 0.5" true (abs_float (m -. 0.5) < 0.01)

let test_bool_balance () =
  let g = Prng.create ~seed:23 in
  let heads = ref 0 in
  for _ = 1 to 20_000 do
    if Prng.bool g then incr heads
  done;
  Alcotest.(check bool) "fair-ish coin" true (!heads > 9_400 && !heads < 10_600)

let test_bernoulli () =
  let g = Prng.create ~seed:29 in
  let hits = ref 0 in
  for _ = 1 to 50_000 do
    if Prng.bernoulli g 0.2 then incr hits
  done;
  let p = float_of_int !hits /. 50_000. in
  Alcotest.(check bool) "p = 0.2 +/- 0.02" true (abs_float (p -. 0.2) < 0.02)

let test_bernoulli_extremes () =
  let g = Prng.create ~seed:31 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Prng.bernoulli g 0.);
    Alcotest.(check bool) "p=1 always" true (Prng.bernoulli g 1.)
  done

let test_gaussian_moments () =
  let g = Prng.create ~seed:37 in
  let xs = Array.init 50_000 (fun _ -> Prng.gaussian g ~mean:100. ~stddev:15.) in
  let s = Stats.summarize xs in
  Alcotest.(check bool) "mean ~100" true (abs_float (s.mean -. 100.) < 0.5);
  Alcotest.(check bool) "stddev ~15" true (abs_float (s.stddev -. 15.) < 0.5)

let test_geometric_mean () =
  let g = Prng.create ~seed:41 in
  let p = 0.05 in
  let xs = Array.init 50_000 (fun _ -> float_of_int (Prng.geometric g p)) in
  let m = Stats.mean xs in
  (* E[Geometric(p)] = 1/p = 20. *)
  Alcotest.(check bool) "mean ~1/p" true (abs_float (m -. 20.) < 1.)

let test_geometric_support () =
  let g = Prng.create ~seed:43 in
  for _ = 1 to 10_000 do
    Alcotest.(check bool) "k >= 1" true (Prng.geometric g 0.5 >= 1)
  done;
  for _ = 1 to 100 do
    Alcotest.(check int) "p=1 gives 1" 1 (Prng.geometric g 1.)
  done

let test_geometric_tiny_p () =
  let g = Prng.create ~seed:47 in
  (* Must not loop or overflow for very small p. *)
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Prng.geometric g 1e-9 >= 1)
  done

let test_shuffle_permutes () =
  let g = Prng.create ~seed:53 in
  let a = Array.init 100 (fun i -> i) in
  let b = Array.copy a in
  Prng.shuffle g b;
  let sorted = Array.copy b in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" a sorted;
  Alcotest.(check bool) "actually moved" true (b <> a)

let prop_int_in_bounds =
  QCheck.Test.make ~count:500 ~name:"int stays in bounds"
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let g = Prng.create ~seed in
      let v = Prng.int g bound in
      v >= 0 && v < bound)

let prop_float_in =
  QCheck.Test.make ~count:500 ~name:"float_in stays in bounds"
    QCheck.(triple small_int (float_bound_exclusive 1000.) (float_range 1000.1 2000.))
    (fun (seed, lo, hi) ->
      let g = Prng.create ~seed in
      let v = Prng.float_in g lo hi in
      v >= lo && v < hi)

let () =
  Alcotest.run "prng"
    [
      ( "unit",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
          Alcotest.test_case "copy replays" `Quick test_copy_replays;
          Alcotest.test_case "split independent" `Quick test_split_independent;
          Alcotest.test_case "int range" `Quick test_int_range;
          Alcotest.test_case "int bound 1" `Quick test_int_bound_one;
          Alcotest.test_case "int covers residues" `Quick test_int_covers_all_residues;
          Alcotest.test_case "int_in range" `Quick test_int_in;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "float mean" `Quick test_float_mean;
          Alcotest.test_case "bool balance" `Quick test_bool_balance;
          Alcotest.test_case "bernoulli rate" `Quick test_bernoulli;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "geometric support" `Quick test_geometric_support;
          Alcotest.test_case "geometric tiny p" `Quick test_geometric_tiny_p;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_int_in_bounds;
          QCheck_alcotest.to_alcotest prop_float_in;
        ] );
    ]
