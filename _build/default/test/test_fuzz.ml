(* Heavier randomized differential testing — the wide net on top of the
   per-module suites. Every case drives multiple engines through the same
   op stream and requires bit-identical maturity behaviour; configurations
   sweep dimensionality, weighting, dynamism mode, thresholds and domain
   tightness. Runtime is kept to tens of seconds. *)

open Rts_core
open Rts_workload
module Prng = Rts_util.Prng

let engines_for dim =
  List.concat
    [
      [ ("baseline", Baseline_engine.make ~dim); ("dt", Dt_engine.make ~dim) ];
      (if dim <= 3 then [ ("r-tree", Rtree_engine.make ~dim) ] else []);
      (if dim = 1 then [ ("interval-tree", Stab1d_engine.make ()) ] else []);
      (if dim = 2 then [ ("seg-intv", Stab2d_engine.make ()) ] else []);
      [ ("dt-eager", Dt_engine.make_eager ~dim) ];
    ]

(* One randomized episode: interleaved register/terminate/process with
   parameters drawn from the seed. *)
let episode seed =
  let rng = Prng.create ~seed in
  let dim = 1 + Prng.int rng 3 in
  let domain = 2 + Prng.int rng 30 in
  let max_weight = 1 + Prng.int rng 200 in
  let max_tau = 1 + Prng.int rng 1000 in
  let p_reg = 0.05 +. Prng.float rng 0.3 in
  let p_term = Prng.float rng 0.08 in
  let steps = 300 + Prng.int rng 700 in
  let engines = engines_for dim in
  let next = ref 0 and alive = ref [] and matured_total = ref 0 in
  for step = 1 to steps do
    if Prng.bernoulli rng p_reg || !alive = [] then begin
      let bounds =
        Array.init dim (fun _ ->
            let a = float_of_int (Prng.int rng domain) in
            (a, a +. 1. +. float_of_int (Prng.int rng domain)))
      in
      let q =
        { Types.id = !next; rect = Types.rect_make bounds; threshold = 1 + Prng.int rng max_tau }
      in
      incr next;
      alive := q.id :: !alive;
      List.iter (fun (_, (e : Engine.t)) -> e.register q) engines
    end;
    if !alive <> [] && Prng.bernoulli rng p_term then begin
      let v = List.nth !alive (Prng.int rng (List.length !alive)) in
      alive := List.filter (fun i -> i <> v) !alive;
      List.iter (fun (_, (e : Engine.t)) -> e.terminate v) engines
    end;
    let elem =
      {
        Types.value = Array.init dim (fun _ -> float_of_int (Prng.int rng (domain + 4)));
        weight = 1 + Prng.int rng max_weight;
      }
    in
    let outs = List.map (fun (name, (e : Engine.t)) -> (name, e.process elem)) engines in
    (match outs with
    | (ref_name, ref_out) :: rest ->
        List.iter
          (fun (name, out) ->
            if out <> ref_out then
              Alcotest.failf "seed %d step %d (d=%d): %s=[%s] but %s=[%s]" seed step dim name
                (String.concat ";" (List.map string_of_int out))
                ref_name
                (String.concat ";" (List.map string_of_int ref_out)))
          rest;
        matured_total := !matured_total + List.length ref_out;
        alive := List.filter (fun i -> not (List.mem i ref_out)) !alive
    | [] -> ());
    let expected_alive = List.length !alive in
    List.iter
      (fun (name, (e : Engine.t)) ->
        if e.alive () <> expected_alive then
          Alcotest.failf "seed %d step %d: %s alive=%d, driver says %d" seed step name (e.alive ())
            expected_alive)
      engines
  done

let test_episodes () =
  for seed = 1000 to 1039 do
    episode seed
  done

let scenario_case ~dim ~unit_weights ~mode () =
  let cfg =
    {
      Scenario.default with
      Scenario.dim;
      seed = 77;
      initial_queries = 400;
      tau = (if unit_weights then 40 else 4_000);
      unit_weights;
      mode;
      max_elements = 8_000;
      chunk = 512;
    }
  in
  let reference = Scenario.run cfg (fun ~dim -> Baseline_engine.make ~dim) in
  List.iter
    (fun (name, factory) ->
      let r = Scenario.run cfg factory in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "%s maturity log (d=%d)" name dim)
        reference.Scenario.maturity_log r.Scenario.maturity_log)
    (match dim with
    | 1 ->
        [
          ("dt", fun ~dim -> Dt_engine.make ~dim);
          ("interval-tree", fun ~dim:_ -> Stab1d_engine.make ());
        ]
    | _ ->
        [
          ("dt", fun ~dim -> Dt_engine.make ~dim);
          ("seg-intv", fun ~dim:_ -> Stab2d_engine.make ());
          ("r-tree", fun ~dim -> Rtree_engine.make ~dim);
        ])

let test_scenario_matrix () =
  List.iter
    (fun dim ->
      List.iter
        (fun unit_weights ->
          List.iter
            (fun mode -> scenario_case ~dim ~unit_weights ~mode ())
            [
              Scenario.Static;
              Scenario.Stochastic { p_ins = 0.25; horizon = 6_000 };
              Scenario.Fixed_load;
            ])
        [ false; true ])
    [ 1; 2 ]

let test_record_replay_scenario () =
  (* Record a full scenario through the wrapper, then replay the trace
     against every engine: same maturity logs as the recording run. *)
  let cfg =
    {
      Scenario.default with
      Scenario.dim = 1;
      seed = 123;
      initial_queries = 300;
      tau = 3_000;
      mode = Scenario.Fixed_load;
      max_elements = 5_000;
      chunk = 512;
    }
  in
  let ops = ref [] in
  let recorded =
    Scenario.run cfg (fun ~dim ->
        Replay.recording ~sink:(fun op -> ops := op :: !ops) (Baseline_engine.make ~dim))
  in
  let trace = List.rev !ops in
  List.iter
    (fun (name, engine) ->
      let o = Replay.replay_ops engine trace in
      Alcotest.(check int)
        (name ^ " maturity count")
        (List.length recorded.Scenario.maturity_log)
        (List.length o.Replay.maturities);
      Alcotest.(check int) (name ^ " elements") recorded.Scenario.elements o.Replay.elements)
    [
      ("dt", Dt_engine.make ~dim:1);
      ("interval-tree", Stab1d_engine.make ());
      ("baseline", Baseline_engine.make ~dim:1);
    ]

let () =
  Alcotest.run "fuzz"
    [
      ( "differential",
        [
          Alcotest.test_case "40 randomized episodes, d in 1..3, 6 engines" `Slow test_episodes;
          Alcotest.test_case "scenario matrix: modes x dims x weighting" `Slow
            test_scenario_matrix;
          Alcotest.test_case "record then replay a whole scenario" `Quick
            test_record_replay_scenario;
        ] );
    ]
