(* Interval_tree: unit tests for stabbing semantics and deletion, AVL/
   augmentation invariants after every mutation, and a model-based qcheck
   property comparing stabbing output against a naive list scan. *)

module Interval_tree = Rts_structures.Interval_tree
module Prng = Rts_util.Prng

let sorted_ids l = List.sort compare (List.map fst l)

let test_empty () =
  let t : unit Interval_tree.t = Interval_tree.create () in
  Alcotest.(check int) "size" 0 (Interval_tree.size t);
  Alcotest.(check bool) "is_empty" true (Interval_tree.is_empty t);
  Alcotest.(check (list int)) "stab empty" [] (sorted_ids (Interval_tree.stab t 0.))

let test_single () =
  let t = Interval_tree.create () in
  Interval_tree.insert t ~id:1 ~lo:2. ~hi:5. "a";
  Alcotest.(check (list int)) "inside" [ 1 ] (sorted_ids (Interval_tree.stab t 3.));
  Alcotest.(check (list int)) "left endpoint included" [ 1 ]
    (sorted_ids (Interval_tree.stab t 2.));
  Alcotest.(check (list int)) "right endpoint excluded" []
    (sorted_ids (Interval_tree.stab t 5.));
  Alcotest.(check (list int)) "left of" [] (sorted_ids (Interval_tree.stab t 1.9));
  Alcotest.(check (list int)) "right of" [] (sorted_ids (Interval_tree.stab t 5.1))

let test_overlapping () =
  let t = Interval_tree.create () in
  Interval_tree.insert t ~id:1 ~lo:0. ~hi:10. ();
  Interval_tree.insert t ~id:2 ~lo:5. ~hi:15. ();
  Interval_tree.insert t ~id:3 ~lo:8. ~hi:9. ();
  Alcotest.(check (list int)) "x=6" [ 1; 2 ] (sorted_ids (Interval_tree.stab t 6.));
  Alcotest.(check (list int)) "x=8.5" [ 1; 2; 3 ] (sorted_ids (Interval_tree.stab t 8.5));
  Alcotest.(check (list int)) "x=12" [ 2 ] (sorted_ids (Interval_tree.stab t 12.))

let test_duplicate_intervals_distinct_ids () =
  let t = Interval_tree.create () in
  Interval_tree.insert t ~id:1 ~lo:1. ~hi:2. ();
  Interval_tree.insert t ~id:2 ~lo:1. ~hi:2. ();
  Alcotest.(check (list int)) "both reported" [ 1; 2 ] (sorted_ids (Interval_tree.stab t 1.5));
  Interval_tree.delete t ~id:1 ~lo:1. ~hi:2.;
  Alcotest.(check (list int)) "only 2 left" [ 2 ] (sorted_ids (Interval_tree.stab t 1.5))

let test_duplicate_key_rejected () =
  let t = Interval_tree.create () in
  Interval_tree.insert t ~id:1 ~lo:1. ~hi:2. ();
  Alcotest.check_raises "exact duplicate"
    (Invalid_argument "Interval_tree.insert: duplicate (lo, hi, id)") (fun () ->
      Interval_tree.insert t ~id:1 ~lo:1. ~hi:2. ())

let test_empty_interval_rejected () =
  let t = Interval_tree.create () in
  Alcotest.check_raises "lo = hi" (Invalid_argument "Interval_tree.insert: requires lo < hi")
    (fun () -> Interval_tree.insert t ~id:1 ~lo:3. ~hi:3. ())

let test_delete_missing () =
  let t : unit Interval_tree.t = Interval_tree.create () in
  Alcotest.check_raises "missing" Not_found (fun () -> Interval_tree.delete t ~id:9 ~lo:0. ~hi:1.)

let test_mem () =
  let t = Interval_tree.create () in
  Interval_tree.insert t ~id:4 ~lo:0. ~hi:1. ();
  Alcotest.(check bool) "present" true (Interval_tree.mem t ~id:4 ~lo:0. ~hi:1.);
  Alcotest.(check bool) "wrong id" false (Interval_tree.mem t ~id:5 ~lo:0. ~hi:1.);
  Interval_tree.delete t ~id:4 ~lo:0. ~hi:1.;
  Alcotest.(check bool) "gone" false (Interval_tree.mem t ~id:4 ~lo:0. ~hi:1.)

let test_iter_in_key_order () =
  let t = Interval_tree.create () in
  Interval_tree.insert t ~id:1 ~lo:5. ~hi:6. ();
  Interval_tree.insert t ~id:2 ~lo:1. ~hi:9. ();
  Interval_tree.insert t ~id:3 ~lo:3. ~hi:4. ();
  let acc = ref [] in
  Interval_tree.iter t (fun id lo _hi () -> acc := (lo, id) :: !acc);
  Alcotest.(check (list (pair (float 0.) int)))
    "ascending lo" [ (1., 2); (3., 3); (5., 1) ] (List.rev !acc)

let test_infinite_bounds () =
  let t = Interval_tree.create () in
  Interval_tree.insert t ~id:1 ~lo:neg_infinity ~hi:0. ();
  Interval_tree.insert t ~id:2 ~lo:0. ~hi:infinity ();
  Alcotest.(check (list int)) "far left" [ 1 ] (sorted_ids (Interval_tree.stab t (-1e300)));
  Alcotest.(check (list int)) "far right" [ 2 ] (sorted_ids (Interval_tree.stab t 1e300));
  Interval_tree.check_invariants t

let test_balance_sequential_inserts () =
  let t = Interval_tree.create () in
  (* Ascending insertions are the classic way to break an unbalanced BST. *)
  for i = 0 to 2047 do
    let lo = float_of_int i in
    Interval_tree.insert t ~id:i ~lo ~hi:(lo +. 0.5) ()
  done;
  Interval_tree.check_invariants t;
  Alcotest.(check int) "size" 2048 (Interval_tree.size t);
  Alcotest.(check (list int)) "point stab" [ 1000 ] (sorted_ids (Interval_tree.stab t 1000.25))

let test_balance_sequential_deletes () =
  let t = Interval_tree.create () in
  for i = 0 to 1023 do
    Interval_tree.insert t ~id:i ~lo:(float_of_int i) ~hi:(float_of_int i +. 0.5) ()
  done;
  for i = 0 to 511 do
    Interval_tree.delete t ~id:i ~lo:(float_of_int i) ~hi:(float_of_int i +. 0.5);
    if i mod 100 = 0 then Interval_tree.check_invariants t
  done;
  Interval_tree.check_invariants t;
  Alcotest.(check int) "size" 512 (Interval_tree.size t)

(* Model-based property: random inserts/deletes/stabs on a small integer
   grid, diffing against a plain list. *)
let prop_model =
  QCheck.Test.make ~count:200 ~name:"stab = naive scan under random ops"
    QCheck.(pair small_int (int_range 10 200))
    (fun (seed, steps) ->
      let rng = Prng.create ~seed in
      let t = Interval_tree.create () in
      let model = ref [] in
      let next = ref 0 in
      let ok = ref true in
      for _ = 1 to steps do
        let r = Prng.int rng 10 in
        if r < 5 then begin
          let a = float_of_int (Prng.int rng 20) in
          let b = float_of_int (1 + Prng.int rng 20) in
          let lo = min a b and hi = max a b +. 1. in
          Interval_tree.insert t ~id:!next ~lo ~hi ();
          model := (!next, lo, hi) :: !model;
          incr next
        end
        else if r < 7 && !model <> [] then begin
          let idx = Prng.int rng (List.length !model) in
          let id, lo, hi = List.nth !model idx in
          Interval_tree.delete t ~id ~lo ~hi;
          model := List.filter (fun (id', _, _) -> id' <> id) !model
        end
        else begin
          let x = float_of_int (Prng.int rng 25) in
          let got = sorted_ids (Interval_tree.stab t x) in
          let want =
            List.filter (fun (_, lo, hi) -> lo <= x && x < hi) !model
            |> List.map (fun (id, _, _) -> id)
            |> List.sort compare
          in
          if got <> want then ok := false
        end;
        Interval_tree.check_invariants t
      done;
      !ok && Interval_tree.size t = List.length !model)

let () =
  Alcotest.run "interval_tree"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single interval" `Quick test_single;
          Alcotest.test_case "overlapping intervals" `Quick test_overlapping;
          Alcotest.test_case "duplicate intervals, distinct ids" `Quick
            test_duplicate_intervals_distinct_ids;
          Alcotest.test_case "duplicate key rejected" `Quick test_duplicate_key_rejected;
          Alcotest.test_case "empty interval rejected" `Quick test_empty_interval_rejected;
          Alcotest.test_case "delete missing" `Quick test_delete_missing;
          Alcotest.test_case "mem" `Quick test_mem;
          Alcotest.test_case "iter key order" `Quick test_iter_in_key_order;
          Alcotest.test_case "infinite bounds" `Quick test_infinite_bounds;
          Alcotest.test_case "AVL balance: ascending inserts" `Quick
            test_balance_sequential_inserts;
          Alcotest.test_case "AVL balance: ascending deletes" `Quick
            test_balance_sequential_deletes;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_model ]);
    ]
