(* Segment_interval_tree: 2D stabbing semantics vs a naive scan, overflow
   buffer + rebuild behaviour, and structural invariants. *)

module Sit = Rts_structures.Segment_interval_tree
module Prng = Rts_util.Prng

let sorted_ids l = List.sort compare (List.map fst l)

let test_empty () =
  let t : unit Sit.t = Sit.create () in
  Alcotest.(check int) "size" 0 (Sit.size t);
  Alcotest.(check (list int)) "stab" [] (sorted_ids (Sit.stab t ~x:0. ~y:0.))

let test_single_rectangle () =
  let t = Sit.create () in
  Sit.insert t ~id:1 ~xlo:0. ~xhi:10. ~ylo:0. ~yhi:5. ();
  Sit.check_invariants t;
  Alcotest.(check (list int)) "inside" [ 1 ] (sorted_ids (Sit.stab t ~x:5. ~y:2.));
  Alcotest.(check (list int)) "corner lo included" [ 1 ] (sorted_ids (Sit.stab t ~x:0. ~y:0.));
  Alcotest.(check (list int)) "x hi excluded" [] (sorted_ids (Sit.stab t ~x:10. ~y:2.));
  Alcotest.(check (list int)) "y hi excluded" [] (sorted_ids (Sit.stab t ~x:5. ~y:5.));
  Alcotest.(check (list int)) "outside x" [] (sorted_ids (Sit.stab t ~x:11. ~y:2.));
  Alcotest.(check (list int)) "outside y" [] (sorted_ids (Sit.stab t ~x:5. ~y:7.))

let test_overlapping_rectangles () =
  let t = Sit.create () in
  Sit.insert t ~id:1 ~xlo:0. ~xhi:10. ~ylo:0. ~yhi:10. ();
  Sit.insert t ~id:2 ~xlo:5. ~xhi:15. ~ylo:5. ~yhi:15. ();
  Sit.insert t ~id:3 ~xlo:9. ~xhi:11. ~ylo:9. ~yhi:11. ();
  Sit.check_invariants t;
  Alcotest.(check (list int)) "triple overlap" [ 1; 2; 3 ]
    (sorted_ids (Sit.stab t ~x:9.5 ~y:9.5));
  Alcotest.(check (list int)) "only 1" [ 1 ] (sorted_ids (Sit.stab t ~x:2. ~y:2.));
  Alcotest.(check (list int)) "only 2" [ 2 ] (sorted_ids (Sit.stab t ~x:12. ~y:12.))

let test_delete () =
  let t = Sit.create () in
  Sit.insert t ~id:1 ~xlo:0. ~xhi:4. ~ylo:0. ~yhi:4. ();
  Sit.insert t ~id:2 ~xlo:1. ~xhi:5. ~ylo:1. ~yhi:5. ();
  Sit.delete t ~id:1;
  Alcotest.(check (list int)) "1 gone" [ 2 ] (sorted_ids (Sit.stab t ~x:2. ~y:2.));
  Alcotest.(check bool) "mem" false (Sit.mem t ~id:1);
  Alcotest.check_raises "double delete" Not_found (fun () -> Sit.delete t ~id:1)

let test_duplicate_id_rejected () =
  let t = Sit.create () in
  Sit.insert t ~id:1 ~xlo:0. ~xhi:1. ~ylo:0. ~yhi:1. ();
  Alcotest.check_raises "dup id" (Invalid_argument "Segment_interval_tree.insert: duplicate id")
    (fun () -> Sit.insert t ~id:1 ~xlo:2. ~xhi:3. ~ylo:2. ~yhi:3. ())

let test_empty_rectangle_rejected () =
  let t : unit Sit.t = Sit.create () in
  Alcotest.check_raises "empty side"
    (Invalid_argument "Segment_interval_tree.insert: empty rectangle") (fun () ->
      Sit.insert t ~id:1 ~xlo:0. ~xhi:0. ~ylo:0. ~yhi:1. ())

let test_overflow_then_rebuild () =
  let t = Sit.create () in
  (* First insert goes to overflow (no grid yet) and immediately triggers a
     rebuild; later off-grid inserts accumulate until the threshold. *)
  Sit.insert t ~id:0 ~xlo:0. ~xhi:100. ~ylo:0. ~yhi:100. ();
  let n = 200 in
  for i = 1 to n do
    let f = float_of_int i in
    (* endpoints all distinct: each insert is off the current grid *)
    Sit.insert t ~id:i ~xlo:(f /. 7.) ~xhi:(50. +. (f /. 7.)) ~ylo:0. ~yhi:50. ()
  done;
  Sit.check_invariants t;
  Alcotest.(check int) "all stored" (n + 1) (Sit.size t);
  (* overflow is bounded by the rebuild policy: < max(16, built/4) + 1 *)
  Alcotest.(check bool) "overflow bounded" true (Sit.overflow_count t <= max 16 (Sit.size t / 4));
  (* stab must see both placed and overflowed rectangles *)
  let hits = sorted_ids (Sit.stab t ~x:30. ~y:25.) in
  let expected =
    List.init (n + 1) (fun i -> i)
    |> List.filter (fun i ->
           if i = 0 then true
           else
             let f = float_of_int i in
             f /. 7. <= 30. && 30. < 50. +. (f /. 7.))
  in
  Alcotest.(check (list int)) "stab across overflow" expected hits

let test_delete_from_overflow () =
  let t = Sit.create () in
  Sit.insert t ~id:1 ~xlo:0. ~xhi:10. ~ylo:0. ~yhi:10. ();
  Sit.insert t ~id:2 ~xlo:0.5 ~xhi:9.5 ~ylo:0. ~yhi:10. ();
  (* id 2 may be in overflow; delete must work regardless of placement *)
  Sit.delete t ~id:2;
  Alcotest.(check (list int)) "only 1 remains" [ 1 ] (sorted_ids (Sit.stab t ~x:5. ~y:5.));
  Sit.check_invariants t

let test_mass_deletion_triggers_rebuild () =
  let t = Sit.create () in
  let n = 128 in
  for i = 0 to n - 1 do
    let f = float_of_int i in
    Sit.insert t ~id:i ~xlo:f ~xhi:(f +. 10.) ~ylo:0. ~yhi:10. ()
  done;
  for i = 0 to (n / 2) + 10 do
    Sit.delete t ~id:i
  done;
  Sit.check_invariants t;
  Alcotest.(check int) "size" (n - (n / 2) - 11) (Sit.size t)

let prop_model =
  QCheck.Test.make ~count:150 ~name:"2d stab = naive scan under random ops"
    QCheck.(pair small_int (int_range 10 150))
    (fun (seed, steps) ->
      let rng = Prng.create ~seed in
      let t = Sit.create () in
      let model = ref [] in
      let next = ref 0 in
      let ok = ref true in
      let coord () = float_of_int (Prng.int rng 15) in
      for _ = 1 to steps do
        let r = Prng.int rng 10 in
        if r < 5 then begin
          let x1 = coord () and x2 = coord () +. 1. in
          let y1 = coord () and y2 = coord () +. 1. in
          let xlo = min x1 x2 and xhi = max x1 x2 +. 1. in
          let ylo = min y1 y2 and yhi = max y1 y2 +. 1. in
          Sit.insert t ~id:!next ~xlo ~xhi ~ylo ~yhi ();
          model := (!next, (xlo, xhi, ylo, yhi)) :: !model;
          incr next
        end
        else if r < 7 && !model <> [] then begin
          let idx = Prng.int rng (List.length !model) in
          let id, _ = List.nth !model idx in
          Sit.delete t ~id;
          model := List.filter (fun (id', _) -> id' <> id) !model
        end
        else begin
          let x = coord () and y = coord () in
          let got = sorted_ids (Sit.stab t ~x ~y) in
          let want =
            List.filter
              (fun (_, (xlo, xhi, ylo, yhi)) -> xlo <= x && x < xhi && ylo <= y && y < yhi)
              !model
            |> List.map fst |> List.sort compare
          in
          if got <> want then ok := false
        end;
        Sit.check_invariants t
      done;
      !ok && Sit.size t = List.length !model)

let () =
  Alcotest.run "segment_interval_tree"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single rectangle" `Quick test_single_rectangle;
          Alcotest.test_case "overlapping rectangles" `Quick test_overlapping_rectangles;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "duplicate id rejected" `Quick test_duplicate_id_rejected;
          Alcotest.test_case "empty rectangle rejected" `Quick test_empty_rectangle_rejected;
          Alcotest.test_case "overflow then rebuild" `Quick test_overflow_then_rebuild;
          Alcotest.test_case "delete from overflow" `Quick test_delete_from_overflow;
          Alcotest.test_case "mass deletion rebuild" `Quick test_mass_deletion_triggers_rebuild;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_model ]);
    ]
