(* Stats helpers: exact answers on hand-computed inputs plus properties
   against naive two-pass formulas. *)

module Stats = Rts_util.Stats

let feq ?(eps = 1e-9) a b = abs_float (a -. b) <= eps *. (1. +. abs_float a +. abs_float b)

let check_float name a b = Alcotest.(check bool) name true (feq a b)

let test_summarize_simple () =
  let s = Stats.summarize [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check int) "count" 5 s.count;
  check_float "mean" 3. s.mean;
  check_float "stddev" (sqrt 2.5) s.stddev;
  check_float "min" 1. s.min;
  check_float "max" 5. s.max;
  check_float "total" 15. s.total

let test_summarize_singleton () =
  let s = Stats.summarize [| 42. |] in
  Alcotest.(check int) "count" 1 s.count;
  check_float "mean" 42. s.mean;
  check_float "stddev" 0. s.stddev

let test_summarize_constant () =
  let s = Stats.summarize (Array.make 1000 7.5) in
  check_float "mean" 7.5 s.mean;
  check_float "stddev" 0. s.stddev

let test_summarize_empty () =
  Alcotest.check_raises "empty raises" (Invalid_argument "Stats.summarize: empty array")
    (fun () -> ignore (Stats.summarize [||]))

let test_percentile () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p50" 50. (Stats.percentile xs 50.);
  check_float "p100" 100. (Stats.percentile xs 100.);
  check_float "p1" 1. (Stats.percentile xs 1.);
  (* order must not matter *)
  let rev = Array.init 100 (fun i -> float_of_int (100 - i)) in
  check_float "unsorted p50" 50. (Stats.percentile rev 50.)

let test_percentile_does_not_mutate () =
  let xs = [| 3.; 1.; 2. |] in
  ignore (Stats.percentile xs 50.);
  Alcotest.(check (array (float 0.))) "input untouched" [| 3.; 1.; 2. |] xs

let test_histogram () =
  let xs = [| 0.; 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9. |] in
  let h = Stats.histogram xs ~buckets:5 in
  Alcotest.(check int) "bucket count" 5 (Array.length h);
  let total = Array.fold_left (fun acc (_, c) -> acc + c) 0 h in
  Alcotest.(check int) "all points bucketed" 10 total

let test_histogram_constant_input () =
  let h = Stats.histogram (Array.make 5 3.) ~buckets:4 in
  let total = Array.fold_left (fun acc (_, c) -> acc + c) 0 h in
  Alcotest.(check int) "constant input survives" 5 total

let prop_welford_matches_two_pass =
  QCheck.Test.make ~count:200 ~name:"Welford = two-pass variance"
    QCheck.(array_of_size Gen.(int_range 2 200) (float_bound_exclusive 1000.))
    (fun xs ->
      QCheck.assume (Array.length xs >= 2);
      let s = Stats.summarize xs in
      let n = float_of_int (Array.length xs) in
      let mean = Array.fold_left ( +. ) 0. xs /. n in
      let var = Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. (n -. 1.) in
      feq ~eps:1e-6 s.mean mean && feq ~eps:1e-6 s.stddev (sqrt var))

let prop_minmax =
  QCheck.Test.make ~count:200 ~name:"min/max are true extrema"
    QCheck.(array_of_size Gen.(int_range 1 100) (float_bound_exclusive 1000.))
    (fun xs ->
      QCheck.assume (Array.length xs >= 1);
      let s = Stats.summarize xs in
      Array.for_all (fun x -> x >= s.min && x <= s.max) xs)

let () =
  Alcotest.run "stats"
    [
      ( "unit",
        [
          Alcotest.test_case "summarize simple" `Quick test_summarize_simple;
          Alcotest.test_case "summarize singleton" `Quick test_summarize_singleton;
          Alcotest.test_case "summarize constant" `Quick test_summarize_constant;
          Alcotest.test_case "summarize empty" `Quick test_summarize_empty;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "percentile pure" `Quick test_percentile_does_not_mutate;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram constant" `Quick test_histogram_constant_input;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_welford_matches_two_pass;
          QCheck_alcotest.to_alcotest prop_minmax;
        ] );
    ]
