(* Handle_heap: unit tests for the handle lifecycle plus a model-based
   qcheck test replaying random op sequences against a sorted-list model.
   This structure underlies every sigma heap H(u) in the RTS core, so a
   subtle swap/back-pointer bug here would corrupt maturity detection. *)

module Handle_heap = Rts_structures.Handle_heap

let int_heap () = Handle_heap.create ~leq:(fun (a : int) b -> a <= b) ()

let drain h =
  let rec go acc = match Handle_heap.pop h with Some v -> go (v :: acc) | None -> List.rev acc in
  go []

let test_empty () =
  let h = int_heap () in
  Alcotest.(check bool) "is_empty" true (Handle_heap.is_empty h);
  Alcotest.(check int) "size" 0 (Handle_heap.size h);
  Alcotest.(check (option int)) "peek" None (Handle_heap.peek h);
  Alcotest.(check (option int)) "pop" None (Handle_heap.pop h);
  Alcotest.check_raises "peek_exn raises" (Invalid_argument "Handle_heap.peek_exn: empty heap")
    (fun () -> ignore (Handle_heap.peek_exn h))

let test_push_pop_sorted () =
  let h = int_heap () in
  List.iter (fun v -> ignore (Handle_heap.push h v)) [ 5; 1; 4; 1; 3; 9; 2 ];
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 2; 3; 4; 5; 9 ] (drain h)

let test_peek_stable () =
  let h = int_heap () in
  ignore (Handle_heap.push h 3);
  ignore (Handle_heap.push h 1);
  Alcotest.(check (option int)) "peek min" (Some 1) (Handle_heap.peek h);
  Alcotest.(check (option int)) "peek again" (Some 1) (Handle_heap.peek h);
  Alcotest.(check int) "size unchanged" 2 (Handle_heap.size h)

let test_remove_middle () =
  let h = int_heap () in
  let _a = Handle_heap.push h 1 in
  let b = Handle_heap.push h 2 in
  let _c = Handle_heap.push h 3 in
  Handle_heap.remove h b;
  Alcotest.(check (list int)) "2 removed" [ 1; 3 ] (drain h)

let test_remove_min () =
  let h = int_heap () in
  let a = Handle_heap.push h 1 in
  ignore (Handle_heap.push h 2);
  Handle_heap.remove h a;
  Alcotest.(check (option int)) "new min" (Some 2) (Handle_heap.peek h)

let test_remove_dead_handle_raises () =
  let h = int_heap () in
  let a = Handle_heap.push h 1 in
  ignore (Handle_heap.pop h);
  Alcotest.check_raises "dead handle" (Invalid_argument "Handle_heap.remove: dead handle")
    (fun () -> Handle_heap.remove h a)

let test_remove_foreign_handle_raises () =
  let h1 = int_heap () and h2 = int_heap () in
  let a = Handle_heap.push h1 1 in
  ignore (Handle_heap.push h2 1);
  Alcotest.check_raises "foreign handle"
    (Invalid_argument "Handle_heap.remove: handle from another heap") (fun () ->
      Handle_heap.remove h2 a)

let test_update_decrease () =
  let h = int_heap () in
  ignore (Handle_heap.push h 10);
  let b = Handle_heap.push h 20 in
  Handle_heap.update h b 1;
  Alcotest.(check (option int)) "decreased to min" (Some 1) (Handle_heap.peek h)

let test_update_increase () =
  let h = int_heap () in
  let a = Handle_heap.push h 1 in
  ignore (Handle_heap.push h 5);
  Handle_heap.update h a 10;
  Alcotest.(check (list int)) "increase reorders" [ 5; 10 ] (drain h)

let test_is_member () =
  let h = int_heap () in
  let a = Handle_heap.push h 1 in
  Alcotest.(check bool) "member while live" true (Handle_heap.is_member h a);
  ignore (Handle_heap.pop h);
  Alcotest.(check bool) "dead after pop" false (Handle_heap.is_member h a)

let test_value () =
  let h = int_heap () in
  let a = Handle_heap.push h 7 in
  Alcotest.(check int) "value" 7 (Handle_heap.value a);
  Handle_heap.update h a 9;
  Alcotest.(check int) "updated value" 9 (Handle_heap.value a)

let test_to_list () =
  let h = int_heap () in
  List.iter (fun v -> ignore (Handle_heap.push h v)) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "to_list multiset" [ 1; 2; 3 ]
    (List.sort compare (Handle_heap.to_list h))

let test_many_elements () =
  let h = int_heap () in
  let n = 10_000 in
  for i = n downto 1 do
    ignore (Handle_heap.push h i)
  done;
  Handle_heap.check_invariants h;
  Alcotest.(check int) "size" n (Handle_heap.size h);
  Alcotest.(check (list int)) "sorted" (List.init n (fun i -> i + 1)) (drain h)

(* Model-based property: replay pushes / pops / removes / updates against a
   reference association list, checking pop order and invariants. *)
let prop_model =
  let open QCheck in
  Test.make ~count:200 ~name:"heap vs model under random ops"
    (pair small_int (list (int_range 0 3)))
    (fun (seed, script) ->
      let rng = Rts_util.Prng.create ~seed in
      let h = int_heap () in
      (* model: list of (serial, value, handle); serial for identity *)
      let model = ref [] in
      let serial = ref 0 in
      let push () =
        let v = Rts_util.Prng.int rng 1000 in
        let hd = Handle_heap.push h v in
        incr serial;
        model := (!serial, ref v, hd) :: !model
      in
      let pick () =
        match !model with
        | [] -> None
        | l -> Some (List.nth l (Rts_util.Prng.int rng (List.length l)))
      in
      let ok = ref true in
      let step op =
        match op with
        | 0 | 3 -> push ()
        | 1 -> (
            (* pop must yield the model minimum *)
            match Handle_heap.pop h with
            | None -> if !model <> [] then ok := false
            | Some v ->
                let m = List.fold_left (fun acc (_, r, _) -> min acc !r) max_int !model in
                if v <> m then ok := false;
                (* remove one matching entry from the model *)
                let removed = ref false in
                model :=
                  List.filter
                    (fun (_, r, hd) ->
                      if (not !removed) && !r = v && not (Handle_heap.is_member h hd) then begin
                        removed := true;
                        false
                      end
                      else true)
                    !model)
        | 2 -> (
            match pick () with
            | Some ((sn, _, hd) as _entry) when Handle_heap.is_member h hd ->
                if Rts_util.Prng.bool rng then begin
                  Handle_heap.remove h hd;
                  model := List.filter (fun (sn', _, _) -> sn' <> sn) !model
                end
                else begin
                  let v' = Rts_util.Prng.int rng 1000 in
                  Handle_heap.update h hd v';
                  List.iter (fun (sn', r, _) -> if sn' = sn then r := v') !model
                end
            | _ -> ())
        | _ -> ()
      in
      List.iter step script;
      Handle_heap.check_invariants h;
      if Handle_heap.size h <> List.length !model then ok := false;
      (* final drain must be the sorted model *)
      let expected = List.sort compare (List.map (fun (_, r, _) -> !r) !model) in
      let got = drain h in
      !ok && got = expected)

let () =
  Alcotest.run "handle_heap"
    [
      ( "unit",
        [
          Alcotest.test_case "empty heap" `Quick test_empty;
          Alcotest.test_case "push/pop sorted" `Quick test_push_pop_sorted;
          Alcotest.test_case "peek stable" `Quick test_peek_stable;
          Alcotest.test_case "remove middle" `Quick test_remove_middle;
          Alcotest.test_case "remove min" `Quick test_remove_min;
          Alcotest.test_case "remove dead raises" `Quick test_remove_dead_handle_raises;
          Alcotest.test_case "remove foreign raises" `Quick test_remove_foreign_handle_raises;
          Alcotest.test_case "update decrease" `Quick test_update_decrease;
          Alcotest.test_case "update increase" `Quick test_update_increase;
          Alcotest.test_case "is_member lifecycle" `Quick test_is_member;
          Alcotest.test_case "value" `Quick test_value;
          Alcotest.test_case "to_list" `Quick test_to_list;
          Alcotest.test_case "10k elements" `Quick test_many_elements;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_model ]);
    ]
