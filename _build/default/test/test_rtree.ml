(* Rtree: stabbing semantics vs naive scan across dimensions, shape
   invariants (fill factors, equal leaf depth, tight MBRs) after heavy
   insert/delete churn — the failure mode the paper highlights in Fig. 8. *)

module Rtree = Rts_structures.Rtree
module Prng = Rts_util.Prng

let sorted_ids l = List.sort compare (List.map fst l)

let test_empty () =
  let t : unit Rtree.t = Rtree.create ~dim:2 () in
  Alcotest.(check int) "size" 0 (Rtree.size t);
  Alcotest.(check (list int)) "stab" [] (sorted_ids (Rtree.stab t [| 0.; 0. |]));
  Alcotest.(check int) "height" 1 (Rtree.height t);
  Rtree.check_invariants t

let test_single () =
  let t = Rtree.create ~dim:2 () in
  Rtree.insert t ~id:1 ~lo:[| 0.; 0. |] ~hi:[| 10.; 5. |] "a";
  Alcotest.(check (list int)) "inside" [ 1 ] (sorted_ids (Rtree.stab t [| 5.; 2. |]));
  Alcotest.(check (list int)) "lo corner in" [ 1 ] (sorted_ids (Rtree.stab t [| 0.; 0. |]));
  Alcotest.(check (list int)) "hi corner out" [] (sorted_ids (Rtree.stab t [| 10.; 5. |]));
  Rtree.check_invariants t

let test_split_grows_height () =
  let t = Rtree.create ~max_entries:4 ~dim:1 () in
  for i = 0 to 40 do
    let f = float_of_int i in
    Rtree.insert t ~id:i ~lo:[| f |] ~hi:[| f +. 0.5 |] ()
  done;
  Rtree.check_invariants t;
  Alcotest.(check bool) "height grew" true (Rtree.height t > 1);
  Alcotest.(check int) "size" 41 (Rtree.size t);
  Alcotest.(check (list int)) "stab leaf" [ 17 ] (sorted_ids (Rtree.stab t [| 17.25 |]))

let test_delete_and_condense () =
  let t = Rtree.create ~max_entries:4 ~dim:1 () in
  for i = 0 to 63 do
    let f = float_of_int i in
    Rtree.insert t ~id:i ~lo:[| f |] ~hi:[| f +. 0.5 |] ()
  done;
  for i = 0 to 55 do
    Rtree.delete t ~id:i;
    if i mod 8 = 0 then Rtree.check_invariants t
  done;
  Rtree.check_invariants t;
  Alcotest.(check int) "size" 8 (Rtree.size t);
  for i = 56 to 63 do
    let f = float_of_int i in
    Alcotest.(check (list int))
      (Printf.sprintf "survivor %d findable" i)
      [ i ]
      (sorted_ids (Rtree.stab t [| f +. 0.25 |]))
  done

let test_delete_to_empty_and_reuse () =
  let t = Rtree.create ~dim:2 () in
  for i = 0 to 30 do
    let f = float_of_int i in
    Rtree.insert t ~id:i ~lo:[| f; f |] ~hi:[| f +. 1.; f +. 1. |] ()
  done;
  for i = 0 to 30 do
    Rtree.delete t ~id:i
  done;
  Alcotest.(check int) "emptied" 0 (Rtree.size t);
  Rtree.check_invariants t;
  Rtree.insert t ~id:99 ~lo:[| 0.; 0. |] ~hi:[| 1.; 1. |] ();
  Alcotest.(check (list int)) "reusable" [ 99 ] (sorted_ids (Rtree.stab t [| 0.5; 0.5 |]))

let test_delete_missing () =
  let t : unit Rtree.t = Rtree.create ~dim:1 () in
  Alcotest.check_raises "missing" Not_found (fun () -> Rtree.delete t ~id:1)

let test_duplicate_id_rejected () =
  let t = Rtree.create ~dim:1 () in
  Rtree.insert t ~id:1 ~lo:[| 0. |] ~hi:[| 1. |] ();
  Alcotest.check_raises "dup" (Invalid_argument "Rtree.insert: duplicate id") (fun () ->
      Rtree.insert t ~id:1 ~lo:[| 2. |] ~hi:[| 3. |] ())

let test_bad_dim_rejected () =
  let t : unit Rtree.t = Rtree.create ~dim:2 () in
  Alcotest.check_raises "bad dim" (Invalid_argument "Rtree.insert: wrong dimensionality")
    (fun () -> Rtree.insert t ~id:1 ~lo:[| 0. |] ~hi:[| 1. |] ())

let test_heavily_overlapping () =
  (* The RTS workload regime: many near-identical rectangles around a hot
     center. The R-tree must stay correct (if slow). *)
  let t = Rtree.create ~dim:2 () in
  let rng = Prng.create ~seed:5 in
  let rects =
    List.init 300 (fun i ->
        let cx = 50. +. Prng.float rng 2. and cy = 50. +. Prng.float rng 2. in
        (i, (cx -. 10., cx +. 10., cy -. 10., cy +. 10.)))
  in
  List.iter
    (fun (i, (xlo, xhi, ylo, yhi)) -> Rtree.insert t ~id:i ~lo:[| xlo; ylo |] ~hi:[| xhi; yhi |] ())
    rects;
  Rtree.check_invariants t;
  let got = sorted_ids (Rtree.stab t [| 51.; 51. |]) in
  let want =
    List.filter
      (fun (_, (xlo, xhi, ylo, yhi)) -> xlo <= 51. && 51. < xhi && ylo <= 51. && 51. < yhi)
      rects
    |> List.map fst |> List.sort compare
  in
  Alcotest.(check (list int)) "hot point" want got

let prop_model dim =
  QCheck.Test.make ~count:100
    ~name:(Printf.sprintf "%dd stab = naive scan under random ops" dim)
    QCheck.(pair small_int (int_range 10 150))
    (fun (seed, steps) ->
      let rng = Prng.create ~seed in
      let t = Rtree.create ~max_entries:5 ~dim () in
      let model = ref [] in
      let next = ref 0 in
      let ok = ref true in
      let coord () = float_of_int (Prng.int rng 12) in
      for _ = 1 to steps do
        let r = Prng.int rng 10 in
        if r < 5 then begin
          let box =
            Array.init dim (fun _ ->
                let a = coord () in
                (a, a +. 1. +. coord ()))
          in
          Rtree.insert t ~id:!next ~lo:(Array.map fst box) ~hi:(Array.map snd box) ();
          model := (!next, box) :: !model;
          incr next
        end
        else if r < 7 && !model <> [] then begin
          let idx = Prng.int rng (List.length !model) in
          let id, _ = List.nth !model idx in
          Rtree.delete t ~id;
          model := List.filter (fun (id', _) -> id' <> id) !model
        end
        else begin
          let p = Array.init dim (fun _ -> coord ()) in
          let got = sorted_ids (Rtree.stab t p) in
          let want =
            List.filter
              (fun (_, box) ->
                Array.for_all2 (fun (lo, hi) x -> lo <= x && x < hi) box p)
              !model
            |> List.map fst |> List.sort compare
          in
          if got <> want then ok := false
        end;
        Rtree.check_invariants t
      done;
      !ok && Rtree.size t = List.length !model)

let () =
  Alcotest.run "rtree"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single" `Quick test_single;
          Alcotest.test_case "splits grow height" `Quick test_split_grows_height;
          Alcotest.test_case "delete and condense" `Quick test_delete_and_condense;
          Alcotest.test_case "delete to empty, reuse" `Quick test_delete_to_empty_and_reuse;
          Alcotest.test_case "delete missing" `Quick test_delete_missing;
          Alcotest.test_case "duplicate id rejected" `Quick test_duplicate_id_rejected;
          Alcotest.test_case "bad dimensionality rejected" `Quick test_bad_dim_rejected;
          Alcotest.test_case "heavily overlapping rectangles" `Quick test_heavily_overlapping;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest (prop_model 1);
          QCheck_alcotest.to_alcotest (prop_model 2);
          QCheck_alcotest.to_alcotest (prop_model 3);
        ] );
    ]
