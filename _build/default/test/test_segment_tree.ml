(* Segment_tree: elementary-interval tiling, path and canonical-set
   traversals, and the structural properties the endpoint tree and the
   seg-intv structure both rely on (disjointness, O(log n) sizes). *)

module Seg = Rts_structures.Segment_tree
module Prng = Rts_util.Prng

let build keys = Option.get (Seg.build ~payload:(fun () -> ref 0) (Array.of_list keys))

let test_empty_grid () =
  Alcotest.(check bool) "None" true (Seg.build ~payload:(fun () -> ()) [||] = None)

let test_singleton_grid () =
  let t = build [ 5. ] in
  Alcotest.(check int) "one node" 1 (Seg.node_count t);
  Alcotest.(check bool) "leaf" true (Seg.is_leaf (Seg.root t));
  Alcotest.(check (pair (float 0.) (float 0.))) "jurisdiction" (5., infinity)
    (Seg.jurisdiction (Seg.root t));
  Alcotest.(check bool) "covers right" true (Seg.covers t 1e30);
  Alcotest.(check bool) "not left" false (Seg.covers t 4.9)

let test_build_validation () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Segment_tree.build: keys must be sorted and distinct") (fun () ->
      ignore (Seg.build ~payload:(fun () -> ()) [| 2.; 1. |]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Segment_tree.build: keys must be sorted and distinct") (fun () ->
      ignore (Seg.build ~payload:(fun () -> ()) [| 1.; 1. |]));
  Alcotest.check_raises "non-finite" (Invalid_argument "Segment_tree.build: non-finite key")
    (fun () -> ignore (Seg.build ~payload:(fun () -> ()) [| 1.; infinity |]))

let test_node_count () =
  (* n leaves => 2n - 1 nodes in a full binary tree *)
  List.iter
    (fun n ->
      let t = build (List.init n float_of_int) in
      Alcotest.(check int) (Printf.sprintf "n=%d" n) ((2 * n) - 1) (Seg.node_count t))
    [ 1; 2; 3; 7; 8; 100 ]

let test_leaves_tile_the_line () =
  let t = build [ 1.; 3.; 7.; 9. ] in
  Seg.check_invariants t;
  let leaves = ref [] in
  Seg.iter_nodes t (fun n -> if Seg.is_leaf n then leaves := Seg.jurisdiction n :: !leaves);
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "leaf jurisdictions"
    [ (1., 3.); (3., 7.); (7., 9.); (9., infinity) ]
    (List.sort compare !leaves)

let test_path_unique_per_level () =
  let t = build (List.init 50 (fun i -> float_of_int (2 * i))) in
  (* each point's path visits exactly one node per level, each covering it *)
  List.iter
    (fun x ->
      let visited = ref [] in
      Seg.iter_path t x (fun n -> visited := Seg.jurisdiction n :: !visited);
      Alcotest.(check bool) "nonempty" true (!visited <> []);
      List.iter
        (fun (lo, hi) ->
          Alcotest.(check bool) (Printf.sprintf "x=%g in [%g,%g)" x lo hi) true
            (lo <= x && x < hi))
        !visited;
      (* strictly nested: sorted by width they form a chain *)
      let widths = List.map (fun (lo, hi) -> hi -. lo) !visited in
      let sorted = List.sort compare widths in
      Alcotest.(check (list (float 0.))) "chain" sorted (List.rev (List.sort compare widths)
                                                         |> List.rev))
    [ 0.; 1.; 49.; 98.; 1e10 ]

let test_canonical_disjoint_cover () =
  let rng = Prng.create ~seed:3 in
  let keys = List.init 64 (fun i -> float_of_int i) in
  let t = build keys in
  for _ = 1 to 200 do
    let a = Prng.int rng 63 in
    let b = a + 1 + Prng.int rng (63 - a) in
    let lo = float_of_int a and hi = float_of_int b in
    let spans = ref [] in
    Seg.iter_canonical t ~lo ~hi (fun n -> spans := Seg.jurisdiction n :: !spans);
    let spans = List.sort compare !spans in
    (* contiguous tiling of [lo, hi) *)
    let rec tile cur = function
      | [] -> Alcotest.(check (float 0.)) "ends at hi" hi cur
      | (l, h) :: rest ->
          Alcotest.(check (float 0.)) "contiguous" cur l;
          tile h rest
    in
    (match spans with
    | (l, _) :: _ -> Alcotest.(check (float 0.)) "starts at lo" lo l
    | [] -> Alcotest.fail "empty canonical set");
    tile lo spans;
    (* O(log n): at most 2 per level *)
    Alcotest.(check bool)
      (Printf.sprintf "size %d <= 2 log2(128)" (List.length spans))
      true
      (List.length spans <= 14)
  done

let test_canonical_to_infinity () =
  let t = build [ 0.; 10.; 20. ] in
  let spans = ref [] in
  Seg.iter_canonical t ~lo:10. ~hi:infinity (fun n -> spans := Seg.jurisdiction n :: !spans);
  let total_lo = List.fold_left (fun acc (lo, _) -> min acc lo) infinity !spans in
  let total_hi = List.fold_left (fun acc (_, hi) -> max acc hi) neg_infinity !spans in
  Alcotest.(check (float 0.)) "from 10" 10. total_lo;
  Alcotest.(check (float 0.)) "to infinity" infinity total_hi

let test_canonical_validation () =
  let t = build [ 0.; 10. ] in
  Alcotest.check_raises "off grid" (Invalid_argument "Segment_tree.iter_canonical: lo off grid")
    (fun () -> Seg.iter_canonical t ~lo:5. ~hi:10. (fun _ -> ()));
  Alcotest.check_raises "hi off grid"
    (Invalid_argument "Segment_tree.iter_canonical: hi off grid") (fun () ->
      Seg.iter_canonical t ~lo:0. ~hi:5. (fun _ -> ()));
  Alcotest.check_raises "empty" (Invalid_argument "Segment_tree.iter_canonical: empty range")
    (fun () -> Seg.iter_canonical t ~lo:10. ~hi:10. (fun _ -> ()))

let test_on_grid () =
  let t = build [ 1.; 5.; 9. ] in
  List.iter
    (fun (x, expected) ->
      Alcotest.(check bool) (Printf.sprintf "on_grid %g" x) expected (Seg.on_grid t x))
    [ (1., true); (5., true); (9., true); (0., false); (3., false); (10., false) ]

let test_payload_counters () =
  (* Use payload refs as counters via iter_path: the segment-tree half of
     the endpoint tree's counting scheme. *)
  let t = build [ 0.; 10.; 20.; 30. ] in
  let bump x = Seg.iter_path t x (fun n -> incr (Seg.payload n)) in
  List.iter bump [ 5.; 15.; 15.; 25.; 100. ];
  (* count elements in [10, 30) via canonical nodes *)
  let total = ref 0 in
  Seg.iter_canonical t ~lo:10. ~hi:30. (fun n -> total := !total + !(Seg.payload n));
  Alcotest.(check int) "3 elements in [10,30)" 3 !total;
  let all = ref 0 in
  Seg.iter_canonical t ~lo:0. ~hi:infinity (fun n -> all := !all + !(Seg.payload n));
  Alcotest.(check int) "all 5 accounted" 5 !all

let prop_canonical_equals_scan =
  QCheck.Test.make ~count:300 ~name:"canonical count = naive leaf scan"
    QCheck.(triple small_int (int_range 2 64) (int_range 0 62))
    (fun (seed, n, a) ->
      QCheck.assume (a < n - 1);
      let rng = Prng.create ~seed in
      let keys = Array.init n (fun i -> float_of_int i) in
      let t = Option.get (Seg.build ~payload:(fun () -> ref 0) keys) in
      (* scatter points *)
      let points = List.init 100 (fun _ -> Prng.float rng (float_of_int (n + 5))) in
      List.iter (fun x -> Seg.iter_path t x (fun node -> incr (Seg.payload node))) points;
      let b = a + 1 + Prng.int rng (n - 1 - a) in
      let lo = float_of_int a and hi = float_of_int b in
      let canonical = ref 0 in
      Seg.iter_canonical t ~lo ~hi (fun node -> canonical := !canonical + !(Seg.payload node));
      let naive = List.length (List.filter (fun x -> lo <= x && x < hi) points) in
      !canonical = naive)

let () =
  Alcotest.run "segment_tree"
    [
      ( "unit",
        [
          Alcotest.test_case "empty grid" `Quick test_empty_grid;
          Alcotest.test_case "singleton grid" `Quick test_singleton_grid;
          Alcotest.test_case "build validation" `Quick test_build_validation;
          Alcotest.test_case "node count" `Quick test_node_count;
          Alcotest.test_case "leaves tile the line" `Quick test_leaves_tile_the_line;
          Alcotest.test_case "path covers point" `Quick test_path_unique_per_level;
          Alcotest.test_case "canonical disjoint cover" `Quick test_canonical_disjoint_cover;
          Alcotest.test_case "canonical to infinity" `Quick test_canonical_to_infinity;
          Alcotest.test_case "canonical validation" `Quick test_canonical_validation;
          Alcotest.test_case "on_grid" `Quick test_on_grid;
          Alcotest.test_case "payload counters" `Quick test_payload_counters;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_canonical_equals_scan ]);
    ]
