lib/core/stab2d_engine.mli: Engine Types
