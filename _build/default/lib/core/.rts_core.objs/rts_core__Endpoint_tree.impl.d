lib/core/endpoint_tree.ml: Array Hashtbl List Types
