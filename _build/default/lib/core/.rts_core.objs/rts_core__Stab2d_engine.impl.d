lib/core/stab2d_engine.ml: Array Engine Hashtbl List Rts_structures Types
