lib/core/stab1d_engine.ml: Array Engine Hashtbl List Rts_structures Types
