lib/core/dt_engine.mli: Endpoint_tree Engine Types
