lib/core/baseline_engine.ml: Engine Hashtbl List Types
