lib/core/endpoint_tree.mli: Types
