lib/core/rtree_engine.ml: Engine Hashtbl List Rts_structures Types
