lib/core/rts.ml: Array Buffer Dt_engine Format Hashtbl List Printf Scanf String Types
