lib/core/rtree_engine.mli: Engine Types
