lib/core/engine.ml: List Types
