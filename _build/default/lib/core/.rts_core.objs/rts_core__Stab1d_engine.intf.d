lib/core/stab1d_engine.mli: Engine Types
