lib/core/types.ml: Array Float Format
