lib/core/baseline_engine.mli: Engine Types
