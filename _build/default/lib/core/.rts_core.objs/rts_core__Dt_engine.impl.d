lib/core/dt_engine.ml: Array Endpoint_tree Engine Hashtbl List Logs Types
