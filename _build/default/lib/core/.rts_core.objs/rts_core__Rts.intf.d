lib/core/rts.mli: Types
