open Types
module Interval_tree = Rts_structures.Interval_tree

type state = { q : query; mutable got : int }

type t = { tree : state Interval_tree.t; index : (int, state) Hashtbl.t }

let create () = { tree = Interval_tree.create (); index = Hashtbl.create 64 }

let register t q =
  validate_query ~dim:1 q;
  if Hashtbl.mem t.index q.id then invalid_arg "Stab1d_engine.register: id already alive";
  let s = { q; got = 0 } in
  Interval_tree.insert t.tree ~id:q.id ~lo:q.rect.lo.(0) ~hi:q.rect.hi.(0) s;
  Hashtbl.replace t.index q.id s

let remove t (s : state) =
  Interval_tree.delete t.tree ~id:s.q.id ~lo:s.q.rect.lo.(0) ~hi:s.q.rect.hi.(0);
  Hashtbl.remove t.index s.q.id

let terminate t id =
  match Hashtbl.find_opt t.index id with Some s -> remove t s | None -> raise Not_found

let process t e =
  validate_elem ~dim:1 e;
  let matured = ref [] in
  Interval_tree.iter_stab t.tree e.value.(0) (fun _id s ->
      s.got <- s.got + e.weight;
      if s.got >= s.q.threshold then matured := s :: !matured);
  List.iter (remove t) !matured;
  Engine.sort_matured (List.map (fun s -> s.q.id) !matured)

let is_alive t id = Hashtbl.mem t.index id

let progress t id =
  match Hashtbl.find_opt t.index id with Some s -> s.got | None -> raise Not_found

let alive_count t = Hashtbl.length t.index

let engine t =
  {
    Engine.name = "interval-tree";
    dim = 1;
    register = register t;
    register_batch = Engine.batch_of_register (register t);
    terminate = terminate t;
    process = process t;
    alive = (fun () -> alive_count t);
  }

let make () = engine (create ())
