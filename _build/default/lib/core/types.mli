(** Shared vocabulary of the RTS problem (Section 2 of the paper).

    The data space is [R^d]. A stream element carries a point value and a
    positive integer weight; a query is an axis-parallel rectangle plus an
    integer threshold. All rectangles in this repository are half-open
    ([lo <= x < hi] per coordinate): the paper's "infinitesimal trick"
    (Section 4) turns a closed bound into a half-open one by nudging the
    upper endpoint to the next representable float, which {!rect_closed}
    implements. *)

type point = float array
(** A point in [R^d], represented as a [d]-element array. *)

type rect = { lo : float array; hi : float array }
(** Half-open box: contains point [p] iff [lo.(k) <= p.(k) < hi.(k)] for
    every coordinate [k]. [lo.(k) = neg_infinity] and [hi.(k) = infinity]
    express one-sided ranges. *)

type elem = { value : point; weight : int }
(** One stream element. [weight >= 1]; the counting version of the problem
    has [weight = 1] everywhere. *)

type query = { id : int; rect : rect; threshold : int }
(** A registered RTS query: mature once the accumulated weight of elements
    falling in [rect] (since registration) reaches [threshold >= 1]. Ids
    are chosen by the caller and must be unique among alive queries. *)

val dim_of_rect : rect -> int

val rect_make : (float * float) array -> rect
(** [rect_make bounds] builds a half-open rectangle from per-dimension
    [(lo, hi)] pairs. Raises [Invalid_argument] if any [lo >= hi]. *)

val rect_closed : (float * float) array -> rect
(** Like {!rect_make}, but each upper bound is treated as inclusive: it is
    replaced by its float successor ([Float.succ]), per the paper's
    infinitesimal trick. *)

val interval : float -> float -> rect
(** [interval lo hi] is the 1D half-open rectangle [lo, hi). *)

val interval_closed : float -> float -> rect
(** [interval_closed lo hi] is the 1D closed interval [lo, hi] encoded as
    [lo, succ hi). *)

val rect_contains : rect -> point -> bool
(** Half-open containment test. Raises [Invalid_argument] on mismatched
    dimensionality. *)

val validate_query : dim:int -> query -> unit
(** Check dimensionality, non-empty rectangle, and [threshold >= 1];
    raises [Invalid_argument] with a descriptive message otherwise. *)

val validate_elem : dim:int -> elem -> unit
(** Check dimensionality, finite coordinates, and [weight >= 1]. *)

val pp_rect : Format.formatter -> rect -> unit

val pp_elem : Format.formatter -> elem -> unit

val pp_query : Format.formatter -> query -> unit
