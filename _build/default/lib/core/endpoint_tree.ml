open Types

type stats = {
  mutable elements : int;
  mutable node_updates : int;
  mutable signals : int;
  mutable round_ends : int;
  mutable heap_ops : int;
}

(* One query's distributed-tracking state. [edges] are the (query, node)
   pairs of its canonical node set U_q: the "participants" of Section 4.
   [tree_tau] is the weight the query still needed when this tree was
   built; within a tree, W(q) is simply the sum of the canonical nodes'
   counters (all counters start at zero at build time and U_q tiles R_q). *)
type qstate = {
  query : query;
  tree_tau : int;
  mutable edges : edge array;
  mutable tmp_edges : edge list; (* build-time accumulator *)
  mutable lambda : int;
  mutable signals : int; (* signals received in the current round *)
  mutable direct : bool; (* endgame mode: remaining <= 6h *)
  mutable wknown : int; (* direct mode: coordinator's exact W(q) *)
  mutable alive : bool;
}

and edge = {
  owner : qstate;
  enode : node;
  mutable cbar : int; (* node counter acknowledged to the coordinator *)
  mutable sigma : int; (* counter value at which the next signal fires *)
  mutable pos : int; (* index in the node's sigma heap; -1 when absent *)
}

(* A node of one endpoint tree level. [jlo, jhi) is the jurisdiction
   interval; the rightmost spine has jhi = infinity. Last-dimension nodes
   carry the element counter and the min-heap H(u) of slack deadlines;
   other dimensions carry the secondary tree on the next dimension. *)
and node = {
  jlo : float;
  jhi : float;
  left : node option;
  right : node option;
  mutable counter : int;
  heap : sheap;
  mutable sub : level option;
  mutable pending : qstate list; (* build-time accumulator *)
}

(* The per-node min-heap H(u) of slack deadlines, intrusive and specialized:
   entries are the edges themselves, ordered by [sigma], each knowing its
   own array index. There is one such heap per last-dimension node and one
   entry per (query, canonical node) pair — sum of |U_q| entries overall —
   so both the per-entry footprint and the per-comparison cost matter far
   more than generality here (a closure-based generic heap measurably
   dominates the 2D running time). *)
and sheap = { mutable data : edge array; mutable len : int }

and level = { k : int; last : bool; root : node option }

type t = {
  dims : int;
  eager : bool; (* ablation: skip DT rounds, signal every counter change *)
  top : level;
  states : (int, qstate) Hashtbl.t;
  mutable alive : int;
  built : int;
  on_mature : int -> unit;
  st : stats;
}

(* ---- intrusive sigma heap ------------------------------------------- *)

let heap_swap h i j =
  let a = h.data.(i) and b = h.data.(j) in
  h.data.(i) <- b;
  h.data.(j) <- a;
  a.pos <- j;
  b.pos <- i

let rec heap_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.data.(i).sigma < h.data.(parent).sigma then begin
      heap_swap h i parent;
      heap_up h parent
    end
  end

let rec heap_down h i =
  let l = (2 * i) + 1 in
  if l < h.len then begin
    let r = l + 1 in
    let smallest = if r < h.len && h.data.(r).sigma < h.data.(l).sigma then r else l in
    if h.data.(smallest).sigma < h.data.(i).sigma then begin
      heap_swap h i smallest;
      heap_down h smallest
    end
  end

let heap_push h e =
  let cap = Array.length h.data in
  if h.len >= cap then begin
    let ndata = Array.make (max 4 (2 * cap)) e in
    Array.blit h.data 0 ndata 0 h.len;
    h.data <- ndata
  end;
  h.data.(h.len) <- e;
  e.pos <- h.len;
  h.len <- h.len + 1;
  heap_up h e.pos

let heap_remove h e =
  let i = e.pos in
  assert (i >= 0 && i < h.len && h.data.(i) == e);
  h.len <- h.len - 1;
  e.pos <- -1;
  if i <> h.len then begin
    let last = h.data.(h.len) in
    h.data.(i) <- last;
    last.pos <- i;
    heap_down h i;
    heap_up h last.pos
  end

(* Restore order after [e.sigma] changed in place. *)
let heap_fix h e =
  heap_down h e.pos;
  heap_up h e.pos

(* ---- construction --------------------------------------------------- *)

let rec build_subtree keys lo hi =
  if lo = hi then
    let jhi = if lo + 1 < Array.length keys then keys.(lo + 1) else infinity in
    {
      jlo = keys.(lo);
      jhi;
      left = None;
      right = None;
      counter = 0;
      heap = { data = [||]; len = 0 };
      sub = None;
      pending = [];
    }
  else
    let mid = (lo + hi) / 2 in
    let l = build_subtree keys lo mid in
    let r = build_subtree keys (mid + 1) hi in
    {
      jlo = l.jlo;
      jhi = r.jhi;
      left = Some l;
      right = Some r;
      counter = 0;
      heap = { data = [||]; len = 0 };
      sub = None;
      pending = [];
    }

(* Canonical decomposition of [qlo, qhi) over the subtree rooted at [u]:
   emit the maximal nodes whose jurisdiction is contained in the range.
   Since qlo and qhi are grid endpoints of this level, a leaf can never
   partially overlap the range. *)
let rec add_canonical u qlo qhi emit =
  if qlo <= u.jlo && u.jhi <= qhi then emit u
  else if u.jhi <= qlo || qhi <= u.jlo then ()
  else
    match (u.left, u.right) with
    | Some l, Some r ->
        add_canonical l qlo qhi emit;
        add_canonical r qlo qhi emit
    | _ -> assert false

let rec build_level ~dims k (qs : qstate list) : level =
  let last = k = dims - 1 in
  (* Grid endpoints on dimension k. A +infinity upper bound creates no
     endpoint: the rightmost jurisdiction already extends to +infinity. *)
  let endpoints =
    List.concat_map
      (fun q ->
        let lo = q.query.rect.lo.(k) and hi = q.query.rect.hi.(k) in
        if hi = infinity then [ lo ] else [ lo; hi ])
      qs
  in
  let keys = Array.of_list (List.sort_uniq compare endpoints) in
  if Array.length keys = 0 then { k; last; root = None }
  else begin
    let root = build_subtree keys 0 (Array.length keys - 1) in
    List.iter
      (fun q ->
        let qlo = q.query.rect.lo.(k) and qhi = q.query.rect.hi.(k) in
        add_canonical root qlo qhi (fun u ->
            if last then
              q.tmp_edges <-
                { owner = q; enode = u; cbar = 0; sigma = 0; pos = -1 } :: q.tmp_edges
            else u.pending <- q :: u.pending))
      qs;
    (* Recursively hang the secondary trees. *)
    if not last then begin
      let rec visit u =
        if u.pending <> [] then begin
          u.sub <- Some (build_level ~dims (k + 1) u.pending);
          u.pending <- []
        end;
        (match u.left with Some l -> visit l | None -> ());
        match u.right with Some r -> visit r | None -> ()
      in
      visit root
    end;
    { k; last; root = Some root }
  end

(* ---- distributed-tracking per query ---------------------------------- *)

let set_deadline t edge =
  t.st.heap_ops <- t.st.heap_ops + 1;
  if edge.pos >= 0 then heap_fix edge.enode.heap edge else heap_push edge.enode.heap edge

(* Start a DT round (or the direct endgame) for [q], given how much weight
   it still needs. Resynchronizes every edge with its node's exact counter
   — the "collection" step of the protocol. *)
let start_phase t (q : qstate) remaining =
  assert (remaining >= 1);
  let h = Array.length q.edges in
  if t.eager || remaining <= 6 * h then begin
    q.direct <- true;
    q.wknown <- q.tree_tau - remaining;
    Array.iter
      (fun e ->
        e.cbar <- e.enode.counter;
        e.sigma <- e.enode.counter + 1;
        set_deadline t e)
      q.edges
  end
  else begin
    q.direct <- false;
    q.lambda <- remaining / (2 * h);
    q.signals <- 0;
    Array.iter
      (fun e ->
        e.cbar <- e.enode.counter;
        e.sigma <- e.cbar + q.lambda;
        set_deadline t e)
      q.edges
  end

let tree_weight (q : qstate) = Array.fold_left (fun acc e -> acc + e.enode.counter) 0 q.edges

let mature t (q : qstate) =
  q.alive <- false;
  Array.iter
    (fun e ->
      if e.pos >= 0 then begin
        heap_remove e.enode.heap e;
        t.st.heap_ops <- t.st.heap_ops + 1
      end)
    q.edges;
  t.alive <- t.alive - 1;
  Hashtbl.remove t.states q.query.id;
  t.on_mature q.query.id

let end_round t (q : qstate) =
  t.st.round_ends <- t.st.round_ends + 1;
  let w = tree_weight q in
  let remaining = q.tree_tau - w in
  if remaining <= 0 then mature t q else start_phase t q remaining

(* The edge has just been popped from its node's heap because
   c(u) >= sigma. Deliver the pending signal(s). *)
let fire t edge =
  let q = edge.owner in
  let u = edge.enode in
  if q.direct then begin
    t.st.signals <- t.st.signals + 1;
    q.wknown <- q.wknown + (u.counter - edge.cbar);
    edge.cbar <- u.counter;
    if q.wknown >= q.tree_tau then mature t q
    else begin
      edge.sigma <- u.counter + 1;
      set_deadline t edge
    end
  end
  else begin
    let h = Array.length q.edges in
    let k = (u.counter - edge.cbar) / q.lambda in
    (* The coordinator halts the round at the h-th signal, so at most
       h - q.signals of the k signals are actually delivered; any surplus
       weight is picked up by the round-end collection. *)
    let delivered = min k (h - q.signals) in
    t.st.signals <- t.st.signals + delivered;
    q.signals <- q.signals + delivered;
    if q.signals >= h then end_round t q
    else begin
      edge.cbar <- edge.cbar + (k * q.lambda);
      edge.sigma <- edge.cbar + q.lambda;
      set_deadline t edge
    end
  end

(* Hot path: runs on every counter increment of every visited node, so it
   must not allocate when no deadline fires. *)
let drain t u =
  let h = u.heap in
  let rec loop () =
    if h.len > 0 then begin
      let edge = h.data.(0) in
      if edge.sigma <= u.counter then begin
        heap_remove h edge;
        t.st.heap_ops <- t.st.heap_ops + 1;
        fire t edge;
        loop ()
      end
    end
  in
  loop ()

(* ---- public API ------------------------------------------------------ *)

let build ?(eager = false) ~dim ~on_mature batch =
  if dim < 1 then invalid_arg "Endpoint_tree.build: dim < 1";
  let states = Hashtbl.create (max 16 (2 * List.length batch)) in
  let qstates =
    List.map
      (fun (q, remaining) ->
        validate_query ~dim q;
        if remaining < 1 then invalid_arg "Endpoint_tree.build: remaining < 1";
        if remaining > q.threshold then
          invalid_arg "Endpoint_tree.build: remaining exceeds threshold";
        if Hashtbl.mem states q.id then invalid_arg "Endpoint_tree.build: duplicate query id";
        let qs =
          {
            query = q;
            tree_tau = remaining;
            edges = [||];
            tmp_edges = [];
            lambda = 0;
            signals = 0;
            direct = false;
            wknown = 0;
            alive = true;
          }
        in
        Hashtbl.replace states q.id qs;
        qs)
      batch
  in
  let top = build_level ~dims:dim 0 qstates in
  let t =
    {
      dims = dim;
      eager;
      top;
      states;
      alive = List.length qstates;
      built = List.length qstates;
      on_mature;
      st = { elements = 0; node_updates = 0; signals = 0; round_ends = 0; heap_ops = 0 };
    }
  in
  List.iter
    (fun q ->
      q.edges <- Array.of_list q.tmp_edges;
      q.tmp_edges <- [];
      assert (Array.length q.edges >= 1);
      start_phase t q q.tree_tau)
    qstates;
  t

let dim t = t.dims

let process t e =
  if Array.length e.value <> t.dims then invalid_arg "Endpoint_tree.process: bad dimensionality";
  if e.weight < 1 then invalid_arg "Endpoint_tree.process: weight < 1";
  t.st.elements <- t.st.elements + 1;
  let rec process_level lvl =
    match lvl.root with
    | None -> ()
    | Some root ->
        let x = e.value.(lvl.k) in
        if x >= root.jlo then descend lvl x root
  and descend lvl x u =
    (if lvl.last then begin
       u.counter <- u.counter + e.weight;
       t.st.node_updates <- t.st.node_updates + 1;
       drain t u
     end
     else match u.sub with Some sub -> process_level sub | None -> ());
    match u.right with
    | Some r -> (
        if x >= r.jlo then descend lvl x r
        else match u.left with Some l -> descend lvl x l | None -> assert false)
    | None -> ()
  in
  process_level t.top

let find_alive t id =
  match Hashtbl.find_opt t.states id with
  | Some q when q.alive -> q
  | _ -> raise Not_found

let is_alive t id = match Hashtbl.find_opt t.states id with Some q -> q.alive | None -> false

let remove t id =
  let q = find_alive t id in
  q.alive <- false;
  Array.iter
    (fun e ->
      if e.pos >= 0 then begin
        heap_remove e.enode.heap e;
        t.st.heap_ops <- t.st.heap_ops + 1
      end)
    q.edges;
  t.alive <- t.alive - 1;
  Hashtbl.remove t.states id

let current_weight t id = tree_weight (find_alive t id)

let remaining t id =
  let q = find_alive t id in
  q.tree_tau - tree_weight q

let alive_count t = t.alive

let built_count t = t.built

let alive_queries t =
  Hashtbl.fold
    (fun _ (q : qstate) acc -> if q.alive then (q.query, q.tree_tau - tree_weight q) :: acc else acc)
    t.states []

let fanout t id = Array.length (find_alive t id).edges

let stats t = t.st

type space = { tree_nodes : int; live_entries : int; dead_entries : int }

let space t =
  let nodes = ref 0 and live = ref 0 and dead = ref 0 in
  let rec walk_level lvl =
    match lvl.root with None -> () | Some root -> walk root
  and walk u =
    incr nodes;
    live := !live + u.heap.len;
    dead := !dead + (Array.length u.heap.data - u.heap.len);
    (match u.sub with Some sub -> walk_level sub | None -> ());
    (match u.left with Some l -> walk l | None -> ());
    match u.right with Some r -> walk r | None -> ()
  in
  walk_level t.top;
  { tree_nodes = !nodes; live_entries = !live; dead_entries = !dead }
