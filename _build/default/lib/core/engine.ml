open Types

type t = {
  name : string;
  dim : int;
  register : query -> unit;
  register_batch : query list -> unit;
  terminate : int -> unit;
  process : elem -> int list;
  alive : unit -> int;
}

let sort_matured ids = List.sort compare ids

let batch_of_register register queries = List.iter register queries
