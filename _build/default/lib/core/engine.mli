(** Uniform interface over all RTS engines.

    Every solution evaluated in the paper — the proposed DT algorithm and
    the four competitors — supports exactly three operations: REGISTER,
    TERMINATE, and processing one stream element (which may mature any
    number of queries). This record-of-closures interface lets the workload
    driver, the test suite, and the benchmark harness treat them uniformly;
    cross-checking any two engines for equal maturity behaviour is the
    central correctness property of the repository. *)

open Types

type t = {
  name : string;
  dim : int;
  register : query -> unit;
      (** Accept a query at the current moment. Raises [Invalid_argument] on
          an invalid query or duplicate alive id. *)
  register_batch : query list -> unit;
      (** Accept many queries at one instant. Semantically identical to
          registering them one by one (in list order), but an engine may
          exploit the batch — the DT engine builds one endpoint tree
          directly, the paper's Scenario-1 "construction at the beginning
          of the stream", instead of paying the logarithmic method's
          migration churn per query. *)
  terminate : int -> unit;
      (** Stop and eliminate an alive query by id. Raises [Not_found] if the
          id is not alive (already matured, terminated, or never seen). *)
  process : elem -> int list;
      (** Feed one stream element; returns the ids of the queries this
          element matured, in ascending id order (deterministic across
          engines so traces can be compared verbatim). *)
  alive : unit -> int;  (** Number of currently alive queries. *)
}

val sort_matured : int list -> int list
(** Ascending, dedup-free sort used by implementations to normalize their
    [process] output. *)

val batch_of_register : (query -> unit) -> query list -> unit
(** Default [register_batch]: iterate [register]. *)
