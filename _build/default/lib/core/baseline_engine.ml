open Types

type state = { q : query; mutable got : int }

type t = { dims : int; alive : (int, state) Hashtbl.t }

let create ~dim () =
  if dim < 1 then invalid_arg "Baseline_engine.create: dim < 1";
  { dims = dim; alive = Hashtbl.create 64 }

let register t q =
  validate_query ~dim:t.dims q;
  if Hashtbl.mem t.alive q.id then invalid_arg "Baseline_engine.register: id already alive";
  Hashtbl.replace t.alive q.id { q; got = 0 }

let terminate t id =
  if not (Hashtbl.mem t.alive id) then raise Not_found;
  Hashtbl.remove t.alive id

let process t e =
  validate_elem ~dim:t.dims e;
  let matured = ref [] in
  Hashtbl.iter
    (fun id s ->
      if rect_contains s.q.rect e.value then begin
        s.got <- s.got + e.weight;
        if s.got >= s.q.threshold then matured := id :: !matured
      end)
    t.alive;
  List.iter (Hashtbl.remove t.alive) !matured;
  Engine.sort_matured !matured

let is_alive t id = Hashtbl.mem t.alive id

let progress t id =
  match Hashtbl.find_opt t.alive id with Some s -> s.got | None -> raise Not_found

let alive_count t = Hashtbl.length t.alive

let engine t =
  {
    Engine.name = "baseline";
    dim = t.dims;
    register = register t;
    register_batch = Engine.batch_of_register (register t);
    terminate = terminate t;
    process = process t;
    alive = (fun () -> alive_count t);
  }

let make ~dim = engine (create ~dim ())
