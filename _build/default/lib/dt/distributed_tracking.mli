(** Executable specification of the distributed-tracking (DT) protocol
    (Cormode, Muthukrishnan & Yi, ACM TALG 2011), exactly as described in
    Sections 3.2 and 7 of the paper.

    Setting: one coordinator and [h] participants, each holding an integer
    counter starting at 0. At each timestamp at most one counter increases —
    by 1 in the unweighted problem of Section 3.2, by an arbitrary positive
    integer in the weighted variant of Section 7. The coordinator must
    report {e maturity} the moment the counter sum reaches the threshold
    [tau], while keeping the number of transmitted messages
    [O(h log tau)] — far below the trivial [tau] messages.

    Protocol: while [tau > 6h], the coordinator broadcasts the slack
    [lambda = tau / (2h)]; a participant sends a one-bit signal for every
    [lambda] units its counter accumulates; after [h] signals the coordinator
    collects all exact counters, deducts them from [tau], and starts the next
    round. Once [tau <= 6h] every counter change is forwarded directly.

    This module simulates all sites on one machine with explicit message
    accounting. The RTS core inlines the same logic across shared
    endpoint-tree nodes; the test suite cross-checks the core against this
    reference and validates the message bound. *)

type t

val create : h:int -> tau:int -> t
(** [create ~h ~tau] starts a protocol instance with [h] participants
    (numbered [0 .. h-1]) and threshold [tau]. Requires [h >= 1] and
    [tau >= 1]. *)

val increment : t -> site:int -> by:int -> bool
(** [increment t ~site ~by] raises participant [site]'s counter by [by > 0]
    (use [by:1] for the unweighted protocol) and runs all induced protocol
    steps. Returns [true] exactly when this increment makes the instance
    mature. Raises [Invalid_argument] on a dead instance, a bad site index,
    or [by <= 0]. *)

val is_mature : t -> bool

val total : t -> int
(** Exact current sum of all participants' counters (ground truth the
    simulator can see; the coordinator itself only knows collected state). *)

val messages : t -> int
(** Number of protocol messages (words) transmitted so far, counting slack
    broadcasts, signals, round-end announcements and counter collections. *)

val rounds : t -> int
(** Number of completed rounds (i.e. slack halvings) so far. *)

val message_bound : h:int -> tau:int -> int
(** A concrete instantiation of the [O(h log tau)] guarantee:
    an upper bound on [messages] valid for every execution, asserted by the
    test suite. *)
