type mode =
  | Rounds (* slack-based rounds while remaining tau > 6h *)
  | Direct (* endgame: every counter change is forwarded *)

type t = {
  h : int;
  tau : int;
  counters : int array; (* c_i: ground-truth participant counters *)
  cbar : int array; (* counter value acknowledged to the coordinator *)
  mutable mode : mode;
  mutable lambda : int;
  mutable signals : int; (* signals received in the current round *)
  mutable known : int; (* Direct mode: coordinator's exact view of the sum *)
  mutable mature : bool;
  mutable messages : int;
  mutable rounds : int;
}

let total t = Array.fold_left ( + ) 0 t.counters

let is_mature t = t.mature

let messages t = t.messages

let rounds t = t.rounds

(* Begin a round (or the direct endgame) given the remaining threshold.
   Also used for the very first round. Synchronizes cbar with the precise
   counters, which in the message accounting corresponds to the collection
   the coordinator just performed. *)
let start_phase t remaining =
  assert (remaining > 0);
  Array.blit t.counters 0 t.cbar 0 t.h;
  if remaining <= 6 * t.h then begin
    t.mode <- Direct;
    t.known <- total t;
    (* one broadcast telling participants to switch to direct forwarding *)
    t.messages <- t.messages + t.h
  end
  else begin
    t.mode <- Rounds;
    t.lambda <- remaining / (2 * t.h);
    assert (t.lambda >= 3);
    t.signals <- 0;
    (* slack broadcast *)
    t.messages <- t.messages + t.h
  end

let end_round t =
  (* Round-end announcement + collection of all precise counters. *)
  t.messages <- t.messages + (2 * t.h);
  t.rounds <- t.rounds + 1;
  let sum = total t in
  if sum >= t.tau then t.mature <- true else start_phase t (t.tau - sum)

let create ~h ~tau =
  if h < 1 then invalid_arg "Distributed_tracking.create: h < 1";
  if tau < 1 then invalid_arg "Distributed_tracking.create: tau < 1";
  let t =
    {
      h;
      tau;
      counters = Array.make h 0;
      cbar = Array.make h 0;
      mode = Rounds;
      lambda = 0;
      signals = 0;
      known = 0;
      mature = false;
      messages = 0;
      rounds = 0;
    }
  in
  start_phase t tau;
  t

let increment t ~site ~by =
  if t.mature then invalid_arg "Distributed_tracking.increment: already mature";
  if site < 0 || site >= t.h then invalid_arg "Distributed_tracking.increment: bad site";
  if by <= 0 then invalid_arg "Distributed_tracking.increment: by <= 0";
  t.counters.(site) <- t.counters.(site) + by;
  (match t.mode with
  | Direct ->
      (* Forward the change; coordinator's view becomes exact again. *)
      t.messages <- t.messages + 1;
      t.known <- t.known + by;
      t.cbar.(site) <- t.counters.(site);
      if t.known >= t.tau then t.mature <- true
  | Rounds ->
      (* Send signals one by one; the coordinator stops the round at the
         h-th, so a large increment never floods more than a round's worth
         of messages (Section 7, step 2: "...unless q has announced the end
         of this round"). Leftover surplus is absorbed by the collection
         performed at round end. *)
      let continue = ref true in
      while !continue && t.counters.(site) - t.cbar.(site) >= t.lambda do
        t.cbar.(site) <- t.cbar.(site) + t.lambda;
        t.messages <- t.messages + 1;
        t.signals <- t.signals + 1;
        if t.signals >= t.h then begin
          end_round t;
          (* end_round either matured or reset cbar to the exact counters,
             so the surplus loop is finished either way. *)
          continue := false
        end
      done);
  t.mature

let message_bound ~h ~tau =
  (* Each round costs at most 4h messages (slack broadcast + at most h
     signals + end announcement + collection) and shrinks tau by a factor
     >= 3/2; the direct endgame forwards at most 6h changes (each change
     adds >= 1 toward a remainder <= 6h) plus its h-word broadcast. A +2
     fudge on the round count absorbs rounding in both the log and the
     lambda floor. *)
  let rec rounds_needed tau acc =
    if tau <= 6 * h then acc else rounds_needed (2 * tau / 3) (acc + 1)
  in
  let r = rounds_needed tau 0 + 2 in
  (4 * h * r) + (7 * h)
