lib/dt/distributed_tracking.ml: Array
