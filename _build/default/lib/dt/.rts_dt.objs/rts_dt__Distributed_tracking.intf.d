lib/dt/distributed_tracking.mli:
