lib/dt/shared_tracking.ml: Array Hashtbl List
