lib/dt/shared_tracking.mli:
