(** Two-dimensional stabbing structure: segment tree on x, interval trees
    on y — the paper's "Seg-Intv tree" competitor (Section 3.1 / Section 8).

    A stored rectangle [xlo, xhi) x [ylo, yhi) is decomposed by the segment
    tree into O(log n) canonical x-nodes; each canonical node holds the
    rectangle's y-interval in a secondary {!Interval_tree}. A stabbing probe
    (x, y) walks the single root-to-leaf x-path covering [x] and stabs each
    node's y-tree with [y], so its cost is O(log n * (log n + k)).

    Dynamism: the segment tree's elementary intervals are fixed at build
    time, so a rectangle whose x-endpoints are off-grid cannot be decomposed
    canonically. Such rectangles go to an {e overflow buffer} scanned
    linearly by probes; once the buffer reaches a quarter of the built
    structure (or deletions have removed half of it), the whole structure is
    rebuilt on the live set — the same amortized-rebuilding idea the paper
    itself uses for its endpoint trees. This keeps amortized polylogarithmic
    updates while preserving the competitor's stabbing behaviour (see
    DESIGN.md, substitution 2). *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int
(** Number of rectangles currently stored (tree + overflow). *)

val overflow_count : 'a t -> int
(** Rectangles currently in the overflow buffer (for tests/diagnostics). *)

val insert :
  'a t -> id:int -> xlo:float -> xhi:float -> ylo:float -> yhi:float -> 'a -> unit
(** Insert rectangle [xlo, xhi) x [ylo, yhi). Requires nonempty sides and an
    id unique among stored rectangles. May trigger an internal rebuild. *)

val delete : 'a t -> id:int -> unit
(** Remove the rectangle with this id. Raises [Not_found] if absent. *)

val mem : 'a t -> id:int -> bool

val stab : 'a t -> x:float -> y:float -> (int * 'a) list
(** All stored rectangles containing the point, as [(id, payload)]. *)

val iter_stab : 'a t -> x:float -> y:float -> (int -> 'a -> unit) -> unit
(** Callback form of [stab] (hot path of the stabbing engine). *)

val check_invariants : 'a t -> unit
(** Assert structural invariants: every stored rectangle is recorded in
    exactly its canonical nodes, jurisdiction intervals nest correctly, and
    id bookkeeping is consistent. For tests. *)
