(** Dynamic interval tree for stabbing queries.

    This is the structure behind the paper's 1D "Interval tree" competitor
    (Section 3.1): a balanced BST over intervals that, given a point [v],
    reports every stored interval containing [v].

    Implementation: AVL tree keyed on the interval's low endpoint (ties
    broken by high endpoint, then by the caller-supplied integer id so that
    duplicate intervals coexist), with the classic max-high augmentation
    (CLRS ch. 14). Insert and delete are worst-case O(log n); a stabbing
    query visits only subtrees whose max-high exceeds the probe and is
    output-sensitive in practice.

    Intervals are half-open [lo, hi): a probe [v] stabs an interval iff
    [lo <= v && v < hi]. *)

type 'a t
(** Mutable set of intervals, each carrying a payload of type ['a]. *)

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val insert : 'a t -> id:int -> lo:float -> hi:float -> 'a -> unit
(** Insert interval [lo, hi) with payload. Requires [lo < hi] (empty
    intervals are meaningless for stabbing) and an [id] unique among the
    currently stored intervals; both are checked. *)

val delete : 'a t -> id:int -> lo:float -> hi:float -> unit
(** Remove the interval previously inserted with exactly this key triple.
    Raises [Not_found] if absent. *)

val mem : 'a t -> id:int -> lo:float -> hi:float -> bool

val stab : 'a t -> float -> (int * 'a) list
(** [stab t v] returns [(id, payload)] for every stored interval containing
    [v], in unspecified order. *)

val iter_stab : 'a t -> float -> (int -> 'a -> unit) -> unit
(** Like [stab] but invokes a callback, avoiding list allocation — this is
    the hot path of the stabbing RTS engine. *)

val iter : 'a t -> (int -> float -> float -> 'a -> unit) -> unit
(** Visit every stored interval (id, lo, hi, payload) in key order. *)

val check_invariants : 'a t -> unit
(** Assert BST order, AVL balance (|balance factor| <= 1), correct heights
    and max-high augmentation. For tests. *)
