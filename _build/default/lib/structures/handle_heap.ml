(* Entries carry their array index so that a handle (the entry itself)
   supports O(log n) removal. [pos = -1] marks a dead handle. The [owner]
   field lets [is_member]/[remove] reject handles from a different heap
   without comparing heaps structurally. *)

type 'a handle = { mutable pos : int; mutable v : 'a; owner : Obj.t }

type 'a t = {
  leq : 'a -> 'a -> bool;
  mutable data : 'a handle array;
  mutable len : int;
}

let create ~leq () = { leq; data = [||]; len = 0 }

let size h = h.len

let is_empty h = h.len = 0

let ensure_capacity h =
  let cap = Array.length h.data in
  if h.len >= cap then begin
    let ncap = max 8 (cap * 2) in
    let ndata = Array.make ncap h.data.(0) in
    Array.blit h.data 0 ndata 0 h.len;
    h.data <- ndata
  end

let swap h i j =
  let a = h.data.(i) and b = h.data.(j) in
  h.data.(i) <- b;
  h.data.(j) <- a;
  a.pos <- j;
  b.pos <- i

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.leq h.data.(i).v h.data.(parent).v && not (h.leq h.data.(parent).v h.data.(i).v)
    then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && not (h.leq h.data.(!smallest).v h.data.(l).v) then smallest := l;
  if r < h.len && not (h.leq h.data.(!smallest).v h.data.(r).v) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h v =
  let entry = { pos = h.len; v; owner = Obj.repr h } in
  if h.len = 0 && Array.length h.data = 0 then h.data <- Array.make 8 entry
  else ensure_capacity h;
  h.data.(h.len) <- entry;
  h.len <- h.len + 1;
  sift_up h (h.len - 1);
  entry

let peek h = if h.len = 0 then None else Some h.data.(0).v

let peek_exn h =
  if h.len = 0 then invalid_arg "Handle_heap.peek_exn: empty heap";
  h.data.(0).v

let is_member h (e : 'a handle) = e.pos >= 0 && e.owner == Obj.repr h

let check_live h e op =
  if e.pos < 0 then invalid_arg (op ^ ": dead handle");
  if e.owner != Obj.repr h then invalid_arg (op ^ ": handle from another heap")

(* Remove the entry at index [i]: move the last entry into the hole, then
   restore order in whichever direction is violated. *)
let remove_at h i =
  let victim = h.data.(i) in
  h.len <- h.len - 1;
  if i <> h.len then begin
    let last = h.data.(h.len) in
    h.data.(i) <- last;
    last.pos <- i;
    sift_down h i;
    sift_up h last.pos
  end;
  victim.pos <- -1;
  victim

let pop h =
  if h.len = 0 then None
  else begin
    let e = remove_at h 0 in
    Some e.v
  end

let remove h e =
  check_live h e "Handle_heap.remove";
  ignore (remove_at h e.pos)

let update h e v =
  check_live h e "Handle_heap.update";
  e.v <- v;
  sift_down h e.pos;
  sift_up h e.pos

let value (e : 'a handle) =
  if e.pos < 0 then invalid_arg "Handle_heap.value: dead handle";
  e.v

let to_list h =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (h.data.(i).v :: acc) in
  loop (h.len - 1) []

let check_invariants h =
  for i = 0 to h.len - 1 do
    let e = h.data.(i) in
    assert (e.pos = i);
    assert (e.owner == Obj.repr h);
    if i > 0 then begin
      let parent = h.data.((i - 1) / 2) in
      assert (h.leq parent.v e.v)
    end
  done
