(** Weight-balanced binary search tree (scapegoat rebalancing).

    Section 5 of the paper notes that dynamic query registration could "in
    theory" be handled by weight-balancing techniques (Arge & Vitter's
    external interval management) instead of the logarithmic method,
    rebuilding subtrees — together with their secondary structures — when
    they drift out of balance; the authors call the resulting algorithm
    too complicated to implement in practice and use the logarithmic
    method instead, as does this repository's engine. This module provides
    the underlying {e structure} of that road not taken: a BB[alpha]-style
    weight-balanced BST maintained by partial rebuilding (Galperin–Rivest
    scapegoat trees), in which rebalancing is always a {e subtree rebuild}
    — precisely the operation a secondary structure can piggyback on — and
    never a rotation.

    Keys are floats with payloads; keys are unique. Guarantees with
    [alpha = 0.7]: height <= log_{1/alpha}(n) + 2 always; insert/delete
    cost O(log n) amortized; [rank]/[nth] order statistics in O(height)
    via the subtree size counters that the balancing scheme maintains
    anyway. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val insert : 'a t -> key:float -> 'a -> unit
(** Insert a new key. Raises [Invalid_argument] on a duplicate or
    non-finite key. Amortized O(log n); worst case O(n) when a scapegoat
    subtree is rebuilt. *)

val delete : 'a t -> key:float -> unit
(** Remove a key. Raises [Not_found] if absent. Amortized O(log n); the
    whole tree is rebuilt once fewer than half the inserted nodes
    remain. *)

val find : 'a t -> key:float -> 'a
(** Raises [Not_found]. O(height). *)

val mem : 'a t -> key:float -> bool

val min_key : 'a t -> float
(** Raises [Not_found] on an empty tree. *)

val max_key : 'a t -> float

val rank : 'a t -> key:float -> int
(** Number of stored keys strictly below [key] (the key itself need not be
    present). O(height). *)

val nth : 'a t -> int -> float * 'a
(** [nth t i] is the i-th smallest key (0-based) with its payload. Raises
    [Invalid_argument] if out of range. O(height). *)

val iter : 'a t -> (float -> 'a -> unit) -> unit
(** In ascending key order. *)

val height : 'a t -> int
(** Leaf-counted height (empty = 0). *)

val rebuilds : 'a t -> int
(** Partial/full rebuilds performed so far (amortization telemetry). *)

val check_invariants : 'a t -> unit
(** Assert BST order, size-counter correctness, and the scapegoat height
    bound. For tests. *)
