(* Guttman R-tree with quadratic split.

   Nodes keep explicit MBRs and parent pointers; leaf items carry a
   back-pointer to their leaf so [delete] starts from the id index instead
   of a tree search. MBRs are half-open boxes, like everything in this
   repository, so a point p is inside iff lo.(k) <= p.(k) < hi.(k). *)

type 'a item = {
  id : int;
  ilo : float array;
  ihi : float array;
  payload : 'a;
  mutable home : 'a node option; (* leaf currently holding this item *)
}

and 'a node = {
  mutable level : int; (* 0 = leaf *)
  mutable items : 'a item list; (* level = 0 *)
  mutable children : 'a node list; (* level > 0 *)
  mutable nlo : float array; (* MBR *)
  mutable nhi : float array;
  mutable parent : 'a node option;
}

type 'a t = {
  dim : int;
  max_entries : int;
  min_entries : int;
  mutable root : 'a node;
  index : (int, 'a item) Hashtbl.t;
}

let empty_box dim = (Array.make dim infinity, Array.make dim neg_infinity)

let new_node dim level =
  let lo, hi = empty_box dim in
  { level; items = []; children = []; nlo = lo; nhi = hi; parent = None }

let create ?(max_entries = 8) ~dim () =
  if dim < 1 then invalid_arg "Rtree.create: dim < 1";
  if max_entries < 4 then invalid_arg "Rtree.create: max_entries < 4";
  {
    dim;
    max_entries;
    min_entries = max 2 (max_entries / 2);
    root = new_node dim 0;
    index = Hashtbl.create 64;
  }

let size t = Hashtbl.length t.index

let mem t ~id = Hashtbl.mem t.index id

(* --- box arithmetic ------------------------------------------------- *)

let box_area dim lo hi =
  let a = ref 1. in
  for k = 0 to dim - 1 do
    a := !a *. max 0. (hi.(k) -. lo.(k))
  done;
  !a

let union_area dim alo ahi blo bhi =
  let a = ref 1. in
  for k = 0 to dim - 1 do
    a := !a *. max 0. (max ahi.(k) bhi.(k) -. min alo.(k) blo.(k))
  done;
  !a

let grow_box dim lo hi blo bhi =
  for k = 0 to dim - 1 do
    if blo.(k) < lo.(k) then lo.(k) <- blo.(k);
    if bhi.(k) > hi.(k) then hi.(k) <- bhi.(k)
  done

let box_contains_point dim lo hi p =
  let rec go k = k = dim || (lo.(k) <= p.(k) && p.(k) < hi.(k) && go (k + 1)) in
  go 0

(* --- MBR maintenance ------------------------------------------------- *)

let node_entry_boxes n =
  if n.level = 0 then List.map (fun it -> (it.ilo, it.ihi)) n.items
  else List.map (fun c -> (c.nlo, c.nhi)) n.children

let recompute_mbr t n =
  let lo, hi = empty_box t.dim in
  List.iter (fun (blo, bhi) -> grow_box t.dim lo hi blo bhi) (node_entry_boxes n);
  n.nlo <- lo;
  n.nhi <- hi

let rec adjust_mbr_upward t n =
  recompute_mbr t n;
  match n.parent with None -> () | Some p -> adjust_mbr_upward t p

(* --- quadratic split -------------------------------------------------- *)

(* Distribute boxes [entries] (with attached values) into two groups using
   Guttman's quadratic PickSeeds / PickNext. Returns the two index lists. *)
let quadratic_partition t (boxes : (float array * float array) array) =
  let n = Array.length boxes in
  assert (n >= 2);
  (* PickSeeds: the pair wasting the most area. *)
  let seed1 = ref 0 and seed2 = ref 1 and worst = ref neg_infinity in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ilo, ihi = boxes.(i) and jlo, jhi = boxes.(j) in
      let waste =
        union_area t.dim ilo ihi jlo jhi -. box_area t.dim ilo ihi -. box_area t.dim jlo jhi
      in
      if waste > !worst then begin
        worst := waste;
        seed1 := i;
        seed2 := j
      end
    done
  done;
  let g1 = ref [] and g2 = ref [] in
  let n1 = ref 0 and n2 = ref 0 in
  let lo1, hi1 = empty_box t.dim and lo2, hi2 = empty_box t.dim in
  let add_to g cnt lo hi i =
    g := i :: !g;
    incr cnt;
    let blo, bhi = boxes.(i) in
    grow_box t.dim lo hi blo bhi
  in
  add_to g1 n1 lo1 hi1 !seed1;
  add_to g2 n2 lo2 hi2 !seed2;
  let rest = ref [] in
  for i = n - 1 downto 0 do
    if i <> !seed1 && i <> !seed2 then rest := i :: !rest
  done;
  let total_left () = List.length !rest in
  while !rest <> [] do
    (* If one group must take everything left to reach min fill, do so. *)
    if !n1 + total_left () <= t.min_entries then begin
      List.iter (fun i -> add_to g1 n1 lo1 hi1 i) !rest;
      rest := []
    end
    else if !n2 + total_left () <= t.min_entries then begin
      List.iter (fun i -> add_to g2 n2 lo2 hi2 i) !rest;
      rest := []
    end
    else begin
      (* PickNext: entry with the greatest preference difference. *)
      let best = ref (-1) and best_diff = ref neg_infinity and best_d1 = ref 0. and best_d2 = ref 0. in
      List.iter
        (fun i ->
          let blo, bhi = boxes.(i) in
          let d1 = union_area t.dim lo1 hi1 blo bhi -. box_area t.dim lo1 hi1 in
          let d2 = union_area t.dim lo2 hi2 blo bhi -. box_area t.dim lo2 hi2 in
          let diff = abs_float (d1 -. d2) in
          if diff > !best_diff then begin
            best_diff := diff;
            best := i;
            best_d1 := d1;
            best_d2 := d2
          end)
        !rest;
      let i = !best in
      rest := List.filter (fun j -> j <> i) !rest;
      let prefer_1 =
        if !best_d1 <> !best_d2 then !best_d1 < !best_d2
        else if !n1 <> !n2 then !n1 < !n2
        else box_area t.dim lo1 hi1 <= box_area t.dim lo2 hi2
      in
      if prefer_1 then add_to g1 n1 lo1 hi1 i else add_to g2 n2 lo2 hi2 i
    end
  done;
  (!g1, !g2)

(* Split an overfull node in place; returns the freshly created sibling. *)
let split_node t n =
  let boxes = Array.of_list (node_entry_boxes n) in
  let g1, g2 = quadratic_partition t boxes in
  let sibling = new_node t.dim n.level in
  sibling.parent <- n.parent;
  if n.level = 0 then begin
    let items = Array.of_list n.items in
    n.items <- List.map (fun i -> items.(i)) g1;
    sibling.items <- List.map (fun i -> items.(i)) g2;
    List.iter (fun it -> it.home <- Some sibling) sibling.items
  end
  else begin
    let children = Array.of_list n.children in
    n.children <- List.map (fun i -> children.(i)) g1;
    sibling.children <- List.map (fun i -> children.(i)) g2;
    List.iter (fun c -> c.parent <- Some sibling) sibling.children
  end;
  recompute_mbr t n;
  recompute_mbr t sibling;
  sibling

let node_entry_count n = if n.level = 0 then List.length n.items else List.length n.children

(* Propagate splits toward the root. *)
let rec handle_overflow t n =
  if node_entry_count n > t.max_entries then begin
    let sibling = split_node t n in
    match n.parent with
    | None ->
        (* n was the root: grow the tree. *)
        let new_root = new_node t.dim (n.level + 1) in
        new_root.children <- [ n; sibling ];
        n.parent <- Some new_root;
        sibling.parent <- Some new_root;
        recompute_mbr t new_root;
        t.root <- new_root
    | Some p ->
        p.children <- sibling :: p.children;
        sibling.parent <- Some p;
        recompute_mbr t p;
        handle_overflow t p
  end

(* ChooseLeaf: descend to the given level picking least enlargement. *)
let choose_node t blo bhi level =
  let rec descend n =
    if n.level = level then n
    else begin
      let best = ref None and best_growth = ref infinity and best_area = ref infinity in
      List.iter
        (fun c ->
          let area = box_area t.dim c.nlo c.nhi in
          let growth = union_area t.dim c.nlo c.nhi blo bhi -. area in
          if growth < !best_growth || (growth = !best_growth && area < !best_area) then begin
            best := Some c;
            best_growth := growth;
            best_area := area
          end)
        n.children;
      match !best with Some c -> descend c | None -> assert false
    end
  in
  descend t.root

let insert_item t it =
  let leaf = choose_node t it.ilo it.ihi 0 in
  leaf.items <- it :: leaf.items;
  it.home <- Some leaf;
  adjust_mbr_upward t leaf;
  handle_overflow t leaf

let insert t ~id ~lo ~hi payload =
  if Array.length lo <> t.dim || Array.length hi <> t.dim then
    invalid_arg "Rtree.insert: wrong dimensionality";
  for k = 0 to t.dim - 1 do
    if not (lo.(k) < hi.(k)) then invalid_arg "Rtree.insert: empty rectangle"
  done;
  if mem t ~id then invalid_arg "Rtree.insert: duplicate id";
  let it = { id; ilo = Array.copy lo; ihi = Array.copy hi; payload; home = None } in
  Hashtbl.replace t.index id it;
  insert_item t it

(* Guttman's CondenseTree reinsertion: put the *entries* of an eliminated
   node back at their original level. An eliminated node itself may be
   underfull or even empty, but each of its surviving entries is a valid
   node (it respected the fill bounds as a child), so a subtree entry can
   be re-hung one level up — unless the tree has shrunk below that height,
   in which case it is unpacked recursively down to items. *)
let rec reinsert_entries t n =
  if n.level = 0 then
    List.iter
      (fun it ->
        it.home <- None;
        insert_item t it)
      n.items
  else
    List.iter
      (fun c ->
        c.parent <- None;
        if t.root.level >= c.level + 1 then begin
          let target = choose_node t c.nlo c.nhi (c.level + 1) in
          target.children <- c :: target.children;
          c.parent <- Some target;
          adjust_mbr_upward t target;
          handle_overflow t target
        end
        else reinsert_entries t c)
      n.children

let delete t ~id =
  let it = match Hashtbl.find_opt t.index id with Some it -> it | None -> raise Not_found in
  Hashtbl.remove t.index id;
  let leaf = match it.home with Some l -> l | None -> assert false in
  leaf.items <- List.filter (fun other -> other != it) leaf.items;
  it.home <- None;
  (* CondenseTree: drop underfull nodes along the path, remember them. *)
  let orphans = ref [] in
  let rec condense n =
    match n.parent with
    | None ->
        recompute_mbr t n (* root: always kept *)
    | Some p ->
        if node_entry_count n < t.min_entries then begin
          p.children <- List.filter (fun c -> c != n) p.children;
          n.parent <- None;
          orphans := n :: !orphans
        end
        else recompute_mbr t n;
        condense p
  in
  condense leaf;
  (* Shrink the root while it has a single child. *)
  while t.root.level > 0 && List.length t.root.children = 1 do
    match t.root.children with
    | [ only ] ->
        only.parent <- None;
        t.root <- only
    | _ -> assert false
  done;
  if t.root.level > 0 && t.root.children = [] then t.root <- new_node t.dim 0;
  List.iter (reinsert_entries t) !orphans

let iter_stab t p f =
  if Array.length p <> t.dim then invalid_arg "Rtree.stab: wrong dimensionality";
  let rec go n =
    if box_contains_point t.dim n.nlo n.nhi p then
      if n.level = 0 then
        List.iter
          (fun it -> if box_contains_point t.dim it.ilo it.ihi p then f it.id it.payload)
          n.items
      else List.iter go n.children
  in
  go t.root

let stab t p =
  let acc = ref [] in
  iter_stab t p (fun id payload -> acc := (id, payload) :: !acc);
  !acc

let height t = t.root.level + 1

let check_invariants t =
  let seen = Hashtbl.create 64 in
  let rec check n ~is_root =
    (* MBR is tight. *)
    let lo, hi = empty_box t.dim in
    List.iter (fun (blo, bhi) -> grow_box t.dim lo hi blo bhi) (node_entry_boxes n);
    assert (n.nlo = lo && n.nhi = hi);
    let count = node_entry_count n in
    if not is_root then assert (count >= t.min_entries && count <= t.max_entries)
    else assert (count <= t.max_entries);
    if n.level = 0 then
      List.iter
        (fun it ->
          assert (match it.home with Some h -> h == n | None -> false);
          assert (not (Hashtbl.mem seen it.id));
          Hashtbl.replace seen it.id ();
          assert (Hashtbl.mem t.index it.id))
        n.items
    else
      List.iter
        (fun c ->
          assert (c.level = n.level - 1);
          assert (match c.parent with Some p -> p == n | None -> false);
          check c ~is_root:false)
        n.children
  in
  check t.root ~is_root:true;
  assert (t.root.parent = None);
  assert (Hashtbl.length seen = Hashtbl.length t.index)
