(* Scapegoat tree (Galperin & Rivest 1993) with alpha = 0.7: no rotations,
   no per-node balance metadata beyond subtree sizes; an insertion that
   lands too deep walks back up, finds the highest alpha-unbalanced
   ancestor (the scapegoat), and rebuilds that subtree perfectly.
   Deletions decrement sizes and trigger a full rebuild once the live size
   falls below half of the maximum since the last full rebuild. *)

type 'a node = {
  key : float;
  mutable payload : 'a;
  mutable left : 'a node option;
  mutable right : 'a node option;
  mutable size : int;
}

type 'a t = {
  mutable root : 'a node option;
  mutable max_size : int; (* high-water mark since the last full rebuild *)
  mutable rebuilds : int;
}

let alpha = 0.7

let create () = { root = None; max_size = 0; rebuilds = 0 }

let node_size = function None -> 0 | Some n -> n.size

let size t = node_size t.root

let is_empty t = size t = 0

(* ---- perfect rebuild ---- *)

let flatten subtree =
  let acc = ref [] in
  let rec go = function
    | None -> ()
    | Some n ->
        go n.right;
        acc := n :: !acc;
        go n.left
  in
  go subtree;
  Array.of_list !acc

let rec build_perfect nodes lo hi =
  if lo > hi then None
  else begin
    let mid = (lo + hi) / 2 in
    let n = nodes.(mid) in
    n.left <- build_perfect nodes lo (mid - 1);
    n.right <- build_perfect nodes (mid + 1) hi;
    n.size <- hi - lo + 1;
    Some n
  end

let rebuild_subtree t subtree =
  t.rebuilds <- t.rebuilds + 1;
  let nodes = flatten subtree in
  build_perfect nodes 0 (Array.length nodes - 1)

(* ---- search ---- *)

let rec find_node key = function
  | None -> None
  | Some n -> if key = n.key then Some n else find_node key (if key < n.key then n.left else n.right)

let find t ~key =
  match find_node key t.root with Some n -> n.payload | None -> raise Not_found

let mem t ~key = find_node key t.root <> None

let min_key t =
  let rec go n = match n.left with Some l -> go l | None -> n.key in
  match t.root with Some n -> go n | None -> raise Not_found

let max_key t =
  let rec go n = match n.right with Some r -> go r | None -> n.key in
  match t.root with Some n -> go n | None -> raise Not_found

let rank t ~key =
  let rec go acc = function
    | None -> acc
    | Some n ->
        if key <= n.key then go acc n.left else go (acc + node_size n.left + 1) n.right
  in
  go 0 t.root

let nth t i =
  if i < 0 || i >= size t then invalid_arg "Weight_balanced_tree.nth: out of range";
  let rec go i n =
    let ls = node_size n.left in
    if i < ls then go i (Option.get n.left)
    else if i = ls then (n.key, n.payload)
    else go (i - ls - 1) (Option.get n.right)
  in
  go i (Option.get t.root)

let iter t f =
  let rec go = function
    | None -> ()
    | Some n ->
        go n.left;
        f n.key n.payload;
        go n.right
  in
  go t.root

let height t =
  let rec go = function
    | None -> 0
    | Some n -> 1 + max (go n.left) (go n.right)
  in
  go t.root

let rebuilds t = t.rebuilds

(* ---- insertion with scapegoat detection ---- *)

let log_inv_alpha = -.log alpha

let depth_limit t =
  (* scapegoat bound: depth of any node <= log_{1/alpha}(max_size) + 1 *)
  int_of_float (log (float_of_int (max 2 t.max_size)) /. log_inv_alpha) + 1

let is_unbalanced n =
  let s = float_of_int n.size in
  float_of_int (node_size n.left) > alpha *. s || float_of_int (node_size n.right) > alpha *. s

let insert t ~key payload =
  if not (Float.is_finite key) then invalid_arg "Weight_balanced_tree.insert: non-finite key";
  let fresh = { key; payload; left = None; right = None; size = 1 } in
  (* Descend, recording the path for size updates and scapegoat search. *)
  let path = ref [] in
  let rec descend = function
    | None -> ()
    | Some n ->
        if key = n.key then invalid_arg "Weight_balanced_tree.insert: duplicate key";
        path := n :: !path;
        if key < n.key then
          match n.left with None -> n.left <- Some fresh | some -> descend some
        else
          match n.right with None -> n.right <- Some fresh | some -> descend some
  in
  (match t.root with None -> t.root <- Some fresh | some -> descend some);
  List.iter (fun n -> n.size <- n.size + 1) !path;
  t.max_size <- max t.max_size (size t);
  let depth = List.length !path in
  if depth > depth_limit t then begin
    (* find the highest unbalanced ancestor (path is child-to-root) *)
    let scapegoat = List.fold_left (fun acc n -> if is_unbalanced n then Some n else acc) None !path in
    match scapegoat with
    | None -> () (* depth bound can lag max_size after deletions; harmless *)
    | Some g ->
        let rebuilt = rebuild_subtree t (Some g) in
        (* the parent is the first node after g in the child-to-root path *)
        let rec after = function
          | a :: rest when a == g -> rest
          | _ :: rest -> after rest
          | [] -> []
        in
        (match after !path with
        | parent :: _ ->
            if (match parent.left with Some l -> l == g | None -> false) then parent.left <- rebuilt
            else parent.right <- rebuilt
        | [] -> t.root <- rebuilt)
  end

(* ---- deletion ---- *)

let rec delete_node key = function
  | None -> raise Not_found
  | Some n ->
      if key < n.key then begin
        n.left <- delete_node key n.left;
        n.size <- n.size - 1;
        Some n
      end
      else if key > n.key then begin
        n.right <- delete_node key n.right;
        n.size <- n.size - 1;
        Some n
      end
      else begin
        match (n.left, n.right) with
        | None, r -> r
        | l, None -> l
        | l, Some r ->
            (* splice out the successor (leftmost of the right subtree) *)
            let rec take_min m =
              match m.left with
              | None -> (m, m.right)
              | Some ml ->
                  let succ, rest = take_min ml in
                  m.left <- rest;
                  m.size <- m.size - 1;
                  (succ, Some m)
            in
            let succ, rest = take_min r in
            succ.left <- l;
            succ.right <- rest;
            succ.size <- node_size l + node_size rest + 1;
            Some succ
      end

let delete t ~key =
  t.root <- delete_node key t.root;
  if 2 * size t < t.max_size then begin
    t.root <- rebuild_subtree t t.root;
    t.max_size <- size t
  end

let check_invariants t =
  let rec go lo hi = function
    | None -> 0
    | Some n ->
        assert (lo < n.key && n.key < hi);
        let sl = go lo n.key n.left in
        let sr = go n.key hi n.right in
        assert (n.size = sl + sr + 1);
        n.size
  in
  let total = go neg_infinity infinity t.root in
  assert (total = size t);
  assert (total <= t.max_size);
  if total > 1 then begin
    let bound =
      int_of_float (log (float_of_int (max 2 t.max_size)) /. log_inv_alpha) + 2
    in
    assert (height t <= bound)
  end
