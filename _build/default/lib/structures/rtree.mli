(** Dynamic R-tree (Guttman 1984) with quadratic split, used as the paper's
    2D "R-tree" stabbing competitor (Sections 3.1 and 8).

    Stores axis-parallel half-open rectangles in any fixed dimensionality.
    Supports insertion, deletion (with Guttman's condense-and-reinsert), and
    point-stabbing search. As the paper stresses, the R-tree is a heuristic
    structure with no attractive worst-case guarantees — its benchmark role
    is precisely to exhibit that weakness on heavily-overlapping query
    rectangles (Figure 8). *)

type 'a t

val create : ?max_entries:int -> dim:int -> unit -> 'a t
(** [create ~dim ()] makes an empty R-tree over [dim]-dimensional
    rectangles. [max_entries] (default 8, minimum 4) is Guttman's M; the
    minimum fill m is M/2 rounded down, at least 2. *)

val size : 'a t -> int
(** Number of stored rectangles. *)

val insert : 'a t -> id:int -> lo:float array -> hi:float array -> 'a -> unit
(** Insert rectangle [lo, hi) (componentwise half-open). Requires arrays of
    length [dim] with [lo.(k) < hi.(k)] for all k, and a fresh id. *)

val delete : 'a t -> id:int -> unit
(** Remove a rectangle by id. Raises [Not_found] if absent. *)

val mem : 'a t -> id:int -> bool

val stab : 'a t -> float array -> (int * 'a) list
(** All rectangles containing the point. *)

val iter_stab : 'a t -> float array -> (int -> 'a -> unit) -> unit
(** Callback form of [stab]. *)

val height : 'a t -> int
(** Height of the tree (leaf = 1); all leaves are at the same depth. *)

val check_invariants : 'a t -> unit
(** Assert: MBRs tightly contain children, fill bounds hold for non-root
    nodes, all leaves at equal depth, parent pointers consistent, and the
    id index agrees with tree contents. For tests. *)
