(** Binary min-heap with handles.

    The RTS algorithm (Section 4 of the paper) keeps, at every endpoint-tree
    node [u], a min-heap [H(u)] of slack deadlines — one entry per query whose
    canonical node set contains [u]. Besides the usual [peek]/[pop], the
    algorithm must *remove or reprioritize an arbitrary entry* whenever a
    query's DT round ends, the query matures, or it is terminated. This
    module therefore returns a {e handle} from [push]; the handle tracks the
    entry as it moves inside the array and supports O(log n) removal and
    priority update.

    The heap is a plain array-embedded binary heap: no amortization tricks,
    worst-case O(log n) per operation, O(1) [peek]. *)

type 'a t
(** A heap of values of type ['a]. *)

type 'a handle
(** A live entry in some heap. A handle becomes {e dead} once removed
    (by [pop] or [remove]); using a dead handle raises [Invalid_argument],
    except for [is_member] which simply answers [false]. *)

val create : leq:('a -> 'a -> bool) -> unit -> 'a t
(** [create ~leq ()] is an empty heap ordered by [leq] (total preorder;
    [leq a b] means [a] has priority at least as urgent as [b]). *)

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> 'a handle
(** Insert a value; O(log n). *)

val peek : 'a t -> 'a option
(** Minimum value, if any; O(1). *)

val peek_exn : 'a t -> 'a
(** Like [peek] but raises [Invalid_argument] on an empty heap. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum; its handle dies. O(log n). *)

val remove : 'a t -> 'a handle -> unit
(** Remove an arbitrary live entry; O(log n). Raises [Invalid_argument] if
    the handle is dead or belongs to another heap. *)

val update : 'a t -> 'a handle -> 'a -> unit
(** Replace the value of a live entry and restore heap order; O(log n). *)

val value : 'a handle -> 'a
(** Current value under a live handle. *)

val is_member : 'a t -> 'a handle -> bool
(** Whether the handle is live and belongs to this heap. *)

val to_list : 'a t -> 'a list
(** All values, in unspecified order; O(n). *)

val check_invariants : 'a t -> unit
(** Verify the heap-order property and handle back-pointers; raises
    [Assert_failure] on violation. For tests. *)
