(* Functional AVL nodes under a mutable root. Keys are (lo, hi, id)
   lexicographic; every node caches its height and the maximum high endpoint
   in its subtree (the stabbing-pruning augmentation). *)

type 'a node = {
  lo : float;
  hi : float;
  id : int;
  payload : 'a;
  left : 'a node option;
  right : 'a node option;
  height : int;
  maxhi : float;
}

type 'a t = { mutable root : 'a node option; mutable size : int }

let create () = { root = None; size = 0 }

let size t = t.size

let is_empty t = t.size = 0

let height = function None -> 0 | Some n -> n.height

let maxhi_opt = function None -> neg_infinity | Some n -> n.maxhi

let mk lo hi id payload left right =
  {
    lo;
    hi;
    id;
    payload;
    left;
    right;
    height = 1 + max (height left) (height right);
    maxhi = max hi (max (maxhi_opt left) (maxhi_opt right));
  }

let remk n left right = mk n.lo n.hi n.id n.payload left right

let balance_factor n = height n.left - height n.right

(* Standard AVL rebalancing of a node whose children are already valid. *)
let rebalance n =
  let bf = balance_factor n in
  if bf > 1 then begin
    match n.left with
    | None -> assert false
    | Some l ->
        if height l.left >= height l.right then
          (* single right rotation *)
          remk l l.left (Some (remk n l.right n.right))
        else begin
          match l.right with
          | None -> assert false
          | Some lr ->
              remk lr (Some (remk l l.left lr.left)) (Some (remk n lr.right n.right))
        end
  end
  else if bf < -1 then begin
    match n.right with
    | None -> assert false
    | Some r ->
        if height r.right >= height r.left then
          remk r (Some (remk n n.left r.left)) r.right
        else begin
          match r.left with
          | None -> assert false
          | Some rl ->
              remk rl (Some (remk n n.left rl.left)) (Some (remk r rl.right r.right))
        end
  end
  else n

let compare_key lo hi id n =
  let c = compare lo n.lo in
  if c <> 0 then c
  else
    let c = compare hi n.hi in
    if c <> 0 then c else compare id n.id

exception Duplicate

let rec insert_node lo hi id payload = function
  | None -> mk lo hi id payload None None
  | Some n ->
      let c = compare_key lo hi id n in
      if c = 0 then raise Duplicate
      else if c < 0 then
        rebalance (remk n (Some (insert_node lo hi id payload n.left)) n.right)
      else rebalance (remk n n.left (Some (insert_node lo hi id payload n.right)))

let insert t ~id ~lo ~hi payload =
  if not (lo < hi) then invalid_arg "Interval_tree.insert: requires lo < hi";
  (try t.root <- Some (insert_node lo hi id payload t.root)
   with Duplicate -> invalid_arg "Interval_tree.insert: duplicate (lo, hi, id)");
  t.size <- t.size + 1

(* Delete the minimum node of a nonempty subtree, returning it and the rest. *)
let rec take_min n =
  match n.left with
  | None -> (n, n.right)
  | Some l ->
      let m, rest = take_min l in
      (m, Some (rebalance (remk n rest n.right)))

let rec delete_node lo hi id = function
  | None -> raise Not_found
  | Some n ->
      let c = compare_key lo hi id n in
      if c < 0 then Some (rebalance (remk n (delete_node lo hi id n.left) n.right))
      else if c > 0 then Some (rebalance (remk n n.left (delete_node lo hi id n.right)))
      else begin
        match (n.left, n.right) with
        | None, r -> r
        | l, None -> l
        | l, Some r ->
            let succ, rest = take_min r in
            Some (rebalance (remk succ l rest))
      end

let delete t ~id ~lo ~hi =
  t.root <- delete_node lo hi id t.root;
  t.size <- t.size - 1

let rec mem_node lo hi id = function
  | None -> false
  | Some n ->
      let c = compare_key lo hi id n in
      if c = 0 then true
      else if c < 0 then mem_node lo hi id n.left
      else mem_node lo hi id n.right

let mem t ~id ~lo ~hi = mem_node lo hi id t.root

let iter_stab t v f =
  (* Prune subtrees whose maxhi <= v (nothing there can contain v) and, when
     v precedes a node's lo, its entire right subtree (keys there have even
     larger lo). *)
  let rec go = function
    | None -> ()
    | Some n ->
        if n.maxhi > v then begin
          go n.left;
          if v >= n.lo then begin
            if v < n.hi then f n.id n.payload;
            go n.right
          end
        end
  in
  go t.root

let stab t v =
  let acc = ref [] in
  iter_stab t v (fun id payload -> acc := (id, payload) :: !acc);
  !acc

let iter t f =
  let rec go = function
    | None -> ()
    | Some n ->
        go n.left;
        f n.id n.lo n.hi n.payload;
        go n.right
  in
  go t.root

let check_invariants t =
  let rec go lo_bound = function
    | None -> (0, neg_infinity, 0)
    | Some n ->
        (match lo_bound with
        | Some (plo, phi, pid, side) ->
            let c = compare_key plo phi pid n in
            if side = `Left then assert (c > 0) else assert (c < 0)
        | None -> ());
        let hl, ml, cl = go (Some (n.lo, n.hi, n.id, `Left)) n.left in
        let hr, mr, cr = go (Some (n.lo, n.hi, n.id, `Right)) n.right in
        assert (n.height = 1 + max hl hr);
        assert (abs (hl - hr) <= 1);
        assert (n.maxhi = max n.hi (max ml mr));
        assert (n.lo < n.hi);
        (n.height, n.maxhi, cl + cr + 1)
  in
  let _, _, count = go None t.root in
  assert (count = t.size)
