(* Built on the generic {!Segment_tree}: the x-dimension is a static
   segment tree whose node payloads are interval trees on y. Rectangles
   whose x-endpoints are off the current grid wait in an overflow buffer
   until an amortized rebuild (see the .mli). *)

type 'a record = {
  id : int;
  xlo : float;
  xhi : float;
  ylo : float;
  yhi : float;
  payload : 'a;
  (* Canonical x-nodes whose y-tree holds this rectangle; empty while the
     rectangle sits in the overflow buffer. *)
  mutable nodes : 'a snode list;
}

and 'a snode = 'a record Interval_tree.t Segment_tree.node

type 'a t = {
  mutable seg : 'a record Interval_tree.t Segment_tree.t option;
  placed : (int, 'a record) Hashtbl.t; (* id -> record stored in the tree *)
  overflow : (int, 'a record) Hashtbl.t; (* id -> record awaiting rebuild *)
  mutable built_size : int; (* #rectangles placed at the last rebuild *)
  mutable deletions : int; (* deletions since the last rebuild *)
}

let create () =
  {
    seg = None;
    placed = Hashtbl.create 64;
    overflow = Hashtbl.create 16;
    built_size = 0;
    deletions = 0;
  }

let size t = Hashtbl.length t.placed + Hashtbl.length t.overflow

let overflow_count t = Hashtbl.length t.overflow

let mem t ~id = Hashtbl.mem t.placed id || Hashtbl.mem t.overflow id

(* Insert [r] into the canonical nodes covering [r.xlo, r.xhi). *)
let place_record seg r =
  Segment_tree.iter_canonical seg ~lo:r.xlo ~hi:r.xhi (fun n ->
      Interval_tree.insert (Segment_tree.payload n) ~id:r.id ~lo:r.ylo ~hi:r.yhi r;
      r.nodes <- n :: r.nodes)

let live_records t =
  let acc = ref [] in
  Hashtbl.iter (fun _ r -> acc := r :: !acc) t.placed;
  Hashtbl.iter (fun _ r -> acc := r :: !acc) t.overflow;
  !acc

let rebuild t =
  let records = live_records t in
  Hashtbl.reset t.placed;
  Hashtbl.reset t.overflow;
  t.deletions <- 0;
  let endpoints = List.concat_map (fun r -> [ r.xlo; r.xhi ]) records in
  let keys = Array.of_list (List.sort_uniq compare endpoints) in
  t.seg <- Segment_tree.build ~payload:Interval_tree.create keys;
  match t.seg with
  | None -> t.built_size <- 0
  | Some seg ->
      List.iter
        (fun r ->
          r.nodes <- [];
          place_record seg r;
          Hashtbl.replace t.placed r.id r)
        records;
      t.built_size <- List.length records

let needs_rebuild t =
  let ov = Hashtbl.length t.overflow in
  ov >= 16 && ov * 4 >= t.built_size

let insert t ~id ~xlo ~xhi ~ylo ~yhi payload =
  if not (xlo < xhi && ylo < yhi) then
    invalid_arg "Segment_interval_tree.insert: empty rectangle";
  if mem t ~id then invalid_arg "Segment_interval_tree.insert: duplicate id";
  let r = { id; xlo; xhi; ylo; yhi; payload; nodes = [] } in
  match t.seg with
  | Some seg
    when Segment_tree.on_grid seg xlo
         && (xhi = infinity || Segment_tree.on_grid seg xhi) ->
      place_record seg r;
      Hashtbl.replace t.placed id r
  | _ ->
      Hashtbl.replace t.overflow id r;
      if needs_rebuild t then rebuild t

let delete t ~id =
  match Hashtbl.find_opt t.placed id with
  | Some r ->
      List.iter
        (fun n -> Interval_tree.delete (Segment_tree.payload n) ~id ~lo:r.ylo ~hi:r.yhi)
        r.nodes;
      r.nodes <- [];
      Hashtbl.remove t.placed id;
      t.deletions <- t.deletions + 1;
      if t.deletions * 2 >= t.built_size && t.built_size > 16 then rebuild t
  | None ->
      if Hashtbl.mem t.overflow id then Hashtbl.remove t.overflow id else raise Not_found

let iter_stab t ~x ~y f =
  (* Each node on the x-path is a potential canonical node of a rectangle
     whose x-range contains x; stab its y-tree. *)
  (match t.seg with
  | Some seg ->
      Segment_tree.iter_path seg x (fun n ->
          Interval_tree.iter_stab (Segment_tree.payload n) y (fun id r -> f id r.payload))
  | None -> ());
  Hashtbl.iter
    (fun id r -> if x >= r.xlo && x < r.xhi && y >= r.ylo && y < r.yhi then f id r.payload)
    t.overflow

let stab t ~x ~y =
  let acc = ref [] in
  iter_stab t ~x ~y (fun id payload -> acc := (id, payload) :: !acc);
  !acc

let check_invariants t =
  (match t.seg with
  | Some seg ->
      Segment_tree.check_invariants seg;
      Segment_tree.iter_nodes seg (fun n -> Interval_tree.check_invariants (Segment_tree.payload n))
  | None -> ());
  (* Every placed record sits in nodes that tile exactly its x-range. *)
  Hashtbl.iter
    (fun id r ->
      assert (id = r.id);
      let spans = List.map (fun n -> Segment_tree.jurisdiction n) r.nodes in
      let spans = List.sort compare spans in
      let rec contiguous cur = function
        | [] -> assert (cur = r.xhi)
        | (lo, hi) :: rest ->
            assert (lo = cur);
            contiguous hi rest
      in
      (match spans with
      | [] -> assert false
      | (lo, _) :: _ ->
          assert (lo = r.xlo);
          contiguous r.xlo spans);
      List.iter
        (fun n ->
          assert (Interval_tree.mem (Segment_tree.payload n) ~id ~lo:r.ylo ~hi:r.yhi))
        r.nodes)
    t.placed
