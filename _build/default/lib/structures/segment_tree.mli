(** Static segment tree over a grid of float endpoints.

    The classic structure (de Berg et al., ch. 10) underlying both the
    paper's "Seg-Intv" competitor and, conceptually, the endpoint tree's
    canonical decomposition: a balanced binary tree whose leaves are the
    {e elementary intervals} between consecutive grid endpoints (the last
    leaf extends to +infinity), and whose internal nodes cover the union
    of their children. Any half-open interval with endpoints on the grid
    decomposes into O(log n) {e canonical nodes} with disjoint
    jurisdictions; any point is covered by exactly one root-to-leaf path.

    The tree is generic in a per-node payload (created by a callback at
    build time): the seg-intv structure stores an interval tree per node,
    the endpoint tree stores counters and slack heaps. The grid is fixed
    at build time — dynamism is layered above (overflow buffers, the
    logarithmic method), exactly as in the paper. *)

type 'a t
(** A segment tree whose nodes carry payloads of type ['a]. *)

type 'a node

val build : payload:(unit -> 'a) -> float array -> 'a t option
(** [build ~payload keys] over a sorted array of distinct, finite grid
    endpoints; [payload] is invoked once per node. Returns [None] for an
    empty grid. Raises [Invalid_argument] if keys are unsorted, duplicated,
    or non-finite. O(n). *)

val root : 'a t -> 'a node

val node_count : 'a t -> int

val payload : 'a node -> 'a

val jurisdiction : 'a node -> float * float
(** [lo, hi) covered by the node; [hi = infinity] on the rightmost spine. *)

val is_leaf : 'a node -> bool

val children : 'a node -> ('a node * 'a node) option

val covers : 'a t -> float -> bool
(** Whether the point is at or right of the leftmost grid endpoint (i.e.
    on some root-to-leaf path). *)

val iter_path : 'a t -> float -> ('a node -> unit) -> unit
(** Visit the nodes covering a point, root to leaf — O(log n); no visit if
    the point precedes the grid. *)

val iter_canonical : 'a t -> lo:float -> hi:float -> ('a node -> unit) -> unit
(** Visit the canonical decomposition of [lo, hi): the maximal nodes whose
    jurisdiction it contains. Requires [lo < hi] and both endpoints on the
    grid ([hi = infinity] allowed); raises [Invalid_argument] otherwise
    (off-grid endpoints would make a leaf partially overlap). O(log n)
    visits. *)

val on_grid : 'a t -> float -> bool
(** Whether a value is one of the grid endpoints (O(log n)). *)

val iter_nodes : 'a t -> ('a node -> unit) -> unit
(** Visit every node, unspecified order. *)

val check_invariants : 'a t -> unit
(** Assert the jurisdiction-nesting invariants. For tests. *)
