type 'a node = {
  jlo : float;
  jhi : float; (* jurisdiction [jlo, jhi); infinity on the right spine *)
  left : 'a node option;
  right : 'a node option;
  payload : 'a;
}

type 'a t = { root : 'a node; keys : float array; count : int }

let build ~payload keys =
  let n = Array.length keys in
  if n = 0 then None
  else begin
    Array.iteri
      (fun i k ->
        if not (Float.is_finite k) then invalid_arg "Segment_tree.build: non-finite key";
        if i > 0 && not (keys.(i - 1) < k) then
          invalid_arg "Segment_tree.build: keys must be sorted and distinct")
      keys;
    let count = ref 0 in
    let rec mk lo hi =
      incr count;
      if lo = hi then
        let jhi = if lo + 1 < n then keys.(lo + 1) else infinity in
        { jlo = keys.(lo); jhi; left = None; right = None; payload = payload () }
      else
        let mid = (lo + hi) / 2 in
        let l = mk lo mid in
        let r = mk (mid + 1) hi in
        { jlo = l.jlo; jhi = r.jhi; left = Some l; right = Some r; payload = payload () }
    in
    let root = mk 0 (n - 1) in
    Some { root; keys; count = !count }
  end

let root t = t.root

let node_count t = t.count

let payload n = n.payload

let jurisdiction n = (n.jlo, n.jhi)

let is_leaf n = n.left = None

let children n =
  match (n.left, n.right) with
  | Some l, Some r -> Some (l, r)
  | None, None -> None
  | _ -> assert false

let covers t x = x >= t.root.jlo

let iter_path t x f =
  let rec go u =
    f u;
    match u.right with
    | Some r -> if x >= r.jlo then go r else go (Option.get u.left)
    | None -> ()
  in
  if covers t x then go t.root

let on_grid t x =
  let keys = t.keys in
  let rec bs lo hi =
    if lo > hi then false
    else
      let mid = (lo + hi) / 2 in
      if keys.(mid) = x then true else if keys.(mid) < x then bs (mid + 1) hi else bs lo (mid - 1)
  in
  bs 0 (Array.length keys - 1)

let iter_canonical t ~lo ~hi f =
  if not (lo < hi) then invalid_arg "Segment_tree.iter_canonical: empty range";
  if not (on_grid t lo) then invalid_arg "Segment_tree.iter_canonical: lo off grid";
  if not (hi = infinity || on_grid t hi) then
    invalid_arg "Segment_tree.iter_canonical: hi off grid";
  let rec go u =
    if lo <= u.jlo && u.jhi <= hi then f u
    else if u.jhi <= lo || hi <= u.jlo then ()
    else
      match (u.left, u.right) with
      | Some l, Some r ->
          go l;
          go r
      | _ -> assert false
  in
  go t.root

let iter_nodes t f =
  let rec go u =
    f u;
    (match u.left with Some l -> go l | None -> ());
    match u.right with Some r -> go r | None -> ()
  in
  go t.root

let check_invariants t =
  let rec go u =
    assert (u.jlo < u.jhi);
    match (u.left, u.right) with
    | Some l, Some r ->
        assert (l.jlo = u.jlo);
        assert (l.jhi = r.jlo);
        assert (r.jhi = u.jhi);
        go l;
        go r
    | None, None -> ()
    | _ -> assert false
  in
  go t.root;
  assert (t.root.jhi = infinity)
