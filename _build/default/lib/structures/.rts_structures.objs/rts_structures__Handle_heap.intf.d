lib/structures/handle_heap.mli:
