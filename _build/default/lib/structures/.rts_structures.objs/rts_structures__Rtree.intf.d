lib/structures/rtree.mli:
