lib/structures/weight_balanced_tree.mli:
