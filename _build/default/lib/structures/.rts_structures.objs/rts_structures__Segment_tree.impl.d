lib/structures/segment_tree.ml: Array Float Option
