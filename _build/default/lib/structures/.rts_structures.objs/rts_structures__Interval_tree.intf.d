lib/structures/interval_tree.mli:
