lib/structures/segment_tree.mli:
