lib/structures/rtree.ml: Array Hashtbl List
