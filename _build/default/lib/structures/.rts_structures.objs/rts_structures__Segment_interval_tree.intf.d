lib/structures/segment_interval_tree.mli:
