lib/structures/weight_balanced_tree.ml: Array Float List Option
