lib/structures/interval_tree.ml:
