lib/structures/handle_heap.ml: Array Obj
