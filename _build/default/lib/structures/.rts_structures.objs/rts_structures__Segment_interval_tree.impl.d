lib/structures/segment_interval_tree.ml: Array Hashtbl Interval_tree List Segment_tree
