(** Small summary-statistics helpers used by the benchmark harness and by
    distribution sanity tests. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  total : float;
}

val summarize : float array -> summary
(** Single pass mean/variance (Welford). Raises [Invalid_argument] on an
    empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100]: nearest-rank percentile of a copy
    of [xs] (the input is not modified). Raises [Invalid_argument] on an
    empty array or [p] outside [0,100]. *)

val histogram : float array -> buckets:int -> (float * int) array
(** [histogram xs ~buckets] divides [min xs, max xs] into equal-width
    buckets; returns (bucket lower bound, count) pairs. *)

val mean : float array -> float
(** Arithmetic mean; raises on empty input. *)
