type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  total : float;
}

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty array";
  let mean = ref 0. and m2 = ref 0. in
  let mn = ref xs.(0) and mx = ref xs.(0) and total = ref 0. in
  Array.iteri
    (fun i x ->
      total := !total +. x;
      if x < !mn then mn := x;
      if x > !mx then mx := x;
      let delta = x -. !mean in
      mean := !mean +. (delta /. float_of_int (i + 1));
      m2 := !m2 +. (delta *. (x -. !mean)))
    xs;
  let variance = if n > 1 then !m2 /. float_of_int (n - 1) else 0. in
  {
    count = n;
    mean = !mean;
    stddev = sqrt variance;
    min = !mn;
    max = !mx;
    total = !total;
  }

let mean xs = (summarize xs).mean

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let histogram xs ~buckets =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets <= 0";
  let s = summarize xs in
  let width = (s.max -. s.min) /. float_of_int buckets in
  let width = if width <= 0. then 1. else width in
  let counts = Array.make buckets 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. s.min) /. width) in
      let b = max 0 (min (buckets - 1) b) in
      counts.(b) <- counts.(b) + 1)
    xs;
  Array.mapi (fun i c -> (s.min +. (float_of_int i *. width), c)) counts
