(** Wall-clock timing for the figure harness.

    The paper reports wall-clock per-operation cost; individual operations at
    our scale take well under a microsecond, so callers time *batches* of
    operations between [now] reads. *)

val now : unit -> float
(** Monotonic-ish wall-clock seconds ([Unix.gettimeofday]). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with elapsed seconds. *)
