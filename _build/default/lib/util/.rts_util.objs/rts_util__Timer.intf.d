lib/util/timer.mli:
