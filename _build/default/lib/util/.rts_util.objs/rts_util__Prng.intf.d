lib/util/prng.mli:
