lib/util/stats.mli:
