(** Deterministic pseudo-random number generation.

    All randomness in this repository — workload generation, property tests,
    benchmark inputs — flows through this module so that every experiment is
    reproducible from a single integer seed. The generator is SplitMix64
    (Steele, Lea & Flood, OOPSLA 2014): a tiny, fast, splittable PRNG whose
    statistical quality is more than sufficient for workload synthesis. *)

type t
(** Mutable generator state. Not thread-safe; create one per stream. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    sequences. *)

val copy : t -> t
(** [copy g] is an independent generator that will replay [g]'s future. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose sequence is
    (statistically) independent of [g]'s subsequent output. Use it to give
    each sub-component of a simulation its own stream so that adding draws
    in one component does not perturb another. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform on [0, bound). Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform on the inclusive range [lo, hi].
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float g bound] is uniform on [0, bound). Requires [bound > 0]. *)

val float_in : t -> float -> float -> float
(** [float_in g lo hi] is uniform on [lo, hi). Requires [lo < hi]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** One draw from N(mean, stddev^2), via Box–Muller (no caching of the
    second deviate, to keep the state a single word). *)

val geometric : t -> float -> int
(** [geometric g p] is the number of Bernoulli(p) trials up to and including
    the first success, i.e. supported on 1, 2, 3, ... Uses inversion, so it
    is O(1) even for tiny [p]. Requires [0 < p <= 1]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
