type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* SplitMix64 output function: one additive step plus two xor-shift-multiply
   mixing rounds (constants from the reference implementation). *)
let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g =
  let s = bits64 g in
  (* Mix once more so the child stream is decorrelated from the parent's. *)
  { state = Int64.mul s 0xD1342543DE82EF95L }

(* Top 62 bits, guaranteed to fit OCaml's native int non-negatively. *)
let nonneg g = Int64.to_int (Int64.shift_right_logical (bits64 g) 2)

let int g bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let rec loop () =
    let r = nonneg g in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then loop () else v
  in
  loop ()

let int_in g lo hi =
  assert (lo <= hi);
  lo + int g (hi - lo + 1)

(* 53 uniform mantissa bits, as in the standard doubles-from-int64 recipe. *)
let unit_float g =
  let u = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float u *. 0x1.0p-53

let float g bound =
  assert (bound > 0.);
  unit_float g *. bound

let float_in g lo hi =
  assert (lo < hi);
  lo +. (unit_float g *. (hi -. lo))

let bool g = Int64.logand (bits64 g) 1L = 1L

let bernoulli g p = unit_float g < p

let gaussian g ~mean ~stddev =
  let rec nonzero () =
    let u = unit_float g in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () in
  let u2 = unit_float g in
  let r = sqrt (-2. *. log u1) in
  mean +. (stddev *. r *. cos (2. *. Float.pi *. u2))

let geometric g p =
  assert (p > 0. && p <= 1.);
  if p >= 1. then 1
  else
    let rec nonzero () =
      let u = unit_float g in
      if u > 0. then u else nonzero ()
    in
    let u = nonzero () in
    (* Inversion: ceil(ln u / ln (1-p)) is Geometric(p) on {1,2,...}. *)
    let k = ceil (log u /. log (1. -. p)) in
    if k < 1. then 1
    else if k > 1e18 then max_int
    else int_of_float k

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
