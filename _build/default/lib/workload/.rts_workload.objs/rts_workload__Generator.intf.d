lib/workload/generator.mli: Rts_core
