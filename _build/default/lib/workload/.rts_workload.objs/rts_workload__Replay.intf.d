lib/workload/replay.mli: Engine Rts_core Types
