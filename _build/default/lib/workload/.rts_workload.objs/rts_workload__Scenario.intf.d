lib/workload/scenario.mli: Engine Format Generator Rts_core
