lib/workload/scenario.ml: Array Engine Format Generator Hashtbl List Rts_core Rts_structures Rts_util Types
