lib/workload/csv_io.ml: Array Buffer List Printf Rts_core String Types
