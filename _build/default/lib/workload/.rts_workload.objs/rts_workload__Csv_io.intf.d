lib/workload/csv_io.mli: Rts_core Types
