lib/workload/generator.ml: Array Float Rts_core Rts_util
