lib/workload/replay.ml: Csv_io Engine List Printf Rts_core String Types
