(** Synthetic workload of the paper's experimental evaluation (Section 8).

    - Data space: integer-ish domain [0, 10^5] per dimension.
    - Element values: uniform over the data space; element weights: Gaussian
      N(100, 15) rounded, redrawn while < 1 (or constant 1 for counting RTS).
    - Query rectangles: squares (intervals for d = 1) of volume 10% of the
      data space, centers Gaussian per coordinate with mean 5*10^4 and
      standard deviation 15% of the mean, redrawn until the rectangle lies
      inside the data space — elements are everywhere, queries concentrate
      on an "area of common interest".
    - Lifetimes: a query is terminated early with per-timestamp probability
      [p_del] calibrated so that it survives to its expected maturity time
      tau/10 with probability 10%. We draw the geometric lifetime once at
      registration instead of flipping a coin per timestamp per query —
      identical in distribution, O(1) per tick (DESIGN.md, substitution 4). *)

open Rts_core.Types

type t
(** Generator state: dimension, parameters and a private PRNG stream. *)

type value_distribution =
  | Uniform  (** the paper's element distribution *)
  | Zipf of float
      (** rank-frequency skew over 1024 buckets per dimension; the
          parameter is the Zipf exponent (1.0 = classic). A robustness
          extension beyond the paper's setup. *)
  | Clustered of int
      (** mixture of k Gaussian hot spots drawn once at creation; another
          robustness extension. *)

val domain : float
(** Upper end of the data space per dimension (10^5; lower end is 0). *)

val create :
  ?value_dist:value_distribution ->
  ?domain_hi:float ->
  ?volume_fraction:float ->
  ?weight_mean:float ->
  ?weight_stddev:float ->
  ?unit_weights:bool ->
  dim:int ->
  seed:int ->
  unit ->
  t
(** Defaults mirror the paper: [value_dist = Uniform], [domain_hi = 1e5],
    [volume_fraction = 0.1], weights N(100, 15), [unit_weights = false]. *)

val dim : t -> int

val element : t -> elem
(** Draw one stream element. *)

val rectangle : t -> rect
(** Draw one query rectangle (square of the configured volume fraction,
    Gaussian center, contained in the data space). *)

val query : t -> id:int -> threshold:int -> query
(** Draw a query with the given id and threshold. *)

val expected_stab_probability : t -> float
(** Probability that a uniform element value falls in any given query
    rectangle = the volume fraction (0.1 by default) — the paper uses this
    to predict maturity at tau/10 timestamps. *)

val p_del : t -> tau:int -> float
(** The paper's deletion probability: the per-timestamp termination
    probability making P(survive tau/10 timestamps) = 10%. *)

val lifetime : t -> tau:int -> int
(** Draw a geometric lifetime (in timestamps) under {!p_del}. *)

val mean_weight : t -> float
(** Expected element weight (100, or 1 with [unit_weights]). *)
