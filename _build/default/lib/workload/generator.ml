open Rts_core.Types
module Prng = Rts_util.Prng

let domain = 1e5

type value_distribution = Uniform | Zipf of float | Clustered of int

(* Sampler for one coordinate, fixed at creation. *)
type coord_sampler =
  | Sample_uniform
  | Sample_zipf of float array (* bucket CDF over [0, domain_hi) *)
  | Sample_clustered of float array (* hot-spot centers *)

type t = {
  dims : int;
  rng : Prng.t;
  sampler : coord_sampler;
  domain_hi : float;
  side : float; (* side length of a query square *)
  center_mean : float;
  center_stddev : float;
  weight_mean : float;
  weight_stddev : float;
  unit_weights : bool;
}

let zipf_buckets = 1024

let make_sampler rng domain_hi = function
  | Uniform -> Sample_uniform
  | Zipf s ->
      if s <= 0. then invalid_arg "Generator.create: Zipf exponent <= 0";
      (* rank-frequency CDF over shuffled buckets, so the hot buckets are
         scattered across the domain rather than piled at 0 *)
      let ranks = Array.init zipf_buckets (fun i -> i) in
      Prng.shuffle rng ranks;
      let weights = Array.map (fun r -> 1. /. (float_of_int (r + 1) ** s)) ranks in
      let total = Array.fold_left ( +. ) 0. weights in
      let cdf = Array.make zipf_buckets 0. in
      let acc = ref 0. in
      Array.iteri
        (fun i w ->
          acc := !acc +. (w /. total);
          cdf.(i) <- !acc)
        weights;
      ignore domain_hi;
      Sample_zipf cdf
  | Clustered k ->
      if k < 1 then invalid_arg "Generator.create: Clustered k < 1";
      Sample_clustered (Array.init k (fun _ -> Prng.float rng domain_hi))

let create ?(value_dist = Uniform) ?(domain_hi = domain) ?(volume_fraction = 0.1)
    ?(weight_mean = 100.) ?(weight_stddev = 15.) ?(unit_weights = false) ~dim ~seed () =
  if dim < 1 then invalid_arg "Generator.create: dim < 1";
  if not (volume_fraction > 0. && volume_fraction < 1.) then
    invalid_arg "Generator.create: volume_fraction outside (0, 1)";
  let side = domain_hi *. (volume_fraction ** (1. /. float_of_int dim)) in
  let rng = Prng.create ~seed in
  {
    dims = dim;
    sampler = make_sampler rng domain_hi value_dist;
    rng;
    domain_hi;
    side;
    center_mean = 0.5 *. domain_hi;
    center_stddev = 0.15 *. 0.5 *. domain_hi;
    weight_mean;
    weight_stddev;
    unit_weights;
  }

let dim t = t.dims

let sample_coord t =
  match t.sampler with
  | Sample_uniform -> Prng.float t.rng t.domain_hi
  | Sample_zipf cdf ->
      let u = Prng.float t.rng 1. in
      (* binary search for the bucket, then uniform within it *)
      let lo = ref 0 and hi = ref (Array.length cdf - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cdf.(mid) < u then lo := mid + 1 else hi := mid
      done;
      let bucket_width = t.domain_hi /. float_of_int (Array.length cdf) in
      (float_of_int !lo +. Prng.float t.rng 1.) *. bucket_width
  | Sample_clustered centers ->
      let c = centers.(Prng.int t.rng (Array.length centers)) in
      let x = Prng.gaussian t.rng ~mean:c ~stddev:(0.03 *. t.domain_hi) in
      Float.max 0. (Float.min (Float.pred t.domain_hi) x)

let element t =
  let value = Array.init t.dims (fun _ -> sample_coord t) in
  let weight =
    if t.unit_weights then 1
    else begin
      (* Redraw while the rounded Gaussian lands below 1, as in the paper. *)
      let rec draw () =
        let w =
          int_of_float
            (Float.round (Prng.gaussian t.rng ~mean:t.weight_mean ~stddev:t.weight_stddev))
        in
        if w < 1 then draw () else w
      in
      draw ()
    end
  in
  { value; weight }

let rectangle t =
  let half = t.side /. 2. in
  (* Redraw the whole center until the square fits in the data space. *)
  let rec draw () =
    let center =
      Array.init t.dims (fun _ ->
          Prng.gaussian t.rng ~mean:t.center_mean ~stddev:t.center_stddev)
    in
    let ok =
      Array.for_all (fun c -> c -. half >= 0. && c +. half <= t.domain_hi) center
    in
    if ok then rect_make (Array.map (fun c -> (c -. half, c +. half)) center) else draw ()
  in
  draw ()

let query t ~id ~threshold = { id; rect = rectangle t; threshold }

let expected_stab_probability t =
  (t.side /. t.domain_hi) ** float_of_int t.dims

let mean_weight t = if t.unit_weights then 1. else t.weight_mean

(* P(survive s timestamps) = (1 - p)^s = 0.1 at the expected maturity time
   s = tau / (stab probability * mean weight). *)
let p_del t ~tau =
  let steps = float_of_int tau /. (expected_stab_probability t *. mean_weight t) in
  1. -. (0.1 ** (1. /. steps))

let lifetime t ~tau = Prng.geometric t.rng (p_del t ~tau)
