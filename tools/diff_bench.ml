(* diff_bench: bench-budget drift guard.

   Usage: diff_bench --budgets FILE BENCH.json [--budgets FILE BENCH.json ...]

   Where validate_bench answers "does this run fit the budgets?" with a
   terse pass/fail, diff_bench answers "how close is it?": for every
   budgeted work counter it prints a markdown delta table — budget,
   actual, headroom, drift — that CI appends to the job summary, so a
   counter creeping toward its ceiling is visible long before it trips
   the gate, and a budget that has drifted far above reality (LOOSE) is
   flagged for tightening when it is next regenerated.

   Each [--budgets FILE] applies to the BENCH files that follow it (until
   the next [--budgets]). The budget key per run comes from the
   Bench_targets registry: "engine/batch" for perf documents,
   "engine/kK" for shard documents.

   Status per row:
     OK    — actual <= budget (headroom remaining)
     OVER  — actual exceeds the budget: a work regression. Exit 1.
     LOOSE — actual < 50% of budget: the gate is so slack it would let a
             near-2x regression through; informational, exit 0.

   Wall clock is reported in a second, purely informational table —
   counters gate, the clock never does (shared runners are noisy and
   single-core runners cannot show parallel speedups at all). *)

module Json = Rts_obs.Json
module Bench_targets = Rts_workload.Bench_targets

let errors = ref 0

let err fmt = Printf.ksprintf (fun s -> incr errors; Printf.eprintf "diff-bench: %s\n" s) fmt

let mem k j = Json.member k j

let num k j = Option.bind (mem k j) Json.get_num

let str k j = Option.bind (mem k j) Json.get_str

type row = {
  key : string;
  counter : string;
  budget : float;
  actual : float;
}

let status r = if r.actual > r.budget then "OVER" else if r.actual < 0.5 *. r.budget then "LOOSE" else "OK"

let collect_rows ~file ~keying budgets runs =
  List.concat_map
    (fun run ->
      let key =
        match (keying : Bench_targets.budget_keying) with
        | Bench_targets.By_batch -> (
            match (str "engine" run, num "batch" run) with
            | Some e, Some b -> Some (Printf.sprintf "%s/%.0f" e b)
            | _ -> None)
        | Bench_targets.By_shards -> (
            match (str "engine" run, num "shards" run) with
            | Some e, Some k -> Some (Printf.sprintf "%s/k%.0f" e k)
            | _ -> None)
        | Bench_targets.By_engine -> str "engine" run
        | Bench_targets.No_budgets -> None
      in
      match key with
      | None -> []
      | Some key -> (
          match mem key budgets with
          | Some (Json.Obj entries) ->
              List.filter_map
                (fun (counter, budget) ->
                  match (Json.get_num budget, Option.bind (mem "metrics" run) (num counter)) with
                  | Some budget, Some actual -> Some { key; counter; budget; actual }
                  | Some _, None ->
                      err "%s: budgeted counter %s missing from %s run metrics" file counter key;
                      None
                  | None, _ ->
                      err "%s: budget for %s/%s is not a number" file key counter;
                      None)
                entries
          | Some _ -> err "%s: budgets entry %S is not an object" file key; []
          | None -> err "%s: no budgets entry for %S" file key; []))
    runs

let wall_clock_rows runs =
  List.filter_map
    (fun run ->
      match (str "engine" run, num "per_op_us" run, num "total_seconds" run) with
      | Some engine, Some us, Some s ->
          let qualifier =
            match (num "batch" run, num "shards" run) with
            | Some b, _ -> Printf.sprintf "/%.0f" b
            | None, Some k -> Printf.sprintf "/k%.0f" k
            | None, None -> ""
          in
          Some (engine ^ qualifier, us, s)
      | _ -> None)
    runs

let print_tables ~file ~figure rows clock =
  Printf.printf "### %s (`%s`): work-counter drift\n\n" figure file;
  if rows = [] then Printf.printf "_no budgeted counters_\n\n"
  else begin
    Printf.printf "| key | counter | budget | actual | headroom | drift | status |\n";
    Printf.printf "|---|---|---:|---:|---:|---:|---|\n";
    List.iter
      (fun r ->
        (* Bench_targets.drift_cell renders zero-budget rows (e.g.
           forwarded elements at k=1, approx bound violations) as text —
           a naive division prints -nan%/+inf% for them. *)
        Printf.printf "| %s | %s | %.0f | %.0f | %.0f | %s | %s |\n" r.key r.counter r.budget
          r.actual (r.budget -. r.actual)
          (Bench_targets.drift_cell ~budget:r.budget ~actual:r.actual)
          (status r))
      rows;
    Printf.printf "\n"
  end;
  if clock <> [] then begin
    Printf.printf "Wall clock (informational — never gated):\n\n";
    Printf.printf "| run | per_op_us | seconds |\n|---|---:|---:|\n";
    List.iter (fun (k, us, s) -> Printf.printf "| %s | %.3f | %.3f |\n" k us s) clock;
    Printf.printf "\n"
  end

let check_params ~file ~budget_file budget_doc doc =
  List.iter
    (fun k ->
      match (num k budget_doc, Option.bind (mem "params" doc) (num k)) with
      | Some b, Some p when b <> p ->
          err "%s: params.%s = %g but %s budgets were generated at %s = %g — regenerate budgets"
            file k p budget_file k b
      | None, _ -> err "%s: budgets file missing number %S" budget_file k
      | _ -> ())
    [ "scale"; "seed" ]

let over = ref 0

let diff_file ~budget_file (budget_doc, budgets) file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error msg -> err "%s" msg
  | contents -> (
      match Json.of_string contents with
      | exception Json.Parse_error msg -> err "%s: malformed JSON: %s" file msg
      | doc -> (
          let figure = Option.value ~default:"?" (str "figure" doc) in
          let keying =
            match Bench_targets.find figure with
            | Some t -> t.Bench_targets.budget_keying
            | None ->
                err "%s: unknown figure %S — not in the Bench_targets registry" file figure;
                Bench_targets.No_budgets
          in
          if keying = Bench_targets.No_budgets then
            err "%s: figure %S carries no budget keying — nothing to diff" file figure;
          check_params ~file ~budget_file budget_doc doc;
          match mem "runs" doc with
          | Some (Json.List runs) ->
              let rows = collect_rows ~file ~keying budgets runs in
              List.iter (fun r -> if status r = "OVER" then incr over) rows;
              print_tables ~file ~figure rows (wall_clock_rows runs)
          | _ -> err "%s: missing \"runs\" array" file))

let load_budgets file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error msg -> err "%s" msg; None
  | contents -> (
      match Json.of_string contents with
      | exception Json.Parse_error msg -> err "%s: malformed JSON: %s" file msg; None
      | doc -> (
          match mem "budgets" doc with
          | Some (Json.Obj _ as b) -> Some (doc, b)
          | _ -> err "%s: budgets file missing \"budgets\" object" file; None))

let () =
  let budgets = ref None and seen_any = ref false in
  let rec parse = function
    | "--budgets" :: path :: rest ->
        budgets := Option.map (fun b -> (path, b)) (load_budgets path);
        parse rest
    | [ "--budgets" ] -> prerr_endline "diff-bench: --budgets needs a FILE"; exit 2
    | file :: rest ->
        (match !budgets with
        | Some (budget_file, b) ->
            seen_any := true;
            diff_file ~budget_file b file
        | None ->
            err "%s given before any --budgets FILE" file);
        parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if not !seen_any && !errors = 0 then begin
    prerr_endline "usage: diff_bench --budgets FILE BENCH.json [--budgets FILE BENCH.json ...]";
    exit 2
  end;
  if !over > 0 then begin
    Printf.eprintf "diff-bench: %d counter(s) OVER budget\n" !over;
    exit 1
  end;
  if !errors > 0 then begin
    Printf.eprintf "diff-bench: %d problem(s)\n" !errors;
    exit 1
  end
