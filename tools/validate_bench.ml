(* validate_bench: CI gate over the machine-readable benchmark output.

   Usage: validate_bench [--perf-budgets FILE] [--shard-budgets FILE]
            BENCH_fig4.json [...]

   For every file: parse it with Rts_obs.Json (the same dependency-free
   parser the repository ships), check the document shape the bench
   promises (figure, params, runs with engine/total_seconds/trace), and
   enforce the paper's telemetry claim: whenever a run carries a DT
   message count, it must not exceed its analytic O(h log tau) budget
   (the bench emits both, plus a precomputed [dt_budget_ok] verdict that
   must agree).

   Which figures exist, which traces must advance strictly, and how a
   figure's budget file is keyed all come from the {!Bench_targets}
   registry shared with bench/main.ml — an unknown figure is an error,
   so a bench target cannot emit output this validator silently skips.

   `perf` documents additionally carry repetition stability fields,
   micro-benchmark rows, and the batched-ingestion verdicts
   ([dt_counters_no_increase] must be true). `shard` and `par` documents
   carry the scaling-sweep shape: per-run shard counts, executor,
   per-shard metric snapshots and the worker-domain count the run
   actually used (cores = 1 is only consistent with the seq executor or
   a single slot), plus the maturity-determinism verdict that must be
   true (the bench aborts before emitting otherwise). `par` documents
   must additionally claim >= 2 cores and element partitioning — the
   bench refuses to emit them elsewhere.

   With [--perf-budgets FILE] / [--shard-budgets FILE], every run of the
   corresponding document is also held to the checked-in deterministic
   work-counter budgets — keyed "engine/batch" for perf, "engine/kK" for
   shard and par sweeps: actual counter <= budget, same scale and seed.
   [--alloc-budgets FILE] layers a second, independently-keyed budget
   set onto the same perf runs — the allocation gate
   (allocated_words_per_element, also deterministic per scale/seed
   because Rts_obs.Alloc calibrates out its own bracket overhead) —
   so the work-counter and allocation budgets can live in separate
   checked-in files and evolve independently.
   Wall clock is deliberately NOT gated — shared CI runners make it
   noisy (and the shard sweep may run on a single core, where no
   parallel speedup is physically available) — the work counters are
   the deterministic proxy. Exit 0 iff every file passes; problems go
   to stderr. *)

module Json = Rts_obs.Json
module Bench_targets = Rts_workload.Bench_targets

let errors = ref 0

let err fmt = Printf.ksprintf (fun s -> incr errors; Printf.eprintf "validate-bench: %s\n" s) fmt

let mem k j = Json.member k j

let num k j = Option.bind (mem k j) Json.get_num

let str k j = Option.bind (mem k j) Json.get_str

let require_num ~file ~where k j =
  match num k j with
  | Some v when Float.is_finite v -> Some v
  | Some _ -> err "%s: %s: %S is not finite" file where k; None
  | None -> err "%s: %s: missing number %S" file where k; None

(* The budget key for one run, per the figure's registry keying. *)
let budget_key ~file ~where keying run =
  match (keying : Bench_targets.budget_keying) with
  | Bench_targets.No_budgets -> None
  | Bench_targets.By_batch -> (
      match (str "engine" run, num "batch" run) with
      | Some engine, Some batch -> Some (Printf.sprintf "%s/%.0f" engine batch)
      | _, None -> err "%s: %s: run missing \"batch\" (needed for budgets)" file where; None
      | None, _ -> None)
  | Bench_targets.By_shards -> (
      match (str "engine" run, num "shards" run) with
      | Some engine, Some shards -> Some (Printf.sprintf "%s/k%.0f" engine shards)
      | _, None -> err "%s: %s: run missing \"shards\" (needed for budgets)" file where; None
      | None, _ -> None)
  | Bench_targets.By_engine -> (
      match str "engine" run with
      | Some engine -> Some engine
      | None -> err "%s: %s: run missing \"engine\" (needed for budgets)" file where; None)

let check_run ~file ~figure ~strict ~keying ~budgets i run =
  let where = Printf.sprintf "runs[%d]" i in
  ignore figure;
  (match str "engine" run with
  | Some _ -> ()
  | None -> err "%s: %s: missing string \"engine\"" file where);
  ignore (require_num ~file ~where "total_seconds" run);
  ignore (require_num ~file ~where "per_op_us" run);
  ignore (require_num ~file ~where "elements" run);
  (match mem "metrics" run with
  | Some (Json.Obj _) -> ()
  | _ -> err "%s: %s: missing \"metrics\" object" file where);
  (match mem "trace" run with
  | Some (Json.List pts) ->
      let prev = ref neg_infinity in
      List.iteri
        (fun j pt ->
          let pwhere = Printf.sprintf "%s.trace[%d]" where j in
          (match require_num ~file ~where:pwhere "elements" pt with
          | Some e ->
              (* The first point may be the pre-stream registration batch
                 (elements = 0); after that the count must strictly grow. *)
              if strict && j > 0 && e <= !prev then
                err "%s: %s: elements %.0f not strictly greater than previous %.0f" file pwhere e
                  !prev;
              prev := e
          | None -> ());
          ignore (require_num ~file ~where:pwhere "avg_us" pt))
        pts
  | _ -> err "%s: %s: missing \"trace\" array" file where);
  (* Repetition stability (bench --reps): median must sit inside the
     observed envelope. *)
  (match (num "reps" run, num "total_seconds_min" run, num "total_seconds_max" run) with
  | Some reps, Some tmin, Some tmax ->
      if reps < 1.0 then err "%s: %s: reps %.0f < 1" file where reps;
      (match num "total_seconds" run with
      | Some t when t < tmin -. 1e-12 || t > tmax +. 1e-12 ->
          err "%s: %s: total_seconds %.6f outside [min=%.6f, max=%.6f]" file where t tmin tmax
      | _ -> ())
  | None, None, None -> ()
  | _ -> err "%s: %s: reps/total_seconds_min/total_seconds_max must appear together" file where);
  (* Deterministic budgets (--perf-budgets/--shard-budgets/--alloc-budgets).
     Each supplied budget set is enforced independently; a run's key must
     appear in every set that applies to its figure. *)
  List.iter
    (fun budgets ->
      match budget_key ~file ~where keying run with
      | None -> ()
      | Some key -> (
          match mem key budgets with
          | Some (Json.Obj entries) ->
              List.iter
                (fun (counter, budget) ->
                  match (Json.get_num budget, Option.bind (mem "metrics" run) (num counter)) with
                  | Some b, Some actual ->
                      if actual > b then
                        err "%s: %s (%s): work counter %s = %.0f exceeds budget %.0f" file where
                          key counter actual b
                  | Some _, None ->
                      err "%s: %s (%s): budgeted counter %s missing from run metrics" file where
                        key counter
                  | None, _ ->
                      err "%s: %s (%s): budget for %s is not a number" file where key counter)
                entries
          | Some _ -> err "%s: budgets entry %S is not an object" file key
          | None -> err "%s: %s: no budgets entry for %S" file where key))
    budgets;
  (* The paper's budget: if the run reports DT messages, they must fit. *)
  (match (num "dt_messages" run, num "dt_message_budget" run) with
  | Some messages, Some budget ->
      if messages > budget then
        err "%s: %s (%s): dt_messages %.0f exceeds O(h log tau) budget %.0f" file where
          (Option.value ~default:"?" (str "engine" run))
          messages budget;
      (match mem "dt_budget_ok" run with
      | Some (Json.Bool ok) ->
          if ok <> (messages <= budget) then
            err "%s: %s: dt_budget_ok disagrees with the numbers" file where
      | _ -> err "%s: %s: dt_messages present but dt_budget_ok missing" file where)
  | Some _, None -> err "%s: %s: dt_messages without dt_message_budget" file where
  | None, _ -> ());
  (* Networked runs (bench `net`): the useful-message count must fit the
     same analytic budget unless the fault spec degraded links, the
     never-early invariant is unconditional, and the maturity ordinals of
     the faulty run must match the zero-fault reference. *)
  match (num "net_useful_messages" run, num "net_message_bound" run) with
  | Some useful, Some bound ->
      let degraded = Option.value ~default:0.0 (num "net_degraded_sites" run) in
      if useful > bound && degraded <= 0.0 then
        err "%s: %s (%s): net_useful_messages %.0f exceeds bound %.0f with no degraded sites"
          file where
          (Option.value ~default:"?" (str "net_spec_name" run))
          useful bound;
      (match mem "net_bound_ok" run with
      | Some (Json.Bool ok) ->
          if ok <> (degraded > 0.0 || useful <= bound) then
            err "%s: %s: net_bound_ok disagrees with the numbers" file where
      | _ -> err "%s: %s: net_useful_messages present but net_bound_ok missing" file where);
      (match mem "net_never_early" run with
      | Some (Json.Bool true) -> ()
      | Some (Json.Bool false) -> err "%s: %s: net_never_early is false" file where
      | _ -> err "%s: %s: net run missing net_never_early" file where);
      (match mem "net_ordinal_match" run with
      | Some (Json.Bool true) -> ()
      | Some (Json.Bool false) -> err "%s: %s: net_ordinal_match is false" file where
      | _ -> err "%s: %s: net run missing net_ordinal_match" file where);
      ignore (require_num ~file ~where "net_messages" run);
      ignore (require_num ~file ~where "net_retransmits" run);
      (match str "net_spec" run with
      | Some _ -> ()
      | None -> err "%s: %s: net run missing string \"net_spec\"" file where)
  | Some _, None -> err "%s: %s: net_useful_messages without net_message_bound" file where
  | None, _ -> ()

(* perf documents: batched-ingestion shape and verdicts. *)
let check_perf_doc ~file doc =
  (match Option.bind (mem "params" doc) (mem "batches") with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> err "%s: perf document missing non-empty params.batches" file);
  (match mem "micro" doc with
  | Some (Json.List rows) ->
      List.iteri
        (fun i row ->
          let where = Printf.sprintf "micro[%d]" i in
          (match str "name" row with
          | Some _ -> ()
          | None -> err "%s: %s: missing string \"name\"" file where);
          ignore (require_num ~file ~where "ns_per_element" row))
        rows
  | _ -> err "%s: perf document missing \"micro\" array" file);
  ignore (require_num ~file ~where:"document" "dt_speedup_1024_vs_1" doc);
  match mem "dt_counters_no_increase" doc with
  | Some (Json.Bool true) -> ()
  | Some (Json.Bool false) ->
      err "%s: dt_counters_no_increase is false — batching added protocol work" file
  | _ -> err "%s: perf document missing bool \"dt_counters_no_increase\"" file

(* Per-run shape shared by the sharded sweeps (`shard` and `par`):
   shard count, executor, per-shard metric snapshots, and an honest
   core count — every run must record the worker-domain count it
   actually used, and claiming 1 core is only consistent with the seq
   executor (everything inline on the caller) or a single slot. *)
let check_sweep_run ~file ~figure i run =
  let where = Printf.sprintf "runs[%d]" i in
  let shards = require_num ~file ~where "shards" run in
  (match str "executor" run with
  | Some _ -> ()
  | None -> err "%s: %s: %s run missing string \"executor\"" file where figure);
  (match (require_num ~file ~where "cores" run, str "executor" run, shards) with
  | Some c, Some executor, Some k ->
      if c < 1.0 then err "%s: %s: cores %.0f < 1" file where c;
      if c = 1.0 && executor <> "seq" && k > 1.0 then
        err
          "%s: %s: cores = 1 but executor = %S with %.0f shards — a parallel executor must \
           record its true worker-domain count"
          file where executor k
  | _ -> ());
  match mem "per_shard_metrics" run with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> err "%s: %s: %s run missing non-empty \"per_shard_metrics\"" file where figure

let check_sweep_runs ~file ~figure doc =
  match mem "runs" doc with
  | Some (Json.List runs) -> List.iteri (check_sweep_run ~file ~figure) runs
  | _ -> ()

let check_speedup_obj ~file doc key =
  match mem key doc with
  | Some (Json.Obj ((_ :: _) as entries)) ->
      List.iter
        (fun (engine, v) ->
          match Json.get_num v with
          | Some s when Float.is_finite s && s > 0.0 -> ()
          | _ -> err "%s: %s.%s is not a positive number" file key engine)
        entries
  | _ -> err "%s: document missing non-empty %S object" file key

let check_verdict ~file doc key diverged =
  match mem key doc with
  | Some (Json.Bool true) -> ()
  | Some (Json.Bool false) -> err "%s: %s is false — %s" file key diverged
  | _ -> err "%s: document missing bool %S" file key

(* approx documents: the approximate tier's sweep. The error accounting
   is measured in-bench against a brute-force exact scan — the document
   must carry the verdicts (never-early vs the exact baseline, top-n
   parity with the full sort) as true, and every approximate run must
   report zero certified-bound violations plus the sketch footprint and
   observed-error gauges the budgets gate. *)
let check_approx_doc ~file doc =
  (match Option.bind (mem "params" doc) (num "probes") with
  | Some p when p >= 1.0 -> ()
  | _ -> err "%s: approx document missing params.probes >= 1" file);
  check_verdict ~file doc "approx_never_early"
    "an approximate engine matured a query before the exact baseline";
  check_verdict ~file doc "topn_matches_sort"
    "the binary threshold search diverged from the full sorted ranking";
  match mem "runs" doc with
  | Some (Json.List runs) ->
      List.iteri
        (fun i run ->
          let where = Printf.sprintf "runs[%d]" i in
          match str "engine" run with
          | Some ("crprecis" | "heavy") ->
              List.iter
                (fun g ->
                  match Option.bind (mem "metrics" run) (num g) with
                  | Some v when Float.is_finite v ->
                      if g = "approx_bound_violations" && v <> 0.0 then
                        err "%s: %s: approx_bound_violations = %.0f (must be 0)" file where v
                  | _ -> err "%s: %s: approx run missing metrics gauge %S" file where g)
                [
                  "approx_bound_violations";
                  "approx_max_width";
                  "approx_max_observed_error";
                  "approx_sketch_words";
                ]
          | _ -> ())
        runs
  | _ -> ()

(* shard documents: scaling-sweep shape and the determinism verdict. The
   speedup numbers are informational (the recorded cores say whether a
   parallel speedup was even physically available); the merge
   determinism and the per-run work-counter budgets are the gates. *)
let check_shard_doc ~file doc =
  (match Option.bind (mem "params" doc) (mem "ks") with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> err "%s: shard document missing non-empty params.ks" file);
  (match Option.bind (mem "params" doc) (num "cores") with
  | Some c when c >= 1.0 -> ()
  | _ -> err "%s: shard document missing params.cores >= 1" file);
  (match Option.bind (mem "params" doc) (str "executor") with
  | Some ("seq" | "domains") -> ()
  | Some e -> err "%s: shard params.executor %S is neither seq nor domains" file e
  | None -> err "%s: shard document missing params.executor" file);
  check_speedup_obj ~file doc "shard_speedup_k4_vs_k1";
  check_verdict ~file doc "shard_maturity_deterministic" "the merged maturity log diverged";
  check_sweep_runs ~file ~figure:"shard" doc

(* par documents: element-partitioned parallel ingestion. The bench
   refuses to emit this file at all on <2 cores, so a par document
   claiming fewer is self-contradictory; it always runs the domains
   executor over element partitioning. *)
let check_par_doc ~file doc =
  (match Option.bind (mem "params" doc) (mem "ks") with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> err "%s: par document missing non-empty params.ks" file);
  (match Option.bind (mem "params" doc) (num "cores") with
  | Some c when c >= 2.0 -> ()
  | Some c ->
      err "%s: par params.cores = %.0f but the bench must refuse to emit below 2 cores" file c
  | None -> err "%s: par document missing params.cores" file);
  (match Option.bind (mem "params" doc) (str "executor") with
  | Some "domains" -> ()
  | Some e -> err "%s: par params.executor %S should be domains" file e
  | None -> err "%s: par document missing params.executor" file);
  (match Option.bind (mem "params" doc) (str "partition") with
  | Some "elements" -> ()
  | Some pt -> err "%s: par params.partition %S should be elements" file pt
  | None -> err "%s: par document missing params.partition" file);
  check_speedup_obj ~file doc "par_speedup_k8_vs_k1";
  check_verdict ~file doc "par_maturity_deterministic" "the merged maturity log diverged";
  (match mem "runs" doc with
  | Some (Json.List runs) ->
      List.iteri
        (fun i run ->
          match str "partition" run with
          | Some "elements" -> ()
          | Some pt -> err "%s: runs[%d]: par run partition %S should be elements" file i pt
          | None -> err "%s: runs[%d]: par run missing string \"partition\"" file i)
        runs
  | _ -> ());
  check_sweep_runs ~file ~figure:"par" doc

(* Budgets file: { "scale": s, "seed": n, "budgets": { key: { counter:
   max, ... }, ... } }. Scale and seed must match the document's params —
   counters are deterministic only per (scale, seed). *)
let load_budgets file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error msg -> err "%s" msg; None
  | contents -> (
      match Json.of_string contents with
      | exception Json.Parse_error msg -> err "%s: malformed JSON: %s" file msg; None
      | doc -> (
          match mem "budgets" doc with
          | Some (Json.Obj _ as b) -> Some (doc, b)
          | _ -> err "%s: budgets file missing \"budgets\" object" file; None))

let check_budget_params ~file ~budget_file budget_doc doc =
  List.iter
    (fun k ->
      match (num k budget_doc, Option.bind (mem "params" doc) (num k)) with
      | Some b, Some p when b <> p ->
          err "%s: params.%s = %g but %s budgets were generated at %s = %g — regenerate budgets"
            file k p budget_file k b
      | None, _ -> err "%s: budgets file missing number %S" budget_file k
      | _ -> ())
    [ "scale"; "seed" ]

let check_file ~perf_budgets ~shard_budgets ~alloc_budgets ~approx_budgets file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error msg -> err "%s" msg
  | contents -> (
      match Json.of_string contents with
      | exception Json.Parse_error msg -> err "%s: malformed JSON: %s" file msg
      | doc ->
          let figure =
            match str "figure" doc with
            | Some f -> f
            | None -> err "%s: missing string \"figure\"" file; ""
          in
          let target =
            match Bench_targets.find figure with
            | Some t ->
                if not t.Bench_targets.emits_json then
                  err "%s: figure %S is registered as not JSON-emitting" file figure;
                Some t
            | None ->
                err "%s: unknown figure %S — not in the Bench_targets registry (did you add a \
                     bench target without registering it?)"
                  file figure;
                None
          in
          let strict =
            match target with Some t -> t.Bench_targets.strict_trace | None -> false
          in
          let keying =
            match target with
            | Some t -> t.Bench_targets.budget_keying
            | None -> Bench_targets.No_budgets
          in
          (match mem "params" doc with
          | Some (Json.Obj _) -> ()
          | _ -> err "%s: missing \"params\" object" file);
          if figure = "perf" then check_perf_doc ~file doc;
          if figure = "shard" then check_shard_doc ~file doc;
          if figure = "par" then check_par_doc ~file doc;
          if figure = "approx" then check_approx_doc ~file doc;
          let run_budgets =
            let pick = function
              | Some (budget_file, (budget_doc, b)) ->
                  check_budget_params ~file ~budget_file budget_doc doc;
                  [ b ]
              | None -> []
            in
            match keying with
            | Bench_targets.By_batch -> pick perf_budgets @ pick alloc_budgets
            | Bench_targets.By_shards -> pick shard_budgets
            | Bench_targets.By_engine -> pick approx_budgets
            | Bench_targets.No_budgets -> []
          in
          (match mem "runs" doc with
          | Some (Json.List []) -> err "%s: \"runs\" is empty" file
          | Some (Json.List runs) ->
              List.iteri
                (fun i run ->
                  check_run ~file ~figure ~strict ~keying ~budgets:run_budgets i run)
                runs;
              Printf.printf "validate-bench: %s: %d runs ok%s\n" file (List.length runs)
                (if run_budgets <> [] then " (budgets enforced)" else "")
          | _ -> err "%s: missing \"runs\" array" file))

let () =
  let perf_budgets = ref None
  and shard_budgets = ref None
  and alloc_budgets = ref None
  and approx_budgets = ref None
  and files = ref [] in
  let load into path =
    match load_budgets path with Some b -> into := Some (path, b) | None -> ()
  in
  let rec parse = function
    | "--perf-budgets" :: path :: rest -> load perf_budgets path; parse rest
    | "--shard-budgets" :: path :: rest -> load shard_budgets path; parse rest
    | "--alloc-budgets" :: path :: rest -> load alloc_budgets path; parse rest
    | "--approx-budgets" :: path :: rest -> load approx_budgets path; parse rest
    | [ ("--perf-budgets" | "--shard-budgets" | "--alloc-budgets" | "--approx-budgets") ] ->
        prerr_endline
          "validate-bench: --perf-budgets/--shard-budgets/--alloc-budgets/--approx-budgets need \
           a FILE";
        exit 2
    | f :: rest -> files := f :: !files; parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let files = List.rev !files in
  if files = [] then begin
    prerr_endline
      "usage: validate_bench [--perf-budgets FILE] [--shard-budgets FILE] [--alloc-budgets FILE] \
       [--approx-budgets FILE] BENCH_<fig>.json ...";
    exit 2
  end;
  List.iter
    (check_file ~perf_budgets:!perf_budgets ~shard_budgets:!shard_budgets
       ~alloc_budgets:!alloc_budgets ~approx_budgets:!approx_budgets)
    files;
  if !errors > 0 then begin
    Printf.eprintf "validate-bench: %d problem(s)\n" !errors;
    exit 1
  end
