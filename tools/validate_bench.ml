(* validate_bench: CI gate over the machine-readable benchmark output.

   Usage: validate_bench BENCH_fig4.json [BENCH_fig6.json ...]

   For every file: parse it with Rts_obs.Json (the same dependency-free
   parser the repository ships), check the document shape the bench
   promises (figure, params, runs with engine/total_seconds/trace), and
   enforce the paper's telemetry claim: whenever a run carries a DT
   message count, it must not exceed its analytic O(h log tau) budget
   (the bench emits both, plus a precomputed [dt_budget_ok] verdict that
   must agree). Exit 0 iff every file passes; problems go to stderr. *)

module Json = Rts_obs.Json

let errors = ref 0

let err fmt = Printf.ksprintf (fun s -> incr errors; Printf.eprintf "validate-bench: %s\n" s) fmt

let mem k j = Json.member k j

let num k j = Option.bind (mem k j) Json.get_num

let str k j = Option.bind (mem k j) Json.get_str

let require_num ~file ~where k j =
  match num k j with
  | Some v when Float.is_finite v -> Some v
  | Some _ -> err "%s: %s: %S is not finite" file where k; None
  | None -> err "%s: %s: missing number %S" file where k; None

let check_run ~file i run =
  let where = Printf.sprintf "runs[%d]" i in
  (match str "engine" run with
  | Some _ -> ()
  | None -> err "%s: %s: missing string \"engine\"" file where);
  ignore (require_num ~file ~where "total_seconds" run);
  ignore (require_num ~file ~where "per_op_us" run);
  ignore (require_num ~file ~where "elements" run);
  (match mem "metrics" run with
  | Some (Json.Obj _) -> ()
  | _ -> err "%s: %s: missing \"metrics\" object" file where);
  (match mem "trace" run with
  | Some (Json.List pts) ->
      List.iteri
        (fun j pt ->
          let pwhere = Printf.sprintf "%s.trace[%d]" where j in
          ignore (require_num ~file ~where:pwhere "elements" pt);
          ignore (require_num ~file ~where:pwhere "avg_us" pt))
        pts
  | _ -> err "%s: %s: missing \"trace\" array" file where);
  (* The paper's budget: if the run reports DT messages, they must fit. *)
  (match (num "dt_messages" run, num "dt_message_budget" run) with
  | Some messages, Some budget ->
      if messages > budget then
        err "%s: %s (%s): dt_messages %.0f exceeds O(h log tau) budget %.0f" file where
          (Option.value ~default:"?" (str "engine" run))
          messages budget;
      (match mem "dt_budget_ok" run with
      | Some (Json.Bool ok) ->
          if ok <> (messages <= budget) then
            err "%s: %s: dt_budget_ok disagrees with the numbers" file where
      | _ -> err "%s: %s: dt_messages present but dt_budget_ok missing" file where)
  | Some _, None -> err "%s: %s: dt_messages without dt_message_budget" file where
  | None, _ -> ());
  (* Networked runs (bench `net`): the useful-message count must fit the
     same analytic budget unless the fault spec degraded links, the
     never-early invariant is unconditional, and the maturity ordinals of
     the faulty run must match the zero-fault reference. *)
  match (num "net_useful_messages" run, num "net_message_bound" run) with
  | Some useful, Some bound ->
      let degraded = Option.value ~default:0.0 (num "net_degraded_sites" run) in
      if useful > bound && degraded <= 0.0 then
        err "%s: %s (%s): net_useful_messages %.0f exceeds bound %.0f with no degraded sites"
          file where
          (Option.value ~default:"?" (str "net_spec_name" run))
          useful bound;
      (match mem "net_bound_ok" run with
      | Some (Json.Bool ok) ->
          if ok <> (degraded > 0.0 || useful <= bound) then
            err "%s: %s: net_bound_ok disagrees with the numbers" file where
      | _ -> err "%s: %s: net_useful_messages present but net_bound_ok missing" file where);
      (match mem "net_never_early" run with
      | Some (Json.Bool true) -> ()
      | Some (Json.Bool false) -> err "%s: %s: net_never_early is false" file where
      | _ -> err "%s: %s: net run missing net_never_early" file where);
      (match mem "net_ordinal_match" run with
      | Some (Json.Bool true) -> ()
      | Some (Json.Bool false) -> err "%s: %s: net_ordinal_match is false" file where
      | _ -> err "%s: %s: net run missing net_ordinal_match" file where);
      ignore (require_num ~file ~where "net_messages" run);
      ignore (require_num ~file ~where "net_retransmits" run);
      (match str "net_spec" run with
      | Some _ -> ()
      | None -> err "%s: %s: net run missing string \"net_spec\"" file where)
  | Some _, None -> err "%s: %s: net_useful_messages without net_message_bound" file where
  | None, _ -> ()

let check_file file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error msg -> err "%s" msg
  | contents -> (
      match Json.of_string contents with
      | exception Json.Parse_error msg -> err "%s: malformed JSON: %s" file msg
      | doc ->
          (match str "figure" doc with
          | Some _ -> ()
          | None -> err "%s: missing string \"figure\"" file);
          (match mem "params" doc with
          | Some (Json.Obj _) -> ()
          | _ -> err "%s: missing \"params\" object" file);
          (match mem "runs" doc with
          | Some (Json.List []) -> err "%s: \"runs\" is empty" file
          | Some (Json.List runs) ->
              List.iteri (fun i run -> check_run ~file i run) runs;
              Printf.printf "validate-bench: %s: %d runs ok\n" file (List.length runs)
          | _ -> err "%s: missing \"runs\" array" file))

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: validate_bench BENCH_<fig>.json ...";
    exit 2
  end;
  List.iter check_file files;
  if !errors > 0 then begin
    Printf.eprintf "validate-bench: %d problem(s)\n" !errors;
    exit 1
  end
