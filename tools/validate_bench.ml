(* validate_bench: CI gate over the machine-readable benchmark output.

   Usage: validate_bench [--perf-budgets FILE] BENCH_fig4.json [...]

   For every file: parse it with Rts_obs.Json (the same dependency-free
   parser the repository ships), check the document shape the bench
   promises (figure, params, runs with engine/total_seconds/trace), and
   enforce the paper's telemetry claim: whenever a run carries a DT
   message count, it must not exceed its analytic O(h log tau) budget
   (the bench emits both, plus a precomputed [dt_budget_ok] verdict that
   must agree). The per-op cost trajectories of fig4/fig6 must advance:
   trace[].elements strictly increasing. `perf` documents additionally
   carry repetition stability fields, micro-benchmark rows, and the
   batched-ingestion verdicts; [dt_counters_no_increase] must be true
   (batching may never add protocol work).

   With [--perf-budgets FILE], every run of every `perf` document is also
   held to the checked-in deterministic work-counter budgets, keyed
   "engine/batch": actual counter <= budget, same scale and seed. Wall
   clock is deliberately NOT gated — shared CI runners make it noisy —
   the work counters are the deterministic proxy (DESIGN.md, "Hot path
   and batching"). Exit 0 iff every file passes; problems go to stderr. *)

module Json = Rts_obs.Json

let errors = ref 0

let err fmt = Printf.ksprintf (fun s -> incr errors; Printf.eprintf "validate-bench: %s\n" s) fmt

let mem k j = Json.member k j

let num k j = Option.bind (mem k j) Json.get_num

let str k j = Option.bind (mem k j) Json.get_str

let require_num ~file ~where k j =
  match num k j with
  | Some v when Float.is_finite v -> Some v
  | Some _ -> err "%s: %s: %S is not finite" file where k; None
  | None -> err "%s: %s: missing number %S" file where k; None

(* Figures whose traces must advance strictly: each timing window covers
   at least one new element, so a plateau (or regression) in
   trace[].elements means the bench mis-attributed a window. *)
let strict_trace_figures = [ "fig4"; "fig6"; "perf" ]

let check_run ~file ~figure ?budgets i run =
  let where = Printf.sprintf "runs[%d]" i in
  (match str "engine" run with
  | Some _ -> ()
  | None -> err "%s: %s: missing string \"engine\"" file where);
  ignore (require_num ~file ~where "total_seconds" run);
  ignore (require_num ~file ~where "per_op_us" run);
  ignore (require_num ~file ~where "elements" run);
  (match mem "metrics" run with
  | Some (Json.Obj _) -> ()
  | _ -> err "%s: %s: missing \"metrics\" object" file where);
  (match mem "trace" run with
  | Some (Json.List pts) ->
      let strict = List.mem figure strict_trace_figures in
      let prev = ref neg_infinity in
      List.iteri
        (fun j pt ->
          let pwhere = Printf.sprintf "%s.trace[%d]" where j in
          (match require_num ~file ~where:pwhere "elements" pt with
          | Some e ->
              (* The first point may be the pre-stream registration batch
                 (elements = 0); after that the count must strictly grow. *)
              if strict && j > 0 && e <= !prev then
                err "%s: %s: elements %.0f not strictly greater than previous %.0f" file pwhere e
                  !prev;
              prev := e
          | None -> ());
          ignore (require_num ~file ~where:pwhere "avg_us" pt))
        pts
  | _ -> err "%s: %s: missing \"trace\" array" file where);
  (* Repetition stability (bench --reps): median must sit inside the
     observed envelope. *)
  (match (num "reps" run, num "total_seconds_min" run, num "total_seconds_max" run) with
  | Some reps, Some tmin, Some tmax ->
      if reps < 1.0 then err "%s: %s: reps %.0f < 1" file where reps;
      (match num "total_seconds" run with
      | Some t when t < tmin -. 1e-12 || t > tmax +. 1e-12 ->
          err "%s: %s: total_seconds %.6f outside [min=%.6f, max=%.6f]" file where t tmin tmax
      | _ -> ())
  | None, None, None -> ()
  | _ -> err "%s: %s: reps/total_seconds_min/total_seconds_max must appear together" file where);
  (* Deterministic work-counter budgets (--perf-budgets). *)
  (match (budgets, str "engine" run, num "batch" run) with
  | Some budgets, Some engine, Some batch ->
      let key = Printf.sprintf "%s/%.0f" engine batch in
      (match mem key budgets with
      | Some (Json.Obj entries) ->
          List.iter
            (fun (counter, budget) ->
              match (Json.get_num budget, Option.bind (mem "metrics" run) (num counter)) with
              | Some b, Some actual ->
                  if actual > b then
                    err "%s: %s (%s): work counter %s = %.0f exceeds budget %.0f" file where key
                      counter actual b
              | Some _, None ->
                  err "%s: %s (%s): budgeted counter %s missing from run metrics" file where key
                    counter
              | None, _ -> err "%s: %s (%s): budget for %s is not a number" file where key counter)
            entries
      | Some _ -> err "%s: budgets entry %S is not an object" file key
      | None -> err "%s: %s: no budgets entry for %S" file where key)
  | Some _, _, None -> err "%s: %s: perf run missing \"batch\" (needed for budgets)" file where
  | _ -> ());
  (* The paper's budget: if the run reports DT messages, they must fit. *)
  (match (num "dt_messages" run, num "dt_message_budget" run) with
  | Some messages, Some budget ->
      if messages > budget then
        err "%s: %s (%s): dt_messages %.0f exceeds O(h log tau) budget %.0f" file where
          (Option.value ~default:"?" (str "engine" run))
          messages budget;
      (match mem "dt_budget_ok" run with
      | Some (Json.Bool ok) ->
          if ok <> (messages <= budget) then
            err "%s: %s: dt_budget_ok disagrees with the numbers" file where
      | _ -> err "%s: %s: dt_messages present but dt_budget_ok missing" file where)
  | Some _, None -> err "%s: %s: dt_messages without dt_message_budget" file where
  | None, _ -> ());
  (* Networked runs (bench `net`): the useful-message count must fit the
     same analytic budget unless the fault spec degraded links, the
     never-early invariant is unconditional, and the maturity ordinals of
     the faulty run must match the zero-fault reference. *)
  match (num "net_useful_messages" run, num "net_message_bound" run) with
  | Some useful, Some bound ->
      let degraded = Option.value ~default:0.0 (num "net_degraded_sites" run) in
      if useful > bound && degraded <= 0.0 then
        err "%s: %s (%s): net_useful_messages %.0f exceeds bound %.0f with no degraded sites"
          file where
          (Option.value ~default:"?" (str "net_spec_name" run))
          useful bound;
      (match mem "net_bound_ok" run with
      | Some (Json.Bool ok) ->
          if ok <> (degraded > 0.0 || useful <= bound) then
            err "%s: %s: net_bound_ok disagrees with the numbers" file where
      | _ -> err "%s: %s: net_useful_messages present but net_bound_ok missing" file where);
      (match mem "net_never_early" run with
      | Some (Json.Bool true) -> ()
      | Some (Json.Bool false) -> err "%s: %s: net_never_early is false" file where
      | _ -> err "%s: %s: net run missing net_never_early" file where);
      (match mem "net_ordinal_match" run with
      | Some (Json.Bool true) -> ()
      | Some (Json.Bool false) -> err "%s: %s: net_ordinal_match is false" file where
      | _ -> err "%s: %s: net run missing net_ordinal_match" file where);
      ignore (require_num ~file ~where "net_messages" run);
      ignore (require_num ~file ~where "net_retransmits" run);
      (match str "net_spec" run with
      | Some _ -> ()
      | None -> err "%s: %s: net run missing string \"net_spec\"" file where)
  | Some _, None -> err "%s: %s: net_useful_messages without net_message_bound" file where
  | None, _ -> ()

(* perf documents: batched-ingestion shape and verdicts. *)
let check_perf_doc ~file doc =
  (match Option.bind (mem "params" doc) (mem "batches") with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> err "%s: perf document missing non-empty params.batches" file);
  (match mem "micro" doc with
  | Some (Json.List rows) ->
      List.iteri
        (fun i row ->
          let where = Printf.sprintf "micro[%d]" i in
          (match str "name" row with
          | Some _ -> ()
          | None -> err "%s: %s: missing string \"name\"" file where);
          ignore (require_num ~file ~where "ns_per_element" row))
        rows
  | _ -> err "%s: perf document missing \"micro\" array" file);
  ignore (require_num ~file ~where:"document" "dt_speedup_1024_vs_1" doc);
  match mem "dt_counters_no_increase" doc with
  | Some (Json.Bool true) -> ()
  | Some (Json.Bool false) ->
      err "%s: dt_counters_no_increase is false — batching added protocol work" file
  | _ -> err "%s: perf document missing bool \"dt_counters_no_increase\"" file

(* Budgets file: { "scale": s, "seed": n, "budgets": { "engine/batch":
   { counter: max, ... }, ... } }. Scale and seed must match the perf
   document's params — counters are deterministic only per (scale, seed). *)
let load_budgets file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error msg -> err "%s" msg; None
  | contents -> (
      match Json.of_string contents with
      | exception Json.Parse_error msg -> err "%s: malformed JSON: %s" file msg; None
      | doc -> (
          match mem "budgets" doc with
          | Some (Json.Obj _ as b) -> Some (doc, b)
          | _ -> err "%s: budgets file missing \"budgets\" object" file; None))

let check_budget_params ~file ~budget_file budget_doc doc =
  List.iter
    (fun k ->
      match (num k budget_doc, Option.bind (mem "params" doc) (num k)) with
      | Some b, Some p when b <> p ->
          err "%s: params.%s = %g but %s budgets were generated at %s = %g — regenerate budgets"
            file k p budget_file k b
      | None, _ -> err "%s: budgets file missing number %S" budget_file k
      | _ -> ())
    [ "scale"; "seed" ]

let check_file ~budgets file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error msg -> err "%s" msg
  | contents -> (
      match Json.of_string contents with
      | exception Json.Parse_error msg -> err "%s: malformed JSON: %s" file msg
      | doc ->
          let figure =
            match str "figure" doc with
            | Some f -> f
            | None -> err "%s: missing string \"figure\"" file; ""
          in
          (match mem "params" doc with
          | Some (Json.Obj _) -> ()
          | _ -> err "%s: missing \"params\" object" file);
          let run_budgets =
            if figure <> "perf" then None
            else begin
              check_perf_doc ~file doc;
              match budgets with
              | Some (budget_file, (budget_doc, b)) ->
                  check_budget_params ~file ~budget_file budget_doc doc;
                  Some b
              | None -> None
            end
          in
          (match mem "runs" doc with
          | Some (Json.List []) -> err "%s: \"runs\" is empty" file
          | Some (Json.List runs) ->
              List.iteri (fun i run -> check_run ~file ~figure ?budgets:run_budgets i run) runs;
              Printf.printf "validate-bench: %s: %d runs ok%s\n" file (List.length runs)
                (if run_budgets <> None then " (budgets enforced)" else "")
          | _ -> err "%s: missing \"runs\" array" file))

let () =
  let budgets = ref None and files = ref [] in
  let rec parse = function
    | "--perf-budgets" :: path :: rest ->
        (match load_budgets path with
        | Some b -> budgets := Some (path, b)
        | None -> ());
        parse rest
    | [ "--perf-budgets" ] -> prerr_endline "validate-bench: --perf-budgets needs a FILE"; exit 2
    | f :: rest -> files := f :: !files; parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let files = List.rev !files in
  if files = [] then begin
    prerr_endline "usage: validate_bench [--perf-budgets FILE] BENCH_<fig>.json ...";
    exit 2
  end;
  List.iter (check_file ~budgets:!budgets) files;
  if !errors > 0 then begin
    Printf.eprintf "validate-bench: %d problem(s)\n" !errors;
    exit 1
  end
