(** The single registry of benchmark targets.

    Both sides of the bench pipeline consume this table: [bench/main.ml]
    builds its cmdliner command list (and the [all] sweep) from it, and
    [tools/validate_bench.ml] uses it to decide which figures exist,
    which must carry strictly-advancing traces, and how their
    work-counter budget files are keyed. Before this table existed the
    figure list was hardcoded in both places, so a new bench target
    could be added to the bench without the validator ever seeing its
    output — the registry makes that structurally impossible: the bench
    asserts at startup that its implementations and this table cover
    each other exactly, and the validator rejects any
    [BENCH_<figure>.json] whose figure it does not know. *)

type budget_keying =
  | No_budgets  (** figure carries no checked-in work-counter budgets *)
  | By_batch
      (** budget entries are keyed ["<engine>/<batch>"] — the batched
          ingestion sweep ([perf], [tools/perf_budgets.json]) *)
  | By_shards
      (** budget entries are keyed ["<engine>/k<shards>"] — the shard
          scaling sweep ([shard], [tools/shard_budgets.json]) *)
  | By_engine
      (** budget entries are keyed by the bare engine name — the
          approximate-tier sweep ([approx], [tools/approx_budgets.json]),
          one run per engine *)

type t = {
  name : string;  (** target name = cmdliner subcommand = JSON "figure" *)
  doc : string;  (** one-line description (cmdliner [~doc]) *)
  emits_json : bool;
      (** writes [BENCH_<name>.json] under [--json]; the only exception
          is [micro], whose Bechamel output has no stable JSON shape *)
  strict_trace : bool;
      (** every run's [trace[].elements] must strictly increase after
          the first point — the figures whose trajectories CI replots *)
  budget_keying : budget_keying;
}

val all : t list
(** Every target, in the order the default [all] sweep runs them. *)

val names : string list

val find : string -> t option

val drift_cell : budget:float -> actual:float -> string
(** The drift column of [diff_bench]'s delta table: [(actual - budget) /
    budget] as a signed percentage — except that zero-budget rows carry
    no relative drift and render as ["n/a"] (met exactly) or
    ["OVER (zero budget)"] instead of the [-nan%]/[+inf%] a naive
    division produces. *)
