(** Workload driver: runs any {!Rts_core.Engine.t} over a paper-style
    scenario (Section 8) and measures it.

    The driver pre-generates stream elements, queries and lifetimes in
    untimed batches, so the timed region contains (essentially) only engine
    operations; per-operation costs are measured over chunks of consecutive
    timestamps, exactly because single operations at this scale are far
    below timer resolution.

    Determinism: for a fixed config (including seed), the sequence of
    elements, registrations and terminations presented to the engine is
    identical for every (correct) engine — maturity is a pure function of
    the stream — so results of different engines are directly comparable
    and the test suite can diff their maturity traces verbatim. *)

open Rts_core

type mode =
  | Static  (** all queries registered before the stream (Scenario 1) *)
  | Stochastic of { p_ins : float; horizon : int }
      (** from timestamp 1 to [horizon], register a new query with
          probability [p_ins] per timestamp (Scenario 2, stochastic mode) *)
  | Fixed_load
      (** replace every matured/terminated query immediately, keeping the
          alive count constant (Scenario 2, fixed-load mode) *)

type config = {
  dim : int;
  seed : int;
  value_dist : Generator.value_distribution;
      (** element value distribution; [Uniform] is the paper's setup *)
  initial_queries : int;
  tau : int;  (** threshold given to every query, as in the paper *)
  unit_weights : bool;  (** counting RTS instead of weighted *)
  with_terminations : bool;
      (** draw the paper's p_del lifetimes (on by default in the paper) *)
  mode : mode;
  max_elements : int;
      (** hard cap on stream length; static scenarios also stop when no
          query is left alive *)
  chunk : int;  (** timestamps per timing batch (also trace resolution) *)
  batch : int;
      (** ingestion batch size. 1 (default) feeds elements one at a time
          through [Engine.process]; [b > 1] slices each chunk into
          [b]-element arrays (outside the timed region) and drives
          [Engine.feed_batch]. Registrations/terminations whose
          timestamps fall inside a batch window are applied at its
          leading edge; maturities are attributed to the batch-end
          timestamp in [maturity_log]. For static workloads (no control
          ops after the initial batch) the matured id multiset is
          unchanged — only timestamps coarsen to batch granularity. When
          control ops race elements inside a window, coarsening their
          interleaving legitimately changes outcomes (e.g. a query whose
          termination deadline falls inside the window no longer sees the
          window's earlier elements), so different batch sizes are
          different — individually valid — schedules; all engines agree
          verbatim on any given one. *)
}

val default : config
(** 1D, seed 42, 10_000 static queries, tau = 200_000 (the paper's tau/m
    ratio of 20), weighted, with terminations, max 400_000 elements,
    chunk 2048, batch 1. *)

type trace_point = {
  ops_done : int;  (** operations completed by the end of this chunk *)
  elements_done : int;
  alive : int;  (** alive queries at the end of this chunk *)
  avg_us : float;  (** mean wall-clock microseconds per operation *)
  metrics : Rts_obs.Metrics.snapshot;
      (** per-window delta of the engine's uniform metrics — captured
          {e outside} the timed region by {!run_traced}; empty under
          {!run} *)
}

type result = {
  engine_name : string;
  config : config;
  total_seconds : float;  (** timed engine work, all chunks *)
  elements : int;
  registered : int;  (** queries ever registered, initial batch included *)
  matured : int;
  terminated : int;
  ops : int;  (** elements + registrations + terminations + maturities *)
  trace : trace_point array;
  maturity_log : (int * int) list;
      (** (timestamp, query id) of every maturity, ascending timestamp —
          the ground truth used by the cross-engine equivalence tests *)
  final_metrics : Rts_obs.Metrics.snapshot;
      (** the engine's uniform metric totals at the end of the run
          (always captured — one snapshot, O(#metrics)) *)
}

val run : config -> (dim:int -> Engine.t) -> result
(** Run one scenario on a freshly made engine. The factory receives
    [config.dim]. *)

val run_traced : config -> (dim:int -> Engine.t) -> result
(** Like {!run}, but additionally snapshots the engine's metrics around
    every timing chunk (in the untimed bookkeeping region) and attaches
    the per-window {!Rts_obs.Metrics.diff} to each {!trace_point} — the
    cost trajectory behind [BENCH_*.json]. *)

val pp_result : Format.formatter -> result -> unit
(** One summary line: name, totals, mean per-op cost. *)
