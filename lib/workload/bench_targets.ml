type budget_keying = No_budgets | By_batch | By_shards | By_engine

type t = {
  name : string;
  doc : string;
  emits_json : bool;
  strict_trace : bool;
  budget_keying : budget_keying;
}

let t ?(emits_json = true) ?(strict_trace = false) ?(budget_keying = No_budgets) name doc =
  { name; doc; emits_json; strict_trace; budget_keying }

let all =
  [
    t "fig3" "Per-op cost over time, static scenario (Figures 3a/3b)";
    t "fig4" "Total time vs number of queries m (Figures 4a/4b)" ~strict_trace:true;
    t "fig5" "Total time vs threshold tau (Figures 5a/5b)";
    t "fig6" "Per-op cost over time, stochastic insertions (Figure 6)" ~strict_trace:true;
    t "fig7" "Total time vs insertion probability p_ins (Figure 7)";
    t "fig8" "Per-op cost over time, fixed-load insertions (Figure 8)";
    t "dims" "Dimensionality sweep d = 1..3 (Theorem 1 extension)";
    t "counting" "Counting RTS: the unweighted special case (Section 4)";
    t "robust" "Non-uniform element distributions (Zipf, clustered)";
    t "net" "Networked DT over faulty links: equivalence + message accounting";
    t "micro" "Bechamel steady-state per-element microbenchmark" ~emits_json:false;
    t "perf" "Batched ingestion vs element-at-a-time: wall clock + work counters"
      ~strict_trace:true ~budget_keying:By_batch;
    t "shard"
      "Sharded multi-domain ingestion: scaling curve k=1/2/4/8 + deterministic merge check"
      ~strict_trace:true ~budget_keying:By_shards;
    t "par"
      "Element-partitioned parallel ingestion: true scaling k=1/2/4/8 (refuses to emit JSON \
       on <2 cores)"
      ~strict_trace:true ~budget_keying:By_shards;
    t "ablation" "DT slack rounds vs eager signalling";
    t "approx"
      "Approximate tier: sketch memory + certified error vs exact + per-op latency \
       (crprecis/heavy), top-n search parity"
      ~budget_keying:By_engine;
  ]

let names = List.map (fun x -> x.name) all

let find name = List.find_opt (fun x -> x.name = name) all

(* Shared by diff_bench's drift table and its regression test: a zero
   budget admits no relative drift — 0/0 is "met exactly", anything else
   over a zero budget is infinitely over; neither is a percentage, so
   both render as text instead of the -nan%/+inf% a naive division
   prints for freshly-added all-zero budget rows. *)
let drift_cell ~budget ~actual =
  if budget = 0.0 then if actual = 0.0 then "n/a" else "OVER (zero budget)"
  else Printf.sprintf "%+.1f%%" ((actual -. budget) /. budget *. 100.0)
