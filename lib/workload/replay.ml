open Rts_core

type op =
  | Register of Types.query
  | Terminate of int
  | Element of Types.elem

let op_to_line = function
  | Register q -> "R," ^ Csv_io.query_to_line q
  | Terminate id -> Printf.sprintf "T,%d" id
  | Element e -> "E," ^ Csv_io.element_to_line e

let fail fmt = Printf.ksprintf (fun s -> raise (Csv_io.Parse_error s)) fmt

let parse_op ~dim ~line_no line =
  (* Tolerate foreign line endings and stray whitespace: a trace recorded
     on Windows arrives here with a trailing '\r' (input_line only strips
     the '\n'), and hand-edited traces often carry indentation. The field
     parsers already trim per-field; the op tag check must see a trimmed
     line too. *)
  let line = String.trim line in
  match String.index_opt line ',' with
  | Some i when i = 1 -> (
      let rest = String.sub line 2 (String.length line - 2) in
      match line.[0] with
      | 'R' -> Register (Csv_io.parse_query ~dim ~closed:false ~line_no rest)
      | 'T' -> (
          match int_of_string_opt (String.trim rest) with
          | Some id -> Terminate id
          | None -> fail "line %d: bad terminate id %S" line_no rest)
      | 'E' -> Element (Csv_io.parse_element ~dim ~line_no rest)
      | c -> fail "line %d: unknown op %C" line_no c)
  | _ -> fail "line %d: expected R,/T,/E, prefix" line_no

let recording ~sink (engine : Engine.t) =
  {
    engine with
    Engine.register =
      (fun q ->
        sink (Register q);
        engine.register q);
    register_batch =
      (fun qs ->
        List.iter (fun q -> sink (Register q)) qs;
        engine.register_batch qs);
    terminate =
      (fun id ->
        sink (Terminate id);
        engine.terminate id);
    process =
      (fun e ->
        sink (Element e);
        engine.process e);
    feed_batch =
      (fun elems ->
        (* Record the batch as its element ops (the trace format is a flat
           op stream); replaying the trace sequentially reproduces the same
           maturities because [feed_batch] is observably order-free. *)
        Array.iter (fun e -> sink (Element e)) elems;
        engine.feed_batch elems);
  }

let record_to_channel oc engine =
  recording ~sink:(fun op -> output_string oc (op_to_line op ^ "\n")) engine

type outcome = {
  elements : int;
  registered : int;
  terminated : int;
  maturities : (int * int) list;
}

exception Engine_error of { op_index : int; line_no : int; exn : exn }

let () =
  Printexc.register_printer (function
    | Engine_error { op_index; line_no; exn } ->
        Some
          (Printf.sprintf "replay failed at op %d (line %d): %s" op_index line_no
             (Printexc.to_string exn))
    | _ -> None)

(* Engine errors surfacing mid-replay (duplicate id, Not_found terminate,
   invalid query...) are wrapped with their position: a recovery report —
   or a human staring at a 10M-line trace — needs the op ordinal, not a
   bare [Not_found]. Parse errors already carry their line and pass
   through untouched. *)
let wrap_engine_errors ~op_index ~line_no f =
  try f () with
  | (Csv_io.Parse_error _ | Engine_error _) as e -> raise e
  | exn -> raise (Engine_error { op_index; line_no; exn })

let apply (engine : Engine.t) (elements, registered, terminated, maturities) op =
  match op with
  | Register q ->
      engine.register q;
      (elements, registered + 1, terminated, maturities)
  | Terminate id ->
      engine.terminate id;
      (elements, registered, terminated + 1, maturities)
  | Element e ->
      let matured = engine.process e in
      let ordinal = elements + 1 in
      ( ordinal,
        registered,
        terminated,
        List.fold_left (fun acc id -> (ordinal, id) :: acc) maturities matured )

let finish (elements, registered, terminated, maturities) =
  { elements; registered; terminated; maturities = List.rev maturities }

let replay ~dim engine ic =
  let state = ref (0, 0, 0, []) in
  let line_no = ref 0 in
  let op_index = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       if not (Csv_io.is_skippable line) then begin
         let op = parse_op ~dim ~line_no:!line_no line in
         incr op_index;
         state :=
           wrap_engine_errors ~op_index:!op_index ~line_no:!line_no (fun () ->
               apply engine !state op)
       end
     done
   with End_of_file -> ());
  finish !state

let replay_ops engine ops =
  let state = ref (0, 0, 0, []) in
  List.iteri
    (fun i op ->
      let op_index = i + 1 in
      state :=
        wrap_engine_errors ~op_index ~line_no:op_index (fun () -> apply engine !state op))
    ops;
  finish !state
