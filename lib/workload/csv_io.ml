open Rts_core

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let is_skippable line =
  let line = String.trim line in
  line = "" || line.[0] = '#'

let fields line = String.split_on_char ',' line |> List.map String.trim

(* Bound fields admit +-inf (open-ended rectangles) but never NaN: a NaN
   bound would slip past [Types.validate_query]'s [<] comparisons and
   poison every engine's tree ordering downstream. *)
let float_field ~line_no name s =
  match s with
  | "-inf" -> neg_infinity
  | "inf" | "+inf" -> infinity
  | _ -> (
      match float_of_string_opt s with
      | Some x when Float.is_nan x -> fail "line %d: %s is NaN: %S" line_no name s
      | Some x -> x
      | None -> fail "line %d: bad %s: %S" line_no name s)

(* Element coordinates must be finite: an infinite coordinate is not a
   point in the data space, and NaN breaks rectangle containment. *)
let finite_field ~line_no name s =
  match float_of_string_opt s with
  | Some x when Float.is_finite x -> x
  | Some _ -> fail "line %d: %s is not finite: %S" line_no name s
  | None -> fail "line %d: bad %s: %S" line_no name s

let int_field ~line_no name s =
  try int_of_string s with Failure _ -> fail "line %d: bad %s: %S" line_no name s

let parse_query ~dim ~closed ~line_no line =
  match fields line with
  | id :: threshold :: bounds when List.length bounds = 2 * dim ->
      let id = int_field ~line_no "id" id in
      let threshold = int_field ~line_no "threshold" threshold in
      let arr = Array.of_list bounds in
      let pairs =
        Array.init dim (fun k ->
            ( float_field ~line_no "lower bound" arr.(2 * k),
              float_field ~line_no "upper bound" arr.((2 * k) + 1) ))
      in
      let rect =
        try if closed then Types.rect_closed pairs else Types.rect_make pairs
        with Invalid_argument msg -> fail "line %d: %s" line_no msg
      in
      { Types.id; rect; threshold }
  | id :: threshold :: bounds ->
      ignore id;
      ignore threshold;
      fail "line %d: expected %d bounds for dimension %d, got %d" line_no (2 * dim) dim
        (List.length bounds)
  | _ -> fail "line %d: expected id,threshold,bounds..." line_no

let parse_element ~dim ~line_no line =
  let fs = fields line in
  let n = List.length fs in
  if n <> dim && n <> dim + 1 then
    fail "line %d: expected %d coordinates [+ weight], got %d fields" line_no dim n;
  let arr = Array.of_list fs in
  let value = Array.init dim (fun k -> finite_field ~line_no "coordinate" arr.(k)) in
  let weight = if n = dim + 1 then int_field ~line_no "weight" arr.(dim) else 1 in
  if weight < 1 then fail "line %d: weight < 1" line_no;
  { Types.value; weight }

(* Shortest decimal string that round-trips to exactly [x]. The old "%g"
   kept only 6 significant digits, so record->replay of generated
   workloads (coordinates on [0, 1e5] with ~17 significant digits) was
   NOT bit-identical, despite Replay's documented guarantee. "%.15g"
   suffices for most values and keeps human-friendly output ("0.1", not
   "0.1000000000000000056"); 16 then 17 digits cover the rest ("%.17g"
   round-trips every finite double by IEEE-754). *)
let float_str x =
  if x = infinity then "inf"
  else if x = neg_infinity then "-inf"
  else
    let s15 = Printf.sprintf "%.15g" x in
    if float_of_string s15 = x then s15
    else
      let s16 = Printf.sprintf "%.16g" x in
      if float_of_string s16 = x then s16 else Printf.sprintf "%.17g" x

let query_to_line (q : Types.query) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "%d,%d" q.id q.threshold);
  Array.iteri
    (fun k lo ->
      Buffer.add_string buf (Printf.sprintf ",%s,%s" (float_str lo) (float_str q.rect.hi.(k))))
    q.rect.lo;
  Buffer.contents buf

let element_to_line (e : Types.elem) =
  let buf = Buffer.create 32 in
  Array.iteri
    (fun k x ->
      if k > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (float_str x))
    e.value;
  Buffer.add_string buf (Printf.sprintf ",%d" e.weight);
  Buffer.contents buf

let read_queries ~dim ~closed ic =
  let acc = ref [] in
  let line_no = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       if not (is_skippable line) then
         acc := parse_query ~dim ~closed ~line_no:!line_no line :: !acc
     done
   with End_of_file -> ());
  List.rev !acc

let fold_elements ~dim f init ic =
  let acc = ref init in
  let line_no = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       if not (is_skippable line) then
         acc := f ~elt:(parse_element ~dim ~line_no:!line_no line) ~line_no:!line_no !acc
     done
   with End_of_file -> ());
  !acc
