(** Plain-text interchange format for streams and query sheets.

    Used by the [rts-cli] tool and handy for piping workloads between
    processes. Lines are comma-separated; blank lines and lines starting
    with ['#'] are ignored. Infinite bounds are spelled [-inf] / [inf]
    (or [+inf]).

    - query line:   [id,threshold,lo1,hi1[,lo2,hi2,...]]
    - element line: [v1[,v2,...][,weight]]   (weight defaults to 1)

    Robustness: every field is trimmed of surrounding whitespace, so
    CRLF line endings (files produced on Windows and read through
    [input_line], which strips only the ['\n']) and trailing whitespace
    parse identically to clean Unix input — asserted by regression tests
    with ["\r\n"] fixtures. *)

open Rts_core

exception Parse_error of string
(** Raised with a human-readable message naming the offending line. *)

val is_skippable : string -> bool
(** Blank or comment line. *)

val parse_query : dim:int -> closed:bool -> line_no:int -> string -> Types.query
(** Parse one query line. With [closed], upper bounds are inclusive
    (infinitesimal trick); otherwise rectangles are half-open as written. *)

val parse_element : dim:int -> line_no:int -> string -> Types.elem
(** Parse one element line. Coordinates must be finite (NaN and +-inf are
    {!Parse_error}s naming the line); bounds in {!parse_query} admit
    [-inf]/[inf] but reject NaN. *)

val query_to_line : Types.query -> string
(** Inverse of {!parse_query} with [closed:false] (bounds emitted
    verbatim). Floats are printed with shortest round-trip precision, so
    [parse_query (query_to_line q) = q] holds bit-exactly — the
    foundation of {!Replay}'s bit-identical record/replay guarantee. *)

val element_to_line : Types.elem -> string
(** Inverse of {!parse_element}; same bit-exact round-trip guarantee. *)

val read_queries : dim:int -> closed:bool -> in_channel -> Types.query list
(** Read a whole query sheet; skips comments; raises {!Parse_error}. *)

val fold_elements : dim:int -> (elt:Types.elem -> line_no:int -> 'a -> 'a) -> 'a -> in_channel -> 'a
(** Stream elements from a channel without materializing them. *)
