open Rts_core
module Prng = Rts_util.Prng
module Timer = Rts_util.Timer
module Handle_heap = Rts_structures.Handle_heap
module Metrics = Rts_obs.Metrics

type mode =
  | Static
  | Stochastic of { p_ins : float; horizon : int }
  | Fixed_load

type config = {
  dim : int;
  seed : int;
  value_dist : Generator.value_distribution;
  initial_queries : int;
  tau : int;
  unit_weights : bool;
  with_terminations : bool;
  mode : mode;
  max_elements : int;
  chunk : int;
  batch : int;
      (* elements per ingestion batch inside a timed chunk: 1 = feed
         element-at-a-time through [process]; > 1 = slice the chunk into
         [batch]-sized arrays (untimed) and drive [feed_batch].
         Registrations/terminations due inside a batch window are applied
         at the batch boundary, before the batch; maturities are
         attributed to the batch-end timestamp. Static workloads mature
         the same id multiset at every batch size; dynamic workloads
         coarsen control-op interleaving, so each batch size is its own
         (valid) schedule — see scenario.mli. *)
}

let default =
  {
    dim = 1;
    seed = 42;
    value_dist = Generator.Uniform;
    initial_queries = 10_000;
    tau = 200_000;
    unit_weights = false;
    with_terminations = true;
    mode = Static;
    max_elements = 400_000;
    chunk = 2048;
    batch = 1;
  }

type trace_point = {
  ops_done : int;
  elements_done : int;
  alive : int;
  avg_us : float;
  metrics : Metrics.snapshot;
}

type result = {
  engine_name : string;
  config : config;
  total_seconds : float;
  elements : int;
  registered : int;
  matured : int;
  terminated : int;
  ops : int;
  trace : trace_point array;
  maturity_log : (int * int) list;
  final_metrics : Metrics.snapshot;
}

(* Mutable driver state shared by all modes. *)
type driver = {
  cfg : config;
  gen : Generator.t;
  engine : Engine.t;
  alive : (int, unit) Hashtbl.t; (* driver's own view, for termination checks *)
  deadlines : (int * int) Handle_heap.t; (* (timestamp, qid) min-heap *)
  mutable next_id : int;
  (* Pre-generated (query, lifetime) pairs; refilled between timed chunks. *)
  mutable query_buffer : (Types.query * int) list;
  mutable registered : int;
  mutable matured : int;
  mutable terminated : int;
  mutable ops : int;
  mutable elements : int;
  mutable maturities : (int * int) list;
}

let fresh_query d =
  match d.query_buffer with
  | (q, life) :: rest ->
      d.query_buffer <- rest;
      (q, life)
  | [] ->
      (* Buffer underrun (rare): generate inline, accepting the timing
         contamination for this one query. *)
      let q = Generator.query d.gen ~id:d.next_id ~threshold:d.cfg.tau in
      d.next_id <- d.next_id + 1;
      let life =
        if d.cfg.with_terminations then Generator.lifetime d.gen ~tau:d.cfg.tau else max_int
      in
      (q, life)

let refill_query_buffer d want =
  let have = List.length d.query_buffer in
  if have < want then begin
    let extra = ref [] in
    for _ = 1 to want - have do
      let q = Generator.query d.gen ~id:d.next_id ~threshold:d.cfg.tau in
      d.next_id <- d.next_id + 1;
      let life =
        if d.cfg.with_terminations then Generator.lifetime d.gen ~tau:d.cfg.tau else max_int
      in
      extra := (q, life) :: !extra
    done;
    d.query_buffer <- d.query_buffer @ List.rev !extra
  end

let register_query d now =
  let q, life = fresh_query d in
  d.engine.register q;
  Hashtbl.replace d.alive q.id ();
  if life < max_int then
    ignore (Handle_heap.push d.deadlines (now + life, q.id));
  d.registered <- d.registered + 1;
  d.ops <- d.ops + 1

let run_terminations d now on_departure =
  let rec loop () =
    match Handle_heap.peek d.deadlines with
    | Some (ts, qid) when ts <= now ->
        ignore (Handle_heap.pop d.deadlines);
        if Hashtbl.mem d.alive qid then begin
          d.engine.terminate qid;
          Hashtbl.remove d.alive qid;
          d.terminated <- d.terminated + 1;
          d.ops <- d.ops + 1;
          on_departure ()
        end;
        loop ()
    | _ -> ()
  in
  loop ()

let run_gen ~capture_metrics cfg factory =
  if cfg.dim < 1 then invalid_arg "Scenario.run: dim < 1";
  if cfg.chunk < 1 then invalid_arg "Scenario.run: chunk < 1";
  if cfg.batch < 1 then invalid_arg "Scenario.run: batch < 1";
  let gen =
    Generator.create ~value_dist:cfg.value_dist ~dim:cfg.dim ~seed:cfg.seed
      ~unit_weights:cfg.unit_weights ()
  in
  let engine = factory ~dim:cfg.dim in
  let d =
    {
      cfg;
      gen;
      engine;
      alive = Hashtbl.create (2 * max 16 cfg.initial_queries);
      deadlines = Handle_heap.create ~leq:(fun (a, _) (b, _) -> a <= b) ();
      next_id = 0;
      query_buffer = [];
      registered = 0;
      matured = 0;
      terminated = 0;
      ops = 0;
      elements = 0;
      maturities = [];
    }
  in
  (* Initial registration batch (untimed generation, timed registration —
     the paper's Figures 3/6 include structure-construction cost in the
     per-operation trace, amortized over the m initial registrations). *)
  refill_query_buffer d cfg.initial_queries;
  let initial = List.filteri (fun i _ -> i < cfg.initial_queries) d.query_buffer in
  d.query_buffer <- [];
  let trace = ref [] in
  (* Per-window metric deltas (untimed): snapshot the engine's uniform
     metrics outside the timed region and diff against the previous
     window, so each trace point carries exactly the counter activity of
     its chunk. *)
  let last_snap = ref (if capture_metrics then engine.metrics () else Metrics.empty) in
  let metrics_delta () =
    if capture_metrics then begin
      let now_snap = engine.metrics () in
      let delta = Metrics.diff ~before:!last_snap ~after:now_snap in
      last_snap := now_snap;
      delta
    end
    else Metrics.empty
  in
  let t0 = Timer.now () in
  (* One-shot batch registration: for the DT engine this is the paper's
     "construct the structure at the beginning of the stream". *)
  engine.register_batch (List.map fst initial);
  let init_seconds = Timer.now () -. t0 in
  List.iter
    (fun ((q : Types.query), life) ->
      Hashtbl.replace d.alive q.id ();
      if life < max_int then ignore (Handle_heap.push d.deadlines (life, q.id));
      d.registered <- d.registered + 1;
      d.ops <- d.ops + 1)
    initial;
  if cfg.initial_queries > 0 then
    trace :=
      [
        {
          ops_done = d.ops;
          elements_done = 0;
          alive = Hashtbl.length d.alive;
          avg_us = init_seconds *. 1e6 /. float_of_int (max 1 d.ops);
          metrics = metrics_delta ();
        };
      ];
  let total = ref init_seconds in
  let now = ref 0 in
  let continue = ref true in
  while !continue && !now < cfg.max_elements do
    let chunk_len = min cfg.chunk (cfg.max_elements - !now) in
    (* ---- untimed pre-generation ---- *)
    let elems = Array.init chunk_len (fun _ -> Generator.element gen) in
    let insertions =
      match cfg.mode with
      | Stochastic { p_ins; horizon } ->
          let rng = Prng.create ~seed:(cfg.seed lxor (!now * 2654435761)) in
          Array.init chunk_len (fun i -> !now + i + 1 <= horizon && Prng.bernoulli rng p_ins)
      | Static | Fixed_load -> Array.make chunk_len false
    in
    let expected_inserts = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 insertions in
    (* Fixed-load replacements are bounded by possible departures; keep a
       generous cushion so the timed loop rarely generates inline. *)
    let cushion =
      match cfg.mode with
      | Fixed_load -> chunk_len / 4
      | Static | Stochastic _ -> 0
    in
    refill_query_buffer d (expected_inserts + cushion + 8);
    (* Batched mode: slice the chunk into [batch]-sized element arrays
       outside the timed region, so the timed loop measures ingestion, not
       slicing. *)
    let slices =
      if cfg.batch <= 1 then [||]
      else begin
        let nb = (chunk_len + cfg.batch - 1) / cfg.batch in
        Array.init nb (fun bi ->
            let off = bi * cfg.batch in
            Array.sub elems off (min cfg.batch (chunk_len - off)))
      end
    in
    let ops_before = d.ops in
    (* ---- timed chunk ---- *)
    let t0 = Timer.now () in
    if cfg.batch <= 1 then
      for i = 0 to chunk_len - 1 do
        let ts = !now + i + 1 in
        if insertions.(i) then register_query d ts;
        let departures = ref 0 in
        if cfg.with_terminations then
          run_terminations d ts (fun () -> incr departures);
        let matured = d.engine.process elems.(i) in
        d.elements <- d.elements + 1;
        d.ops <- d.ops + 1;
        List.iter
          (fun qid ->
            Hashtbl.remove d.alive qid;
            d.matured <- d.matured + 1;
            d.ops <- d.ops + 1;
            d.maturities <- (ts, qid) :: d.maturities;
            incr departures)
          matured;
        match cfg.mode with
        | Fixed_load ->
            for _ = 1 to !departures do
              register_query d ts
            done
        | Static | Stochastic _ -> ()
      done
    else
      Array.iteri
        (fun bi sub ->
          let off = bi * cfg.batch in
          let blen = Array.length sub in
          let ts_end = !now + off + blen in
          let departures = ref 0 in
          (* Registrations/terminations due inside the batch window land at
             its leading edge, in timestamp order — the batch is "elements
             arriving at one instant", and control ops sort before it. *)
          for k = 0 to blen - 1 do
            let ts = !now + off + k + 1 in
            if insertions.(off + k) then register_query d ts;
            if cfg.with_terminations then
              run_terminations d ts (fun () -> incr departures)
          done;
          let matured = d.engine.feed_batch sub in
          d.elements <- d.elements + blen;
          d.ops <- d.ops + blen;
          List.iter
            (fun qid ->
              Hashtbl.remove d.alive qid;
              d.matured <- d.matured + 1;
              d.ops <- d.ops + 1;
              d.maturities <- (ts_end, qid) :: d.maturities;
              incr departures)
            matured;
          match cfg.mode with
          | Fixed_load ->
              for _ = 1 to !departures do
                register_query d ts_end
              done
          | Static | Stochastic _ -> ())
        slices;
    let dt = Timer.now () -. t0 in
    (* ---- bookkeeping ---- *)
    total := !total +. dt;
    now := !now + chunk_len;
    let chunk_ops = d.ops - ops_before in
    trace :=
      {
        ops_done = d.ops;
        elements_done = d.elements;
        alive = Hashtbl.length d.alive;
        avg_us = dt *. 1e6 /. float_of_int (max 1 chunk_ops);
        metrics = metrics_delta ();
      }
      :: !trace;
    if cfg.mode = Static && Hashtbl.length d.alive = 0 then continue := false
  done;
  {
    engine_name = engine.name;
    config = cfg;
    total_seconds = !total;
    elements = d.elements;
    registered = d.registered;
    matured = d.matured;
    terminated = d.terminated;
    ops = d.ops;
    trace = Array.of_list (List.rev !trace);
    maturity_log = List.rev d.maturities;
    final_metrics = engine.metrics ();
  }

let run cfg factory = run_gen ~capture_metrics:false cfg factory

let run_traced cfg factory = run_gen ~capture_metrics:true cfg factory

let pp_result ppf r =
  Format.fprintf ppf
    "@[<h>%-14s d=%d m0=%d tau=%d: %.3fs total, %d elements, %d registered, %d matured, %d \
     terminated, %.3f us/op@]"
    r.engine_name r.config.dim r.config.initial_queries r.config.tau r.total_seconds r.elements
    r.registered r.matured r.terminated
    (r.total_seconds *. 1e6 /. float_of_int (max 1 r.ops))
