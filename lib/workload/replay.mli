(** Recordable, replayable operation traces.

    An RTS execution is fully determined by its operation stream —
    REGISTER, TERMINATE, and element arrivals in order. This module
    serializes that stream to a line format and replays it against any
    engine, so a workload can be captured once (e.g. from the synthetic
    {!Scenario} driver, or from production) and re-run bit-identically
    against different engines, builds, or implementations. The replayed
    maturity log is the equivalence evidence.

    Line format (CSV, comments/blanks skipped):
    {v
    R,<id>,<threshold>,<lo1>,<hi1>[,...]    register
    T,<id>                                  terminate
    E,<v1>[,...],<weight>                   element
    v} *)

open Rts_core

type op =
  | Register of Types.query
  | Terminate of int
  | Element of Types.elem

val op_to_line : op -> string

val parse_op : dim:int -> line_no:int -> string -> op
(** Raises {!Csv_io.Parse_error} on malformed input. Surrounding
    whitespace — including the trailing ['\r'] of a CRLF-terminated
    trace — is ignored. *)

exception Engine_error of { op_index : int; line_no : int; exn : exn }
(** An engine error (duplicate id, [Not_found] terminate, ...) that
    surfaced while applying op number [op_index] (1-based, counting all
    ops) read from line [line_no]. Raised by {!replay} and
    {!replay_ops} ([line_no = op_index] there) instead of the bare
    [exn], so recovery reports and operators get the position. A
    printer is registered with [Printexc]. *)

val recording : sink:(op -> unit) -> Engine.t -> Engine.t
(** [recording ~sink engine] behaves exactly like [engine] but reports
    every operation to [sink] before applying it (batch registrations are
    recorded as individual [Register] ops). *)

val record_to_channel : out_channel -> Engine.t -> Engine.t
(** [recording] with a sink that writes {!op_to_line} lines. *)

type outcome = {
  elements : int;
  registered : int;
  terminated : int;
  maturities : (int * int) list;
      (** (element ordinal, query id), ascending — element ordinal counts
          [Element] ops, starting at 1 *)
}

val replay : dim:int -> Engine.t -> in_channel -> outcome
(** Feed a recorded trace to an engine. Raises {!Csv_io.Parse_error} on
    malformed input; engine errors (duplicate ids etc.) are re-raised as
    {!Engine_error} carrying the op ordinal and line number. *)

val replay_ops : Engine.t -> op list -> outcome
(** In-memory variant of {!replay}; {!Engine_error.line_no} equals the
    op index. *)
