module Prng = Rts_util.Prng

exception Crash of string

type plan = {
  crash_at_append : int;
  torn : bool;
  bit_flip : bool;
  crash_at_atomic : int option;
  short_at_append : int option;
  enospc_at_append : int option;
}

let no_crash =
  {
    crash_at_append = max_int;
    torn = false;
    bit_flip = false;
    crash_at_atomic = None;
    short_at_append = None;
    enospc_at_append = None;
  }

(* Wrapped dirs are tracked so tests can ask whether a given wrapper has
   crashed; physical equality, test-scale lifetimes. *)
let registry : (Io.dir * bool ref) list ref = ref []

let crashed dir =
  match List.find_opt (fun (d, _) -> d == dir) !registry with
  | Some (_, flag) -> !flag
  | None -> false

let flip_one_bit ~rng s =
  let b = Bytes.of_string s in
  let bit = Prng.int rng (Bytes.length b * 8) in
  let i = bit / 8 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
  Bytes.to_string b

let wrap ~rng plan (dir : Io.dir) =
  let dead = ref false in
  let appends = ref 0 in
  let atomics = ref 0 in
  let alive () = if !dead then raise (Crash "simulated machine is down") in
  let die reason =
    dead := true;
    raise (Crash reason)
  in
  let open_append name =
    alive ();
    let under = dir.Io.open_append name in
    let pending = Buffer.create 256 in
    let flush_pending () =
      if Buffer.length pending > 0 then begin
        under.Io.append (Buffer.contents pending);
        Buffer.clear pending
      end
    in
    let append s =
      alive ();
      incr appends;
      (match plan.enospc_at_append with
      | Some n when !appends >= n ->
          (* Disk full: sticky from the n-th append on — every further
             append fails, but the machine is up and the existing bytes
             are intact (reads, sync, close all still work). *)
          raise Io.No_space
      | _ -> ());
      if Some !appends = plan.short_at_append then
        (* Silent short write: only a strict prefix of this record
           reaches the pending buffer, and nobody is told. If this was
           the final record the WAL scanner drops the partial frame as a
           torn tail; if more records follow they land after the
           garbage and are unreachable to any future scan — exactly why
           real systems read back or checksum what they wrote. *)
        Buffer.add_string pending (String.sub s 0 (Prng.int rng (String.length s)))
      else if !appends = plan.crash_at_append then begin
        (* The kernel may have flushed any prefix of the unsynced bytes
           on its own — survivors are a PRNG-chosen prefix of
           (pending ++ torn part of the in-flight record). *)
        let in_flight =
          if plan.torn then String.sub s 0 (Prng.int rng (String.length s + 1)) else ""
        in
        let pool = Buffer.contents pending ^ in_flight in
        Buffer.clear pending;
        let keep =
          if pool = "" then "" else String.sub pool 0 (Prng.int rng (String.length pool + 1))
        in
        let keep = if plan.bit_flip && keep <> "" then flip_one_bit ~rng keep else keep in
        if keep <> "" then under.Io.append keep;
        under.Io.sync ();
        under.Io.close ();
        die (Printf.sprintf "crash at append %d" !appends)
      end
      else Buffer.add_string pending s
    in
    let sync () =
      alive ();
      flush_pending ();
      under.Io.sync ()
    in
    let close () =
      (* A clean close means the process exited; the OS flushes its
         caches eventually, so pending bytes survive. *)
      alive ();
      flush_pending ();
      under.Io.close ()
    in
    { Io.append; sync; close }
  in
  let write_atomic name contents =
    alive ();
    incr atomics;
    match plan.crash_at_atomic with
    | Some n when !atomics = n ->
        (* Atomicity of temp+rename: the new file either fully landed
           (crash after rename) or is entirely absent (crash before) —
           a coin decides which world we died in. *)
        if Prng.bool rng then dir.Io.write_atomic name contents;
        die (Printf.sprintf "crash at atomic write %d (%s)" !atomics name)
    | _ -> dir.Io.write_atomic name contents
  in
  let guard1 f x =
    alive ();
    f x
  in
  let guard2 f x y =
    alive ();
    f x y
  in
  let wrapped =
    {
      Io.open_append;
      read_file = guard1 dir.Io.read_file;
      write_atomic;
      list_files =
        (fun () ->
          alive ();
          dir.Io.list_files ());
      remove_file = guard1 dir.Io.remove_file;
      truncate_file = guard2 dir.Io.truncate_file;
    }
  in
  registry := (wrapped, dead) :: !registry;
  wrapped

let flip_random_bit ~rng dir name =
  match dir.Io.read_file name with
  | None | Some "" -> false
  | Some data ->
      dir.Io.write_atomic name (flip_one_bit ~rng data);
      true

let truncate_random ~rng dir name =
  match dir.Io.read_file name with
  | None | Some "" -> false
  | Some data ->
      dir.Io.truncate_file name (Prng.int rng (String.length data));
      true
