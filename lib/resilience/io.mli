(** Storage abstraction under the durability layer.

    {!Wal}, {!Checkpoint} and {!Recovery} never touch the filesystem
    directly — they speak to a {!dir}, a record of closures over a flat
    namespace of files. Two implementations ship:

    - {!fs_dir}: a real directory (POSIX, [Unix.fsync]-backed, atomic
      temp-then-rename publication);
    - {!mem_dir}: an in-process store with identical semantics, used by
      the test suite so thousands of crash/recovery cycles run without
      disk traffic.

    The indirection is also the fault-injection seam: {!Fault.wrap}
    interposes on a [dir] to model crashes, torn writes and bit flips
    deterministically — same injector over both backends. *)

exception No_space
(** The storage is out of space: an [append] or [write_atomic] could not
    take the new bytes. The canonical surfacing of [ENOSPC] across both
    backends — {!Fault.wrap} raises it from its [enospc_at_append]
    injection point, and callers (the {!Durable} wrapper, the serving
    layer's supervisor) treat it as a storage fault: the op that hit it
    was {e not} made durable, the file's existing contents are intact. *)

type file = {
  append : string -> unit;  (** Append bytes at the end of the file. *)
  sync : unit -> unit;  (** Make all appended bytes durable ([fsync]). *)
  close : unit -> unit;
}
(** An append-only handle. Appended data is only guaranteed durable
    after [sync] returns — the contract the WAL's fsync batching and the
    fault injector's lost-tail model are built on. *)

type dir = {
  open_append : string -> file;
      (** Open (creating if absent) a file for appending. *)
  read_file : string -> string option;
      (** Whole contents, [None] if the file does not exist. *)
  write_atomic : string -> string -> unit;
      (** Publish a complete file atomically: readers (and crash
          recovery) see either the previous version, nothing, or the
          full new contents — never a prefix. Implemented as
          write-temp, fsync, rename. *)
  list_files : unit -> string list;
      (** Plain files in the directory, unordered. *)
  remove_file : string -> unit;  (** No-op if absent. *)
  truncate_file : string -> int -> unit;
      (** [truncate_file name len] drops everything past byte [len] —
          how a WAL writer amputates a torn tail before appending. *)
}

val fs_dir : string -> dir
(** [fs_dir path] roots a [dir] at [path], creating the directory (and
    parents) if needed. File names must be simple names (no ['/']);
    [Invalid_argument] otherwise. I/O failures raise [Sys_error] or
    [Unix.Unix_error]. *)

val mem_dir : unit -> dir
(** A fresh, empty in-memory store. [sync] is a no-op (everything
    "durable" immediately); pair with {!Fault.wrap} to model the gap
    between appended and durable. *)

val fsync_dir : string -> unit
(** Fsync the directory at [path] so a just-renamed entry survives a
    crash. A missing path, or a platform that cannot fsync a directory
    fd (see {!fatal_fsync_error}), is a silent no-op; real I/O failures
    raise ([ENOSPC] as {!No_space}). *)

val fatal_fsync_error : Unix.error -> bool
(** Classifies an [fsync] errno on a {e directory} fd. [false] means the
    platform refused the operation ([EINVAL]/[EBADF]/[ENOSYS]/
    [EOPNOTSUPP]/permission-shaped refusals) — harmless, the rename is
    merely not forced to stable storage and the crash window widens.
    [true] means a real I/O failure ([EIO], [ENOSPC], quota): the
    publication may be lost, so {!fs_dir}'s atomic write re-raises it
    ([ENOSPC] as {!No_space}) instead of silently reporting success.
    Unknown errnos classify as fatal — losing durability silently is the
    one failure this layer must never paper over. *)
