(** Make any {!Rts_core.Engine.t} crash-recoverable.

    [wrap ~dir engine] returns an engine with identical maturity
    behaviour that additionally:

    - appends every op (REGISTER / TERMINATE / element) to the
      checksummed {!Wal} in [dir] — {e after} applying it, so an op the
      engine rejects (duplicate id, bad query) never pollutes the log
      and can never poison a future recovery;
    - every [checkpoint_every] ops, fsyncs the WAL and atomically
      publishes a {!Checkpoint} generation built from the engine's
      [alive_snapshot], then prunes generations beyond [keep];
    - folds the durability counters ([wal_records_total],
      [wal_fsyncs_total], [checkpoints_total]) — and, when a
      {!Recovery.report} is supplied, the [recovery_*] metrics — into
      the engine's [metrics] snapshot.

    Crash contract: if the process dies at any moment, [Recovery.recover
    ~dir] yields an engine equal to this one as of some durable prefix
    of the applied ops (all synced ops; never more than applied), and
    its report names that position so the producer resumes exactly
    there. The fault-injection suite asserts the resulting maturity log
    is bit-identical to an uninterrupted run for {e every} crash point.

    Restarting over a non-empty [dir]: recover first and wrap the
    recovered engine ([wrap ~report]) — wrapping a {e fresh} engine over
    an old WAL would diverge from the log. The WAL writer continues
    after the intact prefix (amputating any torn tail); checkpoint
    generations continue above the highest present. *)

open Rts_core

type config = {
  fsync_every : int;  (** WAL fsync batching (default 1 — every op). *)
  checkpoint_every : int;  (** Ops between checkpoints (default 1024). *)
  keep : int;  (** Checkpoint generations retained (default 2). *)
}

val default : config

type handle
(** Owner's control surface for the wrapped engine's durability state. *)

val wrap :
  ?config:config ->
  ?report:Recovery.report ->
  ?wal_epoch:int ->
  ?segment_records:int ->
  dir:Io.dir ->
  Engine.t ->
  Engine.t * handle
(** See module doc. [report] (from the {!Recovery.recover} that produced
    [engine]) both positions the op/element ordinals and seeds the
    [recovery_*] metrics — mandatory when the WAL chain has been pruned
    ([base > 0]), since the element count is then only derivable from a
    checkpoint. [wal_epoch] stamps the writer incarnation's epoch into
    the log (raises {!Wal.Fenced} if the chain carries a higher one);
    [segment_records] > 0 enables WAL rotation at that segment size.
    Raises [Invalid_argument] on a nonsensical config. *)

val sync : handle -> unit
(** Force the WAL durable now, regardless of batching. *)

val checkpoint_now : handle -> unit
(** Publish a checkpoint immediately (also syncs the WAL first). *)

val rotate_wal : handle -> unit
(** Seal the active WAL records into a cold segment now. *)

val prune_wal : handle -> below:int -> int
(** Reclaim cold WAL segments wholly at or below [min below
    last-checkpoint-ops] — the caller supplies its external floor (e.g.
    minimum replica ack) and the checkpoint floor is applied on top, so
    recovery can always replay the chain from the newest checkpoint.
    Returns the number of segments removed. *)

val wal_rotations : handle -> int
(** Cold segments sealed by this handle's writer. *)

val close : handle -> unit
(** Sync and release the WAL file handle. Further ops on the wrapped
    engine raise [Invalid_argument]. *)
