(** Crash recovery: newest valid checkpoint + WAL suffix replay.

    Algorithm:

    + enumerate checkpoint generations, newest first; load the first
      one that validates ({!Checkpoint.Corrupt} generations are skipped
      and counted — a damaged newest checkpoint costs replay time, not
      data);
    + build a fresh engine and register every checkpointed query with
      its threshold reduced by the consumed weight (the paper's
      global-rebuilding threshold adjustment — continuation behaviour
      is bit-identical, see {!Rts_core.Dt_engine.restore});
    + scan the WAL, drop its torn tail, and replay the records past the
      checkpoint's op ordinal.

    The returned {!report} says exactly how far durability reached:
    [ops_total] ops (of which [elements_total] elements) survive; the
    producer should resume feeding from op [ops_total + 1]. The
    replayed maturities are reported with {e global} element ordinals
    so they concatenate seamlessly with the continuation — the
    crash-equivalence property the fault-injection suite asserts. *)

open Rts_core

type report = {
  checkpoint_gen : int option;  (** Generation restored from, if any. *)
  generations_skipped : int;  (** Corrupt generations stepped over. *)
  checkpoint_ops : int;  (** Op ordinal covered by that checkpoint. *)
  checkpoint_elements : int;  (** Element ordinal covered by it. *)
  wal_records : int;  (** Valid records found in the WAL. *)
  ops_replayed : int;  (** WAL records applied past the checkpoint. *)
  bytes_discarded : int;  (** Torn-tail bytes dropped from the WAL. *)
  ops_total : int;  (** Durable op count — resume after this. *)
  elements_total : int;  (** Durable element count. *)
  maturities : (int * int) list;
      (** [(global element ordinal, query id)] fired during replay. *)
}

val recover :
  dim:int -> make:(dim:int -> Engine.t) -> dir:Io.dir -> unit -> Engine.t * report
(** [recover ~dim ~make ~dir ()] rebuilds an engine from the durable
    state in [dir]. An empty directory yields a fresh engine and a
    zero report. Raises [Invalid_argument] if a valid checkpoint's
    dimensionality differs from [dim]; {!Rts_workload.Replay.Engine_error}
    (with absolute op ordinals) if the WAL suffix is inconsistent with
    the checkpoint — which, given per-record CRCs, indicates a bug or
    tampering rather than a crash. *)

val metrics : report -> Rts_obs.Metrics.snapshot
(** The recovery counters ([recovery_ops_replayed],
    [recovery_bytes_discarded], [recovery_generations_skipped],
    [recovery_checkpoint_gen] gauge) as a snapshot, ready to merge into
    an engine's [--stats] output. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable multi-line report (printed by [rts-cli recover]). *)
