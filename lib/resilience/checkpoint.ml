module Crc32 = Rts_util.Crc32
open Rts_core
open Rts_workload

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type meta = { gen : int; dim : int; ops : int; elements : int; count : int }

let prefix = "checkpoint-"
let suffix = ".ckpt"
let filename gen = Printf.sprintf "%s%010d%s" prefix gen suffix

let parse_filename name =
  let plen = String.length prefix and slen = String.length suffix in
  let n = String.length name in
  if n = plen + 10 + slen
     && String.sub name 0 plen = prefix
     && String.sub name (n - slen) slen = suffix
  then int_of_string_opt (String.sub name plen 10)
  else None

let entry_to_line ((q : Types.query), consumed) =
  Printf.sprintf "%d,%s\n" consumed (Csv_io.query_to_line q)

(* The CRC covers the header fields as well as the payload (computed
   over "RTSCKPT,1,gen,dim,ops,elements,count\n" ^ payload), so a bit
   flip anywhere in the file — including the op/element ordinals the
   recovery position depends on — is detected. *)
let write ~dir ~gen ~dim ~ops ~elements entries =
  if gen < 0 then invalid_arg "Checkpoint.write: negative generation";
  let payload = Buffer.create 4096 in
  List.iter (fun e -> Buffer.add_string payload (entry_to_line e)) entries;
  let payload = Buffer.contents payload in
  let header_prefix =
    Printf.sprintf "RTSCKPT,1,%d,%d,%d,%d,%d" gen dim ops elements (List.length entries)
  in
  let crc = Crc32.string (header_prefix ^ "\n" ^ payload) in
  let header = Printf.sprintf "%s,%s\n" header_prefix (Crc32.to_hex crc) in
  let name = filename gen in
  dir.Io.write_atomic name (header ^ payload);
  name

let parse_header name line =
  match String.split_on_char ',' line with
  | [ "RTSCKPT"; "1"; gen; dim; ops; elements; count; crc ] -> (
      match
        ( int_of_string_opt gen,
          int_of_string_opt dim,
          int_of_string_opt ops,
          int_of_string_opt elements,
          int_of_string_opt count,
          Crc32.of_hex crc )
      with
      | Some gen, Some dim, Some ops, Some elements, Some count, Some crc
        when gen >= 0 && dim >= 1 && ops >= 0 && elements >= 0 && count >= 0 && elements <= ops
        ->
          ({ gen; dim; ops; elements; count }, crc)
      | _ -> corrupt "%s: malformed header fields" name)
  | "RTSCKPT" :: v :: _ when v <> "1" -> corrupt "%s: unsupported version %s" name v
  | _ -> corrupt "%s: bad magic/header" name

let parse_entry ~dim ~name ~line_no line =
  match String.index_opt line ',' with
  | None -> corrupt "%s: line %d: expected consumed,query" name line_no
  | Some c -> (
      match int_of_string_opt (String.trim (String.sub line 0 c)) with
      | None -> corrupt "%s: line %d: bad consumed weight" name line_no
      | Some consumed -> (
          let rest = String.sub line (c + 1) (String.length line - c - 1) in
          match Csv_io.parse_query ~dim ~closed:false ~line_no rest with
          | q ->
              if consumed < 0 || consumed >= q.Types.threshold then
                corrupt "%s: line %d: consumed %d out of [0, %d)" name line_no consumed
                  q.Types.threshold;
              (q, consumed)
          | exception Csv_io.Parse_error msg -> corrupt "%s: %s" name msg))

let load ~dir name =
  match dir.Io.read_file name with
  | None -> corrupt "%s: no such checkpoint" name
  | Some data -> (
      match String.index_opt data '\n' with
      | None -> corrupt "%s: truncated header" name
      | Some hdr_end ->
          let header_line = String.sub data 0 hdr_end in
          let meta, crc = parse_header name header_line in
          let header_prefix =
            (* the CRC is the last comma-separated header field *)
            match String.rindex_opt header_line ',' with
            | Some i -> String.sub header_line 0 i
            | None -> corrupt "%s: bad magic/header" name
          in
          let body_pos = hdr_end + 1 in
          let body_len = String.length data - body_pos in
          let computed =
            Crc32.substring data ~pos:body_pos ~len:body_len
              ~crc:(Crc32.string (header_prefix ^ "\n"))
          in
          if computed <> crc then corrupt "%s: checksum mismatch" name;
          let lines =
            if body_len = 0 then []
            else
              (* every entry line is '\n'-terminated by construction *)
              let body = String.sub data body_pos body_len in
              if body.[body_len - 1] <> '\n' then corrupt "%s: unterminated payload" name
              else String.split_on_char '\n' (String.sub body 0 (body_len - 1))
          in
          if List.length lines <> meta.count then
            corrupt "%s: entry count %d does not match header %d" name (List.length lines)
              meta.count;
          let entries =
            List.mapi (fun i l -> parse_entry ~dim:meta.dim ~name ~line_no:(i + 2) l) lines
          in
          let seen = Hashtbl.create (List.length entries) in
          List.iter
            (fun ((q : Types.query), _) ->
              if Hashtbl.mem seen q.id then corrupt "%s: duplicate query id %d" name q.id;
              Hashtbl.replace seen q.id ())
            entries;
          (meta, entries))

let generations ~dir =
  dir.Io.list_files ()
  |> List.filter_map (fun name ->
         match parse_filename name with Some gen -> Some (gen, name) | None -> None)
  |> List.sort (fun (a, _) (b, _) -> compare b a)

let prune ~dir ~keep =
  if keep < 1 then invalid_arg "Checkpoint.prune: keep < 1";
  let gens = generations ~dir in
  List.iteri (fun i (_, name) -> if i >= keep then dir.Io.remove_file name) gens;
  (* sweep leftovers of interrupted atomic writes *)
  List.iter
    (fun name ->
      if Filename.check_suffix name ".tmp" && String.length name >= String.length prefix
         && String.sub name 0 (String.length prefix) = prefix
      then dir.Io.remove_file name)
    (dir.Io.list_files ())
