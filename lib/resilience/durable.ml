open Rts_core
open Rts_workload
module Metrics = Rts_obs.Metrics

type config = { fsync_every : int; checkpoint_every : int; keep : int }

let default = { fsync_every = 1; checkpoint_every = 1024; keep = 2 }

type handle = {
  dir : Io.dir;
  cfg : config;
  wal : Wal.writer;
  inner : Engine.t;
  mutable ops : int;  (** durable-stream op ordinal of the last applied op *)
  mutable elements : int;
  mutable last_checkpoint_ops : int;
  mutable next_gen : int;
  mutable checkpoints : int;
}

let count_elements ops =
  List.fold_left (fun n op -> match op with Replay.Element _ -> n + 1 | _ -> n) 0 ops

let checkpoint_now h =
  Wal.sync h.wal;
  ignore
    (Checkpoint.write ~dir:h.dir ~gen:h.next_gen ~dim:h.inner.Engine.dim ~ops:h.ops
       ~elements:h.elements
       (h.inner.Engine.alive_snapshot ()));
  h.checkpoints <- h.checkpoints + 1;
  h.next_gen <- h.next_gen + 1;
  h.last_checkpoint_ops <- h.ops;
  Checkpoint.prune ~dir:h.dir ~keep:h.cfg.keep

let maybe_checkpoint h =
  if h.ops - h.last_checkpoint_ops >= h.cfg.checkpoint_every then checkpoint_now h

(* Apply-then-log: the engine validates first, so a rejected op raises
   before anything reaches the WAL. Crash between apply and append
   merely shortens the durable prefix by one op — the producer re-feeds
   it after recovery, which is the same at-least-once window any
   crash already opens. *)
let log_no_checkpoint h op =
  Wal.append h.wal op;
  h.ops <- h.ops + 1;
  match op with Replay.Element _ -> h.elements <- h.elements + 1 | _ -> ()

let log h op =
  log_no_checkpoint h op;
  maybe_checkpoint h

let durability_metrics h =
  Metrics.of_assoc
    [
      ("wal_records_total", Metrics.Counter (Wal.appended h.wal));
      ("wal_fsyncs_total", Metrics.Counter (Wal.fsyncs h.wal));
      ("checkpoints_total", Metrics.Counter h.checkpoints);
      ("checkpoint_last_gen", Metrics.Gauge (float_of_int (h.next_gen - 1)));
    ]

let wrap ?(config = default) ?report ?wal_epoch ?(segment_records = 0) ~dir (engine : Engine.t)
    =
  if config.fsync_every < 1 then invalid_arg "Durable.wrap: fsync_every < 1";
  if config.checkpoint_every < 1 then invalid_arg "Durable.wrap: checkpoint_every < 1";
  if config.keep < 1 then invalid_arg "Durable.wrap: keep < 1";
  let wal =
    Wal.writer ~fsync_every:config.fsync_every ?epoch:wal_epoch ~segment_records
      ~dim:engine.Engine.dim ~dir ()
  in
  let ops, elements =
    match report with
    | Some (r : Recovery.report) -> (r.ops_total, r.elements_total)
    | None ->
        (* Without a recovery report the element count can only come
           from the records actually present, so a pruned chain (base >
           0) must go through {!Recovery.recover} instead. *)
        let existing = Wal.existing wal in
        (existing.Wal.base + existing.Wal.records, count_elements existing.Wal.ops)
  in
  let next_gen =
    match Checkpoint.generations ~dir with (g, _) :: _ -> g + 1 | [] -> 0
  in
  let h =
    {
      dir;
      cfg = config;
      wal;
      inner = engine;
      ops;
      elements;
      last_checkpoint_ops = ops;
      next_gen;
      checkpoints = 0;
    }
  in
  let recovery_metrics =
    match report with Some r -> Recovery.metrics r | None -> Metrics.empty
  in
  let wrapped =
    {
      engine with
      Engine.register =
        (fun q ->
          engine.Engine.register q;
          log h (Replay.Register q));
      register_batch =
        (fun qs ->
          engine.Engine.register_batch qs;
          (* Log the whole batch before considering a checkpoint: a
             checkpoint taken mid-batch would describe engine state the
             op count does not cover, and replaying the rest of the
             batch over it would re-register live ids. *)
          List.iter (fun q -> log_no_checkpoint h (Replay.Register q)) qs;
          maybe_checkpoint h);
      terminate =
        (fun id ->
          engine.Engine.terminate id;
          log h (Replay.Terminate id));
      process =
        (fun e ->
          let matured = engine.Engine.process e in
          log h (Replay.Element e);
          matured);
      feed_batch =
        (fun elems ->
          let matured = engine.Engine.feed_batch elems in
          (* Same apply-then-log discipline as [register_batch]: append
             every element before considering a checkpoint, so no
             checkpoint describes a half-applied batch. A crash inside
             the append loop widens the at-least-once window to the whole
             batch — the producer re-feeds from its last acknowledged
             batch boundary, exactly as it re-feeds a single element. *)
          Array.iter (fun e -> log_no_checkpoint h (Replay.Element e)) elems;
          maybe_checkpoint h;
          matured);
      metrics =
        (fun () ->
          Metrics.merge
            (Metrics.merge (engine.Engine.metrics ()) (durability_metrics h))
            recovery_metrics);
    }
  in
  (wrapped, h)

let sync h = Wal.sync h.wal

let close h = Wal.close h.wal

let rotate_wal h = Wal.rotate h.wal

let prune_wal h ~below =
  (* Never reclaim past what the newest durable checkpoint covers:
     recovery replays the chain from the checkpoint floor, so a segment
     above it is still load-bearing whatever the caller's floor says. *)
  Wal.prune ~dir:h.dir ~below:(min below h.last_checkpoint_ops) ()

let wal_rotations h = Wal.rotations h.wal
