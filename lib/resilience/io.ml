exception No_space

type file = {
  append : string -> unit;
  sync : unit -> unit;
  close : unit -> unit;
}

type dir = {
  open_append : string -> file;
  read_file : string -> string option;
  write_atomic : string -> string -> unit;
  list_files : unit -> string list;
  remove_file : string -> unit;
  truncate_file : string -> int -> unit;
}

(* ---------------- filesystem backend ---------------- *)

let check_name name =
  if name = "" || String.contains name '/' then
    invalid_arg (Printf.sprintf "Io: bad file name %S (must be a simple name)" name)

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_all fd s =
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    pos := !pos + Unix.write_substring fd s !pos (n - !pos)
  done

(* Persist the rename itself. Not every platform allows fsync on a
   directory fd — that class of refusal only widens the crash window and
   is ignored. A real I/O failure (EIO, ENOSPC, disk gone) means the
   rename may not be on stable storage: swallowing it would let a caller
   believe a checkpoint was published durably when it was not. *)
let fatal_fsync_error = function
  | Unix.EINVAL | Unix.EBADF | Unix.ENOSYS | Unix.EOPNOTSUPP | Unix.EROFS
  | Unix.EACCES | Unix.EPERM | Unix.ENOTDIR | Unix.ENOENT ->
      false
  | Unix.EIO | Unix.ENOSPC -> true
  (* Quota errors (EDQUOT) have no constructor in [Unix.error]; they
     arrive as [EUNKNOWNERR] and classify fatal here, as does anything
     else unrecognised. *)
  | _ -> true

let fsync_dir path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd -> (
      match Unix.fsync fd with
      | () -> Unix.close fd
      | exception Unix.Unix_error (e, _, _) when not (fatal_fsync_error e) -> Unix.close fd
      | exception err ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          (match err with
          | Unix.Unix_error (Unix.ENOSPC, _, _) -> raise No_space
          | _ -> raise err))

let fs_dir root =
  mkdir_p root;
  let path name =
    check_name name;
    Filename.concat root name
  in
  let open_append name =
    let fd = Unix.openfile (path name) [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
    {
      append = (fun s -> write_all fd s);
      sync = (fun () -> Unix.fsync fd);
      close = (fun () -> Unix.close fd);
    }
  in
  let read_file name =
    let p = path name in
    if not (Sys.file_exists p) then None
    else begin
      let ic = open_in_bin p in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))
    end
  in
  let write_atomic name contents =
    let tmp = path (name ^ ".tmp") in
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        write_all fd contents;
        Unix.fsync fd);
    Sys.rename tmp (path name);
    fsync_dir root
  in
  let list_files () =
    Sys.readdir root |> Array.to_list
    |> List.filter (fun n -> not (Sys.is_directory (Filename.concat root n)))
  in
  let remove_file name =
    let p = path name in
    if Sys.file_exists p then Sys.remove p
  in
  let truncate_file name len =
    let p = path name in
    if Sys.file_exists p then Unix.truncate p len
  in
  { open_append; read_file; write_atomic; list_files; remove_file; truncate_file }

(* ---------------- in-memory backend ---------------- *)

let mem_dir () =
  let store : (string, Buffer.t) Hashtbl.t = Hashtbl.create 8 in
  let buffer name =
    check_name name;
    match Hashtbl.find_opt store name with
    | Some b -> b
    | None ->
        let b = Buffer.create 256 in
        Hashtbl.replace store name b;
        b
  in
  let open_append name =
    let b = buffer name in
    { append = (fun s -> Buffer.add_string b s); sync = (fun () -> ()); close = (fun () -> ()) }
  in
  let read_file name =
    check_name name;
    Option.map Buffer.contents (Hashtbl.find_opt store name)
  in
  let write_atomic name contents =
    let b = buffer name in
    Buffer.clear b;
    Buffer.add_string b contents
  in
  let list_files () = Hashtbl.fold (fun name _ acc -> name :: acc) store [] in
  let remove_file name =
    check_name name;
    Hashtbl.remove store name
  in
  let truncate_file name len =
    check_name name;
    match Hashtbl.find_opt store name with
    | Some b when len < Buffer.length b -> Buffer.truncate b (max 0 len)
    | _ -> ()
  in
  { open_append; read_file; write_atomic; list_files; remove_file; truncate_file }
