(** Deterministic, PRNG-seeded fault injection at the {!Io} seam.

    {!wrap} interposes on a {!Io.dir} and models the failure physics a
    durability layer must survive:

    - {b crash-at-op-k}: the [crash_at_append]-th append call raises
      {!Crash}; every later operation through the wrapper also raises —
      the process is "dead". What survives on the underlying dir is
      exactly what a kernel would have persisted;
    - {b lost unsynced tail}: appended-but-unsynced bytes are held in a
      pending buffer and only reach the underlying dir on [sync]. At
      crash time a {!Rts_util.Prng}-chosen {e prefix} of the pending
      bytes (plus, with [torn], a prefix of the in-flight record)
      survives — so the WAL tail can end mid-record;
    - {b bit flips}: with [bit_flip], one PRNG-chosen bit of the
      surviving unsynced tail is inverted — a {e corrupt} (not merely
      truncated) tail;
    - {b crash-at-checkpoint}: the [crash_at_atomic]-th
      [write_atomic] call crashes either just before or just after the
      rename (PRNG coin) — the checkpoint either never existed or fully
      landed, never half of it;
    - {b silent short write} ([short_at_append]): one record is
      partially persisted with no error raised — the scanner's CRC
      framing is what catches it later;
    - {b disk full} ([enospc_at_append]): appends start raising
      {!Io.No_space} while the machine stays alive — the load-shedding
      (rather than crash-recovery) failure axis.

    Everything is driven by the caller's [Prng.t], so a failing
    crash/recovery case replays exactly from its seed.

    Helpers {!flip_random_bit} and {!truncate_random} damage files at
    rest (media corruption, short reads) to exercise checksum
    validation and generation fallback. *)

exception Crash of string
(** The simulated machine died. Test harnesses catch this, then run
    {!Recovery.recover} against the underlying (surviving) dir. *)

type plan = {
  crash_at_append : int;
      (** 1-based count of {!Io.file.append} calls (across all files
          opened through the wrapper) at which to crash; the WAL issues
          one append per record, so this is crash-at-op-k. [max_int]
          (see {!no_crash}) never fires. *)
  torn : bool;
      (** Allow a prefix of the in-flight record to survive the crash. *)
  bit_flip : bool;
      (** Corrupt one bit of the surviving unsynced tail (if any). *)
  crash_at_atomic : int option;
      (** 1-based count of [write_atomic] calls at which to crash
          (before or after publication, PRNG coin). *)
  short_at_append : int option;
      (** 1-based append count at which to inject a {e silent short
          write}: only a strict PRNG-chosen prefix of that record is
          retained, no error is raised, and the process runs on. A
          short-written {e final} record is indistinguishable from a
          torn tail and is amputated by the WAL scanner; a short write
          {e mid}-log makes every later record unreachable (appended
          after garbage) — the scan's trusted prefix ends before it
          either way. *)
  enospc_at_append : int option;
      (** 1-based append count from which the store is {e full}: that
          append and every later one raise {!Io.No_space} (sticky, the
          disk does not un-fill itself); reads, [sync] and [close] keep
          working and no previously appended byte is harmed. Unlike
          {!Crash} the machine stays up — the caller decides whether to
          shed load or fail over to a fresh store. *)
}

val no_crash : plan
(** [{ crash_at_append = max_int; torn = false; bit_flip = false;
      crash_at_atomic = None; short_at_append = None;
      enospc_at_append = None }] — a transparent wrapper. *)

val wrap : rng:Rts_util.Prng.t -> plan -> Io.dir -> Io.dir
(** Interpose the fault model on [dir]. The wrapper is single-use: once
    crashed it stays crashed. *)

val crashed : Io.dir -> bool
(** Whether a {!wrap}ped dir has crashed ([false] for foreign dirs). *)

val flip_random_bit : rng:Rts_util.Prng.t -> Io.dir -> string -> bool
(** Invert one random bit of an existing file (media corruption).
    [false] if the file is missing or empty. *)

val truncate_random : rng:Rts_util.Prng.t -> Io.dir -> string -> bool
(** Keep only a random proper prefix of an existing file (short read /
    lost pages). [false] if missing or empty. *)
