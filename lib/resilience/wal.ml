module Crc32 = Rts_util.Crc32
open Rts_workload

let default_file = "wal.log"

exception Fenced of { requested : int; found : int }

(* A single frame is at most a few hundred bytes (one op line); cap the
   length field so a corrupt header cannot make the scanner treat the
   rest of the file as one giant pending record. *)
let max_payload = 1_000_000

let frame op =
  let payload = Replay.op_to_line op in
  Printf.sprintf "%d,%s,%s\n" (String.length payload) (Crc32.to_hex (Crc32.string payload)) payload

type scanned = {
  ops : Replay.op list;
  records : int;
  base : int;
  epoch : int;
  valid_bytes : int;
  bytes_discarded : int;
}

let empty_scanned = { ops = []; records = 0; base = 0; epoch = 0; valid_bytes = 0; bytes_discarded = 0 }

let is_digit = function '0' .. '9' -> true | _ -> false

(* Parse one record starting at [pos]; [Some (op, next_pos)] or [None]
   if the bytes from [pos] are not an intact record. *)
let parse_record ~dim ~record_no data pos =
  let n = String.length data in
  match String.index_from_opt data pos ',' with
  | None -> None
  | Some c1 ->
      let len_digits = c1 - pos in
      if len_digits < 1 || len_digits > 7 then None
      else if not (String.for_all is_digit (String.sub data pos len_digits)) then None
      else
        let len = int_of_string (String.sub data pos len_digits) in
        if len > max_payload then None
        else
          let crc_end = c1 + 9 in
          if crc_end >= n || data.[crc_end] <> ',' then None
          else
            match Crc32.of_hex (String.sub data (c1 + 1) 8) with
            | None -> None
            | Some crc ->
                let pstart = crc_end + 1 in
                (* payload plus its '\n' terminator must fit *)
                if pstart + len >= n then None
                else if data.[pstart + len] <> '\n' then None
                else
                  let payload = String.sub data pstart len in
                  if Crc32.string payload <> crc then None
                  else (
                    match Replay.parse_op ~dim ~line_no:record_no payload with
                    | op -> Some (op, pstart + len + 1)
                    | exception Csv_io.Parse_error _ -> None)

let scan_range ~dim data ~pos:start =
  let n = String.length data in
  let ops = ref [] and records = ref 0 in
  let pos = ref start and stop = ref false in
  while (not !stop) && !pos < n do
    match parse_record ~dim ~record_no:(!records + 1) data !pos with
    | Some (op, next) ->
        ops := op :: !ops;
        incr records;
        pos := next
    | None -> stop := true
  done;
  (List.rev !ops, !records, !pos - start, n - !pos)

let scan_string ~dim data =
  let ops, records, valid_bytes, bytes_discarded = scan_range ~dim data ~pos:0 in
  { ops; records; base = 0; epoch = 0; valid_bytes; bytes_discarded }

(* ---------------- segment headers ---------------- *)

(* Active file header (first line, present once the log has rotated or
   carries a nonzero epoch):

     RTSWACT,1,<epoch>,<base>,<crc32-hex8>\n

   Cold segment header:

     RTSWSEG,1,<epoch>,<base>,<count>,<crc32-hex8>\n

   In both, the CRC covers the header line up to (not including) the
   final comma. [base] is the number of ops that precede the file's
   first record in the global op sequence; a file with base [b] holds
   records for ops [b+1], [b+2], ... A header-less active file is the
   legacy (and common single-node) form: base 0, epoch 0, so every log
   written before segmentation existed still scans identically. *)

let active_magic = "RTSWACT"
let segment_magic = "RTSWSEG"

let with_crc body = Printf.sprintf "%s,%s\n" body (Crc32.to_hex (Crc32.string body))
let active_header ~epoch ~base = with_crc (Printf.sprintf "%s,1,%d,%d" active_magic epoch base)

let segment_header ~epoch ~base ~count =
  with_crc (Printf.sprintf "%s,1,%d,%d,%d" segment_magic epoch base count)

(* Split a header line [body,crc] and verify the CRC; returns the
   comma-separated body fields. *)
let parse_header_line line =
  match String.rindex_opt line ',' with
  | None -> None
  | Some c ->
      let body = String.sub line 0 c in
      let crc = String.sub line (c + 1) (String.length line - c - 1) in
      if String.length crc <> 8 then None
      else (
        match Crc32.of_hex crc with
        | Some v when Crc32.string body = v -> Some (String.split_on_char ',' body)
        | _ -> None)

let int_field s = if s <> "" && String.for_all is_digit s then Some (int_of_string s) else None

(* [Some (epoch, base, header_len)] if [data] begins with a valid active
   header; [None] for the legacy header-less form. A file that starts
   with the magic but fails validation is reported as [Some] with
   [header_len = -1]: the base is unknowable, so nothing in the file can
   be trusted. *)
let parse_active_header data =
  let starts_with_magic =
    String.length data >= String.length active_magic
    && String.sub data 0 (String.length active_magic) = active_magic
  in
  if not starts_with_magic then None
  else
    let invalid = Some (0, 0, -1) in
    match String.index_opt data '\n' with
    | None -> invalid
    | Some nl -> (
        match parse_header_line (String.sub data 0 nl) with
        | Some [ magic; "1"; e; b ] when magic = active_magic -> (
            match (int_field e, int_field b) with
            | Some epoch, Some base -> Some (epoch, base, nl + 1)
            | _ -> invalid)
        | _ -> invalid)

(* Scan the active file image: header (any form) plus records. *)
let scan_active ~dim data =
  match parse_active_header data with
  | None ->
      let ops, records, valid, disc = scan_range ~dim data ~pos:0 in
      (0, 0, ops, records, valid, disc)
  | Some (_, _, -1) -> (0, 0, [], 0, 0, String.length data)
  | Some (epoch, base, hlen) ->
      let ops, records, valid, disc = scan_range ~dim data ~pos:hlen in
      (epoch, base, ops, records, hlen + valid, disc)

let scan_segment_string ~dim data =
  match String.index_opt data '\n' with
  | None -> None
  | Some nl -> (
      match parse_header_line (String.sub data 0 nl) with
      | Some [ magic; "1"; e; b; c ] when magic = segment_magic -> (
          match (int_field e, int_field b, int_field c) with
          | Some epoch, Some base, Some count ->
              let ops, records, _, disc = scan_range ~dim data ~pos:(nl + 1) in
              (* A cold segment is published atomically: anything short
                 of exactly [count] intact records means it is damaged
                 and cannot be trusted as a link in the chain. *)
              if records = count && disc = 0 then Some (epoch, base, count, ops) else None
          | _ -> None)
      | _ -> None)

(* ---------------- segment naming ---------------- *)

let stem_of file = match Filename.remove_extension file with "" -> file | s -> s
let segment_name ?(file = default_file) base = Printf.sprintf "%s-%010d.seg" (stem_of file) base

let segment_base_of_name ?(file = default_file) name =
  let prefix = stem_of file ^ "-" and suffix = ".seg" in
  let pn = String.length prefix and sn = String.length suffix in
  let n = String.length name in
  if n = pn + 10 + sn && String.sub name 0 pn = prefix && String.sub name (n - sn) sn = suffix
  then int_field (String.sub name pn 10)
  else None

type segment = { seg_file : string; seg_base : int; seg_count : int; seg_epoch : int }

let segments ~dir ?(file = default_file) () =
  dir.Io.list_files ()
  |> List.filter_map (fun name ->
         match segment_base_of_name ~file name with
         | None -> None
         | Some base -> (
             match dir.Io.read_file name with
             | None -> None
             | Some data -> (
                 match String.index_opt data '\n' with
                 | None -> None
                 | Some nl -> (
                     match parse_header_line (String.sub data 0 nl) with
                     | Some [ magic; "1"; e; b; c ] when magic = segment_magic -> (
                         match (int_field e, int_field b, int_field c) with
                         | Some epoch, Some b', Some count when b' = base ->
                             Some { seg_file = name; seg_base = base; seg_count = count; seg_epoch = epoch }
                         | _ -> None)
                     | _ -> None))))
  |> List.sort (fun a b -> compare a.seg_base b.seg_base)

(* ---------------- chain scan ---------------- *)

type chain = { c_base : int; c_end : int; c_ops_rev : Replay.op list }

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

(* Fold the cold segments, lowest base first, into the longest
   contiguous chain ending at the newest segment; a damaged or missing
   link restarts the chain after it — corruption never rewrites history,
   it only lifts the floor below which records are unavailable. Returns
   the chain and the highest epoch seen across valid segments. *)
let cold_chain ~dim ~dir ~file =
  let epoch_max = ref 0 in
  let chain =
    List.fold_left
      (fun chain name ->
        match Option.bind (dir.Io.read_file name) (scan_segment_string ~dim) with
        | None -> None
        | Some (epoch, base, count, ops) -> (
            epoch_max := max !epoch_max epoch;
            let fresh = { c_base = base; c_end = base + count; c_ops_rev = List.rev ops } in
            match chain with
            | None -> Some fresh
            | Some c ->
                if base = c.c_end then
                  Some { c with c_end = base + count; c_ops_rev = List.rev_append ops c.c_ops_rev }
                else Some fresh))
      None
      (dir.Io.list_files ()
      |> List.filter (fun n -> segment_base_of_name ~file n <> None)
      |> List.sort compare)
  in
  (chain, !epoch_max)

let scan ~dim ~dir ?(file = default_file) () =
  let chain, seg_epoch = cold_chain ~dim ~dir ~file in
  let epoch_max = ref seg_epoch in
  match dir.Io.read_file file with
  | None -> (
      match chain with
      | None -> empty_scanned
      | Some c ->
          {
            ops = List.rev c.c_ops_rev;
            records = c.c_end - c.c_base;
            base = c.c_base;
            epoch = !epoch_max;
            valid_bytes = 0;
            bytes_discarded = 0;
          })
  | Some data -> (
      let aepoch, abase, aops, arecords, valid_bytes, bytes_discarded = scan_active ~dim data in
      epoch_max := max !epoch_max aepoch;
      match chain with
      | None ->
          {
            ops = aops;
            records = arecords;
            base = abase;
            epoch = !epoch_max;
            valid_bytes;
            bytes_discarded;
          }
      | Some c when abase > c.c_end ->
          (* A gap between the cold chain and the active file: the
             active file is where appends land, so it wins. *)
          {
            ops = aops;
            records = arecords;
            base = abase;
            epoch = !epoch_max;
            valid_bytes;
            bytes_discarded;
          }
      | Some c ->
          (* Overlap is the crash window between publishing a cold
             segment and rewriting the active file: the cold copy of the
             shared records is authoritative, the active duplicates are
             skipped. *)
          let skip = c.c_end - abase in
          let tail = drop skip aops in
          let taken = max 0 (arecords - skip) in
          {
            ops = List.rev_append c.c_ops_rev tail;
            records = c.c_end - c.c_base + taken;
            base = c.c_base;
            epoch = !epoch_max;
            valid_bytes;
            bytes_discarded;
          })

(* ---------------- writer ---------------- *)

type writer = {
  dir : Io.dir;
  dim : int;
  name : string;
  existing : scanned;
  fsync_every : int;
  segment_records : int;
  epoch : int;
  mutable file : Io.file;
  mutable active_base : int;
  mutable active_records : int;
  mutable appended : int;
  mutable since_sync : int;
  mutable fsyncs : int;
  mutable rotations : int;
  mutable closed : bool;
}

let rewrite_active dir name ~epoch ~base ops =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (active_header ~epoch ~base);
  List.iter (fun op -> Buffer.add_string buf (frame op)) ops;
  dir.Io.write_atomic name (Buffer.contents buf)

let writer ?(fsync_every = 1) ?(file = default_file) ?epoch ?(segment_records = 0) ~dim ~dir () =
  if fsync_every < 1 then invalid_arg "Wal.writer: fsync_every < 1";
  if segment_records < 0 then invalid_arg "Wal.writer: segment_records < 0";
  let existing = scan ~dim ~dir ~file () in
  let epoch =
    match epoch with
    | None -> existing.epoch
    | Some e ->
        if e < existing.epoch then raise (Fenced { requested = e; found = existing.epoch });
        e
  in
  let cold, _ = cold_chain ~dim ~dir ~file in
  let cold_end = match cold with Some c -> c.c_end | None -> 0 in
  let active_base, active_records =
    match dir.Io.read_file file with
    | None ->
        let base = existing.base + existing.records in
        if epoch > 0 || base > 0 then rewrite_active dir file ~epoch ~base [];
        (base, 0)
    | Some data -> (
        let aepoch, abase, aops, arecords, valid_bytes, bytes_discarded = scan_active ~dim data in
        (* Records already sealed into cold segments supersede any copy
           still sitting in the active file (the rotation crash
           window). *)
        let overlap = cold_end > abase in
        let cold_end = max cold_end abase in
        match parse_active_header data with
        | Some (_, _, -1) ->
            (* Corrupt header: the base is unknowable, drop the file. *)
            let base = max cold_end 0 in
            if epoch > 0 || base > 0 then rewrite_active dir file ~epoch ~base []
            else dir.Io.truncate_file file 0;
            (base, 0)
        | _ when overlap || epoch > aepoch ->
            let keep = drop (cold_end - abase) aops in
            rewrite_active dir file ~epoch ~base:cold_end keep;
            (cold_end, List.length keep)
        | _ ->
            (* The classic path: amputate a torn tail before appending —
               a record appended after garbage would be unreachable to
               the scanner forever. *)
            if bytes_discarded > 0 then dir.Io.truncate_file file valid_bytes;
            (abase, arecords))
  in
  let handle = dir.Io.open_append file in
  {
    dir;
    dim;
    name = file;
    existing;
    fsync_every;
    segment_records;
    epoch;
    file = handle;
    active_base;
    active_records;
    appended = 0;
    since_sync = 0;
    fsyncs = 0;
    rotations = 0;
    closed = false;
  }

let existing w = w.existing
let epoch w = w.epoch

let sync w =
  if w.since_sync > 0 then begin
    w.file.Io.sync ();
    w.fsyncs <- w.fsyncs + 1;
    w.since_sync <- 0
  end

let rotate w =
  if w.closed then invalid_arg "Wal.rotate: writer is closed";
  sync w;
  w.file.Io.close ();
  (match w.dir.Io.read_file w.name with
  | None -> ()
  | Some data ->
      let _, abase, aops, arecords, _, _ = scan_active ~dim:w.dim data in
      if arecords > 0 then begin
        let buf = Buffer.create 1024 in
        Buffer.add_string buf (segment_header ~epoch:w.epoch ~base:abase ~count:arecords);
        List.iter (fun op -> Buffer.add_string buf (frame op)) aops;
        w.dir.Io.write_atomic (segment_name ~file:w.name abase) (Buffer.contents buf);
        rewrite_active w.dir w.name ~epoch:w.epoch ~base:(abase + arecords) [];
        w.active_base <- abase + arecords;
        w.active_records <- 0;
        w.rotations <- w.rotations + 1
      end);
  w.file <- w.dir.Io.open_append w.name

let append w op =
  if w.closed then invalid_arg "Wal.append: writer is closed";
  w.file.Io.append (frame op);
  w.appended <- w.appended + 1;
  w.active_records <- w.active_records + 1;
  w.since_sync <- w.since_sync + 1;
  if w.since_sync >= w.fsync_every then sync w;
  if w.segment_records > 0 && w.active_records >= w.segment_records then rotate w

let close w =
  if not w.closed then begin
    sync w;
    w.closed <- true;
    w.file.Io.close ()
  end

let records w = w.existing.base + w.existing.records + w.appended
let appended w = w.appended
let fsyncs w = w.fsyncs
let rotations w = w.rotations

let prune ~dir ?(file = default_file) ~below () =
  let removed = ref 0 in
  List.iter
    (fun seg ->
      if seg.seg_base + seg.seg_count <= below then begin
        dir.Io.remove_file seg.seg_file;
        incr removed
      end)
    (segments ~dir ~file ());
  !removed
