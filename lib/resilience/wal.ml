module Crc32 = Rts_util.Crc32
open Rts_workload

let default_file = "wal.log"

(* A single frame is at most a few hundred bytes (one op line); cap the
   length field so a corrupt header cannot make the scanner treat the
   rest of the file as one giant pending record. *)
let max_payload = 1_000_000

let frame op =
  let payload = Replay.op_to_line op in
  Printf.sprintf "%d,%s,%s\n" (String.length payload) (Crc32.to_hex (Crc32.string payload)) payload

type scanned = {
  ops : Replay.op list;
  records : int;
  valid_bytes : int;
  bytes_discarded : int;
}

let is_digit = function '0' .. '9' -> true | _ -> false

(* Parse one record starting at [pos]; [Some (op, next_pos)] or [None]
   if the bytes from [pos] are not an intact record. *)
let parse_record ~dim ~record_no data pos =
  let n = String.length data in
  match String.index_from_opt data pos ',' with
  | None -> None
  | Some c1 ->
      let len_digits = c1 - pos in
      if len_digits < 1 || len_digits > 7 then None
      else if not (String.for_all is_digit (String.sub data pos len_digits)) then None
      else
        let len = int_of_string (String.sub data pos len_digits) in
        if len > max_payload then None
        else
          let crc_end = c1 + 9 in
          if crc_end >= n || data.[crc_end] <> ',' then None
          else
            match Crc32.of_hex (String.sub data (c1 + 1) 8) with
            | None -> None
            | Some crc ->
                let pstart = crc_end + 1 in
                (* payload plus its '\n' terminator must fit *)
                if pstart + len >= n then None
                else if data.[pstart + len] <> '\n' then None
                else
                  let payload = String.sub data pstart len in
                  if Crc32.string payload <> crc then None
                  else (
                    match Replay.parse_op ~dim ~line_no:record_no payload with
                    | op -> Some (op, pstart + len + 1)
                    | exception Csv_io.Parse_error _ -> None)

let scan_string ~dim data =
  let n = String.length data in
  let ops = ref [] and records = ref 0 in
  let pos = ref 0 and stop = ref false in
  while (not !stop) && !pos < n do
    match parse_record ~dim ~record_no:(!records + 1) data !pos with
    | Some (op, next) ->
        ops := op :: !ops;
        incr records;
        pos := next
    | None -> stop := true
  done;
  { ops = List.rev !ops; records = !records; valid_bytes = !pos; bytes_discarded = n - !pos }

let scan ~dim ~dir ?(file = default_file) () =
  match dir.Io.read_file file with
  | None -> { ops = []; records = 0; valid_bytes = 0; bytes_discarded = 0 }
  | Some data -> scan_string ~dim data

type writer = {
  file : Io.file;
  existing : scanned;
  fsync_every : int;
  mutable appended : int;
  mutable since_sync : int;
  mutable fsyncs : int;
  mutable closed : bool;
}

let writer ?(fsync_every = 1) ?(file = default_file) ~dim ~dir () =
  if fsync_every < 1 then invalid_arg "Wal.writer: fsync_every < 1";
  let existing = scan ~dim ~dir ~file () in
  (* Amputate a torn tail before appending: a record appended after
     garbage would be unreachable to the scanner forever. *)
  if existing.bytes_discarded > 0 then dir.Io.truncate_file file existing.valid_bytes;
  let file = dir.Io.open_append file in
  { file; existing; fsync_every; appended = 0; since_sync = 0; fsyncs = 0; closed = false }

let existing w = w.existing

let sync w =
  if w.since_sync > 0 then begin
    w.file.Io.sync ();
    w.fsyncs <- w.fsyncs + 1;
    w.since_sync <- 0
  end

let append w op =
  if w.closed then invalid_arg "Wal.append: writer is closed";
  w.file.Io.append (frame op);
  w.appended <- w.appended + 1;
  w.since_sync <- w.since_sync + 1;
  if w.since_sync >= w.fsync_every then sync w

let close w =
  if not w.closed then begin
    sync w;
    w.closed <- true;
    w.file.Io.close ()
  end

let records w = w.existing.records + w.appended
let appended w = w.appended
let fsyncs w = w.fsyncs
