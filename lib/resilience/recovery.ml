open Rts_core
open Rts_workload
module Metrics = Rts_obs.Metrics

type report = {
  checkpoint_gen : int option;
  generations_skipped : int;
  checkpoint_ops : int;
  checkpoint_elements : int;
  wal_records : int;
  ops_replayed : int;
  bytes_discarded : int;
  ops_total : int;
  elements_total : int;
  maturities : (int * int) list;
}

(* Newest checkpoint that validates, plus how many newer ones were
   skipped as corrupt. *)
let newest_valid ~dir =
  let rec go skipped = function
    | [] -> (None, skipped)
    | (_, name) :: rest -> (
        match Checkpoint.load ~dir name with
        | meta, entries -> (Some (meta, entries), skipped)
        | exception Checkpoint.Corrupt _ -> go (skipped + 1) rest)
  in
  go 0 (Checkpoint.generations ~dir)

let adjust entries =
  List.map
    (fun ((q : Types.query), consumed) ->
      if consumed = 0 then q else { q with Types.threshold = q.threshold - consumed })
    entries

let rec drop n = function
  | rest when n <= 0 -> rest
  | [] -> []
  | _ :: rest -> drop (n - 1) rest

let recover ~dim ~make ~dir () =
  let checkpoint, generations_skipped = newest_valid ~dir in
  let checkpoint_gen, checkpoint_ops, checkpoint_elements, entries =
    match checkpoint with
    | Some ((meta : Checkpoint.meta), entries) ->
        if meta.dim <> dim then
          invalid_arg
            (Printf.sprintf "Recovery.recover: checkpoint dimension %d, expected %d" meta.dim
               dim);
        (Some meta.gen, meta.ops, meta.elements, entries)
    | None -> (None, 0, 0, [])
  in
  let engine = make ~dim in
  if entries <> [] then engine.Engine.register_batch (adjust entries);
  let wal = Wal.scan ~dim ~dir () in
  (* The checkpoint may cover ops whose WAL records were lost with the
     torn tail (the checkpoint is synced after the WAL, so normally
     wal.records >= checkpoint_ops; a mid-log corruption can still
     shorten the trusted prefix below it). Replay whatever the WAL
     holds past the checkpoint; durability reaches the further of the
     two positions. *)
  (* The WAL chain may not reach back to op 0: segments below the
     checkpoint floor are pruned, so [wal.base] ops are simply absent.
     They are covered by the checkpoint (pruning never outruns it), so
     replay starts [checkpoint_ops - base] records into the chain. *)
  let suffix = drop (checkpoint_ops - wal.Wal.base) wal.Wal.ops in
  let outcome =
    try Replay.replay_ops engine suffix
    with Replay.Engine_error { op_index; exn; _ } ->
      (* re-raise with absolute positions: ordinal within the whole WAL *)
      raise
        (Replay.Engine_error
           { op_index = op_index + checkpoint_ops; line_no = op_index + checkpoint_ops; exn })
  in
  let ops_replayed = List.length suffix in
  let report =
    {
      checkpoint_gen;
      generations_skipped;
      checkpoint_ops;
      checkpoint_elements;
      wal_records = wal.Wal.records;
      ops_replayed;
      bytes_discarded = wal.Wal.bytes_discarded;
      ops_total = max checkpoint_ops (wal.Wal.base + wal.Wal.records);
      elements_total = checkpoint_elements + outcome.Replay.elements;
      maturities =
        List.map (fun (ord, id) -> (ord + checkpoint_elements, id)) outcome.Replay.maturities;
    }
  in
  (engine, report)

let metrics r =
  Metrics.of_assoc
    [
      ("recovery_ops_replayed", Metrics.Counter r.ops_replayed);
      ("recovery_bytes_discarded", Metrics.Counter r.bytes_discarded);
      ("recovery_generations_skipped", Metrics.Counter r.generations_skipped);
      ( "recovery_checkpoint_gen",
        Metrics.Gauge (match r.checkpoint_gen with Some g -> float_of_int g | None -> -1.) );
    ]

let pp_report ppf r =
  let open Format in
  fprintf ppf "@[<v>recovery report:@,";
  (match r.checkpoint_gen with
  | Some g ->
      fprintf ppf "  checkpoint: generation %d (ops %d, elements %d)@," g r.checkpoint_ops
        r.checkpoint_elements
  | None -> fprintf ppf "  checkpoint: none@,");
  if r.generations_skipped > 0 then
    fprintf ppf "  corrupt generations skipped: %d@," r.generations_skipped;
  fprintf ppf "  wal: %d valid records, %d replayed past checkpoint@," r.wal_records
    r.ops_replayed;
  if r.bytes_discarded > 0 then
    fprintf ppf "  torn tail discarded: %d bytes@," r.bytes_discarded;
  fprintf ppf "  maturities re-fired during replay: %d@," (List.length r.maturities);
  fprintf ppf "  durable position: op %d (element %d) — resume after it@]" r.ops_total
    r.elements_total
