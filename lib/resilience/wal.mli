(** Checksummed, append-only, segmented write-ahead log of engine
    operations.

    Record framing (one record per applied op, text so a trace stays
    [grep]-able):

    {v
    <len>,<crc32-hex8>,<payload>\n
    v}

    where [payload] is {!Rts_workload.Replay.op_to_line} (R/T/E lines),
    [len] its byte length, and the CRC-32 covers the payload. The frame
    makes the log self-validating: {!scan_string} accepts the longest
    prefix of intact records and reports everything after the first
    violation — bad length, bad checksum, missing terminator, truncated
    payload, unparsable op — as a {e torn tail}. A torn or corrupt final
    record is therefore dropped, not fatal: exactly the state a crash
    mid-append (or a lost unsynced page) leaves behind. Because every
    record is covered by its own CRC, a bit flip cannot turn one valid
    record into a different valid one — corruption only ever shortens
    the trusted prefix, never rewrites history.

    {2 Segmentation}

    The log is a chain: zero or more {e cold segments}
    ([wal-<base>.seg], immutable, atomically published, each headed by
    [RTSWSEG,1,<epoch>,<base>,<count>,<crc>]) followed by the {e active
    file} ([wal.log]). Once the log has rotated — or carries a nonzero
    epoch — the active file leads with [RTSWACT,1,<epoch>,<base>,<crc>];
    the header-less form is the legacy single-file log and scans as base
    0, epoch 0, so every pre-segmentation log is still readable. [base]
    counts the ops that precede the file's first record, so a chain
    scan yields ops [base+1 .. base+records] of the global sequence.

    Rotation ({!rotate}, or automatic every [segment_records] appends)
    seals the active records into a cold segment and resets the active
    file to a bare header. The crash window between those two atomic
    steps leaves an overlap, which {!scan} and {!writer} resolve in
    favour of the sealed copy. Cold segments wholly below a caller's
    safe floor (its checkpoint, its replicas' acks) are reclaimed with
    {!prune} — this is what keeps disk usage bounded on a server that
    never stops.

    {2 Epoch fencing}

    Each header carries the {e epoch} of the writer incarnation that
    produced it. Opening a {!writer} with an [epoch] lower than the
    highest one already in the directory raises {!Fenced}: a deposed
    primary cannot extend a log its successor has taken over.

    Durability: {!append} buffers in the OS via {!Io.file.append};
    records become crash-proof when the writer fsyncs — every
    [fsync_every] records, or explicitly via {!sync} (the {!Durable}
    wrapper syncs before each checkpoint so the checkpoint never claims
    ops the log could lose). *)

open Rts_workload

val default_file : string
(** ["wal.log"]. *)

exception Fenced of { requested : int; found : int }
(** Raised by {!writer} when asked to open with an epoch below the one
    already stamped in the directory: the caller is a stale incarnation
    and must not write. *)

val frame : Replay.op -> string
(** One framed record including the trailing newline. *)

type scanned = {
  ops : Replay.op list;  (** Available records, chain order. *)
  records : int;  (** [List.length ops]. *)
  base : int;
      (** Ops below the chain: [List.hd ops] (if any) is op number
          [base + 1] of the global sequence. 0 unless segments have
          been pruned away (or the active header says otherwise). *)
  epoch : int;  (** Highest epoch stamped in the chain; 0 if none. *)
  valid_bytes : int;
      (** Byte length of the {e active file}'s intact prefix (header
          included). *)
  bytes_discarded : int;
      (** Torn-tail bytes in the {e active file} after that prefix. *)
}

val scan_string : dim:int -> string -> scanned
(** Parse a raw record image (no headers — the legacy/in-memory form).
    Total: never raises on any input. [base] and [epoch] are 0. *)

val scan : dim:int -> dir:Io.dir -> ?file:string -> unit -> scanned
(** Scan the whole chain rooted at [file] (default {!default_file}):
    cold segments in base order, then the active file, de-duplicating
    the rotation crash-window overlap. An absent chain is an empty
    log. *)

type segment = { seg_file : string; seg_base : int; seg_count : int; seg_epoch : int }

val segments : dir:Io.dir -> ?file:string -> unit -> segment list
(** Cold segments present for [file]'s chain, sorted by base. Only
    segments with an intact header are listed. *)

val scan_segment_string : dim:int -> string -> (int * int * int * Replay.op list) option
(** Validate a cold-segment image: [Some (epoch, base, count, ops)] iff
    the header CRC holds and exactly [count] intact records follow.
    Exposed so harnesses can archive a segment's contents before it is
    pruned (the soak's full-history oracle). *)

val segment_name : ?file:string -> int -> string
(** [segment_name base] is the cold-segment file name for a segment
    whose first record is op [base + 1]. *)

val prune : dir:Io.dir -> ?file:string -> below:int -> unit -> int
(** Remove every cold segment whose records all lie at or below op
    number [below]; returns how many were removed. Safe floors are the
    caller's business: the checkpoint floor locally, the minimum
    replica ack under replication. *)

type writer

val writer :
  ?fsync_every:int ->
  ?file:string ->
  ?epoch:int ->
  ?segment_records:int ->
  dim:int ->
  dir:Io.dir ->
  unit ->
  writer
(** Open (or create) the log for appending. An existing chain is
    scanned first; the active file's torn tail is truncated away, and a
    rotation-crash overlap is resolved (the active file is rewritten to
    start where the cold chain ends), so new records always extend the
    intact chain. [fsync_every] (default 1: sync every record, the safe
    end of the spectrum) batches fsyncs for throughput at the price of
    a wider lost-suffix window on crash.

    [epoch] (default: inherit whatever the chain carries) stamps this
    incarnation's epoch into the active header and every segment it
    seals; raises {!Fenced} if the chain already carries a higher one.
    [segment_records] > 0 rotates automatically after that many records
    accumulate in the active file; 0 (default) disables rotation and
    preserves the classic single-file layout byte for byte. *)

val existing : writer -> scanned
(** What the opening chain scan found (before any {!append} by this
    writer). *)

val epoch : writer -> int
(** The epoch this writer stamps (after inheritance/fencing). *)

val append : writer -> Replay.op -> unit
(** Frame and append one record; fsyncs if the batch is due, rotates if
    the segment is full. *)

val sync : writer -> unit
(** Force outstanding records durable now. No-op if none are pending. *)

val rotate : writer -> unit
(** Seal the active records into a cold segment now (no-op on an empty
    active file) and continue appending to a fresh active file. *)

val close : writer -> unit
(** {!sync}, then release the handle. *)

val records : writer -> int
(** Total ops ever logged through this chain: the chain's base plus
    available records plus this writer's appends. *)

val appended : writer -> int
(** Records appended through this writer. *)

val fsyncs : writer -> int
(** Fsyncs issued by this writer (feeds [wal_fsyncs_total]). *)

val rotations : writer -> int
(** Segments sealed by this writer. *)
