(** Checksummed, append-only write-ahead log of engine operations.

    Record framing (one record per applied op, text so a trace stays
    [grep]-able):

    {v
    <len>,<crc32-hex8>,<payload>\n
    v}

    where [payload] is {!Rts_workload.Replay.op_to_line} (R/T/E lines),
    [len] its byte length, and the CRC-32 covers the payload. The frame
    makes the log self-validating: {!scan_string} accepts the longest
    prefix of intact records and reports everything after the first
    violation — bad length, bad checksum, missing terminator, truncated
    payload, unparsable op — as a {e torn tail}. A torn or corrupt final
    record is therefore dropped, not fatal: exactly the state a crash
    mid-append (or a lost unsynced page) leaves behind. Because every
    record is covered by its own CRC, a bit flip cannot turn one valid
    record into a different valid one — corruption only ever shortens
    the trusted prefix, never rewrites history.

    Durability: {!append} buffers in the OS via {!Io.file.append};
    records become crash-proof when the writer fsyncs — every
    [fsync_every] records, or explicitly via {!sync} (the {!Durable}
    wrapper syncs before each checkpoint so the checkpoint never claims
    ops the log could lose). *)

open Rts_workload

val default_file : string
(** ["wal.log"]. *)

val frame : Replay.op -> string
(** One framed record including the trailing newline. *)

type scanned = {
  ops : Replay.op list;  (** The intact prefix, in append order. *)
  records : int;  (** [List.length ops]. *)
  valid_bytes : int;  (** Byte length of the intact prefix. *)
  bytes_discarded : int;  (** Torn-tail bytes after the intact prefix. *)
}

val scan_string : dim:int -> string -> scanned
(** Parse a raw log image. Total: never raises on any input. *)

val scan : dim:int -> dir:Io.dir -> ?file:string -> unit -> scanned
(** {!scan_string} over [file] (default {!default_file}) in [dir]; an
    absent file is an empty log. *)

type writer

val writer : ?fsync_every:int -> ?file:string -> dim:int -> dir:Io.dir -> unit -> writer
(** Open (or create) the log for appending. An existing file is scanned
    first and any torn tail is truncated away, so new records always
    extend the intact prefix — appending after garbage would otherwise
    hide them from every future {!scan}. [fsync_every] (default 1: sync
    every record, the safe end of the spectrum) batches fsyncs for
    throughput at the price of a wider lost-suffix window on crash. *)

val existing : writer -> scanned
(** What the opening scan found (before any {!append} by this writer). *)

val append : writer -> Replay.op -> unit
(** Frame and append one record; fsyncs if the batch is due. *)

val sync : writer -> unit
(** Force outstanding records durable now. No-op if none are pending. *)

val close : writer -> unit
(** {!sync}, then release the handle. *)

val records : writer -> int
(** Total valid records in the log: pre-existing plus appended. *)

val appended : writer -> int
(** Records appended through this writer. *)

val fsyncs : writer -> int
(** Fsyncs issued by this writer (feeds [wal_fsyncs_total]). *)
