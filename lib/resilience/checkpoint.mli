(** Atomic, generation-numbered, self-checksummed engine snapshots.

    A checkpoint captures {!Rts_core.Engine.t.alive_snapshot} — every
    alive query with its exact accumulated weight — together with the
    position in the op stream it reflects, so {!Recovery} can restore
    the engine and replay only the WAL suffix past it.

    File format ([checkpoint-<gen>.ckpt], text):

    {v
    RTSCKPT,1,<gen>,<dim>,<ops>,<elements>,<count>,<crc32-hex8>
    <consumed>,<id>,<threshold>,<lo1>,<hi1>[,...]
    ...                                       (count lines)
    v}

    The CRC covers the header fields themselves (everything before the
    CRC field, newline-joined with the payload) and every byte after the
    header line, and [count] pins the number of entries, so truncation,
    bit rot and short reads — in the metadata as much as the entries —
    all surface as {!Corrupt}. Publication is atomic ({!Io.dir.write_atomic}:
    write temp, fsync, rename): a crash mid-checkpoint leaves the
    previous generation untouched and at worst a stray [*.tmp] that
    {!prune} sweeps. Generations only ever increase; older ones are kept
    as fallbacks until pruned. *)

open Rts_core

exception Corrupt of string
(** The named checkpoint file is missing, truncated, checksum-damaged,
    or semantically invalid (bad counts, duplicate ids, consumed weight
    out of range). Recovery treats this as "skip to the next older
    generation", never as data. *)

type meta = {
  gen : int;  (** Generation number (monotone per directory). *)
  dim : int;
  ops : int;  (** Ops (R/T/E) reflected in this snapshot. *)
  elements : int;  (** Element ops among them — the maturity-ordinal base. *)
  count : int;  (** Alive queries recorded. *)
}

val filename : int -> string
(** [filename gen] = ["checkpoint-<gen padded to 10>.ckpt"]. *)

val parse_filename : string -> int option
(** Inverse of {!filename}; [None] for anything else (including temp
    files), so stray files in the directory are ignored. *)

val write :
  dir:Io.dir -> gen:int -> dim:int -> ops:int -> elements:int ->
  (Types.query * int) list -> string
(** Serialize and atomically publish one generation; returns the file
    name. Entries are [(q, consumed)] as produced by [alive_snapshot]. *)

val load : dir:Io.dir -> string -> meta * (Types.query * int) list
(** Read back and fully validate one checkpoint file. Raises {!Corrupt}. *)

val generations : dir:Io.dir -> (int * string) list
(** All checkpoint generations present, newest first. *)

val prune : dir:Io.dir -> keep:int -> unit
(** Delete all but the newest [keep] generations (and any leftover
    [*.tmp] from an interrupted atomic write). [keep >= 1]. *)
