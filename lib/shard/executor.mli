(** Pluggable shard executor: where shard tasks run.

    - {!Seq}: every task runs inline on the caller, in shard order.
      Always available; the reference semantics.
    - {!Domains}: one OCaml 5 [Domain] per shard, each draining its own
      SPSC task ring; tasks fan out in parallel and join at a barrier.
      Available only
      when the build selected the domains backend
      ({!domains_available}); requesting it elsewhere raises.

    The sharded engine is {e executor-oblivious} by construction: every
    observable output (matured ids, snapshots, merged metrics) is
    normalized after the barrier in deterministic shard order, so both
    executors produce bit-identical results — `make check-shard`
    asserts exactly that. *)

type kind = Seq | Domains

val domains_available : bool
(** True iff this build selected the domains backend (OCaml >= 5.0). *)

val default_kind : kind
(** [Domains] when available, else [Seq]. *)

val parallelism_hint : unit -> int
(** The runtime's recommended domain count (1 on the sequential
    backend). *)

val kind_to_string : kind -> string
(** ["seq"] / ["domains"]. *)

val kind_of_string : string -> (kind, string) result

type t

val create : ?kind:kind -> shards:int -> unit -> t
(** [create ~kind ~shards ()] readies an executor with [shards] slots
    (default kind [Seq]; [Domains] spawns the worker domains here).
    Raises [Invalid_argument] if [shards < 1] or if [Domains] is
    requested on a runtime without domain support. *)

val kind : t -> kind

val shards : t -> int

val worker_count : t -> int
(** Number of worker domains actually executing tasks: [shards] under
    {!Domains}, [1] under {!Seq} (everything runs inline on the
    caller). This — not {!parallelism_hint} — is what benches must
    record as the core count a measurement really used. *)

val run_all : t -> (int -> 'a) -> 'a array
(** Run [f i] on every shard slot and wait for all (barrier); results in
    slot order. The exception of the lowest-numbered failing slot (if
    any) is re-raised on the caller. Raises [Invalid_argument] after
    {!close}. *)

val run_on : t -> int -> (unit -> 'a) -> 'a
(** Run one task on one slot and wait for it; exceptions propagate. *)

val post : t -> int -> (unit -> unit) -> unit
(** Fire-and-forget: enqueue a task on one slot and return immediately
    (under {!Seq} the task runs inline). Tasks posted to the same slot
    run in submission order. A posted task's exception is captured, not
    raised at the post site: the next {!barrier} re-raises the first
    failure of the lowest-numbered failing slot. Effects of posted
    tasks are only guaranteed visible to the caller after a
    {!barrier}. *)

val barrier : t -> unit
(** Wait until every task posted so far (on every slot) has finished,
    then re-raise the first captured exception of the lowest-numbered
    failing slot, if any (clearing the captured errors). A barrier with
    nothing posted is a no-op, never a deadlock. *)

val close : t -> unit
(** Quit and join the workers (if any) — all of them, even when a task
    raised. Idempotent; subsequent [run_*] calls raise
    [Invalid_argument]. *)
