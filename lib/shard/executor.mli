(** Pluggable shard executor: where shard tasks run.

    - {!Seq}: every task runs inline on the caller, in shard order.
      Always available; the reference semantics.
    - {!Domains}: one OCaml 5 [Domain] per shard behind SPSC mailboxes;
      tasks fan out in parallel and join at a barrier. Available only
      when the build selected the domains backend
      ({!domains_available}); requesting it elsewhere raises.

    The sharded engine is {e executor-oblivious} by construction: every
    observable output (matured ids, snapshots, merged metrics) is
    normalized after the barrier in deterministic shard order, so both
    executors produce bit-identical results — `make check-shard`
    asserts exactly that. *)

type kind = Seq | Domains

val domains_available : bool
(** True iff this build selected the domains backend (OCaml >= 5.0). *)

val default_kind : kind
(** [Domains] when available, else [Seq]. *)

val parallelism_hint : unit -> int
(** The runtime's recommended domain count (1 on the sequential
    backend). *)

val kind_to_string : kind -> string
(** ["seq"] / ["domains"]. *)

val kind_of_string : string -> (kind, string) result

type t

val create : ?kind:kind -> shards:int -> unit -> t
(** [create ~kind ~shards ()] readies an executor with [shards] slots
    (default kind [Seq]; [Domains] spawns the worker domains here).
    Raises [Invalid_argument] if [shards < 1] or if [Domains] is
    requested on a runtime without domain support. *)

val kind : t -> kind

val shards : t -> int

val run_all : t -> (int -> 'a) -> 'a array
(** Run [f i] on every shard slot and wait for all (barrier); results in
    slot order. The exception of the lowest-numbered failing slot (if
    any) is re-raised on the caller. Raises [Invalid_argument] after
    {!close}. *)

val run_on : t -> int -> (unit -> 'a) -> 'a
(** Run one task on one slot and wait for it; exceptions propagate. *)

val close : t -> unit
(** Join the workers (if any). Idempotent; subsequent [run_*] calls
    raise [Invalid_argument]. *)
