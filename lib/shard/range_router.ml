(* Range_router: element partitioning by endpoint subrange.

   [shards - 1] strictly increasing cut points on dimension 0 split the
   key line into [shards] disjoint half-open subranges

     (-inf, c0) [c0, c1) ... [c_{k-2}, +inf)

   mirroring the endpoint tree's canonical decomposition: subrange [i]
   owns exactly the values with [i] cuts at or below them. Every stream
   element has one owner, so routing elements by owner (instead of
   broadcasting the stream to every shard, as query partitioning must)
   divides ingestion work by [shards].

   Queries are rects, and a rect's dim-0 interval [lo, hi) may straddle
   cuts. Policy: a straddling query is *pinned*, not split — it lives
   whole on the shard owning its low endpoint (deterministic, keeps
   each query's maturity state in one place so merged logs stay exact)
   and every subrange it intersects *subscribes* that home shard to its
   elements. Subscriptions are a [shards x shards] interest matrix of
   counts: [interest.(s).(h) > 0] means some alive query homed on [h]
   overlaps subrange [s], so elements owned by [s] are forwarded to [h]
   as well. Forwarding can over-deliver (shard [h] gets elements no
   longer matching any of its rects); that is harmless — engines credit
   only queries whose rect contains the value — and it decays to zero
   as straddlers mature or terminate and release their subscriptions.

   The router is coordinator-local state: it is mutated only by the
   thread calling the shard facade, never by worker domains. *)

type span = { home : int; first : int; last : int }

type t = {
  shards : int;
  cuts : float array;
  spans : (int, span) Hashtbl.t; (* alive query id -> placement *)
  interest : int array array; (* interest.(subrange).(home) = alive straddlers *)
  mutable straddlers : int;
}

let validate_cuts ~shards cuts =
  if Array.length cuts <> shards - 1 then
    invalid_arg
      (Printf.sprintf "Range_router: %d shards need %d cut points, got %d" shards (shards - 1)
         (Array.length cuts));
  Array.iteri
    (fun i c ->
      if Float.is_nan c then invalid_arg "Range_router: cut point is NaN";
      if i > 0 && not (cuts.(i - 1) < c) then
        invalid_arg "Range_router: cut points must be strictly increasing")
    cuts

let create ~shards ~cuts =
  if shards < 1 then invalid_arg "Range_router.create: shards must be >= 1";
  validate_cuts ~shards cuts;
  {
    shards;
    cuts = Array.copy cuts;
    spans = Hashtbl.create 256;
    interest = Array.init shards (fun _ -> Array.make shards 0);
    straddlers = 0;
  }

let shards t = t.shards

let cuts t = Array.copy t.cuts

(* number of cuts <= v, i.e. the subrange owning v *)
let owner_of_value t v =
  let lo = ref 0 and hi = ref (Array.length t.cuts) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cuts.(mid) <= v then lo := mid + 1 else hi := mid
  done;
  !lo

(* number of cuts < v: the last subrange intersecting an interval that
   ends (exclusively) at v *)
let count_lt t v =
  let lo = ref 0 and hi = ref (Array.length t.cuts) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cuts.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

let span_of_interval t ~lo ~hi =
  let first = owner_of_value t lo in
  (* clamp: engines reject degenerate rects themselves, but the router
     must stay consistent even when asked to place one *)
  let last = max first (count_lt t hi) in
  { home = first; first; last }

let register t ~id ~lo ~hi =
  match Hashtbl.find_opt t.spans id with
  | Some sp ->
      (* id already alive: route to where it lives and let the engine
         report the duplicate; router state is untouched *)
      sp.home
  | None ->
      let sp = span_of_interval t ~lo ~hi in
      Hashtbl.replace t.spans id sp;
      if sp.last > sp.first then begin
        t.straddlers <- t.straddlers + 1;
        for s = sp.first to sp.last do
          t.interest.(s).(sp.home) <- t.interest.(s).(sp.home) + 1
        done
      end;
      sp.home

let forget t id =
  match Hashtbl.find_opt t.spans id with
  | None -> ()
  | Some sp ->
      Hashtbl.remove t.spans id;
      if sp.last > sp.first then begin
        t.straddlers <- t.straddlers - 1;
        for s = sp.first to sp.last do
          t.interest.(s).(sp.home) <- t.interest.(s).(sp.home) - 1
        done
      end

let home t id = Option.map (fun sp -> sp.home) (Hashtbl.find_opt t.spans id)

let straddlers t = t.straddlers

let alive t = Hashtbl.length t.spans

let iter_targets t v f =
  let s = owner_of_value t v in
  f ~owner:true s;
  let row = t.interest.(s) in
  for h = 0 to t.shards - 1 do
    if h <> s && row.(h) > 0 then f ~owner:false h
  done

let targets t v =
  let acc = ref [] in
  iter_targets t v (fun ~owner:_ s -> acc := s :: !acc);
  List.sort compare !acc

let uniform_cuts ~shards ~lo ~hi =
  if shards < 1 then invalid_arg "Range_router.uniform_cuts: shards must be >= 1";
  if not (lo < hi) then invalid_arg "Range_router.uniform_cuts: need lo < hi";
  let w = hi -. lo in
  let cuts =
    Array.init (shards - 1) (fun i -> lo +. (w *. float_of_int (i + 1) /. float_of_int shards))
  in
  validate_cuts ~shards cuts;
  cuts
