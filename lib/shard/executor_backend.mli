(** Build-time-selected execution backend (see lib/shard/dune).

    Two implementations satisfy this signature:
    - [executor_backend.domains.ml] — one OCaml 5 [Domain] per slot,
      each draining its own bounded {!Spsc_ring} of tasks (selected
      when the runtime ships [runtime_events], i.e. OCaml >= 5.0);
    - [executor_backend.seq.ml] — an inline sequential stand-in that
      keeps the library building on 4.14.

    {!Executor} is the only client; nothing else should touch this
    module. The contract every implementation must honour: worker slot
    [i] {e owns} the state its tasks close over — a slot's tasks run
    one at a time in submission order, and the end-of-call barrier of
    {!exec} establishes happens-before in both directions, so the
    coordinator may freely read that state while no call is in
    flight. *)

val available : bool
(** True when {!exec} really fans tasks out over parallel domains. *)

val parallelism_hint : unit -> int
(** The runtime's recommended domain count (1 on the sequential
    backend) — recorded by the bench so scaling numbers can be read in
    context of the hardware that produced them. *)

type pool
(** [n] worker slots, indexed [0 .. n-1]. *)

val spawn : int -> pool

val exec : pool -> (int -> 'a) -> 'a array
(** [exec p f] runs [f i] on every slot [i] (concurrently on the
    domains backend), waits for all of them (barrier), and returns the
    results in slot order. If tasks raised, the exception of the
    lowest-numbered failing slot is re-raised on the caller {e after}
    the barrier — deterministic regardless of domain scheduling, and
    never before every dispatched task has finished (a raise during a
    fan-out must not strand still-running slots). *)

val exec_on : pool -> int -> (unit -> 'a) -> 'a
(** Run one task on one slot and wait for it; exceptions propagate. *)

val post : pool -> int -> (unit -> unit) -> unit
(** Fire-and-forget: enqueue a task on one slot and return without
    waiting. Tasks posted to the same slot run in submission order;
    there is no cross-slot ordering. The task must not raise — callers
    ({!Executor.post}) wrap tasks to capture exceptions; as a last
    line of defence the backend swallows an escaping exception, stashes
    it, and surfaces it at {!close}, so a raising task can never kill a
    worker (a dead worker would turn the next barrier or [close] into a
    deadlock). Visibility of the task's effects is only guaranteed
    after a subsequent barrier ({!exec}). *)

val drain : pool -> unit
(** Barrier over previously {!post}ed work: returns once every task
    posted to every slot before this call has finished. Unlike
    [ignore (exec p (fun _ -> ()))] — the old way to drain — this
    allocates nothing per call on the hot path: the domains backend
    posts one preallocated sentinel task per slot and waits on a
    reusable latch; the sequential backend is a no-op (posted tasks
    already ran inline). Establishes the same happens-before edges as
    {!exec}'s barrier. Must only be called from the coordinator (the
    single producer). *)

val close : pool -> unit
(** Stop and join the workers. Every worker is handed a quit signal and
    every domain is joined {e before} any exception propagates — a
    raising task or a failing join cannot leak parked domains.
    Idempotent. *)
