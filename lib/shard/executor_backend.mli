(** Build-time-selected execution backend (see lib/shard/dune).

    Two implementations satisfy this signature:
    - [executor_backend.domains.ml] — one OCaml 5 [Domain] per slot, fed
      through SPSC mailboxes (selected when the runtime ships
      [runtime_events], i.e. OCaml >= 5.0);
    - [executor_backend.seq.ml] — an inline sequential stand-in that
      keeps the library building on 4.14.

    {!Executor} is the only client; nothing else should touch this
    module. The contract every implementation must honour: worker slot
    [i] {e owns} the state its tasks close over — between calls the
    workers are quiescent, and the end-of-call barrier establishes
    happens-before in both directions, so the coordinator may freely
    read that state while no call is in flight. *)

val available : bool
(** True when {!exec} really fans tasks out over parallel domains. *)

val parallelism_hint : unit -> int
(** The runtime's recommended domain count (1 on the sequential
    backend) — recorded by the bench so scaling numbers can be read in
    context of the hardware that produced them. *)

type pool
(** [n] worker slots, indexed [0 .. n-1]. *)

val spawn : int -> pool

val exec : pool -> (int -> 'a) -> 'a array
(** [exec p f] runs [f i] on every slot [i] (concurrently on the
    domains backend), waits for all of them (barrier), and returns the
    results in slot order. If tasks raised, the exception of the
    lowest-numbered failing slot is re-raised on the caller {e after}
    the barrier — deterministic regardless of domain scheduling. *)

val exec_on : pool -> int -> (unit -> 'a) -> 'a
(** Run one task on one slot and wait for it; exceptions propagate. *)

val close : pool -> unit
(** Stop and join the workers. Idempotent. *)
