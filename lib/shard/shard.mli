(** Sharded multi-domain ingestion with a deterministic merge.

    Partitions the {e queries} (not the elements) of one logical engine
    across [k] shards by {!Rendezvous} hashing on query id; each shard
    runs a full engine of its own — any of the five, via the usual
    [dim:int -> Engine.t] factory — over the {e entire} element stream,
    restricted to the queries it owns. Because every engine's maturity
    behaviour for a query depends only on that query's own accumulated
    weight (never on other queries), a disjoint partition of the query
    set under the identical element stream matures exactly the same
    (element, query) pairs as the unsharded engine.

    {b Determinism invariant.} Every operation fans out to the shards
    through a pluggable {!Executor}, joins at a barrier, and normalizes
    the outputs in shard-independent order before returning: matured
    ids are merged ascending (the per-shard lists are already sorted
    and mutually disjoint), snapshots are re-sorted by id, metrics are
    folded in shard-index order. The result is bit-identical across
    shard counts, executors ([Seq] vs [Domains]) and domain schedules —
    the property `make check-shard` and the CI shard-equivalence job
    pin for every engine. Maturity {e timestamps} are attributed by the
    driver at batch barriers (sorted [(timestamp, query_id)]), so the
    sharded maturity log equals the unsharded one verbatim.

    What is {e not} preserved: the DT engine's interleaving-sensitive
    work counters (each shard builds its own endpoint trees over ~[m/k]
    queries), and merged per-engine counters such as [elements_total],
    which sum over shards and therefore read [k * n] — each shard
    really does scan the whole stream. The shard layer's own [shard_*]
    metrics count stream-level quantities exactly once.

    Wrappers compose on both sides: [Durable.wrap] around
    [Shard.engine] gives a crash-recoverable sharded run (recovery
    replays the WAL into a fresh sharded engine via {!factory}), and
    [Net_shadow.wrap] cross-checks a sharded engine against networked
    distributed tracking exactly as it does an unsharded one. *)

open Rts_core

type t

val create :
  ?executor:Executor.kind -> shards:int -> dim:int -> (dim:int -> Engine.t) -> t
(** [create ~executor ~shards ~dim make] builds [shards] engines, each
    constructed on its own executor slot (so domain-local allocation is
    born on the domain that will drive it). Default executor: [Seq].
    Raises [Invalid_argument] on [shards < 1], [dim < 1], or an
    unavailable executor kind. *)

val engine : t -> Engine.t
(** Package as a uniform {!Engine.t} named ["<inner>+k<shards>"] (with
    ["/domains"] appended under the domains executor). All closures
    raise [Invalid_argument] after {!close}. *)

val shards : t -> int

val executor_kind : t -> Executor.kind

val owner : t -> int -> int
(** The shard a query id lives on ({!Rendezvous.owner}). *)

val queries_per_shard : t -> int array
(** Alive-query count per shard — the balance the rendezvous hash is
    supposed to deliver (~[m/k] each). *)

val per_shard_metrics : t -> Rts_obs.Metrics.snapshot array
(** Each shard engine's own metric snapshot, in shard order — the
    per-shard work counters the bench records. *)

val metrics : t -> Rts_obs.Metrics.snapshot
(** Shard-layer counters ([shard_count], [shard_registered_total],
    [shard_terminated_total], [shard_elements_total] (stream elements,
    counted once), [shard_batches_total], [shard_dispatches_total],
    [shard_queries_min]/[shard_queries_max] balance gauges,
    [shard_executor_domains]) merged over the per-shard engine
    snapshots; the [alive] gauge is the true total. *)

val close : t -> unit
(** Shut the executor down (joining its domains). Idempotent. *)

val factory :
  ?executor:Executor.kind ->
  shards:int ->
  (dim:int -> Engine.t) ->
  (dim:int -> Engine.t) * (unit -> unit)
(** [factory ~executor ~shards make] is [(make', close_all)]: a factory
    producing sharded engines over [make] — a drop-in for
    [Scenario.run] factories and [Recovery.recover ~make] — plus a
    closer that shuts down every instance [make'] created so far. *)
