(** Sharded multi-domain ingestion with a deterministic merge.

    Splits one logical engine across [k] shards — each running a full
    engine of its own (any of the five, via the usual
    [dim:int -> Engine.t] factory) — under one of two {!partition}
    disciplines:

    - {!Queries} (the PR-5 scheme): partition the {e queries} by
      {!Rendezvous} hashing on id; every shard ingests the {e entire}
      element stream, restricted to the queries it owns. Replicated
      ingestion — no wall-clock scaling, but no routing state either.
    - {!Elements}[ cuts]: partition the {e key line} on dimension 0 at
      the given cut points ({!Range_router}). Each element is ingested
      by the shard owning its subrange (plus shards holding subscribed
      boundary-straddling queries); each query is pinned whole to the
      shard owning its low endpoint. Each shard sees ~[1/k] of the
      stream, so ingestion work truly parallelizes. Batched feeds run a
      route->feed pipeline: the coordinator buckets segments and posts
      per-shard sub-batches onto the executor's rings asynchronously,
      joining once per batch.

    Both modes preserve the property that makes the merge exact: a
    query's maturity depends only on its own accumulated weight, each
    query lives on exactly one shard, and that shard receives every
    element stabbing the query. A disjoint partition therefore matures
    exactly the same (element, query) pairs as the unsharded engine.

    {b Determinism invariant.} Every operation joins at a barrier and
    normalizes outputs in shard-independent order before returning:
    matured ids are merged ascending (per-shard lists are sorted and
    mutually disjoint), snapshots are re-sorted by id, metrics are
    folded in shard-index order. The result is bit-identical across
    shard counts, partitions, executors ([Seq] vs [Domains]) and domain
    schedules — the property `make check-shard` and the CI
    shard-equivalence job pin for every engine. Maturity {e timestamps}
    are attributed by the driver at batch barriers (sorted
    [(timestamp, query_id)]), so the sharded maturity log equals the
    unsharded one verbatim.

    What is {e not} preserved: the DT engine's interleaving-sensitive
    work counters, and merged per-engine counters such as
    [elements_total] — under [Queries] they sum to [k * n] (each shard
    really does scan the whole stream), under [Elements] to [n] plus
    boundary forwarding. The shard layer's own [shard_*] metrics count
    stream-level quantities exactly once in both modes.

    Wrappers compose on both sides: [Durable.wrap] around
    [Shard.engine] gives a crash-recoverable sharded run (recovery
    replays the WAL into a fresh sharded engine via {!factory}), and
    [Net_shadow.wrap] cross-checks a sharded engine against networked
    distributed tracking exactly as it does an unsharded one. *)

open Rts_core

type partition =
  | Queries  (** rendezvous-hash the queries; replicate the stream *)
  | Elements of float array
      (** cut the dim-0 key line at these [shards - 1] strictly
          increasing points; route elements, pin queries
          ({!Range_router}) *)

type t

val create :
  ?executor:Executor.kind ->
  ?partition:partition ->
  shards:int ->
  dim:int ->
  (dim:int -> Engine.t) ->
  t
(** [create ~executor ~partition ~shards ~dim make] builds [shards]
    engines, each constructed on its own executor slot (so domain-local
    allocation is born on the domain that will drive it). Defaults:
    executor [Seq], partition [Queries]. Raises [Invalid_argument] on
    [shards < 1], [dim < 1], malformed cut points, or an unavailable
    executor kind — and never leaks worker domains when the engine
    factory itself raises. *)

val engine : t -> Engine.t
(** Package as a uniform {!Engine.t} named ["<inner>+k<shards>"], with
    ["/range"] appended under element partitioning and ["/domains"]
    under the domains executor. All closures raise [Invalid_argument]
    after {!close}. *)

val shards : t -> int

val executor_kind : t -> Executor.kind

val partition : t -> partition
(** The partition discipline this instance runs (cuts are returned by
    copy). *)

val worker_domains : t -> int
(** Worker domains actually executing shard tasks:
    {!Executor.worker_count} of the underlying executor — [shards]
    under [Domains], [1] under [Seq]. The honest "cores" figure for
    bench reporting. *)

val owner : t -> int -> int
(** The shard a query id lives on: its {!Rendezvous.owner} under
    [Queries], its pinned home under [Elements]. Raises [Not_found]
    under [Elements] for ids that are not alive. *)

val queries_per_shard : t -> int array
(** Alive-query count per shard — the balance the partition is
    supposed to deliver (~[m/k] each for rendezvous hashing or
    well-chosen cuts). *)

val per_shard_metrics : t -> Rts_obs.Metrics.snapshot array
(** Each shard engine's own metric snapshot, in shard order — the
    per-shard work counters the bench records. *)

val metrics : t -> Rts_obs.Metrics.snapshot
(** Shard-layer counters ([shard_count], [shard_registered_total],
    [shard_terminated_total], [shard_elements_total] (stream elements,
    counted once), [shard_batches_total], [shard_dispatches_total],
    [shard_forwarded_total] (element deliveries beyond the owner, i.e.
    boundary forwarding — 0 under [Queries]),
    [shard_queries_min]/[shard_queries_max] balance gauges,
    [shard_executor_domains], [shard_straddlers]) merged over the
    per-shard engine snapshots; the [alive] gauge is the true total. *)

val close : t -> unit
(** Shut the executor down (joining its domains). Idempotent. *)

val factory :
  ?executor:Executor.kind ->
  ?partition:partition ->
  shards:int ->
  (dim:int -> Engine.t) ->
  (dim:int -> Engine.t) * (unit -> unit)
(** [factory ~executor ~partition ~shards make] is [(make', close_all)]:
    a factory producing sharded engines over [make] — a drop-in for
    [Scenario.run] factories and [Recovery.recover ~make] — plus a
    closer that shuts down every instance [make'] created so far. *)
