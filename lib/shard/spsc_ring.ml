(* Bounded single-producer / single-consumer ring.

   The producer (the coordinator) owns [tail], the consumer (a worker)
   owns [head]; each side mutates only its own index and reads the
   other's through an [Atomic]. Slot contents are plain writes published
   by the owning side's [Atomic.set] — the OCaml 5 memory model makes a
   non-atomic write visible to any reader that observes a later atomic
   write by the same thread (release/acquire through the index), so the
   ring is data-race-free without a lock on the hot path. On a pre-5
   runtime [Atomic] degrades to plain mutation and the ring is just a
   queue — correct, if pointless, which is exactly what the sequential
   executor backend needs from it.

   Capacity is rounded up to a power of two so position -> slot is a
   mask. Indices increase monotonically and never wrap in practice
   (63-bit ints at task granularity outlive the process).

   Consumers must clear a slot ([None]) before publishing the pop, so a
   drained ring holds no references: a closure queued once cannot keep
   its captures alive for the lifetime of the pool. *)

type 'a t = {
  buf : 'a option array;
  mask : int;
  head : int Atomic.t; (* next position to pop; advanced only by the consumer *)
  tail : int Atomic.t; (* next position to push; advanced only by the producer *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Spsc_ring.create: capacity < 1";
  if capacity > 1 lsl 30 then invalid_arg "Spsc_ring.create: capacity too large";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap lsl 1
  done;
  { buf = Array.make !cap None; mask = !cap - 1; head = Atomic.make 0; tail = Atomic.make 0 }

let capacity t = t.mask + 1

let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)

let is_empty t = length t = 0

let try_push t x =
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head > t.mask then false
  else begin
    t.buf.(tail land t.mask) <- Some x;
    (* publish: the slot write above happens-before any pop that sees
       the new tail *)
    Atomic.set t.tail (tail + 1);
    true
  end

let try_pop t =
  let head = Atomic.get t.head in
  if Atomic.get t.tail - head <= 0 then None
  else begin
    let i = head land t.mask in
    let x = t.buf.(i) in
    (* drop the reference before releasing the slot back to the producer *)
    t.buf.(i) <- None;
    Atomic.set t.head (head + 1);
    x
  end
