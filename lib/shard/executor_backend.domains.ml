(* Domain-backed executor (OCaml >= 5.0; selected by dune when
   runtime_events is present).

   One long-lived Domain per slot, each consuming from its own SPSC
   mailbox: the coordinator is the single producer, the worker the
   single consumer. Tasks are plain closures; a per-call countdown
   latch gives the barrier. Mutex/Condition on both the mailboxes and
   the latch provide the happens-before edges that make the results
   (and everything the tasks mutated) visible to the coordinator under
   the OCaml 5 memory model.

   Domains parked in Condition.wait are blocked outside the OCaml
   runtime, so an idle pool does not delay stop-the-world collections
   on the coordinator. *)

let available = true

let parallelism_hint () = Domain.recommended_domain_count ()

type task = Run of (unit -> unit) | Quit

module Mailbox = struct
  (* SPSC: exactly one producer (the coordinator) and one consumer (the
     slot's domain). A Queue under a mutex is enough at batch
     granularity — the mailbox is touched once per dispatched batch,
     not per element. *)
  type t = { m : Mutex.t; c : Condition.t; q : task Queue.t }

  let create () = { m = Mutex.create (); c = Condition.create (); q = Queue.create () }

  let put t x =
    Mutex.lock t.m;
    Queue.push x t.q;
    Condition.signal t.c;
    Mutex.unlock t.m

  let take t =
    Mutex.lock t.m;
    while Queue.is_empty t.q do
      Condition.wait t.c t.m
    done;
    let x = Queue.pop t.q in
    Mutex.unlock t.m;
    x
end

module Latch = struct
  type t = { m : Mutex.t; c : Condition.t; mutable pending : int }

  let create n = { m = Mutex.create (); c = Condition.create (); pending = n }

  let arrive t =
    Mutex.lock t.m;
    t.pending <- t.pending - 1;
    if t.pending = 0 then Condition.broadcast t.c;
    Mutex.unlock t.m

  let wait t =
    Mutex.lock t.m;
    while t.pending > 0 do
      Condition.wait t.c t.m
    done;
    Mutex.unlock t.m
end

type pool = {
  mailboxes : Mailbox.t array;
  domains : unit Domain.t array;
  mutable closed : bool;
}

let spawn n =
  if n < 1 then invalid_arg "Executor_backend.spawn: n < 1";
  let mailboxes = Array.init n (fun _ -> Mailbox.create ()) in
  let domains =
    Array.map
      (fun mb ->
        Domain.spawn (fun () ->
            let rec loop () =
              match Mailbox.take mb with
              | Run f ->
                  f ();
                  loop ()
              | Quit -> ()
            in
            loop ()))
      mailboxes
  in
  { mailboxes; domains; closed = false }

let check p = if p.closed then invalid_arg "Executor_backend: pool closed"

(* Fan a closure out to a subset of slots, barrier, then re-raise the
   lowest-slot failure (if any) with its original backtrace. Results and
   errors live in plain arrays: each cell is written by exactly one
   worker before it arrives at the latch, and read by the coordinator
   only after the latch opens. *)
let exec_slots p slots f =
  check p;
  let n = Array.length slots in
  let results = Array.make n None in
  let errors = Array.make n None in
  let latch = Latch.create n in
  Array.iteri
    (fun j slot ->
      Mailbox.put p.mailboxes.(slot)
        (Run
           (fun () ->
             (try results.(j) <- Some (f slot)
              with e -> errors.(j) <- Some (e, Printexc.get_raw_backtrace ()));
             Latch.arrive latch)))
    slots;
  Latch.wait latch;
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors;
  Array.map (function Some r -> r | None -> assert false) results

let exec p f = exec_slots p (Array.init (Array.length p.mailboxes) Fun.id) f

let exec_on p i f =
  if i < 0 || i >= Array.length p.mailboxes then
    invalid_arg "Executor_backend.exec_on: slot out of range";
  (exec_slots p [| i |] (fun _ -> f ())).(0)

let close p =
  if not p.closed then begin
    p.closed <- true;
    Array.iter (fun mb -> Mailbox.put mb Quit) p.mailboxes;
    Array.iter Domain.join p.domains
  end
