(* Domain-backed executor (OCaml >= 5.0; selected by dune when
   runtime_events is present).

   One long-lived Domain per slot, each draining its own bounded
   Spsc_ring of tasks: the coordinator is the single producer, the
   worker the single consumer, so the hot enqueue/dequeue path is
   lock-free. A worker that finds its ring empty spins briefly
   (ingestion pipelines re-fill rings within microseconds), then parks
   on a Mutex/Condition pair; the producer pings the condition only
   when the [sleeping] flag says someone is actually parked, so the
   steady-state cost of a put is one push plus one uncontended
   lock/unlock.

   Teardown discipline (the PR-6 bugfix): a task exception must never
   kill a worker loop, and [close] must hand every ring a [Quit] and
   [Domain.join] every domain before any exception propagates —
   otherwise a raise during dispatch leaks parked domains, and OCaml
   caps live domains low enough (~128) that a leaky create/close cycle
   exhausts the runtime. Task exceptions during [exec] are captured
   per-slot and re-raised lowest-slot-first after the barrier; a raw
   exception escaping a [post]ed task (frontends wrap those, so this is
   a last line of defence) is stashed in [escaped] and surfaced at
   [close], after all domains are joined.

   Domains parked in Condition.wait are blocked outside the OCaml
   runtime, so an idle pool does not delay stop-the-world collections
   on the coordinator. *)

let available = true

let parallelism_hint () = Domain.recommended_domain_count ()

type task = Run of (unit -> unit) | Quit

module Chan = struct
  (* Per-slot task channel: SPSC ring + park/unpark. Exactly one
     producer (the coordinator) and one consumer (the slot's domain).
     [sleeping] is only read/written under [m], which is what makes the
     wakeup race-free: the consumer re-checks the ring *after* setting
     [sleeping] under the lock, so a push that missed the flag is seen
     by that re-check, and a push that sees the flag signals under the
     same lock. *)
  type t = {
    ring : task Spsc_ring.t;
    m : Mutex.t;
    c : Condition.t;
    mutable sleeping : bool;
  }

  let create () =
    { ring = Spsc_ring.create ~capacity:1024; m = Mutex.create (); c = Condition.create (); sleeping = false }

  let put t x =
    while not (Spsc_ring.try_push t.ring x) do
      (* ring full: the worker is behind; let it drain *)
      Domain.cpu_relax ()
    done;
    Mutex.lock t.m;
    if t.sleeping then Condition.signal t.c;
    Mutex.unlock t.m

  let take t =
    let spins = ref 256 in
    let rec spin () =
      match Spsc_ring.try_pop t.ring with
      | Some x -> x
      | None ->
          if !spins > 0 then begin
            decr spins;
            Domain.cpu_relax ();
            spin ()
          end
          else park ()
    and park () =
      Mutex.lock t.m;
      t.sleeping <- true;
      let rec wait () =
        match Spsc_ring.try_pop t.ring with
        | Some x ->
            t.sleeping <- false;
            Mutex.unlock t.m;
            x
        | None ->
            Condition.wait t.c t.m;
            wait ()
      in
      wait ()
    in
    spin ()
end

module Latch = struct
  type t = { m : Mutex.t; c : Condition.t; mutable pending : int }

  let create n =
    if n < 0 then invalid_arg "Executor_backend.Latch.create: negative count";
    { m = Mutex.create (); c = Condition.create (); pending = n }

  let arrive t =
    Mutex.lock t.m;
    t.pending <- t.pending - 1;
    if t.pending = 0 then Condition.broadcast t.c;
    Mutex.unlock t.m

  (* pending = 0 (empty dispatch) falls straight through — an empty
     barrier is a no-op, never a deadlock *)
  let wait t =
    Mutex.lock t.m;
    while t.pending > 0 do
      Condition.wait t.c t.m
    done;
    Mutex.unlock t.m

  (* Re-arm a latch whose previous cycle has fully completed (pending =
     0 and [wait] returned). Only the coordinator calls this, and only
     between cycles, so no arrival can race the store. *)
  let reset t n =
    Mutex.lock t.m;
    t.pending <- n;
    Mutex.unlock t.m
end

type pool = {
  chans : Chan.t array;
  domains : unit Domain.t array;
  (* first raw exception to escape a posted task on each slot; written
     by that slot's worker only, read after the joins in [close] *)
  escaped : (exn * Printexc.raw_backtrace) option array;
  (* preallocated [drain] machinery: one reusable latch and one shared
     sentinel task, built at spawn so the per-batch barrier on the
     ingestion hot path allocates nothing *)
  drain_latch : Latch.t;
  drain_task : task;
  mutable closed : bool;
}

let spawn n =
  if n < 1 then invalid_arg "Executor_backend.spawn: n < 1";
  let chans = Array.init n (fun _ -> Chan.create ()) in
  let escaped = Array.make n None in
  let drain_latch = Latch.create 0 in
  let drain_task = Run (fun () -> Latch.arrive drain_latch) in
  let domains =
    Array.mapi
      (fun i ch ->
        Domain.spawn (fun () ->
            let rec loop () =
              match Chan.take ch with
              | Run f ->
                  (try f ()
                   with e ->
                     if escaped.(i) = None then escaped.(i) <- Some (e, Printexc.get_raw_backtrace ()));
                  loop ()
              | Quit -> ()
            in
            loop ()))
      chans
  in
  { chans; domains; escaped; drain_latch; drain_task; closed = false }

let check p = if p.closed then invalid_arg "Executor_backend: pool closed"

(* Fan a closure out to a subset of slots, barrier, then re-raise the
   lowest-slot failure (if any) with its original backtrace. Results and
   errors live in plain arrays: each cell is written by exactly one
   worker before it arrives at the latch, and read by the coordinator
   only after the latch opens — so the barrier is also what guarantees
   no slot is still running when an exception propagates. *)
let exec_slots p slots f =
  check p;
  let n = Array.length slots in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let latch = Latch.create n in
    Array.iteri
      (fun j slot ->
        Chan.put p.chans.(slot)
          (Run
             (fun () ->
               (try results.(j) <- Some (f slot)
                with e -> errors.(j) <- Some (e, Printexc.get_raw_backtrace ()));
               Latch.arrive latch)))
      slots;
    Latch.wait latch;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map (function Some r -> r | None -> assert false) results
  end

let exec p f = exec_slots p (Array.init (Array.length p.chans) Fun.id) f

let exec_on p i f =
  if i < 0 || i >= Array.length p.chans then
    invalid_arg "Executor_backend.exec_on: slot out of range";
  (exec_slots p [| i |] (fun _ -> f ())).(0)

let post p i f =
  check p;
  if i < 0 || i >= Array.length p.chans then invalid_arg "Executor_backend.post: slot out of range";
  Chan.put p.chans.(i) (Run f)

(* Barrier over posted work without the allocation freight of [exec]
   (per-call result/error arrays, a fresh latch, one closure per slot):
   re-arm the pool's latch, push the one preallocated sentinel task down
   every ring (FIFO ⇒ it runs after all previously posted tasks), wait.
   Each slot runs the shared sentinel exactly once per cycle, so the
   arrive count matches the re-armed pending count. *)
let drain p =
  check p;
  let n = Array.length p.chans in
  Latch.reset p.drain_latch n;
  for i = 0 to n - 1 do
    Chan.put p.chans.(i) p.drain_task
  done;
  Latch.wait p.drain_latch

let close p =
  if not p.closed then begin
    p.closed <- true;
    (* every ring gets Quit (FIFO: it runs after any still-queued
       tasks), and every domain is joined, before anything re-raises *)
    Array.iter (fun ch -> Chan.put ch Quit) p.chans;
    let first_join_failure = ref None in
    Array.iter
      (fun d ->
        try Domain.join d
        with e ->
          if !first_join_failure = None then
            first_join_failure := Some (e, Printexc.get_raw_backtrace ()))
      p.domains;
    (match !first_join_failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      p.escaped
  end
