(** Bounded single-producer / single-consumer ring buffer.

    Lock-free on OCaml 5: the producer side mutates only the tail index,
    the consumer side only the head, and slot contents are published
    through the [Atomic] index writes (release/acquire), so one producer
    and one consumer may run on different domains with no mutex on the
    hot path. {b The SPSC contract is the caller's obligation}: at most
    one domain ever pushes, at most one ever pops.

    This is the task channel under {!Executor_backend}'s domains
    backend (the coordinator is the producer, each worker domain the
    consumer of its own ring) and the conveyor belt of the shard
    layer's route->feed pipeline. *)

type 'a t

val create : capacity:int -> 'a t
(** Ring with room for at least [capacity] elements (rounded up to a
    power of two). Raises [Invalid_argument] if [capacity < 1]. *)

val capacity : _ t -> int
(** Actual (rounded) capacity. *)

val try_push : 'a t -> 'a -> bool
(** Producer side: enqueue, or return [false] if the ring is full. *)

val try_pop : 'a t -> 'a option
(** Consumer side: dequeue the oldest element, or [None] if empty. The
    vacated slot is cleared so the ring retains no reference. *)

val length : _ t -> int
(** Elements currently queued (exact for either endpoint, a snapshot
    for anyone else). *)

val is_empty : _ t -> bool
