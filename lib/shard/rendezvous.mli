(** Rendezvous (highest-random-weight) placement of query ids on shards.

    Every (id, shard) pair gets a pseudo-random 64-bit score from a
    splitmix64-style finalizer; the id lives on the shard with the
    highest score. The mapping is

    - {e deterministic}: a pure function of [(id, shards)] — the same on
      every run, platform and executor, which is what makes the sharded
      maturity log reproducible;
    - {e balanced}: scores are i.i.d.-uniform per shard, so [m] ids
      spread ~[m/k] per shard with binomial concentration;
    - {e monotone}: growing [shards] from [k] to [k+1] only ever moves
      ids onto the {e new} shard — ids never reshuffle among surviving
      shards (the classic HRW property, asserted by the test suite). *)

val score : shard:int -> int -> int64
(** The raw mixing score — exposed for tests; compare with
    [Int64.unsigned_compare]. *)

val owner : shards:int -> int -> int
(** [owner ~shards id] is the shard in [0, shards) that owns [id].
    Raises [Invalid_argument] if [shards < 1]. *)
