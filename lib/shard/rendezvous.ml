(* Highest-random-weight hashing over (query id, shard) pairs.

   Int64 arithmetic keeps the mixing function identical on 32- and
   64-bit platforms (OCaml's native int is 63-bit on the CI runners but
   31-bit elsewhere); the constants are the splitmix64 finalizer's. Not
   a hot path — placement runs per REGISTER/TERMINATE, never per
   element. *)

let mix64 (z : int64) =
  let open Int64 in
  let z = add z 0x9e3779b97f4a7c15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let score ~shard id =
  (* Decorrelate the shard index from the id with an FNV-prime multiply
     before mixing, so [score ~shard:s id] and [score ~shard:(s+1) id]
     share no low-bit structure. *)
  mix64 (Int64.logxor (Int64.of_int id) (Int64.mul (Int64.of_int (shard + 1)) 0x100000001b3L))

let owner ~shards id =
  if shards < 1 then invalid_arg "Rendezvous.owner: shards < 1";
  if shards = 1 then 0
  else begin
    let best = ref 0 in
    let best_score = ref (score ~shard:0 id) in
    for s = 1 to shards - 1 do
      let sc = score ~shard:s id in
      if Int64.unsigned_compare sc !best_score > 0 then begin
        best := s;
        best_score := sc
      end
    done;
    !best
  end
