(** Element partitioning by endpoint subrange.

    [shards - 1] strictly increasing cut points split dimension 0 into
    [shards] disjoint half-open subranges — the endpoint-tree canonical
    decomposition at the shard granularity. Each stream element has
    exactly one owning subrange; each alive query is {e pinned} to the
    shard owning the low endpoint of its dim-0 interval. A query whose
    interval straddles cuts additionally {e subscribes} its home shard
    to every subrange it intersects (a [shards x shards] interest
    matrix), so elements from those subranges are forwarded to the home
    as long as at least one straddler needs them.

    Invariants maintained for the shard layer:
    - every element is routed to its owner, plus any interested homes —
      so a query's home shard sees {e every} element whose dim-0 value
      lies in the query's interval;
    - every query lives on exactly one shard, so per-shard maturity
      logs are disjoint and merge exactly;
    - over-forwarded elements are harmless: engines credit only queries
      whose rect contains the value.

    The router is single-threaded coordinator state: never share one
    across domains. *)

type t

type span = { home : int; first : int; last : int }
(** Placement of a query interval: it intersects subranges
    [first..last] and is pinned to [home] (= [first]). *)

val create : shards:int -> cuts:float array -> t
(** Router over [shards] subranges separated by [cuts]. Raises
    [Invalid_argument] unless [Array.length cuts = shards - 1] and the
    cuts are strictly increasing and non-NaN. The array is copied. *)

val uniform_cuts : shards:int -> lo:float -> hi:float -> float array
(** Evenly spaced cut points over [\[lo, hi)]; the natural choice when
    the element distribution over the key domain is roughly uniform. *)

val shards : t -> int

val cuts : t -> float array
(** Copy of the cut points. *)

val owner_of_value : t -> float -> int
(** Subrange owning a dim-0 value: the number of cuts at or below it.
    Total — NaN lands in subrange 0 and is left for engine validation
    to reject. *)

val span_of_interval : t -> lo:float -> hi:float -> span
(** Placement a query with dim-0 interval [\[lo, hi)] would get,
    without registering anything. *)

val register : t -> id:int -> lo:float -> hi:float -> int
(** Place query [id]: record its span, subscribe its home to every
    subrange it straddles, and return the home shard. Registering an
    id that is already alive returns its existing home and changes
    nothing (the engine reports the duplicate). *)

val forget : t -> int -> unit
(** Release query [id]'s placement and subscriptions (on terminate or
    maturity). Unknown ids are ignored. *)

val home : t -> int -> int option
(** Home shard of an alive query, if the router knows it. *)

val iter_targets : t -> float -> (owner:bool -> int -> unit) -> unit
(** Shards that must ingest an element with the given dim-0 value: the
    owning subrange first (with [~owner:true]), then every other shard
    holding at least one subscribed straddler ([~owner:false]). Each
    shard is visited at most once. *)

val targets : t -> float -> int list
(** [iter_targets] collected into a sorted list (tests, single-element
    process paths). *)

val straddlers : t -> int
(** Alive queries currently straddling at least one cut. *)

val alive : t -> int
(** Alive queries known to the router. *)
