open Rts_core
module Metrics = Rts_obs.Metrics

(* Sharding partitions the *queries*, never the elements: every shard
   engine sees the full element stream, restricted to the queries
   rendezvous-hashing assigns it. Maturity of a query depends only on
   that query's own accumulated weight, so the disjoint partition
   matures exactly the same (element, query) pairs as one big engine —
   per-shard matured lists are sorted and mutually disjoint, and an
   ascending merge reproduces the unsharded output verbatim.

   Ownership discipline: a shard's engine state is touched only by
   closures dispatched onto that shard's executor slot. Under the
   domains executor the slot is a dedicated Domain, so each engine's
   mutable state is single-domain-confined; the executor's
   mailbox/latch mutexes provide the happens-before edges that make
   results visible at the barrier. Under the Seq executor everything
   runs inline and the same code is the reference semantics. *)

type t = {
  dim : int;
  nshards : int;
  exec : Executor.t;
  engines : Engine.t array;
  base_name : string;
  (* Shard-layer tallies: stream-level quantities counted exactly once
     (the per-shard engines each count the whole stream themselves). *)
  reg : Metrics.t;
  c_registered : Metrics.counter;
  c_terminated : Metrics.counter;
  c_elements : Metrics.counter;
  c_batches : Metrics.counter;
  c_dispatches : Metrics.counter;
  mutable closed : bool;
}

let create ?(executor = Executor.Seq) ~shards ~dim make =
  if shards < 1 then invalid_arg "Shard.create: shards < 1";
  if dim < 1 then invalid_arg "Shard.create: dim < 1";
  let exec = Executor.create ~kind:executor ~shards () in
  (* Build each engine on its own slot — sequentially ([run_on] waits),
     so the factory is never invoked concurrently, but on the domain
     that will drive the engine, so domain-local allocation (minor
     heaps, lazily-grown tables) is born where it is used. *)
  let engines =
    Array.init shards (fun i -> Executor.run_on exec i (fun () -> make ~dim))
  in
  let reg = Metrics.create () in
  {
    dim;
    nshards = shards;
    exec;
    engines;
    base_name = engines.(0).Engine.name;
    reg;
    c_registered = Metrics.counter reg "shard_registered_total";
    c_terminated = Metrics.counter reg "shard_terminated_total";
    c_elements = Metrics.counter reg "shard_elements_total";
    c_batches = Metrics.counter reg "shard_batches_total";
    c_dispatches = Metrics.counter reg "shard_dispatches_total";
    closed = false;
  }

let shards t = t.nshards

let executor_kind t = Executor.kind t.exec

let owner t id = Rendezvous.owner ~shards:t.nshards id

let check t = if t.closed then invalid_arg "Shard: engine is closed"

(* ---- control operations: routed to the owning shard ---- *)

let register t q =
  check t;
  let s = owner t q.Types.id in
  Executor.run_on t.exec s (fun () -> t.engines.(s).Engine.register q);
  Metrics.incr t.c_registered;
  Metrics.incr t.c_dispatches

let register_batch t qs =
  check t;
  (match qs with
  | [] -> ()
  | _ ->
      (* Partition into per-shard buckets preserving list order, then
         fan out once: each shard ingests its sub-batch with the same
         relative order the caller gave, so engines that exploit the
         batch (the DT endpoint-tree build) see a faithful slice. *)
      let buckets = Array.make t.nshards [] in
      List.iter (fun q -> let s = owner t q.Types.id in buckets.(s) <- q :: buckets.(s)) qs;
      let buckets = Array.map List.rev buckets in
      ignore
        (Executor.run_all t.exec (fun i ->
             match buckets.(i) with
             | [] -> ()
             | b -> t.engines.(i).Engine.register_batch b));
      Metrics.add t.c_registered (List.length qs);
      Metrics.incr t.c_dispatches)

let terminate t id =
  check t;
  let s = owner t id in
  Executor.run_on t.exec s (fun () -> t.engines.(s).Engine.terminate id);
  Metrics.incr t.c_terminated;
  Metrics.incr t.c_dispatches

(* ---- stream operations: fan out to every shard, merge ascending ----

   Per-shard matured lists are each ascending and mutually disjoint
   (a query lives on exactly one shard), so a sorted merge in slot
   order is the unsharded engine's output verbatim. *)

let merge_matured parts =
  Array.fold_left (fun acc l -> List.merge compare acc l) [] parts

let process t e =
  check t;
  let parts = Executor.run_all t.exec (fun i -> t.engines.(i).Engine.process e) in
  Metrics.incr t.c_elements;
  Metrics.incr t.c_dispatches;
  merge_matured parts

let feed_batch t arr =
  check t;
  Metrics.incr t.c_batches;
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let parts =
      Executor.run_all t.exec (fun i -> t.engines.(i).Engine.feed_batch arr)
    in
    Metrics.add t.c_elements n;
    Metrics.incr t.c_dispatches;
    merge_matured parts
  end

(* ---- observation: also routed through the executor, preserving the
   single-domain confinement of each engine's state ---- *)

let alive t =
  check t;
  Array.fold_left ( + ) 0 (Executor.run_all t.exec (fun i -> t.engines.(i).Engine.alive ()))

let alive_snapshot t =
  check t;
  let parts =
    Executor.run_all t.exec (fun i -> t.engines.(i).Engine.alive_snapshot ())
  in
  Engine.sort_snapshot (List.concat (Array.to_list parts))

let queries_per_shard t =
  check t;
  Executor.run_all t.exec (fun i -> t.engines.(i).Engine.alive ())

let per_shard_metrics t =
  check t;
  Executor.run_all t.exec (fun i -> t.engines.(i).Engine.metrics ())

let metrics t =
  check t;
  let per_shard = per_shard_metrics t in
  let counts = queries_per_shard t in
  let total = Array.fold_left ( + ) 0 counts in
  let qmin = Array.fold_left min max_int counts in
  let qmax = Array.fold_left max 0 counts in
  let domains =
    match executor_kind t with Executor.Domains -> t.nshards | Executor.Seq -> 0
  in
  (* [merge] lets the *second* operand win gauges, so the layer gauges —
     in particular the true [alive] total, which would otherwise read as
     the last shard's local gauge — go last. *)
  let layer =
    Metrics.of_assoc
      [
        ("alive", Metrics.Gauge (float_of_int total));
        ("shard_count", Metrics.Gauge (float_of_int t.nshards));
        ("shard_queries_min", Metrics.Gauge (float_of_int qmin));
        ("shard_queries_max", Metrics.Gauge (float_of_int qmax));
        ("shard_executor_domains", Metrics.Gauge (float_of_int domains));
      ]
  in
  Metrics.merge_all (Array.to_list per_shard @ [ Metrics.snapshot t.reg; layer ])

let name t =
  Printf.sprintf "%s+k%d%s" t.base_name t.nshards
    (match executor_kind t with Executor.Domains -> "/domains" | Executor.Seq -> "")

let engine t =
  {
    Engine.name = name t;
    dim = t.dim;
    register = register t;
    register_batch = register_batch t;
    terminate = terminate t;
    process = process t;
    feed_batch = feed_batch t;
    alive = (fun () -> alive t);
    alive_snapshot = (fun () -> alive_snapshot t);
    metrics = (fun () -> metrics t);
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    Executor.close t.exec
  end

let factory ?executor ~shards make =
  let instances = ref [] in
  let make' ~dim =
    let t = create ?executor ~shards ~dim make in
    instances := t :: !instances;
    engine t
  in
  let close_all () =
    List.iter close !instances;
    instances := []
  in
  (make', close_all)
