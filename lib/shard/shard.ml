open Rts_core
module Metrics = Rts_obs.Metrics

(* Two ways to shard, one merge discipline.

   [Queries] (PR 5): partition the *queries* by rendezvous hash; every
   shard engine ingests the full element stream, restricted to the
   queries it owns. Simple and cut-free, but ingestion work is
   replicated k times — wall clock cannot scale.

   [Elements] (PR 6): partition the *key line* by cut points
   (Range_router). Each element is routed to the shard owning its dim-0
   subrange (plus any shards holding subscribed boundary-straddling
   queries), and each query is pinned whole to the shard owning its low
   endpoint. Each shard now ingests ~1/k of the stream, so ingestion
   parallelizes for real.

   Both modes preserve the same invariant, which is what makes the
   merge exact: maturity of a query depends only on that query's own
   accumulated weight; a query lives on exactly one shard; and that
   shard sees every element stabbing the query (in Queries mode because
   it sees everything, in Elements mode by the router's owner+interest
   routing). Per-shard matured lists are therefore mutually disjoint
   and an ascending merge reproduces the unsharded output verbatim.

   Ownership discipline: a shard's engine state is touched only by
   closures dispatched onto that shard's executor slot. Under the
   domains executor the slot is a dedicated Domain, so each engine's
   mutable state is single-domain-confined; the executor's ring/latch
   synchronization provides the happens-before edges that make results
   visible at the barrier. The router, by contrast, is coordinator
   state — it is only ever touched by the caller's thread. Under the
   Seq executor everything runs inline and the same code is the
   reference semantics. *)

type partition = Queries | Elements of float array

type t = {
  dim : int;
  nshards : int;
  exec : Executor.t;
  engines : Engine.t array;
  base_name : string;
  router : Range_router.t option; (* Some iff partition = Elements *)
  (* Shard-layer tallies: stream-level quantities counted exactly once
     (per-shard engines count only what was routed to them in Elements
     mode, and the whole stream each in Queries mode). *)
  reg : Metrics.t;
  c_registered : Metrics.counter;
  c_terminated : Metrics.counter;
  c_elements : Metrics.counter;
  c_batches : Metrics.counter;
  c_dispatches : Metrics.counter;
  c_forwarded : Metrics.counter;
  (* Coordinator-owned reusable routing buffers for the batched
     Elements pipeline: seg_buf.(s)[0 .. seg_len.(s)-1] collects the
     elements of the current segment bound for shard s. Growable,
     never shrunk, reset per segment — replacing the per-segment
     list-cons buckets (3 words per routed element) with appends into
     arrays that survive across batches. Only the coordinator's thread
     touches them; posted tasks receive exact-size copies. *)
  seg_buf : Types.elem array array;
  seg_len : int array;
  mutable closed : bool;
}

let create ?(executor = Executor.Seq) ?(partition = Queries) ~shards ~dim make =
  if shards < 1 then invalid_arg "Shard.create: shards < 1";
  if dim < 1 then invalid_arg "Shard.create: dim < 1";
  (* validate the cuts before spawning anything *)
  let router =
    match partition with
    | Queries -> None
    | Elements cuts -> Some (Range_router.create ~shards ~cuts)
  in
  let exec = Executor.create ~kind:executor ~shards () in
  (* Build each engine on its own slot — sequentially ([run_on] waits),
     so the factory is never invoked concurrently, but on the domain
     that will drive the engine, so domain-local allocation (minor
     heaps, lazily-grown tables) is born where it is used. If the
     factory raises partway, close the executor first: an exception
     here must not leak parked worker domains. *)
  let engines =
    try Array.init shards (fun i -> Executor.run_on exec i (fun () -> make ~dim))
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      Executor.close exec;
      Printexc.raise_with_backtrace e bt
  in
  let reg = Metrics.create () in
  {
    dim;
    nshards = shards;
    exec;
    engines;
    base_name = engines.(0).Engine.name;
    router;
    reg;
    c_registered = Metrics.counter reg "shard_registered_total";
    c_terminated = Metrics.counter reg "shard_terminated_total";
    c_elements = Metrics.counter reg "shard_elements_total";
    c_batches = Metrics.counter reg "shard_batches_total";
    c_dispatches = Metrics.counter reg "shard_dispatches_total";
    c_forwarded = Metrics.counter reg "shard_forwarded_total";
    seg_buf = Array.make shards [||];
    seg_len = Array.make shards 0;
    closed = false;
  }

let shards t = t.nshards

let executor_kind t = Executor.kind t.exec

let partition t = match t.router with None -> Queries | Some r -> Elements (Range_router.cuts r)

let worker_domains t = Executor.worker_count t.exec

(* dim-0 interval of a query's rect, the router's placement key *)
let interval_of_query q = (q.Types.rect.Types.lo.(0), q.Types.rect.Types.hi.(0))

let owner t id =
  match t.router with
  | None -> Rendezvous.owner ~shards:t.nshards id
  | Some r -> ( match Range_router.home r id with Some s -> s | None -> raise Not_found)

let check t = if t.closed then invalid_arg "Shard: engine is closed"

(* ---- control operations: routed to the owning shard ---- *)

let place t q =
  match t.router with
  | None -> (Rendezvous.owner ~shards:t.nshards q.Types.id, false)
  | Some r ->
      let fresh = Range_router.home r q.Types.id = None in
      let lo, hi = interval_of_query q in
      (Range_router.register r ~id:q.Types.id ~lo ~hi, fresh)

let unplace t id = match t.router with None -> () | Some r -> Range_router.forget r id

let register t q =
  check t;
  let s, fresh = place t q in
  (try Executor.run_on t.exec s (fun () -> t.engines.(s).Engine.register q)
   with e ->
     (* the engine rejected the query (invalid rect, duplicate id, ...):
        roll back the placement we just recorded for it *)
     let bt = Printexc.get_raw_backtrace () in
     if fresh then unplace t q.Types.id;
     Printexc.raise_with_backtrace e bt);
  Metrics.incr t.c_registered;
  Metrics.incr t.c_dispatches

let register_batch t qs =
  check t;
  match qs with
  | [] -> ()
  | _ ->
      (* Partition into per-shard buckets preserving list order, then
         fan out once: each shard ingests its sub-batch with the same
         relative order the caller gave, so engines that exploit the
         batch (the DT endpoint-tree build) see a faithful slice. *)
      let buckets = Array.make t.nshards [] in
      let placed = ref [] in
      List.iter
        (fun q ->
          let s, fresh = place t q in
          if fresh then placed := q.Types.id :: !placed;
          buckets.(s) <- q :: buckets.(s))
        qs;
      let buckets = Array.map List.rev buckets in
      (try
         ignore
           (Executor.run_all t.exec (fun i ->
                match buckets.(i) with
                | [] -> ()
                | b -> t.engines.(i).Engine.register_batch b))
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         List.iter (unplace t) !placed;
         Printexc.raise_with_backtrace e bt);
      Metrics.add t.c_registered (List.length qs);
      Metrics.incr t.c_dispatches

let terminate t id =
  check t;
  let s = owner t id in
  Executor.run_on t.exec s (fun () -> t.engines.(s).Engine.terminate id);
  unplace t id;
  Metrics.incr t.c_terminated;
  Metrics.incr t.c_dispatches

(* ---- stream operations ----

   Per-shard matured lists are each ascending and mutually disjoint
   (a query lives on exactly one shard), so a sorted merge in slot
   order is the unsharded engine's output verbatim. *)

let merge_matured parts =
  Array.fold_left (fun acc l -> List.merge compare acc l) [] parts

(* a matured query is gone from its engine; drop its routing state too *)
let release_matured t matured = List.iter (unplace t) matured

let elem_key t e =
  (* routing reads value.(0) before the engines validate the element;
     malformed elements route somewhere harmless (NaN and the empty
     vector land in subrange 0) and the engine raises there, exactly as
     the unsharded engine would *)
  if t.dim >= 1 && Array.length e.Types.value >= 1 then e.Types.value.(0) else Float.nan

let process t e =
  check t;
  let parts =
    match t.router with
    | None -> Executor.run_all t.exec (fun i -> t.engines.(i).Engine.process e)
    | Some r ->
        let forwarded = ref 0 in
        let out = ref [] in
        Range_router.iter_targets r (elem_key t e) (fun ~owner s ->
            if not owner then incr forwarded;
            out := Executor.run_on t.exec s (fun () -> t.engines.(s).Engine.process e) :: !out);
        Metrics.add t.c_forwarded !forwarded;
        Array.of_list (List.rev !out)
  in
  Metrics.incr t.c_elements;
  Metrics.incr t.c_dispatches;
  let matured = merge_matured parts in
  release_matured t matured;
  matured

(* Elements mode, batched: the route->feed pipeline. The coordinator
   walks the batch in segments; for each segment it buckets elements by
   target shard (stream order preserved) and posts the sub-batches
   asynchronously onto the slots' rings, so shard s can be feeding
   segment j while the coordinator routes segment j+1. One barrier at
   the end of the batch collects maturities and re-raises any slot
   failure (lowest slot first).

   Segment size balances pipeline depth against per-shard sub-batch
   size: engines amortize per-batch work (the DT's sort + cursor walk)
   over the sub-batch, so don't shred a batch into slivers just to
   overlap with routing — keep at least ~128 elements per shard per
   segment and at most 4 segments per batch. *)
(* append [e] to shard [s]'s segment buffer, doubling on demand; the
   buffer persists across segments and batches, so steady-state routing
   allocates only the exact-size copies handed to the posted tasks *)
let seg_push t s e =
  let b = t.seg_buf.(s) in
  let len = t.seg_len.(s) in
  if len >= Array.length b then begin
    let nb = Array.make (max 64 (2 * len)) e in
    Array.blit b 0 nb 0 len;
    t.seg_buf.(s) <- nb
  end;
  Array.unsafe_set t.seg_buf.(s) len e;
  t.seg_len.(s) <- len + 1

let feed_batch_routed t r arr =
  let n = Array.length arr in
  let k = t.nshards in
  let seg = max (128 * k) ((n + 3) / 4) in
  (* acc.(s) is written only by slot s's tasks (FIFO per slot) and read
     by the coordinator only after the barrier *)
  let acc = Array.make k [] in
  let forwarded = ref 0 in
  let off = ref 0 in
  while !off < n do
    let len = min seg (n - !off) in
    (* forward walk appends in stream order into the reusable per-slot
       buffers (no per-element list cells) *)
    for j = !off to !off + len - 1 do
      let e = Array.unsafe_get arr j in
      Range_router.iter_targets r (elem_key t e) (fun ~owner s ->
          if not owner then incr forwarded;
          seg_push t s e)
    done;
    for s = 0 to k - 1 do
      let blen = t.seg_len.(s) in
      if blen > 0 then begin
        (* exact-size copy: the posted task owns [sub] outright, so the
           coordinator is free to overwrite the buffer while slot [s] is
           still feeding this segment *)
        let sub = Array.sub t.seg_buf.(s) 0 blen in
        t.seg_len.(s) <- 0;
        Executor.post t.exec s (fun () ->
            match t.engines.(s).Engine.feed_batch sub with
            | [] -> ()
            | m -> acc.(s) <- List.rev_append m acc.(s))
      end
    done;
    off := !off + len
  done;
  Executor.barrier t.exec;
  Metrics.add t.c_forwarded !forwarded;
  (* per-slot accumulators are reverse-chronological fragments of
     ascending lists; flatten and re-sort into the canonical ascending
     maturity order *)
  Engine.sort_matured
    (Array.fold_left (fun a l -> List.rev_append l a) [] acc)

let feed_batch t arr =
  check t;
  Metrics.incr t.c_batches;
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let matured =
      match t.router with
      | None ->
          merge_matured (Executor.run_all t.exec (fun i -> t.engines.(i).Engine.feed_batch arr))
      | Some r -> feed_batch_routed t r arr
    in
    Metrics.add t.c_elements n;
    Metrics.incr t.c_dispatches;
    release_matured t matured;
    matured
  end

(* ---- observation: also routed through the executor, preserving the
   single-domain confinement of each engine's state ---- *)

let alive t =
  check t;
  Array.fold_left ( + ) 0 (Executor.run_all t.exec (fun i -> t.engines.(i).Engine.alive ()))

let alive_snapshot t =
  check t;
  let parts =
    Executor.run_all t.exec (fun i -> t.engines.(i).Engine.alive_snapshot ())
  in
  Engine.sort_snapshot (List.concat (Array.to_list parts))

let queries_per_shard t =
  check t;
  Executor.run_all t.exec (fun i -> t.engines.(i).Engine.alive ())

let per_shard_metrics t =
  check t;
  Executor.run_all t.exec (fun i -> t.engines.(i).Engine.metrics ())

let metrics t =
  check t;
  let per_shard = per_shard_metrics t in
  let counts = queries_per_shard t in
  let total = Array.fold_left ( + ) 0 counts in
  let qmin = Array.fold_left min max_int counts in
  let qmax = Array.fold_left max 0 counts in
  let domains =
    match executor_kind t with Executor.Domains -> t.nshards | Executor.Seq -> 0
  in
  let straddlers = match t.router with None -> 0 | Some r -> Range_router.straddlers r in
  (* [merge] lets the *second* operand win gauges, so the layer gauges —
     in particular the true [alive] total, which would otherwise read as
     the last shard's local gauge — go last. *)
  let layer =
    Metrics.of_assoc
      [
        ("alive", Metrics.Gauge (float_of_int total));
        ("shard_count", Metrics.Gauge (float_of_int t.nshards));
        ("shard_queries_min", Metrics.Gauge (float_of_int qmin));
        ("shard_queries_max", Metrics.Gauge (float_of_int qmax));
        ("shard_executor_domains", Metrics.Gauge (float_of_int domains));
        ("shard_straddlers", Metrics.Gauge (float_of_int straddlers));
      ]
  in
  Metrics.merge_all (Array.to_list per_shard @ [ Metrics.snapshot t.reg; layer ])

let name t =
  Printf.sprintf "%s+k%d%s%s" t.base_name t.nshards
    (match t.router with None -> "" | Some _ -> "/range")
    (match executor_kind t with Executor.Domains -> "/domains" | Executor.Seq -> "")

let engine t =
  {
    Engine.name = name t;
    dim = t.dim;
    register = register t;
    register_batch = register_batch t;
    terminate = terminate t;
    process = process t;
    feed_batch = feed_batch t;
    alive = (fun () -> alive t);
    alive_snapshot = (fun () -> alive_snapshot t);
    metrics = (fun () -> metrics t);
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    Executor.close t.exec
  end

let factory ?executor ?partition ~shards make =
  let instances = ref [] in
  let make' ~dim =
    let t = create ?executor ?partition ~shards ~dim make in
    instances := t :: !instances;
    engine t
  in
  let close_all () =
    List.iter close !instances;
    instances := []
  in
  (make', close_all)
