type kind = Seq | Domains

let domains_available = Executor_backend.available

let default_kind = if domains_available then Domains else Seq

let parallelism_hint () = Executor_backend.parallelism_hint ()

let kind_to_string = function Seq -> "seq" | Domains -> "domains"

let kind_of_string = function
  | "seq" | "sequential" -> Ok Seq
  | "domains" | "par" -> Ok Domains
  | s -> Error (Printf.sprintf "unknown executor %S (expected seq or domains)" s)

type t = {
  shards : int;
  kind : kind;
  pool : Executor_backend.pool option; (* Some iff kind = Domains *)
  (* first exception raised by a task posted to each slot, captured by
     the frontend wrapper in [post]; slot i's cell is written only by
     slot i's (single) worker, and read/cleared by the coordinator only
     behind a barrier *)
  post_errors : (exn * Printexc.raw_backtrace) option array;
  mutable closed : bool;
}

let create ?(kind = Seq) ~shards () =
  if shards < 1 then invalid_arg "Executor.create: shards < 1";
  (match kind with
  | Domains when not domains_available ->
      invalid_arg
        "Executor.create: domains executor unavailable on this runtime (OCaml < 5.0) — use seq"
  | Domains | Seq -> ());
  let pool = match kind with Domains -> Some (Executor_backend.spawn shards) | Seq -> None in
  { shards; kind; pool; post_errors = Array.make shards None; closed = false }

let kind t = t.kind

let shards t = t.shards

let worker_count t = match t.kind with Seq -> 1 | Domains -> t.shards

let check t = if t.closed then invalid_arg "Executor: closed"

let run_all t f =
  check t;
  match t.pool with None -> Array.init t.shards f | Some p -> Executor_backend.exec p f

let run_on t i f =
  check t;
  if i < 0 || i >= t.shards then invalid_arg "Executor.run_on: shard out of range";
  match t.pool with None -> f () | Some p -> Executor_backend.exec_on p i f

let post t i f =
  check t;
  if i < 0 || i >= t.shards then invalid_arg "Executor.post: shard out of range";
  let task () =
    try f ()
    with e -> (
      match t.post_errors.(i) with
      | Some _ -> () (* keep the first failure per slot *)
      | None -> t.post_errors.(i) <- Some (e, Printexc.get_raw_backtrace ()))
  in
  match t.pool with None -> task () | Some p -> Executor_backend.post p i task

let barrier t =
  check t;
  (* drain every slot: rings are FIFO, so the backend's preallocated
     sentinel, queued after the posted tasks, completes only once they
     have all run — and unlike a no-op [exec] fan-out it allocates
     nothing per call *)
  (match t.pool with None -> () | Some p -> Executor_backend.drain p);
  let first = ref None in
  for i = t.shards - 1 downto 0 do
    match t.post_errors.(i) with
    | Some err ->
        t.post_errors.(i) <- None;
        first := Some err
    | None -> ()
  done;
  match !first with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.pool with Some p -> Executor_backend.close p | None -> ()
  end
