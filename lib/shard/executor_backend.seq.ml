(* Sequential stand-in backend (OCaml 4.14; selected by dune when
   runtime_events is absent). Runs every task inline on the caller, in
   slot order — trivially satisfying the ownership/barrier contract of
   executor_backend.mli and the lowest-slot-first exception rule (the
   first failing task raises immediately, before later slots run, which
   is observationally the same once the barrier would have re-raised
   it).

   [post] also runs inline, but honours the contract that a posted
   task's exception surfaces at [close] rather than at the post site:
   the Executor frontend wraps posted tasks to capture their errors
   itself, and this backend stashes any raw escapee exactly like the
   domains backend does. *)

let available = false

let parallelism_hint () = 1

type pool = {
  slots : int;
  escaped : (exn * Printexc.raw_backtrace) option array;
  mutable closed : bool;
}

let spawn n =
  if n < 1 then invalid_arg "Executor_backend.spawn: n < 1";
  { slots = n; escaped = Array.make n None; closed = false }

let check p = if p.closed then invalid_arg "Executor_backend: pool closed"

let exec p f =
  check p;
  Array.init p.slots f

let exec_on p i f =
  check p;
  if i < 0 || i >= p.slots then invalid_arg "Executor_backend.exec_on: slot out of range";
  f ()

let post p i f =
  check p;
  if i < 0 || i >= p.slots then invalid_arg "Executor_backend.post: slot out of range";
  try f ()
  with e -> if p.escaped.(i) = None then p.escaped.(i) <- Some (e, Printexc.get_raw_backtrace ())

(* posted tasks ran inline at the post site, so there is nothing to
   wait for — the drain is the identity *)
let drain p = check p

let close p =
  if not p.closed then begin
    p.closed <- true;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      p.escaped
  end
