(* Sequential stand-in backend (OCaml 4.14; selected by dune when
   runtime_events is absent). Runs every task inline on the caller, in
   slot order — trivially satisfying the ownership/barrier contract of
   executor_backend.mli and the lowest-slot-first exception rule (the
   first failing task raises immediately, before later slots run, which
   is observationally the same once the barrier would have re-raised
   it). *)

let available = false

let parallelism_hint () = 1

type pool = { slots : int; mutable closed : bool }

let spawn n =
  if n < 1 then invalid_arg "Executor_backend.spawn: n < 1";
  { slots = n; closed = false }

let check p = if p.closed then invalid_arg "Executor_backend: pool closed"

let exec p f =
  check p;
  Array.init p.slots f

let exec_on p i f =
  check p;
  if i < 0 || i >= p.slots then invalid_arg "Executor_backend.exec_on: slot out of range";
  f ()

let close p = p.closed <- true
