(** Deterministic network fault model — the communication-axis analogue
    of {!Rts_resilience.Fault} (which models the storage axis).

    A {!spec} describes what a link may do to a message: drop it,
    deliver a duplicate, delay it (every delivery costs [delay_min ..
    delay_max] virtual ticks), reorder it (an extra random delay of up
    to [reorder_spread] ticks lets later messages overtake), black-hole
    it during a transient partition window, or — for [flaky] sites —
    drop it with extra probability on that site's link. [kind_drop]
    deterministically drops the first N transmissions of one envelope
    kind, which is what the exhaustive drop-of-every-message-kind sweep
    in the test suite uses.

    All randomness is drawn from the caller's {!Rts_util.Prng} in a
    fixed order, so every fault trajectory replays from its seed.

    Validation enforces quiescence: per-attempt loss probabilities stay
    below 1 and partitions must heal, so retransmission eventually
    delivers every message — the precondition of the exactness
    property. *)

type spec = {
  drop : float;  (** Per-transmission loss probability, in [0, 1). *)
  duplicate : float;  (** Probability of a second delivery. *)
  reorder : float;  (** Probability of an extra, overtaking delay. *)
  delay_min : int;  (** Minimum per-delivery latency, >= 1 tick. *)
  delay_max : int;  (** Maximum per-delivery latency. *)
  reorder_spread : int;  (** Upper bound on the extra reorder delay. *)
  partitions : (int * int * int) list;
      (** [(site, from, until)]: site unreachable (both directions)
          while [from <= now <= until]. Transient by construction. *)
  flaky : (int * float) list;  (** [(site, extra_drop)] per flaky link. *)
  kind_drop : (string * int) list;
      (** [(kind, n)]: drop the first [n] transmissions whose payload
          kind is [kind] (see {!Envelope.kind}). Deterministic. *)
}

val none : spec
(** Zero faults: FIFO, latency 1, lossless — the reliable instantiation. *)

val validate : spec -> (spec, string) result

val parse : string -> (spec, string) result
(** Parse a comma-separated spec, e.g.
    ["drop=0.2,dup=0.1,reorder=0.3,delay=1-4,flaky=0:0.5,partition=2@10-500,kdrop=signal:2"].
    The empty string is {!none}. Includes {!validate}. *)

val to_string : spec -> string
(** Render a spec back to the [parse] syntax (canonical order). *)

val partitioned : spec -> site:int -> now:int -> bool

val drop_rate : spec -> site:int -> float
(** Base drop probability plus the site's flaky extras. *)
