type node = Coordinator | Site of int

type payload =
  | Slack_broadcast of { round : int; lambda : int }
  | Signal of { round : int }
  | Round_end of { round : int }
  | Collect_request of { direct : bool }
  | Counter_report of { round : int; value : int }
  | App of { body : string }
  | Ack of { ack : int }

type t = { src : node; dst : node; seq : int; epoch : int; payload : payload }

let node_id = function Coordinator -> -1 | Site i -> i

let pp_node ppf = function
  | Coordinator -> Format.pp_print_string ppf "co"
  | Site i -> Format.fprintf ppf "s%d" i

(* The participant endpoint of a link: the protocol is a star, so every
   message travels on exactly one coordinator<->site link. *)
let site_of t =
  match (t.src, t.dst) with
  | Site i, _ | _, Site i -> i
  | Coordinator, Coordinator -> invalid_arg "Envelope.site_of: co->co message"

let kind = function
  | Slack_broadcast _ -> "slack"
  | Signal _ -> "signal"
  | Round_end _ -> "round_end"
  | Collect_request _ -> "collect"
  | Counter_report _ -> "report"
  | App _ -> "app"
  | Ack _ -> "ack"

let kinds = [ "slack"; "signal"; "round_end"; "collect"; "report"; "app"; "ack" ]

let pp_payload ppf = function
  | Slack_broadcast { round; lambda } ->
      Format.fprintf ppf "Slack_broadcast{round=%d;lambda=%d}" round lambda
  | Signal { round } -> Format.fprintf ppf "Signal{round=%d}" round
  | Round_end { round } -> Format.fprintf ppf "Round_end{round=%d}" round
  | Collect_request { direct } -> Format.fprintf ppf "Collect_request{direct=%b}" direct
  | Counter_report { round; value } ->
      Format.fprintf ppf "Counter_report{round=%d;value=%d}" round value
  | App { body } -> Format.fprintf ppf "App{%S}" body
  | Ack { ack } -> Format.fprintf ppf "Ack{%d}" ack

let pp ppf t =
  if t.epoch = 0 then
    Format.fprintf ppf "%a->%a #%d %a" pp_node t.src pp_node t.dst t.seq pp_payload t.payload
  else
    Format.fprintf ppf "%a->%a #%d e%d %a" pp_node t.src pp_node t.dst t.seq t.epoch pp_payload
      t.payload
