(** Reliability layer over the lossy {!Network}: per-directed-link
    sequence numbers, positive acks, exponential-backoff retransmission,
    duplicate suppression, in-order (hold-back) delivery, and a
    loss-budget degradation signal.

    Guarantee: for every fault spec accepted by {!Net_fault.validate}
    (per-attempt loss < 1, partitions transient), every [send] is
    delivered to the protocol {e exactly once, in per-link FIFO order},
    after finitely many retransmissions. Acks are raw datagrams — lost
    acks simply cause a duplicate retransmission, which the receiver
    suppresses and re-acks.

    Degradation: when a site's cumulative retransmission count exceeds
    [degrade_after], [on_degrade site] fires once. The protocol layer
    responds by switching that site to direct per-update forwarding
    (exact counter reports) — correctness preserved, the [O(h log tau)]
    message bound traded for per-update messages on that link. *)

type config = {
  rto : int;  (** Initial retransmission timeout, in virtual ticks. *)
  rto_max : int;  (** Backoff cap: timeout doubles per attempt up to this. *)
  degrade_after : int;
      (** Loss budget: cumulative retransmits on one site's link beyond
          which [on_degrade] fires. *)
  jitter : float;
      (** Deterministic backoff jitter: each retransmission delay [d] is
          drawn uniformly from [d, d * (1 + jitter)] using the fabric's
          seeded PRNG, decorrelating links that would otherwise retry in
          lockstep after a partition heals. 0 (default) draws nothing
          and preserves the exact pre-jitter schedule. *)
}

val default : config
(** [{ rto = 12; rto_max = 192; degrade_after = 24; jitter = 0.0 }]. *)

type t

val create :
  config:config ->
  clock:Vclock.t ->
  rng:Rts_util.Prng.t ->
  spec:Net_fault.spec ->
  deliver:(Envelope.t -> unit) ->
  on_degrade:(int -> unit) ->
  unit ->
  t
(** Build the fabric (and its underlying {!Network}). [deliver] receives
    each unique non-ack envelope exactly once, in per-link order;
    [on_degrade] fires at most once per site. Both may call {!send}
    re-entrantly. *)

val send : ?epoch:int -> t -> src:Envelope.node -> dst:Envelope.node -> Envelope.payload -> unit
(** Enqueue one protocol message; the layer owns sequencing and retry.
    [epoch] (default 0) stamps the sender incarnation's fencing number
    into the envelope — opaque to the transport, read by receivers that
    fence stale incarnations. *)

val network : t -> Network.t

val unacked : t -> int
(** Messages still awaiting their ack (0 at quiescence). *)

val protocol_sends : t -> int
(** Unique protocol messages sent (first transmissions; retransmits and
    acks excluded) — the count held against [message_bound]. *)

val retransmits : t -> int

val degraded_sites : t -> int

val is_degraded : t -> int -> bool

val metrics : t -> Rts_obs.Metrics.snapshot
(** Union of {!Network.metrics} and [net_protocol_sends_total],
    [net_retransmits_total], [net_acks_sent_total],
    [net_acks_received_total], [net_dup_suppressed_total],
    [net_held_out_of_order_total], [net_degraded_sites]. *)
