(* Deterministic discrete-event virtual clock: a binary min-heap of
   (time, tie)-ordered thunks. The tie is a monotonically increasing
   insertion id, so two events scheduled for the same tick always run in
   scheduling order — no dependence on heap internals leaks into
   behaviour, which is what makes whole network runs replayable from a
   seed. *)

type timer = { time : int; tie : int; mutable cancelled : bool; fn : unit -> unit }

type t = {
  mutable heap : timer array;
  mutable len : int;
  mutable now : int;
  mutable next_tie : int;
  mutable live : int; (* scheduled and not yet cancelled/run *)
}

let create () = { heap = [||]; len = 0; now = 0; next_tie = 0; live = 0 }

let now t = t.now

let pending t = t.live

let before a b = a.time < b.time || (a.time = b.time && a.tie < b.tie)

let swap t i j =
  let a = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- a

let rec up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(p) then begin
      swap t i p;
      up t p
    end
  end

let rec down t i =
  let l = (2 * i) + 1 in
  if l < t.len then begin
    let r = l + 1 in
    let s = if r < t.len && before t.heap.(r) t.heap.(l) then r else l in
    if before t.heap.(s) t.heap.(i) then begin
      swap t i s;
      down t s
    end
  end

let schedule t ~delay fn =
  if delay < 0 then invalid_arg "Vclock.schedule: negative delay";
  let cell = { time = t.now + delay; tie = t.next_tie; cancelled = false; fn } in
  t.next_tie <- t.next_tie + 1;
  let cap = Array.length t.heap in
  if t.len >= cap then begin
    let nheap = Array.make (max 16 (2 * cap)) cell in
    Array.blit t.heap 0 nheap 0 t.len;
    t.heap <- nheap
  end;
  t.heap.(t.len) <- cell;
  t.len <- t.len + 1;
  up t (t.len - 1);
  t.live <- t.live + 1;
  cell

let cancel t cell =
  if not cell.cancelled then begin
    cell.cancelled <- true;
    t.live <- t.live - 1
  end

let pop t =
  if t.len = 0 then None
  else begin
    let cell = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      down t 0
    end;
    Some cell
  end

(* Run the next non-cancelled event. Returns false when the queue is
   drained. *)
let rec run_next t =
  match pop t with
  | None -> false
  | Some cell when cell.cancelled -> run_next t
  | Some cell ->
      t.live <- t.live - 1;
      t.now <- max t.now cell.time;
      cell.fn ();
      true

let run_until_idle ?(max_steps = 10_000_000) t =
  let steps = ref 0 in
  while run_next t do
    incr steps;
    if !steps > max_steps then
      failwith
        (Printf.sprintf "Vclock.run_until_idle: exceeded %d steps (non-quiescent network?)"
           max_steps)
  done
