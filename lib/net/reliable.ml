module Prng = Rts_util.Prng
module Metrics = Rts_obs.Metrics

type config = { rto : int; rto_max : int; degrade_after : int; jitter : float }

let default = { rto = 12; rto_max = 192; degrade_after = 24; jitter = 0.0 }

type entry = { env : Envelope.t; mutable attempts : int; mutable timer : Vclock.timer option }

type sender_link = { mutable next_seq : int; unacked : (int, entry) Hashtbl.t }

type recv_link = { mutable expected : int; buffer : (int, Envelope.t) Hashtbl.t }

type t = {
  config : config;
  clock : Vclock.t;
  rng : Prng.t; (* jitter draws only; the Network owns its own stream *)
  mutable net : Network.t option; (* tied after create; always Some in use *)
  deliver : Envelope.t -> unit;
  on_degrade : int -> unit;
  senders : (int * int, sender_link) Hashtbl.t;
  receivers : (int * int, recv_link) Hashtbl.t;
  site_retx : (int, int) Hashtbl.t;
  degraded : (int, unit) Hashtbl.t;
  mutable protocol_sends : int;
  mutable retransmits : int;
  mutable acks_sent : int;
  mutable acks_received : int;
  mutable dup_suppressed : int;
  mutable held : int;
}

let network t = Option.get t.net

let sender_link t key =
  match Hashtbl.find_opt t.senders key with
  | Some l -> l
  | None ->
      let l = { next_seq = 1; unacked = Hashtbl.create 8 } in
      Hashtbl.replace t.senders key l;
      l

let recv_link t key =
  match Hashtbl.find_opt t.receivers key with
  | Some l -> l
  | None ->
      let l = { expected = 1; buffer = Hashtbl.create 8 } in
      Hashtbl.replace t.receivers key l;
      l

let link_key src dst = (Envelope.node_id src, Envelope.node_id dst)

let is_degraded t site = Hashtbl.mem t.degraded site

let degraded_sites t = Hashtbl.length t.degraded

(* Exponential backoff: rto * 2^(attempts-1), capped, plus optional
   deterministic jitter. Without jitter, every link that lost traffic to
   the same partition retries on the same tick when it heals — a
   synchronized burst into a link that may still be lossy. [jitter = j]
   spreads each delay uniformly over [d, d * (1 + j)] from the fabric's
   seeded PRNG, so the spread is reproducible run to run. Jitter 0 draws
   nothing, leaving pre-existing seeded schedules bit-identical. *)
let backoff t attempts =
  let d = t.config.rto lsl min attempts 20 in
  let d = min (max t.config.rto d) t.config.rto_max in
  if t.config.jitter <= 0. then d
  else
    let span = int_of_float (float_of_int d *. t.config.jitter) in
    if span <= 0 then d else d + Prng.int t.rng (span + 1)

let rec arm_timer t entry =
  let delay = backoff t entry.attempts in
  entry.timer <-
    Some
      (Vclock.schedule t.clock ~delay (fun () ->
           (* Still unacked: retransmit with doubled timeout. *)
           entry.attempts <- entry.attempts + 1;
           t.retransmits <- t.retransmits + 1;
           let site = Envelope.site_of entry.env in
           let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.site_retx site) in
           Hashtbl.replace t.site_retx site n;
           Network.send (network t) entry.env;
           arm_timer t entry;
           if n > t.config.degrade_after && not (is_degraded t site) then begin
             Hashtbl.replace t.degraded site ();
             t.on_degrade site
           end))

let send ?(epoch = 0) t ~src ~dst payload =
  let key = link_key src dst in
  let l = sender_link t key in
  let seq = l.next_seq in
  l.next_seq <- seq + 1;
  let env = { Envelope.src; dst; seq; epoch; payload } in
  let entry = { env; attempts = 0; timer = None } in
  Hashtbl.replace l.unacked seq entry;
  t.protocol_sends <- t.protocol_sends + 1;
  Network.send (network t) env;
  arm_timer t entry

let on_receive t (env : Envelope.t) =
  match env.payload with
  | Envelope.Ack { ack } -> (
      t.acks_received <- t.acks_received + 1;
      (* The ack acknowledges [ack] on the reverse link. *)
      let key = link_key env.dst env.src in
      match Hashtbl.find_opt t.senders key with
      | None -> ()
      | Some l -> (
          match Hashtbl.find_opt l.unacked ack with
          | None -> () (* duplicate ack of an already-settled seq *)
          | Some entry ->
              Option.iter (Vclock.cancel t.clock) entry.timer;
              entry.timer <- None;
              Hashtbl.remove l.unacked ack))
  | _ ->
      (* Always (re-)ack, even duplicates: the previous ack may have been
         lost. Acks are raw datagrams — unsequenced, never retried. *)
      t.acks_sent <- t.acks_sent + 1;
      Network.send (network t)
        {
          Envelope.src = env.dst;
          dst = env.src;
          seq = 0;
          epoch = env.epoch;
          payload = Envelope.Ack { ack = env.seq };
        };
      let key = link_key env.src env.dst in
      let l = recv_link t key in
      if env.seq < l.expected || Hashtbl.mem l.buffer env.seq then
        t.dup_suppressed <- t.dup_suppressed + 1
      else if env.seq = l.expected then begin
        l.expected <- l.expected + 1;
        t.deliver env;
        (* Flush any consecutive out-of-order arrivals now in order. *)
        let rec flush () =
          match Hashtbl.find_opt l.buffer l.expected with
          | Some held ->
              Hashtbl.remove l.buffer l.expected;
              l.expected <- l.expected + 1;
              t.deliver held;
              flush ()
          | None -> ()
        in
        flush ()
      end
      else begin
        (* Early arrival: hold until the gap closes (per-link FIFO
           exactly-once delivery to the protocol). *)
        Hashtbl.replace l.buffer env.seq env;
        t.held <- t.held + 1
      end

let create ~config ~clock ~rng ~spec ~deliver ~on_degrade () =
  if config.jitter < 0. then invalid_arg "Reliable.create: jitter < 0";
  (* [copy], not [split]: copying leaves the caller's stream untouched,
     so enabling (or merely plumbing) jitter never perturbs the fault
     injector's draws and every pre-jitter seeded schedule stays
     bit-identical. *)
  let jitter_rng = Prng.copy rng in
  let t =
    {
      config;
      clock;
      rng = jitter_rng;
      net = None;
      deliver;
      on_degrade;
      senders = Hashtbl.create 16;
      receivers = Hashtbl.create 16;
      site_retx = Hashtbl.create 16;
      degraded = Hashtbl.create 4;
      protocol_sends = 0;
      retransmits = 0;
      acks_sent = 0;
      acks_received = 0;
      dup_suppressed = 0;
      held = 0;
    }
  in
  let net = Network.create ~clock ~rng ~spec ~handler:(fun env -> on_receive t env) () in
  t.net <- Some net;
  t

let unacked t =
  Hashtbl.fold (fun _ l acc -> acc + Hashtbl.length l.unacked) t.senders 0

let protocol_sends t = t.protocol_sends

let retransmits t = t.retransmits

let metrics t =
  let net = network t in
  Metrics.merge (Network.metrics net)
    (Metrics.of_assoc
       [
         ("net_protocol_sends_total", Metrics.Counter t.protocol_sends);
         ("net_retransmits_total", Metrics.Counter t.retransmits);
         ("net_acks_sent_total", Metrics.Counter t.acks_sent);
         ("net_acks_received_total", Metrics.Counter t.acks_received);
         ("net_dup_suppressed_total", Metrics.Counter t.dup_suppressed);
         ("net_held_out_of_order_total", Metrics.Counter t.held);
         ("net_degraded_sites", Metrics.Gauge (float_of_int (degraded_sites t)));
       ])
