(** Per-link simulated datagram channels over a shared {!Vclock},
    with {!Net_fault} decisions applied per transmission.

    [send] is fire-and-forget: the fault spec decides whether the
    envelope is dropped (targeted kind-drop, partition window, link loss
    rate), how long it travels (base latency plus an overtaking reorder
    delay), and whether a duplicate is delivered. Deliveries invoke the
    single [handler] (dispatch on [env.dst] is the receiver's job) in
    virtual-time order.

    With {!Net_fault.none} the network consumes no randomness and
    degenerates to lossless per-link FIFO at latency 1 — the zero-fault
    instantiation the exactness property compares against. *)

type t

val create :
  clock:Vclock.t ->
  rng:Rts_util.Prng.t ->
  spec:Net_fault.spec ->
  handler:(Envelope.t -> unit) ->
  unit ->
  t

val send : t -> Envelope.t -> unit
(** One physical transmission attempt (retransmissions call this again). *)

val metrics : t -> Rts_obs.Metrics.snapshot
(** [net_sent_total], [net_dropped_total], [net_duplicated_total],
    [net_reordered_total], [net_delivered_total]. *)

val sent : t -> int
val dropped : t -> int
val duplicated : t -> int
val reordered : t -> int
val delivered : t -> int
