(** Typed message envelopes of the distributed-tracking wire protocol.

    The grammar (DESIGN.md, "Networked tracking") covers both the
    protocol of Cormode, Muthukrishnan & Yi and the reliability layer on
    top of it:

    - [Slack_broadcast {round; lambda}] — coordinator -> site: start
      round [round] with slack [lambda]; [lambda = 0] orders the site to
      switch to direct per-update forwarding (endgame, or a degraded
      site).
    - [Signal {round}] — site -> coordinator: my counter accumulated one
      more slack [lambda] within [round].
    - [Round_end {round}] — coordinator -> site: round [round] is over;
      report your exact counter.
    - [Collect_request {direct}] — coordinator -> site: out-of-band
      resynchronization (used when a site's link degrades); with
      [direct] the site also switches to per-update forwarding.
    - [Counter_report {round; value}] — site -> coordinator: my exact
      counter is [value]. [round >= 0] tags a round-end collection
      reply; [round = -1] tags a direct-mode / resync report.
    - [App {body}] — opaque application payload: a frame of a protocol
      layered {e over} the transport (the [rts-serve] wire protocol,
      {!Rts_serve.Frame}) that wants Reliable's exactly-once in-order
      delivery without the DT machine ever seeing it. The DT machine
      treats a stray [App] as stale and drops it.
    - [Ack {ack}] — transport-level acknowledgement of sequence number
      [ack]; consumed by {!Reliable}, never seen by the protocol.

    Every envelope carries a per-directed-link sequence number [seq]
    assigned by the reliability layer (0 for raw/ack sends), and an
    [epoch] — the sender incarnation's fencing number (0 when the
    protocol above does not use fencing). The transport itself never
    interprets [epoch]; receivers that care (the replicated serving
    layer) drop envelopes from superseded epochs before the payload
    reaches the application. *)

type node = Coordinator | Site of int

type payload =
  | Slack_broadcast of { round : int; lambda : int }
  | Signal of { round : int }
  | Round_end of { round : int }
  | Collect_request of { direct : bool }
  | Counter_report of { round : int; value : int }
  | App of { body : string }
  | Ack of { ack : int }

type t = { src : node; dst : node; seq : int; epoch : int; payload : payload }

val node_id : node -> int
(** [-1] for the coordinator, the site index otherwise. *)

val site_of : t -> int
(** The participant endpoint of the (star-topology) link this envelope
    travels on. Raises [Invalid_argument] on a co->co message. *)

val kind : payload -> string
(** Stable short name of the payload constructor ("slack", "signal",
    "round_end", "collect", "report", "app", "ack") — used by metrics
    and by the {!Net_fault} kind-targeted drop directive. *)

val kinds : string list
(** All kind names, in declaration order. *)

val pp_node : Format.formatter -> node -> unit
val pp_payload : Format.formatter -> payload -> unit
val pp : Format.formatter -> t -> unit
