type spec = {
  drop : float;
  duplicate : float;
  reorder : float;
  delay_min : int;
  delay_max : int;
  reorder_spread : int;
  partitions : (int * int * int) list;
  flaky : (int * float) list;
  kind_drop : (string * int) list;
}

let none =
  {
    drop = 0.;
    duplicate = 0.;
    reorder = 0.;
    delay_min = 1;
    delay_max = 1;
    reorder_spread = 8;
    partitions = [];
    flaky = [];
    kind_drop = [];
  }

(* ---- validation ---- *)

let validate s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if not (s.drop >= 0. && s.drop < 1.) then
    err "drop rate %g out of [0,1) (1.0 would never quiesce)" s.drop
  else if not (s.duplicate >= 0. && s.duplicate <= 1.) then
    err "dup rate %g out of [0,1]" s.duplicate
  else if not (s.reorder >= 0. && s.reorder <= 1.) then
    err "reorder rate %g out of [0,1]" s.reorder
  else if s.delay_min < 1 || s.delay_max < s.delay_min then
    err "delay window %d-%d invalid (need 1 <= min <= max)" s.delay_min s.delay_max
  else if s.reorder_spread < 1 then err "reorder spread %d < 1" s.reorder_spread
  else
    let rec check_flaky = function
      | [] -> Ok s
      | (site, extra) :: rest ->
          if site < 0 then err "flaky site %d < 0" site
          else if not (extra >= 0. && s.drop +. extra < 1.) then
            err "flaky site %d: drop %g + extra %g not < 1 (would never quiesce)" site s.drop
              extra
          else check_flaky rest
    in
    let rec check_parts = function
      | [] -> check_flaky s.flaky
      | (site, from_t, until_t) :: rest ->
          if site < 0 then err "partition site %d < 0" site
          else if from_t < 0 || until_t < from_t then
            err "partition window %d-%d invalid" from_t until_t
          else check_parts rest
    in
    let rec check_kinds = function
      | [] -> check_parts s.partitions
      | (k, n) :: rest ->
          if not (List.mem k Envelope.kinds) then
            err "kdrop: unknown envelope kind %S (valid: %s)" k
              (String.concat ", " Envelope.kinds)
          else if n < 1 then err "kdrop %s: count %d < 1" k n
          else check_kinds rest
    in
    check_kinds s.kind_drop

(* ---- parser ----

   Comma-separated directives:
     drop=0.1 dup=0.05 reorder=0.2 delay=1-4 spread=8
     partition=SITE@FROM-UNTIL   (repeatable; transient — must heal)
     flaky=SITE:EXTRA_DROP       (repeatable)
     kdrop=KIND:N                (repeatable; drop the first N sends of KIND)
   The empty string is the zero-fault spec. *)

let parse str =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let float_of k v =
    match float_of_string_opt v with Some f -> Ok f | None -> err "%s: not a number: %S" k v
  in
  let int_of k v =
    match int_of_string_opt v with Some i -> Ok i | None -> err "%s: not an integer: %S" k v
  in
  let split2 c s =
    match String.index_opt s c with
    | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> None
  in
  let directive acc item =
    let* acc = acc in
    match split2 '=' (String.trim item) with
    | None -> err "malformed directive %S (expected key=value)" item
    | Some (k, v) -> (
        match k with
        | "drop" ->
            let* f = float_of k v in
            Ok { acc with drop = f }
        | "dup" | "duplicate" ->
            let* f = float_of k v in
            Ok { acc with duplicate = f }
        | "reorder" ->
            let* f = float_of k v in
            Ok { acc with reorder = f }
        | "spread" ->
            let* i = int_of k v in
            Ok { acc with reorder_spread = i }
        | "delay" -> (
            match split2 '-' v with
            | Some (lo, hi) ->
                let* lo = int_of k lo in
                let* hi = int_of k hi in
                Ok { acc with delay_min = lo; delay_max = hi }
            | None ->
                let* d = int_of k v in
                Ok { acc with delay_min = d; delay_max = d })
        | "partition" -> (
            match split2 '@' v with
            | Some (site, window) -> (
                let* site = int_of k site in
                match split2 '-' window with
                | Some (ft, ut) ->
                    let* ft = int_of k ft in
                    let* ut = int_of k ut in
                    Ok { acc with partitions = (site, ft, ut) :: acc.partitions }
                | None -> err "partition window %S (expected FROM-UNTIL)" window)
            | None ->
                err
                  "partition=%s needs a heal window (SITE@FROM-UNTIL); permanent partitions \
                   never quiesce"
                  v)
        | "flaky" -> (
            match split2 ':' v with
            | Some (site, extra) ->
                let* site = int_of k site in
                let* extra = float_of k extra in
                Ok { acc with flaky = (site, extra) :: acc.flaky }
            | None -> err "flaky=%s (expected SITE:EXTRA_DROP)" v)
        | "kdrop" -> (
            match split2 ':' v with
            | Some (kind, n) ->
                let* n = int_of k n in
                Ok { acc with kind_drop = (kind, n) :: acc.kind_drop }
            | None -> err "kdrop=%s (expected KIND:N)" v)
        | _ -> err "unknown directive %S" k)
  in
  let items = String.split_on_char ',' str |> List.filter (fun s -> String.trim s <> "") in
  let* spec = List.fold_left directive (Ok none) items in
  validate spec

let to_string s =
  let b = Buffer.create 64 in
  let add fmt = Printf.ksprintf (fun x -> if Buffer.length b > 0 then Buffer.add_char b ','; Buffer.add_string b x) fmt in
  if s.drop > 0. then add "drop=%g" s.drop;
  if s.duplicate > 0. then add "dup=%g" s.duplicate;
  if s.reorder > 0. then add "reorder=%g" s.reorder;
  if s.delay_min <> 1 || s.delay_max <> 1 then add "delay=%d-%d" s.delay_min s.delay_max;
  if s.reorder_spread <> none.reorder_spread then add "spread=%d" s.reorder_spread;
  List.iter (fun (site, ft, ut) -> add "partition=%d@%d-%d" site ft ut) (List.rev s.partitions);
  List.iter (fun (site, extra) -> add "flaky=%d:%g" site extra) (List.rev s.flaky);
  List.iter (fun (k, n) -> add "kdrop=%s:%d" k n) (List.rev s.kind_drop);
  Buffer.contents b

let partitioned s ~site ~now =
  List.exists (fun (p, ft, ut) -> p = site && now >= ft && now <= ut) s.partitions

let drop_rate s ~site =
  List.fold_left (fun acc (p, extra) -> if p = site then acc +. extra else acc) s.drop s.flaky
