module Prng = Rts_util.Prng
module Metrics = Rts_obs.Metrics

type t = {
  clock : Vclock.t;
  rng : Prng.t;
  spec : Net_fault.spec;
  handler : Envelope.t -> unit;
  kdrop : (string, int) Hashtbl.t; (* remaining kind-targeted drops *)
  mutable sent : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable delivered : int;
}

let create ~clock ~rng ~spec ~handler () =
  let kdrop = Hashtbl.create 8 in
  List.iter
    (fun (k, n) -> Hashtbl.replace kdrop k (n + Option.value ~default:0 (Hashtbl.find_opt kdrop k)))
    spec.Net_fault.kind_drop;
  {
    clock;
    rng;
    spec;
    handler;
    kdrop;
    sent = 0;
    dropped = 0;
    duplicated = 0;
    reordered = 0;
    delivered = 0;
  }

(* Skip the PRNG draw entirely for zero-probability faults: the zero-fault
   network then consumes no randomness at all, so its trajectory is the
   plain FIFO one whatever the seed. *)
let bern t p = p > 0. && Prng.bernoulli t.rng p

let delay_of t =
  if t.spec.Net_fault.delay_min = t.spec.Net_fault.delay_max then t.spec.Net_fault.delay_min
  else Prng.int_in t.rng t.spec.Net_fault.delay_min t.spec.Net_fault.delay_max

(* One physical transmission attempt of [env]. The fault decision order is
   fixed (kind-drop, partition, loss, latency, reorder, duplication) so a
   seed pins the whole trajectory. *)
let send t env =
  t.sent <- t.sent + 1;
  let site = Envelope.site_of env in
  let kind = Envelope.kind env.Envelope.payload in
  let kind_dropped =
    match Hashtbl.find_opt t.kdrop kind with
    | Some n when n > 0 ->
        Hashtbl.replace t.kdrop kind (n - 1);
        true
    | _ -> false
  in
  if kind_dropped then t.dropped <- t.dropped + 1
  else if Net_fault.partitioned t.spec ~site ~now:(Vclock.now t.clock) then
    t.dropped <- t.dropped + 1
  else if bern t (Net_fault.drop_rate t.spec ~site) then t.dropped <- t.dropped + 1
  else begin
    let deliver_once () =
      let d = delay_of t in
      let d =
        if bern t t.spec.Net_fault.reorder then begin
          t.reordered <- t.reordered + 1;
          d + 1 + Prng.int t.rng t.spec.Net_fault.reorder_spread
        end
        else d
      in
      ignore
        (Vclock.schedule t.clock ~delay:d (fun () ->
             t.delivered <- t.delivered + 1;
             t.handler env))
    in
    deliver_once ();
    if bern t t.spec.Net_fault.duplicate then begin
      t.duplicated <- t.duplicated + 1;
      deliver_once ()
    end
  end

let metrics t =
  Metrics.of_assoc
    [
      ("net_sent_total", Metrics.Counter t.sent);
      ("net_dropped_total", Metrics.Counter t.dropped);
      ("net_duplicated_total", Metrics.Counter t.duplicated);
      ("net_reordered_total", Metrics.Counter t.reordered);
      ("net_delivered_total", Metrics.Counter t.delivered);
    ]

let sent t = t.sent
let dropped t = t.dropped
let duplicated t = t.duplicated
let reordered t = t.reordered
let delivered t = t.delivered
