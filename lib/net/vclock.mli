(** Deterministic discrete-event virtual clock.

    Simulated channels and retransmission timers all share one clock;
    events scheduled for the same tick run in scheduling order (a
    monotone tie-breaker), so a whole network run is a pure function of
    the fault plan and the PRNG seed — the property every replayable
    qcheck counterexample rests on. *)

type t

type timer

val create : unit -> t

val now : t -> int
(** Current virtual time (starts at 0; advances only through
    {!run_next} / {!run_until_idle}). *)

val schedule : t -> delay:int -> (unit -> unit) -> timer
(** Schedule a thunk [delay >= 0] ticks from now. Raises
    [Invalid_argument] on a negative delay. *)

val cancel : t -> timer -> unit
(** Cancel a scheduled thunk; idempotent. Cancelled cells are skipped
    (and reclaimed) lazily. *)

val pending : t -> int
(** Number of scheduled, not-yet-cancelled, not-yet-run events. *)

val run_next : t -> bool
(** Advance to and run the next live event; [false] when idle. *)

val run_until_idle : ?max_steps:int -> t -> unit
(** Drain the clock to quiescence. Raises [Failure] after [max_steps]
    events (default 10M) — the safety valve against fault plans that can
    never deliver (e.g. a permanent partition). *)
