(** CRC-32 (IEEE 802.3 / zlib polynomial, reflected).

    The integrity primitive behind the durability layer: WAL records and
    checkpoint files are checksummed so that torn writes, bit rot, and
    short reads are {e detected} instead of silently replayed into an
    engine. Pure OCaml, table-driven, no dependencies; matches the
    classic zlib [crc32] function bit for bit (checked against the
    canonical test vector ["123456789"] -> [0xCBF43926]). *)

type t = int32
(** A CRC value. The empty string has CRC [0l]. *)

val string : ?crc:t -> string -> t
(** [string s] is the CRC-32 of [s]. [string ~crc s] continues a running
    checksum, so [string ~crc:(string a) b = string (a ^ b)] — the
    incremental form used when checksumming streamed payloads. *)

val substring : ?crc:t -> string -> pos:int -> len:int -> t
(** CRC of [String.sub s pos len] without allocating the copy. Raises
    [Invalid_argument] if the range is out of bounds. *)

val to_hex : t -> string
(** Fixed-width lowercase hex, always 8 characters (["cbf43926"]). *)

val of_hex : string -> t option
(** Inverse of {!to_hex}: exactly 8 hex characters, case-insensitive;
    [None] otherwise. *)
