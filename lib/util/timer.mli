(** Monotonic timing for the figure harness.

    The paper reports wall-clock per-operation cost; individual operations at
    our scale take well under a microsecond, so callers time *batches* of
    operations between [now] reads. Readings come from [CLOCK_MONOTONIC]
    (bechamel's noalloc clock stub), so elapsed times can never go negative
    under NTP adjustment — only differences are meaningful, the epoch is
    arbitrary (boot time, not 1970). *)

val now : unit -> float
(** Monotonic seconds since an arbitrary epoch. Use only for differences. *)

val now_ns : unit -> int64
(** The raw monotonic reading, integer nanoseconds. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with elapsed seconds
    (non-negative by construction). *)
