(* Monotonic time. [Unix.gettimeofday] jumps under NTP slew/step, which
   let successive BENCH_*.json timings go backwards; the benchmark gate
   needs a clock that cannot. Bechamel's monotonic clock is a noalloc C
   stub over CLOCK_MONOTONIC (clock_gettime) returning integer
   nanoseconds — the same source its own measurements use. *)

let now_ns () = Monotonic_clock.now ()

let ns_to_s = 1e-9

let now () = Int64.to_float (now_ns ()) *. ns_to_s

let time f =
  let t0 = now_ns () in
  let r = f () in
  let t1 = now_ns () in
  (r, Int64.to_float (Int64.sub t1 t0) *. ns_to_s)
