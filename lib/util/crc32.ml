type t = int32

(* Reflected table for polynomial 0xEDB88320 (the bit-reversed IEEE
   802.3 polynomial) — the same table zlib builds in crc32.c. *)
let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let substring ?(crc = 0l) s ~pos ~len =
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Crc32.substring: out of bounds";
  let table = Lazy.force table in
  (* Standard incremental form: pre- and post-condition the register with
     a bitwise complement so that chunked and one-shot checksums agree. *)
  let c = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xffl) in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let string ?crc s = substring ?crc s ~pos:0 ~len:(String.length s)

let to_hex c = Printf.sprintf "%08lx" c

let is_hex_digit = function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false

let of_hex s =
  if String.length s <> 8 || not (String.for_all is_hex_digit s) then None
  else
    (* 8 hex digits always fit the unsigned int32 range; go through int64
       to avoid the signed int32 literal overflow on values >= 0x80000000. *)
    Some (Int64.to_int32 (Int64.of_string ("0x" ^ s)))
