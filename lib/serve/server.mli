(** The [rts-serve] daemon core: multi-tenant serving over shared
    engines, with admission control, backpressure and supervision.

    One server multiplexes isolated keyspaces — {e tenants} — over
    engines built by a shared factory (optionally sharded through
    {!Rts_shard.Shard.factory}). Each tenant is independently durable:
    its ops flow through {!Rts_resilience.Durable} into its own
    {!Rts_resilience.Io.dir}, obtained from the [provider] callback per
    (tenant, incarnation) — the seam where the soak harness interposes
    {!Rts_resilience.Fault.wrap} plans.

    {b Robustness model} (DESIGN.md, "Serving & supervision"):

    - {e Admission control} — a frame can be refused with a typed
      {!Frame.Overloaded} reply: tenant table full; per-tenant alive
      query quota; WAL lag (ops accepted but not yet durable) over the
      limit; DT message budget exhausted; storage reported out of
      space.
    - {e Backpressure} — admitted ops enter a bounded per-tenant
      {!Rts_shard.Spsc_ring} and are applied by a paced drain task on
      the virtual clock; when the ring is full the client gets
      {!Frame.Retry_after} and resubmits later. A batch is admitted
      all-or-nothing.
    - {e Supervision} — a storage fault ({!Rts_resilience.Fault.Crash},
      {!Rts_resilience.Io.No_space}) or an injected wedge marks the
      tenant unhealthy; the watchdog restarts it: a fresh incarnation
      dir, {!Rts_resilience.Recovery.recover}, re-apply of the
      applied-but-not-durable suffix (tracked in order), then the
      pending queue — with maturity notifications suppressed up to the
      already-notified op ordinal, so subscribers see every maturity
      {e exactly once, never early}, across any number of restarts.

    Ordinal discipline: op ordinals are assigned at {e apply} time and
    therefore equal WAL record order; element ordinals count applied
    elements — the same coordinates as
    {!Rts_workload.Replay.outcome.maturities}, which is what makes the
    soak oracle (replay the surviving WAL on a fresh engine) directly
    comparable to the server's own log and to what subscribers saw. *)

open Rts_core
open Rts_resilience
module Vclock = Rts_net.Vclock

type config = {
  dim : int;
  max_tenants : int;  (** Tenant table size — {!Frame.Tenants} beyond. *)
  query_quota : int;
      (** Max alive + queued registrations per tenant ({!Frame.Quota}). *)
  wal_lag_limit : int;
      (** Max ops accepted but not yet durable per tenant
          ({!Frame.Wal_lag}). *)
  message_budget : int;
      (** Max DT protocol messages ([dt_signals_total] +
          [dt_round_ends_total]) per tenant before registrations are
          refused ({!Frame.Budget}); [<= 0] = unlimited. Only engines
          exposing those counters (the DT engine) ever trip it. *)
  queue_capacity : int;  (** Per-tenant ingest ring (rounded up to 2^k). *)
  drain_per_tick : int;  (** Ops applied per drain step (pacing). *)
  retry_after : int;  (** Ticks suggested by {!Frame.Retry_after}. *)
  watchdog_interval : int;  (** Ticks between supervision scans. *)
  wedge_timeout : int;
      (** No-progress ticks after which a wedged tenant is restarted. *)
  max_restarts : int;
      (** Per-tenant restart ceiling — beyond it the supervisor raises
          [Failure] (crash loop, a harness bug rather than a fault). *)
  shards : int;  (** Shards per tenant engine ([1] = unsharded). *)
  executor : Rts_shard.Executor.kind option;
      (** Shard executor ([None] = the shard layer's default). *)
  durable : Durable.config;  (** WAL batching / checkpoint cadence. *)
  segment_records : int;
      (** WAL segment rotation threshold per tenant life, passed through
          to {!Rts_resilience.Wal.writer}; [0] (the default) never
          rotates. With rotation on, checkpoints also prune cold
          segments below both the checkpoint and the replica ack floor,
          bounding per-tenant disk. *)
}

val default : config

type t

(** {2 Roles and replication}

    A server is [Primary] (accepts client data frames, ships committed
    ops to replicas via the installed {!replication} hooks) or [Replica]
    (rejects client data frames with ["not primary"]; ops arrive only
    through {!replica_submit}, shipped by the primary over the
    exactly-once transport). Both roles run the full supervision and
    durability machinery, so a replica self-heals its own storage
    crashes from in-process queues just like a standalone server.

    Fencing: {!set_epoch} records the cluster epoch; new tenant lives
    stamp it into their WAL headers ({!Rts_resilience.Wal.Fenced}
    protects a directory from a superseded incarnation reopening it).

    Never-early pushes: with replication installed, a maturity is pushed
    to subscribers only once [ack_floor] — the highest op every replica
    acknowledged durable — covers its op; until then it parks in a
    per-tenant queue that {!flush_pushes} releases as acks advance. The
    tenant's maturity {e log} records it immediately either way (the log
    is what this node attributed; the push stream is what clients saw). *)

type role = Primary | Replica

type replication = {
  on_applied : tenant:string -> index:int -> op:Rts_workload.Replay.op -> unit;
      (** Fires once per committed op, in ordinal order ([index] is the
          op ordinal). Re-applies after a local storage crash fire again
          with the same index and a bit-identical op — ship-side
          dedup by index is safe. *)
  ack_floor : tenant:string -> int;
      (** Highest op ordinal every replica has acknowledged durable
          ([max_int] if the deployment has no replicas). *)
  lag : tenant:string -> int;
      (** Replication backlog folded into the {!Frame.Wal_lag} admission
          gate (quorum-lag shedding). *)
}

val create :
  ?config:config ->
  clock:Vclock.t ->
  make:(dim:int -> Engine.t) ->
  provider:(tenant:string -> incarnation:int -> Io.dir) ->
  send:(dst:int -> Frame.server -> unit) ->
  unit ->
  t
(** [send ~dst frame] transmits a reply or push toward client site
    [dst]; [provider] yields the storage dir for each tenant life
    (incarnation 0 = first). Raises [Invalid_argument] on a nonsensical
    config. *)

val handle : t -> src:int -> Frame.client -> unit
(** Process one client frame; every frame gets exactly one reply via
    [send] (plus any asynchronous {!Frame.Matured} pushes). Never
    raises on malformed-but-typed input — errors become
    {!Frame.Rejected} replies. *)

(* ---- introspection (test and soak surface) ---- *)

val tenant_names : t -> string list
(** In first-contact order. *)

val accepted_ops : t -> string -> int
(** Ops admitted into the tenant's queue (registration admission +
    ring room both passed). 0 for unknown tenants, here and below. *)

val applied_ops : t -> string -> int
val rejected_ops : t -> string -> int

val queue_depth : t -> string -> int
(** Accepted but not yet applied (ring + re-apply backlog). *)

val restarts : t -> string -> int
val incarnation : t -> string -> int

val maturity_log : t -> string -> (int * int) list
(** [(element ordinal, query id)], ascending — the server's own record
    of every maturity it attributed, across restarts. *)

val crashes : t -> int

val healthy : t -> bool
(** Every tenant serving, nothing queued, nothing wedged, no maturity
    push parked behind the replication ack floor. *)

val is_shutdown : t -> bool

val metrics : t -> Rts_obs.Metrics.snapshot
(** The [serve_*] counters: accepted/applied/rejected/matured ops,
    retries, per-reason overload counts, crashes, restarts, wedges,
    tenant gauge. *)

(* ---- replication surface ---- *)

val role : t -> role

val set_role : t -> role -> unit
(** Switching to [Primary] (promotion) also flushes any parked pushes
    whose floor now permits them. *)

val epoch : t -> int

val set_epoch : t -> int -> unit
(** Raise the fencing epoch stamped into subsequently started tenant
    lives. Raises [Invalid_argument] if [e] is below the current epoch
    (epochs are monotone). *)

val set_replication : t -> replication option -> unit

val replica_submit : t -> string -> Rts_workload.Replay.op list -> bool
(** Enqueue ops shipped by the primary, bypassing admission (the
    primary's own gate already counted replication lag; the transport
    is exactly-once FIFO, so refusal would diverge the replica). [false]
    only if the tenant table is full. *)

val flush_pushes : t -> string -> unit
(** Re-read the ack floor and release any parked maturity pushes it now
    covers. The replication layer calls this when an ack advances. *)

val durable_position : t -> string -> int
(** The tenant's locally durable op ordinal (fsync-cadence floor) — what
    a replica reports in its acks. 0 for unknown tenants. *)

val pending_push_count : t -> string -> int
(** Maturity groups parked behind the replication ack floor. *)

(* ---- control ---- *)

val inject_wedge : t -> string -> unit
(** Test hook: freeze the tenant's drain (a stuck worker that holds its
    state but makes no progress). The watchdog detects the stall after
    [wedge_timeout] ticks without progress and restarts the tenant.
    Raises [Invalid_argument] for an unknown tenant. *)

val sync_all : t -> unit
(** Force every serving tenant's WAL durable now (storage faults during
    the sync crash that tenant, to be supervised as usual). *)

val checkpoint_all : t -> unit
(** Force a checkpoint — and, with rotation on, a segment prune — on
    every serving tenant regardless of the op-count cadence. The in-run
    cadence prunes with whatever replica ack floor it sees at checkpoint
    time; call this at quiescence (the floor has caught up by then) so
    segments pinned by a lagging replica are released before shutdown.
    Storage faults crash the tenant, to be supervised as usual. *)

val shutdown : t -> unit
(** Drain every queue to empty — restarting crashed tenants inline as
    needed — then sync, close and release every tenant's storage and
    executor. Idempotent. Further frames are {!Frame.Rejected}. *)
