(** The [rts-serve] daemon core: multi-tenant serving over shared
    engines, with admission control, backpressure and supervision.

    One server multiplexes isolated keyspaces — {e tenants} — over
    engines built by a shared factory (optionally sharded through
    {!Rts_shard.Shard.factory}). Each tenant is independently durable:
    its ops flow through {!Rts_resilience.Durable} into its own
    {!Rts_resilience.Io.dir}, obtained from the [provider] callback per
    (tenant, incarnation) — the seam where the soak harness interposes
    {!Rts_resilience.Fault.wrap} plans.

    {b Robustness model} (DESIGN.md, "Serving & supervision"):

    - {e Admission control} — a frame can be refused with a typed
      {!Frame.Overloaded} reply: tenant table full; per-tenant alive
      query quota; WAL lag (ops accepted but not yet durable) over the
      limit; DT message budget exhausted; storage reported out of
      space.
    - {e Backpressure} — admitted ops enter a bounded per-tenant
      {!Rts_shard.Spsc_ring} and are applied by a paced drain task on
      the virtual clock; when the ring is full the client gets
      {!Frame.Retry_after} and resubmits later. A batch is admitted
      all-or-nothing.
    - {e Supervision} — a storage fault ({!Rts_resilience.Fault.Crash},
      {!Rts_resilience.Io.No_space}) or an injected wedge marks the
      tenant unhealthy; the watchdog restarts it: a fresh incarnation
      dir, {!Rts_resilience.Recovery.recover}, re-apply of the
      applied-but-not-durable suffix (tracked in order), then the
      pending queue — with maturity notifications suppressed up to the
      already-notified op ordinal, so subscribers see every maturity
      {e exactly once, never early}, across any number of restarts.

    Ordinal discipline: op ordinals are assigned at {e apply} time and
    therefore equal WAL record order; element ordinals count applied
    elements — the same coordinates as
    {!Rts_workload.Replay.outcome.maturities}, which is what makes the
    soak oracle (replay the surviving WAL on a fresh engine) directly
    comparable to the server's own log and to what subscribers saw. *)

open Rts_core
open Rts_resilience
module Vclock = Rts_net.Vclock

type config = {
  dim : int;
  max_tenants : int;  (** Tenant table size — {!Frame.Tenants} beyond. *)
  query_quota : int;
      (** Max alive + queued registrations per tenant ({!Frame.Quota}). *)
  wal_lag_limit : int;
      (** Max ops accepted but not yet durable per tenant
          ({!Frame.Wal_lag}). *)
  message_budget : int;
      (** Max DT protocol messages ([dt_signals_total] +
          [dt_round_ends_total]) per tenant before registrations are
          refused ({!Frame.Budget}); [<= 0] = unlimited. Only engines
          exposing those counters (the DT engine) ever trip it. *)
  queue_capacity : int;  (** Per-tenant ingest ring (rounded up to 2^k). *)
  drain_per_tick : int;  (** Ops applied per drain step (pacing). *)
  retry_after : int;  (** Ticks suggested by {!Frame.Retry_after}. *)
  watchdog_interval : int;  (** Ticks between supervision scans. *)
  wedge_timeout : int;
      (** No-progress ticks after which a wedged tenant is restarted. *)
  max_restarts : int;
      (** Per-tenant restart ceiling — beyond it the supervisor raises
          [Failure] (crash loop, a harness bug rather than a fault). *)
  shards : int;  (** Shards per tenant engine ([1] = unsharded). *)
  executor : Rts_shard.Executor.kind option;
      (** Shard executor ([None] = the shard layer's default). *)
  durable : Durable.config;  (** WAL batching / checkpoint cadence. *)
}

val default : config

type t

val create :
  ?config:config ->
  clock:Vclock.t ->
  make:(dim:int -> Engine.t) ->
  provider:(tenant:string -> incarnation:int -> Io.dir) ->
  send:(dst:int -> Frame.server -> unit) ->
  unit ->
  t
(** [send ~dst frame] transmits a reply or push toward client site
    [dst]; [provider] yields the storage dir for each tenant life
    (incarnation 0 = first). Raises [Invalid_argument] on a nonsensical
    config. *)

val handle : t -> src:int -> Frame.client -> unit
(** Process one client frame; every frame gets exactly one reply via
    [send] (plus any asynchronous {!Frame.Matured} pushes). Never
    raises on malformed-but-typed input — errors become
    {!Frame.Rejected} replies. *)

(* ---- introspection (test and soak surface) ---- *)

val tenant_names : t -> string list
(** In first-contact order. *)

val accepted_ops : t -> string -> int
(** Ops admitted into the tenant's queue (registration admission +
    ring room both passed). 0 for unknown tenants, here and below. *)

val applied_ops : t -> string -> int
val rejected_ops : t -> string -> int

val queue_depth : t -> string -> int
(** Accepted but not yet applied (ring + re-apply backlog). *)

val restarts : t -> string -> int
val incarnation : t -> string -> int

val maturity_log : t -> string -> (int * int) list
(** [(element ordinal, query id)], ascending — the server's own record
    of every maturity it attributed, across restarts. *)

val crashes : t -> int

val healthy : t -> bool
(** Every tenant serving, nothing queued, nothing wedged. *)

val is_shutdown : t -> bool

val metrics : t -> Rts_obs.Metrics.snapshot
(** The [serve_*] counters: accepted/applied/rejected/matured ops,
    retries, per-reason overload counts, crashes, restarts, wedges,
    tenant gauge. *)

(* ---- control ---- *)

val inject_wedge : t -> string -> unit
(** Test hook: freeze the tenant's drain (a stuck worker that holds its
    state but makes no progress). The watchdog detects the stall after
    [wedge_timeout] ticks without progress and restarts the tenant.
    Raises [Invalid_argument] for an unknown tenant. *)

val sync_all : t -> unit
(** Force every serving tenant's WAL durable now (storage faults during
    the sync crash that tenant, to be supervised as usual). *)

val shutdown : t -> unit
(** Drain every queue to empty — restarting crashed tenants inline as
    needed — then sync, close and release every tenant's storage and
    executor. Idempotent. Further frames are {!Frame.Rejected}. *)
