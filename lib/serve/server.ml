module Engine = Rts_core.Engine
module Metrics = Rts_obs.Metrics
module Replay = Rts_workload.Replay
module Vclock = Rts_net.Vclock
module Io = Rts_resilience.Io
module Fault = Rts_resilience.Fault
module Durable = Rts_resilience.Durable
module Wal = Rts_resilience.Wal
module Recovery = Rts_resilience.Recovery
module Shard = Rts_shard.Shard
module Spsc_ring = Rts_shard.Spsc_ring

type config = {
  dim : int;
  max_tenants : int;
  query_quota : int;
  wal_lag_limit : int;
  message_budget : int;
  queue_capacity : int;
  drain_per_tick : int;
  retry_after : int;
  watchdog_interval : int;
  wedge_timeout : int;
  max_restarts : int;
  shards : int;
  executor : Rts_shard.Executor.kind option;
  durable : Durable.config;
  segment_records : int;
}

let default =
  {
    dim = 2;
    max_tenants = 8;
    query_quota = 4096;
    wal_lag_limit = 512;
    message_budget = 0;
    queue_capacity = 64;
    drain_per_tick = 8;
    retry_after = 4;
    watchdog_interval = 8;
    wedge_timeout = 24;
    max_restarts = 1000;
    shards = 1;
    executor = None;
    durable = Durable.default;
    segment_records = 0;
  }

type health = Serving | Crashed of { disk_full : bool }

type role = Primary | Replica

(* Hooks the replication layer installs on a primary. The server stays
   transport-agnostic: it reports each committed op ([on_applied]) and
   reads back two scalars — [ack_floor], the highest op ordinal every
   replica has acknowledged as durable (the maturity-push gate), and
   [lag], the replication backlog folded into the [Wal_lag] admission
   gate so intake sheds load when replicas fall behind. *)
type replication = {
  on_applied : tenant:string -> index:int -> op:Replay.op -> unit;
  ack_floor : tenant:string -> int;
  lag : tenant:string -> int;
}

type tenant = {
  name : string;
  mutable incarnation : int;
  mutable engine : Engine.t;
  mutable handle : Durable.handle option;
  mutable life_dir : Io.dir option;
  mutable close_life : unit -> unit;
  mutable health : health;
  ring : Replay.op Spsc_ring.t;  (* accepted, not yet picked up *)
  backlog : Replay.op Queue.t;  (* picked up / resubmitted, not yet applied *)
  replay : (int * Replay.op) Queue.t;  (* applied, possibly not yet durable *)
  mutable in_flight : (int * Replay.op) option;
      (* the op currently inside the engine+WAL apply, with the ordinal
         it will own if it commits. A storage fault can strike AFTER the
         WAL record became durable (fsync boundary, surviving unsynced
         prefix) — recovery decides from [report.ops_total] whether this
         op committed (finish its bookkeeping) or not (re-apply it). *)
  mutable last_checkpoint : int;  (* op ordinal of the last checkpoint *)
  mutable applied : int;  (* op ordinal = WAL record ordinal *)
  mutable elements : int;  (* element ordinal *)
  mutable sync_base : int;
      (* fsync cadence base: op ordinal of the last explicit WAL sync
         (life start, checkpoint, or sync). Wal.sync resets the
         writer's since-sync counter, so auto-fsync boundaries land at
         sync_base + k*fsync_every — durable_floor must re-base on
         every explicit sync or it overestimates durability. *)
  mutable synced : int;  (* explicitly synced through this op ordinal *)
  mutable accepted : int;
  mutable rejected : int;  (* benign engine rejections *)
  mutable pending_registers : int;
  mutable notified_through : int;  (* maturities staged up to this op ordinal *)
  mutable log : (int * int) list;  (* (element ordinal, id), reversed *)
  pending_pushes : (int * int * int list) Queue.t;
      (* (op ordinal, element ordinal, ids) staged but held back by the
         replication ack floor — flushed in order as acks advance, so a
         maturity is never pushed before every replica holds its op
         durably (never-early across failover). Always empty without
         replication, and on replicas (no subscribers, floor = max). *)
  mutable subscribers : int list;  (* in subscription order *)
  mutable last_progress : int;
  mutable wedged : bool;
  mutable restart_count : int;
  mutable drain_armed : bool;
}

type t = {
  config : config;
  clock : Vclock.t;
  make : dim:int -> Engine.t;
  provider : tenant:string -> incarnation:int -> Io.dir;
  send : dst:int -> Frame.server -> unit;
  tenants : (string, tenant) Hashtbl.t;
  order : string Queue.t;
  mutable role : role;
  mutable epoch : int;  (* fencing incarnation; stamps new WAL lives *)
  mutable replication : replication option;
  mutable watchdog_armed : bool;
  mutable shutting : bool;
  reg : Metrics.t;
  c_accepted : Metrics.counter;
  c_applied : Metrics.counter;
  c_rejected : Metrics.counter;
  c_matured : Metrics.counter;
  c_retry : Metrics.counter;
  c_overloaded : Metrics.counter;
  c_crashes : Metrics.counter;
  c_restarts : Metrics.counter;
  c_wedges : Metrics.counter;
  g_tenants : Metrics.gauge;
}

let trace_target = Sys.getenv_opt "RTS_SERVE_TRACE"

let trace tenant fmt =
  match trace_target with
  | Some target when target = tenant || target = "all" ->
      Printf.eprintf ("[%s] " ^^ fmt ^^ "\n%!") tenant
  | _ -> Printf.ifprintf stderr fmt

let overload_counter t reason =
  Metrics.counter t.reg
    (Printf.sprintf "serve_overloaded_%s_total" (Frame.reason_to_string reason))

(* ---- tenant bookkeeping ------------------------------------------- *)

let stub_engine dim : Engine.t =
  let fail _ = invalid_arg "rts-serve: tenant engine not started" in
  {
    Engine.name = "stub";
    dim;
    register = fail;
    register_batch = fail;
    terminate = fail;
    process = fail;
    feed_batch = fail;
    alive = fail;
    alive_snapshot = fail;
    metrics = (fun () -> Engine.no_metrics ());
  }

let has_work tenant =
  tenant.in_flight <> None
  || (not (Queue.is_empty tenant.backlog))
  || not (Spsc_ring.is_empty tenant.ring)

let durable_floor t tenant =
  let fsync_every = max 1 t.config.durable.Durable.fsync_every in
  let batched =
    tenant.sync_base + (tenant.applied - tenant.sync_base) / fsync_every * fsync_every
  in
  max tenant.synced batched

let wal_lag t tenant =
  tenant.applied - durable_floor t tenant + Queue.length tenant.backlog
  + Spsc_ring.length tenant.ring
  + (match tenant.in_flight with Some _ -> 1 | None -> 0)

let replica_lag t tenant =
  match t.replication with Some r -> r.lag ~tenant:tenant.name | None -> 0

(* Highest op ordinal whose maturities may be pushed to subscribers.
   Without replication (or on a replica, which has no subscribers) there
   is no failover to be early against, so the floor is unbounded and
   pushes stay synchronous — the pre-replication behaviour. *)
let push_floor t tenant =
  match t.replication with
  | Some r when t.role = Primary -> r.ack_floor ~tenant:tenant.name
  | _ -> max_int

(* Stage one op's maturities: append to the tenant log (the log is the
   oracle of what this node attributed, pushed or not), then either push
   now or park behind the replication ack floor. *)
let emit_maturity t tenant ~ord ~ordinal ~ids =
  tenant.log <- List.rev_append (List.map (fun id -> (ordinal, id)) ids) tenant.log;
  Metrics.add t.c_matured (List.length ids);
  if ord <= push_floor t tenant then
    List.iter
      (fun dst -> t.send ~dst (Frame.Matured { tenant = tenant.name; ordinal; ids }))
      tenant.subscribers
  else Queue.add (ord, ordinal, ids) tenant.pending_pushes

(* Release parked pushes whose op every replica now holds durably. The
   replication layer calls this (via [flush_pushes]) whenever an ack
   advances the floor. FIFO pop preserves ordinal order per subscriber. *)
let flush_pending t tenant =
  let floor = push_floor t tenant in
  let rec go () =
    match Queue.peek_opt tenant.pending_pushes with
    | Some (ord, ordinal, ids) when ord <= floor ->
        ignore (Queue.pop tenant.pending_pushes);
        List.iter
          (fun dst -> t.send ~dst (Frame.Matured { tenant = tenant.name; ordinal; ids }))
          tenant.subscribers;
        go ()
    | _ -> ()
  in
  go ()

(* Replay entries are dropped only below [last_checkpoint] — the
   ordinal covered by CRC-verified durability (a published checkpoint,
   or the recovery scan at life start). The fsync-based [durable_floor]
   is NOT a safe prune bound: a torn write can silently truncate a
   record the writer believes fsynced, and the scanner then amputates
   it — the op must still be in the replay queue to be resubmitted. *)
let prune_replay tenant =
  let floor = tenant.last_checkpoint in
  let rec go () =
    match Queue.peek_opt tenant.replay with
    | Some (ord, _) when ord <= floor ->
        ignore (Queue.pop tenant.replay);
        go ()
    | _ -> ()
  in
  go ()

let life_factory t =
  if t.config.shards <= 1 && t.config.executor = None then (t.make, fun () -> ())
  else Shard.factory ?executor:t.config.executor ~shards:(max 1 t.config.shards) t.make

let end_life tenant =
  (match tenant.handle with
  | Some h -> ( try Durable.close h with _ -> ())
  | None -> ());
  tenant.handle <- None;
  (try tenant.close_life () with _ -> ());
  tenant.close_life <- (fun () -> ())

(* Start (or restart) a tenant life: recover from the incarnation's dir,
   wrap durable, and push the applied-but-not-durable suffix back in
   front of the backlog so it is re-applied — in original order, with
   the original ordinals. Returns [false] (leaving the tenant crashed)
   if storage faults strike during recovery itself. *)
let start_life t tenant =
  let dir = t.provider ~tenant:tenant.name ~incarnation:tenant.incarnation in
  let make, close_life = life_factory t in
  match
    let engine, report = Recovery.recover ~dim:t.config.dim ~make ~dir () in
    (* checkpointing is driven by [maybe_checkpoint] at quiescent drain
       points; the wrapper's own mid-apply cadence is disabled so a
       checkpoint can never consume the in-flight op's maturities *)
    let config = { t.config.durable with Durable.checkpoint_every = max_int } in
    let engine, handle =
      Durable.wrap ~config ~report
        ?wal_epoch:(if t.epoch > 0 then Some t.epoch else None)
        ~segment_records:t.config.segment_records ~dir engine
    in
    (engine, handle, report)
  with
  | engine, handle, report ->
      tenant.engine <- engine;
      tenant.handle <- Some handle;
      tenant.life_dir <- Some dir;
      tenant.close_life <- close_life;
      tenant.applied <- report.Recovery.ops_total;
      tenant.elements <- report.Recovery.elements_total;
      tenant.sync_base <- report.Recovery.ops_total;
      tenant.synced <- report.Recovery.ops_total;
      tenant.last_checkpoint <- report.Recovery.ops_total;
      tenant.health <- Serving;
      tenant.wedged <- false;
      tenant.last_progress <- Vclock.now t.clock;
      (* Settle the op that was mid-apply when the previous life died.
         If the recovery report covers its ordinal, the WAL record hit
         disk before the fault: the op committed, so finish the
         bookkeeping the exception interrupted (including its maturity
         notifications, recovered from the replayed suffix — see
         [maybe_checkpoint] for why they are always there). Otherwise
         the record was lost with the crash and the op re-applies first,
         ahead of everything else. *)
      let resurrect =
        match tenant.in_flight with
        | None -> []
        | Some (ord, op) when ord > report.Recovery.ops_total ->
            tenant.in_flight <- None;
            [ op ]
        | Some (ord, op) ->
            tenant.in_flight <- None;
            (match op with
            | Replay.Register _ ->
                tenant.pending_registers <- tenant.pending_registers - 1
            | _ -> ());
            Metrics.incr t.c_applied;
            (if ord > tenant.notified_through then begin
               tenant.notified_through <- ord;
               match op with
               | Replay.Element _ ->
                   let ordinal = report.Recovery.elements_total in
                   let ids =
                     List.filter_map
                       (fun (eord, id) -> if eord = ordinal then Some id else None)
                       report.Recovery.maturities
                   in
                   if ids <> [] then emit_maturity t tenant ~ord ~ordinal ~ids
               | Replay.Register _ | Replay.Terminate _ -> ()
             end);
            (* the fault interrupted [apply_op] before it could report
               this committed op to the replication layer — do it now,
               or the record would never ship *)
            (match t.replication with
            | Some r -> r.on_applied ~tenant:tenant.name ~index:ord ~op
            | None -> ());
            []
      in
      let lost =
        Queue.fold
          (fun acc (ord, op) -> if ord > tenant.applied then op :: acc else acc)
          [] tenant.replay
      in
      Queue.clear tenant.replay;
      let tail = List.of_seq (Queue.to_seq tenant.backlog) in
      Queue.clear tenant.backlog;
      List.iter
        (fun op -> Queue.add op tenant.backlog)
        (List.rev_append lost (resurrect @ tail));
      trace tenant.name
        "reconcile inc=%d ops_total=%d lost=%d resurrect=%d backlog=%d ring=%d \
         wal_records=%d replayed=%d ckpt_gen=%s ckpt_ops=%d discarded=%d"
        tenant.incarnation report.Recovery.ops_total (List.length lost)
        (List.length resurrect) (Queue.length tenant.backlog)
        (Spsc_ring.length tenant.ring) report.Recovery.wal_records
        report.Recovery.ops_replayed
        (match report.Recovery.checkpoint_gen with
        | Some g -> string_of_int g
        | None -> "-")
        report.Recovery.checkpoint_ops report.Recovery.bytes_discarded;
      true
  | exception Fault.Crash _ ->
      (try close_life () with _ -> ());
      tenant.health <- Crashed { disk_full = false };
      false
  | exception Io.No_space ->
      (try close_life () with _ -> ());
      tenant.health <- Crashed { disk_full = true };
      false

let fresh_tenant t name =
  {
    name;
    incarnation = 0;
    engine = stub_engine t.config.dim;
    handle = None;
    life_dir = None;
    close_life = (fun () -> ());
    health = Crashed { disk_full = false };
    ring = Spsc_ring.create ~capacity:t.config.queue_capacity;
    backlog = Queue.create ();
    replay = Queue.create ();
    in_flight = None;
    last_checkpoint = 0;
    applied = 0;
    elements = 0;
    sync_base = 0;
    synced = 0;
    accepted = 0;
    rejected = 0;
    pending_registers = 0;
    notified_through = 0;
    log = [];
    pending_pushes = Queue.create ();
    subscribers = [];
    last_progress = 0;
    wedged = false;
    restart_count = 0;
    drain_armed = false;
  }

(* ---- the apply path ------------------------------------------------ *)

(* Apply one op at the tenant's next ordinal. Storage faults
   (Fault.Crash, Io.No_space) propagate with the op parked in
   [in_flight] — whether it consumed its ordinal is unknowable here
   (the WAL record may or may not have reached disk before the fault),
   so [start_life] decides from the recovery report. Benign engine
   rejections (duplicate register, unknown terminate) consume no
   ordinal: the Durable wrapper logs after applying, so a rejected op
   never reaches the WAL. *)
let apply_op t tenant op =
  tenant.in_flight <- Some (tenant.applied + 1, op);
  let e = tenant.engine in
  match
    match op with
    | Replay.Register q ->
        e.Engine.register q;
        []
    | Replay.Terminate id ->
        e.Engine.terminate id;
        []
    | Replay.Element el -> e.Engine.process el
  with
  | matured ->
      tenant.in_flight <- None;
      tenant.applied <- tenant.applied + 1;
      trace tenant.name "apply ord=%d %s" tenant.applied (Replay.op_to_line op);
      (match op with
      | Replay.Element _ -> tenant.elements <- tenant.elements + 1
      | Replay.Register _ -> tenant.pending_registers <- tenant.pending_registers - 1
      | Replay.Terminate _ -> ());
      Queue.add (tenant.applied, op) tenant.replay;
      prune_replay tenant;
      Metrics.incr t.c_applied;
      tenant.last_progress <- Vclock.now t.clock;
      (* Exactly-once, never-early notification across restarts: ops at
         or below [notified_through] are re-applies of already-notified
         work — bit-identical replay means their maturities were already
         pushed, so pushing again would duplicate, and there is nothing
         new to push early. *)
      if tenant.applied > tenant.notified_through then begin
        tenant.notified_through <- tenant.applied;
        if matured <> [] then
          emit_maturity t tenant ~ord:tenant.applied ~ordinal:tenant.elements ~ids:matured
      end;
      (match t.replication with
      | Some r -> r.on_applied ~tenant:tenant.name ~index:tenant.applied ~op
      | None -> ())
  | exception ((Fault.Crash _ | Io.No_space) as ex) -> raise ex
  | exception (Invalid_argument _ | Not_found) ->
      tenant.in_flight <- None;
      (match op with
      | Replay.Register _ -> tenant.pending_registers <- tenant.pending_registers - 1
      | _ -> ());
      tenant.rejected <- tenant.rejected + 1;
      trace tenant.name "reject %s" (Replay.op_to_line op);
      Metrics.incr t.c_rejected;
      tenant.last_progress <- Vclock.now t.clock

(* Apply as many queued ops as [budget] allows. Returns normally when
   the budget or the queues are exhausted; storage faults propagate with
   the faulting op parked in [in_flight] for [start_life] to settle. *)
let drain_some t tenant ~budget =
  let budget = ref budget in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Queue.take_opt tenant.backlog with
    | Some op ->
        apply_op t tenant op;
        decr budget
    | None -> (
        match Spsc_ring.try_pop tenant.ring with
        | Some op ->
            apply_op t tenant op;
            decr budget
        | None -> continue := false)
  done

(* Read-back verification: sync, then CRC-scan the WAL and require the
   on-disk record count to equal the ops applied. A torn write can
   silently truncate a record mid-pending-buffer; once flushed it sits
   mid-file, where the scanner will amputate it AND every record after
   it. Catching that now — before a checkpoint is published over it —
   matters doubly: a checkpoint covering a torn record would let
   recovery bridge the hole, after which WAL record indices no longer
   equal op ordinals and every later durability comparison is skewed.
   Detection is surfaced as a crash so the normal supervision path
   (recover from the last consistent state, resubmit from the replay
   queue) repairs it. *)
let verify_wal t tenant =
  match (tenant.handle, tenant.life_dir) with
  | Some h, Some dir ->
      Durable.sync h;
      let scanned = Wal.scan ~dim:t.config.dim ~dir () in
      if scanned.Wal.base + scanned.Wal.records <> tenant.applied then
        raise
          (Fault.Crash
             (Printf.sprintf "wal verify: %d records on disk (base %d), %d ops applied"
                (scanned.Wal.base + scanned.Wal.records)
                scanned.Wal.base tenant.applied));
      tenant.synced <- tenant.applied;
      tenant.sync_base <- tenant.applied
  | _ -> ()

(* Checkpoint at a quiescent point — never from inside an apply. This
   keeps the invariant [start_life] relies on: a checkpoint can never
   cover the in-flight op, so a committed in-flight op is always in the
   replayed WAL suffix and its maturities are recoverable from the
   report. (The Durable wrapper's own cadence is disabled at [wrap]
   time for the same reason.) The WAL is read-back verified first so a
   checkpoint never publishes over a silently torn record. *)
let checkpoint_tenant t tenant =
  match tenant.handle with
  | None -> ()
  | Some h ->
      verify_wal t tenant;
      Durable.checkpoint_now h;
      tenant.synced <- tenant.applied;
      tenant.sync_base <- tenant.applied;
      tenant.last_checkpoint <- tenant.applied;
      trace tenant.name "checkpoint at %d" tenant.applied;
      prune_replay tenant;
      (* with rotation on, closed segments wholly below both the new
         checkpoint and the replica ack floor are dead weight: recovery
         starts from the checkpoint, and every replica already holds
         those records durably. [Durable.prune_wal] re-floors at the
         checkpoint, so an unreplicated server prunes on checkpoints
         alone; a lagging replica holds segments on the primary's disk
         (deliberately — they are its catch-up source of truth). *)
      if t.config.segment_records > 0 then begin
        let floor =
          match t.replication with
          | Some r -> min tenant.applied (r.ack_floor ~tenant:tenant.name)
          | None -> tenant.applied
        in
        ignore (Durable.prune_wal h ~below:floor)
      end

let maybe_checkpoint t tenant =
  if tenant.applied - tenant.last_checkpoint >= t.config.durable.Durable.checkpoint_every
  then checkpoint_tenant t tenant

(* ---- supervision --------------------------------------------------- *)

let rec arm_drain t tenant =
  if
    (not tenant.drain_armed) && (not t.shutting) && tenant.health = Serving
    && (not tenant.wedged) && has_work tenant
  then begin
    tenant.drain_armed <- true;
    ignore (Vclock.schedule t.clock ~delay:1 (fun () -> drain_tick t tenant))
  end

and drain_tick t tenant =
  tenant.drain_armed <- false;
  if t.shutting || tenant.wedged || tenant.health <> Serving then ()
  else begin
    (try
       drain_some t tenant ~budget:t.config.drain_per_tick;
       maybe_checkpoint t tenant
     with
    | Fault.Crash _ -> mark_crashed t tenant ~disk_full:false
    | Io.No_space -> mark_crashed t tenant ~disk_full:true);
    arm_drain t tenant
  end

and mark_crashed t tenant ~disk_full =
  trace tenant.name "crash disk_full=%b applied=%d in_flight=%s backlog=%d ring=%d"
    disk_full tenant.applied
    (match tenant.in_flight with
    | Some (ord, op) -> Printf.sprintf "%d:%s" ord (Replay.op_to_line op)
    | None -> "-")
    (Queue.length tenant.backlog) (Spsc_ring.length tenant.ring);
  tenant.health <- Crashed { disk_full };
  Metrics.incr t.c_crashes;
  end_life tenant;
  arm_watchdog t

and arm_watchdog t =
  if (not t.watchdog_armed) && not t.shutting then begin
    t.watchdog_armed <- true;
    ignore (Vclock.schedule t.clock ~delay:t.config.watchdog_interval (fun () -> watchdog t))
  end

and watchdog t =
  t.watchdog_armed <- false;
  if not t.shutting then begin
    let again = ref false in
    iter_tenants t (fun tenant ->
        match tenant.health with
        | Crashed _ -> if not (restart t tenant) then again := true
        | Serving when tenant.wedged && has_work tenant ->
            if Vclock.now t.clock - tenant.last_progress >= t.config.wedge_timeout then begin
              end_life tenant;
              if not (restart t tenant) then again := true
            end
            else again := true
        | Serving -> ());
    if !again then arm_watchdog t
  end

and restart t tenant =
  tenant.restart_count <- tenant.restart_count + 1;
  Metrics.incr t.c_restarts;
  if tenant.restart_count > t.config.max_restarts then
    failwith
      (Printf.sprintf "rts-serve: tenant %s exceeded %d restarts (crash loop)" tenant.name
         t.config.max_restarts);
  end_life tenant;
  tenant.incarnation <- tenant.incarnation + 1;
  if start_life t tenant then begin
    arm_drain t tenant;
    true
  end
  else false

and iter_tenants t f =
  Queue.iter (fun name -> f (Hashtbl.find t.tenants name)) t.order

(* Clean-shutdown checkpoint: force a checkpoint (and segment prune) on
   every serving tenant regardless of the op-count cadence. The in-run
   cadence prunes with whatever ack floor the replicas have reached by
   checkpoint time; at quiescence the floor has caught up, so one final
   checkpoint releases the segments a lagging replica pinned. *)
let checkpoint_all t =
  iter_tenants t (fun tenant ->
      if tenant.health = Serving && not tenant.wedged then
        try checkpoint_tenant t tenant with
        | Fault.Crash _ -> mark_crashed t tenant ~disk_full:false
        | Io.No_space -> mark_crashed t tenant ~disk_full:true)

(* ---- admission ----------------------------------------------------- *)

let dt_messages tenant =
  let snap = tenant.engine.Engine.metrics () in
  Metrics.counter_value snap "dt_signals_total"
  + Metrics.counter_value snap "dt_round_ends_total"

let admission t tenant ops =
  let registers =
    List.fold_left (fun n op -> match op with Replay.Register _ -> n + 1 | _ -> n) 0 ops
  in
  (* replication lag rides the same gate as local durability lag: an op
     is a liability until it is durable here AND on every replica, so
     both backlogs bound intake (quorum-lag shedding). *)
  let lag tenant = wal_lag t tenant + replica_lag t tenant in
  match tenant.health with
  | Crashed { disk_full = true } -> Some Frame.Disk_full
  | Crashed { disk_full = false } ->
      (* engine unavailable mid-recovery: quota/budget can't be read,
         but the durability backlog still gates intake *)
      if lag tenant + List.length ops > t.config.wal_lag_limit then Some Frame.Wal_lag
      else None
  | Serving ->
      if lag tenant + List.length ops > t.config.wal_lag_limit then Some Frame.Wal_lag
      else if
        registers > 0
        && tenant.engine.Engine.alive () + tenant.pending_registers + registers
           > t.config.query_quota
      then Some Frame.Quota
      else if
        registers > 0 && t.config.message_budget > 0
        && dt_messages tenant > t.config.message_budget
      then Some Frame.Budget
      else None

let get_or_create t name =
  match Hashtbl.find_opt t.tenants name with
  | Some tenant -> Ok tenant
  | None ->
      if Hashtbl.length t.tenants >= t.config.max_tenants then
        Error (Frame.Overloaded { tenant = name; reason = Frame.Tenants })
      else begin
        let tenant = fresh_tenant t name in
        Hashtbl.add t.tenants name tenant;
        Queue.add name t.order;
        Metrics.set t.g_tenants (float_of_int (Hashtbl.length t.tenants));
        if not (start_life t tenant) then arm_watchdog t;
        Ok tenant
      end

let ingest t ~src name ops =
  match get_or_create t name with
  | Error (Frame.Overloaded { reason; _ } as reply) ->
      Metrics.incr t.c_overloaded;
      Metrics.incr (overload_counter t reason);
      t.send ~dst:src reply
  | Error reply -> t.send ~dst:src reply
  | Ok tenant -> (
      match admission t tenant ops with
      | Some reason ->
          Metrics.incr t.c_overloaded;
          Metrics.incr (overload_counter t reason);
          t.send ~dst:src (Frame.Overloaded { tenant = name; reason })
      | None ->
          let n = List.length ops in
          let room = Spsc_ring.capacity tenant.ring - Spsc_ring.length tenant.ring in
          if n > room then begin
            Metrics.incr t.c_retry;
            t.send ~dst:src (Frame.Retry_after { ticks = t.config.retry_after })
          end
          else begin
            List.iter
              (fun op ->
                ignore (Spsc_ring.try_push tenant.ring op);
                match op with
                | Replay.Register _ ->
                    tenant.pending_registers <- tenant.pending_registers + 1
                | _ -> ())
              ops;
            tenant.accepted <- tenant.accepted + n;
            trace tenant.name "accept n=%d total=%d ring=%d backlog=%d" n tenant.accepted
              (Spsc_ring.length tenant.ring) (Queue.length tenant.backlog);
            Metrics.add t.c_accepted n;
            t.send ~dst:src (Frame.Accepted { tenant = name; ops = n });
            if tenant.wedged || tenant.health <> Serving then arm_watchdog t
            else arm_drain t tenant
          end)

(* Replicated intake: ops shipped by the primary enter here, bypassing
   admission — flow control already happened at the primary (its
   [Wal_lag] gate counts replication lag), and the transport is
   exactly-once FIFO, so refusing an op here would silently diverge the
   replica. Ops land in the unbounded backlog; the normal drain /
   supervision machinery applies them and self-heals replica-side
   storage crashes exactly as it does on a standalone server. Returns
   [false] only when the tenant table is full (a topology mismatch). *)
let replica_submit t name ops =
  match get_or_create t name with
  | Error _ -> false
  | Ok tenant ->
      let n = List.length ops in
      List.iter
        (fun op ->
          Queue.add op tenant.backlog;
          match op with
          | Replay.Register _ -> tenant.pending_registers <- tenant.pending_registers + 1
          | _ -> ())
        ops;
      tenant.accepted <- tenant.accepted + n;
      Metrics.add t.c_accepted n;
      trace tenant.name "replica accept n=%d total=%d backlog=%d" n tenant.accepted
        (Queue.length tenant.backlog);
      if tenant.wedged || tenant.health <> Serving then arm_watchdog t
      else arm_drain t tenant;
      true

(* ---- lifecycle ----------------------------------------------------- *)

let metrics t = Metrics.snapshot t.reg

(* Satellite gauges for the stats frame: per-tenant WAL backlog (ops
   accepted but not yet locally durable) and replication lag. *)
let tenant_gauges t =
  Metrics.of_assoc
    (List.concat_map
       (fun name ->
         let x = Hashtbl.find t.tenants name in
         [
           ( Printf.sprintf "serve_wal_backlog_%s" name,
             Metrics.Gauge (float_of_int (wal_lag t x)) );
           ( Printf.sprintf "serve_replica_lag_%s" name,
             Metrics.Gauge (float_of_int (replica_lag t x)) );
         ])
       (List.of_seq (Queue.to_seq t.order)))

let shutdown t =
  if not t.shutting then begin
    t.shutting <- true;
    iter_tenants t (fun tenant ->
        let rec pump () =
          (match tenant.health with
          | Crashed _ -> ignore (restart t tenant)
          | Serving -> tenant.wedged <- false);
          if tenant.health = Serving then begin
            try
              drain_some t tenant ~budget:max_int;
              verify_wal t tenant
            with
            | Fault.Crash _ -> mark_crashed t tenant ~disk_full:false
            | Io.No_space -> mark_crashed t tenant ~disk_full:true
          end;
          if has_work tenant || tenant.health <> Serving then pump ()
        in
        pump ();
        end_life tenant)
  end

let is_shutdown t = t.shutting

let handle t ~src frame =
  if t.shutting then t.send ~dst:src (Frame.Rejected { message = "server is shut down" })
  else
    match frame with
    | Frame.Stats ->
        t.send ~dst:src
          (Frame.Stats_reply
             { body = Metrics.to_prometheus (Metrics.merge (metrics t) (tenant_gauges t)) })
    | Frame.Shutdown ->
        shutdown t;
        (* [shutdown] flips [t.shutting]; reply directly *)
        t.send ~dst:src Frame.Bye
    | (Frame.Subscribe _ | Frame.Op _ | Frame.Batch _) when t.role = Replica ->
        (* replicas take data only from the primary's shipping stream.
           A client frame landing here is almost always the failover
           race: the client heard the view before this node did (the
           two travel on independent links) and retargeted first. Ask
           it to retry — by then the promotion has landed — rather than
           terminally reject work the new view makes valid. *)
        t.send ~dst:src (Frame.Retry_after { ticks = t.config.retry_after })
    | Frame.Subscribe { tenant = name; after } -> (
        match get_or_create t name with
        | Error (Frame.Overloaded { reason; _ } as reply) ->
            Metrics.incr t.c_overloaded;
            Metrics.incr (overload_counter t reason);
            t.send ~dst:src reply
        | Error reply -> t.send ~dst:src reply
        | Ok tenant ->
            if not (List.mem src tenant.subscribers) then begin
              tenant.subscribers <- tenant.subscribers @ [ src ];
              (* catch-up backfill: a subscription can land arbitrarily
                 late (the frame races data frames on other links), so
                 replay every maturity this tenant already attributed,
                 grouped by element ordinal exactly as live pushes are.
                 Per-link FIFO puts the backfill before any later push:
                 the subscriber's stream converges to the server's own
                 log no matter when the subscription arrives. Two
                 exclusions keep the stream exactly-once and never-early:
                 ordinals at or below the client's [after] watermark were
                 already consumed (from a previous primary), and ordinals
                 parked in [pending_pushes] are not yet replica-durable —
                 the flush delivers those to every subscriber later. *)
              let cutoff =
                match Queue.peek_opt tenant.pending_pushes with
                | Some (_, ordinal, _) -> ordinal
                | None -> max_int
              in
              let rec backfill = function
                | [] -> ()
                | (ordinal, id) :: rest ->
                    let rec split ids = function
                      | (o, i) :: tl when o = ordinal -> split (i :: ids) tl
                      | tl -> (List.rev ids, tl)
                    in
                    let ids, rest = split [ id ] rest in
                    if ordinal > after && ordinal < cutoff then
                      t.send ~dst:src (Frame.Matured { tenant = name; ordinal; ids });
                    backfill rest
              in
              backfill (List.rev tenant.log)
            end;
            t.send ~dst:src (Frame.Accepted { tenant = name; ops = 0 }))
    | Frame.Op { tenant = name; op } -> ingest t ~src name [ op ]
    | Frame.Batch { tenant = name; elems } ->
        ingest t ~src name (Array.to_list (Array.map (fun e -> Replay.Element e) elems))

let create ?(config = default) ~clock ~make ~provider ~send () =
  if
    config.dim < 1 || config.max_tenants < 1 || config.query_quota < 1
    || config.wal_lag_limit < 1 || config.queue_capacity < 1 || config.drain_per_tick < 1
    || config.retry_after < 1 || config.watchdog_interval < 1 || config.wedge_timeout < 1
    || config.max_restarts < 1 || config.shards < 1
  then invalid_arg "Server.create: config fields must be positive";
  if config.segment_records < 0 then
    invalid_arg "Server.create: segment_records must be >= 0";
  let reg = Metrics.create () in
  {
    config;
    clock;
    make;
    provider;
    send;
    tenants = Hashtbl.create 16;
    order = Queue.create ();
    role = Primary;
    epoch = 0;
    replication = None;
    watchdog_armed = false;
    shutting = false;
    reg;
    c_accepted = Metrics.counter reg "serve_accepted_total";
    c_applied = Metrics.counter reg "serve_applied_total";
    c_rejected = Metrics.counter reg "serve_rejected_ops_total";
    c_matured = Metrics.counter reg "serve_matured_total";
    c_retry = Metrics.counter reg "serve_retry_total";
    c_overloaded = Metrics.counter reg "serve_overloaded_total";
    c_crashes = Metrics.counter reg "serve_crashes_total";
    c_restarts = Metrics.counter reg "serve_restarts_total";
    c_wedges = Metrics.counter reg "serve_wedges_total";
    g_tenants = Metrics.gauge reg "serve_tenants";
  }

(* ---- introspection ------------------------------------------------- *)

let find t name = Hashtbl.find_opt t.tenants name

let tenant_names t = List.of_seq (Queue.to_seq t.order)

let accepted_ops t name = match find t name with Some x -> x.accepted | None -> 0

let applied_ops t name = match find t name with Some x -> x.applied | None -> 0

let rejected_ops t name = match find t name with Some x -> x.rejected | None -> 0

let queue_depth t name =
  match find t name with
  | Some x -> Queue.length x.backlog + Spsc_ring.length x.ring
  | None -> 0

let restarts t name = match find t name with Some x -> x.restart_count | None -> 0

let incarnation t name = match find t name with Some x -> x.incarnation | None -> 0

let maturity_log t name = match find t name with Some x -> List.rev x.log | None -> []

let crashes t = Metrics.counter_value (metrics t) "serve_crashes_total"

let healthy t =
  let ok = ref true in
  iter_tenants t (fun tenant ->
      if
        tenant.health <> Serving || tenant.wedged || has_work tenant
        || not (Queue.is_empty tenant.pending_pushes)
      then ok := false);
  !ok

(* ---- replication surface ------------------------------------------- *)

let role t = t.role

let set_role t role =
  t.role <- role;
  if role = Primary then iter_tenants t (fun tenant -> flush_pending t tenant)

let epoch t = t.epoch

let set_epoch t e =
  if e < t.epoch then
    invalid_arg (Printf.sprintf "Server.set_epoch: %d < current %d" e t.epoch);
  t.epoch <- e

let set_replication t r = t.replication <- r

let flush_pushes t name =
  match find t name with Some tenant -> flush_pending t tenant | None -> ()

let durable_position t name =
  match find t name with Some tenant -> durable_floor t tenant | None -> 0

let pending_push_count t name =
  match find t name with Some x -> Queue.length x.pending_pushes | None -> 0

let inject_wedge t name =
  match find t name with
  | None -> invalid_arg ("Server.inject_wedge: unknown tenant " ^ name)
  | Some tenant ->
      tenant.wedged <- true;
      Metrics.incr t.c_wedges;
      arm_watchdog t

let sync_all t =
  iter_tenants t (fun tenant ->
      match (tenant.health, tenant.handle) with
      | Serving, Some _ -> (
          try verify_wal t tenant with
          | Fault.Crash _ -> mark_crashed t tenant ~disk_full:false
          | Io.No_space -> mark_crashed t tenant ~disk_full:true)
      | _ -> ())
