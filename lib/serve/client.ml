module Vclock = Rts_net.Vclock

type t = {
  clock : Vclock.t;
  send : Frame.client -> unit;
  window : int;
  mutable outbox : Frame.client list;  (* front = next to send *)
  inflight : Frame.client Queue.t;
  mutable accepted : int;
  mutable retries : int;
  mutable overloads : (string * Frame.reason) list;  (* reversed *)
  mutable rejects : string list;  (* reversed *)
  mutable matured : (string * int * int) list;  (* (tenant, ord, id), reversed *)
  mutable stats : string list;  (* reversed *)
  mutable bye : bool;
  mutable transcript : Frame.server list;  (* reversed *)
}

let create ~site:_ ~clock ?(window = 32) ~send () =
  if window < 1 then invalid_arg "Client.create: window must be positive";
  {
    clock;
    send;
    window;
    outbox = [];
    inflight = Queue.create ();
    accepted = 0;
    retries = 0;
    overloads = [];
    rejects = [];
    matured = [];
    stats = [];
    bye = false;
    transcript = [];
  }

let rec pump t =
  match t.outbox with
  | f :: rest when Queue.length t.inflight < t.window ->
      t.outbox <- rest;
      Queue.add f t.inflight;
      t.send f;
      pump t
  | _ -> ()

let enqueue t f =
  t.outbox <- t.outbox @ [ f ];
  pump t

let enqueue_front t f =
  t.outbox <- f :: t.outbox;
  pump t

let pop_inflight t =
  match Queue.take_opt t.inflight with
  | Some f -> f
  | None -> failwith "Client.deliver: reply with nothing in flight"

(* Failover: frames in flight toward a dead primary will never be
   answered (its replies are fenced off), so put them back at the front
   of the outbox — original order — to be re-sent to the promoted node.
   Subscriptions are dropped rather than requeued: the caller must
   re-subscribe with the current watermark, or the stale [after = 0]
   form would replay maturities this client already consumed. Data
   frames re-send at-least-once; ops the old primary had already
   replicated apply twice, which is exactly the at-least-once intake
   contract the WAL-replay oracle measures against (maturity pushes
   stay exactly-once regardless, via the ack-floor gate plus the
   watermark backfill). *)
let requeue_inflight t =
  let stranded = List.of_seq (Queue.to_seq t.inflight) in
  Queue.clear t.inflight;
  let keep = List.filter (function Frame.Subscribe _ -> false | _ -> true) stranded in
  t.outbox <- keep @ t.outbox;
  List.length keep

let watermark t name =
  List.fold_left
    (fun acc (tn, ord, _) -> if tn = name && ord > acc then ord else acc)
    0 t.matured

let deliver t reply =
  t.transcript <- reply :: t.transcript;
  match reply with
  | Frame.Matured { tenant; ordinal; ids } ->
      t.matured <-
        List.rev_append (List.map (fun id -> (tenant, ordinal, id)) ids) t.matured
  | Frame.Accepted { ops; _ } ->
      ignore (pop_inflight t);
      t.accepted <- t.accepted + ops;
      pump t
  | Frame.Retry_after { ticks } ->
      let f = pop_inflight t in
      t.retries <- t.retries + 1;
      ignore (Vclock.schedule t.clock ~delay:(max 1 ticks) (fun () -> enqueue_front t f));
      pump t
  | Frame.Overloaded { tenant; reason } ->
      ignore (pop_inflight t);
      t.overloads <- (tenant, reason) :: t.overloads;
      pump t
  | Frame.Rejected { message } ->
      ignore (pop_inflight t);
      t.rejects <- message :: t.rejects;
      pump t
  | Frame.Stats_reply { body } ->
      ignore (pop_inflight t);
      t.stats <- body :: t.stats;
      pump t
  | Frame.Bye ->
      ignore (pop_inflight t);
      t.bye <- true;
      pump t

let kick t = pump t

let inflight t = Queue.length t.inflight

let idle t = t.outbox = [] && Queue.is_empty t.inflight

let accepted_ops t = t.accepted

let retries t = t.retries

let overloads t = List.rev t.overloads

let rejects t = List.rev t.rejects

let matured t name =
  List.rev t.matured
  |> List.filter_map (fun (tn, ord, id) -> if tn = name then Some (ord, id) else None)

let stats_bodies t = List.rev t.stats

let got_bye t = t.bye

let take_transcript t =
  let xs = List.rev t.transcript in
  t.transcript <- [];
  xs
