(** Combined-fault soak harness: churn a multi-tenant {!Hub} under
    simultaneous storage faults and network faults, then prove the run
    lost nothing.

    Per tenant, the harness:

    - drives [queries] registrations, [elements] stream elements (mostly
      as {!Frame.Batch} frames of [batch]), and churn
      (terminate + fresh register) through a dedicated client;
    - interposes {!Rts_resilience.Fault.wrap} on the first
      [faulty_incarnations] lives of the tenant's store, with
      PRNG-drawn crash points, torn tails, bit flips,
      crash-at-checkpoint, silent short writes (always armed one append
      before a crash, so the scanner-amputated record is resubmitted on
      recovery) and sticky {!Rts_resilience.Io.No_space};
    - optionally wedges tenants mid-run ({!Server.inject_wedge}) so the
      watchdog's stall detection restarts them too;
    - runs the whole deployment over a faulty network
      ({!Rts_net.Net_fault.spec} + {!Rts_net.Reliable} timers).

    Afterwards the {e oracle} is computed per tenant: scan the
    surviving WAL ({!Rts_resilience.Wal.scan} of the tenant's base dir)
    and replay it on a fresh, plain, fault-free engine of the same
    kind. The run passes iff, for every tenant:

    - the server's own maturity log is bit-identical to the oracle's;
    - the subscriber's received maturity stream is bit-identical too
      (accepted => durable => matured exactly once, never early,
      across every crash, wedge, restart and retransmission);
    - accepted ops = applied + benignly rejected, and the WAL holds
      exactly [applied] records. *)

open Rts_core

type config = {
  tenants : int;
  queries : int;  (** Initial registrations per tenant. *)
  elements : int;  (** Stream elements per tenant. *)
  batch : int;  (** Elements per {!Frame.Batch} ([1] = singleton frames). *)
  threshold : int;  (** Max maturity threshold drawn per query. *)
  churn : float;  (** Per-chunk probability of a terminate + register. *)
  dim : int;
  seed : int;  (** Master seed — the whole run replays from it. *)
  faulty_incarnations : int;  (** Fault-wrapped lives per tenant. *)
  crash_every : int;  (** Mean appends between drawn crash points. *)
  wedges : int;  (** Wedge injections spread across the run. *)
  net : Rts_net.Net_fault.spec;
  reliable : Rts_net.Reliable.config;
  server : Server.config;
}

val default : config
(** A small but fault-dense configuration: 3 tenants, combined
    crash + short-write + ENOSPC + net-fault pressure, tight queue so
    backpressure fires. *)

type tenant_report = {
  name : string;
  accepted : int;
  applied : int;
  rejected : int;  (** Benign engine rejections (churn races). *)
  wal_records : int;
  restarts : int;
  matured : int;
  log_ok : bool;  (** Server maturity log == oracle. *)
  sub_ok : bool;  (** Subscriber's received stream == oracle. *)
  acct_ok : bool;  (** accepted = applied + rejected; WAL = applied. *)
}

type report = {
  per_tenant : tenant_report list;
  crashes : int;
  restarts_total : int;
  client_retries : int;  (** {!Frame.Retry_after} rounds observed. *)
  overloads : int;  (** Typed {!Frame.Overloaded} refusals observed. *)
  net_retransmits : int;
  ok : bool;
      (** Every tenant's [log_ok && sub_ok && acct_ok], and — when
          [faulty_incarnations > 0] — at least one crash was actually
          exercised. *)
}

val run : ?progress:(string -> unit) -> make:(dim:int -> Engine.t) -> config -> report
(** Deterministic: same [config] (and engine kind) — same report. *)

val pp_report : Format.formatter -> report -> unit
