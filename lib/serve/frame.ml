open Rts_workload

type client =
  | Op of { tenant : string; op : Replay.op }
  | Batch of { tenant : string; elems : Rts_core.Types.elem array }
  | Subscribe of { tenant : string; after : int }
  | Stats
  | Shutdown

type reason = Tenants | Quota | Wal_lag | Budget | Disk_full

type server =
  | Accepted of { tenant : string; ops : int }
  | Overloaded of { tenant : string; reason : reason }
  | Retry_after of { ticks : int }
  | Rejected of { message : string }
  | Matured of { tenant : string; ordinal : int; ids : int list }
  | Stats_reply of { body : string }
  | Bye

let tenant_ok name =
  name <> ""
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> true | _ -> false)
       name

let reason_to_string = function
  | Tenants -> "tenants"
  | Quota -> "quota"
  | Wal_lag -> "wal_lag"
  | Budget -> "budget"
  | Disk_full -> "disk_full"

let reason_of_string = function
  | "tenants" -> Some Tenants
  | "quota" -> Some Quota
  | "wal_lag" -> Some Wal_lag
  | "budget" -> Some Budget
  | "disk_full" -> Some Disk_full
  | _ -> None

(* Split [s] at the first [','], or [None] if there is none. Frame
   payloads that themselves contain commas (op lines) always ride in the
   last position, so parsing only ever cuts a bounded prefix. *)
let cut s =
  match String.index_opt s ',' with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let client_to_string = function
  | Op { tenant; op } -> Printf.sprintf "op,%s,%s" tenant (Replay.op_to_line op)
  | Batch { tenant; elems } ->
      Printf.sprintf "batch,%s,%s" tenant
        (String.concat ";"
           (Array.to_list (Array.map (fun e -> Csv_io.element_to_line e) elems)))
  | Subscribe { tenant; after } ->
      if after = 0 then "sub," ^ tenant else Printf.sprintf "sub,%s,%d" tenant after
  | Stats -> "stats"
  | Shutdown -> "shutdown"

let with_tenant rest k =
  match cut rest with
  | Some (tenant, payload) when tenant_ok tenant -> k tenant payload
  | _ -> Error "bad tenant field"

let client_of_string ~dim line =
  let line = String.trim line in
  match cut line with
  | None -> (
      match line with
      | "stats" -> Ok Stats
      | "shutdown" -> Ok Shutdown
      | _ -> Error (Printf.sprintf "unknown frame %S" line))
  | Some ("sub", rest) -> (
      (* [sub,<tenant>] subscribes from genesis; [sub,<tenant>,<after>]
         resumes past the element-ordinal watermark [after] — the
         re-subscribe form a client uses after failing over to a new
         primary, so maturities it already consumed are not re-pushed. *)
      match cut rest with
      | None ->
          if tenant_ok rest then Ok (Subscribe { tenant = rest; after = 0 })
          else Error "bad tenant field"
      | Some (tenant, aft) ->
          if not (tenant_ok tenant) then Error "bad tenant field"
          else (
            match int_of_string_opt aft with
            | Some after when after >= 0 -> Ok (Subscribe { tenant; after })
            | _ -> Error ("bad watermark " ^ aft)))
  | Some ("op", rest) ->
      with_tenant rest (fun tenant payload ->
          match Replay.parse_op ~dim ~line_no:0 payload with
          | op -> Ok (Op { tenant; op })
          | exception Csv_io.Parse_error msg -> Error msg)
  | Some ("batch", rest) ->
      with_tenant rest (fun tenant payload ->
          match
            String.split_on_char ';' payload
            |> List.map (fun l -> Csv_io.parse_element ~dim ~line_no:0 l)
          with
          | elems -> Ok (Batch { tenant; elems = Array.of_list elems })
          | exception Csv_io.Parse_error msg -> Error msg)
  | Some (verb, _) -> Error (Printf.sprintf "unknown frame verb %S" verb)

let server_to_string = function
  | Accepted { tenant; ops } -> Printf.sprintf "accepted,%s,%d" tenant ops
  | Overloaded { tenant; reason } ->
      Printf.sprintf "overloaded,%s,%s" tenant (reason_to_string reason)
  | Retry_after { ticks } -> Printf.sprintf "retry,%d" ticks
  | Rejected { message } -> Printf.sprintf "rejected,%S" message
  | Matured { tenant; ordinal; ids } ->
      Printf.sprintf "matured,%s,%d,%s" tenant ordinal
        (String.concat ";" (List.map string_of_int ids))
  | Stats_reply { body } -> Printf.sprintf "stats,%S" body
  | Bye -> "bye"

let int_of s = match int_of_string_opt s with Some n -> Ok n | None -> Error ("bad int " ^ s)

let unescape s =
  match Scanf.sscanf s "%S%!" (fun x -> x) with
  | x -> Ok x
  | exception _ -> Error "bad escaped string"

let server_of_string line =
  let line = String.trim line in
  let ( let* ) = Result.bind in
  match cut line with
  | None -> if line = "bye" then Ok Bye else Error (Printf.sprintf "unknown frame %S" line)
  | Some ("accepted", rest) ->
      with_tenant rest (fun tenant n ->
          let* ops = int_of n in
          Ok (Accepted { tenant; ops }))
  | Some ("overloaded", rest) ->
      with_tenant rest (fun tenant r ->
          match reason_of_string r with
          | Some reason -> Ok (Overloaded { tenant; reason })
          | None -> Error ("unknown overload reason " ^ r))
  | Some ("retry", n) ->
      let* ticks = int_of n in
      Ok (Retry_after { ticks })
  | Some ("rejected", rest) ->
      let* message = unescape rest in
      Ok (Rejected { message })
  | Some ("matured", rest) ->
      with_tenant rest (fun tenant payload ->
          match cut payload with
          | None -> Error "matured: missing ids"
          | Some (ord, ids) ->
              let* ordinal = int_of ord in
              let* ids =
                List.fold_right
                  (fun s acc ->
                    let* acc = acc in
                    let* i = int_of s in
                    Ok (i :: acc))
                  (if ids = "" then [] else String.split_on_char ';' ids)
                  (Ok [])
              in
              Ok (Matured { tenant; ordinal; ids }))
  | Some ("stats", rest) ->
      let* body = unescape rest in
      Ok (Stats_reply { body })
  | Some (verb, _) -> Error (Printf.sprintf "unknown frame verb %S" verb)

let pp_client ppf f = Format.pp_print_string ppf (client_to_string f)
let pp_server ppf f = Format.pp_print_string ppf (server_to_string f)
