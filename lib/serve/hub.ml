module Vclock = Rts_net.Vclock
module Envelope = Rts_net.Envelope
module Reliable = Rts_net.Reliable
module Net_fault = Rts_net.Net_fault
module Prng = Rts_util.Prng

type t = {
  clock : Vclock.t;
  server : Server.t;
  clients : Client.t array;
  fabric : Reliable.t;
}

let create ?(server_config = Server.default) ?(net = Net_fault.none)
    ?(reliable = Reliable.default) ?(net_seed = 1) ~clients ~make ~provider () =
  if clients < 1 then invalid_arg "Hub.create: need at least one client";
  let clock = Vclock.create () in
  let rng = Prng.create ~seed:net_seed in
  (* Tie the knots (server/clients need the fabric to send, the fabric
     needs them to deliver) through forward references. *)
  let fabric_ref = ref None in
  let server_ref = ref None in
  let clients_ref = ref [||] in
  let fabric_send ~src ~dst body =
    match !fabric_ref with
    | Some fabric -> Reliable.send fabric ~src ~dst (Envelope.App { body })
    | None -> assert false
  in
  let deliver (env : Envelope.t) =
    match env.payload with
    | Envelope.App { body } -> (
        match env.dst with
        | Envelope.Coordinator -> (
            let server = match !server_ref with Some s -> s | None -> assert false in
            match Frame.client_of_string ~dim:server_config.Server.dim body with
            | Ok frame -> Server.handle server ~src:(Envelope.node_id env.src) frame
            | Error message ->
                (* a daemon never crashes on wire garbage *)
                fabric_send ~src:Envelope.Coordinator ~dst:env.src
                  (Frame.server_to_string (Frame.Rejected { message })))
        | Envelope.Site i -> (
            match Frame.server_of_string body with
            | Ok frame -> Client.deliver !clients_ref.(i) frame
            | Error msg -> failwith ("Hub: bad server frame on the wire: " ^ msg)))
    | _ -> ()
  in
  let fabric =
    Reliable.create ~config:reliable ~clock ~rng ~spec:net ~deliver
      ~on_degrade:(fun _ -> ())
      ()
  in
  fabric_ref := Some fabric;
  let server =
    Server.create ~config:server_config ~clock ~make ~provider
      ~send:(fun ~dst frame ->
        fabric_send ~src:Envelope.Coordinator ~dst:(Envelope.Site dst)
          (Frame.server_to_string frame))
      ()
  in
  server_ref := Some server;
  let client_arr =
    Array.init clients (fun i ->
        Client.create ~site:i ~clock
          ~send:(fun frame ->
            fabric_send ~src:(Envelope.Site i) ~dst:Envelope.Coordinator
              (Frame.client_to_string frame))
          ())
  in
  clients_ref := client_arr;
  { clock; server; clients = client_arr; fabric }

let clock t = t.clock

let server t = t.server

let client t i =
  if i < 0 || i >= Array.length t.clients then invalid_arg "Hub.client: index out of range";
  t.clients.(i)

let clients t = Array.length t.clients

let run ?max_steps t = Vclock.run_until_idle ?max_steps t.clock

let net_metrics t = Reliable.metrics t.fabric
