(** A scripted [rts-serve] client: windowed outbox + typed reply
    tracking.

    The transport delivers replies in the order frames were sent
    (per-link FIFO both ways), so the client matches each reply to the
    head of its in-flight queue; {!Frame.Matured} frames are
    asynchronous pushes and match nothing. On {!Frame.Retry_after} the
    frame is rescheduled on the virtual clock and re-sent at the front
    of the outbox — the cooperative half of the server's backpressure
    loop. *)

type t

val create :
  site:int -> clock:Rts_net.Vclock.t -> ?window:int -> send:(Frame.client -> unit) -> unit -> t
(** [send] transmits one frame from this client's site toward the
    server (default [window] 32 frames in flight). *)

val enqueue : t -> Frame.client -> unit
(** Queue a frame; it is sent as soon as the window allows. *)

val deliver : t -> Frame.server -> unit
(** Feed one reply/push from the transport. *)

val requeue_inflight : t -> int
(** Failover support: move every unanswered in-flight frame back to the
    front of the outbox (original order) to be re-sent — at-least-once —
    to a newly promoted primary, except [Subscribe] frames, which are
    dropped (re-subscribe with {!watermark} instead). Returns the number
    of frames requeued. The caller should re-point its [send] routing
    before the next {!enqueue}/{!kick} pumps the outbox. *)

val kick : t -> unit
(** Pump the outbox through the window now (used after
    {!requeue_inflight} once routing points at the new primary). *)

val watermark : t -> string -> int
(** Highest element ordinal among maturities received for the tenant
    (0 if none) — the [after] value for an exactly-once re-subscribe. *)

val inflight : t -> int

val idle : t -> bool
(** Nothing queued and nothing awaiting a reply. *)

(* ---- what the client observed ---- *)

val accepted_ops : t -> int
(** Ops the server acknowledged as admitted. *)

val retries : t -> int

val overloads : t -> (string * Frame.reason) list
(** (tenant, reason), in arrival order. *)

val rejects : t -> string list

val matured : t -> string -> (int * int) list
(** [(element ordinal, query id)] pushes received for a tenant, in
    arrival order, one pair per matured id — directly comparable to
    {!Server.maturity_log} and the replay oracle. *)

val stats_bodies : t -> string list

val got_bye : t -> bool

val take_transcript : t -> Frame.server list
(** All frames received since the last call, in arrival order — the
    interactive session loop's display feed. *)
