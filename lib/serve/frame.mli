(** Wire frames of the [rts-serve] protocol.

    One frame = one line of text, carried as the opaque [body] of an
    {!Rts_net.Envelope.App} payload over the {!Rts_net.Reliable}
    transport (clients are [Site i], the daemon is [Coordinator]), or
    spoken directly over stdin/stdout by [rts-serve session]. The
    transport owns sequencing, retransmission and exactly-once in-order
    delivery; frames carry no sequence numbers of their own.

    Client -> server ({!client}):
    {v
    op,<tenant>,<R/T/E op line>       register / terminate / feed
    batch,<tenant>,<E line>[;<E line>...]   feed_batch (one instant)
    sub,<tenant>[,<after>]            subscribe-maturities (resume past watermark)
    stats                             server metric snapshot
    shutdown                          drain everything, sync, stop
    v}

    Server -> client ({!server}):
    {v
    accepted,<tenant>,<n>             n ops admitted into the tenant queue
    overloaded,<tenant>,<reason>      admission refused (typed reason)
    retry,<ticks>                     backpressure: queue full, try later
    rejected,<msg>                    malformed frame / benign engine error
    matured,<tenant>,<ordinal>,<id>[;<id>...]   push to subscribers
    stats,<body>                      metric snapshot (escaped string)
    bye                               shutdown acknowledged
    v}

    Replies to a client's frames arrive in the order the frames were
    sent (per-link FIFO); [matured] frames are asynchronous pushes
    interleaved among them and answer nothing. *)

open Rts_workload

type client =
  | Op of { tenant : string; op : Replay.op }
      (** REGISTER / TERMINATE / one element, as a {!Replay.op}. *)
  | Batch of { tenant : string; elems : Rts_core.Types.elem array }
      (** Many elements in one frame — transport-level batching. *)
  | Subscribe of { tenant : string; after : int }
      (** Subscribe to maturity pushes. [after] is an element-ordinal
          watermark: the backfill skips maturities with ordinal [<=
          after]. [0] (the wire default) replays from genesis; a client
          re-subscribing to a freshly promoted primary passes the
          highest ordinal it has already consumed, keeping the push
          stream exactly-once across failover. *)
  | Stats
  | Shutdown

type reason =
  | Tenants  (** tenant table full *)
  | Quota  (** per-tenant alive-query quota reached *)
  | Wal_lag  (** accepted-but-not-yet-durable backlog over the limit *)
  | Budget  (** tenant's DT protocol message budget exhausted *)
  | Disk_full  (** tenant storage reported {!Rts_resilience.Io.No_space} *)

type server =
  | Accepted of { tenant : string; ops : int }
  | Overloaded of { tenant : string; reason : reason }
  | Retry_after of { ticks : int }
  | Rejected of { message : string }
  | Matured of { tenant : string; ordinal : int; ids : int list }
      (** [ordinal] is the tenant's global {e element} ordinal, the same
          coordinate {!Rts_workload.Replay.outcome.maturities} uses. *)
  | Stats_reply of { body : string }
  | Bye

val tenant_ok : string -> bool
(** Valid tenant names: nonempty, over [A-Za-z0-9_.-]. *)

val reason_to_string : reason -> string
val reason_of_string : string -> reason option

val client_to_string : client -> string
val client_of_string : dim:int -> string -> (client, string) result

val server_to_string : server -> string
val server_of_string : string -> (server, string) result

val pp_client : Format.formatter -> client -> unit
val pp_server : Format.formatter -> server -> unit
