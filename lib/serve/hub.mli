(** One simulated [rts-serve] deployment: a {!Server}, [n] {!Client}s,
    and the {!Rts_net.Reliable} fabric between them, all driven by one
    deterministic virtual clock.

    Frames travel as {!Rts_net.Envelope.App} payloads; the server is
    the [Coordinator] node, client [i] is [Site i]. The net fault spec
    and the Reliable timer config apply to every link, so a whole
    deployment run — admission, backpressure, crashes, restarts,
    retransmissions — is a pure function of the configs and seeds. *)

open Rts_core
open Rts_resilience

type t

val create :
  ?server_config:Server.config ->
  ?net:Rts_net.Net_fault.spec ->
  ?reliable:Rts_net.Reliable.config ->
  ?net_seed:int ->
  clients:int ->
  make:(dim:int -> Engine.t) ->
  provider:(tenant:string -> incarnation:int -> Io.dir) ->
  unit ->
  t
(** Defaults: no net faults, {!Rts_net.Reliable.default} timers,
    [net_seed] 1. *)

val clock : t -> Rts_net.Vclock.t

val server : t -> Server.t

val client : t -> int -> Client.t
(** Raises [Invalid_argument] on an out-of-range index. *)

val clients : t -> int

val run : ?max_steps:int -> t -> unit
(** Drain the virtual clock to quiescence (see
    {!Rts_net.Vclock.run_until_idle}). *)

val net_metrics : t -> Rts_obs.Metrics.snapshot
