module Prng = Rts_util.Prng
module Types = Rts_core.Types
module Replay = Rts_workload.Replay
module Generator = Rts_workload.Generator
module Io = Rts_resilience.Io
module Fault = Rts_resilience.Fault
module Wal = Rts_resilience.Wal
module Vclock = Rts_net.Vclock
module Net_fault = Rts_net.Net_fault
module Reliable = Rts_net.Reliable
module Metrics = Rts_obs.Metrics

type config = {
  tenants : int;
  queries : int;
  elements : int;
  batch : int;
  threshold : int;
  churn : float;
  dim : int;
  seed : int;
  faulty_incarnations : int;
  crash_every : int;
  wedges : int;
  net : Net_fault.spec;
  reliable : Reliable.config;
  server : Server.config;
}

let default =
  {
    tenants = 3;
    queries = 40;
    elements = 600;
    batch = 8;
    threshold = 2500;
    churn = 0.15;
    dim = 2;
    seed = 1;
    faulty_incarnations = 4;
    crash_every = 150;
    wedges = 2;
    net = { Net_fault.none with drop = 0.1; duplicate = 0.05; reorder = 0.2 };
    reliable = Reliable.default;
    server =
      {
        Server.default with
        Server.queue_capacity = 16;
        drain_per_tick = 6;
        durable = { Rts_resilience.Durable.default with fsync_every = 7; checkpoint_every = 97 };
      };
  }

(* Deterministic seed mixing (independent of Hashtbl.hash, which is not
   pinned across compiler versions — these seeds appear in CI). *)
let mix seed name incarnation =
  let h = ref (seed * 1_000_003) in
  String.iter (fun c -> h := (!h * 31) + Char.code c) name;
  h := (!h * 31) + incarnation;
  !h land 0x3FFFFFFF

let draw_plan cfg rng =
  let crash_at = 2 + Prng.int rng (max 1 (2 * cfg.crash_every)) in
  let short_at =
    (* always one append before the crash: the partial record is the
       final one on the surviving log, so the scanner amputates it and
       recovery resubmits the op — a short write that nothing ever
       crashes on would be silent data loss (see Fault.plan docs) *)
    if Prng.int rng 3 = 0 then Some (crash_at - 1) else None
  in
  {
    Fault.crash_at_append = crash_at;
    torn = Prng.bool rng;
    bit_flip = Prng.int rng 3 = 0;
    crash_at_atomic = (if Prng.int rng 4 = 0 then Some (1 + Prng.int rng 2) else None);
    short_at_append = short_at;
    enospc_at_append =
      (if Prng.int rng 5 = 0 then Some (1 + Prng.int rng (max 1 cfg.crash_every)) else None);
  }

type tenant_report = {
  name : string;
  accepted : int;
  applied : int;
  rejected : int;
  wal_records : int;
  restarts : int;
  matured : int;
  log_ok : bool;
  sub_ok : bool;
  acct_ok : bool;
}

type report = {
  per_tenant : tenant_report list;
  crashes : int;
  restarts_total : int;
  client_retries : int;
  overloads : int;
  net_retransmits : int;
  ok : bool;
}

let tenant_name i = Printf.sprintf "t%d" i

(* Build each tenant's frame script: registrations, batched elements,
   churn. Returned in send order. *)
let script cfg ~tenant_idx =
  let tenant = tenant_name tenant_idx in
  let rng = Prng.create ~seed:(mix cfg.seed tenant 0x5c71) in
  let gen = Generator.create ~dim:cfg.dim ~seed:(mix cfg.seed tenant 0x9e3d) () in
  let next_id = ref 0 in
  let known = ref [] in
  let frames = ref [] in
  let emit f = frames := f :: !frames in
  let register () =
    let id = !next_id in
    incr next_id;
    known := id :: !known;
    let threshold = 1 + Prng.int rng (max 1 cfg.threshold) in
    emit (Frame.Op { tenant; op = Replay.Register (Generator.query gen ~id ~threshold) })
  in
  for _ = 1 to cfg.queries do
    register ()
  done;
  let remaining = ref cfg.elements in
  while !remaining > 0 do
    let n = min cfg.batch !remaining in
    remaining := !remaining - n;
    if n = 1 then emit (Frame.Op { tenant; op = Replay.Element (Generator.element gen) })
    else
      emit
        (Frame.Batch { tenant; elems = Array.init n (fun _ -> Generator.element gen) });
    if Prng.float rng 1.0 < cfg.churn then begin
      (match !known with
      | [] -> ()
      | ids ->
          (* possibly already matured or terminated — exercising the
             benign-rejection path is the point *)
          let id = List.nth ids (Prng.int rng (List.length ids)) in
          emit (Frame.Op { tenant; op = Replay.Terminate id }));
      register ()
    end
  done;
  List.rev !frames

let run ?(progress = fun _ -> ()) ~make cfg =
  if cfg.tenants < 1 || cfg.queries < 1 || cfg.elements < 0 || cfg.batch < 1 then
    invalid_arg "Soak.run: nonsensical config";
  let bases : (string, Io.dir) Hashtbl.t = Hashtbl.create 8 in
  let base_of tenant =
    match Hashtbl.find_opt bases tenant with
    | Some d -> d
    | None ->
        let d = Io.mem_dir () in
        Hashtbl.add bases tenant d;
        d
  in
  let provider ~tenant ~incarnation =
    let base = base_of tenant in
    if incarnation < cfg.faulty_incarnations then
      let rng = Prng.create ~seed:(mix cfg.seed tenant incarnation) in
      Fault.wrap ~rng (draw_plan cfg rng) base
    else base
  in
  let server_config = { cfg.server with Server.dim = cfg.dim; max_tenants = cfg.tenants } in
  (* one client per tenant, plus a dedicated subscriber watching all *)
  let hub =
    Hub.create ~server_config ~net:cfg.net ~reliable:cfg.reliable
      ~net_seed:(mix cfg.seed "net" 0) ~clients:(cfg.tenants + 1) ~make ~provider ()
  in
  let server = Hub.server hub in
  let subscriber = Hub.client hub cfg.tenants in
  for i = 0 to cfg.tenants - 1 do
    Client.enqueue subscriber (Frame.Subscribe { tenant = tenant_name i; after = 0 })
  done;
  for i = 0 to cfg.tenants - 1 do
    let frames = script cfg ~tenant_idx:i in
    let client = Hub.client hub i in
    List.iter (fun f -> Client.enqueue client f) frames
  done;
  (* wedge injections at staggered virtual times, cycling tenants *)
  for w = 0 to cfg.wedges - 1 do
    let name = tenant_name (w mod cfg.tenants) in
    ignore
      (Vclock.schedule (Hub.clock hub)
         ~delay:(40 + (w * 97))
         (fun () ->
           match Server.inject_wedge server name with
           | () -> ()
           | exception Invalid_argument _ -> ()))
  done;
  progress "soak: driving churn to quiescence";
  Hub.run hub;
  progress "soak: quiescent; shutting down";
  Server.shutdown server;
  (* flush the Matured pushes emitted during the final drain *)
  Hub.run hub;
  progress "soak: verifying against the WAL oracle";
  let per_tenant =
    List.init cfg.tenants (fun i ->
        let name = tenant_name i in
        let scanned = Wal.scan ~dim:cfg.dim ~dir:(base_of name) () in
        let oracle = Replay.replay_ops (make ~dim:cfg.dim) scanned.Wal.ops in
        let log = Server.maturity_log server name in
        let sub = Client.matured subscriber name in
        (match Sys.getenv_opt "RTS_SERVE_TRACE" with
        | Some t
          when (t = name || t = "all")
               && (log <> oracle.Replay.maturities || sub <> oracle.Replay.maturities) ->
            let dump tag l =
              Printf.eprintf "[%s] %s (%d):%s\n%!" name tag (List.length l)
                (String.concat ""
                   (List.map (fun (o, id) -> Printf.sprintf " %d:%d" o id) l))
            in
            dump "oracle" oracle.Replay.maturities;
            dump "server" log;
            dump "subscr" sub;
            List.iteri
              (fun i op ->
                Printf.eprintf "[%s] wal ord=%d %s\n%!" name (i + 1) (Replay.op_to_line op))
              scanned.Wal.ops
        | _ -> ());
        let accepted = Server.accepted_ops server name in
        let applied = Server.applied_ops server name in
        let rejected = Server.rejected_ops server name in
        {
          name;
          accepted;
          applied;
          rejected;
          wal_records = scanned.Wal.base + scanned.Wal.records;
          restarts = Server.restarts server name;
          matured = List.length log;
          log_ok = log = oracle.Replay.maturities;
          sub_ok = sub = oracle.Replay.maturities;
          acct_ok =
            accepted = applied + rejected
            && scanned.Wal.base + scanned.Wal.records = applied;
        })
  in
  let crashes = Server.crashes server in
  let snap = Server.metrics server in
  let restarts_total = Metrics.counter_value snap "serve_restarts_total" in
  let client_retries =
    let n = ref 0 in
    for i = 0 to Hub.clients hub - 1 do
      n := !n + Client.retries (Hub.client hub i)
    done;
    !n
  in
  let overloads =
    let n = ref 0 in
    for i = 0 to Hub.clients hub - 1 do
      n := !n + List.length (Client.overloads (Hub.client hub i))
    done;
    !n
  in
  let net_retransmits =
    Metrics.counter_value (Hub.net_metrics hub) "net_retransmits_total"
  in
  let ok =
    List.for_all (fun r -> r.log_ok && r.sub_ok && r.acct_ok) per_tenant
    && (cfg.faulty_incarnations = 0 || crashes > 0)
  in
  { per_tenant; crashes; restarts_total; client_retries; overloads; net_retransmits; ok }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun t ->
      Format.fprintf ppf
        "tenant %-6s accepted=%-6d applied=%-6d rejected=%-4d wal=%-6d restarts=%-3d \
         matured=%-5d log=%s sub=%s acct=%s@,"
        t.name t.accepted t.applied t.rejected t.wal_records t.restarts t.matured
        (if t.log_ok then "ok" else "MISMATCH")
        (if t.sub_ok then "ok" else "MISMATCH")
        (if t.acct_ok then "ok" else "MISMATCH"))
    r.per_tenant;
  Format.fprintf ppf
    "crashes=%d restarts=%d client_retries=%d overloads=%d net_retransmits=%d => %s@]"
    r.crashes r.restarts_total r.client_retries r.overloads r.net_retransmits
    (if r.ok then "PASS" else "FAIL")
