module Types = Rts_core.Types
module Engine = Rts_core.Engine
module Dt = Rts_dt.Distributed_tracking
module Net_tracking = Rts_dt.Net_tracking
module Net_fault = Rts_net.Net_fault
module Reliable = Rts_net.Reliable
module Metrics = Rts_obs.Metrics

type config = {
  sites : int;
  faults : Net_fault.spec;
  seed : int;
  reliable : Reliable.config;
}

let default =
  {
    sites = 4;
    faults = Net_fault.none;
    seed = 0x534841;
    reliable = Reliable.default;
  }

(* Totals folded in when an instance retires (matures or terminates), so
   aggregate accounting survives instance teardown. *)
type totals = {
  mutable messages : int;
  mutable deliveries : int;
  mutable stale : int;
  mutable retransmits : int;
  mutable degraded : int;
  mutable bound : int;
}

type t = {
  config : config;
  dim : int;
  live : (int, Types.query * Net_tracking.t) Hashtbl.t;
  lagging : (int, unit) Hashtbl.t;
      (* ids the engine already matured but whose degraded shadow instance
         has not yet detected (never-early, eventually-late semantics) *)
  retired : totals;
  mutable elements : int;
  mutable registered : int;
  mutable matured : int;
  mutable terminated : int;
  mutable late : int; (* degraded instances that matured after the engine *)
  mutable never_early : bool; (* sticky: estimate <= total at every check *)
  mutable mismatches : int; (* engine/shadow maturity-set divergences *)
}

let create ?(config = default) ~dim () =
  if config.sites < 1 then invalid_arg "Net_shadow.create: sites < 1";
  (match Net_fault.validate config.faults with
  | Ok _ -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Net_shadow.create: %s" msg));
  {
    config;
    dim;
    live = Hashtbl.create 64;
    lagging = Hashtbl.create 4;
    retired = { messages = 0; deliveries = 0; stale = 0; retransmits = 0; degraded = 0; bound = 0 };
    elements = 0;
    registered = 0;
    matured = 0;
    terminated = 0;
    late = 0;
    never_early = true;
    mismatches = 0;
  }

(* Every instance replays its own fault trajectory: mix the query id into
   the spec seed so trajectories are independent but reproducible. *)
let instance_seed t id = t.config.seed lxor ((id + 1) * 0x9e3779b9)

let register t (q : Types.query) =
  Types.validate_query ~dim:t.dim q;
  if Hashtbl.mem t.live q.id then
    invalid_arg (Printf.sprintf "Net_shadow.register: duplicate alive id %d" q.id);
  let nt =
    Net_tracking.create
      ~config:
        {
          Net_tracking.faults = t.config.faults;
          seed = instance_seed t q.id;
          reliable = t.config.reliable;
          max_steps = Net_tracking.default.Net_tracking.max_steps;
        }
      ~h:t.config.sites ~tau:q.threshold ()
  in
  Hashtbl.replace t.live q.id (q, nt);
  t.registered <- t.registered + 1

let register_batch t qs = List.iter (register t) qs

let retire t nt =
  let r = t.retired in
  r.messages <- r.messages + Net_tracking.messages nt;
  r.deliveries <- r.deliveries + Net_tracking.deliveries nt;
  r.stale <- r.stale + Net_tracking.stale nt;
  r.retransmits <- r.retransmits + Net_tracking.retransmits nt;
  r.degraded <- r.degraded + Net_tracking.degraded_sites nt;
  r.bound <-
    r.bound
    + Dt.message_bound ~h:t.config.sites
        ~tau:(Rts_dt.Distributed_tracking.Machine.tau (Net_tracking.state nt))

let terminate t id =
  match Hashtbl.find_opt t.live id with
  | None -> raise Not_found
  | Some (_, nt) ->
      retire t nt;
      Hashtbl.remove t.live id;
      t.terminated <- t.terminated + 1

let process t (elem : Types.elem) =
  Types.validate_elem ~dim:t.dim elem;
  (* Deterministic site assignment: round-robin over the element ordinal,
     identical for every query, so cross-engine comparisons see the same
     distributed schedule. *)
  let site = t.elements mod t.config.sites in
  t.elements <- t.elements + 1;
  let matured = ref [] in
  Hashtbl.iter
    (fun id ((q : Types.query), nt) ->
      if Types.rect_contains q.rect elem.value then begin
        let m = Net_tracking.increment nt ~site ~by:elem.weight in
        if Net_tracking.estimate nt > Net_tracking.total nt then t.never_early <- false;
        if m then matured := id :: !matured
      end)
    t.live;
  let matured = Engine.sort_matured !matured in
  List.iter
    (fun id ->
      let _, nt = Hashtbl.find t.live id in
      retire t nt;
      Hashtbl.remove t.live id;
      t.matured <- t.matured + 1)
    matured;
  matured

let live t = Hashtbl.length t.live

let elements t = t.elements

let registered t = t.registered

let fold_live t f init =
  Hashtbl.fold (fun _ (_, nt) acc -> f acc nt) t.live init

let messages t = fold_live t (fun acc nt -> acc + Net_tracking.messages nt) t.retired.messages

let deliveries t = fold_live t (fun acc nt -> acc + Net_tracking.deliveries nt) t.retired.deliveries

let stale t = fold_live t (fun acc nt -> acc + Net_tracking.stale nt) t.retired.stale

let useful_messages t = deliveries t - stale t

let retransmits t =
  fold_live t (fun acc nt -> acc + Net_tracking.retransmits nt) t.retired.retransmits

let degraded_sites t =
  fold_live t (fun acc nt -> acc + Net_tracking.degraded_sites nt) t.retired.degraded

let message_bound_total t =
  fold_live t
    (fun acc nt ->
      acc
      + Dt.message_bound ~h:t.config.sites
          ~tau:(Rts_dt.Distributed_tracking.Machine.tau (Net_tracking.state nt)))
    t.retired.bound

let never_early_ok t = t.never_early

let mismatches t = t.mismatches

let late_maturities t = t.late

let bound_ok t =
  (* The O(h log tau) budget is only claimed for non-degraded executions:
     a degraded site legitimately pays per-update messages. *)
  degraded_sites t > 0 || useful_messages t <= message_bound_total t

let metrics t =
  Metrics.of_assoc
    [
      ("net_shadow_sites", Metrics.Gauge (float_of_int t.config.sites));
      ("net_shadow_instances_total", Metrics.Counter t.registered);
      ("net_shadow_matured_total", Metrics.Counter t.matured);
      ("net_shadow_terminated_total", Metrics.Counter t.terminated);
      ("net_messages_total", Metrics.Counter (messages t));
      ("net_deliveries_total", Metrics.Counter (deliveries t));
      ("net_stale_total", Metrics.Counter (stale t));
      ("net_useful_messages_total", Metrics.Counter (useful_messages t));
      ("net_retransmits_total", Metrics.Counter (retransmits t));
      ("net_message_bound_total", Metrics.Counter (message_bound_total t));
      ("net_degraded_sites", Metrics.Gauge (float_of_int (degraded_sites t)));
      ("net_never_early", Metrics.Gauge (if t.never_early then 1.0 else 0.0));
      ("net_late_maturities_total", Metrics.Counter t.late);
      ("net_ordinal_mismatches_total", Metrics.Counter t.mismatches);
    ]

let wrap t (engine : Engine.t) =
  let ids_str ids = String.concat ";" (List.map string_of_int ids) in
  let diverge fmt =
    Printf.ksprintf
      (fun s ->
        t.mismatches <- t.mismatches + 1;
        failwith (Printf.sprintf "net shadow divergence at element %d: %s" t.elements s))
      fmt
  in
  (* The engine is exact ground truth. A non-degraded shadow instance must
     mature on exactly the same element. A degraded instance trades
     exactness for liveness: it must never mature EARLIER than the engine
     (never-early), but may detect late — park it in [lagging] and let it
     catch up on later elements. *)
  let check ids shadow_ids =
    List.iter
      (fun id ->
        if not (List.mem id ids) then
          if Hashtbl.mem t.lagging id then begin
            Hashtbl.remove t.lagging id;
            t.late <- t.late + 1
          end
          else
            diverge "networked shadow matured %d before the engine (engine matured [%s])"
              id (ids_str ids))
      shadow_ids;
    List.iter
      (fun id ->
        if not (List.mem id shadow_ids) then
          match Hashtbl.find_opt t.live id with
          | Some (_, nt) when Net_tracking.degraded_sites nt > 0 ->
              (* Degraded link: detection may lag; keep the instance live
                 and wait for its (never-early) late maturity. *)
              Hashtbl.replace t.lagging id ()
          | Some _ ->
              diverge
                "engine matured %d but the non-degraded networked shadow did not (shadow \
                 matured [%s])"
                id (ids_str shadow_ids)
          | None -> diverge "engine matured %d unknown to the networked shadow" id)
      ids
  in
  (* The shadow's whole point is per-element cross-checking, so its
     batched path deliberately degrades to element-at-a-time: the exact
     engine and the networked shadow must be compared on every element or
     the never-early/ordinal checks lose their meaning. Verification
     harness, not a perf path. *)
  let checked_process elem =
    let ids = engine.Engine.process elem in
    let shadow_ids = process t elem in
    check ids shadow_ids;
    ids
  in
  {
    engine with
    Engine.name = engine.Engine.name ^ "+net-shadow";
    register =
      (fun q ->
        engine.Engine.register q;
        register t q);
    register_batch =
      (fun qs ->
        engine.Engine.register_batch qs;
        register_batch t qs);
    terminate =
      (fun id ->
        engine.Engine.terminate id;
        terminate t id);
    process = checked_process;
    feed_batch = Engine.batch_of_process checked_process;
    metrics = (fun () -> Metrics.merge (engine.Engine.metrics ()) (metrics t));
  }
