(** Networked shadow validation: run one {!Rts_dt.Net_tracking} instance
    per registered query over a faulty simulated network, next to any
    {!Rts_core.Engine}, and check that the networked protocol matures
    each query on exactly the same stream element as the engine.

    Elements are assigned to the [sites] participants round-robin over
    the global element ordinal — the same deterministic distributed
    schedule for every query and every engine, so the maturity logs are
    comparable verbatim. Each instance replays an independent,
    reproducible fault trajectory (the spec seed mixed with the query
    id).

    Accounting survives query churn: when an instance retires (matures
    or is terminated) its message/bound totals fold into the shadow's
    running totals, so {!useful_messages}, {!message_bound_total} and
    friends cover the whole run. *)

type config = {
  sites : int;  (** Participants [h] per networked instance, >= 1. *)
  faults : Rts_net.Net_fault.spec;
  seed : int;  (** Base PRNG seed; mixed with each query id. *)
  reliable : Rts_net.Reliable.config;
}

val default : config
(** 4 sites, zero faults, {!Rts_net.Reliable.default}. *)

type t

val create : ?config:config -> dim:int -> unit -> t
(** Raises [Invalid_argument] on [sites < 1] or an invalid fault spec. *)

val register : t -> Rts_core.Types.query -> unit
val register_batch : t -> Rts_core.Types.query list -> unit

val terminate : t -> int -> unit
(** Raises [Not_found] if the id is not alive in the shadow. *)

val process : t -> Rts_core.Types.elem -> int list
(** Feed one element to every watching instance (weight-preserving);
    returns matured ids ascending, removing them — the same contract as
    {!Rts_core.Engine.t.process}. *)

val live : t -> int
val elements : t -> int

val registered : t -> int
(** Instances ever registered (live + retired). *)

val messages : t -> int
(** Unique protocol sends across all instances, live and retired. *)

val deliveries : t -> int
val stale : t -> int

val useful_messages : t -> int
(** [deliveries - stale], the figure held against
    {!message_bound_total}. *)

val retransmits : t -> int
val degraded_sites : t -> int

val message_bound_total : t -> int
(** Sum of {!Rts_dt.Distributed_tracking.message_bound} over every
    instance ever registered. *)

val never_early_ok : t -> bool
(** Sticky invariant: the coordinator estimate never exceeded ground
    truth on any instance at any check point. *)

val bound_ok : t -> bool
(** [useful_messages <= message_bound_total], or degradation occurred
    (degraded links legitimately trade the bound for per-update
    traffic). *)

val mismatches : t -> int
(** Engine/shadow maturity-set divergences observed by {!wrap}. *)

val late_maturities : t -> int
(** Degraded instances that matured after the engine did — allowed by the
    graceful-degradation contract (never early, eventually detected). *)

val metrics : t -> Rts_obs.Metrics.snapshot
(** [net_shadow_*] and [net_*] totals plus the [net_never_early] and
    [net_degraded_sites] gauges. *)

val wrap : t -> Rts_core.Engine.t -> Rts_core.Engine.t
(** Shadowing proxy: forwards every op to the engine and mirrors it into
    the shadow. [process] raises [Failure] (after counting the mismatch)
    if a non-degraded instance matures on a different element than the
    engine, or if any instance matures {e before} the engine. Degraded
    instances may detect late: they are parked until their (never-early)
    maturity arrives and counted in {!late_maturities}. [metrics] returns
    the engine's snapshot merged with the shadow's. *)
