(** {!Distributed_tracking.Machine} run over the lossy, retrying
    {!Rts_net.Reliable} transport — the networked instantiation of the
    DT protocol.

    Each {!increment} feeds one [Increment] event to the machine and then
    drains the virtual clock to quiescence ([Vclock.run_until_idle]): all
    scheduled deliveries, retransmissions and acks settle before the call
    returns. Under any fault spec accepted by {!Rts_net.Net_fault.validate}
    (drop rates < 1, partitions transient) the reliability layer delivers
    every protocol message exactly once per link in FIFO order, so at each
    quiescence point the coordinator has absorbed exactly the same signal
    and report traffic as the zero-fault run — hence the {e maturity
    ordinal} (which increment trips the threshold) is identical to the
    classic synchronous {!Distributed_tracking} instance, as long as no
    site degrades. With degradation the guarantee weakens to never-early
    detection plus eventual maturity.

    Message accounting: {!messages} counts unique protocol sends (first
    transmissions — the figure held against
    {!Distributed_tracking.message_bound} plus degradation overhead);
    retransmits, acks and fault-injected duplicates are excluded.
    {!useful_messages} = deliveries minus stale drops: reorder-tolerant
    protocol work, equal to the classic instance's [messages] in
    non-degraded executions. *)

type config = {
  faults : Rts_net.Net_fault.spec;  (** Fault schedule for the link fabric. *)
  seed : int;  (** PRNG seed for fault decisions (deterministic replay). *)
  reliable : Rts_net.Reliable.config;  (** Retry/backoff/degradation knobs. *)
  max_steps : int;
      (** Safety valve for [run_until_idle]; exceeded only by buggy specs. *)
}

val default : config
(** Zero faults, seed [0x4e455431], {!Rts_net.Reliable.default},
    10M step cap. *)

type t

val create : ?config:config -> h:int -> tau:int -> unit -> t
(** Build the instance, run the machine's initial broadcast through the
    fabric and drain to quiescence. Raises [Invalid_argument] on [h < 1],
    [tau < 1] or a fault spec rejected by {!Rts_net.Net_fault.validate}
    (such specs could not guarantee quiescence). *)

val increment : t -> site:int -> by:int -> bool
(** Apply one increment, drain the network to quiescence, and report
    whether the instance is now mature. Same argument validation (and
    diagnostic style) as {!Distributed_tracking.increment}. *)

val is_mature : t -> bool

val total : t -> int
(** Ground-truth counter sum. *)

val estimate : t -> int
(** Coordinator's lower bound; [estimate t <= total t] always. *)

val rounds : t -> int

val state : t -> Distributed_tracking.Machine.state

val messages : t -> int
(** Unique protocol sends (excluding retransmits/acks/fault duplicates). *)

val deliveries : t -> int
(** Envelopes handed to the machine by the reliability layer. At
    quiescence this equals {!messages} — the accounting identity the
    tests assert. *)

val stale : t -> int
(** Deliveries the machine discarded as out-of-round/post-maturity. *)

val useful_messages : t -> int
(** [deliveries - stale]: protocol-meaningful traffic, the figure compared
    against the zero-fault run and {!Distributed_tracking.message_bound}. *)

val retransmits : t -> int

val degraded_sites : t -> int

val is_degraded : t -> int -> bool

val clock : t -> Rts_net.Vclock.t

val describe : t -> string

val metrics : t -> Rts_obs.Metrics.snapshot
(** {!Rts_net.Reliable.metrics} plus [net_machine_deliveries_total],
    [net_stale_total], [net_useful_messages_total], [net_rounds_total]
    and the [net_mature] gauge. *)
