(** Many distributed-tracking instances over shared counters — the paper's
    Section 4 composition ("putting together all queries with heaps"),
    isolated from the endpoint-tree geometry.

    Setting: [h] shared counters. Each {e instance} (the paper's query)
    watches a subset of the counters and must report maturity the moment
    the sum of its counters' increments — counted from the instance's
    registration — reaches its threshold. Naively, incrementing counter
    [i] costs O(#instances watching i). This module instead keeps, per
    counter, a min-heap of slack deadlines [sigma = cbar + lambda]
    (equation (5) of the paper), so an increment costs O(1) when no
    deadline fires plus O(log) per fired signal — the exact engine-room
    mechanism of the RTS result, reusable for any fan-in trigger problem
    (e.g. quota monitors over shared meters).

    Weighted increments follow Section 7: signals are delivered in batches,
    the round is stopped at the h-th signal, and instances whose remaining
    threshold drops to [<= 6 h_q] switch to exact per-change forwarding.

    Maturity is exact: reported during the {!increment} that crosses the
    threshold. *)

type t
(** A tracker over a fixed set of counters. *)

type instance
(** One registered threshold instance. *)

val create : counters:int -> t
(** [create ~counters] makes a tracker with counters [0 .. counters-1],
    all starting at 0. Requires [counters >= 1]. *)

val counters : t -> int

val counter_value : t -> int -> int
(** Current value of one counter (sum of all increments ever). *)

val register : t -> watch:int list -> threshold:int -> instance
(** [register t ~watch ~threshold] starts an instance over the distinct
    counter indices [watch] (nonempty, deduplicated by the caller;
    checked). It counts only increments that happen from now on. *)

val cancel : t -> instance -> unit
(** Remove a live instance in O(h log) time. Raises [Invalid_argument] if
    it is not live. *)

val increment : t -> int -> by:int -> instance list
(** [increment t i ~by] raises counter [i] by [by >= 1] and returns the
    instances this increment matured (removed automatically), in
    registration order. *)

val is_live : instance -> bool

val is_mature : instance -> bool

val progress : t -> instance -> int
(** Exact accumulated weight of a live instance (O(h_q)); its threshold if
    mature. Raises [Invalid_argument] if cancelled. *)

val threshold : instance -> int

val fanout : instance -> int
(** h_q: number of counters the instance watches. *)

val signals : t -> int
(** Total signals delivered so far, across all instances — the analogue of
    the DT message count; tests hold it to the O(sum h_q log tau_q)
    budget. *)

val heap_ops : t -> int
(** Total deadline-heap operations (push / remove / fix) performed so far
    — the other half of the protocol's work profile: every signal costs
    O(log) through here, every quiet increment costs none. *)

val live_count : t -> int

val metrics : t -> Rts_obs.Metrics.snapshot
(** Uniform metric snapshot: [increments_total], [registered_total],
    [cancelled_total], [matured_total], [dt_signals_total],
    [dt_heap_ops_total] counters and the [live] gauge — same naming
    conventions as {!Rts_core.Engine.t.metrics}. *)
