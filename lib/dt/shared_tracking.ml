(* Same DT-over-shared-participants machinery as Rts_core.Endpoint_tree,
   with plain counter cells instead of tree nodes. Kept independent (and
   deliberately simpler: a generic comparison-free intrusive heap over
   edges) so that the protocol layer can be tested and reused without any
   geometry. *)

type status = Live | Mature | Cancelled

type instance = {
  iid : int;
  threshold : int;
  mutable edges : edge array;
  mutable lambda : int;
  mutable signals_in_round : int;
  mutable direct : bool;
  mutable wknown : int; (* direct mode: exact accumulated weight *)
  mutable status : status;
}

and edge = {
  owner : instance;
  cell : cell;
  mutable offset : int; (* cell value at registration *)
  mutable cbar : int; (* acknowledged cell value *)
  mutable sigma : int; (* next-signal deadline on the cell value *)
  mutable pos : int; (* index in the cell's heap; -1 = absent *)
}

and cell = { idx : int; mutable value : int; mutable data : edge array; mutable len : int }

type t = {
  cells : cell array;
  mutable next_id : int;
  mutable live : int;
  mutable signals : int;
  mutable heap_ops : int; (* heap push/remove/fix operations *)
  mutable registered : int;
  mutable matured_n : int;
  mutable cancelled : int;
  mutable increments : int;
}

(* ---- intrusive sigma heap on cells ---- *)

let heap_swap c i j =
  let a = c.data.(i) and b = c.data.(j) in
  c.data.(i) <- b;
  c.data.(j) <- a;
  a.pos <- j;
  b.pos <- i

let rec heap_up c i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if c.data.(i).sigma < c.data.(parent).sigma then begin
      heap_swap c i parent;
      heap_up c parent
    end
  end

let rec heap_down c i =
  let l = (2 * i) + 1 in
  if l < c.len then begin
    let r = l + 1 in
    let smallest = if r < c.len && c.data.(r).sigma < c.data.(l).sigma then r else l in
    if c.data.(smallest).sigma < c.data.(i).sigma then begin
      heap_swap c i smallest;
      heap_down c smallest
    end
  end

let heap_push c e =
  let cap = Array.length c.data in
  if c.len >= cap then begin
    let ndata = Array.make (max 4 (2 * cap)) e in
    Array.blit c.data 0 ndata 0 c.len;
    c.data <- ndata
  end;
  c.data.(c.len) <- e;
  e.pos <- c.len;
  c.len <- c.len + 1;
  heap_up c e.pos

let heap_remove c e =
  let i = e.pos in
  assert (i >= 0 && i < c.len && c.data.(i) == e);
  c.len <- c.len - 1;
  e.pos <- -1;
  if i <> c.len then begin
    let last = c.data.(c.len) in
    c.data.(i) <- last;
    last.pos <- i;
    heap_down c i;
    heap_up c last.pos
  end

let heap_fix c e =
  heap_down c e.pos;
  heap_up c e.pos

(* ---- protocol ---- *)

let create ~counters =
  if counters < 1 then invalid_arg "Shared_tracking.create: counters < 1";
  {
    cells = Array.init counters (fun idx -> { idx; value = 0; data = [||]; len = 0 });
    next_id = 0;
    live = 0;
    signals = 0;
    heap_ops = 0;
    registered = 0;
    matured_n = 0;
    cancelled = 0;
    increments = 0;
  }

let counters t = Array.length t.cells

let counter_value t i =
  if i < 0 || i >= Array.length t.cells then invalid_arg "Shared_tracking.counter_value";
  t.cells.(i).value

let accumulated (inst : instance) =
  Array.fold_left (fun acc e -> acc + (e.cell.value - e.offset)) 0 inst.edges

let set_deadline t e =
  t.heap_ops <- t.heap_ops + 1;
  if e.pos >= 0 then heap_fix e.cell e else heap_push e.cell e

let start_phase t (inst : instance) remaining =
  assert (remaining >= 1);
  let h = Array.length inst.edges in
  if remaining <= 6 * h then begin
    inst.direct <- true;
    inst.wknown <- inst.threshold - remaining;
    Array.iter
      (fun e ->
        e.cbar <- e.cell.value;
        e.sigma <- e.cell.value + 1;
        set_deadline t e)
      inst.edges
  end
  else begin
    inst.direct <- false;
    inst.lambda <- remaining / (2 * h);
    inst.signals_in_round <- 0;
    Array.iter
      (fun e ->
        e.cbar <- e.cell.value;
        e.sigma <- e.cbar + inst.lambda;
        set_deadline t e)
      inst.edges
  end

let register t ~watch ~threshold =
  if threshold < 1 then invalid_arg "Shared_tracking.register: threshold < 1";
  if watch = [] then invalid_arg "Shared_tracking.register: empty watch set";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun i ->
      if i < 0 || i >= Array.length t.cells then
        invalid_arg "Shared_tracking.register: bad counter index";
      if Hashtbl.mem seen i then invalid_arg "Shared_tracking.register: duplicate counter";
      Hashtbl.replace seen i ())
    watch;
  let inst =
    {
      iid = t.next_id;
      threshold;
      edges = [||];
      lambda = 0;
      signals_in_round = 0;
      direct = false;
      wknown = 0;
      status = Live;
    }
  in
  t.next_id <- t.next_id + 1;
  inst.edges <-
    Array.of_list
      (List.map
         (fun i ->
           let cell = t.cells.(i) in
           { owner = inst; cell; offset = cell.value; cbar = 0; sigma = 0; pos = -1 })
         watch);
  start_phase t inst threshold;
  t.live <- t.live + 1;
  t.registered <- t.registered + 1;
  inst

let detach t inst =
  Array.iter
    (fun e ->
      if e.pos >= 0 then begin
        t.heap_ops <- t.heap_ops + 1;
        heap_remove e.cell e
      end)
    inst.edges

let cancel t inst =
  if inst.status <> Live then invalid_arg "Shared_tracking.cancel: instance not live";
  detach t inst;
  inst.status <- Cancelled;
  t.cancelled <- t.cancelled + 1;
  t.live <- t.live - 1

let mature t inst acc =
  detach t inst;
  inst.status <- Mature;
  t.matured_n <- t.matured_n + 1;
  t.live <- t.live - 1;
  acc := inst :: !acc

let end_round t inst acc =
  let w = accumulated inst in
  let remaining = inst.threshold - w in
  if remaining <= 0 then mature t inst acc else start_phase t inst remaining

let fire t edge acc =
  let inst = edge.owner in
  let c = edge.cell in
  if inst.direct then begin
    t.signals <- t.signals + 1;
    inst.wknown <- inst.wknown + (c.value - edge.cbar);
    edge.cbar <- c.value;
    if inst.wknown >= inst.threshold then mature t inst acc
    else begin
      edge.sigma <- c.value + 1;
      set_deadline t edge
    end
  end
  else begin
    let h = Array.length inst.edges in
    let k = (c.value - edge.cbar) / inst.lambda in
    let delivered = min k (h - inst.signals_in_round) in
    t.signals <- t.signals + delivered;
    inst.signals_in_round <- inst.signals_in_round + delivered;
    if inst.signals_in_round >= h then end_round t inst acc
    else begin
      edge.cbar <- edge.cbar + (k * inst.lambda);
      edge.sigma <- edge.cbar + inst.lambda;
      set_deadline t edge
    end
  end

let increment t i ~by =
  if i < 0 || i >= Array.length t.cells then invalid_arg "Shared_tracking.increment: bad index";
  if by < 1 then invalid_arg "Shared_tracking.increment: by < 1";
  let c = t.cells.(i) in
  c.value <- c.value + by;
  t.increments <- t.increments + 1;
  let acc = ref [] in
  let rec drain () =
    if c.len > 0 then begin
      let edge = c.data.(0) in
      if edge.sigma <= c.value then begin
        t.heap_ops <- t.heap_ops + 1;
        heap_remove c edge;
        fire t edge acc;
        drain ()
      end
    end
  in
  drain ();
  List.sort (fun a b -> compare a.iid b.iid) !acc

let is_live inst = inst.status = Live

let is_mature inst = inst.status = Mature

let progress _t inst =
  match inst.status with
  | Live -> accumulated inst
  | Mature -> inst.threshold
  | Cancelled -> invalid_arg "Shared_tracking.progress: instance cancelled"

let threshold inst = inst.threshold

let fanout inst = Array.length inst.edges

let signals t = t.signals

let heap_ops t = t.heap_ops

let live_count t = t.live

let metrics t : Rts_obs.Metrics.snapshot =
  Rts_obs.Metrics.of_assoc
    [
      ("increments_total", Rts_obs.Metrics.Counter t.increments);
      ("registered_total", Rts_obs.Metrics.Counter t.registered);
      ("cancelled_total", Rts_obs.Metrics.Counter t.cancelled);
      ("matured_total", Rts_obs.Metrics.Counter t.matured_n);
      ("dt_signals_total", Rts_obs.Metrics.Counter t.signals);
      ("dt_heap_ops_total", Rts_obs.Metrics.Counter t.heap_ops);
      ("live", Rts_obs.Metrics.Gauge (float_of_int t.live));
    ]
