module Envelope = Rts_net.Envelope

(* ------------------------------------------------------------------ *)
(* Pure protocol state machine.                                        *)
(*                                                                     *)
(* The coordinator and the h participants are modelled as one          *)
(* immutable ensemble state; [step] consumes exactly one event (a      *)
(* delivered envelope, a local increment, a local drain continuation,  *)
(* or a transport degradation signal) and returns the successor state  *)
(* plus the transmissions it caused. Policy (when to signal, when to   *)
(* end a round, when maturity holds) lives here; *mechanism* (whether  *)
(* a Transmit is a synchronous function call or a lossy datagram with  *)
(* acks and retries) lives entirely in the driver — see the classic    *)
(* synchronous API below and Net_tracking for the lossy one.           *)
(* ------------------------------------------------------------------ *)

module Machine = struct
  type site_mode =
    | Rounds_mode of { lambda : int; round : int }
    | Await_slack of { round : int } (* replied to Round_end; next slack has this round *)
    | Direct_mode

  type site = { counter : int; cbar : int; smode : site_mode; sent_in_round : int }

  type co_phase = Co_rounds | Co_direct

  type co = {
    round : int;
    phase : co_phase;
    lambda : int;
    known : int array; (* per-site collected lower bound (exact for direct/degraded) *)
    sigs : int array; (* current-round signals per (non-degraded) site *)
    signals_round : int;
    deg : bool array;
    collecting : bool;
    pending : bool array; (* collection replies still awaited *)
  }

  type state = {
    h : int;
    tau : int;
    sites : site array;
    co : co;
    mature : bool;
    rounds_done : int;
    stale : int;
  }

  type event =
    | Increment of { site : int; by : int }
    | Deliver of { src : Envelope.node; dst : Envelope.node; payload : Envelope.payload }
    | Drain of int
    | Degrade of int

  type action =
    | Transmit of { src : Envelope.node; dst : Envelope.node; payload : Envelope.payload }
    | Local of event

  (* ---- accessors ---- *)

  let h st = st.h
  let tau st = st.tau
  let is_mature st = st.mature
  let rounds st = st.rounds_done
  let stale st = st.stale
  let total st = Array.fold_left (fun acc s -> acc + s.counter) 0 st.sites
  let counter st i = st.sites.(i).counter
  let degraded_count st = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 st.co.deg
  let is_degraded st i = st.co.deg.(i)

  (* The coordinator's lower bound on the counter sum: collected values
     plus slack credit for this round's signals. Never exceeds [total]
     (never-early), asserted by the test suite as an invariant. *)
  let estimate st =
    let c = st.co in
    let acc = ref 0 in
    for i = 0 to st.h - 1 do
      acc := !acc + c.known.(i);
      if c.phase = Co_rounds && not c.deg.(i) then acc := !acc + (c.sigs.(i) * c.lambda)
    done;
    !acc

  (* ---- copy-on-write helpers ---- *)

  let set_site st i s =
    let sites = Array.copy st.sites in
    sites.(i) <- s;
    { st with sites }

  let copy_co c =
    {
      c with
      known = Array.copy c.known;
      sigs = Array.copy c.sigs;
      deg = Array.copy c.deg;
      pending = Array.copy c.pending;
    }

  (* ---- transmissions ---- *)

  let to_site i payload = Transmit { src = Envelope.Coordinator; dst = Envelope.Site i; payload }

  let to_co i payload = Transmit { src = Envelope.Site i; dst = Envelope.Coordinator; payload }

  let broadcast st ~skip_degraded payload =
    let acc = ref [] in
    for i = st.h - 1 downto 0 do
      if not (skip_degraded && st.co.deg.(i)) then acc := to_site i payload :: !acc
    done;
    !acc

  (* ---- coordinator phase transitions ---- *)

  (* Begin a phase for [remaining > 0] threshold units: a fresh slack
     round while remaining > 6h, the direct endgame otherwise. Mirrors
     the reference pseudo-code's start_phase exactly. *)
  let start_phase st remaining =
    assert (remaining > 0);
    let c = copy_co st.co in
    let round = c.round + 1 in
    if remaining <= 6 * st.h then begin
      Array.fill c.sigs 0 st.h 0;
      let c =
        { c with round; phase = Co_direct; lambda = 0; signals_round = 0; collecting = false }
      in
      ({ st with co = c }, broadcast st ~skip_degraded:true (Envelope.Slack_broadcast { round; lambda = 0 }))
    end
    else begin
      let lambda = remaining / (2 * st.h) in
      assert (lambda >= 3);
      Array.fill c.sigs 0 st.h 0;
      let c = { c with round; phase = Co_rounds; lambda; signals_round = 0; collecting = false } in
      ({ st with co = c }, broadcast st ~skip_degraded:true (Envelope.Slack_broadcast { round; lambda }))
    end

  let mature st = ({ st with mature = true }, [])

  let maybe_mature st = if estimate st >= st.tau then mature st else (st, [])

  let finish_collection st =
    let sum = Array.fold_left ( + ) 0 st.co.known in
    let st = { st with rounds_done = st.rounds_done + 1 } in
    if sum >= st.tau then mature st else start_phase st (st.tau - sum)

  (* ---- site-side handlers ---- *)

  let site_round s =
    match s.smode with
    | Rounds_mode { round; _ } -> round
    | Await_slack { round } -> round
    | Direct_mode -> max_int

  let drop_stale st = ({ st with stale = st.stale + 1 }, [])

  let step_drain st i =
    if st.mature then (st, [])
    else
      let s = st.sites.(i) in
      match s.smode with
      | Direct_mode ->
          if s.counter > s.cbar then
            ( set_site st i { s with cbar = s.counter },
              [ to_co i (Envelope.Counter_report { round = -1; value = s.counter }) ] )
          else (st, [])
      | Rounds_mode { lambda; round } ->
          (* One signal per step plus a local continuation: under the
             synchronous driver the coordinator's reaction (possibly a
             whole round end) interleaves between two signals, exactly
             as in the reference protocol; under a real network the
             continuation runs immediately and the site bursts all due
             signals. The h-signal cap bounds the burst: the coordinator
             ends the round at the h-th signal anyway, so anything
             beyond a site's h-th would be stale by construction. *)
          if s.counter - s.cbar >= lambda && s.sent_in_round < st.h then
            ( set_site st i
                { s with cbar = s.cbar + lambda; sent_in_round = s.sent_in_round + 1 },
              [ to_co i (Envelope.Signal { round }); Local (Drain i) ] )
          else (st, [])
      | Await_slack _ -> (st, [])

  let site_deliver st i payload =
    let s = st.sites.(i) in
    match payload with
    | Envelope.Slack_broadcast { round; lambda } ->
        if round < site_round s || s.smode = Direct_mode then drop_stale st
        else if lambda = 0 then
          (set_site st i { s with smode = Direct_mode }, [ Local (Drain i) ])
        else
          ( set_site st i { s with smode = Rounds_mode { lambda; round }; sent_in_round = 0 },
            [ Local (Drain i) ] )
    | Envelope.Round_end { round } -> (
        match s.smode with
        | Rounds_mode { round = r; _ } when r = round ->
            ( set_site st i
                { s with cbar = s.counter; smode = Await_slack { round = round + 1 } },
              [ to_co i (Envelope.Counter_report { round; value = s.counter }) ] )
        | _ -> drop_stale st)
    | Envelope.Collect_request { direct } ->
        let smode = if direct then Direct_mode else s.smode in
        ( set_site st i { s with cbar = s.counter; smode },
          [ to_co i (Envelope.Counter_report { round = -1; value = s.counter }) ] )
    | Envelope.Signal _ | Envelope.Counter_report _ | Envelope.App _ | Envelope.Ack _ ->
        drop_stale st

  (* ---- coordinator-side handlers ---- *)

  let end_round st =
    let c = copy_co st.co in
    let ending = c.round in
    for i = 0 to st.h - 1 do
      c.pending.(i) <- not c.deg.(i)
    done;
    let c = { c with collecting = true } in
    ({ st with co = c }, broadcast st ~skip_degraded:true (Envelope.Round_end { round = ending }))

  let co_deliver st i payload =
    if st.mature then (st, [])
    else
      let c = st.co in
      match payload with
      | Envelope.Signal { round } ->
          if c.phase <> Co_rounds || c.collecting || round <> c.round || c.deg.(i) then
            drop_stale st
          else begin
            let nc = copy_co c in
            nc.sigs.(i) <- nc.sigs.(i) + 1;
            let nc = { nc with signals_round = nc.signals_round + 1 } in
            let st = { st with co = nc } in
            if nc.signals_round >= st.h then end_round st else maybe_mature st
          end
      | Envelope.Counter_report { round = _; value } ->
          let nc = copy_co c in
          nc.known.(i) <- max nc.known.(i) value;
          if c.collecting && c.pending.(i) then begin
            nc.pending.(i) <- false;
            (* The exact report subsumes this round's signal credit —
               zero it so [estimate] never double-counts the surplus
               those signals represented. *)
            nc.sigs.(i) <- 0;
            let st = { st with co = nc } in
            if Array.exists (fun p -> p) nc.pending then (st, []) else finish_collection st
          end
          else maybe_mature { st with co = nc }
      | Envelope.Slack_broadcast _ | Envelope.Round_end _ | Envelope.Collect_request _
      | Envelope.App _ | Envelope.Ack _ ->
          drop_stale st

  let step_degrade st i =
    if st.mature || st.co.deg.(i) then (st, [])
    else begin
      let c = copy_co st.co in
      (* Convert this round's signal credit into collected lower bound,
         then stop counting the site's signals: its link now carries
         exact per-update reports instead. *)
      (if c.phase = Co_rounds then c.known.(i) <- max c.known.(i) (c.known.(i) + (c.sigs.(i) * c.lambda)));
      let signals_round = c.signals_round - c.sigs.(i) in
      c.sigs.(i) <- 0;
      c.deg.(i) <- true;
      let was_pending = c.collecting && c.pending.(i) in
      c.pending.(i) <- false;
      let c = { c with signals_round } in
      let st = { st with co = c } in
      let switch = to_site i (Envelope.Collect_request { direct = true }) in
      if was_pending && not (Array.exists (fun p -> p) c.pending) then begin
        let st, acts = finish_collection st in
        (st, switch :: acts)
      end
      else
        let st, acts = maybe_mature st in
        (st, switch :: acts)
    end

  (* ---- entry points ---- *)

  let init ~h ~tau =
    let co =
      {
        round = -1;
        phase = Co_rounds;
        lambda = 0;
        known = Array.make h 0;
        sigs = Array.make h 0;
        signals_round = 0;
        deg = Array.make h false;
        collecting = false;
        pending = Array.make h false;
      }
    in
    let site = { counter = 0; cbar = 0; smode = Await_slack { round = 0 }; sent_in_round = 0 } in
    let st =
      {
        h;
        tau;
        sites = Array.make h site;
        co;
        mature = false;
        rounds_done = 0;
        stale = 0;
      }
    in
    start_phase st tau

  let step st event =
    match event with
    | Increment { site = i; by } ->
        let s = st.sites.(i) in
        (set_site st i { s with counter = s.counter + by }, [ Local (Drain i) ])
    | Drain i -> step_drain st i
    | Degrade i -> step_degrade st i
    | Deliver { src; dst; payload } -> (
        match (dst, src) with
        | Envelope.Site i, Envelope.Coordinator -> site_deliver st i payload
        | Envelope.Coordinator, Envelope.Site i -> co_deliver st i payload
        | _ -> drop_stale st)

  let pp_phase ppf st =
    Format.pp_print_string ppf
      (match st.co.phase with Co_rounds -> "rounds" | Co_direct -> "direct")
end

(* ------------------------------------------------------------------ *)
(* Classic synchronous API: the zero-fault instantiation.              *)
(*                                                                     *)
(* Transmissions are delivered depth-first, immediately and in order — *)
(* a function call. This reproduces the reference protocol exactly:    *)
(* after a site's k-th signal the coordinator's whole reaction         *)
(* (including a round end, collection and the next slack broadcast)    *)
(* completes before the site's drain continuation resumes, which is    *)
(* precisely the "…unless q has announced the end of this round" rule  *)
(* of Section 7.                                                       *)
(* ------------------------------------------------------------------ *)

type t = { mutable st : Machine.state; mutable messages : int }

let rec exec t actions =
  List.iter
    (fun action ->
      match action with
      | Machine.Transmit { src; dst; payload } ->
          t.messages <- t.messages + 1;
          let st, acts = Machine.step t.st (Machine.Deliver { src; dst; payload }) in
          t.st <- st;
          exec t acts
      | Machine.Local ev ->
          let st, acts = Machine.step t.st ev in
          t.st <- st;
          exec t acts)
    actions

let create ~h ~tau =
  if h < 1 then invalid_arg "Distributed_tracking.create: h < 1";
  if tau < 1 then invalid_arg "Distributed_tracking.create: tau < 1";
  let st, acts = Machine.init ~h ~tau in
  let t = { st; messages = 0 } in
  exec t acts;
  t

let total t = Machine.total t.st

let is_mature t = Machine.is_mature t.st

let messages t = t.messages

let rounds t = Machine.rounds t.st

let state t = t.st

let describe t =
  Format.asprintf "h=%d, tau=%d, total=%d, rounds=%d, mode=%a, messages=%d" (Machine.h t.st)
    (Machine.tau t.st) (Machine.total t.st) (Machine.rounds t.st) Machine.pp_phase t.st
    t.messages

let check_increment t ~site ~by =
  if Machine.is_mature t.st then
    invalid_arg
      (Printf.sprintf
         "Distributed_tracking.increment: instance already mature (site=%d, by=%d, %s)" site by
         (describe t));
  if site < 0 || site >= Machine.h t.st then
    invalid_arg
      (Printf.sprintf
         "Distributed_tracking.increment: bad site %d (valid sites are 0..%d, %s)" site
         (Machine.h t.st - 1) (describe t));
  if by <= 0 then
    invalid_arg
      (Printf.sprintf "Distributed_tracking.increment: by <= 0 (by=%d, site=%d, %s)" by site
         (describe t))

let increment t ~site ~by =
  check_increment t ~site ~by;
  let st, acts = Machine.step t.st (Machine.Increment { site; by }) in
  t.st <- st;
  exec t acts;
  Machine.is_mature t.st

let message_bound ~h ~tau =
  (* Each round costs at most 4h messages (slack broadcast + at most h
     signals + end announcement + collection) and shrinks tau by a factor
     >= 3/2; the direct endgame forwards at most 6h changes (each change
     adds >= 1 toward a remainder <= 6h) plus its h-word broadcast. A +2
     fudge on the round count absorbs rounding in both the log and the
     lambda floor. *)
  let rec rounds_needed tau acc =
    if tau <= 6 * h then acc else rounds_needed (2 * tau / 3) (acc + 1)
  in
  let r = rounds_needed tau 0 + 2 in
  (4 * h * r) + (7 * h)
