(** Executable specification of the distributed-tracking (DT) protocol
    (Cormode, Muthukrishnan & Yi, ACM TALG 2011), exactly as described in
    Sections 3.2 and 7 of the paper.

    Setting: one coordinator and [h] participants, each holding an integer
    counter starting at 0. At each timestamp at most one counter increases —
    by 1 in the unweighted problem of Section 3.2, by an arbitrary positive
    integer in the weighted variant of Section 7. The coordinator must
    report {e maturity} the moment the counter sum reaches the threshold
    [tau], while keeping the number of transmitted messages
    [O(h log tau)] — far below the trivial [tau] messages.

    Protocol: while [tau > 6h], the coordinator broadcasts the slack
    [lambda = tau / (2h)]; a participant sends a one-bit signal for every
    [lambda] units its counter accumulates; after [h] signals the coordinator
    collects all exact counters, deducts them from [tau], and starts the next
    round. Once [tau <= 6h] every counter change is forwarded directly.

    The protocol itself lives in {!Machine}: a pure state machine
    [step : state -> event -> state * action list] over the typed
    envelopes of {!Rts_net.Envelope}, with no opinion about how a
    [Transmit] reaches its destination. The classic API below is the
    {e zero-fault instantiation}: transmissions delivered depth-first as
    synchronous calls, reproducing the reference pseudo-code's message
    counts exactly. {!Net_tracking} runs the same machine over a lossy
    {!Rts_net.Reliable} transport instead. The test suite cross-checks
    the RTS core against this reference and validates the message
    bound. *)

(** The pure protocol state machine shared by every transport. *)
module Machine : sig
  type state

  type event =
    | Increment of { site : int; by : int }
        (** The application raised [site]'s counter by [by > 0]. *)
    | Deliver of {
        src : Rts_net.Envelope.node;
        dst : Rts_net.Envelope.node;
        payload : Rts_net.Envelope.payload;
      }  (** The transport delivered one envelope to [dst]. *)
    | Drain of int
        (** Local continuation at a site: emit the next due signal or
            direct report. Free — not a network message. *)
    | Degrade of int
        (** The transport's loss budget for this site's link is spent:
            resynchronize it and switch it to direct forwarding. *)

  type action =
    | Transmit of {
        src : Rts_net.Envelope.node;
        dst : Rts_net.Envelope.node;
        payload : Rts_net.Envelope.payload;
      }  (** Hand one envelope to the transport. *)
    | Local of event  (** Feed this event back to the machine, free. *)

  val init : h:int -> tau:int -> state * action list
  (** Fresh ensemble plus the initial slack (or direct-mode) broadcast.
      Preconditions [h >= 1], [tau >= 1] are the {e caller's} job. *)

  val step : state -> event -> state * action list
  (** One event, one successor state, the transmissions it caused.
      Events touch only the state of the node they address; stale
      envelopes (old rounds, post-maturity traffic) are counted and
      dropped, so the machine tolerates reordered and delayed delivery
      as long as each link delivers exactly-once in FIFO order (what
      {!Rts_net.Reliable} guarantees). *)

  val is_mature : state -> bool

  val total : state -> int
  (** Ground-truth counter sum (what the simulator can see). *)

  val estimate : state -> int
  (** The coordinator's lower bound on the sum — collected values plus
      slack credit for this round's signals. The never-early invariant
      [estimate state <= total state] holds in every reachable state;
      maturity is declared exactly when it reaches [tau]. *)

  val h : state -> int
  val tau : state -> int
  val counter : state -> int -> int
  val rounds : state -> int
  val stale : state -> int
  (** Envelopes dropped as stale/out-of-round so far. *)

  val degraded_count : state -> int
  val is_degraded : state -> int -> bool
  val pp_phase : Format.formatter -> state -> unit
end

type t

val create : h:int -> tau:int -> t
(** [create ~h ~tau] starts a protocol instance with [h] participants
    (numbered [0 .. h-1]) and threshold [tau]. Requires [h >= 1] and
    [tau >= 1]. *)

val increment : t -> site:int -> by:int -> bool
(** [increment t ~site ~by] raises participant [site]'s counter by [by > 0]
    (use [by:1] for the unweighted protocol) and runs all induced protocol
    steps. Returns [true] exactly when this increment makes the instance
    mature. Raises [Invalid_argument] on a dead instance, a bad site index,
    or [by <= 0] — the message names the offending site, the argument, and
    the instance state ([h], [tau], totals, round and mode). *)

val is_mature : t -> bool

val total : t -> int
(** Exact current sum of all participants' counters (ground truth the
    simulator can see; the coordinator itself only knows collected state). *)

val messages : t -> int
(** Number of protocol messages (words) transmitted so far, counting slack
    broadcasts, signals, round-end announcements and counter collections. *)

val rounds : t -> int
(** Number of completed rounds (i.e. slack halvings) so far. *)

val state : t -> Machine.state
(** The underlying machine state (read-only view, e.g. for invariant
    checks such as [Machine.estimate <= Machine.total]). *)

val describe : t -> string
(** One-line instance summary used in error messages and diagnostics. *)

val message_bound : h:int -> tau:int -> int
(** A concrete instantiation of the [O(h log tau)] guarantee:
    an upper bound on [messages] valid for every execution, asserted by the
    test suite. *)
