module Machine = Distributed_tracking.Machine
module Envelope = Rts_net.Envelope
module Vclock = Rts_net.Vclock
module Net_fault = Rts_net.Net_fault
module Network = Rts_net.Network
module Reliable = Rts_net.Reliable
module Metrics = Rts_obs.Metrics

type config = {
  faults : Net_fault.spec;
  seed : int;
  reliable : Reliable.config;
  max_steps : int;
}

let default =
  {
    faults = Net_fault.none;
    seed = 0x4e455431;
    reliable = Reliable.default;
    max_steps = 10_000_000;
  }

type t = {
  config : config;
  clock : Vclock.t;
  mutable st : Machine.state;
  mutable fabric : Reliable.t option; (* tied after create; always Some in use *)
  mutable deliveries : int; (* envelopes handed to the machine *)
}

let fabric t = Option.get t.fabric

(* Run the machine one event forward, sending Transmit actions through the
   reliable fabric and executing Local actions immediately (they are free
   continuations at one node, not network traffic). *)
let rec apply t event =
  let st, actions = Machine.step t.st event in
  t.st <- st;
  List.iter
    (fun action ->
      match action with
      | Machine.Transmit { src; dst; payload } ->
          Reliable.send (fabric t) ~src ~dst payload
      | Machine.Local ev -> apply t ev)
    actions

let create ?(config = default) ~h ~tau () =
  if h < 1 then invalid_arg "Net_tracking.create: h < 1";
  if tau < 1 then invalid_arg "Net_tracking.create: tau < 1";
  (match Net_fault.validate config.faults with
  | Ok _ -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Net_tracking.create: %s" msg));
  let clock = Vclock.create () in
  let rng = Rts_util.Prng.create ~seed:config.seed in
  let tref = ref None in
  let me () = Option.get !tref in
  let deliver (env : Envelope.t) =
    let t = me () in
    t.deliveries <- t.deliveries + 1;
    apply t (Machine.Deliver { src = env.src; dst = env.dst; payload = env.payload })
  in
  let on_degrade site = apply (me ()) (Machine.Degrade site) in
  let fabric =
    Reliable.create ~config:config.reliable ~clock ~rng ~spec:config.faults
      ~deliver ~on_degrade ()
  in
  let st, actions = Machine.init ~h ~tau in
  let t = { config; clock; st; fabric = Some fabric; deliveries = 0 } in
  tref := Some t;
  List.iter
    (fun action ->
      match action with
      | Machine.Transmit { src; dst; payload } ->
          Reliable.send fabric ~src ~dst payload
      | Machine.Local ev -> apply t ev)
    actions;
  Vclock.run_until_idle ~max_steps:config.max_steps clock;
  t

let is_mature t = Machine.is_mature t.st

let describe t =
  Format.asprintf "h=%d, tau=%d, total=%d, rounds=%d, mode=%a, sends=%d"
    (Machine.h t.st) (Machine.tau t.st) (Machine.total t.st)
    (Machine.rounds t.st) Machine.pp_phase t.st
    (Reliable.protocol_sends (fabric t))

let increment t ~site ~by =
  if is_mature t then
    invalid_arg
      (Printf.sprintf
         "Net_tracking.increment: instance already mature (site=%d, by=%d, %s)"
         site by (describe t));
  if site < 0 || site >= Machine.h t.st then
    invalid_arg
      (Printf.sprintf
         "Net_tracking.increment: bad site %d (valid sites are 0..%d, %s)" site
         (Machine.h t.st - 1) (describe t));
  if by <= 0 then
    invalid_arg
      (Printf.sprintf "Net_tracking.increment: by <= 0 (by=%d, site=%d, %s)" by
         site (describe t));
  apply t (Machine.Increment { site; by });
  Vclock.run_until_idle ~max_steps:t.config.max_steps t.clock;
  is_mature t

let total t = Machine.total t.st

let estimate t = Machine.estimate t.st

let rounds t = Machine.rounds t.st

let state t = t.st

let messages t = Reliable.protocol_sends (fabric t)

let deliveries t = t.deliveries

let stale t = Machine.stale t.st

let useful_messages t = t.deliveries - Machine.stale t.st

let retransmits t = Reliable.retransmits (fabric t)

let degraded_sites t = Reliable.degraded_sites (fabric t)

let is_degraded t site = Reliable.is_degraded (fabric t) site

let clock t = t.clock

let metrics t =
  Metrics.merge
    (Reliable.metrics (fabric t))
    (Metrics.of_assoc
       [
         ("net_machine_deliveries_total", Metrics.Counter t.deliveries);
         ("net_stale_total", Metrics.Counter (Machine.stale t.st));
         ("net_useful_messages_total", Metrics.Counter (useful_messages t));
         ("net_rounds_total", Metrics.Counter (Machine.rounds t.st));
         ( "net_mature",
           Metrics.Gauge (if Machine.is_mature t.st then 1.0 else 0.0) );
       ])
