(** Wire frames of the replication protocol.

    Like {!Rts_serve.Frame}, one frame is one line of text carried as
    the opaque body of an {!Rts_net.Envelope.App} payload over the
    {!Rts_net.Reliable} transport — replication rides the same
    exactly-once per-link-FIFO fabric as client traffic. Every frame
    carries the sender's fencing [epoch] (receivers drop frames from
    superseded incarnations; the same epoch is also stamped into the
    envelope itself and into WAL segment headers).

    {v
    rapp,<epoch>,<tenant>,<index>,<op line>   primary -> replica: ship op #index
    rack,<epoch>,<tenant>,<durable>           replica -> primary: durable through #durable
    rhb,<epoch>[,<t>:<floor>[;...]]           primary heartbeat + per-tenant prune floors
    rprobe,<epoch>                            controller -> node: report your position
    rpos,<epoch>,<total>                      node -> controller: total ops applied
    rview,<epoch>,<primary>                   controller -> everyone: new view
    v}

    Verbs are disjoint from the serve protocol's, so both can share one
    link and be told apart by the first field ({!is_rep}). *)

module Replay = Rts_workload.Replay

type t =
  | Append of { epoch : int; tenant : string; index : int; op : Replay.op }
      (** Ship one committed op; [index] is the primary's op ordinal
          (1-based, dense). Receivers deduplicate on [index]. *)
  | Ack of { epoch : int; tenant : string; durable : int }
      (** The replica's WAL holds ops [1..durable] of this tenant. *)
  | Heartbeat of { epoch : int; floors : (string * int) list }
      (** Primary liveness beacon; [floors] carries, per tenant, the
          cluster-wide minimum replica ack — the bound below which a
          replica may prune its own cold WAL segments without
          compromising a future promotion's ability to backfill. *)
  | Probe of { epoch : int }
      (** Controller → node: fence yourself at this epoch and report how
          far you got (election ballot). *)
  | Position of { epoch : int; total : int }
      (** Node → controller: total applied ops across tenants — the
          election criterion (most-caught-up wins). *)
  | View of { epoch : int; primary : int; members : int list }
      (** Controller → everyone: the new configuration. [members] is the
          set of serving nodes that answered the election probe (always
          includes [primary]); the promoted primary replicates to
          [members] minus itself, so a dead or partitioned node cannot
          pin the ack floor — and with it the parked maturity pushes —
          at zero forever. *)

val is_rep : string -> bool
(** Does this line start with a replication verb? *)

val to_string : t -> string
val of_string : dim:int -> string -> (t, string) result

val epoch : t -> int

val pp : Format.formatter -> t -> unit
