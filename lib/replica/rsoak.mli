(** Replica-topology soak: the failover counterpart of
    {!Rts_serve.Soak}.

    One {!Cluster} (controller + serving nodes + scripted clients) runs
    a churny multi-tenant workload to quiescence while one scenario
    fault hits the initial primary mid-stream — on top of per-tenant
    storage-fault plans on {e every} node and a lossy, reordering
    network. Client 0 subscribes to every tenant; clients [1..tenants]
    each drive one tenant's script and ride out the failover via
    re-send + watermark re-subscribe.

    The oracle is built from the promoted node's own storage: cold WAL
    segments are archived at the moment pruning deletes them (an
    {!Rts_resilience.Io.dir} wrapper on the base dir), and
    [archive ++ surviving chain] replayed through a fresh engine must
    equal — bit-identically — both the promoted node's maturity log and
    the subscriber's merged push stream: nothing lost, nothing early,
    nothing duplicated across the failover. Pruning must also have
    actually happened ([pruned_somewhere]) and the surviving chain must
    stay under the disk bound, so the run demonstrates bounded disk at
    10× the checkpoint interval, not pruning disabled. *)

type scenario =
  | Clean
      (** no scenario fault: replication + gating under churn only. A
          spurious failover (heartbeats delayed by network-fault luck)
          may still happen and must then be handled correctly. *)
  | Kill of int  (** fail-stop the primary at this virtual tick *)
  | Wedge of { at : int; duration : int }
      (** stall the primary, then wake the zombie — its stale frames
          must be fenced and it must fail-stop on the new view *)

type config = {
  tenants : int;
  queries : int;
  elements : int;
  batch : int;
  threshold : int;
  churn : float;
  dim : int;
  seed : int;
  faulty_incarnations : int;  (** per (node, tenant): lives with fault plans *)
  crash_every : int;  (** storage fault-plan intensity *)
  scenario : scenario;
  cluster : Cluster.config;
}

val default : config
(** 3 serving nodes, [Kill 120], mild network faults, segment rotation
    and pruning on, enough volume for 10× the checkpoint interval. *)

type tenant_report = {
  name : string;
  applied : int;
  archived_records : int;  (** ops rescued from pruned segments *)
  chain_records : int;  (** records still on the promoted node's disk *)
  chain_base : int;  (** ops below the surviving chain ( > 0 ⇒ pruned) *)
  matured : int;
  log_ok : bool;  (** promoted node's maturity log == oracle *)
  sub_ok : bool;  (** subscriber's merged push stream == oracle *)
  acct_ok : bool;
  chain_ok : bool;  (** archive ++ chain is gap-free from op 1 *)
  disk_ok : bool;  (** surviving chain under the pruning bound *)
}

type report = {
  per_tenant : tenant_report list;
  promoted : int;
  failovers : int;
  fenced : int;  (** stale-epoch frames dropped cluster-wide *)
  crashes_total : int;
  net_retransmits : int;
  scenario_ok : bool;  (** the scenario actually played out as scripted *)
  volume_ok : bool;
      (** ≥ 10 × checkpoint interval of ops per tenant. Reported but not
          folded into [ok]: survival-to-application depends on
          fault-plan luck (disk-full windows and kills shed ops under
          the at-least-once admission contract), so only pinned-seed
          tests assert it. *)
  pruned_somewhere : bool;
  ok : bool;
}

val run :
  ?progress:(string -> unit) -> make:(dim:int -> Rts_core.Engine.t) -> config -> report

val pp : Format.formatter -> report -> unit
