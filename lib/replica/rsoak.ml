module Prng = Rts_util.Prng
module Replay = Rts_workload.Replay
module Generator = Rts_workload.Generator
module Io = Rts_resilience.Io
module Fault = Rts_resilience.Fault
module Wal = Rts_resilience.Wal
module Vclock = Rts_net.Vclock
module Net_fault = Rts_net.Net_fault
module Metrics = Rts_obs.Metrics
module Server = Rts_serve.Server
module Client = Rts_serve.Client
module Frame = Rts_serve.Frame

type scenario = Clean | Kill of int | Wedge of { at : int; duration : int }

type config = {
  tenants : int;
  queries : int;
  elements : int;
  batch : int;
  threshold : int;
  churn : float;
  dim : int;
  seed : int;
  faulty_incarnations : int;
  crash_every : int;
  scenario : scenario;
  cluster : Cluster.config;
}

let default =
  {
    tenants = 2;
    queries = 30;
    (* enough volume that applied clears 10 × checkpoint_every per
       tenant even after a kill sheds the accepted-but-unapplied tail *)
    elements = 850;
    batch = 8;
    threshold = 2500;
    churn = 0.12;
    dim = 2;
    seed = 1;
    faulty_incarnations = 2;
    crash_every = 180;
    scenario = Kill 120;
    cluster =
      {
        Cluster.default with
        Cluster.net = { Net_fault.none with drop = 0.08; duplicate = 0.04; reorder = 0.15 };
        server =
          {
            Server.default with
            Server.queue_capacity = 16;
            drain_per_tick = 6;
            segment_records = 48;
            durable =
              { Rts_resilience.Durable.default with fsync_every = 5; checkpoint_every = 67 };
          };
      };
  }

(* Deterministic seed mixing; same construction as Soak.mix (pinned
   seeds appear in CI, so no Hashtbl.hash). *)
let mix seed name incarnation =
  let h = ref (seed * 1_000_003) in
  String.iter (fun c -> h := (!h * 31) + Char.code c) name;
  h := (!h * 31) + incarnation;
  !h land 0x3FFFFFFF

let draw_plan cfg rng =
  let crash_at = 2 + Prng.int rng (max 1 (2 * cfg.crash_every)) in
  let short_at = if Prng.int rng 3 = 0 then Some (crash_at - 1) else None in
  {
    Fault.crash_at_append = crash_at;
    torn = Prng.bool rng;
    bit_flip = Prng.int rng 3 = 0;
    crash_at_atomic = (if Prng.int rng 4 = 0 then Some (1 + Prng.int rng 2) else None);
    short_at_append = short_at;
    enospc_at_append =
      (if Prng.int rng 5 = 0 then Some (1 + Prng.int rng (max 1 cfg.crash_every)) else None);
  }

let tenant_name i = Printf.sprintf "t%d" i

(* Same shape as the single-node soak's script: registrations up front,
   batched elements, churn (terminate + re-register) sprinkled in. *)
let script cfg ~tenant_idx =
  let tenant = tenant_name tenant_idx in
  let rng = Prng.create ~seed:(mix cfg.seed tenant 0x5c71) in
  let gen = Generator.create ~dim:cfg.dim ~seed:(mix cfg.seed tenant 0x9e3d) () in
  let next_id = ref 0 in
  let known = ref [] in
  let frames = ref [] in
  let emit f = frames := f :: !frames in
  let register () =
    let id = !next_id in
    incr next_id;
    known := id :: !known;
    let threshold = 1 + Prng.int rng (max 1 cfg.threshold) in
    emit (Frame.Op { tenant; op = Replay.Register (Generator.query gen ~id ~threshold) })
  in
  for _ = 1 to cfg.queries do
    register ()
  done;
  let remaining = ref cfg.elements in
  while !remaining > 0 do
    let n = min cfg.batch !remaining in
    remaining := !remaining - n;
    if n = 1 then emit (Frame.Op { tenant; op = Replay.Element (Generator.element gen) })
    else emit (Frame.Batch { tenant; elems = Array.init n (fun _ -> Generator.element gen) });
    if Prng.float rng 1.0 < cfg.churn then begin
      (match !known with
      | [] -> ()
      | ids ->
          let id = List.nth ids (Prng.int rng (List.length ids)) in
          emit (Frame.Op { tenant; op = Replay.Terminate id }));
      register ()
    end
  done;
  List.rev !frames

(* ---- pruned-segment archive ----------------------------------------- *)

let is_seg name =
  String.length name > 8
  && String.sub name 0 4 = "wal-"
  && String.sub name (String.length name - 4) 4 = ".seg"

(* Wrap a base dir so that cold WAL segments are captured the moment
   pruning removes them: archive ++ surviving chain is the node's full
   op history — the fault-free oracle even after the disk-bounding
   machinery has done its job. *)
let archive_wrap ~dim ~record (base : Io.dir) =
  {
    base with
    Io.remove_file =
      (fun name ->
        (if is_seg name then
           match base.Io.read_file name with
           | Some image -> (
               match Wal.scan_segment_string ~dim image with
               | Some (_epoch, sbase, _count, ops) -> record sbase ops
               | None -> ())
           | None -> ());
        base.Io.remove_file name);
  }

(* ---- reports --------------------------------------------------------- *)

type tenant_report = {
  name : string;
  applied : int;
  archived_records : int;
  chain_records : int;  (* records still on the promoted node's disk *)
  chain_base : int;
  matured : int;
  log_ok : bool;
  sub_ok : bool;
  acct_ok : bool;
  chain_ok : bool;  (* archive ++ chain is gap-free from op 1 *)
  disk_ok : bool;
}

type report = {
  per_tenant : tenant_report list;
  promoted : int;
  failovers : int;
  fenced : int;
  crashes_total : int;
  net_retransmits : int;
  scenario_ok : bool;
  volume_ok : bool;
  pruned_somewhere : bool;
  ok : bool;
}

let pp ppf r =
  Format.fprintf ppf
    "@[<v>rsoak: %s (promoted=%d failovers=%d fenced=%d crashes=%d retransmits=%d%s%s)@,"
    (if r.ok then "OK" else "FAILED")
    r.promoted r.failovers r.fenced r.crashes_total r.net_retransmits
    (if r.scenario_ok then "" else " SCENARIO-VIOLATION")
    (if r.volume_ok then "" else " VOLUME-SHORTFALL");
  List.iter
    (fun t ->
      Format.fprintf ppf
        "  %s: applied=%d matured=%d disk=%d+%d archived=%d%s%s%s%s%s@,"
        t.name t.applied t.matured t.chain_base t.chain_records t.archived_records
        (if t.log_ok then "" else " LOG-MISMATCH")
        (if t.sub_ok then "" else " SUB-MISMATCH")
        (if t.acct_ok then "" else " ACCT-MISMATCH")
        (if t.chain_ok then "" else " CHAIN-GAP")
        (if t.disk_ok then "" else " DISK-UNBOUNDED"))
    r.per_tenant;
  Format.fprintf ppf "@]"

(* ---- driver ----------------------------------------------------------- *)

let run ?(progress = fun _ -> ()) ~make cfg =
  if cfg.tenants < 1 || cfg.queries < 1 || cfg.elements < 0 || cfg.batch < 1 then
    invalid_arg "Rsoak.run: nonsensical config";
  (match cfg.scenario with
  | Clean -> ()
  | Kill at -> if at < 1 then invalid_arg "Rsoak.run: kill tick must be positive"
  | Wedge { at; duration } ->
      if at < 1 || duration < 1 then invalid_arg "Rsoak.run: bad wedge window");
  let bases : (int * string, Io.dir) Hashtbl.t = Hashtbl.create 16 in
  let archives : (int * string, (int * Replay.op list) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let archive_of node tenant =
    match Hashtbl.find_opt archives (node, tenant) with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add archives (node, tenant) r;
        r
  in
  let base_of node tenant =
    match Hashtbl.find_opt bases (node, tenant) with
    | Some d -> d
    | None ->
        let arch = archive_of node tenant in
        let d =
          archive_wrap ~dim:cfg.dim
            ~record:(fun sbase ops -> arch := (sbase, ops) :: !arch)
            (Io.mem_dir ())
        in
        Hashtbl.add bases (node, tenant) d;
        d
  in
  let provider ~node ~tenant ~incarnation =
    let base = base_of node tenant in
    if incarnation < cfg.faulty_incarnations then
      let rng =
        Prng.create ~seed:(mix cfg.seed (Printf.sprintf "%s@%d" tenant node) incarnation)
      in
      Fault.wrap ~rng (draw_plan cfg rng) base
    else base
  in
  let ccfg =
    {
      cfg.cluster with
      Cluster.clients = cfg.tenants + 1;
      server =
        { cfg.cluster.Cluster.server with Server.dim = cfg.dim; max_tenants = cfg.tenants };
    }
  in
  let cluster =
    Cluster.create ~config:ccfg ~make ~provider
      ~base_dir:(fun ~node ~tenant -> base_of node tenant)
      ()
  in
  let clock = Cluster.clock cluster in
  (* client 0 subscribes to everything; clients 1..tenants each drive
     one tenant's script *)
  for i = 0 to cfg.tenants - 1 do
    Cluster.subscribe cluster 0 (tenant_name i)
  done;
  for i = 0 to cfg.tenants - 1 do
    let frames = script cfg ~tenant_idx:i in
    let client = Cluster.client cluster (i + 1) in
    List.iter (fun f -> Client.enqueue client f) frames
  done;
  (match cfg.scenario with
  | Clean -> ()
  | Kill at ->
      ignore (Vclock.schedule clock ~delay:at (fun () -> Cluster.kill cluster 0))
  | Wedge { at; duration } ->
      ignore (Vclock.schedule clock ~delay:at (fun () -> Cluster.wedge cluster 0));
      ignore
        (Vclock.schedule clock ~delay:(at + duration) (fun () -> Cluster.unwedge cluster 0)));
  let scenario_done () =
    match cfg.scenario with
    | Clean -> true
    | Kill at | Wedge { at; _ } -> Vclock.now clock > at && Cluster.failovers cluster >= 1
  in
  let finished = ref false in
  let rec finish_check () =
    if not !finished then
      if scenario_done () && Cluster.quiescent cluster then begin
        finished := true;
        Cluster.stop cluster
      end
      else ignore (Vclock.schedule clock ~delay:25 finish_check)
  in
  ignore (Vclock.schedule clock ~delay:25 finish_check);
  progress "rsoak: driving the cluster to quiescence";
  Cluster.run cluster;
  progress "rsoak: quiescent; final checkpoint and shutdown";
  (* The in-run checkpoint cadence prunes with whatever ack floor the
     replicas had reached at checkpoint time; the last checkpoint of a
     run routinely lands while a replica still lags, pinning segments.
     At quiescence every ack is in, so one forced checkpoint releases
     them — the clean-shutdown checkpoint any real node would take. *)
  for s = 0 to ccfg.Cluster.serving - 1 do
    if Cluster.alive cluster s then Server.checkpoint_all (Cluster.server cluster s)
  done;
  for s = 0 to ccfg.Cluster.serving - 1 do
    if Cluster.alive cluster s then Server.shutdown (Cluster.server cluster s)
  done;
  Cluster.run cluster;
  progress "rsoak: verifying against the archived-chain oracle";
  let promoted = Cluster.primary cluster in
  let srv = Cluster.server cluster promoted in
  let subscriber = Cluster.client cluster 0 in
  let checkpoint_every = ccfg.Cluster.server.Server.durable.Rts_resilience.Durable.checkpoint_every in
  let segment_records = ccfg.Cluster.server.Server.segment_records in
  let per_tenant =
    List.init cfg.tenants (fun i ->
        let name = tenant_name i in
        let scanned = Wal.scan ~dim:cfg.dim ~dir:(base_of promoted name) () in
        let archived = List.sort compare !(archive_of promoted name) in
        let chain_ok, archived_ops_rev, archived_end =
          List.fold_left
            (fun (ok, acc, expect) (sbase, ops) ->
              ( ok && sbase = expect,
                List.rev_append ops acc,
                expect + List.length ops ))
            (true, [], 0) archived
        in
        let chain_ok = chain_ok && archived_end = scanned.Wal.base in
        let full_ops = List.rev_append archived_ops_rev scanned.Wal.ops in
        let oracle = Replay.replay_ops (make ~dim:cfg.dim) full_ops in
        let log = Server.maturity_log srv name in
        let sub = Client.matured subscriber name in
        let accepted = Server.accepted_ops srv name in
        let applied = Server.applied_ops srv name in
        let rejected = Server.rejected_ops srv name in
        let disk_ok =
          segment_records = 0
          || scanned.Wal.records <= (2 * checkpoint_every) + (2 * segment_records) + 128
        in
        {
          name;
          applied;
          archived_records = List.length archived_ops_rev;
          chain_records = scanned.Wal.records;
          chain_base = scanned.Wal.base;
          matured = List.length log;
          log_ok = log = oracle.Replay.maturities;
          sub_ok = sub = oracle.Replay.maturities;
          acct_ok =
            accepted = applied + rejected && scanned.Wal.base + scanned.Wal.records = applied;
          chain_ok;
          disk_ok;
        })
  in
  let scenario_ok =
    match cfg.scenario with
    | Clean ->
        (* a timeout detector under a lossy network can fire spuriously
           even with a healthy primary; the deposed incumbent halts and
           the correctness checks above still govern the outcome, so a
           clean run only demands that any failover was handled, not
           that none happened (pinned-seed tests assert zero) *)
        true
    | Kill _ ->
        Cluster.failovers cluster >= 1 && promoted <> 0 && not (Cluster.alive cluster 0)
    | Wedge _ ->
        Cluster.failovers cluster >= 1
        && promoted <> 0
        && Cluster.fail_stopped cluster 0
        && Cluster.fenced cluster > 0
  in
  let volume_ok =
    segment_records = 0
    || List.for_all (fun t -> t.applied >= 10 * checkpoint_every) per_tenant
  in
  let pruned_somewhere = List.exists (fun t -> t.chain_base > 0) per_tenant in
  let crashes_total =
    let n = ref 0 in
    for s = 0 to ccfg.Cluster.serving - 1 do
      n := !n + Server.crashes (Cluster.server cluster s)
    done;
    !n
  in
  let net_retransmits =
    Metrics.counter_value (Cluster.net_metrics cluster) "net_retransmits_total"
  in
  (* [ok] is the correctness verdict alone. [volume_ok] is reported but
     not folded in: how many ops survive to application depends on
     fault-plan luck (a disk-full window sheds whole batches, a kill
     drops the accepted-but-unapplied tail — both documented
     at-least-once admission), so it is asserted only by tests that pin
     seed and scenario. *)
  let ok =
    List.for_all (fun t -> t.log_ok && t.sub_ok && t.acct_ok && t.chain_ok && t.disk_ok)
      per_tenant
    && scenario_ok
    && (segment_records = 0 || pruned_somewhere)
  in
  {
    per_tenant;
    promoted;
    failovers = Cluster.failovers cluster;
    fenced = Cluster.fenced cluster;
    crashes_total;
    net_retransmits;
    scenario_ok;
    volume_ok;
    pruned_somewhere;
    ok;
  }
