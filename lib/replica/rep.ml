module Replay = Rts_workload.Replay
module Frame = Rts_serve.Frame

type t =
  | Append of { epoch : int; tenant : string; index : int; op : Replay.op }
  | Ack of { epoch : int; tenant : string; durable : int }
  | Heartbeat of { epoch : int; floors : (string * int) list }
  | Probe of { epoch : int }
  | Position of { epoch : int; total : int }
  | View of { epoch : int; primary : int; members : int list }

(* Every verb starts with "r" and none collides with an [Rts_serve.Frame]
   verb, so a receiver can dispatch on the first field alone. *)
let verbs = [ "rapp"; "rack"; "rhb"; "rprobe"; "rpos"; "rview" ]

let cut s =
  match String.index_opt s ',' with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let is_rep line =
  let verb = match cut line with Some (v, _) -> v | None -> line in
  List.mem verb verbs

let floors_to_string floors =
  (* sorted for a canonical rendering — heartbeats are compared in tests *)
  List.sort compare floors
  |> List.map (fun (t, f) -> Printf.sprintf "%s:%d" t f)
  |> String.concat ";"

let to_string = function
  | Append { epoch; tenant; index; op } ->
      (* the op line rides last: it contains commas of its own *)
      Printf.sprintf "rapp,%d,%s,%d,%s" epoch tenant index (Replay.op_to_line op)
  | Ack { epoch; tenant; durable } -> Printf.sprintf "rack,%d,%s,%d" epoch tenant durable
  | Heartbeat { epoch; floors = [] } -> Printf.sprintf "rhb,%d" epoch
  | Heartbeat { epoch; floors } -> Printf.sprintf "rhb,%d,%s" epoch (floors_to_string floors)
  | Probe { epoch } -> Printf.sprintf "rprobe,%d" epoch
  | Position { epoch; total } -> Printf.sprintf "rpos,%d,%d" epoch total
  | View { epoch; primary; members } ->
      (* members sorted for a canonical rendering *)
      Printf.sprintf "rview,%d,%d,%s" epoch primary
        (String.concat ";" (List.map string_of_int (List.sort compare members)))

let int_of s = match int_of_string_opt s with Some n -> Ok n | None -> Error ("bad int " ^ s)

let ( let* ) = Result.bind

let epoch_of rest k =
  match cut rest with
  | None ->
      let* e = int_of rest in
      k e None
  | Some (e, tail) ->
      let* e = int_of e in
      k e (Some tail)

let need = function Some x -> Ok x | None -> Error "missing field"

let parse_floors s =
  if s = "" then Ok []
  else
    List.fold_right
      (fun part acc ->
        let* acc = acc in
        match String.index_opt part ':' with
        | None -> Error ("bad floor " ^ part)
        | Some i ->
            let tenant = String.sub part 0 i in
            let* floor = int_of (String.sub part (i + 1) (String.length part - i - 1)) in
            if Frame.tenant_ok tenant then Ok ((tenant, floor) :: acc)
            else Error ("bad tenant " ^ tenant))
      (String.split_on_char ';' s) (Ok [])

let of_string ~dim line =
  let line = String.trim line in
  match cut line with
  | None -> Error (Printf.sprintf "unknown rep frame %S" line)
  | Some ("rapp", rest) ->
      epoch_of rest (fun epoch tail ->
          let* tail = need tail in
          let* tenant, tail =
            match cut tail with
            | Some (t, tl) when Frame.tenant_ok t -> Ok (t, tl)
            | _ -> Error "bad tenant field"
          in
          let* index, opline =
            match cut tail with Some (i, l) -> Ok (i, l) | None -> Error "missing op"
          in
          let* index = int_of index in
          match Replay.parse_op ~dim ~line_no:0 opline with
          | op -> Ok (Append { epoch; tenant; index; op })
          | exception Rts_workload.Csv_io.Parse_error msg -> Error msg)
  | Some ("rack", rest) ->
      epoch_of rest (fun epoch tail ->
          let* tail = need tail in
          match cut tail with
          | Some (tenant, d) when Frame.tenant_ok tenant ->
              let* durable = int_of d in
              Ok (Ack { epoch; tenant; durable })
          | _ -> Error "bad ack")
  | Some ("rhb", rest) ->
      epoch_of rest (fun epoch tail ->
          let* floors = parse_floors (Option.value ~default:"" tail) in
          Ok (Heartbeat { epoch; floors }))
  | Some ("rprobe", rest) ->
      epoch_of rest (fun epoch tail ->
          match tail with None -> Ok (Probe { epoch }) | Some _ -> Error "rprobe: extra field")
  | Some ("rpos", rest) ->
      epoch_of rest (fun epoch tail ->
          let* t = need tail in
          let* total = int_of t in
          Ok (Position { epoch; total }))
  | Some ("rview", rest) ->
      epoch_of rest (fun epoch tail ->
          let* tail = need tail in
          match cut tail with
          | None -> Error "rview: missing members"
          | Some (p, ms) ->
              let* primary = int_of p in
              let* members =
                List.fold_right
                  (fun m acc ->
                    let* acc = acc in
                    let* m = int_of m in
                    Ok (m :: acc))
                  (if ms = "" then [] else String.split_on_char ';' ms)
                  (Ok [])
              in
              if List.mem primary members then Ok (View { epoch; primary; members })
              else Error "rview: primary not a member")
  | Some (verb, _) -> Error (Printf.sprintf "unknown rep verb %S" verb)

let epoch = function
  | Append { epoch; _ }
  | Ack { epoch; _ }
  | Heartbeat { epoch; _ }
  | Probe { epoch }
  | Position { epoch; _ }
  | View { epoch; _ } ->
      epoch

let pp ppf f = Format.pp_print_string ppf (to_string f)
