module Replay = Rts_workload.Replay
module Server = Rts_serve.Server
module Vclock = Rts_net.Vclock

(* Primary-side shipping state for one tenant. [retained] holds the
   in-memory tail of the op log — every op some replica might still
   need — as (index, op) in ascending index order; entries are dropped
   once every replica has acknowledged them durable. *)
type tstate = {
  retained : (int * Replay.op) Queue.t;
  mutable hi : int;  (* highest index retained/shipped so far *)
  acks : (int, int) Hashtbl.t;  (* replica site -> acked durable index *)
}

type t = {
  clock : Vclock.t;
  server : Server.t;
  epoch : int;
  replicas : int list;
  send : dst:int -> Rep.t -> unit;
  tenants : (string, tstate) Hashtbl.t;
  hb_every : int;
  controller : int;
  mutable stopped : bool;
  mutable shipped : int;
  mutable acks_seen : int;
  mutable heartbeats : int;
}

let tstate t tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some st -> st
  | None ->
      let st = { retained = Queue.create (); hi = 0; acks = Hashtbl.create 4 } in
      List.iter (fun r -> Hashtbl.replace st.acks r 0) t.replicas;
      Hashtbl.add t.tenants tenant st;
      st

let min_ack t st = List.fold_left (fun m r -> min m (Hashtbl.find st.acks r)) max_int t.replicas

let ack_floor t ~tenant =
  if t.replicas = [] then max_int
  else match Hashtbl.find_opt t.tenants tenant with None -> 0 | Some st -> min_ack t st

let lag t ~tenant =
  if t.replicas = [] then 0
  else
    let applied = Server.applied_ops t.server tenant in
    match Hashtbl.find_opt t.tenants tenant with
    | None -> applied
    | Some st -> List.fold_left (fun m r -> max m (applied - Hashtbl.find st.acks r)) 0 t.replicas

let ship t tenant st index op =
  List.iter (fun r -> t.send ~dst:r (Rep.Append { epoch = t.epoch; tenant; index; op })) t.replicas;
  t.shipped <- t.shipped + List.length t.replicas;
  ignore st

let on_applied t ~tenant ~index ~op =
  let st = tstate t tenant in
  (* re-applies after a local storage crash arrive again with the same
     index and a bit-identical op — dedup by index, ship only fresh *)
  if index > st.hi then begin
    st.hi <- index;
    Queue.add (index, op) st.retained;
    ship t tenant st index op
  end

let drop_retained st ~through =
  let rec go () =
    match Queue.peek_opt st.retained with
    | Some (i, _) when i <= through ->
        ignore (Queue.pop st.retained);
        go ()
    | _ -> ()
  in
  go ()

let on_ack t ~replica ~tenant ~durable =
  if List.mem replica t.replicas then begin
    t.acks_seen <- t.acks_seen + 1;
    let st = tstate t tenant in
    let prev = try Hashtbl.find st.acks replica with Not_found -> 0 in
    if durable > prev then begin
      Hashtbl.replace st.acks replica durable;
      drop_retained st ~through:(min_ack t st);
      (* the floor may have advanced: release any parked maturity pushes *)
      Server.flush_pushes t.server tenant
    end
  end

let floors t =
  Hashtbl.fold (fun tenant st acc -> (tenant, min_ack t st) :: acc) t.tenants []
  |> List.sort compare

let rec heartbeat t () =
  if not t.stopped then begin
    let hb = Rep.Heartbeat { epoch = t.epoch; floors = floors t } in
    List.iter (fun r -> t.send ~dst:r hb) t.replicas;
    t.send ~dst:t.controller hb;
    t.heartbeats <- t.heartbeats + 1;
    ignore (Vclock.schedule t.clock ~delay:t.hb_every (fun () -> heartbeat t ()))
  end

let create ~clock ~server ~epoch ~replicas ~controller ?(hb_every = 8)
    ?(history = fun _ -> []) ~send () =
  if hb_every < 1 then invalid_arg "Replicator.create: hb_every must be positive";
  let t =
    {
      clock;
      server;
      epoch;
      replicas;
      send;
      tenants = Hashtbl.create 8;
      hb_every;
      controller;
      stopped = false;
      shipped = 0;
      acks_seen = 0;
      heartbeats = 0;
    }
  in
  (* Catch-up volley: a replicator created over a server with history (a
     promotion) re-ships every retained op to every replica. Replicas
     deduplicate on index, ack their current durable position, and the
     ack stream rebuilds the floor — no restatement round-trip needed.
     The history callback supplies (index, op) ascending; its base is
     below every replica's ack by the heartbeat-floor prune discipline,
     so no replica ever needs a record older than the history holds. *)
  List.iter
    (fun tenant ->
      let st = tstate t tenant in
      List.iter
        (fun (index, op) ->
          if index > st.hi then begin
            st.hi <- index;
            Queue.add (index, op) st.retained;
            ship t tenant st index op
          end)
        (history tenant))
    (Server.tenant_names server);
  Server.set_replication server
    (Some
       {
         Server.on_applied = (fun ~tenant ~index ~op -> on_applied t ~tenant ~index ~op);
         ack_floor = (fun ~tenant -> ack_floor t ~tenant);
         lag = (fun ~tenant -> lag t ~tenant);
       });
  heartbeat t ();
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Server.set_replication t.server None
  end

let fully_acked t =
  t.replicas = []
  || List.for_all
       (fun tenant -> ack_floor t ~tenant >= Server.applied_ops t.server tenant)
       (Server.tenant_names t.server)

let retained_ops t tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | None -> 0
  | Some st -> Queue.length st.retained

let shipped t = t.shipped

let acks_seen t = t.acks_seen

let heartbeats_sent t = t.heartbeats
