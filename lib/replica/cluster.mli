(** Deterministic replica-topology harness: one controller, [serving]
    serving nodes (site 0 is the initial primary), [clients] scripted
    clients, all on one {!Rts_net.Reliable} fabric over one virtual
    clock.

    {2 Addressing}

    Envelope node [Coordinator] is the failover controller; [Site i]
    for [i < serving] is serving node [i]; [Site (serving + j)] is
    client [j]. Replication frames ({!Rep}) and serve frames
    ({!Rts_serve.Frame}) share each link, told apart by verb.

    {2 Fencing}

    Epochs start at 1. Every send stamps the sender's current epoch
    into the envelope; every receiver drops (and counts, see {!fenced})
    frames below its own epoch. A failover bumps the controller epoch;
    probes and the view broadcast carry it outward, so a deposed
    primary's in-flight frames — and anything a wedged zombie says
    after it wakes — bounce off every up-to-date node and client.

    {2 Failure model}

    [kill] is fail-stop: the process vanishes; the fabric still
    transport-acks so links don't retransmit forever, but nothing is
    processed. [wedge] is a stall: inbound frames buffer, outbound
    frames are lost; on [unwedge] the buffer replays in order — by
    which time the fencing view is usually sitting in it, so the zombie
    processes a few stale frames (whose replies get fenced at their
    receivers) and then fail-stops itself. A superseded primary always
    halts rather than rejoining: its unreplicated WAL tail may diverge
    from the new primary's history, and reconciliation is future work.

    {2 Never-early, exactly-once maturity}

    The primary parks maturity pushes until every replica has the
    triggering op durable ({!Rts_serve.Server.replication}'s ack
    floor), so a push can never refer to an op that a promoted node
    might not hold. Clients re-subscribe after a view change with their
    maturity watermark, so backfill resumes exactly after the last push
    they saw. *)

module Server = Rts_serve.Server
module Client = Rts_serve.Client

type config = {
  serving : int;  (** serving nodes; node 0 is the initial primary *)
  clients : int;
  server : Server.config;  (** per-node server config (dim lives here) *)
  reliable : Rts_net.Reliable.config;
  net : Rts_net.Net_fault.spec;
  net_seed : int;
  hb_every : int;  (** primary heartbeat cadence, ticks *)
  hb_timeout : int;  (** controller: silence before declaring death *)
  check_every : int;  (** controller liveness-check cadence *)
  settle_every : int;  (** replica durability settle-sweep delay *)
}

val default : config
(** 3 serving nodes, 2 clients, clean network. *)

type t

val create :
  ?config:config ->
  make:(dim:int -> Rts_core.Engine.t) ->
  provider:(node:int -> tenant:string -> incarnation:int -> Rts_resilience.Io.dir) ->
  base_dir:(node:int -> tenant:string -> Rts_resilience.Io.dir) ->
  unit ->
  t
(** [provider] yields the (possibly fault-wrapped) storage dir for one
    tenant life on one node; [base_dir] must yield the {e unwrapped}
    persistent dir underneath — promotion scans it to build the
    catch-up history volley. *)

(* ---- scenario controls ---- *)

val kill : t -> int -> unit
(** Fail-stop a serving node. *)

val wedge : t -> int -> unit
val unwedge : t -> int -> unit

val stop : t -> unit
(** Stop all recurring tasks (heartbeats, controller checks, settle
    sweeps stop re-arming) so {!run} can drain to idle. *)

val run : ?max_steps:int -> t -> unit
(** [Vclock.run_until_idle] on the shared clock. *)

val subscribe : t -> int -> string -> unit
(** Record client [j]'s interest in a tenant (re-subscribed with its
    watermark on every view change) and enqueue the subscribe. *)

(* ---- access ---- *)

val clock : t -> Rts_net.Vclock.t
val server : t -> int -> Server.t
val client : t -> int -> Client.t

val primary : t -> int
(** Current primary site per the controller. *)

val epoch : t -> int
val failovers : t -> int

val fenced : t -> int
(** Frames dropped for carrying a superseded epoch, cluster-wide. *)

val alive : t -> int -> bool
val fail_stopped : t -> int -> bool
val replicator : t -> int -> Replicator.t option
val clients_idle : t -> bool

val quiescent : t -> bool
(** Clients idle, no probe in flight, every live node healthy and (if
    primary) fully acked — the soak's stop condition. *)

val net_metrics : t -> Rts_obs.Metrics.snapshot
