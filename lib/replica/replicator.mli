(** Primary-side WAL shipping.

    A replicator attaches to a {!Rts_serve.Server} in the [Primary]
    role (it installs itself via {!Rts_serve.Server.set_replication})
    and, as each op commits locally, ships it to every replica as an
    {!Rep.Append} over the caller-supplied [send]. Replica {!Rep.Ack}s
    feed back through {!on_ack}, maintaining per-(replica, tenant)
    durable positions whose minimum is:

    - the {e ack floor} — the maturity-push gate the server reads (a
      push leaves the primary only when every replica holds its op
      durably, the never-early half of exactly-once-across-failover);
    - the in-memory {e retention} bound — ops every replica has
      acknowledged are dropped from the shipping tail;
    - the {e prune floor} broadcast in heartbeats — the bound below
      which replicas may prune their own cold WAL segments.

    Replication is write-all by design: promotion picks the
    most-caught-up replica, so an op acknowledged by {e every} replica
    is durable on whichever node wins — a per-tenant majority quorum
    would let a pushed op survive only on losers. Lag relative to the
    slowest replica is surfaced through the server's [Wal_lag]
    admission gate instead (quorum-lag shedding). *)

module Replay = Rts_workload.Replay
module Server = Rts_serve.Server

type t

val create :
  clock:Rts_net.Vclock.t ->
  server:Server.t ->
  epoch:int ->
  replicas:int list ->
  controller:int ->
  ?hb_every:int ->
  ?history:(string -> (int * Replay.op) list) ->
  send:(dst:int -> Rep.t -> unit) ->
  unit ->
  t
(** Attach to [server] and begin shipping. [replicas] and [controller]
    are opaque destination ids for [send]. [history] (used at
    promotion) yields each existing tenant's retained op tail as
    [(index, op)] ascending — it is re-shipped immediately as a
    catch-up volley; replicas deduplicate by index and re-ack, which
    rebuilds the ack floor without a restatement round. Heartbeats
    (every [hb_every] ticks, default 8) carry per-tenant prune floors
    and keep firing until {!stop}. *)

val on_ack : t -> replica:int -> tenant:string -> durable:int -> unit
(** Feed one {!Rep.Ack}. Acks are monotone-max merged; an advance drops
    retained ops all replicas now hold and releases any maturity pushes
    the new floor permits ({!Rts_serve.Server.flush_pushes}). Acks from
    sites outside [replicas] are ignored. *)

val stop : t -> unit
(** Stop heartbeats (the recurring task does not re-arm) and uninstall
    the server hooks. Idempotent. Used on demotion, fail-stop, and
    scenario teardown. *)

val fully_acked : t -> bool
(** Every replica has acknowledged every applied op of every tenant —
    the replication half of cluster quiescence. *)

val retained_ops : t -> string -> int
(** In-memory shipping tail length for a tenant (bounded by the
    slowest replica's lag — the in-memory analogue of WAL pruning). *)

val shipped : t -> int
(** Append frames sent (catch-up volleys included). *)

val acks_seen : t -> int

val heartbeats_sent : t -> int
