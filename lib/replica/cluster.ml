module Prng = Rts_util.Prng
module Io = Rts_resilience.Io
module Wal = Rts_resilience.Wal
module Vclock = Rts_net.Vclock
module Envelope = Rts_net.Envelope
module Reliable = Rts_net.Reliable
module Net_fault = Rts_net.Net_fault
module Server = Rts_serve.Server
module Client = Rts_serve.Client
module Frame = Rts_serve.Frame

type config = {
  serving : int;
  clients : int;
  server : Server.config;
  reliable : Reliable.config;
  net : Net_fault.spec;
  net_seed : int;
  hb_every : int;
  hb_timeout : int;
  check_every : int;
  settle_every : int;
}

let default =
  {
    serving = 3;
    clients = 2;
    server = Server.default;
    reliable = Reliable.default;
    net = Net_fault.none;
    net_seed = 1;
    hb_every = 8;
    hb_timeout = 48;
    check_every = 16;
    settle_every = 12;
  }

type node = {
  site : int;
  server : Server.t;
  mutable nepoch : int;  (* fencing floor: frames below this are dropped *)
  mutable viewed : int;  (* last view epoch actually adopted *)
  mutable alive : bool;
  mutable wedged : bool;
  mutable fail_stopped : bool;  (* halted on seeing a superseding view *)
  wedge_buf : (int * int * string) Queue.t;  (* (src site, epoch, body) *)
  mutable known_primary : int;
  mutable ack_to : int;  (* where this replica's acks go *)
  last_acked : (string, int) Hashtbl.t;
  accepted_index : (string, int) Hashtbl.t;  (* replica intake dedup *)
  floors : (string, int) Hashtbl.t;  (* heartbeat prune floors *)
  mutable replicator : Replicator.t option;
  mutable sweep_armed : bool;
}

type cnode = {
  csite : int;
  client : Client.t;
  mutable cepoch : int;
  mutable target : int;
  subs : (string, unit) Hashtbl.t;
}

type controller = {
  mutable ce : int;
  mutable primary : int;
  mutable last_hb : int;
  mutable probing : bool;
  mutable probe_started : int;
  positions : (int, int) Hashtbl.t;
  mutable expected : int list;
  mutable failovers : int;
}

type t = {
  cfg : config;
  dim : int;
  clock : Vclock.t;
  mutable fabric : Reliable.t option;
  nodes : node array;
  cnodes : cnode array;
  ctl : controller;
  base_dir : node:int -> tenant:string -> Io.dir;
  mutable stopped : bool;
  mutable fenced : int;
}

let fabric t = Option.get t.fabric

let node_addr i = if i < 0 then Envelope.Coordinator else Envelope.Site i

(* ---- gated sends ---------------------------------------------------- *)

(* A dead node sends nothing; a wedged node's outbound is dropped on the
   floor (the stall model: whatever it tries to say during the wedge is
   lost — what it says AFTER waking carries its stale epoch and gets
   fenced by receivers). Every live send stamps the node's epoch into
   the envelope. *)
let node_send t node ~dst body =
  if node.alive && not node.wedged then
    Reliable.send (fabric t) ~epoch:node.nepoch ~src:(Envelope.Site node.site)
      ~dst:(node_addr dst) (Envelope.App { body })

let client_send t c body =
  Reliable.send (fabric t) ~epoch:c.cepoch ~src:(Envelope.Site c.csite)
    ~dst:(Envelope.Site c.target) (Envelope.App { body })

let controller_send t ~dst body =
  Reliable.send (fabric t) ~epoch:t.ctl.ce ~src:Envelope.Coordinator ~dst:(node_addr dst)
    (Envelope.App { body })

(* ---- replica-side ack machinery ------------------------------------- *)

let send_ack t node tenant =
  let dp = Server.durable_position node.server tenant in
  let last = Option.value ~default:0 (Hashtbl.find_opt node.last_acked tenant) in
  if dp > last then begin
    Hashtbl.replace node.last_acked tenant dp;
    node_send t node ~dst:node.ack_to
      (Rep.to_string (Rep.Ack { epoch = node.nepoch; tenant; durable = dp }))
  end

(* The durable floor advances in fsync-cadence steps, so after the last
   op of a burst there is always an unacked tail. The settle sweep —
   armed whenever a tail exists, re-armed until it is gone — forces a
   sync and acks the rest, letting the primary's ack floor (and with it
   the parked maturity pushes) reach the top at quiescence. *)
let rec arm_sweep t node =
  if (not node.sweep_armed) && node.alive && not t.stopped then begin
    node.sweep_armed <- true;
    ignore (Vclock.schedule t.clock ~delay:t.cfg.settle_every (fun () -> sweep t node))
  end

and sweep t node =
  node.sweep_armed <- false;
  if node.alive then
    if node.wedged then arm_sweep t node
    else begin
      Server.sync_all node.server;
      List.iter (fun tenant -> send_ack t node tenant) (Server.tenant_names node.server);
      let unsettled =
        List.exists
          (fun tenant ->
            Server.applied_ops node.server tenant
            > Option.value ~default:0 (Hashtbl.find_opt node.last_acked tenant))
          (Server.tenant_names node.server)
      in
      if unsettled then arm_sweep t node
    end

let install_replica_hooks t node =
  Server.set_replication node.server
    (Some
       {
         Server.on_applied =
           (fun ~tenant ~index:_ ~op:_ ->
             send_ack t node tenant;
             if
               Server.applied_ops node.server tenant
               > Server.durable_position node.server tenant
             then arm_sweep t node);
         ack_floor =
           (fun ~tenant -> Option.value ~default:0 (Hashtbl.find_opt node.floors tenant));
         lag = (fun ~tenant:_ -> 0);
       })

(* ---- promotion / demotion ------------------------------------------ *)

let history t node tenant =
  let scanned = Wal.scan ~dim:t.dim ~dir:(t.base_dir ~node:node.site ~tenant) () in
  List.mapi (fun i op -> (scanned.Wal.base + i + 1, op)) scanned.Wal.ops

let make_replicator t node ~epoch ~replicas =
  Replicator.create ~clock:t.clock ~server:node.server ~epoch ~replicas ~controller:(-1)
    ~hb_every:t.cfg.hb_every
    ~history:(fun tenant -> history t node tenant)
    ~send:(fun ~dst rep -> node_send t node ~dst (Rep.to_string rep))
    ()

let promote t node ~epoch ~members =
  (* force the applied state durable first, so the history volley covers
     everything on_applied will not re-report; storage faults during the
     sync crash the tenant and supervision re-applies as usual *)
  Server.sync_all node.server;
  if Server.epoch node.server < epoch then Server.set_epoch node.server epoch;
  Server.set_role node.server Server.Primary;
  (* a re-elected incumbent (spurious failover it won) replaces its
     replicator: the old one stamps the superseded epoch into every
     frame, which the re-fenced replicas would drop *)
  (match node.replicator with Some r -> Replicator.stop r | None -> ());
  (* replicate only to view members: a node the election never heard
     from must not pin the ack floor — and the parked pushes — at zero *)
  let replicas = List.filter (fun s -> s <> node.site) members in
  node.replicator <- Some (make_replicator t node ~epoch ~replicas)

let adopt_view_node t node ~epoch ~primary ~members =
  node.viewed <- epoch;
  if epoch > node.nepoch then node.nepoch <- epoch;
  if primary = node.site then begin
    promote t node ~epoch ~members;
    node.known_primary <- primary
  end
  else
    match node.replicator with
    | Some r ->
        (* a superseded primary halts: its divergent tail is not
           reconciled back into the cluster (future work) *)
        Replicator.stop r;
        node.replicator <- None;
        node.fail_stopped <- true;
        node.alive <- false
    | None ->
        node.known_primary <- primary;
        node.ack_to <- primary;
        if Server.epoch node.server < epoch then Server.set_epoch node.server epoch;
        (* restate our positions to the new primary so its ack floor
           rebuilds without waiting for the catch-up volley *)
        Hashtbl.reset node.last_acked;
        List.iter (fun tenant -> send_ack t node tenant) (Server.tenant_names node.server)

(* ---- node receive path ---------------------------------------------- *)

let process_rep_node t node ~src rep =
  match rep with
  | Rep.Append { epoch; tenant; index; op } ->
      if epoch > node.nepoch then begin
        node.nepoch <- epoch;
        if Server.epoch node.server < epoch then Server.set_epoch node.server epoch
      end;
      node.ack_to <- src;
      let cur = Option.value ~default:0 (Hashtbl.find_opt node.accepted_index tenant) in
      if index <= cur then
        (* duplicate (a promotion catch-up volley): re-ack our position
           so the new primary's floor covers what we already hold *)
        send_ack t node tenant
      else if index = cur + 1 then begin
        Hashtbl.replace node.accepted_index tenant index;
        if not (Server.replica_submit node.server tenant [ op ]) then
          failwith "Cluster: replica tenant table full (topology mismatch)"
      end
      else
        failwith
          (Printf.sprintf "Cluster: replication gap on %s: got %d, expected %d" tenant index
             (cur + 1))
  | Rep.Ack { tenant; durable; _ } -> (
      match node.replicator with
      | Some r -> Replicator.on_ack r ~replica:src ~tenant ~durable
      | None -> ())
  | Rep.Heartbeat { floors; _ } ->
      List.iter
        (fun (tenant, f) ->
          let cur = Option.value ~default:0 (Hashtbl.find_opt node.floors tenant) in
          if f > cur then Hashtbl.replace node.floors tenant f)
        floors
  | Rep.Probe { epoch } ->
      (* fence first — from this moment the old primary's frames bounce
         off this node — then report how far we got *)
      if epoch > node.nepoch then node.nepoch <- epoch;
      let total =
        List.fold_left
          (fun acc tenant -> acc + Server.applied_ops node.server tenant)
          0
          (Server.tenant_names node.server)
      in
      node_send t node ~dst:(-1) (Rep.to_string (Rep.Position { epoch = node.nepoch; total }))
  | Rep.Position _ -> ()
  | Rep.View { epoch; primary; members } ->
      if epoch > node.viewed then adopt_view_node t node ~epoch ~primary ~members

let process_node t node ~src body =
  if Rep.is_rep body then
    match Rep.of_string ~dim:t.dim body with
    | Ok rep -> process_rep_node t node ~src rep
    | Error msg -> failwith ("Cluster: bad rep frame on the wire: " ^ msg)
  else
    match Frame.client_of_string ~dim:t.dim body with
    | Ok frame -> Server.handle node.server ~src frame
    | Error message ->
        node_send t node ~dst:src (Frame.server_to_string (Frame.Rejected { message }))

let node_recv t node ~src ~epoch body =
  if not node.alive then () (* the fabric acked; a dead process hears nothing *)
  else if epoch < node.nepoch then t.fenced <- t.fenced + 1
  else if node.wedged then Queue.add (src, epoch, body) node.wedge_buf
  else process_node t node ~src body

(* ---- client receive path -------------------------------------------- *)

let resubscribe c =
  Hashtbl.iter
    (fun tenant () ->
      Client.enqueue c.client
        (Frame.Subscribe { tenant; after = Client.watermark c.client tenant }))
    c.subs

let client_adopt_view c ~epoch ~primary =
  c.cepoch <- epoch;
  c.target <- primary;
  ignore (Client.requeue_inflight c.client);
  resubscribe c;
  Client.kick c.client

let client_recv t c ~epoch body =
  if epoch < c.cepoch then t.fenced <- t.fenced + 1
  else if Rep.is_rep body then (
    match Rep.of_string ~dim:t.dim body with
    | Ok (Rep.View { epoch; primary; members = _ }) ->
        if epoch > c.cepoch then client_adopt_view c ~epoch ~primary
    | Ok _ -> ()
    | Error msg -> failwith ("Cluster: bad rep frame at client: " ^ msg))
  else
    match Frame.server_of_string body with
    | Ok frame -> Client.deliver c.client frame
    | Error msg -> failwith ("Cluster: bad server frame on the wire: " ^ msg)

(* ---- controller ----------------------------------------------------- *)

let broadcast_view t ~members =
  let c = t.ctl in
  let view = Rep.to_string (Rep.View { epoch = c.ce; primary = c.primary; members }) in
  for s = 0 to t.cfg.serving - 1 do
    controller_send t ~dst:s view
  done;
  Array.iter (fun cn -> controller_send t ~dst:cn.csite view) t.cnodes

(* Elect among the nodes that actually answered the probe (most caught
   up wins; ties to the lowest site). The responders become the view's
   member set — a probed node that never answered is presumed dead and
   left out, so it cannot pin the new primary's ack floor. *)
let complete_failover t =
  let c = t.ctl in
  let responders =
    List.filter (fun s -> Hashtbl.mem c.positions s) (List.sort compare c.expected)
  in
  let winner =
    List.fold_left
      (fun best s ->
        let total = Hashtbl.find c.positions s in
        match best with
        | Some (_, bt) when bt >= total -> best
        | _ -> Some (s, total))
      None responders
  in
  match winner with
  | None -> ()
  | Some (site, _) ->
      c.primary <- site;
      c.probing <- false;
      c.last_hb <- Vclock.now t.clock;
      broadcast_view t ~members:responders

let controller_recv t ~src ~epoch body =
  let c = t.ctl in
  if epoch < c.ce then t.fenced <- t.fenced + 1
  else if Rep.is_rep body then
    match Rep.of_string ~dim:t.dim body with
    | Ok (Rep.Heartbeat _) -> if src = c.primary then c.last_hb <- Vclock.now t.clock
    | Ok (Rep.Position { epoch = e; total }) ->
        if c.probing && e = c.ce && List.mem src c.expected then begin
          Hashtbl.replace c.positions src total;
          if List.for_all (fun s -> Hashtbl.mem c.positions s) c.expected then
            complete_failover t
        end
    | Ok _ -> ()
    | Error msg -> failwith ("Cluster: bad rep frame at controller: " ^ msg)

let send_probes t =
  let c = t.ctl in
  Hashtbl.reset c.positions;
  c.probe_started <- Vclock.now t.clock;
  List.iter
    (fun s -> controller_send t ~dst:s (Rep.to_string (Rep.Probe { epoch = c.ce })))
    c.expected

let rec controller_check t =
  if not t.stopped then begin
    let c = t.ctl in
    (if c.probing then begin
       (* a probed node may be dead and never answer: after a deadline,
          elect among whoever did answer. If nobody answered, widen the
          ballot to every serving node — the detection may have been
          spurious (delayed heartbeats), and the incumbent, still alive,
          can then win its own re-election — and try again under a fresh
          epoch. *)
       if Vclock.now t.clock - c.probe_started > t.cfg.hb_timeout then
         if Hashtbl.length c.positions > 0 then complete_failover t
         else begin
           c.ce <- c.ce + 1;
           c.expected <- List.init t.cfg.serving Fun.id;
           send_probes t
         end
     end
     else if Vclock.now t.clock - c.last_hb > t.cfg.hb_timeout && t.cfg.serving > 1 then begin
       (* the primary went quiet: fence it with a fresh epoch and ask
          the survivors where they stand *)
       c.ce <- c.ce + 1;
       c.probing <- true;
       c.failovers <- c.failovers + 1;
       c.expected <- List.filter (fun s -> s <> c.primary) (List.init t.cfg.serving Fun.id);
       send_probes t
     end);
    ignore (Vclock.schedule t.clock ~delay:t.cfg.check_every (fun () -> controller_check t))
  end

(* ---- construction --------------------------------------------------- *)

let create ?(config = default) ~make ~provider ~base_dir () =
  if config.serving < 1 then invalid_arg "Cluster.create: need at least one serving node";
  if config.clients < 1 then invalid_arg "Cluster.create: need at least one client";
  if
    config.hb_every < 1 || config.hb_timeout < 1 || config.check_every < 1
    || config.settle_every < 1
  then invalid_arg "Cluster.create: cadence fields must be positive";
  let dim = config.server.Server.dim in
  let clock = Vclock.create () in
  let rng = Prng.create ~seed:config.net_seed in
  let t_ref = ref None in
  let the () = match !t_ref with Some t -> t | None -> assert false in
  let deliver (env : Envelope.t) =
    match env.payload with
    | Envelope.App { body } -> (
        let t = the () in
        let src = Envelope.node_id env.src in
        match env.dst with
        | Envelope.Coordinator -> controller_recv t ~src ~epoch:env.epoch body
        | Envelope.Site i when i < t.cfg.serving ->
            node_recv t t.nodes.(i) ~src ~epoch:env.epoch body
        | Envelope.Site i -> client_recv t t.cnodes.(i - t.cfg.serving) ~epoch:env.epoch body)
    | _ -> ()
  in
  let fab =
    Reliable.create ~config:config.reliable ~clock ~rng ~spec:config.net ~deliver
      ~on_degrade:(fun _ -> ())
      ()
  in
  let nodes =
    Array.init config.serving (fun i ->
        let server =
          Server.create ~config:config.server ~clock ~make
            ~provider:(fun ~tenant ~incarnation -> provider ~node:i ~tenant ~incarnation)
            ~send:(fun ~dst frame ->
              let t = the () in
              node_send t t.nodes.(i) ~dst (Frame.server_to_string frame))
            ()
        in
        {
          site = i;
          server;
          nepoch = 1;
          viewed = 1;
          alive = true;
          wedged = false;
          fail_stopped = false;
          wedge_buf = Queue.create ();
          known_primary = 0;
          ack_to = 0;
          last_acked = Hashtbl.create 8;
          accepted_index = Hashtbl.create 8;
          floors = Hashtbl.create 8;
          replicator = None;
          sweep_armed = false;
        })
  in
  let cnodes =
    Array.init config.clients (fun j ->
        let csite = config.serving + j in
        let client =
          Client.create ~site:csite ~clock
            ~send:(fun frame ->
              let t = the () in
              client_send t t.cnodes.(j) (Frame.client_to_string frame))
            ()
        in
        { csite; client; cepoch = 1; target = 0; subs = Hashtbl.create 4 })
  in
  let ctl =
    {
      ce = 1;
      primary = 0;
      last_hb = 0;
      probing = false;
      probe_started = 0;
      positions = Hashtbl.create 4;
      expected = [];
      failovers = 0;
    }
  in
  let t =
    {
      cfg = config;
      dim;
      clock;
      fabric = Some fab;
      nodes;
      cnodes;
      ctl;
      base_dir;
      stopped = false;
      fenced = 0;
    }
  in
  t_ref := Some t;
  Array.iter (fun node -> Server.set_epoch node.server 1) nodes;
  Array.iteri
    (fun i node ->
      if i = 0 then
        node.replicator <-
          Some
            (make_replicator t node ~epoch:1
               ~replicas:(List.init (config.serving - 1) (fun k -> k + 1)))
      else begin
        Server.set_role node.server Server.Replica;
        install_replica_hooks t node
      end)
    nodes;
  if config.serving > 1 then controller_check t;
  t

(* ---- scenario controls ---------------------------------------------- *)

let check_site t site =
  if site < 0 || site >= t.cfg.serving then invalid_arg "Cluster: serving site out of range"

let kill t site =
  check_site t site;
  let node = t.nodes.(site) in
  node.alive <- false;
  match node.replicator with
  | Some r ->
      Replicator.stop r;
      node.replicator <- None
  | None -> ()

let wedge t site =
  check_site t site;
  t.nodes.(site).wedged <- true

let unwedge t site =
  check_site t site;
  let node = t.nodes.(site) in
  if node.wedged then begin
    node.wedged <- false;
    let rec drain () =
      match Queue.take_opt node.wedge_buf with
      | None -> ()
      | Some (src, epoch, body) ->
          (* the view that fences this node may be sitting in this very
             buffer: re-check liveness and epoch per frame *)
          if node.alive then
            if epoch < node.nepoch then t.fenced <- t.fenced + 1
            else process_node t node ~src body;
          drain ()
    in
    drain ()
  end

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Array.iter
      (fun node -> match node.replicator with Some r -> Replicator.stop r | None -> ())
      t.nodes
  end

(* ---- access --------------------------------------------------------- *)

let clock t = t.clock

let run ?max_steps t = Vclock.run_until_idle ?max_steps t.clock

let server t site =
  check_site t site;
  t.nodes.(site).server

let client t j =
  if j < 0 || j >= Array.length t.cnodes then invalid_arg "Cluster.client: out of range";
  t.cnodes.(j).client

let subscribe t j tenant =
  if j < 0 || j >= Array.length t.cnodes then invalid_arg "Cluster.subscribe: out of range";
  let c = t.cnodes.(j) in
  Hashtbl.replace c.subs tenant ();
  Client.enqueue c.client (Frame.Subscribe { tenant; after = Client.watermark c.client tenant })

let primary t = t.ctl.primary

let epoch t = t.ctl.ce

let failovers t = t.ctl.failovers

let fenced t = t.fenced

let alive t site =
  check_site t site;
  t.nodes.(site).alive

let fail_stopped t site =
  check_site t site;
  t.nodes.(site).fail_stopped

let replicator t site =
  check_site t site;
  t.nodes.(site).replicator

let clients_idle t = Array.for_all (fun c -> Client.idle c.client) t.cnodes

let quiescent t =
  clients_idle t
  && (not t.ctl.probing)
  && Array.for_all
       (fun node ->
         (not node.alive)
         || Server.healthy node.server
            && match node.replicator with Some r -> Replicator.fully_acked r | None -> true)
       t.nodes

let net_metrics t = Reliable.metrics (fabric t)
