type point = float array

type rect = { lo : float array; hi : float array }

type elem = { value : point; weight : int }

type query = { id : int; rect : rect; threshold : int }

let dim_of_rect r = Array.length r.lo

let rect_make bounds =
  let d = Array.length bounds in
  if d = 0 then invalid_arg "Types.rect_make: zero-dimensional rectangle";
  let lo = Array.make d 0. and hi = Array.make d 0. in
  Array.iteri
    (fun k (l, h) ->
      if not (l < h) then invalid_arg "Types.rect_make: requires lo < hi in every dimension";
      lo.(k) <- l;
      hi.(k) <- h)
    bounds;
  { lo; hi }

let rect_closed bounds =
  rect_make (Array.map (fun (l, h) -> (l, Float.succ h)) bounds)

let interval lo hi = rect_make [| (lo, hi) |]

let interval_closed lo hi = rect_closed [| (lo, hi) |]

let rect_contains r p =
  let d = dim_of_rect r in
  if Array.length p <> d then invalid_arg "Types.rect_contains: dimensionality mismatch";
  let rec go k = k = d || (r.lo.(k) <= p.(k) && p.(k) < r.hi.(k) && go (k + 1)) in
  go 0

let validate_query ~dim q =
  if dim_of_rect q.rect <> dim || Array.length q.rect.hi <> dim then
    invalid_arg "query: dimensionality mismatch";
  Array.iteri
    (fun k l -> if not (l < q.rect.hi.(k)) then invalid_arg "query: empty rectangle side")
    q.rect.lo;
  if q.threshold < 1 then invalid_arg "query: threshold < 1"

(* Hot-path validation: indexed loop, not [Array.iter] — the polymorphic
   iterator's closure receives each coordinate boxed, one minor-heap
   block per coordinate per element; the monomorphic indexed read stays
   unboxed (the comparison consumes the float directly). *)
let validate_elem ~dim e =
  if Array.length e.value <> dim then invalid_arg "element: dimensionality mismatch";
  let v = e.value in
  for k = 0 to dim - 1 do
    let x = Array.unsafe_get v k in
    if x <> x then invalid_arg "element: NaN coordinate"
  done;
  if e.weight < 1 then invalid_arg "element: weight < 1"

let pp_rect ppf r =
  let d = dim_of_rect r in
  Format.fprintf ppf "@[<h>";
  for k = 0 to d - 1 do
    if k > 0 then Format.fprintf ppf " x ";
    Format.fprintf ppf "[%g, %g)" r.lo.(k) r.hi.(k)
  done;
  Format.fprintf ppf "@]"

let pp_elem ppf e =
  Format.fprintf ppf "@[<h>(";
  Array.iteri (fun k x -> Format.fprintf ppf (if k > 0 then ", %g" else "%g") x) e.value;
  Format.fprintf ppf ")*%d@]" e.weight

let pp_query ppf q = Format.fprintf ppf "@[<h>q%d: %a >= %d@]" q.id pp_rect q.rect q.threshold
