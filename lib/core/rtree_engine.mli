(** The stabbing approach of Section 3.1 on a Guttman {!Rtree} — the
    paper's "[2D] R-tree" competitor, generalized to any dimensionality.
    Heuristic: [O(nm)] worst case, and — as Figure 8 of the paper shows —
    degenerate update behaviour on heavily overlapping query rectangles. *)

open Types

type t

val create : dim:int -> unit -> t

val register : t -> query -> unit

val terminate : t -> int -> unit

val process : t -> elem -> int list

val is_alive : t -> int -> bool

val progress : t -> int -> int

val alive_count : t -> int

val alive_snapshot : t -> (query * int) list
(** [(q, W)] per alive query, ascending id (see {!Engine.t.alive_snapshot}). *)

val metrics : t -> Engine.Metrics.snapshot
(** Uniform metric snapshot; [scan_updates_total] counts stabbed-query
    weight bumps. *)

val engine : t -> Engine.t
(** Package as a uniform {!Engine.t} named ["r-tree"]. *)

val make : dim:int -> Engine.t
