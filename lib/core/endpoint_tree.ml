open Types

type stats = {
  mutable elements : int;
  mutable node_updates : int;
  mutable signals : int;
  mutable round_ends : int;
  mutable heap_ops : int;
}

(* Unboxed, off-heap storage for everything the per-element path touches.
   Bigarrays are invisible to the GC: the minor collector never scans
   them, writes need no [caml_modify] barrier, and int/float loads come
   back unboxed. Combined with the preallocated cursor and scratch
   buffers below, the batched 1D feed path allocates zero minor-heap
   words per element — gated by tools/alloc_budgets.json in CI. *)
type farr = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type iarr = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let ba_f n : farr = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

let ba_i n : iarr = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

(* Bigarray.Array1.create returns uninitialized memory. *)
let ba_i0 n =
  let a = ba_i n in
  Bigarray.Array1.fill a 0;
  a

let[@inline] bget (a : iarr) i = Bigarray.Array1.unsafe_get a i

let[@inline] bset (a : iarr) i (v : int) = Bigarray.Array1.unsafe_set a i v

let[@inline] fget (a : farr) i = Bigarray.Array1.unsafe_get a i

(* One query's distributed-tracking state. Its canonical node set U_q —
   the "participants" of Section 4 — lives in the tree's flat edge arena
   as the contiguous index range [e_off, e_off + e_len): see [t] below.
   [tree_tau] is the weight the query still needed when this tree was
   built; within a tree, W(q) is simply the sum of the canonical nodes'
   counters (all counters start at zero at build time and U_q tiles R_q). *)
type qstate = {
  query : query;
  tree_tau : int;
  mutable e_off : int; (* first edge of this query in the edge arena *)
  mutable e_len : int; (* h_q = |U_q| *)
  mutable tmp_slots : int list; (* build-time accumulator of counter slots *)
  mutable lambda : int;
  mutable signals : int; (* signals received in the current round *)
  mutable direct : bool; (* endgame mode: remaining <= 6h *)
  mutable wknown : int; (* direct mode: coordinator's exact W(q) *)
  mutable alive : bool;
}

(* One endpoint-tree level, stored structure-of-arrays on Bigarray: every
   per-node attribute lives in a contiguous unboxed array indexed by node
   id (preorder, root = 0), with -1 child sentinels instead of
   [node option] records. The hot path — one root-to-leaf descent per
   element per level — then touches a handful of flat off-heap int/float
   arrays whose upper levels stay cache-resident, instead of chasing
   boxed node pointers. [jlo, jhi) is node id's jurisdiction interval;
   the rightmost spine has jhi = infinity. Last-dimension nodes own
   [cbase + id] in the tree-wide counter/heap slot space (see [t]);
   other levels carry the secondary trees on the next dimension. *)
type level = {
  k : int; (* dimension of this level *)
  last : bool; (* k = dims - 1: nodes carry counters + heaps *)
  n : int; (* node count; 0 = empty level *)
  depth : int; (* longest root-to-leaf path, in nodes *)
  cbase : int; (* first counter/heap slot of this level (last levels only) *)
  jlo : farr;
  jhi : farr;
  left : iarr; (* -1 for leaves *)
  right : iarr;
  sub : level option array; (* non-last levels only, else [||] *)
}

(* The tree. All last-dimension nodes of all (secondary) levels share one
   flat slot space [0, nslots): [counters] holds the element counters and
   [hbase]/[hlen]/[hcap] describe each slot's sigma min-heap H(u) — the
   per-node heap of slack deadlines (Section 4, "putting together all
   queries with heaps") — stored as index regions of the shared [hstore].
   Heap capacities are exact by construction (one entry per canonical
   (query, node) edge, and edges are only ever removed after build), so a
   heap push can never need to grow anything.

   Edges themselves are a structure-of-arrays arena indexed by edge id:
   [e_owner] (index into [qarr]), [e_slot] (counter/heap slot),
   [e_cbar] (counter value acknowledged to the coordinator), [e_sigma]
   (counter value at which the next signal fires) and [e_pos] (index in
   the slot's heap region, -1 when absent). A query's edges are
   contiguous, [qstate.e_off .. e_off + e_len). *)
type t = {
  dims : int;
  eager : bool; (* ablation: skip DT rounds, signal every counter change *)
  top : level;
  states : (int, qstate) Hashtbl.t;
  mutable alive : int;
  built : int;
  on_mature : int -> unit;
  st : stats;
  counters : iarr; (* per-slot element counters c(u) *)
  hbase : iarr; (* per-slot heap region start in [hstore] *)
  hlen : iarr; (* per-slot heap size *)
  hcap : iarr; (* per-slot heap capacity (exact) *)
  hstore : iarr; (* heap entries: edge ids, ordered by e_sigma per region *)
  e_owner : iarr;
  e_slot : iarr;
  e_cbar : iarr;
  e_sigma : iarr;
  e_pos : iarr;
  qarr : qstate array; (* build-order query states; e_owner indexes this *)
  mutable skeys : float array; (* batch scratch: extracted keys *)
  mutable swts : int array; (* batch scratch: extracted weights *)
  mutable scur : cursor option; (* reusable cursor, Some after build *)
}

and cursor = {
  ctree : t;
  cpath : int array; (* node ids of the cached top-level path, root first *)
  cmark : int array; (* cumulative weight [cw] when cpath.(i) was pushed *)
  mutable clen : int;
  mutable cw : int; (* cumulative weight of all elements fed so far *)
  clast : float ref;
      (* last key fed; enforces the sortedness contract. A [float ref]
         (single-field float record) stores the float flat — a [mutable
         float] field in this mixed record would box on every write. *)
}

(* ---- intrusive sigma heap, flat edition ------------------------------ *)
(* Each heap lives in hstore[base .. base + hcap); entries are edge ids
   ordered by e_sigma, each knowing its own region-relative index via
   e_pos. The comparison loops are closure-free: a generic heap's
   closure-based comparator measurably dominates the 2D running time. *)

let heap_swap t base i j =
  let hs = t.hstore in
  let a = bget hs (base + i) and b = bget hs (base + j) in
  bset hs (base + i) b;
  bset hs (base + j) a;
  bset t.e_pos a j;
  bset t.e_pos b i

let rec heap_up t base i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if bget t.e_sigma (bget t.hstore (base + i)) < bget t.e_sigma (bget t.hstore (base + parent))
    then begin
      heap_swap t base i parent;
      heap_up t base parent
    end
  end

let rec heap_down t base len i =
  let l = (2 * i) + 1 in
  if l < len then begin
    let r = l + 1 in
    let smallest =
      if r < len && bget t.e_sigma (bget t.hstore (base + r)) < bget t.e_sigma (bget t.hstore (base + l))
      then r
      else l
    in
    if bget t.e_sigma (bget t.hstore (base + smallest)) < bget t.e_sigma (bget t.hstore (base + i))
    then begin
      heap_swap t base i smallest;
      heap_down t base len smallest
    end
  end

let heap_push t slot ei =
  let base = bget t.hbase slot in
  let len = bget t.hlen slot in
  assert (len < bget t.hcap slot);
  bset t.hstore (base + len) ei;
  bset t.e_pos ei len;
  bset t.hlen slot (len + 1);
  heap_up t base len

let heap_remove t slot ei =
  let base = bget t.hbase slot in
  let len = bget t.hlen slot - 1 in
  let i = bget t.e_pos ei in
  assert (i >= 0 && i <= len && bget t.hstore (base + i) = ei);
  bset t.hlen slot len;
  bset t.e_pos ei (-1);
  if i <> len then begin
    let last = bget t.hstore (base + len) in
    bset t.hstore (base + i) last;
    bset t.e_pos last i;
    heap_down t base len i;
    heap_up t base (bget t.e_pos last)
  end

(* Restore order after [e_sigma.{ei}] changed in place. *)
let heap_fix t slot ei =
  let base = bget t.hbase slot and len = bget t.hlen slot in
  heap_down t base len (bget t.e_pos ei);
  heap_up t base (bget t.e_pos ei)

(* ---- construction --------------------------------------------------- *)

let empty_level k last =
  {
    k;
    last;
    n = 0;
    depth = 0;
    cbase = 0;
    jlo = ba_f 0;
    jhi = ba_f 0;
    left = ba_i 0;
    right = ba_i 0;
    sub = [||];
  }

(* [slots] threads the tree-wide counter/heap slot allocator through the
   recursive construction: each last-dimension level claims [n]
   consecutive slots as its [cbase .. cbase + n). *)
let rec build_level ~dims ~slots k (qs : qstate list) : level =
  let last = k = dims - 1 in
  (* Grid endpoints on dimension k. A +infinity upper bound creates no
     endpoint: the rightmost jurisdiction already extends to +infinity. *)
  let endpoints =
    List.concat_map
      (fun q ->
        let lo = q.query.rect.lo.(k) and hi = q.query.rect.hi.(k) in
        if hi = infinity then [ lo ] else [ lo; hi ])
      qs
  in
  let keys = Array.of_list (List.sort_uniq compare endpoints) in
  let kn = Array.length keys in
  if kn = 0 then empty_level k last
  else begin
    (* Balanced binary tree over the kn leaves: exactly 2*kn - 1 nodes,
       allocated preorder so a left child is its parent's immediate
       neighbour in every array. *)
    let n = (2 * kn) - 1 in
    let jlo = ba_f n and jhi = ba_f n in
    let left = ba_i n and right = ba_i n in
    Bigarray.Array1.fill left (-1);
    Bigarray.Array1.fill right (-1);
    let next = ref 0 in
    let maxdepth = ref 0 in
    let rec build lo hi d =
      let id = !next in
      incr next;
      if d > !maxdepth then maxdepth := d;
      if lo = hi then begin
        jlo.{id} <- keys.(lo);
        jhi.{id} <- (if lo + 1 < kn then keys.(lo + 1) else infinity)
      end
      else begin
        let mid = (lo + hi) / 2 in
        let l = build lo mid (d + 1) in
        let r = build (mid + 1) hi (d + 1) in
        left.{id} <- l;
        right.{id} <- r;
        jlo.{id} <- jlo.{l};
        jhi.{id} <- jhi.{r}
      end;
      id
    in
    ignore (build 0 (kn - 1) 1 : int);
    let cbase =
      if last then begin
        let c = !slots in
        slots := c + n;
        c
      end
      else 0
    in
    let lvl =
      {
        k;
        last;
        n;
        depth = !maxdepth;
        cbase;
        jlo;
        jhi;
        left;
        right;
        sub = (if last then [||] else Array.make n None);
      }
    in
    (* Canonical decomposition of each [qlo, qhi) over the level: emit the
       maximal nodes whose jurisdiction is contained in the range. Since
       qlo and qhi are grid endpoints of this level, a leaf can never
       partially overlap the range. *)
    let pending = if last then [||] else Array.make n [] in
    let rec add_canonical u qlo qhi q =
      if qlo <= jlo.{u} && jhi.{u} <= qhi then begin
        if last then q.tmp_slots <- (cbase + u) :: q.tmp_slots
        else pending.(u) <- q :: pending.(u)
      end
      else if jhi.{u} <= qlo || qhi <= jlo.{u} then ()
      else begin
        assert (left.{u} >= 0);
        add_canonical left.{u} qlo qhi q;
        add_canonical right.{u} qlo qhi q
      end
    in
    List.iter
      (fun q -> add_canonical 0 q.query.rect.lo.(k) q.query.rect.hi.(k) q)
      qs;
    (* Recursively hang the secondary trees. *)
    if not last then
      for u = 0 to n - 1 do
        if pending.(u) <> [] then
          lvl.sub.(u) <- Some (build_level ~dims ~slots (k + 1) pending.(u))
      done;
    lvl
  end

(* ---- distributed-tracking per query ---------------------------------- *)

let set_deadline t ei =
  t.st.heap_ops <- t.st.heap_ops + 1;
  let slot = bget t.e_slot ei in
  if bget t.e_pos ei >= 0 then heap_fix t slot ei else heap_push t slot ei

(* Start a DT round (or the direct endgame) for [q], given how much weight
   it still needs. Resynchronizes every edge with its node's exact counter
   — the "collection" step of the protocol. *)
let start_phase t (q : qstate) remaining =
  assert (remaining >= 1);
  let h = q.e_len in
  let lo = q.e_off and hi = q.e_off + q.e_len - 1 in
  if t.eager || remaining <= 6 * h then begin
    q.direct <- true;
    q.wknown <- q.tree_tau - remaining;
    for ei = lo to hi do
      let c = bget t.counters (bget t.e_slot ei) in
      bset t.e_cbar ei c;
      bset t.e_sigma ei (c + 1);
      set_deadline t ei
    done
  end
  else begin
    q.direct <- false;
    q.lambda <- remaining / (2 * h);
    q.signals <- 0;
    for ei = lo to hi do
      let c = bget t.counters (bget t.e_slot ei) in
      bset t.e_cbar ei c;
      bset t.e_sigma ei (c + q.lambda);
      set_deadline t ei
    done
  end

let tree_weight t (q : qstate) =
  let acc = ref 0 in
  for ei = q.e_off to q.e_off + q.e_len - 1 do
    acc := !acc + bget t.counters (bget t.e_slot ei)
  done;
  !acc

let mature t (q : qstate) =
  q.alive <- false;
  for ei = q.e_off to q.e_off + q.e_len - 1 do
    if bget t.e_pos ei >= 0 then begin
      heap_remove t (bget t.e_slot ei) ei;
      t.st.heap_ops <- t.st.heap_ops + 1
    end
  done;
  t.alive <- t.alive - 1;
  Hashtbl.remove t.states q.query.id;
  t.on_mature q.query.id

let end_round t (q : qstate) =
  t.st.round_ends <- t.st.round_ends + 1;
  let w = tree_weight t q in
  let remaining = q.tree_tau - w in
  if remaining <= 0 then mature t q else start_phase t q remaining

(* The edge has just been popped from its node's heap because
   c(u) >= sigma. Deliver the pending signal(s). *)
let fire t ei =
  let q = Array.unsafe_get t.qarr (bget t.e_owner ei) in
  let c = bget t.counters (bget t.e_slot ei) in
  if q.direct then begin
    t.st.signals <- t.st.signals + 1;
    q.wknown <- q.wknown + (c - bget t.e_cbar ei);
    bset t.e_cbar ei c;
    if q.wknown >= q.tree_tau then mature t q
    else begin
      bset t.e_sigma ei (c + 1);
      set_deadline t ei
    end
  end
  else begin
    let h = q.e_len in
    let k = (c - bget t.e_cbar ei) / q.lambda in
    (* The coordinator halts the round at the h-th signal, so at most
       h - q.signals of the k signals are actually delivered; any surplus
       weight is picked up by the round-end collection. *)
    let delivered = min k (h - q.signals) in
    t.st.signals <- t.st.signals + delivered;
    q.signals <- q.signals + delivered;
    if q.signals >= h then end_round t q
    else begin
      bset t.e_cbar ei (bget t.e_cbar ei + (k * q.lambda));
      bset t.e_sigma ei (bget t.e_cbar ei + q.lambda);
      set_deadline t ei
    end
  end

(* Hot path: runs on every counter increment of every visited node, so it
   must not allocate when no deadline fires. A while loop, not an inner
   recursive function — the closure an inner [let rec loop] captures
   would be one minor-heap block per node update. *)
let drain t slot =
  let c = bget t.counters slot in
  let base = bget t.hbase slot in
  let continue = ref true in
  while !continue do
    if bget t.hlen slot > 0 then begin
      let ei = bget t.hstore base in
      if bget t.e_sigma ei <= c then begin
        heap_remove t slot ei;
        t.st.heap_ops <- t.st.heap_ops + 1;
        fire t ei
      end
      else continue := false
    end
    else continue := false
  done

(* One root-to-leaf descent per level, flat-array edition: at every node
   of the path, a last-dimension level bumps the counter and drains the
   node's deadline heap; other levels recurse into the node's secondary
   tree. Allocation-free. *)
let rec process_level t (value : point) w lvl =
  if lvl.n > 0 then begin
    let x = value.(lvl.k) in
    if x >= fget lvl.jlo 0 then descend t value w lvl x 0
  end

and descend t value w lvl x u =
  (if lvl.last then begin
     let slot = lvl.cbase + u in
     bset t.counters slot (bget t.counters slot + w);
     t.st.node_updates <- t.st.node_updates + 1;
     drain t slot
   end
   else match lvl.sub.(u) with Some sub -> process_level t value w sub | None -> ());
  let r = bget lvl.right u in
  if r >= 0 then
    if x >= fget lvl.jlo r then descend t value w lvl x r
    else descend t value w lvl x (bget lvl.left u)

(* ---- cursor ---------------------------------------------------------- *)

(* A cursor caches the current root-to-leaf path of the top level between
   consecutive elements of a key-sorted batch, and — on a 1D (last) level
   — defers counter increments with cumulative-weight marks: a node that
   stays on the path across many consecutive elements receives ONE
   aggregated bump (and one heap drain) when it finally leaves the path
   (or at {!flush}), instead of one per element.

   Protocol correctness: [fire] delivers exact [c - cbar] deltas in
   multiples of lambda and re-arms [sigma > c], so an aggregated jump of
   k*lambda produces exactly the k signals the per-element drains would
   have, and the known weight never exceeds the true weight (never
   early). After [flush] every counter is fully applied and drained, so
   per-node undelivered weight is < lambda and the DT invariant
   W < (wknown + tau)/2 holds: any query whose true weight reached tau
   has matured. Maturities therefore coarsen to batch granularity but the
   matured id multiset equals the sequential one at every batch boundary.
   Work counters (node updates, heap ops) can only decrease. *)

let cursor t =
  {
    ctree = t;
    cpath = Array.make (t.top.depth + 1) (-1);
    cmark = Array.make (t.top.depth + 1) 0;
    clen = 0;
    cw = 0;
    clast = ref neg_infinity;
  }

(* The tree's own preallocated cursor, created once at build time and
   reused by every {!process_batch} / {!feed_sorted_kw} call so the batch
   path allocates nothing. Between batches the path is empty (flush
   resets clen), so reuse is invisible. *)
let scratch_cursor t = match t.scur with Some c -> c | None -> assert false

(* Apply the pending aggregated weight of path slot [i] (1D levels only). *)
let flush_slot c i =
  let t = c.ctree in
  let pend = c.cw - Array.unsafe_get c.cmark i in
  if pend > 0 then begin
    let slot = t.top.cbase + Array.unsafe_get c.cpath i in
    bset t.counters slot (bget t.counters slot + pend);
    t.st.node_updates <- t.st.node_updates + 1;
    drain t slot
  end

let flush c =
  if c.ctree.top.last then
    for i = c.clen - 1 downto 0 do
      flush_slot c i
    done;
  c.clen <- 0

let process_sorted c e =
  let t = c.ctree in
  if Array.length e.value <> t.dims then
    invalid_arg "Endpoint_tree.process_sorted: bad dimensionality";
  if e.weight < 1 then invalid_arg "Endpoint_tree.process_sorted: weight < 1";
  t.st.elements <- t.st.elements + 1;
  let lvl = t.top in
  if lvl.n > 0 then begin
    let x = e.value.(lvl.k) in
    if not (x >= !(c.clast)) then
      invalid_arg "Endpoint_tree.process_sorted: elements not sorted on the first dimension";
    c.clast := x;
    let path = c.cpath in
    let last = lvl.last in
    (* Pop the path suffix whose jurisdictions end at or before x,
       flushing each popped node's aggregated pending weight. Jurisdiction
       intervals nest along the path, so the exhausted nodes form a
       contiguous suffix. The root's jurisdiction extends to +infinity, so
       once seeded the path never empties. *)
    let len = ref c.clen in
    while !len > 0 && x >= lvl.jhi.{path.(!len - 1)} do
      decr len;
      if last then flush_slot c !len
    done;
    if !len = 0 && x >= lvl.jlo.{0} then begin
      path.(0) <- 0;
      c.cmark.(0) <- c.cw;
      len := 1
    end;
    if !len > 0 then begin
      (* Tail walk: descend from the deepest surviving node to the leaf,
         marking each fresh node with the current cumulative weight. *)
      let u = ref path.(!len - 1) in
      while lvl.right.{!u} >= 0 do
        let r = lvl.right.{!u} in
        let nxt = if x >= lvl.jlo.{r} then r else lvl.left.{!u} in
        path.(!len) <- nxt;
        c.cmark.(!len) <- c.cw;
        incr len;
        u := nxt
      done;
      if last then
        (* The element's weight lands on every path node lazily: it is
           folded into [cw] and applied when nodes leave the path. *)
        c.cw <- c.cw + e.weight
      else
        (* Multi-dimensional: sub-trees key on other dimensions, so the
           element must be applied per-path-node immediately; the cursor
           still amortizes the navigation. *)
        for i = 0 to !len - 1 do
          match lvl.sub.(path.(i)) with
          | Some sub -> process_level t e.value e.weight sub
          | None -> ()
        done
    end;
    c.clen <- !len
  end

(* Sort by first coordinate without touching the boxed element array
   during the sort itself: extract the keys into an unboxed float array,
   sort an int permutation (no write barrier on int stores, branch-only
   comparator — the polymorphic [compare] on floats is an out-of-line C
   call and a heapsort makes ~2 n log n of them), then materialize the
   sorted element array in one pass. *)
let sort_batch (elems : elem array) =
  let n = Array.length elems in
  let keys = Array.init n (fun i -> (Array.unsafe_get elems i).value.(0)) in
  let idx = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      let a = Array.unsafe_get keys i and b = Array.unsafe_get keys j in
      if a < b then -1 else if a > b then 1 else 0)
    idx;
  Array.init n (fun i -> Array.unsafe_get elems (Array.unsafe_get idx i))

(* ---- 1D fast path: never touch a boxed element inside the hot loop ----

   For a 1D tree the only per-element inputs are the key and the weight,
   so the batch is reduced to two parallel unboxed scratch arrays (float
   keys, int weights) owned by the tree, co-sorted by a monomorphic
   quicksort (direct float compares, no closure calls, no write barriers
   — quicksort on the flat arrays is several times cheaper than
   [Array.sort] swapping boxed pointers through [caml_modify]), and fed
   through the preallocated cursor without validation or sortedness
   re-checks (our own sort guarantees both). *)

let swap_kw (keys : float array) (wts : int array) i j =
  let k = Array.unsafe_get keys i in
  Array.unsafe_set keys i (Array.unsafe_get keys j);
  Array.unsafe_set keys j k;
  let w = Array.unsafe_get wts i in
  Array.unsafe_set wts i (Array.unsafe_get wts j);
  Array.unsafe_set wts j w

let rec qsort_kw (keys : float array) (wts : int array) lo hi =
  if hi - lo > 12 then begin
    (* median-of-three pivot, Hoare partition *)
    let mid = (lo + hi) lsr 1 in
    if keys.(mid) < keys.(lo) then swap_kw keys wts mid lo;
    if keys.(hi) < keys.(mid) then begin
      swap_kw keys wts hi mid;
      if keys.(mid) < keys.(lo) then swap_kw keys wts mid lo
    end;
    let p = keys.(mid) in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while Array.unsafe_get keys !i < p do
        incr i
      done;
      while Array.unsafe_get keys !j > p do
        decr j
      done;
      if !i <= !j then begin
        swap_kw keys wts !i !j;
        incr i;
        decr j
      end
    done;
    qsort_kw keys wts lo !j;
    qsort_kw keys wts !i hi
  end
  else
    for i = lo + 1 to hi do
      let k = keys.(i) and w = wts.(i) in
      let j = ref (i - 1) in
      while !j >= lo && Array.unsafe_get keys !j > k do
        Array.unsafe_set keys (!j + 1) (Array.unsafe_get keys !j);
        Array.unsafe_set wts (!j + 1) (Array.unsafe_get wts !j);
        decr j
      done;
      Array.unsafe_set keys (!j + 1) k;
      Array.unsafe_set wts (!j + 1) w
    done

let sort_kw keys wts n = if n > 1 then qsort_kw keys wts 0 (n - 1)

(* Feed entry [i] of the pre-validated, key-sorted parallel (key, weight)
   arrays into a 1D cursor. Takes the arrays plus an index rather than
   the values themselves: a [float] function argument is boxed at every
   call on non-flambda compilers — 2 minor-heap words per element per
   tree, which the allocation gate would reject — while the indexed load
   stays unboxed. Node-id indexing is safe by construction, so the
   jurisdiction walk uses unsafe loads. *)
let feed1 c (keys : float array) (wts : int array) i =
  let x = Array.unsafe_get keys i in
  let t = c.ctree in
  let lvl = t.top in
  let path = c.cpath in
  let len = ref c.clen in
  while !len > 0 && x >= fget lvl.jhi (Array.unsafe_get path (!len - 1)) do
    decr len;
    flush_slot c !len
  done;
  if !len = 0 && x >= fget lvl.jlo 0 then begin
    Array.unsafe_set path 0 0;
    Array.unsafe_set c.cmark 0 c.cw;
    len := 1
  end;
  if !len > 0 then begin
    let u = ref (Array.unsafe_get path (!len - 1)) in
    let r = ref (bget lvl.right !u) in
    while !r >= 0 do
      let nxt = if x >= fget lvl.jlo !r then !r else bget lvl.left !u in
      Array.unsafe_set path !len nxt;
      Array.unsafe_set c.cmark !len c.cw;
      incr len;
      u := nxt;
      r := bget lvl.right nxt
    done;
    c.cw <- c.cw + Array.unsafe_get wts i
  end;
  c.clen <- !len

let feed_sorted_kw t (keys : float array) (wts : int array) n =
  if not t.top.last then invalid_arg "Endpoint_tree.feed_sorted_kw: tree is not one-dimensional";
  t.st.elements <- t.st.elements + n;
  if t.top.n > 0 && n > 0 then begin
    let c = scratch_cursor t in
    for i = 0 to n - 1 do
      feed1 c keys wts i
    done;
    flush c
  end

let ensure_scratch t n =
  if Array.length t.skeys < n then begin
    t.skeys <- Array.make n 0.;
    t.swts <- Array.make n 0
  end

let process_batch t elems =
  let n = Array.length elems in
  for i = 0 to n - 1 do
    validate_elem ~dim:t.dims (Array.unsafe_get elems i)
  done;
  if t.top.last then begin
    (* 1D: reduce to the flat (key, weight) scratch, co-sort, feed. *)
    t.st.elements <- t.st.elements + n;
    if t.top.n > 0 && n > 0 then begin
      ensure_scratch t n;
      let keys = t.skeys and wts = t.swts in
      for i = 0 to n - 1 do
        let e = Array.unsafe_get elems i in
        Array.unsafe_set keys i (Array.unsafe_get e.value 0);
        Array.unsafe_set wts i e.weight
      done;
      sort_kw keys wts n;
      let c = scratch_cursor t in
      for i = 0 to n - 1 do
        feed1 c keys wts i
      done;
      flush c
    end
  end
  else begin
    let sorted = sort_batch elems in
    let c = scratch_cursor t in
    c.clast := neg_infinity;
    for i = 0 to Array.length sorted - 1 do
      process_sorted c (Array.unsafe_get sorted i)
    done;
    flush c
  end

(* ---- public API ------------------------------------------------------ *)

let build ?(eager = false) ~dim ~on_mature batch =
  if dim < 1 then invalid_arg "Endpoint_tree.build: dim < 1";
  let states = Hashtbl.create (max 16 (2 * List.length batch)) in
  let qstates =
    List.map
      (fun (q, remaining) ->
        validate_query ~dim q;
        if remaining < 1 then invalid_arg "Endpoint_tree.build: remaining < 1";
        if remaining > q.threshold then
          invalid_arg "Endpoint_tree.build: remaining exceeds threshold";
        if Hashtbl.mem states q.id then invalid_arg "Endpoint_tree.build: duplicate query id";
        let qs =
          {
            query = q;
            tree_tau = remaining;
            e_off = 0;
            e_len = 0;
            tmp_slots = [];
            lambda = 0;
            signals = 0;
            direct = false;
            wknown = 0;
            alive = true;
          }
        in
        Hashtbl.replace states q.id qs;
        qs)
      batch
  in
  let slots = ref 0 in
  let top = build_level ~dims:dim ~slots 0 qstates in
  let nslots = !slots in
  let qarr = Array.of_list qstates in
  let nedges = List.fold_left (fun acc q -> acc + List.length q.tmp_slots) 0 qstates in
  (* Per-slot exact heap capacities, then prefix-sum the region bases. *)
  let counters = ba_i0 nslots in
  let hcap = ba_i0 nslots in
  List.iter (fun q -> List.iter (fun s -> hcap.{s} <- hcap.{s} + 1) q.tmp_slots) qstates;
  let hbase = ba_i nslots and hlen = ba_i0 nslots in
  let off = ref 0 in
  for s = 0 to nslots - 1 do
    hbase.{s} <- !off;
    off := !off + hcap.{s}
  done;
  let hstore = ba_i nedges in
  let e_owner = ba_i nedges and e_slot = ba_i nedges in
  let e_cbar = ba_i nedges and e_sigma = ba_i nedges and e_pos = ba_i nedges in
  let eoff = ref 0 in
  Array.iteri
    (fun qi q ->
      q.e_off <- !eoff;
      List.iter
        (fun s ->
          let ei = !eoff in
          e_owner.{ei} <- qi;
          e_slot.{ei} <- s;
          e_cbar.{ei} <- 0;
          e_sigma.{ei} <- 0;
          e_pos.{ei} <- -1;
          incr eoff)
        q.tmp_slots;
      q.e_len <- !eoff - q.e_off;
      q.tmp_slots <- [];
      assert (q.e_len >= 1))
    qarr;
  let t =
    {
      dims = dim;
      eager;
      top;
      states;
      alive = Array.length qarr;
      built = Array.length qarr;
      on_mature;
      st = { elements = 0; node_updates = 0; signals = 0; round_ends = 0; heap_ops = 0 };
      counters;
      hbase;
      hlen;
      hcap;
      hstore;
      e_owner;
      e_slot;
      e_cbar;
      e_sigma;
      e_pos;
      qarr;
      skeys = [||];
      swts = [||];
      scur = None;
    }
  in
  Array.iter (fun q -> start_phase t q q.tree_tau) qarr;
  t.scur <- Some (cursor t);
  t

let dim t = t.dims

let process t e =
  if Array.length e.value <> t.dims then invalid_arg "Endpoint_tree.process: bad dimensionality";
  if e.weight < 1 then invalid_arg "Endpoint_tree.process: weight < 1";
  t.st.elements <- t.st.elements + 1;
  process_level t e.value e.weight t.top

let find_alive t id =
  match Hashtbl.find_opt t.states id with
  | Some q when q.alive -> q
  | _ -> raise Not_found

let is_alive t id = match Hashtbl.find_opt t.states id with Some q -> q.alive | None -> false

let remove t id =
  let q = find_alive t id in
  q.alive <- false;
  for ei = q.e_off to q.e_off + q.e_len - 1 do
    if bget t.e_pos ei >= 0 then begin
      heap_remove t (bget t.e_slot ei) ei;
      t.st.heap_ops <- t.st.heap_ops + 1
    end
  done;
  t.alive <- t.alive - 1;
  Hashtbl.remove t.states id

let current_weight t id = tree_weight t (find_alive t id)

let remaining t id =
  let q = find_alive t id in
  q.tree_tau - tree_weight t q

let alive_count t = t.alive

let built_count t = t.built

let alive_queries t =
  Hashtbl.fold
    (fun _ (q : qstate) acc ->
      if q.alive then (q.query, q.tree_tau - tree_weight t q) :: acc else acc)
    t.states []

let fanout t id = (find_alive t id).e_len

let stats t = t.st

type space = { tree_nodes : int; live_entries : int; dead_entries : int }

let space t =
  let nodes = ref 0 in
  let rec walk lvl =
    nodes := !nodes + lvl.n;
    if not lvl.last then Array.iter (function Some sub -> walk sub | None -> ()) lvl.sub
  in
  walk t.top;
  let live = ref 0 in
  for s = 0 to Bigarray.Array1.dim t.hlen - 1 do
    live := !live + bget t.hlen s
  done;
  {
    tree_nodes = !nodes;
    live_entries = !live;
    dead_entries = Bigarray.Array1.dim t.hstore - !live;
  }
