(** The endpoint tree — the paper's core data structure (Sections 4, 6, 7).

    One endpoint tree manages a {e batch} of queries, all registered at the
    instant the tree is built (dynamic registration is layered on top by
    {!Dt_engine} with the logarithmic method, which only ever builds whole
    trees). For dimension 1 it is a balanced binary search tree over the
    queries' interval endpoints; node [u] has a jurisdiction interval [I(u)]
    and a counter [c(u)] equal to the total weight of stream elements whose
    value fell in [I(u)] since the build. For higher dimensions the nodes of
    the tree on dimension [k] carry secondary endpoint trees on dimension
    [k+1], range-tree style (Section 6); only last-dimension nodes carry
    counters.

    Each query [q] is decomposed into its canonical node set [U_q] —
    [O(log^d m)] last-dimension nodes whose jurisdiction regions disjointly
    tile [R_q] — and runs one instance of the weighted distributed-tracking
    protocol (Section 7) with the nodes of [U_q] as participants. The
    protocol's slack deadlines sit in a per-node min-heap (Section 4,
    "putting together all queries with heaps"), so processing an element
    costs one root-to-leaf descent per tree level plus O(log m) per signal
    actually fired.

    Maturity is reported exactly: the callback fires while processing the
    element whose arrival makes [W(q) >= tau_q]. *)

open Types

type t

val build : ?eager:bool -> dim:int -> on_mature:(int -> unit) -> (query * int) list -> t
(** [build ~dim ~on_mature batch] constructs a tree over [batch], a list of
    [(query, remaining)] pairs — [remaining] is how much more weight must
    fall in the query's rectangle {e from now on} for it to mature (equal to
    the original threshold for a brand-new query, smaller for a query
    migrating between trees). Requires [remaining >= 1], unique ids and
    [dim >= 1]; validated. [on_mature] is invoked with the query id during
    the {!process} call that matures it; the query is removed from the tree
    automatically. Cost: O(b log b) for a batch of size b.

    [eager] (default false) is an ablation switch: it disables the DT round
    protocol and has every canonical node signal its coordinator on every
    counter change (the "direct" endgame mode from the start). Maturity
    stays exact, but the slack machinery — the paper's key idea — is
    removed, so per-query work degrades to O(W(q)) instead of
    O(h log tau); the ablation benchmark quantifies the gap. *)

val dim : t -> int

val process : t -> elem -> unit
(** Route one stream element through the tree: update the counters of the
    nodes covering it and run all induced distributed-tracking steps,
    invoking [on_mature] for every query this element matures. The element
    itself is not stored. *)

type cursor
(** A batched-descent cursor: caches the root-to-leaf path of the previous
    element so a run of key-sorted elements shares the common prefix of
    their descents instead of re-descending from the root each time. On a
    1D tree it additionally {e aggregates} counter increments: a node that
    stays on the path across many consecutive elements receives one summed
    bump (and one heap drain) when it leaves the path or at {!flush},
    instead of one per element. Signal deliveries remain exact ([fire]
    hands over [c - cbar] in multiples of lambda and re-arms above [c]),
    and the known weight never exceeds the true weight, so maturities are
    never reported early; after {!flush} the matured set equals the
    sequential one. Between elements the tree's counters lag behind the
    fed weight, so a cursor must be flushed before the tree is observed
    ({!current_weight}, {!remaining}, snapshots) or mutated through any
    other entry point. Work counters can only decrease vs. {!process}. *)

val cursor : t -> cursor
(** Fresh cursor positioned before every key. O(depth) allocation, done
    once per batch (or reused across batches of one tree). *)

val process_sorted : cursor -> elem -> unit
(** [process_sorted c e] routes [e] like {!process} but via the cursor's
    cached path, deferring 1D counter bumps as described above. Requires
    the first coordinate of successive elements fed to [c] to be
    non-decreasing; raises [Invalid_argument] otherwise. Elements are
    validated like {!process}. *)

val flush : cursor -> unit
(** Apply every pending aggregated counter bump on the cursor's cached
    path (deepest node first) and run the induced drains, then forget the
    path. After [flush c] the tree state is exactly as if the whole fed
    prefix had been processed; the cursor may keep feeding (still
    non-decreasing) elements afterwards. Idempotent. *)

val sort_batch : elem array -> elem array
(** Copy of the batch sorted ascending on the first coordinate, using a
    monomorphic branch-only float comparator (the polymorphic [compare]
    is an out-of-line call and a sort makes ~2 n log n of them). Shared by
    {!process_batch} and multi-tree drivers that feed several cursors from
    one sorted copy. *)

val process_batch : t -> elem array -> unit
(** [process_batch t elems] validates every element, sorts the batch
    (into the tree's preallocated scratch buffers on 1D trees, a copy
    otherwise), feeds it through the tree's reusable cursor and
    {!flush}es it. The matured id multiset equals that of calling
    {!process} on the batch in any order (weights are order-independent
    within a batch); only the attribution of maturity to individual
    elements inside the batch coarsens. Work counters never exceed the
    per-element equivalents — shared descents and aggregated bumps can
    only remove work. On a 1D tree the call allocates zero minor-heap
    words once the scratch buffers have reached the batch size (gated by
    tools/alloc_budgets.json). *)

val sort_kw : float array -> int array -> int -> unit
(** [sort_kw keys wts n] co-sorts the first [n] entries of the parallel
    (key, weight) arrays ascending by key, in place, with a monomorphic
    closure-free quicksort. Allocation-free. Exposed for multi-tree
    drivers ({!Dt_engine}) that extract a batch once and feed every live
    1D tree via {!feed_sorted_kw}. *)

val feed_sorted_kw : t -> float array -> int array -> int -> unit
(** [feed_sorted_kw t keys wts n] feeds the first [n] (key, weight)
    pairs — which the caller guarantees are pre-validated and sorted
    ascending by key, e.g. by {!sort_kw} — through the tree's reusable
    cursor and flushes it, exactly like the 1D {!process_batch} but
    without re-extracting or re-sorting. Allocation-free. Raises
    [Invalid_argument] if the tree is not one-dimensional. *)

val remove : t -> int -> unit
(** [remove t id] terminates an alive query: deletes its slack entries from
    all node heaps in O(h log m). The tree keeps its endpoints (Section 5:
    termination never restructures the tree). Raises [Not_found] if [id] is
    not alive in this tree. *)

val is_alive : t -> int -> bool

val current_weight : t -> int -> int
(** [current_weight t id] is W(q) accumulated since this tree was built —
    the exact sum of the canonical nodes' counters (Section 4, global
    rebuilding). O(h). Raises [Not_found] if not alive. *)

val remaining : t -> int -> int
(** [remaining t id] = the query's remaining threshold minus
    {!current_weight}; always [>= 1] for an alive query. *)

val alive_count : t -> int

val built_count : t -> int
(** Number of queries the tree was built with. *)

val alive_queries : t -> (query * int) list
(** Snapshot of alive queries with their {!remaining} values — exactly the
    batch needed to rebuild this tree (or migrate its content to a bigger
    one) with thresholds adjusted as in Sections 4–5. *)

val fanout : t -> int -> int
(** [fanout t id] = [h_q = |U_q|], the number of canonical nodes (DT
    participants) of an alive query. For tests: O(log^d m) is the paper's
    bound. *)

type stats = {
  mutable elements : int; (** elements processed *)
  mutable node_updates : int; (** counter increments performed *)
  mutable signals : int; (** DT signals delivered (heap pops) *)
  mutable round_ends : int; (** DT round terminations *)
  mutable heap_ops : int; (** heap insert/delete/update operations *)
}

val stats : t -> stats
(** Live telemetry — drives the ablation bench and the message-bound test. *)

type space = {
  tree_nodes : int; (** nodes across all levels (primary + secondary) *)
  live_entries : int; (** slack-heap entries of alive queries = sum of h_q *)
  dead_entries : int; (** heap-store slack left by departed queries *)
}

val space : t -> space
(** Walk the structure and count its footprint; O(size). Backs the tests
    of the paper's space claims: [tree_nodes = O(b log^(d-1) b)] and
    [live_entries = O(b log^d b)] for a tree built on [b] queries. *)
