(** High-level range-thresholding monitor — the API a downstream
    application uses.

    This is a convenience layer over {!Dt_engine} (the paper's algorithm):
    subscriptions carry labels and callbacks, ids are allocated internally,
    and closed bounds are accepted directly. One {!t} monitors one stream;
    feed it every element and it tells you which subscriptions matured —
    exactly once each, during the element that crosses the threshold.

    {[
      let m = Rts.create ~dim:1 () in
      let alert =
        Rts.subscribe m ~label:"AAPL 100-105 heavy selling"
          ~on_mature:(fun s -> print_endline (Rts.describe s))
          (Rts.interval ~lo:100. ~hi:105.)
          ~threshold:100_000
      in
      (* ... for each trade: *)
      ignore (Rts.feed m ~weight:shares [| price |]);
      ignore alert
    ]} *)

open Types

type t
(** A monitor over one [dim]-dimensional stream. *)

type subscription
(** A registered range-thresholding trigger. *)

val create : dim:int -> unit -> t

val dim : t -> int

val interval : lo:float -> hi:float -> rect
(** Closed 1D range [lo, hi] (both bounds inclusive, via the infinitesimal
    trick). *)

val box : (float * float) array -> rect
(** Closed d-dimensional box from per-dimension inclusive (lo, hi) pairs. *)

val subscribe :
  t ->
  ?label:string ->
  ?on_mature:(subscription -> unit) ->
  rect ->
  threshold:int ->
  subscription
(** [subscribe t rect ~threshold] registers a trigger: fire once the total
    weight of subsequent elements falling in [rect] reaches [threshold].
    [on_mature] (if any) runs from inside the {!feed} call that matures the
    subscription, after it has been removed. *)

val cancel : t -> subscription -> unit
(** Terminate a live subscription. Raises [Invalid_argument] if it is
    already matured or cancelled. *)

val feed : t -> ?weight:int -> float array -> subscription list
(** [feed t ~weight value] processes one stream element (default weight 1)
    and returns the subscriptions it matured (also running their
    callbacks). *)

val feed_elem : t -> elem -> subscription list
(** Like {!feed}, for a prebuilt element. *)

val feed_batch : t -> elem array -> subscription list
(** Feed a batch of elements arriving at one instant (the high-throughput
    path — see {!Dt_engine.process_batch}): returns every subscription the
    batch matured, running their callbacks. The matured set and all
    surviving progress equal feeding the elements one at a time; maturity
    is attributed to the batch, not to an individual element inside it. *)

val status : subscription -> [ `Live | `Matured | `Cancelled ]

val label : subscription -> string option

val id : subscription -> int
(** Internal id — unique per monitor, stable for the subscription's life. *)

val rect : subscription -> rect

val threshold : subscription -> int

val progress : t -> subscription -> int
(** Exact weight accumulated so far by a live subscription; its [threshold]
    if matured; raises [Invalid_argument] if cancelled. *)

val live_count : t -> int

val matured_count : t -> int

val snapshot : t -> string
(** Serialize the monitor's live state — every live subscription with its
    exact accumulated weight — to a printable, line-oriented format (hex
    floats, so bounds round-trip bit-exactly). Callbacks are not
    serialized. *)

val restore : ?on_mature:(subscription -> unit) -> string -> t
(** Rebuild a monitor from {!snapshot} output: same subscriptions, labels,
    ids and progress; future maturity behaviour is identical to the
    snapshotted monitor's. [on_mature] (if given) is attached to every
    restored subscription. Raises [Invalid_argument] on malformed input. *)

val subscriptions : t -> subscription list
(** All live subscriptions, in unspecified order. *)

val describe : subscription -> string
(** One human-readable line: label (or id), range, threshold, status. *)
