open Types
module Interval_tree = Rts_structures.Interval_tree
module Metrics = Rts_obs.Metrics

type state = { q : query; mutable got : int }

type t = {
  tree : state Interval_tree.t;
  index : (int, state) Hashtbl.t;
  counters : Engine.Counters.t;
}

let create () =
  { tree = Interval_tree.create (); index = Hashtbl.create 64; counters = Engine.Counters.create () }

let register t q =
  validate_query ~dim:1 q;
  if Hashtbl.mem t.index q.id then invalid_arg "Stab1d_engine.register: id already alive";
  let s = { q; got = 0 } in
  Interval_tree.insert t.tree ~id:q.id ~lo:q.rect.lo.(0) ~hi:q.rect.hi.(0) s;
  Hashtbl.replace t.index q.id s;
  Metrics.incr t.counters.registered

let remove t (s : state) =
  Interval_tree.delete t.tree ~id:s.q.id ~lo:s.q.rect.lo.(0) ~hi:s.q.rect.hi.(0);
  Hashtbl.remove t.index s.q.id

let terminate t id =
  match Hashtbl.find_opt t.index id with
  | Some s ->
      remove t s;
      Metrics.incr t.counters.terminated
  | None -> raise Not_found

let process t e =
  validate_elem ~dim:1 e;
  Metrics.incr t.counters.elements;
  let matured = ref [] in
  Interval_tree.iter_stab t.tree e.value.(0) (fun _id s ->
      Metrics.incr t.counters.scan_updates;
      s.got <- s.got + e.weight;
      if s.got >= s.q.threshold then matured := s :: !matured);
  List.iter
    (fun s ->
      remove t s;
      Metrics.incr t.counters.matured)
    !matured;
  Engine.sort_matured (List.map (fun s -> s.q.id) !matured)

(* Batched feed: same per-element stab/update/remove sequence as [process]
   (element order preserved — removal timing affects later stabs), with
   the matured ids accumulated across the batch and sorted once. *)
let feed_batch t elems =
  let matured = ref [] in
  Array.iter
    (fun e ->
      validate_elem ~dim:1 e;
      Metrics.incr t.counters.elements;
      let hit = ref [] in
      Interval_tree.iter_stab t.tree e.value.(0) (fun _id s ->
          Metrics.incr t.counters.scan_updates;
          s.got <- s.got + e.weight;
          if s.got >= s.q.threshold then hit := s :: !hit);
      List.iter
        (fun s ->
          remove t s;
          Metrics.incr t.counters.matured;
          matured := s.q.id :: !matured)
        !hit)
    elems;
  Engine.sort_matured !matured

let is_alive t id = Hashtbl.mem t.index id

let progress t id =
  match Hashtbl.find_opt t.index id with Some s -> s.got | None -> raise Not_found

let alive_count t = Hashtbl.length t.index

let alive_snapshot t =
  Hashtbl.fold (fun _ s acc -> (s.q, s.got) :: acc) t.index [] |> Engine.sort_snapshot

let metrics t = Engine.Counters.snapshot t.counters ~alive:(alive_count t)

let engine t =
  {
    Engine.name = "interval-tree";
    dim = 1;
    register = register t;
    register_batch = Engine.batch_of_register (register t);
    terminate = terminate t;
    process = process t;
    feed_batch = feed_batch t;
    alive = (fun () -> alive_count t);
    alive_snapshot = (fun () -> alive_snapshot t);
    metrics = (fun () -> metrics t);
  }

let make () = engine (create ())
