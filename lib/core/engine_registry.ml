type dims = Any | Only of int

type entry = {
  name : string;
  doc : string;
  dims : dims;
  make : dim:int -> Engine.t;
}

let table : entry list ref = ref []

let find name = List.find_opt (fun e -> e.name = name) !table

let mem name = find name <> None

let register ~name ~doc ?(dims = Any) make =
  if mem name then
    invalid_arg (Printf.sprintf "Engine_registry.register: duplicate engine %S" name);
  table := !table @ [ { name; doc; dims; make } ]

let names () = List.map (fun e -> e.name) !table

let entries () = !table

let make ~name ~dim =
  match find name with
  | None ->
      failwith
        (Printf.sprintf "unknown engine %S (known: %s)" name
           (String.concat ", " (names ())))
  | Some e -> (
      match e.dims with
      | Only d when d <> dim ->
          failwith (Printf.sprintf "%s engine is %dD only" name d)
      | _ -> e.make ~dim)

(* The in-tree exact engines. Registered at module initialization: any
   executable that resolves an engine through this module links (and
   therefore initializes) rts_core, so the core roster is always
   present. Out-of-tree tiers (rts_approx) add themselves via an
   explicit [install] call from the executable's startup. *)
let () =
  register ~name:"dt" ~doc:"the paper's DT algorithm (lazy rebuilds)" (fun ~dim ->
      Dt_engine.make ~dim);
  register ~name:"dt-eager" ~doc:"DT with eager tree rebuilds" (fun ~dim ->
      Dt_engine.make_eager ~dim);
  register ~name:"baseline" ~doc:"exact per-query scan" (fun ~dim ->
      Baseline_engine.make ~dim);
  register ~name:"interval-tree" ~doc:"1D stabbing via interval tree"
    ~dims:(Only 1)
    (fun ~dim:_ -> Stab1d_engine.make ());
  register ~name:"seg-intv" ~doc:"2D stabbing via segment+interval tree"
    ~dims:(Only 2)
    (fun ~dim:_ -> Stab2d_engine.make ());
  register ~name:"r-tree" ~doc:"R-tree stabbing scan" (fun ~dim ->
      Rtree_engine.make ~dim)
