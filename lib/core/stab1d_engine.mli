(** The 1D stabbing approach of Section 3.1: an {!Interval_tree} indexes
    the alive queries; each element stabs the tree and increments every
    stabbed query's accumulated weight. Cost is [O~(n) + O(m tau_max)] —
    better than the baseline when elements stab few queries, but still
    trapped quadratically via [tau_max] (Section 3.1's refined analysis).
    This is the paper's "[1D] Interval tree" competitor. *)

open Types

type t

val create : unit -> t

val register : t -> query -> unit

val terminate : t -> int -> unit

val process : t -> elem -> int list

val is_alive : t -> int -> bool

val progress : t -> int -> int

val alive_count : t -> int

val alive_snapshot : t -> (query * int) list
(** [(q, W)] per alive query, ascending id (see {!Engine.t.alive_snapshot}). *)

val metrics : t -> Engine.Metrics.snapshot
(** Uniform metric snapshot; [scan_updates_total] counts stabbed-query
    weight bumps. *)

val engine : t -> Engine.t
(** Package as a uniform {!Engine.t} named ["interval-tree"]. *)

val make : unit -> Engine.t
