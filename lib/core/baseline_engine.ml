open Types
module Metrics = Rts_obs.Metrics

type state = { q : query; mutable got : int }

type t = { dims : int; alive : (int, state) Hashtbl.t; counters : Engine.Counters.t }

let create ~dim () =
  if dim < 1 then invalid_arg "Baseline_engine.create: dim < 1";
  { dims = dim; alive = Hashtbl.create 64; counters = Engine.Counters.create () }

let register t q =
  validate_query ~dim:t.dims q;
  if Hashtbl.mem t.alive q.id then invalid_arg "Baseline_engine.register: id already alive";
  Hashtbl.replace t.alive q.id { q; got = 0 };
  Metrics.incr t.counters.registered

let terminate t id =
  if not (Hashtbl.mem t.alive id) then raise Not_found;
  Hashtbl.remove t.alive id;
  Metrics.incr t.counters.terminated

let process t e =
  validate_elem ~dim:t.dims e;
  Metrics.incr t.counters.elements;
  let matured = ref [] in
  Hashtbl.iter
    (fun id s ->
      if rect_contains s.q.rect e.value then begin
        Metrics.incr t.counters.scan_updates;
        s.got <- s.got + e.weight;
        if s.got >= s.q.threshold then matured := id :: !matured
      end)
    t.alive;
  List.iter
    (fun id ->
      Hashtbl.remove t.alive id;
      Metrics.incr t.counters.matured)
    !matured;
  Engine.sort_matured !matured

(* Batched scan: flip the loop nest. One pass over the alive table, and per
   query a tight early-exit walk of the element array — the query stops
   scanning the moment it matures, exactly as it would have been removed
   mid-batch by the sequential path. [scan_updates], the matured set and
   every survivor's [got] are identical to feeding the elements one at a
   time; iterating queries outermost touches each [state] record once per
   batch instead of once per element. *)
let feed_batch t elems =
  Array.iter (fun e -> validate_elem ~dim:t.dims e) elems;
  let n = Array.length elems in
  Metrics.add t.counters.elements n;
  let matured = ref [] in
  Hashtbl.iter
    (fun id s ->
      let i = ref 0 in
      let dead = ref false in
      while (not !dead) && !i < n do
        let e = elems.(!i) in
        if rect_contains s.q.rect e.value then begin
          Metrics.incr t.counters.scan_updates;
          s.got <- s.got + e.weight;
          if s.got >= s.q.threshold then begin
            matured := id :: !matured;
            dead := true
          end
        end;
        incr i
      done)
    t.alive;
  List.iter
    (fun id ->
      Hashtbl.remove t.alive id;
      Metrics.incr t.counters.matured)
    !matured;
  Engine.sort_matured !matured

let is_alive t id = Hashtbl.mem t.alive id

let progress t id =
  match Hashtbl.find_opt t.alive id with Some s -> s.got | None -> raise Not_found

let alive_count t = Hashtbl.length t.alive

let alive_snapshot t =
  Hashtbl.fold (fun _ s acc -> (s.q, s.got) :: acc) t.alive [] |> Engine.sort_snapshot

let metrics t = Engine.Counters.snapshot t.counters ~alive:(alive_count t)

let engine t =
  {
    Engine.name = "baseline";
    dim = t.dims;
    register = register t;
    register_batch = Engine.batch_of_register (register t);
    terminate = terminate t;
    process = process t;
    feed_batch = feed_batch t;
    alive = (fun () -> alive_count t);
    alive_snapshot = (fun () -> alive_snapshot t);
    metrics = (fun () -> metrics t);
  }

let make ~dim = engine (create ~dim ())
