(** The Section 3.1 baseline: for every stream element, probe every alive
    query. Minimum space [O(m_alive)], but [O(m_alive)] time per element —
    total [O(nm)], the quadratic trap the paper escapes. Serves both as the
    paper's "Baseline" competitor and as the test oracle all other engines
    are cross-checked against. *)

open Types

type t

val create : dim:int -> unit -> t

val register : t -> query -> unit

val terminate : t -> int -> unit

val process : t -> elem -> int list

val feed_batch : t -> elem array -> int list
(** Batched scan with the loop nest flipped (queries outermost, early exit
    at maturity): observably identical to [process]ing the elements one by
    one — same matured set, survivor weights and [scan_updates_total] —
    but each query's state is touched once per batch. *)

val is_alive : t -> int -> bool

val progress : t -> int -> int
(** Exact W(q) of an alive query; raises [Not_found] otherwise. *)

val alive_count : t -> int

val alive_snapshot : t -> (query * int) list
(** [(q, W)] per alive query, ascending id — the checkpointable state
    (see {!Engine.t.alive_snapshot}). *)

val metrics : t -> Engine.Metrics.snapshot
(** Uniform metric snapshot (see {!Engine.t.metrics}); [scan_updates_total]
    counts per-query probes that hit — the O(nm) term itself. *)

val engine : t -> Engine.t
(** Package as a uniform {!Engine.t} named ["baseline"]. *)

val make : dim:int -> Engine.t
