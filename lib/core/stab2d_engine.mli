(** The 2D stabbing approach of Section 3.1 on the combined
    segment-tree/interval-tree structure — the paper's "[2D] Seg-Intv tree"
    competitor. Same [O~(n) + O(m tau_max)] character as the 1D stabbing
    engine. *)

open Types

type t

val create : unit -> t

val register : t -> query -> unit

val terminate : t -> int -> unit

val process : t -> elem -> int list

val is_alive : t -> int -> bool

val progress : t -> int -> int

val alive_count : t -> int

val alive_snapshot : t -> (query * int) list
(** [(q, W)] per alive query, ascending id (see {!Engine.t.alive_snapshot}). *)

val metrics : t -> Engine.Metrics.snapshot
(** Uniform metric snapshot; [scan_updates_total] counts stabbed-query
    weight bumps. *)

val engine : t -> Engine.t
(** Package as a uniform {!Engine.t} named ["seg-intv"]. *)

val make : unit -> Engine.t
