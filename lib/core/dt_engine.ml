open Types

let src = Logs.Src.create "rts.dt_engine" ~doc:"RTS distributed-tracking engine"

module Log = (val Logs.src_log src : Logs.LOG)

type slot = { mutable tree : Endpoint_tree.t option }

type t = {
  dims : int;
  eager : bool;
  mutable slots : slot array; (* slots.(i) plays the role of T_{i+1}, capacity 2^i *)
  mutable live : Endpoint_tree.t array;
      (* dense cache of the non-empty slots' trees, refreshed whenever a
         tree is installed or discarded: the per-element path iterates this
         flat array instead of matching [tree option] per slot per element *)
  location : (int, int) Hashtbl.t; (* alive query id -> slot index *)
  consumed : (int, int) Hashtbl.t; (* alive query id -> weight credited before its current tree *)
  mutable matured_acc : int list; (* maturities reported during the current [process] *)
  agg : Endpoint_tree.stats; (* stats inherited from destroyed trees *)
  mutable rebuilds : int;
  (* engine-level tallies for the uniform metrics surface; the protocol
     counters (signals, round ends, heap ops, node updates) live in the
     endpoint trees' flat stats records and are folded in on demand *)
  mutable n_elements : int;
  mutable n_registered : int;
  mutable n_terminated : int;
  mutable n_matured : int;
  (* batch scratch for the multi-tree 1D path: the batch's (key, weight)
     pairs are extracted and sorted ONCE here, then every live tree is
     fed the same flat arrays — no per-tree cursor or sorted-copy
     allocation. Grown on demand, so the steady state allocates nothing. *)
  mutable bkeys : float array;
  mutable bwts : int array;
}

let create ?(eager = false) ~dim () =
  if dim < 1 then invalid_arg "Dt_engine.create: dim < 1";
  {
    dims = dim;
    eager;
    slots = [||];
    live = [||];
    location = Hashtbl.create 64;
    consumed = Hashtbl.create 64;
    matured_acc = [];
    agg = { elements = 0; node_updates = 0; signals = 0; round_ends = 0; heap_ops = 0 };
    rebuilds = 0;
    n_elements = 0;
    n_registered = 0;
    n_terminated = 0;
    n_matured = 0;
    bkeys = [||];
    bwts = [||];
  }

let absorb_stats (agg : Endpoint_tree.stats) (s : Endpoint_tree.stats) =
  agg.elements <- agg.elements + s.elements;
  agg.node_updates <- agg.node_updates + s.node_updates;
  agg.signals <- agg.signals + s.signals;
  agg.round_ends <- agg.round_ends + s.round_ends;
  agg.heap_ops <- agg.heap_ops + s.heap_ops

let slot_alive slot = match slot.tree with Some tr -> Endpoint_tree.alive_count tr | None -> 0

let ensure_slots t j =
  let g = Array.length t.slots in
  if j > g then begin
    let slots = Array.init j (fun i -> if i < g then t.slots.(i) else { tree = None }) in
    t.slots <- slots
  end

let refresh_live t =
  let acc = ref [] in
  for i = Array.length t.slots - 1 downto 0 do
    match t.slots.(i).tree with Some tr -> acc := tr :: !acc | None -> ()
  done;
  t.live <- Array.of_list !acc

let on_mature_of t qid =
  Hashtbl.remove t.location qid;
  Hashtbl.remove t.consumed qid;
  t.n_matured <- t.n_matured + 1;
  t.matured_acc <- qid :: t.matured_acc

(* Build a tree over [batch] (query, remaining) pairs and install it in
   slot [idx], updating per-query bookkeeping. *)
let install_tree t idx batch =
  t.rebuilds <- t.rebuilds + 1;
  Log.debug (fun m -> m "building endpoint tree in slot %d over %d queries" idx (List.length batch));
  let tree = Endpoint_tree.build ~eager:t.eager ~dim:t.dims ~on_mature:(on_mature_of t) batch in
  t.slots.(idx).tree <- Some tree;
  List.iter
    (fun ((q : query), remaining) ->
      Hashtbl.replace t.location q.id idx;
      Hashtbl.replace t.consumed q.id (q.threshold - remaining))
    batch;
  refresh_live t

let discard_slot t slot =
  match slot.tree with
  | Some tr ->
      absorb_stats t.agg (Endpoint_tree.stats tr);
      slot.tree <- None;
      refresh_live t
  | None -> ()

let register t (q : query) =
  validate_query ~dim:t.dims q;
  if Hashtbl.mem t.location q.id then invalid_arg "Dt_engine.register: id already alive";
  (* Smallest j (1-based) with alive(T_1) + ... + alive(T_j) < 2^(j-1);
     always exists once j exceeds the current number of slots by enough. *)
  let g = Array.length t.slots in
  let rec find_j j cum =
    let cum = cum + if j - 1 < g then slot_alive t.slots.(j - 1) else 0 in
    if cum < 1 lsl (j - 1) then j else find_j (j + 1) cum
  in
  let j = find_j 1 0 in
  ensure_slots t j;
  t.n_registered <- t.n_registered + 1;
  (* Migrate everything in T_1..T_j into a fresh T_j, thresholds reduced by
     the weight already seen (Section 5, step 2). *)
  let batch = ref [ (q, q.threshold) ] in
  for i = 0 to j - 1 do
    (match t.slots.(i).tree with
    | Some tr -> batch := List.rev_append (Endpoint_tree.alive_queries tr) !batch
    | None -> ());
    discard_slot t t.slots.(i)
  done;
  install_tree t (j - 1) !batch

(* Batch registration: one collapse absorbing the whole batch — the
   logarithmic method's insertion step generalized from 1 to [len] new
   queries (find the smallest j whose capacity 2^(j-1) can hold the prefix
   trees' alive queries plus the batch, rebuild T_j on their union). *)
let register_batch t queries =
  match queries with
  | [] -> ()
  | _ ->
      List.iter
        (fun (q : query) ->
          validate_query ~dim:t.dims q;
          if Hashtbl.mem t.location q.id then
            invalid_arg "Dt_engine.register_batch: id already alive")
        queries;
      let len = List.length queries in
      let g = Array.length t.slots in
      let rec find_j j cum =
        let cum = cum + if j - 1 < g then slot_alive t.slots.(j - 1) else 0 in
        if cum + len <= 1 lsl (j - 1) then j else find_j (j + 1) cum
      in
      let j = find_j 1 0 in
      ensure_slots t j;
      t.n_registered <- t.n_registered + len;
      let batch = ref (List.map (fun (q : query) -> (q, q.threshold)) queries) in
      for i = 0 to j - 1 do
        (match t.slots.(i).tree with
        | Some tr -> batch := List.rev_append (Endpoint_tree.alive_queries tr) !batch
        | None -> ());
        discard_slot t t.slots.(i)
      done;
      install_tree t (j - 1) !batch

let create_static ?eager ~dim queries =
  let t = create ?eager ~dim () in
  register_batch t queries;
  t

(* Global rebuilding (Section 4): once a tree has lost half the queries it
   was built with, rebuild it on the alive remainder with thresholds
   adjusted; drop it entirely when empty. *)
let maybe_rebuild t idx =
  let slot = t.slots.(idx) in
  match slot.tree with
  | None -> ()
  | Some tr ->
      let alive = Endpoint_tree.alive_count tr and built = Endpoint_tree.built_count tr in
      if alive = 0 then begin
        Log.debug (fun m -> m "slot %d empty, dropping its tree" idx);
        discard_slot t slot
      end
      else if 2 * alive <= built then begin
        Log.debug (fun m ->
            m "global rebuild of slot %d: %d alive of %d built" idx alive built);
        let batch = Endpoint_tree.alive_queries tr in
        discard_slot t slot;
        install_tree t idx batch
      end

(* Per-element hot path: iterate the dense [live] cache with a bare for
   loop (no option match, no closure allocation per element) and skip the
   maturity epilogue — rebuild probe and sort — entirely on the common
   no-maturity case. *)
let process t e =
  t.n_elements <- t.n_elements + 1;
  t.matured_acc <- [];
  let live = t.live in
  for i = 0 to Array.length live - 1 do
    Endpoint_tree.process live.(i) e
  done;
  if t.matured_acc == [] then []
  else begin
    for i = 0 to Array.length t.slots - 1 do
      maybe_rebuild t i
    done;
    let out = Engine.sort_matured t.matured_acc in
    t.matured_acc <- [];
    out
  end

let ensure_scratch t n =
  if Array.length t.bkeys < n then begin
    t.bkeys <- Array.make n 0.;
    t.bwts <- Array.make n 0
  end

(* Batched ingestion: validate the whole batch up front, sort it once by
   first coordinate, and drive each live tree through its preallocated
   shared-prefix cursor — a batch of b elements costs one sort plus b
   short tail-walks per tree instead of b full root-to-leaf descents. For
   1D the sort happens in the engine's flat (key, weight) scratch and
   each tree consumes it via {!Endpoint_tree.feed_sorted_kw}, so the
   whole multi-tree path is allocation-free in the steady state (the
   single-tree path delegates to the equally alloc-free
   {!Endpoint_tree.process_batch}). Maturities accumulate across the
   batch; global-rebuild checks run once at the end (rebuilds never
   change which queries mature or their exact weights, only when
   migration work happens). The matured set, every survivor's weight,
   and the post-call [alive_snapshot] equal the sequential [process]
   results for the same multiset of elements. *)
let process_batch t elems =
  let n = Array.length elems in
  if n = 0 then []
  else begin
    t.n_elements <- t.n_elements + n;
    t.matured_acc <- [];
    let live = t.live in
    (if Array.length live = 1 then Endpoint_tree.process_batch live.(0) elems
     else begin
       for i = 0 to n - 1 do
         validate_elem ~dim:t.dims (Array.unsafe_get elems i)
       done;
       if Array.length live > 1 then
         if t.dims = 1 then begin
           ensure_scratch t n;
           let keys = t.bkeys and wts = t.bwts in
           for i = 0 to n - 1 do
             let e = Array.unsafe_get elems i in
             Array.unsafe_set keys i (Array.unsafe_get e.value 0);
             Array.unsafe_set wts i e.weight
           done;
           Endpoint_tree.sort_kw keys wts n;
           for ti = 0 to Array.length live - 1 do
             Endpoint_tree.feed_sorted_kw (Array.unsafe_get live ti) keys wts n
           done
         end
         else begin
           let sorted = Endpoint_tree.sort_batch elems in
           Array.iter
             (fun tr ->
               let c = Endpoint_tree.cursor tr in
               Array.iter (fun e -> Endpoint_tree.process_sorted c e) sorted;
               Endpoint_tree.flush c)
             live
         end
     end);
    if t.matured_acc == [] then []
    else begin
      for i = 0 to Array.length t.slots - 1 do
        maybe_rebuild t i
      done;
      let out = Engine.sort_matured t.matured_acc in
      t.matured_acc <- [];
      out
    end
  end

let terminate t id =
  match Hashtbl.find_opt t.location id with
  | None -> raise Not_found
  | Some idx ->
      let tr = match t.slots.(idx).tree with Some tr -> tr | None -> assert false in
      Endpoint_tree.remove tr id;
      Hashtbl.remove t.location id;
      Hashtbl.remove t.consumed id;
      t.n_terminated <- t.n_terminated + 1;
      maybe_rebuild t idx

let is_alive t id = Hashtbl.mem t.location id

let progress t id =
  match Hashtbl.find_opt t.location id with
  | None -> raise Not_found
  | Some idx ->
      let tr = match t.slots.(idx).tree with Some tr -> tr | None -> assert false in
      Hashtbl.find t.consumed id + Endpoint_tree.current_weight tr id

let alive_count t = Hashtbl.length t.location

let tree_count t =
  Array.fold_left (fun acc slot -> if slot_alive slot > 0 then acc + 1 else acc) 0 t.slots

let rebuild_count t = t.rebuilds

let stats t =
  let total : Endpoint_tree.stats =
    {
      elements = t.agg.elements;
      node_updates = t.agg.node_updates;
      signals = t.agg.signals;
      round_ends = t.agg.round_ends;
      heap_ops = t.agg.heap_ops;
    }
  in
  Array.iter
    (fun slot ->
      match slot.tree with Some tr -> absorb_stats total (Endpoint_tree.stats tr) | None -> ())
    t.slots;
  total

let alive_snapshot t =
  let acc = ref [] in
  Array.iter
    (fun slot ->
      match slot.tree with
      | Some tr ->
          List.iter
            (fun ((q : query), remaining) -> acc := (q, q.threshold - remaining) :: !acc)
            (Endpoint_tree.alive_queries tr)
      | None -> ())
    t.slots;
  List.sort (fun ((a : query), _) ((b : query), _) -> compare a.id b.id) !acc

let restore ?eager ~dim entries =
  let t = create ?eager ~dim () in
  (match entries with
  | [] -> ()
  | _ ->
      let seen = Hashtbl.create 64 in
      List.iter
        (fun ((q : query), consumed) ->
          validate_query ~dim q;
          if consumed < 0 || consumed >= q.threshold then
            invalid_arg "Dt_engine.restore: consumed out of range";
          if Hashtbl.mem seen q.id then invalid_arg "Dt_engine.restore: duplicate id";
          Hashtbl.replace seen q.id ())
        entries;
      let len = List.length entries in
      let rec slot_for j = if len <= 1 lsl (j - 1) then j else slot_for (j + 1) in
      let j = slot_for 1 in
      ensure_slots t j;
      t.n_registered <- t.n_registered + len;
      install_tree t (j - 1)
        (List.map (fun ((q : query), consumed) -> (q, q.threshold - consumed)) entries));
  t

let space t =
  Array.fold_left
    (fun (acc : Endpoint_tree.space) slot ->
      match slot.tree with
      | Some tr ->
          let s = Endpoint_tree.space tr in
          {
            Endpoint_tree.tree_nodes = acc.tree_nodes + s.tree_nodes;
            live_entries = acc.live_entries + s.live_entries;
            dead_entries = acc.dead_entries + s.dead_entries;
          }
      | None -> acc)
    { Endpoint_tree.tree_nodes = 0; live_entries = 0; dead_entries = 0 }
    t.slots

(* Uniform metrics surface. The hot-path counters stay in the endpoint
   trees' flat mutable records (Endpoint_tree.stats) — a snapshot folds
   them into the shared metric names, so the observability layer costs
   nothing per element beyond the engine's own tallies. *)
let metrics t : Rts_obs.Metrics.snapshot =
  let st = stats t in
  Rts_obs.Metrics.of_assoc
    [
      ("elements_total", Rts_obs.Metrics.Counter t.n_elements);
      ("registered_total", Rts_obs.Metrics.Counter t.n_registered);
      ("terminated_total", Rts_obs.Metrics.Counter t.n_terminated);
      ("matured_total", Rts_obs.Metrics.Counter t.n_matured);
      ("alive", Rts_obs.Metrics.Gauge (float_of_int (alive_count t)));
      ("trees", Rts_obs.Metrics.Gauge (float_of_int (tree_count t)));
      ("rebuilds_total", Rts_obs.Metrics.Counter t.rebuilds);
      ("dt_node_updates_total", Rts_obs.Metrics.Counter st.node_updates);
      ("dt_signals_total", Rts_obs.Metrics.Counter st.signals);
      ("dt_round_ends_total", Rts_obs.Metrics.Counter st.round_ends);
      ("dt_heap_ops_total", Rts_obs.Metrics.Counter st.heap_ops);
    ]

let engine t =
  {
    Engine.name = (if t.eager then "dt-eager" else "dt");
    dim = t.dims;
    register = register t;
    register_batch = register_batch t;
    terminate = terminate t;
    process = process t;
    feed_batch = process_batch t;
    alive = (fun () -> alive_count t);
    alive_snapshot = (fun () -> alive_snapshot t);
    metrics = (fun () -> metrics t);
  }

let make ~dim = engine (create ~dim ())

let make_eager ~dim = engine (create ~eager:true ~dim ())
