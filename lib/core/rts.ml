open Types

type status = [ `Live | `Matured | `Cancelled ]

type subscription = {
  sid : int;
  slabel : string option;
  squery : query;
  mutable sstatus : status;
  mutable callback : (subscription -> unit) option;
}

type t = {
  dims : int;
  engine : Dt_engine.t;
  subs : (int, subscription) Hashtbl.t; (* live subscriptions, by id *)
  mutable next_id : int;
  mutable matured : int;
}

let create ~dim () =
  if dim < 1 then invalid_arg "Rts.create: dim < 1";
  { dims = dim; engine = Dt_engine.create ~dim (); subs = Hashtbl.create 64; next_id = 0; matured = 0 }

let dim t = t.dims

let interval ~lo ~hi = interval_closed lo hi

let box bounds = rect_closed bounds

let subscribe t ?label ?on_mature r ~threshold =
  let q = { id = t.next_id; rect = r; threshold } in
  validate_query ~dim:t.dims q;
  t.next_id <- t.next_id + 1;
  let s = { sid = q.id; slabel = label; squery = q; sstatus = `Live; callback = on_mature } in
  Dt_engine.register t.engine q;
  Hashtbl.replace t.subs q.id s;
  s

let cancel t s =
  if s.sstatus <> `Live then invalid_arg "Rts.cancel: subscription not live";
  Dt_engine.terminate t.engine s.sid;
  s.sstatus <- `Cancelled;
  Hashtbl.remove t.subs s.sid

let settle t matured_ids =
  List.map
    (fun sid ->
      let s = Hashtbl.find t.subs sid in
      s.sstatus <- `Matured;
      t.matured <- t.matured + 1;
      Hashtbl.remove t.subs sid;
      (match s.callback with Some f -> f s | None -> ());
      s)
    matured_ids

let feed_elem t e = settle t (Dt_engine.process t.engine e)

let feed t ?(weight = 1) value = feed_elem t { value; weight }

let feed_batch t elems = settle t (Dt_engine.process_batch t.engine elems)

let status s = s.sstatus

let label s = s.slabel

let id s = s.sid

let rect s = s.squery.rect

let threshold s = s.squery.threshold

let progress t s =
  match s.sstatus with
  | `Live -> Dt_engine.progress t.engine s.sid
  | `Matured -> s.squery.threshold
  | `Cancelled -> invalid_arg "Rts.progress: subscription cancelled"

let live_count t = Dt_engine.alive_count t.engine

let matured_count t = t.matured

(* ---- snapshots ------------------------------------------------------ *)

let snapshot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "rts-snapshot 1 dim %d\n" t.dims);
  List.iter
    (fun ((q : query), consumed) ->
      let s = Hashtbl.find t.subs q.id in
      Buffer.add_string buf (Printf.sprintf "%d %d %d" q.id q.threshold consumed);
      Array.iteri
        (fun k lo -> Buffer.add_string buf (Printf.sprintf " %h %h" lo q.rect.hi.(k)))
        q.rect.lo;
      let label = match s.slabel with Some l -> l | None -> "" in
      Buffer.add_string buf (Printf.sprintf " %S\n" label))
    (Dt_engine.alive_snapshot t.engine);
  Buffer.contents buf

let restore ?on_mature data =
  let lines = String.split_on_char '\n' data in
  let header, body =
    match lines with
    | h :: rest -> (h, rest)
    | [] -> invalid_arg "Rts.restore: empty snapshot"
  in
  let dims =
    try Scanf.sscanf header "rts-snapshot 1 dim %d" (fun d -> d)
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      invalid_arg "Rts.restore: bad snapshot header"
  in
  if dims < 1 then invalid_arg "Rts.restore: bad dimensionality";
  let parse_line line =
    let tokens =
      (* the trailing %S label may contain spaces: split off the quoted tail *)
      match String.index_opt line '"' with
      | Some i ->
          let head = String.sub line 0 i in
          let tail = String.sub line i (String.length line - i) in
          (String.split_on_char ' ' (String.trim head) |> List.filter (( <> ) ""), tail)
      | None -> invalid_arg "Rts.restore: missing label field"
    in
    let fields, quoted = tokens in
    let label = Scanf.sscanf quoted "%S" (fun s -> s) in
    match fields with
    | id :: threshold :: consumed :: bounds when List.length bounds = 2 * dims ->
        let id = int_of_string id in
        let threshold = int_of_string threshold in
        let consumed = int_of_string consumed in
        let arr = Array.of_list bounds in
        let lo = Array.init dims (fun k -> float_of_string arr.(2 * k)) in
        let hi = Array.init dims (fun k -> float_of_string arr.((2 * k) + 1)) in
        ({ id; rect = { lo; hi }; threshold }, consumed, label)
    | _ -> invalid_arg "Rts.restore: malformed subscription line"
  in
  let entries =
    List.filter_map
      (fun line -> if String.trim line = "" then None else Some (parse_line line))
      body
  in
  let engine =
    Dt_engine.restore ~dim:dims (List.map (fun (q, consumed, _) -> (q, consumed)) entries)
  in
  let t =
    { dims; engine; subs = Hashtbl.create 64; next_id = 0; matured = 0 }
  in
  List.iter
    (fun ((q : query), _, label) ->
      let s =
        {
          sid = q.id;
          slabel = (if label = "" then None else Some label);
          squery = q;
          sstatus = `Live;
          callback = (match on_mature with Some f -> Some f | None -> None);
        }
      in
      Hashtbl.replace t.subs q.id s;
      if q.id >= t.next_id then t.next_id <- q.id + 1)
    entries;
  t

let subscriptions t = Hashtbl.fold (fun _ s acc -> s :: acc) t.subs []

let describe s =
  let name = match s.slabel with Some l -> l | None -> Printf.sprintf "#%d" s.sid in
  let st =
    match s.sstatus with `Live -> "live" | `Matured -> "MATURED" | `Cancelled -> "cancelled"
  in
  Format.asprintf "%s: %a >= %d [%s]" name pp_rect s.squery.rect s.squery.threshold st
