(** The paper's RTS algorithm, end to end (Theorem 1).

    Maintains a collection of {!Endpoint_tree}s governed by the logarithmic
    method of Section 5 (Bentley–Saxe): slot [j] holds at most [2^(j-1)]
    alive queries (property P3); a REGISTER collapses the smallest prefix of
    slots that can absorb the newcomer into a single freshly built tree,
    with every migrated query's threshold reduced by the weight it has
    already accumulated (Section 5, steps 1–3). TERMINATE and maturity
    remove heap entries only; once a tree has lost half of the queries it
    was built with, it is rebuilt on its alive remainder (the global
    rebuilding of Section 4), keeping total space [O~(m_alive)].

    Complexities (paper, Sections 5–7): processing [n] elements and [m]
    queries costs [O(n log^{d+1} m + m log^{d+1} m log tau_max)] in total;
    space is [O(m_alive log^d m_alive)]. *)

open Types

type t

val create : ?eager:bool -> dim:int -> unit -> t
(** Fresh engine for [dim]-dimensional streams ([dim >= 1]). [eager] is the
    ablation switch of {!Endpoint_tree.build}: disable the DT slack rounds
    and signal every counter change (exact but slower; benchmarked by the
    ablation target). *)

val create_static : ?eager:bool -> dim:int -> query list -> t
(** Build an engine over a one-shot batch (the Section 4 setting / the
    paper's "static" Scenario 1): a single endpoint tree over all queries,
    cheaper than [m] successive {!register} calls. Registration later is
    still allowed. *)

val register : t -> query -> unit
(** REGISTER(q): amortized [O(log^{d+1} m)]. Raises [Invalid_argument] on
    an invalid query or an id that is already alive. *)

val register_batch : t -> query list -> unit
(** Register a batch of queries at one instant: a single logarithmic-method
    collapse absorbing the whole batch, instead of one per query. This is
    how {!create_static} builds the paper's Scenario-1 setup. *)

val terminate : t -> int -> unit
(** TERMINATE by id; [O(log^{d+1} m)]. Raises [Not_found] if not alive. *)

val process : t -> elem -> int list
(** Feed one element; returns the newly matured query ids (ascending). *)

val process_batch : t -> elem array -> int list
(** Feed a batch of elements arriving at one instant; returns all newly
    matured query ids (ascending). Validates the whole batch, sorts one
    copy by first coordinate and drives every live tree through a
    shared-prefix {!Endpoint_tree.cursor}, so a batch of [b] elements
    costs one sort plus [b] short tail-walks per tree instead of [b] full
    descents. Matured set, surviving weights and {!alive_snapshot} are
    identical to [b] sequential {!process} calls on the same multiset;
    per-element maturity attribution inside the batch (and the
    interleaving-sensitive work counters) may differ because elements are
    reordered and global-rebuild checks run once at batch end. *)

val is_alive : t -> int -> bool

val progress : t -> int -> int
(** [progress t id] = W(q): the exact total weight accumulated by the alive
    query since its registration, combining the weight credited during tree
    migrations with its current tree's counters. Raises [Not_found] if the
    query is not alive. *)

val alive_count : t -> int

val tree_count : t -> int
(** Number of (non-empty) endpoint trees currently live — the [g] of
    Section 5; tests assert it stays [O(log m)] (property P1). *)

val rebuild_count : t -> int
(** Total endpoint-tree (re)constructions so far — the source of the cost
    "bumps" the paper points out in Figures 3 and 6. *)

val stats : t -> Endpoint_tree.stats
(** Aggregated telemetry over all trees ever built (signals, round ends,
    heap operations, counter updates) — drives the message-bound assertions
    and the ablation bench. *)

val metrics : t -> Engine.Metrics.snapshot
(** The uniform observability surface (see {!Engine.t.metrics}): folds
    {!stats} into the shared metric names ([dt_signals_total] = DT
    messages delivered, [dt_round_ends_total], [dt_heap_ops_total],
    [dt_node_updates_total], [rebuilds_total]) next to the engine-level
    tallies ([elements_total], [registered_total], [terminated_total],
    [matured_total]) and the [alive] / [trees] gauges. Counters agree
    with {!stats} exactly — asserted by the test suite. *)

val alive_snapshot : t -> (query * int) list
(** [(q, W)] for every alive query, ascending id: the original query and
    the exact weight it has accumulated since registration. Together with
    {!restore} this checkpoints an engine: maturity behaviour after
    [restore ~dim (alive_snapshot t)] is identical to continuing [t]. *)

val restore : ?eager:bool -> dim:int -> (query * int) list -> t
(** Rebuild an engine from a snapshot (one fresh endpoint tree over the
    batch, thresholds reduced by the consumed weights — exactly the
    paper's global-rebuilding threshold adjustment). Raises
    [Invalid_argument] on duplicate ids or [consumed] outside
    [0, threshold). *)

val space : t -> Endpoint_tree.space
(** Aggregate structure footprint across all live endpoint trees. The
    paper's space guarantee — [O~(m_alive)] at all times, via global
    rebuilding and properties P2/P3 — is asserted against this by the
    test suite. *)

val engine : t -> Engine.t
(** Package as a uniform {!Engine.t} named ["dt"] (["dt-eager"] under the
    ablation switch). *)

val make : dim:int -> Engine.t
(** [make ~dim] = [engine (create ~dim ())]. *)

val make_eager : dim:int -> Engine.t
(** The ablation variant: [engine (create ~eager:true ~dim ())]. *)
