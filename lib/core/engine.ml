open Types
module Metrics = Rts_obs.Metrics

type t = {
  name : string;
  dim : int;
  register : query -> unit;
  register_batch : query list -> unit;
  terminate : int -> unit;
  process : elem -> int list;
  feed_batch : elem array -> int list;
  alive : unit -> int;
  alive_snapshot : unit -> (query * int) list;
  metrics : unit -> Metrics.snapshot;
}

let sort_matured ids = List.sort compare ids

let batch_of_process process elems =
  let matured = ref [] in
  Array.iter (fun e -> matured := List.rev_append (process e) !matured) elems;
  sort_matured !matured

let sort_snapshot entries =
  List.sort (fun ((a : query), _) ((b : query), _) -> compare a.id b.id) entries

let batch_of_register register queries = List.iter register queries

let no_metrics () = Metrics.empty

(* Shared instrumentation backbone for the scan-style engines (baseline and
   the three stabbing competitors): the uniform metric names every engine
   must answer, backed by a private registry with O(1) hot-path counters.
   The DT engine exposes the same names but sources the protocol counters
   from its endpoint trees' flat stats records (see Dt_engine.metrics). *)
module Counters = struct
  type nonrec t = {
    reg : Metrics.t;
    elements : Metrics.counter;
    registered : Metrics.counter;
    terminated : Metrics.counter;
    matured : Metrics.counter;
    scan_updates : Metrics.counter;
    alive : Metrics.gauge;
  }

  let create () =
    let reg = Metrics.create () in
    {
      reg;
      elements = Metrics.counter reg "elements_total";
      registered = Metrics.counter reg "registered_total";
      terminated = Metrics.counter reg "terminated_total";
      matured = Metrics.counter reg "matured_total";
      scan_updates = Metrics.counter reg "scan_updates_total";
      alive = Metrics.gauge reg "alive";
    }

  let snapshot c ~alive =
    Metrics.set c.alive (float_of_int alive);
    Metrics.snapshot c.reg
end
