(** Name → engine factory registry.

    Engines used to be enumerated in a closed variant inside `rts-cli`;
    with the approximate tier the set is open — `rts_approx` installs its
    engines at startup without `lib/core` depending on it. The registry is
    the single source of truth for engine names: the CLI's `--engine`
    completion, the bench roster and the test sweeps all resolve through
    it, so a new engine library only has to call {!register} once.

    Registration is not thread-safe (it happens during single-threaded
    startup) and duplicate names are an error — two libraries silently
    fighting over a name would make `--engine` runs irreproducible. *)

type dims =
  | Any  (** Works at every dimensionality (validated per query/element). *)
  | Only of int  (** Hard-wired to one dimensionality, e.g. interval-tree. *)

type entry = {
  name : string;
  doc : string;  (** One-line description, used in [--engine] help text. *)
  dims : dims;
  make : dim:int -> Engine.t;
}

val register : name:string -> doc:string -> ?dims:dims -> (dim:int -> Engine.t) -> unit
(** Add an engine factory. Raises [Invalid_argument] on a duplicate name. *)

val find : string -> entry option

val mem : string -> bool

val names : unit -> string list
(** All registered names, in registration order (core engines first). *)

val entries : unit -> entry list

val make : name:string -> dim:int -> Engine.t
(** Resolve and build. Raises [Failure] with a user-facing message on an
    unknown name or a dimensionality the engine does not support. *)
