open Types
module Segment_interval_tree = Rts_structures.Segment_interval_tree
module Metrics = Rts_obs.Metrics

type state = { q : query; mutable got : int }

type t = {
  tree : state Segment_interval_tree.t;
  index : (int, state) Hashtbl.t;
  counters : Engine.Counters.t;
}

let create () =
  {
    tree = Segment_interval_tree.create ();
    index = Hashtbl.create 64;
    counters = Engine.Counters.create ();
  }

let register t q =
  validate_query ~dim:2 q;
  if Hashtbl.mem t.index q.id then invalid_arg "Stab2d_engine.register: id already alive";
  let s = { q; got = 0 } in
  Segment_interval_tree.insert t.tree ~id:q.id ~xlo:q.rect.lo.(0) ~xhi:q.rect.hi.(0)
    ~ylo:q.rect.lo.(1) ~yhi:q.rect.hi.(1) s;
  Hashtbl.replace t.index q.id s;
  Metrics.incr t.counters.registered

let remove t (s : state) =
  Segment_interval_tree.delete t.tree ~id:s.q.id;
  Hashtbl.remove t.index s.q.id

let terminate t id =
  match Hashtbl.find_opt t.index id with
  | Some s ->
      remove t s;
      Metrics.incr t.counters.terminated
  | None -> raise Not_found

let process t e =
  validate_elem ~dim:2 e;
  Metrics.incr t.counters.elements;
  let matured = ref [] in
  Segment_interval_tree.iter_stab t.tree ~x:e.value.(0) ~y:e.value.(1) (fun _id s ->
      Metrics.incr t.counters.scan_updates;
      s.got <- s.got + e.weight;
      if s.got >= s.q.threshold then matured := s :: !matured);
  List.iter
    (fun s ->
      remove t s;
      Metrics.incr t.counters.matured)
    !matured;
  Engine.sort_matured (List.map (fun s -> s.q.id) !matured)

(* Batched feed: element order preserved (removal timing affects later
   stabs); matured ids accumulated across the batch, sorted once. *)
let feed_batch t elems =
  let matured = ref [] in
  Array.iter
    (fun e ->
      validate_elem ~dim:2 e;
      Metrics.incr t.counters.elements;
      let hit = ref [] in
      Segment_interval_tree.iter_stab t.tree ~x:e.value.(0) ~y:e.value.(1) (fun _id s ->
          Metrics.incr t.counters.scan_updates;
          s.got <- s.got + e.weight;
          if s.got >= s.q.threshold then hit := s :: !hit);
      List.iter
        (fun s ->
          remove t s;
          Metrics.incr t.counters.matured;
          matured := s.q.id :: !matured)
        !hit)
    elems;
  Engine.sort_matured !matured

let is_alive t id = Hashtbl.mem t.index id

let progress t id =
  match Hashtbl.find_opt t.index id with Some s -> s.got | None -> raise Not_found

let alive_count t = Hashtbl.length t.index

let alive_snapshot t =
  Hashtbl.fold (fun _ s acc -> (s.q, s.got) :: acc) t.index [] |> Engine.sort_snapshot

let metrics t = Engine.Counters.snapshot t.counters ~alive:(alive_count t)

let engine t =
  {
    Engine.name = "seg-intv";
    dim = 2;
    register = register t;
    register_batch = Engine.batch_of_register (register t);
    terminate = terminate t;
    process = process t;
    feed_batch = feed_batch t;
    alive = (fun () -> alive_count t);
    alive_snapshot = (fun () -> alive_snapshot t);
    metrics = (fun () -> metrics t);
  }

let make () = engine (create ())
