(** Uniform interface over all RTS engines.

    Every solution evaluated in the paper — the proposed DT algorithm and
    the four competitors — supports exactly three operations: REGISTER,
    TERMINATE, and processing one stream element (which may mature any
    number of queries). This record-of-closures interface lets the workload
    driver, the test suite, and the benchmark harness treat them uniformly;
    cross-checking any two engines for equal maturity behaviour is the
    central correctness property of the repository. *)

open Types
module Metrics = Rts_obs.Metrics

type t = {
  name : string;
  dim : int;
  register : query -> unit;
      (** Accept a query at the current moment. Raises [Invalid_argument] on
          an invalid query or duplicate alive id. *)
  register_batch : query list -> unit;
      (** Accept many queries at one instant. Semantically identical to
          registering them one by one (in list order), but an engine may
          exploit the batch — the DT engine builds one endpoint tree
          directly, the paper's Scenario-1 "construction at the beginning
          of the stream", instead of paying the logarithmic method's
          migration churn per query. *)
  terminate : int -> unit;
      (** Stop and eliminate an alive query by id. Raises [Not_found] if the
          id is not alive (already matured, terminated, or never seen). *)
  process : elem -> int list;
      (** Feed one stream element; returns the ids of the queries this
          element matured, in ascending id order (deterministic across
          engines so traces can be compared verbatim). *)
  feed_batch : elem array -> int list;
      (** Feed many stream elements at one instant; returns the ids of all
          queries the batch matured, in ascending id order. Semantically
          the batch is an unordered multiset arriving together: the
          matured set, every alive query's accumulated weight, and the
          [alive_snapshot] after the call are identical to feeding the
          elements one at a time, but an engine may reorder elements
          {e within} the batch to amortize work — the DT engine sorts by
          key and shares descent prefixes — so per-element attribution of
          maturity inside a batch (and, for the DT engine, the exact
          interleaving-sensitive work counters) may differ from a
          specific sequential order. [feed_batch [|e|]] and [process e]
          are exactly equivalent. *)
  alive : unit -> int;  (** Number of currently alive queries. *)
  alive_snapshot : unit -> (query * int) list;
      (** [(q, W)] for every alive query in ascending id order: the query
          as originally registered and the exact weight it has accumulated
          since registration. This is the engine's checkpointable state —
          maturity behaviour is fully determined by it, so registering
          each [q] with threshold [q.threshold - W] into a fresh engine
          (what [Rts_resilience.Recovery] does, and what
          {!Dt_engine.restore} implements natively) continues the run
          bit-identically. Cost is O(alive); not a hot-path call. *)
  metrics : unit -> Metrics.snapshot;
      (** Uniform observability surface (DESIGN.md, "Observability").
          Every engine answers at least [elements_total],
          [registered_total], [terminated_total], [matured_total] and the
          [alive] gauge; scan-style engines add [scan_updates_total] (the
          O(nm) work term), the DT engine adds its protocol counters
          ([dt_signals_total], [dt_round_ends_total], [dt_heap_ops_total],
          [dt_node_updates_total], [rebuilds_total], [trees]). Counters
          are monotone across calls; snapshots are cheap (O(#metrics))
          and may be {!Metrics.diff}ed for per-window deltas. *)
}

val sort_matured : int list -> int list
(** Ascending, dedup-free sort used by implementations to normalize their
    [process] output. *)

val batch_of_register : (query -> unit) -> query list -> unit
(** Default [register_batch]: iterate [register]. *)

val batch_of_process : (elem -> int list) -> elem array -> int list
(** Default [feed_batch]: iterate [process] in array order, collect and
    sort the matured ids once. Exactly sequential semantics — wrappers
    that must observe every element individually use this. *)

val sort_snapshot : (query * int) list -> (query * int) list
(** Ascending id order — the normalization every [alive_snapshot]
    implementation applies so snapshots are comparable verbatim. *)

val no_metrics : unit -> Metrics.snapshot
(** The empty snapshot — for wrapper engines (e.g. recording proxies)
    that have nothing of their own to report. *)

(** Registry + the uniform counter set shared by the scan-style engines.
    Owning one of these is all an engine needs to satisfy the [metrics]
    contract; hot-path increments are single int mutations. *)
module Counters : sig
  type t = {
    reg : Metrics.t;
    elements : Metrics.counter;
    registered : Metrics.counter;
    terminated : Metrics.counter;
    matured : Metrics.counter;
    scan_updates : Metrics.counter;
    alive : Metrics.gauge;
  }

  val create : unit -> t

  val snapshot : t -> alive:int -> Metrics.snapshot
  (** Refreshes the [alive] gauge, then snapshots the registry. *)
end
