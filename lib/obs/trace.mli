(** Lightweight span timing on top of {!Rts_util.Timer}, reporting
    through [Logs] (src ["rts.trace"], level [Debug]) and optionally
    into a {!Metrics.histogram} of microsecond observations.

    Intended for coarse phases — batch registration, a bench figure, a
    replay — not for per-element hot paths (a [Timer.now] pair per
    element would dominate the engines' own work; the per-chunk timing
    of {!Rts_workload.Scenario} is the hot-path mechanism). *)

val src : Logs.src

type span

val start : ?histogram:Metrics.histogram -> string -> span
(** Begin a span. If [histogram] is given, {!finish} also records the
    duration (in microseconds) there. *)

val finish : span -> float
(** End the span: logs ["<name>: <t> us"] at [Debug] on {!src}, feeds
    the histogram if any, and returns elapsed seconds. Idempotent —
    a second [finish] returns the first duration without re-logging. *)

val with_span : ?histogram:Metrics.histogram -> string -> (unit -> 'a) -> 'a
(** [with_span name f] = start/finish around [f ()]; the span is
    finished even if [f] raises. *)

val timed : (unit -> 'a) -> 'a * float
(** Re-export of {!Rts_util.Timer.time} so observability users need only
    this module. *)
