(** Unified metrics layer for every RTS engine and driver.

    The paper's headline claims are {e budgets} — [O(h log tau)] DT
    messages per query, [O~(n + m)] total work — so the system's cost
    profile must be observable, uniformly, at any point of a run. This
    module provides named counters, gauges and histograms in a registry
    with O(1) hot-path updates, plus immutable {!snapshot}s that can be
    diffed (per-window deltas for trajectory traces), rendered as JSON
    (the [BENCH_*.json] files) or Prometheus-style text ([rts-cli
    --stats]).

    Conventions (documented in DESIGN.md, "Observability"):
    - counters end in [_total] and only ever grow;
    - gauges are instantaneous levels (e.g. [alive] queries);
    - histogram observations are in the unit named by the metric
      (e.g. [*_us] = microseconds).

    A registry is cheap (a hashtable of boxed ints); every engine owns
    one so that two engines in the same process never share counters. *)

type t
(** A metric registry. *)

type counter
type gauge
type histogram

val create : unit -> t

(* ---- registration (get-or-create; idempotent per name) ---- *)

val counter : t -> string -> counter
(** [counter t name] returns the counter registered under [name],
    creating it at 0 on first use. Raises [Invalid_argument] if [name]
    is already registered as a different metric kind. *)

val gauge : t -> string -> gauge

val histogram : ?buckets:float array -> t -> string -> histogram
(** [buckets] are upper bounds of cumulative buckets (ascending); a
    [+inf] overflow bucket is implicit. Default: powers of 10 from 1 to
    1e6. Raises [Invalid_argument] on a non-ascending bucket array, or
    if [name] exists with different buckets. *)

(* ---- hot path: O(1) ---- *)

val incr : counter -> unit
val add : counter -> int -> unit
(** Raises [Invalid_argument] on a negative delta — counters only grow. *)

val value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Binary-search the bucket: O(log #buckets), constant for the default
    array. *)

(* ---- snapshots ---- *)

type histogram_summary = {
  count : int;
  sum : float;
  buckets : (float * int) array;  (** (upper bound, cumulative count) *)
}

type value_snapshot =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_summary

type snapshot
(** An immutable, sorted view of a registry at one instant. *)

val snapshot : t -> snapshot

val empty : snapshot

val of_assoc : (string * value_snapshot) list -> snapshot
(** Build a snapshot directly — the adapter path for components that
    keep their own tallies in flat mutable records for hot-path reasons
    (e.g. {!Rts_core.Endpoint_tree.stats}) and only materialize metric
    names on demand. Duplicate names raise [Invalid_argument]. *)

val to_assoc : snapshot -> (string * value_snapshot) list
(** Ascending by name. *)

val get : snapshot -> string -> value_snapshot option

val counter_value : snapshot -> string -> int
(** 0 if absent or not a counter — total-order convenience for tests and
    the bench aggregator. *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** Per-window delta: counters and histogram counts subtract, gauges take
    the [after] value. Metrics present only in [after] pass through;
    metrics only in [before] are dropped (a metric never disappears from
    a live registry, so this only happens across unrelated snapshots). *)

val merge : snapshot -> snapshot -> snapshot
(** Pointwise sum (counters and histograms add, gauges take the second
    operand) — used by the bench to aggregate across engines or runs.
    Raises [Invalid_argument] on a kind mismatch under one name. *)

val merge_all : snapshot list -> snapshot
(** [merge_all snaps] folds {!merge} left-to-right over [snaps] (so for
    gauges the {e last} snapshot carrying a name wins) — the shard layer
    aggregates its per-shard engine snapshots with this, appending its
    own corrected gauges last. [merge_all [] = empty]. *)

val is_monotone : before:snapshot -> after:snapshot -> bool
(** Every counter present in both grew or stayed equal — the
    engine-agnostic sanity law asserted by the test suite. *)

(* ---- rendering ---- *)

val to_json : snapshot -> Json.t
(** Object keyed by metric name. Counters/gauges are numbers; histograms
    are objects [{"count": n, "sum": s, "buckets": {"le_<b>": c, ...}}]. *)

val to_prometheus : ?prefix:string -> snapshot -> string
(** Prometheus text exposition (v0 subset): [# TYPE] lines plus samples;
    histograms expand to [_bucket{le="..."}], [_sum], [_count]. [prefix]
    is prepended to every metric name (default none). *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable one-line-per-metric dump (used by [--stats]). *)
