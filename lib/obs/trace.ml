module Timer = Rts_util.Timer

let src = Logs.Src.create "rts.trace" ~doc:"RTS span timing"

module Log = (val Logs.src_log src : Logs.LOG)

type span = {
  name : string;
  t0 : float;
  histogram : Metrics.histogram option;
  mutable elapsed : float option; (* set once finished *)
}

let start ?histogram name = { name; t0 = Timer.now (); histogram; elapsed = None }

let finish s =
  match s.elapsed with
  | Some dt -> dt
  | None ->
      let dt = Timer.now () -. s.t0 in
      s.elapsed <- Some dt;
      Log.debug (fun m -> m "%s: %.1f us" s.name (dt *. 1e6));
      (match s.histogram with Some h -> Metrics.observe h (dt *. 1e6) | None -> ());
      dt

let with_span ?histogram name f =
  let s = start ?histogram name in
  Fun.protect ~finally:(fun () -> ignore (finish s)) f

let timed = Timer.time
