(* [Gc.minor_words ()] computes the word count FIRST and only then boxes
   the result, so the [before] call's own box is counted by [after] but
   not by [before]: a raw [after - before] bracket over an allocation-free
   section reads exactly one boxed float (2-3 words depending on runtime),
   never zero. Calibrate that constant with an empty back-to-back bracket
   instead of hard-coding it — it is a runtime detail, not a contract. *)
let bracket_overhead () =
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  b -. a

let words f =
  let overhead = bracket_overhead () in
  let before = Gc.minor_words () in
  f ();
  let after = Gc.minor_words () in
  Float.max 0. (after -. before -. overhead)

let words_min ~runs f =
  let best = ref (words f) in
  for _ = 2 to runs do
    let w = words f in
    if w < !best then best := w
  done;
  !best

let words_per_item ~runs ~items f =
  if items <= 0 then invalid_arg "Alloc.words_per_item: items <= 0";
  words_min ~runs f /. float_of_int items
