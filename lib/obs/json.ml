type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int n = Num (float_of_int n)

(* ---------------- printing ---------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_str x =
  if not (Float.is_finite x) then invalid_arg "Json.to_string: non-finite number";
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.15g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

let to_buffer ?(indent = 0) buf v =
  let nl level =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (indent * level) ' ')
    end
  in
  let rec go level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num x -> Buffer.add_string buf (number_str x)
    | Str s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            nl (level + 1);
            go (level + 1) item)
          items;
        nl level;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            nl (level + 1);
            escape_string buf k;
            Buffer.add_char buf ':';
            if indent > 0 then Buffer.add_char buf ' ';
            go (level + 1) item)
          kvs;
        nl level;
        Buffer.add_char buf '}'
  in
  go 0 v

let to_string ?indent v =
  let buf = Buffer.create 256 in
  to_buffer ?indent buf v;
  Buffer.contents buf

let to_channel ?indent oc v = output_string oc (to_string ?indent v)

(* ---------------- parsing ---------------- *)

exception Parse_error of string

let fail pos fmt = Printf.ksprintf (fun s -> raise (Parse_error (Printf.sprintf "at %d: %s" pos s))) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c.pos "expected %C, got %C" ch x
  | None -> fail c.pos "expected %C, got end of input" ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c.pos "bad literal"

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.pos "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then fail c.pos "bad \\u escape";
            let hex = String.sub c.src c.pos 4 in
            let code = try int_of_string ("0x" ^ hex) with _ -> fail c.pos "bad \\u escape" in
            c.pos <- c.pos + 4;
            (* ASCII only; anything else is replaced — our own output never
               emits non-ASCII escapes *)
            Buffer.add_char buf (if code < 0x80 then Char.chr code else '?');
            go ()
        | _ -> fail c.pos "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some x -> Num x
  | None -> fail start "bad number %S" s

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> Str (parse_string_body c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [ parse_value c ] in
        skip_ws c;
        while peek c = Some ',' do
          advance c;
          items := parse_value c :: !items;
          skip_ws c
        done;
        expect c ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let pair () =
          skip_ws c;
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let kvs = ref [ pair () ] in
        skip_ws c;
        while peek c = Some ',' do
          advance c;
          kvs := pair () :: !kvs;
          skip_ws c
        done;
        expect c '}';
        Obj (List.rev !kvs)
      end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c.pos "unexpected %C" ch

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c.pos "trailing garbage";
  v

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let get_num = function Num x -> Some x | _ -> None

let get_str = function Str s -> Some s | _ -> None
