(** Minimal JSON tree, printer and parser — no external dependencies.

    Exists so the benchmark harness can emit machine-readable
    [BENCH_*.json] trajectories and so `make check` can validate them,
    without pulling yojson into the build. Numbers are stored as [float];
    integers round-trip exactly up to 2^53, far beyond any counter this
    repository produces. The parser is strict enough for our own output
    (and for CI validation) but is not a general-purpose validator —
    it accepts a superset of JSON numbers ([inf] is rejected on print). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val int : int -> t
(** [int n] = [Num (float_of_int n)]. *)

val to_string : ?indent:int -> t -> string
(** Render. [indent] > 0 pretty-prints with that many spaces per level
    (default 0 = compact). Raises [Invalid_argument] on non-finite
    numbers — JSON has no representation for them, and silently writing
    [null] would corrupt the benchmark trajectory. *)

val to_channel : ?indent:int -> out_channel -> t -> unit

exception Parse_error of string

val of_string : string -> t
(** Parse one JSON value (trailing whitespace allowed, trailing garbage
    rejected). Raises {!Parse_error} with a character offset. *)

val member : string -> t -> t option
(** [member k (Obj kvs)] = value bound to [k], if any; [None] on
    non-objects. *)

val get_num : t -> float option

val get_str : t -> string option
