(** Minor-heap allocation audit for hot paths.

    Brackets [Gc.minor_words] around a section and reports how many
    minor-heap words the section itself allocated, with the bracket's own
    overhead (the boxed float each [Gc.minor_words] call returns)
    calibrated out — so a genuinely allocation-free section reports
    {e exactly} [0.], deterministically, on every compiler leg. That
    exactness is what lets tools/alloc_budgets.json gate
    [allocated_words_per_element = 0] in CI with no tolerance band.

    The counter is monotone: concurrent noise (finalizers, signal
    handlers) can only add words, never subtract, so {!words_min} over a
    few runs converges on the section's true cost from above. *)

val words : (unit -> unit) -> float
(** [words f] runs [f ()] once and returns the minor-heap words it
    allocated (clamped at [0.]). *)

val words_min : runs:int -> (unit -> unit) -> float
(** [words_min ~runs f] runs [f] [runs] times (at least once) and
    returns the minimum measurement — the run least polluted by
    unrelated allocation. *)

val words_per_item : runs:int -> items:int -> (unit -> unit) -> float
(** [words_per_item ~runs ~items f] is [words_min ~runs f /. items],
    for sections that process [items] elements per run. Raises
    [Invalid_argument] if [items <= 0]. *)
