type counter = { mutable c : int }

type gauge = { mutable g : float }

type histogram = {
  bounds : float array; (* ascending upper bounds; +inf overflow implicit *)
  counts : int array; (* per-bucket (non-cumulative) counts; last = overflow *)
  mutable hcount : int;
  mutable hsum : float;
}

type metric = C of counter | G of gauge | H of histogram

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register t name m =
  match Hashtbl.find_opt t.tbl name with
  | None ->
      Hashtbl.replace t.tbl name m;
      m
  | Some existing ->
      if kind_name existing <> kind_name m then
        invalid_arg
          (Printf.sprintf "Metrics: %S already registered as a %s" name (kind_name existing));
      existing

let counter t name =
  match register t name (C { c = 0 }) with C c -> c | _ -> assert false

let gauge t name =
  match register t name (G { g = 0. }) with G g -> g | _ -> assert false

let default_buckets = [| 1.; 10.; 100.; 1_000.; 10_000.; 100_000.; 1_000_000. |]

let histogram ?(buckets = default_buckets) t name =
  Array.iteri
    (fun i b -> if i > 0 && not (b > buckets.(i - 1)) then invalid_arg "Metrics.histogram: buckets not ascending")
    buckets;
  let fresh =
    H { bounds = Array.copy buckets; counts = Array.make (Array.length buckets + 1) 0; hcount = 0; hsum = 0. }
  in
  match register t name fresh with
  | H h ->
      if Array.length h.bounds <> Array.length buckets || not (Array.for_all2 ( = ) h.bounds buckets)
      then invalid_arg (Printf.sprintf "Metrics: %S already registered with different buckets" name);
      h
  | _ -> assert false

(* ---- hot path ---- *)

let incr c = c.c <- c.c + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: negative delta";
  c.c <- c.c + n

let value c = c.c

let set g x = g.g <- x

let gauge_value g = g.g

let observe h x =
  (* first bucket whose bound >= x; binary search *)
  let n = Array.length h.bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if h.bounds.(mid) >= x then hi := mid else lo := mid + 1
  done;
  h.counts.(!lo) <- h.counts.(!lo) + 1;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum +. x

(* ---- snapshots ---- *)

type histogram_summary = { count : int; sum : float; buckets : (float * int) array }

type value_snapshot = Counter of int | Gauge of float | Histogram of histogram_summary

type snapshot = (string * value_snapshot) list (* sorted by name *)

let snap_metric = function
  | C c -> Counter c.c
  | G g -> Gauge g.g
  | H h ->
      (* cumulative counts, +inf last *)
      let n = Array.length h.bounds in
      let cum = ref 0 in
      let buckets =
        Array.init (n + 1) (fun i ->
            cum := !cum + h.counts.(i);
            ((if i < n then h.bounds.(i) else infinity), !cum))
      in
      Histogram { count = h.hcount; sum = h.hsum; buckets }

let snapshot t =
  Hashtbl.fold (fun name m acc -> (name, snap_metric m) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let empty = []

let of_assoc kvs =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) kvs in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if a = b then invalid_arg (Printf.sprintf "Metrics.of_assoc: duplicate name %S" a);
        check rest
    | _ -> ()
  in
  check sorted;
  sorted

let to_assoc s = s

let get s name = List.assoc_opt name s

let counter_value s name = match get s name with Some (Counter n) -> n | _ -> 0

let diff ~before ~after =
  List.filter_map
    (fun (name, v_after) ->
      match (List.assoc_opt name before, v_after) with
      | None, v -> Some (name, v)
      | Some (Counter b), Counter a -> Some (name, Counter (a - b))
      | Some (Gauge _), Gauge a -> Some (name, Gauge a)
      | Some (Histogram b), Histogram a ->
          let buckets =
            Array.mapi
              (fun i (bound, c) ->
                let prev = if i < Array.length b.buckets then snd b.buckets.(i) else 0 in
                (bound, c - prev))
              a.buckets
          in
          Some (name, Histogram { count = a.count - b.count; sum = a.sum -. b.sum; buckets })
      | Some _, v ->
          (* kind changed between snapshots: pass the new value through *)
          Some (name, v))
    after

let merge a b =
  let names =
    List.sort_uniq compare (List.map fst a @ List.map fst b)
  in
  List.map
    (fun name ->
      match (List.assoc_opt name a, List.assoc_opt name b) with
      | Some v, None | None, Some v -> (name, v)
      | Some (Counter x), Some (Counter y) -> (name, Counter (x + y))
      | Some (Gauge _), Some (Gauge y) -> (name, Gauge y)
      | Some (Histogram x), Some (Histogram y) when Array.length x.buckets = Array.length y.buckets
        ->
          let buckets = Array.mapi (fun i (bound, c) -> (bound, c + snd y.buckets.(i))) x.buckets in
          (name, Histogram { count = x.count + y.count; sum = x.sum +. y.sum; buckets })
      | _ -> invalid_arg (Printf.sprintf "Metrics.merge: kind mismatch for %S" name)
    )
    names

let merge_all snaps = List.fold_left merge empty snaps

let is_monotone ~before ~after =
  List.for_all
    (fun (name, v) ->
      match (v, List.assoc_opt name after) with
      | Counter b, Some (Counter a) -> a >= b
      | _ -> true)
    before

(* ---- rendering ---- *)

let bucket_label b = if b = infinity then "inf" else Json.(to_string (Num b))

let to_json s =
  Json.Obj
    (List.map
       (fun (name, v) ->
         ( name,
           match v with
           | Counter n -> Json.int n
           | Gauge x -> Json.Num x
           | Histogram h ->
               Json.Obj
                 [
                   ("count", Json.int h.count);
                   ("sum", Json.Num h.sum);
                   ( "buckets",
                     Json.Obj
                       (Array.to_list
                          (Array.map (fun (b, c) -> ("le_" ^ bucket_label b, Json.int c)) h.buckets))
                   );
                 ] ))
       s)

let to_prometheus ?(prefix = "") s =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, v) ->
      let name = prefix ^ name in
      match v with
      | Counter n ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" name name n)
      | Gauge x -> Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %g\n" name name x)
      | Histogram h ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
          Array.iter
            (fun (b, c) ->
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name
                   (if b = infinity then "+Inf" else bucket_label b)
                   c))
            h.buckets;
          Buffer.add_string buf (Printf.sprintf "%s_sum %g\n" name h.sum);
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name h.count))
    s;
  Buffer.contents buf

let pp ppf s =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Format.fprintf ppf "%-32s %d@." name n
      | Gauge x -> Format.fprintf ppf "%-32s %g@." name x
      | Histogram h ->
          Format.fprintf ppf "%-32s count=%d sum=%g mean=%g@." name h.count h.sum
            (if h.count = 0 then 0. else h.sum /. float_of_int h.count))
    s
