type t = { sk : Crprecis.t; shell : Approx_engine.t }

let create ?dyadic ?primes () =
  let sk = Crprecis.create ?dyadic ?primes () in
  { sk; shell = Approx_engine.create ~name:"crprecis" ~summary:(Crprecis.summary sk) () }

let sketch t = t.sk

let bounds t id = Approx_engine.bounds t.shell id

let engine t = Approx_engine.engine t.shell

let make () = engine (create ())
