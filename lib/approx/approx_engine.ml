open Rts_core
module Types = Rts_core.Types
module Metrics = Rts_obs.Metrics
module Handle_heap = Rts_structures.Handle_heap

type qstate = {
  q : Types.query;
  l_reg : int;  (* summary range bounds frozen at registration *)
  u_reg : int;
  mutable last_mass : int;  (* clock at the previous deadline check *)
  mutable last_lw : int;  (* certified lower bound on W at that check *)
  mutable handle : (int * int) Handle_heap.handle;
}

type t = {
  name : string;
  s : Summary.t;
  alive : (int, qstate) Hashtbl.t;
  heap : (int * int) Handle_heap.t;  (* (deadline mass, id), min by deadline *)
  counters : Engine.Counters.t;
  checks_c : Metrics.counter;
  cells_c : Metrics.counter;
  words_g : Metrics.gauge;
}

let create ~name ~summary () =
  let counters = Engine.Counters.create () in
  {
    name;
    s = summary;
    alive = Hashtbl.create 256;
    heap =
      Handle_heap.create
        ~leq:(fun (d1, i1) (d2, i2) -> d1 < d2 || (d1 = d2 && i1 <= i2))
        ();
    counters;
    checks_c = Metrics.counter counters.Engine.Counters.reg "approx_checks_total";
    cells_c = Metrics.counter counters.Engine.Counters.reg "approx_cells_total";
    words_g = Metrics.gauge counters.Engine.Counters.reg "approx_sketch_words";
  }

let range_of t (q : Types.query) =
  t.s.Summary.range ~lo:q.rect.Types.lo.(0) ~hi:q.rect.Types.hi.(0)

(* How much more stream mass to wait for before re-checking a query.

   Any stride is sound — the check itself decides maturity, so a stride
   only trades re-check work against detection lateness (the DT slack
   idea, keyed on total mass because the summary cannot watch a single
   range cheaply). The stride extrapolates the query's observed fill
   rate between its last two checks: if the certified lower bound gained
   [gained] over [dm] mass, closing the remaining [short] needs about
   [short * dm / gained] more — halved for safety so the shortfall
   converges geometrically (O(log tau) checks on a steady range).
   Queries observing no gain back off to a doubling schedule, capped at
   [max tau (mass/2)] so even a range that turns hot late is detected
   within one tau (or one mass doubling) of maturing. Floats avoid
   [short * dm] overflow; the arithmetic is still deterministic. *)
let stride t st ~lw =
  let short = st.q.Types.threshold - lw in
  let mass = t.s.Summary.mass () in
  let cap = float_of_int (max st.q.Types.threshold (mass / 2)) in
  let gained = lw - st.last_lw and dm = mass - st.last_mass in
  let est =
    if gained <= 0 then cap
    else float_of_int short *. float_of_int (max 1 dm) /. (2. *. float_of_int gained)
  in
  let est = Float.min est cap in
  if est < 1. then 1 else int_of_float est

let lower_w st est = max 0 (est.Summary.lower - st.u_reg)

let register t q =
  Types.validate_query ~dim:1 q;
  if Hashtbl.mem t.alive q.Types.id then
    invalid_arg (Printf.sprintf "%s: duplicate alive query id %d" t.name q.Types.id);
  let est = range_of t q in
  let mass = t.s.Summary.mass () in
  (* First check after half a threshold's worth of mass: even if every
     unit landed in the range, the query is at most halfway by then. *)
  let d = mass + max 1 (q.Types.threshold / 2) in
  let handle = Handle_heap.push t.heap (d, q.Types.id) in
  let st =
    {
      q;
      l_reg = est.Summary.lower;
      u_reg = est.Summary.upper;
      last_mass = mass;
      last_lw = 0;
      handle;
    }
  in
  Hashtbl.replace t.alive q.Types.id st;
  Metrics.incr t.counters.Engine.Counters.registered;
  Metrics.add t.cells_c est.Summary.cells

let terminate t id =
  match Hashtbl.find_opt t.alive id with
  | None -> raise Not_found
  | Some st ->
      Handle_heap.remove t.heap st.handle;
      Hashtbl.remove t.alive id;
      Metrics.incr t.counters.Engine.Counters.terminated

let drain t =
  let matured = ref [] in
  let clock = t.s.Summary.mass () in
  let rec go () =
    match Handle_heap.peek t.heap with
    | Some (d, _) when d <= clock ->
        let _, id = Option.get (Handle_heap.pop t.heap) in
        let st = Hashtbl.find t.alive id in
        Metrics.incr t.checks_c;
        let lw = lower_w st (range_of t st.q) in
        if lw >= st.q.Types.threshold then begin
          Hashtbl.remove t.alive id;
          Metrics.incr t.counters.Engine.Counters.matured;
          matured := id :: !matured
        end
        else begin
          let s = stride t st ~lw in
          st.last_mass <- clock;
          st.last_lw <- lw;
          st.handle <- Handle_heap.push t.heap (clock + s, id)
        end;
        go ()
    | _ -> ()
  in
  go ();
  Engine.sort_matured !matured

let process t e =
  Types.validate_elem ~dim:1 e;
  t.s.Summary.insert e.Types.value.(0) e.Types.weight;
  Metrics.incr t.counters.Engine.Counters.elements;
  drain t

let bounds t id =
  match Hashtbl.find_opt t.alive id with
  | None -> raise Not_found
  | Some st ->
      let est = range_of t st.q in
      (lower_w st est, est.Summary.upper - st.l_reg)

let checks t = Metrics.value t.checks_c

let alive_snapshot t =
  Hashtbl.fold
    (fun _ st acc ->
      let lw = lower_w st (range_of t st.q) in
      (* The contract wants exact W; an approximate engine only has an
         interval, so it reports the certified lower end (clamped below
         tau). A restore from this snapshot under-credits and therefore
         stays never-early. *)
      (st.q, min (st.q.Types.threshold - 1) lw) :: acc)
    t.alive []
  |> Engine.sort_snapshot

let engine t =
  {
    Engine.name = t.name;
    dim = 1;
    register = register t;
    register_batch = Engine.batch_of_register (register t);
    terminate = terminate t;
    process = process t;
    feed_batch = Engine.batch_of_process (process t);
    alive = (fun () -> Hashtbl.length t.alive);
    alive_snapshot = (fun () -> alive_snapshot t);
    metrics =
      (fun () ->
        Metrics.set t.words_g (float_of_int (t.s.Summary.words ()));
        Engine.Counters.snapshot t.counters ~alive:(Hashtbl.length t.alive));
  }
