(** CR-precis: a deterministic counter-array sketch (Ganguly–Majumder,
    PAPERS.md) over the dyadic hierarchy.

    Per dyadic level the sketch keeps [t] counter arrays with pairwise
    distinct prime lengths [p_1 < ... < p_t]; a cell [i] increments slot
    [i mod p_k] in every array. Two distinct cells [a <> b] at a level
    with [N] cells collide in array [k] iff [p_k] divides [a - b], and
    since [0 < |a - b| < N] the product of the colliding primes is below
    [N] — so at most [c] arrays can collide, where [c] is the largest
    [r] with [p_1 * ... * p_r <= N - 1]. That Chinese-remainder argument
    is the whole error story, and it is deterministic: no hash family,
    no failure probability, bit-exact across runs — which is what lets
    the bench pin the sketch's error budget with no tolerance band.

    Bounds per cell with true count [f], total in-domain mass [F]:
    - upper: [U = min_k array_k.(i mod p_k) >= f] (every colliding
      contribution is nonnegative);
    - lower: each colliding element lands in at most [c] of the [t]
      arrays, so [t*U <= t*f + c*(F - f)], giving
      [f >= ceil((t*U - c*F) / (t - c))] when [c < t], else 0.

    Levels with at most [p_1] cells cannot collide at all and store one
    exact array — the sketch is only "approximate" at the finest levels,
    exactly where exactness would cost the most memory. Total size is a
    few tens of kilowords, independent of query count and stream length. *)

type t

val create : ?dyadic:Dyadic.t -> ?primes:int list -> unit -> t
(** Default primes: [521; 523; 541; 547; 557]. Raises [Invalid_argument]
    unless the list has >= 2 ascending pairwise-distinct entries >= 2. *)

val dyadic : t -> Dyadic.t

val insert : t -> float -> int -> unit
(** [insert t x w]: raises [Invalid_argument] if [w < 0]. Out-of-domain
    values go to exact side counters, never into cells. *)

val mass : t -> int
(** Total inserted weight, including out-of-domain. *)

val cell_bounds : t -> Dyadic.cell -> int * int
(** Certified [(lower, upper)] for one cell's true count. *)

val collisions_at : t -> int -> int
(** The [c] of a level — 0 on the exact levels. For tests and docs. *)

val range : t -> lo:float -> hi:float -> Summary.est

val words : t -> int

val summary : t -> Summary.t
