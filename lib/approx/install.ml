module R = Rts_core.Engine_registry

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    R.register ~name:"crprecis"
      ~doc:"CR-precis sketch, never-early approximate maturity" ~dims:(R.Only 1)
      (fun ~dim:_ -> Crprecis_engine.make ());
    R.register ~name:"heavy"
      ~doc:"Misra-Gries heavy-ranges tracker, never-early approximate maturity"
      ~dims:(R.Only 1)
      (fun ~dim:_ -> Heavy_engine.make ());
    R.register ~name:"topn" ~doc:"exact DT with top-n nearest-maturity threshold search"
      (fun ~dim -> Topn.engine ~dim)
  end
