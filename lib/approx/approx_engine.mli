(** Engine shell over an approximate {!Summary}: turns certified range
    bounds into {e never-early} range-thresholding.

    Exact engines fire a query the moment its accumulated weight W
    reaches τ. An approximate engine only ever knows an interval for W:
    registering q freezes the summary's bounds [\[l_reg, u_reg\]] on its
    range, and at any later instant with range bounds [\[l_now, u_now\]]

    {v  W ∈ [ max 0 (l_now - u_reg),  u_now - l_reg ]  v}

    The never-early rule is: report maturity only when the {e lower} end
    of that interval reaches τ. Every reported maturity is therefore a
    true maturity (possibly late); the engine never fires on sketch
    noise. The price is recall, not precision: a range too narrow for
    the grid to certify (lower bound pinned at 0) is simply never
    reported, and the exact tier exists for it.

    Scheduling reuses the DT slack idea on the summary's clock: one unit
    of stream mass raises a range's certified lower bound by at most its
    [cells] count, so a query whose bound is short of τ by [s] cannot
    mature before another [ceil(s / cells)] mass arrives — the engine
    parks it in a {!Rts_structures.Handle_heap} keyed by that deadline
    and touches it again only when the clock catches up, exactly like a
    DT round-end. Per element the engine pays the summary insert plus an
    O(1) heap peek; per deadline hit, one range re-estimate.

    [alive_snapshot] reports each query's certified {e lower} bound on W
    (clamped below τ): restoring from it can only make a successor {e
    later}, never early, so [Durable] checkpoints compose soundly. As
    with any engine wrapped in approximation, [feed_batch] keeps exactly
    sequential semantics ({!Engine.batch_of_process}). *)

type t

val create : name:string -> summary:Summary.t -> unit -> t
(** 1D engines only (the summaries are 1D); [dim] is fixed at 1. *)

val engine : t -> Rts_core.Engine.t

val bounds : t -> int -> int * int
(** Certified [(lower, upper)] on the accumulated weight W of an alive
    query. Raises [Not_found] if the id is not alive. *)

val checks : t -> int
(** Deadline re-checks performed so far (also a metrics counter). *)
