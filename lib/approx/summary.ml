type est = { lower : int; upper : int; cells : int }

type t = {
  insert : float -> int -> unit;
  range : lo:float -> hi:float -> est;
  words : unit -> int;
  mass : unit -> int;
}
