(** The interface an approximate range summary presents to the engine
    shell ({!Approx_engine}).

    A summary ingests weighted 1D values and answers certified interval
    estimates for the mass that has landed in a float range since the
    summary was created. Both implementations (CR-precis counter arrays,
    Misra–Gries heavy-ranges) are deterministic: the same insert sequence
    always yields the same bounds, so bench budgets pin their error
    exactly with no tolerance band. *)

type est = {
  lower : int;
      (** Certified lower bound on the true in-range mass. Never
          negative, never exceeds [upper]. *)
  upper : int;  (** Certified upper bound on the true in-range mass. *)
  cells : int;
      (** Number of canonical cells certifying [lower] (at least 1).
          The engine uses it to stride re-check deadlines: one unit of
          stream mass can raise the certified lower bound of a range by
          at most [cells]. *)
}

type t = {
  insert : float -> int -> unit;  (** [insert value weight]. *)
  range : lo:float -> hi:float -> est;
  words : unit -> int;
      (** Memory footprint of the summary's counters, in words —
          constant over a run; the bench gates it. *)
  mass : unit -> int;
      (** Exact total weight inserted so far (the deadline clock). *)
}
