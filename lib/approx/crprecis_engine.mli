(** The CR-precis sketch packaged as an RTS engine (name ["crprecis"]).

    1D only; never-early maturity via {!Approx_engine}. Memory is a few
    tens of kilowords independent of query count and stream length;
    per-element cost is the sketch's counter increments plus an O(1)
    deadline peek. *)

type t

val create : ?dyadic:Dyadic.t -> ?primes:int list -> unit -> t

val sketch : t -> Crprecis.t

val bounds : t -> int -> int * int
(** Certified [(lower, upper)] on an alive query's accumulated weight.
    Raises [Not_found] if the id is not alive. *)

val engine : t -> Rts_core.Engine.t

val make : unit -> Rts_core.Engine.t
(** Default-configured engine, as the registry builds it. *)
