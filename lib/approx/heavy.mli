(** Heavy-ranges tracker: deterministic hierarchical heavy hitters in
    constant memory, BPTree-style (Braverman et al., PAPERS.md).

    BPTree finds ℓ₂ heavy hitters by binary-searching down a prefix
    tree, keeping constant state per level. This tracker is its
    deterministic instantiation for our discipline: per dyadic level a
    weighted Misra–Gries summary of at most [capacity] cells, and the
    hot-range query class descends the hierarchy root-to-leaves,
    expanding only the children whose certified upper bound keeps them
    heavy — the binary search over prefixes, with MG playing the role
    of BPTree's randomized CountSketch filter so that answers are
    bit-exact across runs (no hash family, no failure probability).

    MG accounting: when a level's table is full, an incoming foreign
    cell pays mass [m] to evict — every tracked count drops by [m] and
    the level's [spill] grows by [m]. For every cell [c] at that level,
    [count(c) <= true(c) <= count(c) + spill] (untracked cells count as
    0). Levels with at most [capacity] cells never evict and are exact.
    Since cells at one level are disjoint, ranking cells by [count] is
    ranking by their ℓ₂ (indeed any monotone norm) contribution. *)

type t

val create : ?dyadic:Dyadic.t -> ?capacity:int -> unit -> t
(** Default [capacity = 128] tracked cells per level. Raises
    [Invalid_argument] if [capacity < 1]. *)

val dyadic : t -> Dyadic.t

val insert : t -> float -> int -> unit

val mass : t -> int

val spill : t -> int
(** Total evicted mass summed over the levels — the tracker's aggregate
    error level (a gauge in the engine's metrics). *)

val cell_bounds : t -> Dyadic.cell -> int * int

val range : t -> lo:float -> hi:float -> Summary.est

val words : t -> int

val summary : t -> Summary.t

(** {2 The new query class} *)

type hot_range = {
  range : float * float;  (** The cell's interval, [\[lo, hi)]. *)
  level : int;
  lower : int;  (** Certified bounds on the cell's true mass. *)
  upper : int;
}

val hot : t -> threshold:int -> hot_range list
(** Maximal dyadic cells that may carry mass [>= threshold]: the
    BPTree-style descent — a cell qualifies if its upper bound reaches
    the threshold; it is refined into whichever children still qualify,
    and reported when no child does (or at the finest level). Returned
    in ascending value order; deterministic. Raises [Invalid_argument]
    if [threshold < 1]. *)

val top : t -> n:int -> hot_range list
(** The [n] heaviest finest-level cells by tracked weight (ties broken
    by ascending cell index), heaviest first — "top ranges by ℓ₂
    weight". Fewer than [n] entries are returned only when fewer cells
    are tracked. *)
