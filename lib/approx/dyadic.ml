type t = {
  lo : float;
  hi : float;
  depth : int;
  buckets : int;  (* 2^depth *)
  width : float;  (* (hi - lo) / buckets *)
}

type cell = { level : int; index : int }

type cover = {
  inner : cell list;
  outer : cell list;
  below : bool;
  above : bool;
}

let create ?(lo = 0.) ?(hi = 1e5) ?(depth = 14) () =
  if not (lo < hi) then invalid_arg "Dyadic.create: requires lo < hi";
  if depth < 0 || depth > 30 then invalid_arg "Dyadic.create: depth out of [0, 30]";
  let buckets = 1 lsl depth in
  { lo; hi; depth; buckets; width = (hi -. lo) /. float_of_int buckets }

let depth t = t.depth
let buckets t = t.buckets
let cells_at t l =
  if l < 0 || l > t.depth then invalid_arg "Dyadic.cells_at: level out of range";
  1 lsl l

let raw t x = (x -. t.lo) /. t.width

let classify t x =
  if x < t.lo then `Below
  else if x >= t.hi then `Above
  else
    (* In-domain by the float comparison above; the division can still
       round to either neighbouring bucket at a boundary, so clamp. *)
    let b = int_of_float (Float.floor (raw t x)) in
    `In (if b < 0 then 0 else if b >= t.buckets then t.buckets - 1 else b)

let index_at t ~level ~bucket = bucket lsr (t.depth - level)

let path t bucket =
  Array.init (t.depth + 1) (fun l -> { level = l; index = index_at t ~level:l ~bucket })

let cell_range t { level; index } =
  let size = 1 lsl (t.depth - level) in
  let lo = t.lo +. (float_of_int (index * size) *. t.width) in
  let hi = t.lo +. (float_of_int ((index + 1) * size) *. t.width) in
  (lo, hi)

(* Canonical decomposition of the finest-bucket range [a, b): greedily
   take the largest aligned dyadic block that starts at [a] and fits —
   the same segment-tree walk the endpoint tree performs, on a grid. *)
let decompose t a b =
  let acc = ref [] in
  let a = ref a in
  while !a < b do
    (* Largest power-of-two block aligned at !a ... *)
    let align = if !a = 0 then t.buckets else !a land - !a in
    let size = ref align in
    (* ... shrunk until it fits inside [a, b). *)
    while !a + !size > b do
      size := !size / 2
    done;
    let s = ref 0 in
    while 1 lsl !s < !size do
      incr s
    done;
    acc := { level = t.depth - !s; index = !a lsr !s } :: !acc;
    a := !a + !size
  done;
  List.rev !acc

(* Two buckets of slop on every rounded edge: the bucket index of a value
   and of a query endpoint are computed with the same float division, but
   the two roundings need not agree at a boundary. One bucket absorbs the
   disagreement; the second keeps the argument comfortable rather than
   tight. The mass this concedes sits in [upper - lower] where it
   belongs — soundness is never traded for it. *)
let slop = 2

let clamp t v = if v < 0 then 0 else if v > t.buckets then t.buckets else v

let cover t ~lo ~hi =
  if not (lo < hi) then invalid_arg "Dyadic.cover: requires lo < hi";
  let flo = Float.floor (raw t lo) and fhi = Float.floor (raw t hi) in
  (* Guard the int conversion: a query interval can legitimately extend
     to +/-1e18 or beyond, far outside float->int safety. *)
  let to_i f =
    if f <= -1e9 then -max_int / 2 else if f >= 1e9 then max_int / 2 else int_of_float f
  in
  let ilo = to_i flo and ihi = to_i fhi in
  let inner_lo = clamp t (ilo + slop) and inner_hi = clamp t (ihi - slop + 1) in
  let outer_lo = clamp t (ilo - slop) and outer_hi = clamp t (ihi + slop + 1) in
  {
    inner = (if inner_lo < inner_hi then decompose t inner_lo inner_hi else []);
    outer = (if outer_lo < outer_hi then decompose t outer_lo outer_hi else []);
    below = lo < t.lo;
    above = hi > t.hi;
  }
