type mg = { tbl : (int, int ref) Hashtbl.t; mutable spill : int }

type level =
  | Exact of int array  (* cells <= capacity: never evicts *)
  | Mg of mg

type t = {
  dy : Dyadic.t;
  cap : int;
  levels : level array;
  mutable below : int;
  mutable above : int;
  mutable inmass : int;
  mutable evictions : int;
}

let create ?dyadic ?(capacity = 128) () =
  let dy = match dyadic with Some d -> d | None -> Dyadic.create () in
  if capacity < 1 then invalid_arg "Heavy.create: capacity < 1";
  let levels =
    Array.init
      (Dyadic.depth dy + 1)
      (fun l ->
        let n = Dyadic.cells_at dy l in
        if n <= capacity then Exact (Array.make n 0)
        else Mg { tbl = Hashtbl.create (2 * capacity); spill = 0 })
  in
  { dy; cap = capacity; levels; below = 0; above = 0; inmass = 0; evictions = 0 }

let dyadic t = t.dy

let mass t = t.below + t.above + t.inmass

let spill t =
  Array.fold_left
    (fun acc -> function Exact _ -> acc | Mg m -> acc + m.spill)
    0 t.levels

(* Weighted Misra-Gries step. When the table is full, the incoming
   foreign cell and every resident pay the same toll [m]; either the
   whole increment is absorbed into spill (m = w) or some resident hits
   zero and frees a slot, so the recursion terminates in one step. *)
let rec mg_add t m cell w =
  if w > 0 then
    match Hashtbl.find_opt m.tbl cell with
    | Some r -> r := !r + w
    | None ->
        if Hashtbl.length m.tbl < t.cap then Hashtbl.add m.tbl cell (ref w)
        else begin
          let toll = Hashtbl.fold (fun _ r acc -> min !r acc) m.tbl w in
          m.spill <- m.spill + toll;
          t.evictions <- t.evictions + 1;
          let dead = ref [] in
          Hashtbl.iter
            (fun c r ->
              r := !r - toll;
              if !r = 0 then dead := c :: !dead)
            m.tbl;
          List.iter (Hashtbl.remove m.tbl) !dead;
          mg_add t m cell (w - toll)
        end

let insert t x w =
  if w < 0 then invalid_arg "Heavy.insert: negative weight";
  match Dyadic.classify t.dy x with
  | `Below -> t.below <- t.below + w
  | `Above -> t.above <- t.above + w
  | `In b ->
      t.inmass <- t.inmass + w;
      for l = 0 to Dyadic.depth t.dy do
        let i = Dyadic.index_at t.dy ~level:l ~bucket:b in
        match t.levels.(l) with
        | Exact a -> a.(i) <- a.(i) + w
        | Mg m -> mg_add t m i w
      done

let cell_bounds t { Dyadic.level; index } =
  match t.levels.(level) with
  | Exact a ->
      let f = a.(index) in
      (f, f)
  | Mg m ->
      let est = match Hashtbl.find_opt m.tbl index with Some r -> !r | None -> 0 in
      (est, est + m.spill)

let range t ~lo ~hi =
  let cov = Dyadic.cover t.dy ~lo ~hi in
  let lower = List.fold_left (fun acc c -> acc + fst (cell_bounds t c)) 0 cov.Dyadic.inner in
  let upper = List.fold_left (fun acc c -> acc + snd (cell_bounds t c)) 0 cov.Dyadic.outer in
  let upper = if cov.Dyadic.below then upper + t.below else upper in
  let upper = if cov.Dyadic.above then upper + t.above else upper in
  { Summary.lower; upper; cells = max 1 (List.length cov.Dyadic.inner) }

let words t =
  (* 3 words per MG binding (key, ref cell, bucket slot) is the honest
     order of magnitude for a Hashtbl-backed table at capacity. *)
  Array.fold_left
    (fun acc -> function
      | Exact a -> acc + Array.length a
      | Mg _ -> acc + (3 * t.cap))
    0 t.levels

let summary t =
  {
    Summary.insert = insert t;
    range = (fun ~lo ~hi -> range t ~lo ~hi);
    words = (fun () -> words t);
    mass = (fun () -> mass t);
  }

type hot_range = {
  range : float * float;
  level : int;
  lower : int;
  upper : int;
}

let hot_of_cell t cell (lower, upper) =
  { range = Dyadic.cell_range t.dy cell; level = cell.Dyadic.level; lower; upper }

let hot t ~threshold =
  if threshold < 1 then invalid_arg "Heavy.hot: threshold < 1";
  let out = ref [] in
  let rec go cell =
    let ((_, upper) as b) = cell_bounds t cell in
    if upper >= threshold then
      if cell.Dyadic.level = Dyadic.depth t.dy then out := hot_of_cell t cell b :: !out
      else begin
        let c0 = { Dyadic.level = cell.Dyadic.level + 1; index = 2 * cell.Dyadic.index } in
        let c1 = { Dyadic.level = cell.Dyadic.level + 1; index = (2 * cell.Dyadic.index) + 1 } in
        let q0 = snd (cell_bounds t c0) >= threshold in
        let q1 = snd (cell_bounds t c1) >= threshold in
        if q0 || q1 then begin
          if q0 then go c0;
          if q1 then go c1
        end
        else out := hot_of_cell t cell b :: !out
      end
  in
  go { Dyadic.level = 0; index = 0 };
  List.rev !out

let top t ~n =
  if n < 0 then invalid_arg "Heavy.top: n < 0";
  let finest = { Dyadic.level = Dyadic.depth t.dy; index = 0 } in
  let entries =
    match t.levels.(finest.Dyadic.level) with
    | Exact a ->
        let acc = ref [] in
        Array.iteri (fun i c -> if c > 0 then acc := (i, c) :: !acc) a;
        !acc
    | Mg m -> Hashtbl.fold (fun i r acc -> (i, !r) :: acc) m.tbl []
  in
  let spill_f =
    match t.levels.(finest.Dyadic.level) with Exact _ -> 0 | Mg m -> m.spill
  in
  entries
  |> List.sort (fun (i1, c1) (i2, c2) ->
         if c1 <> c2 then compare c2 c1 else compare i1 i2)
  |> List.filteri (fun k _ -> k < n)
  |> List.map (fun (i, c) ->
         hot_of_cell t { Dyadic.level = Dyadic.depth t.dy; index = i } (c, c + spill_f))
