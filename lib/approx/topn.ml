open Rts_core

type entry = { id : int; slack : int; threshold : int }

let compare_entry a b =
  if a.slack <> b.slack then compare a.slack b.slack else compare a.id b.id

let closest_of_snapshot snap ~n =
  if n < 0 then invalid_arg "Topn.closest: n < 0";
  let m = List.length snap in
  let entries =
    List.map
      (fun ((q : Types.query), w) ->
        { id = q.Types.id; slack = q.Types.threshold - w; threshold = q.Types.threshold })
      snap
  in
  if n = 0 then []
  else if n >= m then List.sort compare_entry entries
  else begin
    let arr = Array.of_list entries in
    let count_le s =
      Array.fold_left (fun acc e -> if e.slack <= s then acc + 1 else acc) 0 arr
    in
    (* Binary-search the smallest slack bound s* admitting >= n queries.
       Slacks are >= 1 (alive means W < tau); lo is always a bound that
       admits < n, hi one that admits >= n. *)
    let hi = ref 1 in
    Array.iter (fun e -> if e.slack > !hi then hi := e.slack) arr;
    let lo = ref 0 in
    while !hi - !lo > 1 do
      let mid = !lo + ((!hi - !lo) / 2) in
      if count_le mid >= n then hi := mid else lo := mid
    done;
    let s_star = !hi in
    (* Survivors: everything strictly under s* (fewer than n of those)
       plus the ties at s*; sort only them. *)
    let survivors = Array.to_list arr |> List.filter (fun e -> e.slack <= s_star) in
    List.sort compare_entry survivors |> List.filteri (fun k _ -> k < n)
  end

let closest (e : Engine.t) ~n = closest_of_snapshot (e.Engine.alive_snapshot ()) ~n

let engine ~dim =
  let inner = Dt_engine.make ~dim in
  { inner with Engine.name = "topn" }
