module Metrics = Rts_obs.Metrics

type t = { hv : Heavy.t; shell : Approx_engine.t }

let create ?dyadic ?capacity () =
  let hv = Heavy.create ?dyadic ?capacity () in
  { hv; shell = Approx_engine.create ~name:"heavy" ~summary:(Heavy.summary hv) () }

let tracker t = t.hv

let bounds t id = Approx_engine.bounds t.shell id

let hot t ~threshold = Heavy.hot t.hv ~threshold

let top t ~n = Heavy.top t.hv ~n

let engine t =
  let e = Approx_engine.engine t.shell in
  let base_metrics = e.Rts_core.Engine.metrics in
  {
    e with
    Rts_core.Engine.metrics =
      (fun () ->
        Metrics.merge (base_metrics ())
          (Metrics.of_assoc
             [ ("approx_spill", Metrics.Gauge (float_of_int (Heavy.spill t.hv))) ]));
  }

let make () = engine (create ())
