(** The heavy-ranges tracker packaged as an RTS engine (name ["heavy"]).

    1D only; never-early maturity via {!Approx_engine}, plus the
    tracker's own query class ({!hot}, {!top}) for "which ranges are
    hot" questions that need no registered query at all. The engine's
    metrics add the [approx_spill] gauge (total Misra–Gries evicted
    mass — the tracker's aggregate error level). *)

type t

val create : ?dyadic:Dyadic.t -> ?capacity:int -> unit -> t

val tracker : t -> Heavy.t

val bounds : t -> int -> int * int
(** Certified [(lower, upper)] on an alive query's accumulated weight.
    Raises [Not_found] if the id is not alive. *)

val hot : t -> threshold:int -> Heavy.hot_range list

val top : t -> n:int -> Heavy.hot_range list

val engine : t -> Rts_core.Engine.t

val make : unit -> Rts_core.Engine.t
