(** Hook the approximate tier into {!Rts_core.Engine_registry}.

    Explicit rather than a module-initialization side effect: an
    executable that wants [--engine crprecis|heavy|topn] calls
    [Install.install ()] once at startup, which both forces the linker
    to keep this library and makes the registration order visible.
    Idempotent. *)

val install : unit -> unit
