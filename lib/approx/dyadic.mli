(** Dyadic discretization of a fixed 1D domain.

    Both approximate summaries (the CR-precis sketch and the heavy-ranges
    tracker) index their counters by the cells of a dyadic hierarchy over
    a fixed interval [\[lo, hi)]: level [l] (0 = root .. depth = finest)
    splits the domain into [2^l] equal cells, and any bucket range has a
    canonical decomposition into at most [2*depth] cells — the same
    canonical-node-set idea the endpoint tree uses for exact queries,
    flattened onto a fixed grid so a summary's size is independent of the
    query count and stream length.

    Discretization is where an approximate engine could silently become
    unsound, so the query-side mapping is deliberately asymmetric:

    - the {e inner} bucket range rounds inward (with a two-bucket safety
      margin against float rounding), so every element whose bucket lies
      in it is guaranteed to lie in the original float interval — sums
      over inner cells are certified {e lower} bounds;
    - the {e outer} bucket range rounds outward by the same margin, so
      every in-domain element of the float interval lands in it — sums
      over outer cells are certified {e upper} bounds;
    - values outside [\[lo, hi)] are never inserted into cells; callers
      track them in two exact side counters and [cover] reports whether
      the queried interval sticks out past either edge (in which case the
      side mass belongs in the upper bound only). *)

type t

type cell = { level : int; index : int }
(** Cell [index] at [level]; level [l] has [2^l] cells. *)

type cover = {
  inner : cell list;  (** Canonical cells of the inward-rounded range. *)
  outer : cell list;  (** Canonical cells of the outward-rounded range. *)
  below : bool;  (** Queried interval extends below the domain. *)
  above : bool;  (** Queried interval extends above the domain. *)
}

val create : ?lo:float -> ?hi:float -> ?depth:int -> unit -> t
(** Defaults: [lo = 0.], [hi = 1e5] (the workload generator's domain),
    [depth = 14] (16384 finest buckets, ~6.1 units wide). Raises
    [Invalid_argument] unless [lo < hi] and [0 <= depth <= 30]. *)

val depth : t -> int

val buckets : t -> int
(** [2^depth], the number of finest-level buckets. *)

val cells_at : t -> int -> int
(** [cells_at t l] is [2^l], the number of cells at level [l]. *)

val classify : t -> float -> [ `Below | `In of int | `Above ]
(** Finest-level bucket of a value, or which side of the domain it
    falls off. Never raises on finite input. *)

val path : t -> int -> cell array
(** [path t bucket] is the cell containing [bucket] at every level,
    root first ([depth + 1] cells). Allocates; summaries that insert on
    the hot path should use [index_at]. *)

val index_at : t -> level:int -> bucket:int -> int
(** Cell index at [level] of a finest-level [bucket]; O(1). *)

val cell_range : t -> cell -> float * float
(** The float interval [\[lo, hi)] a cell covers. *)

val cover : t -> lo:float -> hi:float -> cover
(** Canonical inner/outer decompositions of a float interval. The inner
    list may be empty (interval narrower than the safety margin); the
    outer list is empty only when the interval misses the domain
    entirely. Raises [Invalid_argument] if [lo >= hi] or either bound is
    NaN. *)
