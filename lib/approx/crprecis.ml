type level =
  | Exact of int array  (* cells <= p_1: collisions impossible, one array *)
  | Sketched of { c : int; tabs : int array array }

type t = {
  dy : Dyadic.t;
  levels : level array;  (* depth + 1 entries, root first *)
  ntabs : int;
  mutable below : int;
  mutable above : int;
  mutable inmass : int;  (* in-domain mass: the F of the lower-bound formula *)
  words : int;
}

let default_primes = [ 521; 523; 541; 547; 557 ]

(* Largest r such that p_1 * ... * p_r <= n - 1: the most arrays a
   nonzero cell difference of magnitude < n can be divisible by. *)
let collisions primes n =
  let r = ref 0 and prod = ref 1 in
  (try
     Array.iter
       (fun p ->
         if !prod * p <= n - 1 then begin
           prod := !prod * p;
           incr r
         end
         else raise Exit)
       primes
   with Exit -> ());
  !r

let create ?dyadic ?(primes = default_primes) () =
  let dy = match dyadic with Some d -> d | None -> Dyadic.create () in
  let primes = Array.of_list primes in
  if Array.length primes < 2 then invalid_arg "Crprecis.create: need >= 2 tables";
  Array.iteri
    (fun k p ->
      if p < 2 || (k > 0 && p <= primes.(k - 1)) then
        invalid_arg "Crprecis.create: primes must be ascending and >= 2")
    primes;
  let depth = Dyadic.depth dy in
  let levels =
    Array.init (depth + 1) (fun l ->
        let n = Dyadic.cells_at dy l in
        if n <= primes.(0) then Exact (Array.make n 0)
        else
          Sketched
            { c = collisions primes n; tabs = Array.map (fun p -> Array.make p 0) primes })
  in
  let words =
    Array.fold_left
      (fun acc -> function
        | Exact a -> acc + Array.length a
        | Sketched { tabs; _ } ->
            Array.fold_left (fun acc a -> acc + Array.length a) acc tabs)
      0 levels
  in
  { dy; levels; ntabs = Array.length primes; below = 0; above = 0; inmass = 0; words }

let dyadic t = t.dy

let mass t = t.below + t.above + t.inmass

let words t = t.words

let insert t x w =
  if w < 0 then invalid_arg "Crprecis.insert: negative weight";
  match Dyadic.classify t.dy x with
  | `Below -> t.below <- t.below + w
  | `Above -> t.above <- t.above + w
  | `In b ->
      t.inmass <- t.inmass + w;
      for l = 0 to Dyadic.depth t.dy do
        let i = Dyadic.index_at t.dy ~level:l ~bucket:b in
        match t.levels.(l) with
        | Exact a -> a.(i) <- a.(i) + w
        | Sketched { tabs; _ } ->
            for k = 0 to t.ntabs - 1 do
              let a = tabs.(k) in
              let j = i mod Array.length a in
              a.(j) <- a.(j) + w
            done
      done

let collisions_at t l =
  match t.levels.(l) with Exact _ -> 0 | Sketched { c; _ } -> c

let cell_bounds t { Dyadic.level; index } =
  match t.levels.(level) with
  | Exact a ->
      let f = a.(index) in
      (f, f)
  | Sketched { c; tabs } ->
      let u = ref max_int in
      for k = 0 to t.ntabs - 1 do
        let a = tabs.(k) in
        let v = a.(index mod Array.length a) in
        if v < !u then u := v
      done;
      let u = !u in
      let lower =
        if c >= t.ntabs then 0
        else
          let num = (t.ntabs * u) - (c * t.inmass) in
          if num <= 0 then 0 else (num + (t.ntabs - c) - 1) / (t.ntabs - c)
      in
      (lower, u)

let range t ~lo ~hi =
  let cov = Dyadic.cover t.dy ~lo ~hi in
  let lower = List.fold_left (fun acc c -> acc + fst (cell_bounds t c)) 0 cov.Dyadic.inner in
  let upper = List.fold_left (fun acc c -> acc + snd (cell_bounds t c)) 0 cov.Dyadic.outer in
  let upper = if cov.Dyadic.below then upper + t.below else upper in
  let upper = if cov.Dyadic.above then upper + t.above else upper in
  { Summary.lower; upper; cells = max 1 (List.length cov.Dyadic.inner) }

let summary t =
  {
    Summary.insert = insert t;
    range = (fun ~lo ~hi -> range t ~lo ~hi);
    words = (fun () -> words t);
    mass = (fun () -> mass t);
  }
