(** Top-n threshold search: the n closest-to-maturity queries without
    sorting all m.

    The binary-threshold-search idiom (SNIPPETS.md, `jwbuitenhuis/topn`):
    instead of sorting the full population to take a prefix, binary-search
    a {e threshold} — here the remaining mass [slack = τ - W] a query
    still needs — over its value range, counting how many queries pass at
    each probe (O(m) per probe, no allocation), until the smallest slack
    bound [s*] admitting at least n queries is found. Only the survivors
    (at most n plus the ties at [s*]) are collected and sorted. Total
    O(m log S + k log k) with k ≈ n, versus O(m log m) for the sort; the
    win is real when n ≪ m, which is the monitoring case ("show the 10
    hottest of a million queries").

    The per-query slack comes from [alive_snapshot] — for the DT engine
    that is the slack-heap machinery's own [progress] accounting, so this
    query class rides on state the engine already maintains. Determinism:
    ties in slack break by ascending id, so the answer is a function of
    the snapshot alone. *)

type entry = {
  id : int;
  slack : int;  (** τ - W: remaining mass to maturity; >= 1 for alive. *)
  threshold : int;
}

val closest : Rts_core.Engine.t -> n:int -> entry list
(** The [n] alive queries nearest maturity, most urgent first (slack
    ascending, then id ascending) — exactly the first [n] of the fully
    sorted ranking. Returns all alive queries when [n >= alive]. Raises
    [Invalid_argument] if [n < 0]. *)

val closest_of_snapshot : (Rts_core.Types.query * int) list -> n:int -> entry list
(** Same, over an explicit [alive_snapshot] — lets callers reuse one
    snapshot for several [n] or compose with a replica's shipped state. *)

val engine : dim:int -> Rts_core.Engine.t
(** The ["topn"] registry engine: the exact DT engine with this search
    riding on it — maturity semantics identical to ["dt"]; the CLI's
    [--top] reporting resolves through it at any dimensionality. *)
