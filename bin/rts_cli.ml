(* rts-cli: command-line front end for the RTS library.

   Subcommands compose into a small streaming pipeline:

     rts-cli generate --dim 1 --count 100000        # synthetic stream to stdout
     rts-cli run --queries alerts.csv               # stream on stdin, alerts out
     rts-cli run --queries alerts.csv --wal state/  # same, crash-recoverable
     rts-cli recover state/                         # inspect/restore after a crash
     rts-cli demo --mode fixed-load --engine dt     # run a paper scenario

   File formats (CSV, '#' comments allowed):
     queries  : id,threshold,lo1,hi1[,lo2,hi2,...]
     elements : v1[,v2,...],weight                                        *)

open Rts_core
open Rts_workload
open Rts_resilience
open Cmdliner

(* ---------------- shared helpers ---------------- *)

let fail fmt = Printf.ksprintf (fun s -> raise (Failure s)) fmt

(* Operational errors become one-line stderr messages with distinct exit
   codes instead of OCaml backtraces; scripts can branch on the code. *)
let exit_failure = 1
let exit_parse_error = 2
let exit_replay_error = 3
let exit_not_found = 4
let exit_invalid = 5
let exit_corrupt = 6
let exit_io = 7

let protect f =
  let err code fmt = Printf.ksprintf (fun s -> Printf.eprintf "rts-cli: %s\n%!" s; code) fmt in
  try f () with
  | Csv_io.Parse_error msg -> err exit_parse_error "parse error: %s" msg
  | Replay.Engine_error { op_index; line_no; exn } ->
      err exit_replay_error "replay failed at op %d (line %d): %s" op_index line_no
        (Printexc.to_string exn)
  | Not_found -> err exit_not_found "not found: no alive query with that id"
  | Invalid_argument msg -> err exit_invalid "invalid argument: %s" msg
  | Checkpoint.Corrupt msg -> err exit_corrupt "corrupt durable state: %s" msg
  | Sys_error msg -> err exit_io "%s" msg
  | Unix.Unix_error (e, fn, arg) -> err exit_io "%s: %s (%s)" fn (Unix.error_message e) arg
  | Failure msg -> err exit_failure "%s" msg

(* Engine selection resolves through the registry so the approximate tier
   (and any future engine library) plugs in without touching this file;
   the install call both links rts_approx and fixes registration order. *)
let () = Rts_approx.Install.install ()

let engine_conv =
  let parse s =
    if Engine_registry.mem s then Ok s
    else
      Error
        (`Msg
          (Printf.sprintf "unknown engine %S (known: %s)" s
             (String.concat ", " (Engine_registry.names ()))))
  in
  let print ppf s = Format.pp_print_string ppf s in
  Arg.conv (parse, print)

(* The heavy engine carries its own query class (hot ranges); keep a
   handle to the concrete tracker when this process builds one so --hot
   can reach past the uniform Engine.t interface. *)
let heavy_handle : Rts_approx.Heavy_engine.t option ref = ref None

let make_engine name ~dim =
  if name = "heavy" && dim = 1 then begin
    let h = Rts_approx.Heavy_engine.create () in
    heavy_handle := Some h;
    Rts_approx.Heavy_engine.engine h
  end
  else Engine_registry.make ~name ~dim

let engine_arg =
  let doc =
    "Engine: "
    ^ String.concat "; "
        (List.map
           (fun e ->
             Printf.sprintf "%s (%s)" e.Engine_registry.name e.Engine_registry.doc)
           (Engine_registry.entries ()))
    ^ "."
  in
  Arg.(value & opt engine_conv "dt" & info [ "engine" ] ~docv:"ENGINE" ~doc)

(* ---- approximate-tier reporting (--top / --hot) ---- *)

let top_arg =
  let doc =
    "After the run, print the $(docv) queries closest to maturity (smallest remaining \
     mass), found by binary threshold search over the slack values instead of sorting \
     all alive queries. Works with every engine. 0 disables."
  in
  Arg.(value & opt int 0 & info [ "top" ] ~docv:"N" ~doc)

let hot_arg =
  let doc =
    "After the run, print the maximal dyadic ranges whose certified mass upper bound \
     reaches $(docv) (the heavy tracker's BPTree-style descent). Requires --engine \
     heavy, unsharded."
  in
  Arg.(value & opt (some int) None & info [ "hot" ] ~docv:"MASS" ~doc)

let print_top engine top =
  if top > 0 then begin
    let entries = Rts_approx.Topn.closest engine ~n:top in
    Printf.eprintf "rts-cli: top %d nearest-maturity queries:\n%!" (List.length entries);
    List.iteri
      (fun i e ->
        Printf.eprintf "  #%d q%d: needs %d more of tau %d\n%!" (i + 1)
          e.Rts_approx.Topn.id e.Rts_approx.Topn.slack e.Rts_approx.Topn.threshold)
      entries
  end

let print_hot hot =
  match (hot, !heavy_handle) with
  | None, _ -> ()
  | Some _, None -> fail "--hot requires --engine heavy (1D, unsharded)"
  | Some threshold, Some h ->
      let rs = Rts_approx.Heavy_engine.hot h ~threshold in
      Printf.eprintf "rts-cli: %d hot ranges (certified upper bound >= %d):\n%!"
        (List.length rs) threshold;
      List.iter
        (fun r ->
          let lo, hi = r.Rts_approx.Heavy.range in
          Printf.eprintf "  [%g, %g) level %d: mass in [%d, %d]\n%!" lo hi
            r.Rts_approx.Heavy.level r.Rts_approx.Heavy.lower r.Rts_approx.Heavy.upper)
        rs

let dim_arg =
  let doc = "Dimensionality of the data space." in
  Arg.(value & opt int 1 & info [ "dim" ] ~docv:"D" ~doc)

let seed_arg =
  let doc = "PRNG seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let stats_arg =
  let doc =
    "After the run, print the engine's metric totals (counters, gauges) to stderr in \
     Prometheus text exposition format."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

(* ---- sharded ingestion (--shards / --executor) ---- *)

let executor_conv =
  let parse s =
    match Rts_shard.Executor.kind_of_string s with Ok k -> Ok k | Error m -> Error (`Msg m)
  in
  let print ppf k = Format.pp_print_string ppf (Rts_shard.Executor.kind_to_string k) in
  Arg.conv (parse, print)

let shards_arg =
  let doc =
    "Partition the queries across $(docv) shards (rendezvous hashing on query id), each \
     running a full engine over the whole element stream. Matured ids, snapshots and the \
     alert stream are bit-identical to the unsharded run regardless of shard count or \
     executor."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"K" ~doc)

let executor_arg =
  let doc =
    "Where shard tasks run: 'seq' (inline, always available; the reference semantics) or \
     'domains' (one OCaml 5 domain per shard; parallel, same output). Implies sharding \
     even with --shards 1. Default: seq."
  in
  Arg.(value & opt (some executor_conv) None & info [ "executor" ] ~docv:"EXEC" ~doc)

(* [sharded_factory kind ~shards ~executor] is [(make, close)]: the engine
   factory for this invocation — the plain engine when sharding is off,
   else [Shard.factory] over it — plus a closer that joins any executor
   domains. Close only after the last engine call (metrics included). *)
let sharded_factory engine_kind ~shards ~executor =
  if shards < 1 then fail "--shards must be >= 1";
  let base ~dim = make_engine engine_kind ~dim in
  if shards = 1 && executor = None then (base, fun () -> ())
  else Rts_shard.Shard.factory ?executor ~shards base

(* ---- networked shadow validation (--net-faults) ---- *)

let net_fault_conv =
  let parse s =
    match Rts_net.Net_fault.parse s with Ok sp -> Ok sp | Error m -> Error (`Msg m)
  in
  let print ppf sp = Format.pp_print_string ppf (Rts_net.Net_fault.to_string sp) in
  Arg.conv (parse, print)

let net_faults_arg =
  let doc =
    "Run a networked distributed-tracking shadow next to the engine: one protocol \
     instance per query over $(b,--net-sites) simulated participants, with this \
     fault spec injected on every link (e.g. \
     'drop=0.2,dup=0.1,reorder=0.3,delay=1-4'; '' = lossless). The run aborts if \
     the networked protocol ever matures a query on a different element than the \
     engine."
  in
  Arg.(value & opt (some net_fault_conv) None & info [ "net-faults" ] ~docv:"SPEC" ~doc)

let net_seed_arg =
  let doc = "PRNG seed for the shadow's fault trajectories." in
  Arg.(value & opt int 1 & info [ "net-seed" ] ~docv:"N" ~doc)

let net_sites_arg =
  let doc = "Participants per networked shadow instance." in
  Arg.(value & opt int 4 & info [ "net-sites" ] ~docv:"H" ~doc)

(* The Reliable transport's timers, exposed so operators can match the
   retransmission behaviour to the injected fault profile instead of
   living with the compiled-in defaults. *)
let net_rto_arg =
  let default = Rts_net.Reliable.default.Rts_net.Reliable.rto in
  let doc = "Initial retransmission timeout of the reliability layer, in virtual ticks." in
  Arg.(value & opt int default & info [ "net-rto" ] ~docv:"TICKS" ~doc)

let net_rto_max_arg =
  let default = Rts_net.Reliable.default.Rts_net.Reliable.rto_max in
  let doc = "Retransmission backoff cap (the timeout doubles per attempt up to $(docv))." in
  Arg.(value & opt int default & info [ "net-rto-max" ] ~docv:"TICKS" ~doc)

let net_degrade_after_arg =
  let default = Rts_net.Reliable.default.Rts_net.Reliable.degrade_after in
  let doc =
    "Loss budget: cumulative retransmits on one site's link beyond which that site is \
     degraded to direct per-update forwarding."
  in
  Arg.(value & opt int default & info [ "net-degrade-after" ] ~docv:"N" ~doc)

let net_rto_jitter_arg =
  let doc =
    "Deterministic retransmission-backoff jitter: each retry delay d is drawn from [d, \
     d*(1+$(docv))] using the seeded PRNG, so links do not retry in lockstep after a \
     partition heals. 0 disables jitter."
  in
  Arg.(value & opt float 0.0 & info [ "net-rto-jitter" ] ~docv:"FRAC" ~doc)

let reliable_config ~rto ~rto_max ~degrade_after ~jitter =
  if rto < 1 || rto_max < rto || degrade_after < 1 then
    fail "--net-rto/--net-rto-max/--net-degrade-after must satisfy 1 <= rto <= rto-max, \
          degrade-after >= 1";
  if jitter < 0. then fail "--net-rto-jitter must be >= 0";
  { Rts_net.Reliable.rto; rto_max; degrade_after; jitter }

(* With --stats, dump the engine's uniform metric snapshot on stderr so it
   never mixes with the alert/CSV stream on stdout. *)
let print_stats stats snapshot =
  if stats then
    Printf.eprintf "%s%!" (Rts_obs.Metrics.to_prometheus ~prefix:"rts_" snapshot)

(* ---------------- run ---------------- *)

let run_cmd engine_kind dim closed queries_file quiet stats wal_dir checkpoint_every fsync_every
    net_faults net_seed net_sites net_rto net_rto_max net_degrade_after net_rto_jitter batch
    shards executor top hot =
  protect @@ fun () ->
  if net_faults <> None && wal_dir <> None then
    fail "--net-faults cannot be combined with --wal (the shadow is not recoverable)";
  if batch < 1 then fail "--batch must be >= 1";
  if hot <> None && (shards > 1 || executor <> None) then
    fail "--hot requires an unsharded run (the tracker lives in one engine)";
  (* Sharding sits innermost: Durable logs ops against the sharded engine
     (recovery replays the WAL into a fresh sharded engine via the same
     factory) and the net shadow cross-checks its merged output. *)
  let make, close_shards = sharded_factory engine_kind ~shards ~executor in
  (* With --wal, the run is crash-recoverable: recover whatever durable
     state the directory already holds (fresh directory = fresh engine),
     then wrap the engine so every op is WAL-logged and periodically
     checkpointed. *)
  let engine, handle, resuming =
    match wal_dir with
    | None -> (make ~dim, None, false)
    | Some path ->
        let dir = Io.fs_dir path in
        let engine, report = Recovery.recover ~dim ~make ~dir () in
        if report.Recovery.ops_total > 0 then
          Format.eprintf "rts-cli: recovered durable state from %s@.%a@." path Recovery.pp_report
            report;
        let config = { Durable.default with checkpoint_every; fsync_every } in
        let wrapped, h = Durable.wrap ~config ~report ~dir engine in
        (wrapped, Some h, report.Recovery.ops_total > 0)
  in
  (* With --net-faults, mirror every op into a per-query networked DT
     shadow and abort on any maturity divergence. *)
  let shadow = ref None in
  let engine =
    match net_faults with
    | None -> engine
    | Some faults ->
        let config =
          {
            Rts_netcheck.Net_shadow.sites = net_sites;
            faults;
            seed = net_seed;
            reliable =
              reliable_config ~rto:net_rto ~rto_max:net_rto_max
                ~degrade_after:net_degrade_after ~jitter:net_rto_jitter;
          }
        in
        let s = Rts_netcheck.Net_shadow.create ~config ~dim () in
        shadow := Some s;
        Rts_netcheck.Net_shadow.wrap s engine
  in
  (if resuming then
     (if queries_file <> None then
        Printf.eprintf "rts-cli: resuming; query file ignored (queries live in the WAL)\n%!")
   else
     match queries_file with
     | None -> fail "missing --queries (required unless resuming from --wal state)"
     | Some qf ->
         let ic = open_in qf in
         let queries =
           Fun.protect
             ~finally:(fun () -> close_in ic)
             (fun () -> Csv_io.read_queries ~dim ~closed ic)
         in
         engine.Engine.register_batch queries);
  Printf.eprintf "rts-cli: engine=%s dim=%d queries=%d; reading elements from stdin\n%!"
    engine.Engine.name dim
    (engine.Engine.alive ());
  let alerts, elements =
    if batch <= 1 then
      Csv_io.fold_elements ~dim
        (fun ~elt ~line_no (alerts, _) ->
          let matured = engine.Engine.process elt in
          List.iter
            (fun id -> if not quiet then Printf.printf "ALERT\t%d\t%d\n%!" line_no id)
            matured;
          (alerts + List.length matured, line_no))
        (0, 0) stdin
    else begin
      (* Batched ingestion: buffer [batch] elements, then one
         [feed_batch] call. Alerts are attributed to the line number of
         the last element of their batch — the batch is the unit of
         arrival, so that is the earliest point the alert exists. *)
      let buf = ref [] in
      let blen = ref 0 in
      let alerts = ref 0 in
      let flush line_no =
        if !blen > 0 then begin
          let arr = Array.of_list (List.rev !buf) in
          buf := [];
          blen := 0;
          let matured = engine.Engine.feed_batch arr in
          List.iter
            (fun id -> if not quiet then Printf.printf "ALERT\t%d\t%d\n%!" line_no id)
            matured;
          alerts := !alerts + List.length matured
        end
      in
      let last_line =
        Csv_io.fold_elements ~dim
          (fun ~elt ~line_no _ ->
            buf := elt :: !buf;
            incr blen;
            if !blen >= batch then flush line_no;
            line_no)
          0 stdin
      in
      flush last_line;
      (!alerts, last_line)
    end
  in
  Option.iter Durable.close handle;
  Printf.eprintf "rts-cli: %d elements, %d alerts, %d queries still live\n%!" elements alerts
    (engine.Engine.alive ());
  (match !shadow with
  | None -> ()
  | Some s ->
      let module Sh = Rts_netcheck.Net_shadow in
      Printf.eprintf
        "rts-cli: net shadow never matured early: %d instances over %d sites, %d \
         protocol messages (%d useful <= bound %d: %b), %d retransmits, %d degraded \
         sites, %d late maturities (degraded links), never-early %b\n\
         %!"
        (Sh.registered s) net_sites (Sh.messages s) (Sh.useful_messages s) (Sh.message_bound_total s)
        (Sh.bound_ok s) (Sh.retransmits s) (Sh.degraded_sites s) (Sh.late_maturities s)
        (Sh.never_early_ok s));
  print_top engine top;
  print_hot hot;
  print_stats stats (engine.Engine.metrics ());
  close_shards ();
  0

(* ---------------- recover ---------------- *)

let recover_cmd engine_kind dim wal_dir stats =
  protect @@ fun () ->
  if not (Sys.file_exists wal_dir) then fail "no such directory: %s" wal_dir;
  let dir = Io.fs_dir wal_dir in
  let make ~dim = make_engine engine_kind ~dim in
  let engine, report = Recovery.recover ~dim ~make ~dir () in
  Format.printf "%a@." Recovery.pp_report report;
  Printf.printf "alive queries after recovery: %d\n%!" (engine.Engine.alive ());
  print_stats stats
    (Rts_obs.Metrics.merge (engine.Engine.metrics ()) (Recovery.metrics report));
  0

(* ---------------- generate ---------------- *)

let generate_cmd dim seed count unit_weights =
  protect @@ fun () ->
  let gen = Generator.create ~dim ~seed ~unit_weights () in
  for _ = 1 to count do
    print_endline (Csv_io.element_to_line (Generator.element gen))
  done;
  0

let genqueries_cmd dim seed count tau =
  protect @@ fun () ->
  let gen = Generator.create ~dim ~seed () in
  for id = 0 to count - 1 do
    print_endline (Csv_io.query_to_line (Generator.query gen ~id ~threshold:tau))
  done;
  0

(* ---------------- record / replay ---------------- *)

let replay_cmd engine_kind dim quiet stats =
  protect @@ fun () ->
  let engine = make_engine engine_kind ~dim in
  let outcome = Replay.replay ~dim engine stdin in
  if not quiet then
    List.iter
      (fun (ordinal, id) -> Printf.printf "ALERT\t%d\t%d\n" ordinal id)
      outcome.Replay.maturities;
  Printf.eprintf "rts-cli: replayed %d elements, %d registrations, %d terminations, %d alerts\n%!"
    outcome.Replay.elements outcome.Replay.registered outcome.Replay.terminated
    (List.length outcome.Replay.maturities);
  print_stats stats (engine.Engine.metrics ());
  0

(* ---------------- demo ---------------- *)

let mode_conv =
  let parse = function
    | "static" -> Ok `Static
    | "stochastic" -> Ok `Stochastic
    | "fixed-load" -> Ok `Fixed_load
    | s -> Error (`Msg (Printf.sprintf "unknown mode %S" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with `Static -> "static" | `Stochastic -> "stochastic" | `Fixed_load -> "fixed-load")
  in
  Arg.conv (parse, print)

let scenario_mode mode n p_ins =
  match mode with
  | `Static -> Scenario.Static
  | `Stochastic -> Scenario.Stochastic { p_ins; horizon = 2 * n / 3 }
  | `Fixed_load -> Scenario.Fixed_load

let record_cmd dim seed m tau n mode p_ins =
  protect @@ fun () ->
  (* Run a paper scenario against the baseline engine, recording the exact
     op stream to stdout for later replay against any engine. *)
  let cfg =
    {
      Scenario.default with
      Scenario.dim;
      seed;
      initial_queries = m;
      tau;
      mode = scenario_mode mode n p_ins;
      max_elements = n;
      chunk = max 64 (n / 64);
    }
  in
  let r =
    Scenario.run cfg (fun ~dim -> Replay.record_to_channel stdout (Baseline_engine.make ~dim))
  in
  Printf.eprintf "rts-cli: recorded %d elements, %d registrations, %d terminations\n%!"
    r.Scenario.elements r.Scenario.registered r.Scenario.terminated;
  0

let demo_cmd engine_kind dim seed m tau n mode p_ins stats shards executor top hot =
  protect @@ fun () ->
  let mode = scenario_mode mode n p_ins in
  if hot <> None && (shards > 1 || executor <> None) then
    fail "--hot requires an unsharded run (the tracker lives in one engine)";
  let cfg =
    {
      Scenario.default with
      Scenario.dim;
      seed;
      initial_queries = m;
      tau;
      mode;
      max_elements = n;
      chunk = max 64 (n / 64);
    }
  in
  let make, close_shards = sharded_factory engine_kind ~shards ~executor in
  (* Scenario owns the engine; keep a handle for post-run --top/--hot. *)
  let built = ref None in
  let make ~dim =
    let e = make ~dim in
    built := Some e;
    e
  in
  let r = Scenario.run cfg make in
  Option.iter (fun e -> print_top e top) !built;
  print_hot hot;
  close_shards ();
  Format.printf "%a@." Scenario.pp_result r;
  Format.printf "trace (elements, alive, us/op):@.";
  Array.iteri
    (fun i tp ->
      if i mod (max 1 (Array.length r.trace / 16)) = 0 then
        Format.printf "  %8d %8d %10.3f@." tp.Scenario.elements_done tp.Scenario.alive
          tp.Scenario.avg_us)
    r.Scenario.trace;
  print_stats stats r.Scenario.final_metrics;
  0

(* ---------------- wiring ---------------- *)

let run_term =
  let queries_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "queries" ] ~docv:"FILE"
          ~doc:"Query CSV file (required unless resuming from --wal state).")
  in
  let closed =
    Arg.(value & flag & info [ "closed" ] ~doc:"Treat query upper bounds as inclusive.")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress per-alert output.") in
  let wal =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"DIR"
          ~doc:
            "Durability directory: append every op to a checksummed write-ahead log and \
             checkpoint periodically. If $(docv) already holds state from a crashed run, \
             recover it and resume.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int Durable.default.Durable.checkpoint_every
      & info [ "checkpoint-every" ] ~docv:"N" ~doc:"Ops between checkpoints (with --wal).")
  in
  let fsync_every =
    Arg.(
      value & opt int Durable.default.Durable.fsync_every
      & info [ "fsync-every" ] ~docv:"N"
          ~doc:"WAL records per fsync (with --wal); >1 trades a wider crash window for \
                throughput.")
  in
  let batch =
    Arg.(
      value & opt int 1
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Ingest stdin elements in batches of $(docv) through the engine's batched \
             path (default 1 = element at a time). Same alerts; alerts are attributed \
             to the last line of their batch.")
  in
  Term.(
    const run_cmd $ engine_arg $ dim_arg $ closed $ queries_file $ quiet $ stats_arg $ wal
    $ checkpoint_every $ fsync_every $ net_faults_arg $ net_seed_arg $ net_sites_arg
    $ net_rto_arg $ net_rto_max_arg $ net_degrade_after_arg $ net_rto_jitter_arg $ batch
    $ shards_arg $ executor_arg $ top_arg $ hot_arg)

let recover_term =
  let wal_dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Durability directory.")
  in
  Term.(const recover_cmd $ engine_arg $ dim_arg $ wal_dir $ stats_arg)

let generate_term =
  let count =
    Arg.(value & opt int 100_000 & info [ "count" ] ~docv:"N" ~doc:"Number of elements.")
  in
  let unit_weights = Arg.(value & flag & info [ "unit-weights" ] ~doc:"All weights 1.") in
  Term.(const generate_cmd $ dim_arg $ seed_arg $ count $ unit_weights)

let genqueries_term =
  let count =
    Arg.(value & opt int 1_000 & info [ "count" ] ~docv:"M" ~doc:"Number of queries.")
  in
  let tau = Arg.(value & opt int 200_000 & info [ "tau" ] ~docv:"TAU" ~doc:"Threshold.") in
  Term.(const genqueries_cmd $ dim_arg $ seed_arg $ count $ tau)

let replay_term =
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress per-alert output.") in
  Term.(const replay_cmd $ engine_arg $ dim_arg $ quiet $ stats_arg)

let demo_term =
  let m = Arg.(value & opt int 10_000 & info [ "m" ] ~docv:"M" ~doc:"Initial queries.") in
  let tau = Arg.(value & opt int 200_000 & info [ "tau" ] ~docv:"TAU" ~doc:"Threshold.") in
  let n = Arg.(value & opt int 30_000 & info [ "n" ] ~docv:"N" ~doc:"Stream length cap.") in
  let mode =
    Arg.(value & opt mode_conv `Static & info [ "mode" ] ~docv:"MODE" ~doc:"static | stochastic | fixed-load.")
  in
  let p_ins =
    Arg.(value & opt float 0.3 & info [ "p-ins" ] ~docv:"P" ~doc:"Stochastic insertion probability.")
  in
  Term.(
    const demo_cmd $ engine_arg $ dim_arg $ seed_arg $ m $ tau $ n $ mode $ p_ins $ stats_arg
    $ shards_arg $ executor_arg $ top_arg $ hot_arg)

let record_term =
  let m = Arg.(value & opt int 1_000 & info [ "m" ] ~docv:"M" ~doc:"Initial queries.") in
  let tau = Arg.(value & opt int 20_000 & info [ "tau" ] ~docv:"TAU" ~doc:"Threshold.") in
  let n = Arg.(value & opt int 10_000 & info [ "n" ] ~docv:"N" ~doc:"Stream length cap.") in
  let mode =
    Arg.(value & opt mode_conv `Static & info [ "mode" ] ~docv:"MODE" ~doc:"static | stochastic | fixed-load.")
  in
  let p_ins =
    Arg.(value & opt float 0.3 & info [ "p-ins" ] ~docv:"P" ~doc:"Stochastic insertion probability.")
  in
  Term.(const record_cmd $ dim_arg $ seed_arg $ m $ tau $ n $ mode $ p_ins)

let () =
  let info =
    Cmd.info "rts-cli" ~doc:"Range thresholding on streams: run triggers over CSV streams."
  in
  let cmds =
    [
      Cmd.v (Cmd.info "run" ~doc:"Register queries from a file; stream elements from stdin.") run_term;
      Cmd.v
        (Cmd.info "recover"
           ~doc:
             "Restore an engine from a --wal directory (newest valid checkpoint + WAL suffix) \
              and print the recovery report.")
        recover_term;
      Cmd.v (Cmd.info "generate" ~doc:"Emit a synthetic element stream (paper Section 8).") generate_term;
      Cmd.v (Cmd.info "genqueries" ~doc:"Emit a synthetic query file (paper Section 8).") genqueries_term;
      Cmd.v (Cmd.info "demo" ~doc:"Run a paper scenario end to end and print its trace.") demo_term;
      Cmd.v (Cmd.info "record" ~doc:"Record a scenario's exact op stream (R/T/E lines) to stdout.") record_term;
      Cmd.v (Cmd.info "replay" ~doc:"Replay a recorded op stream from stdin against an engine.") replay_term;
    ]
  in
  exit (Cmd.eval' (Cmd.group info cmds))
