(* rts-serve: supervised multi-tenant serving daemon over the RTS
   engines, plus its combined-fault soak driver.

     rts-serve soak                      # combined crash+net fault soak
     rts-serve soak --tenants 16 --queries 65536 --elements 200000
     rts-serve failover-soak --scenario wedge   # replicated serving + failover
     rts-serve session --wal state/      # one-tenant frame loop on stdin

   The session speaks the wire protocol one frame per line:

     op,main,R,1,500,10,90          # register query 1
     op,main,E,42,100               # feed one element
     batch,main,E,42,100;E,17,100   # feed a batch
     sub,main                       # subscribe to maturity pushes
     stats                          # metric snapshot
     shutdown                       # drain, sync, exit                  *)

open Rts_core
open Cmdliner
module Frame = Rts_serve.Frame
module Server = Rts_serve.Server
module Client = Rts_serve.Client
module Hub = Rts_serve.Hub
module Soak = Rts_serve.Soak
module Cluster = Rts_replica.Cluster
module Rsoak = Rts_replica.Rsoak
module Io = Rts_resilience.Io

let fail fmt = Printf.ksprintf (fun s -> raise (Failure s)) fmt

let protect f =
  let err code fmt =
    Printf.ksprintf
      (fun s ->
        Printf.eprintf "rts-serve: %s\n%!" s;
        code)
      fmt
  in
  try f () with
  | Failure msg -> err 1 "%s" msg
  | Invalid_argument msg -> err 5 "invalid argument: %s" msg
  | Sys_error msg -> err 7 "%s" msg

let engine_conv =
  let parse = function
    | "dt" -> Ok `Dt
    | "dt-eager" -> Ok `Dt_eager
    | "baseline" -> Ok `Baseline
    | "interval-tree" -> Ok `Interval_tree
    | "seg-intv" -> Ok `Seg_intv
    | "r-tree" -> Ok `Rtree
    | s -> Error (`Msg (Printf.sprintf "unknown engine %S" s))
  in
  let print ppf e =
    Format.pp_print_string ppf
      (match e with
      | `Dt -> "dt"
      | `Dt_eager -> "dt-eager"
      | `Baseline -> "baseline"
      | `Interval_tree -> "interval-tree"
      | `Seg_intv -> "seg-intv"
      | `Rtree -> "r-tree")
  in
  Arg.conv (parse, print)

let make_engine kind ~dim =
  match kind with
  | `Dt -> Dt_engine.make ~dim
  | `Dt_eager -> Dt_engine.make_eager ~dim
  | `Baseline -> Baseline_engine.make ~dim
  | `Interval_tree ->
      if dim <> 1 then fail "interval-tree engine is 1D only";
      Stab1d_engine.make ()
  | `Seg_intv ->
      if dim <> 2 then fail "seg-intv engine is 2D only";
      Stab2d_engine.make ()
  | `Rtree -> Rtree_engine.make ~dim

let engine_arg =
  let doc = "Engine behind every tenant: dt, dt-eager, baseline, interval-tree, seg-intv, r-tree." in
  Arg.(value & opt engine_conv `Dt & info [ "engine" ] ~docv:"ENGINE" ~doc)

let dim_arg =
  let doc = "Dimensionality of the data space." in
  Arg.(value & opt int 2 & info [ "dim" ] ~docv:"D" ~doc)

let seed_arg =
  let doc = "Master PRNG seed; the whole soak replays from it." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let net_fault_conv =
  let parse s =
    match Rts_net.Net_fault.parse s with Ok sp -> Ok sp | Error m -> Error (`Msg m)
  in
  let print ppf sp = Format.pp_print_string ppf (Rts_net.Net_fault.to_string sp) in
  Arg.conv (parse, print)

let reliable_config ~rto ~rto_max ~degrade_after ~jitter =
  if rto < 1 || rto_max < rto || degrade_after < 1 then
    fail "--net-rto/--net-rto-max/--net-degrade-after must satisfy 1 <= rto <= rto-max";
  if jitter < 0. then fail "--net-rto-jitter must be >= 0";
  { Rts_net.Reliable.rto; rto_max; degrade_after; jitter }

let net_rto_arg =
  let doc = "Initial retransmission timeout of the reliability layer (virtual ticks)." in
  Arg.(
    value
    & opt int Rts_net.Reliable.default.Rts_net.Reliable.rto
    & info [ "net-rto" ] ~docv:"TICKS" ~doc)

let net_rto_max_arg =
  let doc = "Retransmission backoff cap." in
  Arg.(
    value
    & opt int Rts_net.Reliable.default.Rts_net.Reliable.rto_max
    & info [ "net-rto-max" ] ~docv:"TICKS" ~doc)

let net_degrade_after_arg =
  let doc = "Per-link loss budget before the transport flags the site degraded." in
  Arg.(
    value
    & opt int Rts_net.Reliable.default.Rts_net.Reliable.degrade_after
    & info [ "net-degrade-after" ] ~docv:"N" ~doc)

let net_rto_jitter_arg =
  let doc =
    "Deterministic retransmission-backoff jitter: each retry delay d is drawn from [d, \
     d*(1+$(docv))] using the seeded PRNG so links do not retry in lockstep after a \
     partition heals. 0 disables jitter."
  in
  Arg.(value & opt float 0.0 & info [ "net-rto-jitter" ] ~docv:"FRAC" ~doc)

(* ---------------- soak ---------------- *)

let soak_cmd engine_kind dim seed tenants queries elements batch threshold churn
    faulty_incarnations crash_every wedges net_faults net_rto net_rto_max net_degrade_after
    net_rto_jitter queue_capacity drain_per_tick fsync_every checkpoint_every wal_lag_limit
    query_quota shards executor quiet =
  protect @@ fun () ->
  let executor =
    match executor with
    | None -> None
    | Some "seq" -> Some Rts_shard.Executor.Seq
    | Some "domains" -> Some Rts_shard.Executor.Domains
    | Some s -> fail "unknown --executor %S (seq | domains)" s
  in
  let cfg =
    {
      Soak.tenants;
      queries;
      elements;
      batch;
      threshold;
      churn;
      dim;
      seed;
      faulty_incarnations;
      crash_every;
      wedges;
      net = net_faults;
      reliable =
        reliable_config ~rto:net_rto ~rto_max:net_rto_max ~degrade_after:net_degrade_after
          ~jitter:net_rto_jitter;
      server =
        {
          Server.default with
          Server.dim;
          queue_capacity;
          drain_per_tick;
          wal_lag_limit;
          query_quota;
          shards;
          executor;
          durable =
            { Rts_resilience.Durable.default with fsync_every; checkpoint_every };
        };
    }
  in
  let progress = if quiet then fun _ -> () else fun s -> Printf.eprintf "rts-serve: %s\n%!" s in
  let report = Soak.run ~progress ~make:(fun ~dim -> make_engine engine_kind ~dim) cfg in
  Format.printf "%a@." Soak.pp_report report;
  if report.Soak.ok then 0 else 1

let soak_term =
  let tenants = Arg.(value & opt int 3 & info [ "tenants" ] ~docv:"N" ~doc:"Tenant count.") in
  let queries =
    Arg.(value & opt int 40 & info [ "queries" ] ~docv:"M" ~doc:"Initial registrations per tenant.")
  in
  let elements =
    Arg.(value & opt int 600 & info [ "elements" ] ~docv:"N" ~doc:"Stream elements per tenant.")
  in
  let batch =
    Arg.(value & opt int 8 & info [ "batch" ] ~docv:"B" ~doc:"Elements per batch frame.")
  in
  let threshold =
    Arg.(value & opt int 2500 & info [ "threshold" ] ~docv:"TAU" ~doc:"Max maturity threshold.")
  in
  let churn =
    Arg.(
      value & opt float 0.15
      & info [ "churn" ] ~docv:"P" ~doc:"Per-chunk terminate+register probability.")
  in
  let faulty =
    Arg.(
      value & opt int 4
      & info [ "faulty-incarnations" ] ~docv:"K"
          ~doc:"Fault-wrapped storage lives per tenant (0 = clean disks).")
  in
  let crash_every =
    Arg.(
      value & opt int 150
      & info [ "crash-every" ] ~docv:"N" ~doc:"Mean WAL appends between drawn crash points.")
  in
  let wedges =
    Arg.(value & opt int 2 & info [ "wedges" ] ~docv:"N" ~doc:"Wedge injections during the run.")
  in
  let net_faults =
    Arg.(
      value
      & opt net_fault_conv Soak.default.Soak.net
      & info [ "net-faults" ] ~docv:"SPEC"
          ~doc:"Network fault spec on every client link (e.g. 'drop=0.2,dup=0.1,reorder=0.3').")
  in
  let queue_capacity =
    Arg.(
      value & opt int 16
      & info [ "queue-capacity" ] ~docv:"N" ~doc:"Per-tenant ingest ring capacity.")
  in
  let drain =
    Arg.(
      value & opt int 6
      & info [ "drain-per-tick" ] ~docv:"N" ~doc:"Ops applied per drain tick (pacing).")
  in
  let fsync_every =
    Arg.(value & opt int 7 & info [ "fsync-every" ] ~docv:"N" ~doc:"WAL fsync batching.")
  in
  let checkpoint_every =
    Arg.(value & opt int 97 & info [ "checkpoint-every" ] ~docv:"N" ~doc:"Checkpoint cadence.")
  in
  let wal_lag =
    Arg.(
      value & opt int 512
      & info [ "wal-lag-limit" ] ~docv:"N" ~doc:"Admission limit on not-yet-durable ops.")
  in
  let quota =
    Arg.(
      value & opt int 4096
      & info [ "query-quota" ] ~docv:"N" ~doc:"Per-tenant alive-query quota.")
  in
  let shards =
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"K" ~doc:"Shards per tenant engine.")
  in
  let executor =
    Arg.(
      value
      & opt (some string) None
      & info [ "executor" ] ~docv:"KIND" ~doc:"Shard executor: seq or domains.")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress progress lines.") in
  Term.(
    const soak_cmd $ engine_arg $ dim_arg $ seed_arg $ tenants $ queries $ elements $ batch
    $ threshold $ churn $ faulty $ crash_every $ wedges $ net_faults $ net_rto_arg
    $ net_rto_max_arg $ net_degrade_after_arg $ net_rto_jitter_arg $ queue_capacity $ drain
    $ fsync_every $ checkpoint_every $ wal_lag $ quota $ shards $ executor $ quiet)

let soak_doc = "Combined-fault soak: crash+short-write+ENOSPC storage faults and network faults \
                under multi-tenant churn, verified bit-identical against the WAL oracle."

(* ---------------- failover-soak ---------------- *)

let failover_cmd engine_kind dim seed tenants queries elements batch threshold churn
    faulty_incarnations crash_every net_faults net_rto net_rto_max net_degrade_after
    net_rto_jitter replicas scenario kill_at wedge_at wedge_duration segment_records
    queue_capacity drain_per_tick fsync_every checkpoint_every hb_every hb_timeout quiet =
  protect @@ fun () ->
  let scenario =
    match scenario with
    | "clean" -> Rsoak.Clean
    | "kill" -> Rsoak.Kill kill_at
    | "wedge" -> Rsoak.Wedge { at = wedge_at; duration = wedge_duration }
    | s -> fail "unknown --scenario %S (clean | kill | wedge)" s
  in
  if replicas < 0 then fail "--replicas must be >= 0";
  let cfg =
    {
      Rsoak.tenants;
      queries;
      elements;
      batch;
      threshold;
      churn;
      dim;
      seed;
      faulty_incarnations;
      crash_every;
      scenario;
      cluster =
        {
          Rsoak.default.Rsoak.cluster with
          Cluster.serving = replicas + 1;
          net = net_faults;
          hb_every;
          hb_timeout;
          reliable =
            reliable_config ~rto:net_rto ~rto_max:net_rto_max ~degrade_after:net_degrade_after
              ~jitter:net_rto_jitter;
          server =
            {
              Server.default with
              Server.dim;
              queue_capacity;
              drain_per_tick;
              segment_records;
              durable =
                { Rts_resilience.Durable.default with fsync_every; checkpoint_every };
            };
        };
    }
  in
  let progress = if quiet then fun _ -> () else fun s -> Printf.eprintf "rts-serve: %s\n%!" s in
  let report = Rsoak.run ~progress ~make:(fun ~dim -> make_engine engine_kind ~dim) cfg in
  Format.printf "%a@." Rsoak.pp report;
  if report.Rsoak.ok then 0 else 1

let failover_term =
  let tenants = Arg.(value & opt int 2 & info [ "tenants" ] ~docv:"N" ~doc:"Tenant count.") in
  let queries =
    Arg.(value & opt int 30 & info [ "queries" ] ~docv:"M" ~doc:"Initial registrations per tenant.")
  in
  let elements =
    Arg.(value & opt int 850 & info [ "elements" ] ~docv:"N" ~doc:"Stream elements per tenant.")
  in
  let batch =
    Arg.(value & opt int 8 & info [ "batch" ] ~docv:"B" ~doc:"Elements per batch frame.")
  in
  let threshold =
    Arg.(value & opt int 2500 & info [ "threshold" ] ~docv:"TAU" ~doc:"Max maturity threshold.")
  in
  let churn =
    Arg.(
      value & opt float 0.12
      & info [ "churn" ] ~docv:"P" ~doc:"Per-chunk terminate+register probability.")
  in
  let faulty =
    Arg.(
      value & opt int 2
      & info [ "faulty-incarnations" ] ~docv:"K"
          ~doc:"Fault-wrapped storage lives per (node, tenant) (0 = clean disks).")
  in
  let crash_every =
    Arg.(
      value & opt int 180
      & info [ "crash-every" ] ~docv:"N" ~doc:"Mean WAL appends between drawn crash points.")
  in
  let net_faults =
    Arg.(
      value
      & opt net_fault_conv Rsoak.default.Rsoak.cluster.Cluster.net
      & info [ "net-faults" ] ~docv:"SPEC"
          ~doc:"Network fault spec on every link (e.g. 'drop=0.08,dup=0.04,reorder=0.15').")
  in
  let replicas =
    Arg.(
      value & opt int 2
      & info [ "replicas" ] ~docv:"N"
          ~doc:"Replica count; the cluster serves on N+1 nodes (node 0 is the initial primary).")
  in
  let scenario =
    Arg.(
      value & opt string "kill"
      & info [ "scenario" ] ~docv:"KIND"
          ~doc:
            "Fault scripted against the initial primary: clean (none), kill (fail-stop at \
             --kill-at), wedge (stall over [--wedge-at, --wedge-at + --wedge-duration], then \
             wake the zombie into the fenced view).")
  in
  let kill_at =
    Arg.(value & opt int 120 & info [ "kill-at" ] ~docv:"TICK" ~doc:"Kill tick (scenario=kill).")
  in
  let wedge_at =
    Arg.(value & opt int 120 & info [ "wedge-at" ] ~docv:"TICK" ~doc:"Wedge tick (scenario=wedge).")
  in
  let wedge_duration =
    Arg.(
      value & opt int 300
      & info [ "wedge-duration" ] ~docv:"TICKS" ~doc:"Wedge length (scenario=wedge).")
  in
  let segment_records =
    Arg.(
      value & opt int 48
      & info [ "segment-records" ] ~docv:"N"
          ~doc:"WAL segment rotation threshold; 0 disables rotation (and pruning).")
  in
  let queue_capacity =
    Arg.(
      value & opt int 16
      & info [ "queue-capacity" ] ~docv:"N" ~doc:"Per-tenant ingest ring capacity.")
  in
  let drain =
    Arg.(
      value & opt int 6
      & info [ "drain-per-tick" ] ~docv:"N" ~doc:"Ops applied per drain tick (pacing).")
  in
  let fsync_every =
    Arg.(value & opt int 5 & info [ "fsync-every" ] ~docv:"N" ~doc:"WAL fsync batching.")
  in
  let checkpoint_every =
    Arg.(value & opt int 67 & info [ "checkpoint-every" ] ~docv:"N" ~doc:"Checkpoint cadence.")
  in
  let hb_every =
    Arg.(
      value
      & opt int Cluster.default.Cluster.hb_every
      & info [ "hb-every" ] ~docv:"TICKS" ~doc:"Primary heartbeat cadence.")
  in
  let hb_timeout =
    Arg.(
      value
      & opt int Cluster.default.Cluster.hb_timeout
      & info [ "hb-timeout" ] ~docv:"TICKS"
          ~doc:"Controller: heartbeat silence before starting a failover election.")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress progress lines.") in
  Term.(
    const failover_cmd $ engine_arg $ dim_arg $ seed_arg $ tenants $ queries $ elements $ batch
    $ threshold $ churn $ faulty $ crash_every $ net_faults $ net_rto_arg $ net_rto_max_arg
    $ net_degrade_after_arg $ net_rto_jitter_arg $ replicas $ scenario $ kill_at $ wedge_at
    $ wedge_duration $ segment_records $ queue_capacity $ drain $ fsync_every $ checkpoint_every
    $ hb_every $ hb_timeout $ quiet)

let failover_doc =
  "Replica-topology soak: primary/replica WAL shipping over a lossy fabric with storage faults \
   on every node, a scripted primary kill or wedge, fenced automatic failover, and \
   bit-identical verification of the promoted node's (archive ++ chain) oracle against its \
   maturity log and the subscriber's merged push stream."

(* ---------------- session ---------------- *)

let session_cmd engine_kind dim wal_dir role net_rto net_rto_max net_degrade_after
    net_rto_jitter =
  protect @@ fun () ->
  let role =
    match role with
    | "primary" -> Server.Primary
    | "replica" -> Server.Replica
    | s -> fail "unknown --role %S (primary | replica)" s
  in
  let reliable =
    reliable_config ~rto:net_rto ~rto_max:net_rto_max ~degrade_after:net_degrade_after
      ~jitter:net_rto_jitter
  in
  let provider ~tenant ~incarnation:_ =
    match wal_dir with
    | Some root -> Io.fs_dir (Filename.concat root tenant)
    | None -> Io.mem_dir ()
  in
  (* In-memory dirs cannot survive restarts, so each incarnation of a
     memory-backed tenant starts empty — fine for a live session, which
     has no fault injection. With --wal, recovery is real: kill the
     session and re-run it to resume every tenant from disk. *)
  let hub =
    Hub.create
      ~server_config:{ Server.default with Server.dim }
      ~reliable ~clients:1
      ~make:(fun ~dim -> make_engine engine_kind ~dim)
      ~provider ()
  in
  Server.set_role (Hub.server hub) role;
  let client = Hub.client hub 0 in
  let print_replies () =
    List.iter
      (fun f -> Printf.printf "%s\n%!" (Frame.server_to_string f))
      (Client.take_transcript client)
  in
  Printf.eprintf
    "rts-serve: session ready (engine=%s dim=%d%s); one frame per line, 'shutdown' to exit\n%!"
    (match engine_kind with `Dt -> "dt" | _ -> "custom")
    dim
    (match wal_dir with Some d -> ", wal=" ^ d | None -> ", in-memory");
  (try
     while not (Client.got_bye client) do
       let line = input_line stdin in
       if String.trim line <> "" then begin
         match Frame.client_of_string ~dim line with
         | Error msg -> Printf.printf "rejected,%S\n%!" msg
         | Ok frame ->
             Client.enqueue client frame;
             Hub.run hub;
             print_replies ()
       end
     done
   with End_of_file ->
     if not (Server.is_shutdown (Hub.server hub)) then begin
       Server.shutdown (Hub.server hub);
       Hub.run hub;
       print_replies ()
     end);
  0

let session_term =
  let wal =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"DIR"
          ~doc:
            "Root directory for per-tenant durable state (subdirectory per tenant). \
             Re-running with the same root resumes every tenant from its WAL.")
  in
  let role =
    Arg.(
      value & opt string "primary"
      & info [ "role" ] ~docv:"ROLE"
          ~doc:
            "Serving role: primary accepts client traffic; replica answers data frames with \
             retry-after (clients retarget on the next view change) and only applies ops \
             shipped by a primary, as in the failover harness.")
  in
  Term.(
    const session_cmd $ engine_arg $ dim_arg $ wal $ role $ net_rto_arg $ net_rto_max_arg
    $ net_degrade_after_arg $ net_rto_jitter_arg)

let session_doc = "Interactive single-process serving session: wire-protocol frames on stdin, \
                   replies and maturity pushes on stdout."

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info_main =
    Cmd.info "rts-serve" ~version:"%%VERSION%%"
      ~doc:"Supervised multi-tenant range-thresholding daemon and its fault soak harness"
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default info_main
          [
            Cmd.v (Cmd.info "soak" ~doc:soak_doc) soak_term;
            Cmd.v (Cmd.info "failover-soak" ~doc:failover_doc) failover_term;
            Cmd.v (Cmd.info "session" ~doc:session_doc) session_term;
          ]))
