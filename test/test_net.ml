(* Networked distributed tracking: the headline robustness property of
   the transport layer. For every fault schedule that eventually delivers
   (drop < 1, partitions transient), the networked protocol must mature
   on exactly the same increment ordinal as the zero-fault run, must
   never be early (estimate <= truth throughout), and its useful message
   traffic must stay within the O(h log tau) bound. Degraded links trade
   the bound for per-update traffic but keep never-early detection.

   Pinned seeds come from RTS_NET_SEEDS (comma-separated); `make
   check-net` pins them for reproducible CI sweeps. *)

module Dt = Rts_dt.Distributed_tracking
module Nt = Rts_dt.Net_tracking
module Envelope = Rts_net.Envelope
module Net_fault = Rts_net.Net_fault
module Vclock = Rts_net.Vclock
module Reliable = Rts_net.Reliable
module Net_shadow = Rts_netcheck.Net_shadow
module Engine = Rts_core.Engine
module Prng = Rts_util.Prng
module Metrics = Rts_obs.Metrics

let seeds =
  match Sys.getenv_opt "RTS_NET_SEEDS" with
  | None | Some "" -> [ 7; 19; 101 ]
  | Some s -> String.split_on_char ',' s |> List.map String.trim |> List.map int_of_string

let nt_config ?(faults = Net_fault.none) ?(seed = 1) ?(reliable = Reliable.default) () =
  { Nt.default with Nt.faults; seed; reliable }

(* Drive classic and networked instances in lockstep over the same
   schedule; check the maturity ordinal and the never-early invariant at
   every step. Returns (classic, networked, ordinal). *)
let lockstep ~h ~tau ~config schedule =
  let classic = Dt.create ~h ~tau in
  let net = Nt.create ~config ~h ~tau () in
  let ordinal = ref None in
  List.iteri
    (fun i (site, by) ->
      if !ordinal = None then begin
        let m_classic = Dt.increment classic ~site ~by in
        let m_net = Nt.increment net ~site ~by in
        Alcotest.(check bool)
          (Printf.sprintf "estimate <= total at step %d" (i + 1))
          true
          (Nt.estimate net <= Nt.total net);
        Alcotest.(check bool)
          (Printf.sprintf "same maturity verdict at step %d (classic=%b net=%b)" (i + 1)
             m_classic m_net)
          true (m_classic = m_net);
        if m_classic then ordinal := Some (i + 1)
      end)
    schedule;
  (classic, net, !ordinal)

let random_schedule ~rng ~h ~n ~max_by =
  List.init n (fun _ -> (Prng.int rng h, 1 + Prng.int rng max_by))

(* ---- zero-fault parity: the lossless network reproduces the classic
   run exactly — ordinal, message count, and accounting identity. ---- *)

let test_zero_fault_parity () =
  List.iter
    (fun (h, tau, seed) ->
      let rng = Prng.create ~seed in
      let schedule = random_schedule ~rng ~h ~n:(tau + 10) ~max_by:3 in
      let classic, net, ordinal =
        lockstep ~h ~tau ~config:(nt_config ()) schedule
      in
      Alcotest.(check bool) "matured" true (ordinal <> None);
      (* Lossless: every unique send is delivered, nothing is stale, and
         the wire traffic equals the classic run's message count. *)
      Alcotest.(check int)
        (Printf.sprintf "deliveries = sends (h=%d tau=%d)" h tau)
        (Nt.messages net) (Nt.deliveries net);
      Alcotest.(check int) "no stale traffic" 0 (Nt.stale net);
      Alcotest.(check int)
        (Printf.sprintf "useful messages = classic messages (h=%d tau=%d)" h tau)
        (Dt.messages classic) (Nt.useful_messages net);
      Alcotest.(check int) "same rounds" (Dt.rounds classic) (Nt.rounds net);
      Alcotest.(check int) "no retransmits" 0 (Nt.retransmits net))
    [ (1, 37, 1); (3, 200, 2); (4, 997, 3); (8, 5_000, 4); (16, 20_000, 5) ]

(* ---- headline property: fault schedules that eventually deliver give
   the exact zero-fault maturity ordinal. ---- *)

let fault_spec_gen =
  QCheck.Gen.(
    let* drop = float_bound_inclusive 0.5 in
    let* dup = float_bound_inclusive 0.3 in
    let* reorder = float_bound_inclusive 0.5 in
    let* dmin = int_range 1 3 in
    let* dspan = int_range 0 4 in
    let* spread = int_range 1 16 in
    return
      {
        Net_fault.none with
        Net_fault.drop;
        duplicate = dup;
        reorder;
        delay_min = dmin;
        delay_max = dmin + dspan;
        reorder_spread = spread;
      })

let prop_fault_equivalence =
  QCheck.Test.make ~count:(Qcheck_env.count 60)
    ~name:"faulty run = zero-fault run (maturity ordinal, useful messages, bound)"
    QCheck.(
      pair
        (make ~print:(fun s -> Net_fault.to_string s) fault_spec_gen)
        (triple (int_range 1 8) (int_range 1 2_000) small_int))
    (fun (faults, (h, tau, seed)) ->
      let rng = Prng.create ~seed in
      let schedule = random_schedule ~rng ~h ~n:(tau + 10) ~max_by:5 in
      let classic = Dt.create ~h ~tau in
      let net =
        Nt.create
          ~config:
            (nt_config ~faults ~seed:(seed + 1)
               (* huge budget: we are testing equivalence, not degradation *)
               ~reliable:{ Reliable.default with degrade_after = max_int / 2 }
               ())
          ~h ~tau ()
      in
      let ok = ref true in
      let mature = ref false in
      List.iter
        (fun (site, by) ->
          if not !mature then begin
            let a = Dt.increment classic ~site ~by in
            let b = Nt.increment net ~site ~by in
            if a <> b then ok := false;
            if Nt.estimate net > Nt.total net then ok := false;
            if a then mature := true
          end)
        schedule;
      !ok && !mature
      && Nt.degraded_sites net = 0
      && Nt.useful_messages net = Dt.messages classic
      && Nt.useful_messages net <= Dt.message_bound ~h ~tau
      && Nt.deliveries net = Nt.messages net)

(* ---- pinned-seed exhaustive sweep: drop the first transmissions of
   every envelope kind and re-check equivalence. Retransmission must
   absorb each loss. ---- *)

let test_kind_drop_sweep () =
  List.iter
    (fun seed ->
      List.iter
        (fun kind ->
          List.iter
            (fun n ->
              let h = 5 and tau = 600 in
              let faults = { Net_fault.none with Net_fault.kind_drop = [ (kind, n) ] } in
              let rng = Prng.create ~seed in
              let schedule = random_schedule ~rng ~h ~n:(tau + 10) ~max_by:4 in
              let _, net, ordinal =
                lockstep ~h ~tau
                  ~config:
                    (nt_config ~faults ~seed
                       ~reliable:{ Reliable.default with degrade_after = max_int / 2 }
                       ())
                  schedule
              in
              Alcotest.(check bool)
                (Printf.sprintf "matured (kind=%s n=%d seed=%d)" kind n seed)
                true (ordinal <> None);
              (* The dropped transmissions were retransmitted. Acks are
                 raw (a lost ack just causes a duplicate), and collect
                 requests only exist after degradation — that kind's drop
                 coverage lives in the degradation test. *)
              if List.mem kind [ "slack"; "signal"; "round_end"; "report" ] then
                Alcotest.(check bool)
                  (Printf.sprintf "retransmits >= 1 (kind=%s n=%d)" kind n)
                  true
                  (Nt.retransmits net >= 1))
            [ 1; 3 ])
        Envelope.kinds)
    seeds

(* ---- degradation: a link over its loss budget switches to direct
   forwarding; correctness (never-early + eventual detection) holds and
   the accounting shows the degraded site. ---- *)

let test_degradation () =
  List.iter
    (fun seed ->
      let h = 4 and tau = 2_000 in
      let faults =
        {
          Net_fault.none with
          Net_fault.flaky = [ (0, 0.9) ];
          delay_max = 3;
          (* Also drop the first post-degradation collect requests: the
             exhaustive kind sweep's coverage for the "collect" kind. *)
          kind_drop = [ ("collect", 2) ];
        }
      in
      let net =
        Nt.create
          ~config:(nt_config ~faults ~seed ~reliable:{ Reliable.default with degrade_after = 8 } ())
          ~h ~tau ()
      in
      let truth = ref 0 in
      let rng = Prng.create ~seed in
      let matured_at = ref None in
      let i = ref 0 in
      while !matured_at = None && !i < 3 * tau do
        incr i;
        let site = Prng.int rng h in
        let by = 1 + Prng.int rng 3 in
        truth := !truth + by;
        let m = Nt.increment net ~site ~by in
        (* Never early: no maturity before the true crossing. *)
        if m && !truth < tau then Alcotest.fail "matured before threshold";
        Alcotest.(check bool) "estimate <= total" true (Nt.estimate net <= Nt.total net);
        if m then matured_at := Some !i
      done;
      Alcotest.(check bool) (Printf.sprintf "matured (seed=%d)" seed) true (!matured_at <> None);
      Alcotest.(check bool) "site 0 degraded" true (Nt.is_degraded net 0);
      Alcotest.(check bool) "degraded count positive" true (Nt.degraded_sites net > 0);
      let snap = Nt.metrics net in
      Alcotest.(check bool) "net_degraded_sites metric > 0" true
        (match Metrics.get snap "net_degraded_sites" with
        | Some (Metrics.Gauge g) -> g > 0.
        | _ -> false))
    seeds

(* ---- partitions: a transient partition heals and the run still
   matches the zero-fault ordinal. ---- *)

let test_partition_heals () =
  List.iter
    (fun seed ->
      let h = 4 and tau = 800 in
      let faults =
        {
          Net_fault.none with
          Net_fault.partitions = [ (1, 5, 400); (2, 200, 700) ];
          delay_max = 2;
        }
      in
      let rng = Prng.create ~seed in
      let schedule = random_schedule ~rng ~h ~n:(tau + 10) ~max_by:3 in
      let _, _, ordinal =
        lockstep ~h ~tau
          ~config:
            (nt_config ~faults ~seed
               ~reliable:{ Reliable.default with degrade_after = max_int / 2 }
               ())
          schedule
      in
      Alcotest.(check bool) (Printf.sprintf "matured (seed=%d)" seed) true (ordinal <> None))
    seeds

(* ---- fault-spec parser ---- *)

let test_fault_parse () =
  (match Net_fault.parse "drop=0.2,dup=0.1,reorder=0.3,delay=1-4,spread=12,flaky=0:0.5,partition=2@10-500,kdrop=signal:2" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok sp ->
      Alcotest.(check (float 1e-9)) "drop" 0.2 sp.Net_fault.drop;
      Alcotest.(check (float 1e-9)) "dup" 0.1 sp.Net_fault.duplicate;
      Alcotest.(check int) "delay_min" 1 sp.Net_fault.delay_min;
      Alcotest.(check int) "delay_max" 4 sp.Net_fault.delay_max;
      Alcotest.(check int) "spread" 12 sp.Net_fault.reorder_spread;
      Alcotest.(check bool) "flaky" true (sp.Net_fault.flaky = [ (0, 0.5) ]);
      Alcotest.(check bool) "partition" true (sp.Net_fault.partitions = [ (2, 10, 500) ]);
      Alcotest.(check bool) "kdrop" true (sp.Net_fault.kind_drop = [ ("signal", 2) ]);
      (* Round-trip through the canonical rendering. *)
      (match Net_fault.parse (Net_fault.to_string sp) with
      | Ok sp' -> Alcotest.(check bool) "round-trip" true (sp = sp')
      | Error e -> Alcotest.failf "round-trip failed: %s" e));
  (match Net_fault.parse "" with
  | Ok sp -> Alcotest.(check bool) "empty = none" true (sp = Net_fault.none)
  | Error e -> Alcotest.failf "empty: %s" e);
  List.iter
    (fun bad ->
      match Net_fault.parse bad with
      | Ok _ -> Alcotest.failf "accepted invalid spec %S" bad
      | Error _ -> ())
    [
      "drop=1.0" (* loss must stay < 1 *);
      "drop=-0.1";
      "delay=0-4" (* latency >= 1 *);
      "delay=4-1";
      "partition=2" (* partitions must heal *);
      "flaky=0:1.5";
      "kdrop=bogus:1" (* unknown envelope kind *);
      "nonsense=1";
    ]

(* ---- deterministic replay: same spec + seed => identical trajectory;
   different seed => (almost surely) different fault pattern, same
   ordinal. ---- *)

let test_deterministic_replay () =
  let h = 4 and tau = 500 in
  let faults =
    { Net_fault.none with Net_fault.drop = 0.3; duplicate = 0.2; reorder = 0.3; delay_max = 4 }
  in
  let run seed =
    let rng = Prng.create ~seed:99 in
    let schedule = random_schedule ~rng ~h ~n:(tau + 10) ~max_by:3 in
    let net = Nt.create ~config:(nt_config ~faults ~seed ()) ~h ~tau () in
    let ordinal = ref None in
    List.iteri
      (fun i (site, by) ->
        if !ordinal = None && Nt.increment net ~site ~by then ordinal := Some (i + 1))
      schedule;
    (!ordinal, Nt.messages net, Nt.deliveries net, Nt.retransmits net, Nt.stale net)
  in
  let a = run 5 and b = run 5 and c = run 6 in
  Alcotest.(check bool) "same seed, identical trajectory" true (a = b);
  let ord_of (o, _, _, _, _) = o in
  Alcotest.(check bool) "different seed, same ordinal" true (ord_of a = ord_of c)

(* ---- three engines under one faulty shadow: identical maturity logs,
   all bit-identical to the zero-fault run. ---- *)

let test_three_engine_shadow () =
  let module Types = Rts_core.Types in
  let module Generator = Rts_workload.Generator in
  let dim = 1 in
  let engines : (string * (unit -> Engine.t)) list =
    [
      ("dt", fun () -> Rts_core.Dt_engine.make ~dim);
      ("baseline", fun () -> Rts_core.Baseline_engine.make ~dim);
      ("interval-tree", fun () -> Rts_core.Stab1d_engine.make ());
    ]
  in
  let specs =
    [
      Net_fault.none;
      { Net_fault.none with Net_fault.drop = 0.25; duplicate = 0.15; reorder = 0.3; delay_max = 4 };
    ]
  in
  let run spec (name, make) =
    let gen = Generator.create ~dim ~seed:77 () in
    let shadow =
      Net_shadow.create
        ~config:{ Net_shadow.default with Net_shadow.faults = spec; seed = 13; sites = 3 }
        ~dim ()
    in
    let engine = Net_shadow.wrap shadow (make ()) in
    let queries = List.init 30 (fun id -> Generator.query gen ~id ~threshold:400) in
    engine.Engine.register_batch queries;
    let log = ref [] in
    for i = 1 to 1_200 do
      let matured = engine.Engine.process (Generator.element gen) in
      List.iter (fun id -> log := (i, id) :: !log) matured
    done;
    Alcotest.(check int) (name ^ ": no mismatches") 0 (Net_shadow.mismatches shadow);
    Alcotest.(check bool) (name ^ ": never early") true (Net_shadow.never_early_ok shadow);
    List.rev !log
  in
  (* All engines, all specs: one identical maturity log. *)
  let reference = run (List.hd specs) (List.hd engines) in
  Alcotest.(check bool) "reference log nonempty" true (reference <> []);
  List.iter
    (fun spec ->
      List.iter
        (fun engine ->
          let log = run spec engine in
          Alcotest.(check bool)
            (Printf.sprintf "%s log = zero-fault dt log" (fst engine))
            true (log = reference))
        engines)
    specs

(* ---- accounting identity + metrics surface ---- *)

let test_metrics_surface () =
  let faults = { Net_fault.none with Net_fault.drop = 0.2; duplicate = 0.1; delay_max = 3 } in
  let net = Nt.create ~config:(nt_config ~faults ~seed:3 ()) ~h:4 ~tau:300 () in
  let i = ref 0 in
  while not (Nt.is_mature net) do
    incr i;
    ignore (Nt.increment net ~site:(!i mod 4) ~by:1)
  done;
  let snap = Nt.metrics net in
  let counter name =
    match Metrics.get snap name with
    | Some (Metrics.Counter c) -> c
    | _ -> Alcotest.failf "missing counter %s" name
  in
  (* At quiescence every unique protocol send was delivered exactly once. *)
  Alcotest.(check int) "sends = machine deliveries" (counter "net_protocol_sends_total")
    (counter "net_machine_deliveries_total");
  Alcotest.(check int) "useful = deliveries - stale"
    (counter "net_machine_deliveries_total" - counter "net_stale_total")
    (counter "net_useful_messages_total");
  List.iter
    (fun name -> ignore (counter name))
    [ "net_sent_total"; "net_dropped_total"; "net_retransmits_total"; "net_acks_sent_total" ];
  Alcotest.(check bool) "mature gauge" true
    (match Metrics.get snap "net_mature" with Some (Metrics.Gauge 1.0) -> true | _ -> false)

(* ---- reliable fabric directly: backoff jitter + epoch stamping ---- *)

(* Drive N sends over a lossy link and record (tick, round) for every
   delivery. Everything is seeded, so a (seed, jitter) pair names one
   exact retransmission schedule. *)
let reliable_run ~jitter ~seed ~n =
  let clock = Vclock.create () in
  let rng = Prng.create ~seed in
  let spec = { Net_fault.none with Net_fault.drop = 0.35 } in
  let log = ref [] in
  let deliver env =
    match env.Envelope.payload with
    | Envelope.Signal { round } -> log := (Vclock.now clock, round) :: !log
    | _ -> ()
  in
  let t =
    Reliable.create
      ~config:{ Reliable.default with Reliable.rto = 6; jitter }
      ~clock ~rng ~spec ~deliver
      ~on_degrade:(fun _ -> ())
      ()
  in
  for i = 1 to n do
    Reliable.send t ~src:(Envelope.Site 0) ~dst:Envelope.Coordinator
      (Envelope.Signal { round = i })
  done;
  Vclock.run_until_idle clock;
  (List.rev !log, Reliable.retransmits t)

let test_reliable_jitter_deterministic () =
  (* same seed, same jitter: bit-identical delivery schedule — jitter
     draws come from a seeded PRNG, not wall-clock noise *)
  List.iter
    (fun jitter ->
      let a = reliable_run ~jitter ~seed:42 ~n:40 in
      let b = reliable_run ~jitter ~seed:42 ~n:40 in
      Alcotest.(check bool)
        (Printf.sprintf "jitter=%.1f replays identically" jitter)
        true (a = b))
    [ 0.0; 0.3; 1.0 ];
  let base, base_rx = reliable_run ~jitter:0.0 ~seed:42 ~n:40 in
  let jit, jit_rx = reliable_run ~jitter:0.5 ~seed:42 ~n:40 in
  (* loss is real on this link, so backoff (and thus jitter) is exercised *)
  Alcotest.(check bool) "retransmissions happened" true (base_rx > 0 && jit_rx > 0);
  (* jitter may stretch timeouts but never breaks exactly-once in-order
     delivery: the payload sequence is the same either way *)
  Alcotest.(check (list int)) "delivery order unaffected by jitter"
    (List.map snd base) (List.map snd jit);
  (* the jitter PRNG is a private copy: enabling jitter must not perturb
     the fault injector's draws, so the first transmission of the first
     message meets the same fate (delivered or dropped) in both runs *)
  Alcotest.(check bool) "first delivery tick shared or later under jitter" true
    (match (base, jit) with
    | (t0, _) :: _, (t1, _) :: _ -> t1 >= t0
    | _ -> false)

let test_reliable_epoch_stamped () =
  let clock = Vclock.create () in
  let rng = Prng.create ~seed:5 in
  let epochs = ref [] in
  let t =
    Reliable.create ~config:Reliable.default ~clock ~rng ~spec:Net_fault.none
      ~deliver:(fun env -> epochs := env.Envelope.epoch :: !epochs)
      ~on_degrade:(fun _ -> ())
      ()
  in
  Reliable.send t ~src:(Envelope.Site 0) ~dst:Envelope.Coordinator
    (Envelope.Signal { round = 1 });
  Reliable.send ~epoch:7 t ~src:(Envelope.Site 0) ~dst:Envelope.Coordinator
    (Envelope.Signal { round = 2 });
  Vclock.run_until_idle clock;
  Alcotest.(check (list int)) "default epoch 0, explicit stamped" [ 0; 7 ]
    (List.rev !epochs)

(* ---- vclock sanity ---- *)

let test_vclock () =
  let clock = Vclock.create () in
  let log = ref [] in
  let _ = Vclock.schedule clock ~delay:5 (fun () -> log := 5 :: !log) in
  let t2 = Vclock.schedule clock ~delay:2 (fun () -> log := 2 :: !log) in
  let _ = Vclock.schedule clock ~delay:9 (fun () -> log := 9 :: !log) in
  let _ = Vclock.schedule clock ~delay:2 (fun () -> log := 20 :: !log) in
  Vclock.cancel clock t2;
  Vclock.run_until_idle clock;
  Alcotest.(check (list int)) "order, cancellation honoured" [ 9; 5; 20 ] !log;
  Alcotest.(check int) "idle" 0 (Vclock.pending clock)

let () =
  Alcotest.run "net"
    [
      ( "unit",
        [
          Alcotest.test_case "vclock" `Quick test_vclock;
          Alcotest.test_case "fault spec parse" `Quick test_fault_parse;
          Alcotest.test_case "zero-fault parity" `Quick test_zero_fault_parity;
          Alcotest.test_case "kind-drop sweep" `Quick test_kind_drop_sweep;
          Alcotest.test_case "degradation" `Quick test_degradation;
          Alcotest.test_case "partition heals" `Quick test_partition_heals;
          Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
          Alcotest.test_case "three engines, one shadow" `Quick test_three_engine_shadow;
          Alcotest.test_case "metrics surface" `Quick test_metrics_surface;
          Alcotest.test_case "reliable jitter deterministic" `Quick
            test_reliable_jitter_deterministic;
          Alcotest.test_case "reliable epoch stamped" `Quick test_reliable_epoch_stamped;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_fault_equivalence ]);
    ]
