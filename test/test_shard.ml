(* Sharded ingestion equivalence: a query-sharded engine must be
   observably indistinguishable from the unsharded engine it partitions —
   matured id lists at every step, alive counts, per-query accumulated
   weights, and (through the Scenario driver) the maturity log verbatim,
   timestamps included — for every engine, shard count, executor and
   batch size.

   Layers:
   - unit tests for the rendezvous placement (range, determinism, rough
     balance, the k -> k+1 monotonicity that makes growing a deployment
     cheap) and for the executor contract (slot-ordered results,
     lowest-slot exception, close semantics) on BOTH backends where
     available;
   - a qcheck property driving random episodes (random shard counts,
     batch cut points, mid-stream registrations and terminations) over
     every engine, comparing the sharded engine step by step against the
     unsharded reference;
   - pinned-seed Scenario regressions (`make check-shard` widens the
     seed list via RTS_SHARD_SEEDS) asserting maturity-log equality for
     k in {1,2,4} x executors x batch in {1,64};
   - wrapper composition: Durable.wrap around a sharded engine recovers
     into an equivalent sharded engine, and Net_shadow cross-checks a
     sharded engine without divergence. *)

open Rts_core
open Rts_workload
open Rts_resilience
module Prng = Rts_util.Prng
module Metrics = Rts_obs.Metrics
module Shard = Rts_shard.Shard
module Executor = Rts_shard.Executor
module Rendezvous = Rts_shard.Rendezvous
module Net_shadow = Rts_netcheck.Net_shadow

let executors = Executor.Seq :: (if Executor.domains_available then [ Executor.Domains ] else [])

let exec_str = Executor.kind_to_string

(* ---- rendezvous placement ----------------------------------------- *)

let test_rendezvous_range () =
  List.iter
    (fun shards ->
      for id = 0 to 2_000 do
        let s = Rendezvous.owner ~shards id in
        if s < 0 || s >= shards then
          Alcotest.failf "owner ~shards:%d %d = %d out of range" shards id s;
        Alcotest.(check int)
          (Printf.sprintf "owner is deterministic (k=%d id=%d)" shards id)
          s
          (Rendezvous.owner ~shards id)
      done)
    [ 1; 2; 3; 4; 7; 8 ];
  for id = 0 to 100 do
    Alcotest.(check int) "single shard owns everything" 0 (Rendezvous.owner ~shards:1 id)
  done;
  Alcotest.check_raises "shards=0 rejected" (Invalid_argument "Rendezvous.owner: shards < 1")
    (fun () -> ignore (Rendezvous.owner ~shards:0 5))

let test_rendezvous_balance () =
  let n = 10_000 and shards = 8 in
  let counts = Array.make shards 0 in
  for id = 0 to n - 1 do
    let s = Rendezvous.owner ~shards id in
    counts.(s) <- counts.(s) + 1
  done;
  let expected = n / shards in
  Array.iteri
    (fun s c ->
      if c < expected / 2 || c > expected * 2 then
        Alcotest.failf "shard %d owns %d of %d ids (expected ~%d): hash is badly skewed" s c n
          expected)
    counts

(* HRW monotonicity: adding shard k+1 only ever moves ids TO the new
   shard — an id whose argmax was s <= k keeps it unless the new shard's
   score beats it. *)
let test_rendezvous_monotone () =
  for shards = 1 to 7 do
    for id = 0 to 3_000 do
      let before = Rendezvous.owner ~shards id in
      let after = Rendezvous.owner ~shards:(shards + 1) id in
      if after <> before && after <> shards then
        Alcotest.failf "k=%d -> k=%d moved id %d from shard %d to OLD shard %d" shards
          (shards + 1) id before after
    done
  done

(* ---- executor contract -------------------------------------------- *)

let test_executor_basics () =
  List.iter
    (fun kind ->
      let t = Executor.create ~kind ~shards:4 () in
      Alcotest.(check int) "shards" 4 (Executor.shards t);
      let r = Executor.run_all t (fun i -> (10 * i) + 1) in
      Alcotest.(check (array int)) (exec_str kind ^ ": slot-ordered results") [| 1; 11; 21; 31 |] r;
      Alcotest.(check int) (exec_str kind ^ ": run_on") 42 (Executor.run_on t 2 (fun () -> 42));
      (* lowest failing slot wins, deterministically *)
      (try
         ignore
           (Executor.run_all t (fun i -> if i >= 1 then raise (Failure (string_of_int i)) else i));
         Alcotest.fail "expected exception from run_all"
       with Failure s ->
         Alcotest.(check string) (exec_str kind ^ ": lowest-slot exception") "1" s);
      (* the pool survives a task exception *)
      Alcotest.(check (array int))
        (exec_str kind ^ ": usable after exception")
        [| 0; 1; 2; 3 |]
        (Executor.run_all t (fun i -> i));
      Executor.close t;
      Executor.close t (* idempotent *);
      Alcotest.check_raises (exec_str kind ^ ": run after close") (Invalid_argument "Executor: closed")
        (fun () -> ignore (Executor.run_all t (fun i -> i))))
    executors;
  if not Executor.domains_available then
    try
      ignore (Executor.create ~kind:Executor.Domains ~shards:2 ());
      Alcotest.fail "domains executor should be unavailable"
    with Invalid_argument _ -> ()

let test_executor_strings () =
  List.iter
    (fun kind ->
      Alcotest.(check bool) "kind_of_string inverts kind_to_string" true
        (Executor.kind_of_string (exec_str kind) = Ok kind))
    [ Executor.Seq; Executor.Domains ];
  Alcotest.(check bool) "par = domains" true
    (Executor.kind_of_string "par" = Ok Executor.Domains);
  Alcotest.(check bool) "unknown rejected" true
    (match Executor.kind_of_string "gpu" with Error _ -> true | Ok _ -> false)

(* ---- engine roster + generators (test_feed_batch idiom) ----------- *)

let engines_for dim =
  List.concat
    [
      [
        ("baseline", fun () -> Baseline_engine.make ~dim);
        ("dt", fun () -> Dt_engine.make ~dim);
        ("dt-eager", fun () -> Dt_engine.make_eager ~dim);
      ];
      (if dim <= 3 then [ ("r-tree", fun () -> Rtree_engine.make ~dim) ] else []);
      (if dim = 1 then [ ("interval-tree", fun () -> Stab1d_engine.make ()) ] else []);
      (if dim = 2 then [ ("seg-intv", fun () -> Stab2d_engine.make ()) ] else []);
    ]

let gen_query rng ~dim ~domain ~max_tau ~id =
  let bounds =
    Array.init dim (fun _ ->
        let a = float_of_int (Prng.int rng domain) in
        (a, a +. 1. +. float_of_int (Prng.int rng domain)))
  in
  { Types.id; rect = Types.rect_make bounds; threshold = 1 + Prng.int rng max_tau }

let gen_elem rng ~dim ~domain ~max_weight =
  {
    Types.value = Array.init dim (fun _ -> float_of_int (Prng.int rng (domain + 4)));
    weight = 1 + Prng.int rng max_weight;
  }

let gen_cuts rng n =
  let segs = ref [] and used = ref 0 in
  while !used < n do
    let len = min (n - !used) (Prng.int rng 14) in
    segs := len :: !segs;
    used := !used + len
  done;
  List.rev !segs

let snapshot_str snap =
  String.concat ";" (List.map (fun ((q : Types.query), w) -> Printf.sprintf "%d:%d" q.id w) snap)

let ids_str l = String.concat ";" (List.map string_of_int l)

(* ---- one randomized episode: sharded vs unsharded step by step ---- *)

type episode_cfg = {
  seed : int;
  dim : int;
  shards : int;
  kind : Executor.kind;
  m : int;
  domain : int;
  max_weight : int;
  max_tau : int;
  n_elements : int;
  p_term : float;
  p_reg : float; (* per-boundary probability of a mid-stream registration *)
}

let episode cfg =
  let rng = Prng.create ~seed:cfg.seed in
  let queries =
    Array.init cfg.m (fun id ->
        gen_query rng ~dim:cfg.dim ~domain:cfg.domain ~max_tau:cfg.max_tau ~id)
  in
  let elems =
    Array.init cfg.n_elements (fun _ ->
        gen_elem rng ~dim:cfg.dim ~domain:cfg.domain ~max_weight:cfg.max_weight)
  in
  let cuts = gen_cuts rng cfg.n_elements in
  (* Pre-draw per-boundary decisions so every engine sees the identical
     op stream: maybe terminate one alive query, maybe register a fresh
     one, and whether to drive this window per-element or batched. *)
  let draws =
    List.map
      (fun _ ->
        ( (if Prng.bernoulli rng cfg.p_term then Some (Prng.int rng 1_000_000) else None),
          (if Prng.bernoulli rng cfg.p_reg then
             Some (gen_query rng ~dim:cfg.dim ~domain:cfg.domain ~max_tau:cfg.max_tau ~id:0)
           else None),
          Prng.bernoulli rng 0.5 ))
      cuts
  in
  List.iter
    (fun (name, make) ->
      let ctx = Printf.sprintf "seed %d %s k=%d %s" cfg.seed name cfg.shards (exec_str cfg.kind) in
      let plain = (make () : Engine.t) in
      let sh = Shard.create ~executor:cfg.kind ~shards:cfg.shards ~dim:cfg.dim (fun ~dim:_ -> make ()) in
      let sharded = Shard.engine sh in
      Fun.protect ~finally:(fun () -> Shard.close sh) @@ fun () ->
      plain.register_batch (Array.to_list queries);
      sharded.register_batch (Array.to_list queries);
      let alive = ref (Array.to_list (Array.map (fun (q : Types.query) -> q.id) queries)) in
      let next_id = ref cfg.m in
      let off = ref 0 in
      List.iteri
        (fun bi (len, (term_draw, reg_draw, batched)) ->
          (match term_draw with
          | Some k when !alive <> [] ->
              let v = List.nth !alive (k mod List.length !alive) in
              alive := List.filter (fun i -> i <> v) !alive;
              plain.terminate v;
              sharded.terminate v
          | _ -> ());
          (match reg_draw with
          | Some q ->
              let q = { q with Types.id = !next_id } in
              incr next_id;
              alive := q.Types.id :: !alive;
              plain.register q;
              sharded.register q
          | None -> ());
          let seg = Array.sub elems !off len in
          off := !off + len;
          let matured_p, matured_s =
            if batched then (plain.feed_batch seg, sharded.feed_batch seg)
            else
              Array.fold_left
                (fun (ap, as_) e ->
                  let mp = plain.process e and ms = sharded.process e in
                  if mp <> ms then
                    Alcotest.failf "%s batch %d: process matured plain=[%s] sharded=[%s]" ctx bi
                      (ids_str mp) (ids_str ms);
                  (List.rev_append mp ap, List.rev_append ms as_))
                ([], []) seg
              |> fun (a, b) -> (Engine.sort_matured a, Engine.sort_matured b)
          in
          if matured_p <> matured_s then
            Alcotest.failf "%s batch %d: matured plain=[%s] sharded=[%s]" ctx bi
              (ids_str matured_p) (ids_str matured_s);
          alive := List.filter (fun i -> not (List.mem i matured_p)) !alive;
          if plain.alive () <> sharded.alive () then
            Alcotest.failf "%s batch %d: alive plain=%d sharded=%d" ctx bi (plain.alive ())
              (sharded.alive ());
          let sp = plain.alive_snapshot () and ss = sharded.alive_snapshot () in
          if snapshot_str sp <> snapshot_str ss then
            Alcotest.failf "%s batch %d: snapshot plain=[%s] sharded=[%s]" ctx bi (snapshot_str sp)
              (snapshot_str ss))
        (List.combine cuts draws);
      (* Merged lifecycle counters must agree with the unsharded engine
         (each query registers/matures/terminates on exactly one shard);
         elements_total is excluded by design — every shard scans the
         whole stream, the shard layer's own counter holds the stream
         total. *)
      let pm = plain.metrics () and sm = sharded.metrics () in
      List.iter
        (fun c ->
          if Metrics.counter_value pm c <> Metrics.counter_value sm c then
            Alcotest.failf "%s: counter %s plain=%d sharded=%d" ctx c (Metrics.counter_value pm c)
              (Metrics.counter_value sm c))
        [ "registered_total"; "matured_total"; "terminated_total" ];
      if Metrics.counter_value sm "shard_elements_total" <> cfg.n_elements then
        Alcotest.failf "%s: shard_elements_total=%d, stream had %d" ctx
          (Metrics.counter_value sm "shard_elements_total")
          cfg.n_elements)
    (engines_for cfg.dim)

let cfg_gen =
  QCheck.Gen.(
    let* seed = int_range 1 1_000_000 in
    let* dim = int_range 1 2 in
    let* shards = int_range 1 5 in
    let* kind =
      if Executor.domains_available then
        map (fun b -> if b then Executor.Domains else Executor.Seq) bool
      else return Executor.Seq
    in
    let* m = int_range 1 50 in
    let* domain = int_range 2 24 in
    let* max_weight = int_range 1 50 in
    let* max_tau = int_range 1 500 in
    let* n_elements = int_range 0 250 in
    let* p_term = float_bound_inclusive 0.15 in
    let* p_reg = float_bound_inclusive 0.2 in
    return { seed; dim; shards; kind; m; domain; max_weight; max_tau; n_elements; p_term; p_reg })

let prop_shard_equivalence =
  QCheck.Test.make ~count:(Qcheck_env.count 40)
    ~name:"sharded engine = unsharded engine (matured, weights, counters)"
    (QCheck.make
       ~print:(fun c ->
         Printf.sprintf "seed=%d dim=%d k=%d exec=%s m=%d domain=%d maxw=%d maxtau=%d n=%d"
           c.seed c.dim c.shards (exec_str c.kind) c.m c.domain c.max_weight c.max_tau
           c.n_elements)
       cfg_gen)
    (fun cfg ->
      episode cfg;
      true)

(* ---- pinned-seed Scenario regressions ------------------------------ *)

(* RTS_SHARD_SEEDS widens the pinned list (same idiom as RTS_FAULT_SEEDS /
   RTS_NET_SEEDS); `make check-shard` and the CI shard-equivalence job
   pin it explicitly. *)
let shard_seeds =
  match Sys.getenv_opt "RTS_SHARD_SEEDS" with
  | None | Some "" -> [ 5; 17; 91 ]
  | Some s ->
      String.split_on_char ',' s
      |> List.filter_map (fun x ->
             match String.trim x with "" -> None | x -> Some (int_of_string x))

let factories_for dim =
  match dim with
  | 1 ->
      [
        ("baseline", fun ~dim -> Baseline_engine.make ~dim);
        ("dt", fun ~dim -> Dt_engine.make ~dim);
        ("interval-tree", fun ~dim:_ -> Stab1d_engine.make ());
      ]
  | _ ->
      [
        ("baseline", fun ~dim -> Baseline_engine.make ~dim);
        ("dt", fun ~dim -> Dt_engine.make ~dim);
        ("seg-intv", fun ~dim:_ -> Stab2d_engine.make ());
        ("r-tree", fun ~dim -> Rtree_engine.make ~dim);
      ]

(* The sharded maturity log — timestamps included — must equal the
   unsharded one verbatim: same ids on the same elements, attributed at
   the same batch barriers, for every k, executor and batch size. *)
let scenario_equivalence ~dim ~seed ~batch () =
  let cfg =
    {
      Scenario.default with
      Scenario.dim;
      seed;
      initial_queries = 250;
      tau = 2_500;
      mode = Scenario.Stochastic { p_ins = 0.3; horizon = 1_600 };
      max_elements = 2_400;
      chunk = 256;
      batch;
    }
  in
  List.iter
    (fun (name, base) ->
      let reference = Scenario.run cfg base in
      List.iter
        (fun shards ->
          List.iter
            (fun kind ->
              let make, close_all = Shard.factory ~executor:kind ~shards base in
              let r = Fun.protect ~finally:close_all (fun () -> Scenario.run cfg make) in
              Alcotest.(check (list (pair int int)))
                (Printf.sprintf "%s d=%d seed=%d batch=%d k=%d %s: maturity log verbatim" name
                   dim seed batch shards (exec_str kind))
                reference.Scenario.maturity_log r.Scenario.maturity_log;
              Alcotest.(check int)
                (Printf.sprintf "%s d=%d seed=%d batch=%d k=%d %s: element count" name dim seed
                   batch shards (exec_str kind))
                reference.Scenario.elements r.Scenario.elements)
            executors)
        [ 1; 2; 4 ])
    (factories_for dim)

let test_scenario_pinned () =
  List.iter
    (fun seed ->
      scenario_equivalence ~dim:1 ~seed ~batch:1 ();
      scenario_equivalence ~dim:1 ~seed ~batch:64 ())
    shard_seeds;
  (* one 2D spot check per run (cheaper roster rotation than the full
     cross product) *)
  match shard_seeds with
  | seed :: _ -> scenario_equivalence ~dim:2 ~seed ~batch:64 ()
  | [] -> ()

(* ---- wrapper composition ------------------------------------------ *)

(* Durable.wrap around Shard.engine: log ops, recover the WAL into a
   FRESH sharded engine (Shard.factory as ~make), and the recovered
   engine must continue the stream exactly like an unsharded engine that
   saw everything. *)
let test_durable_composition () =
  let dim = 1 in
  let rng = Prng.create ~seed:77 in
  let queries = List.init 40 (fun id -> gen_query rng ~dim ~domain:10 ~max_tau:400 ~id) in
  let part1 = Array.init 150 (fun _ -> gen_elem rng ~dim ~domain:10 ~max_weight:3) in
  let part2 = Array.init 150 (fun _ -> gen_elem rng ~dim ~domain:10 ~max_weight:3) in
  let make, close_all = Shard.factory ~shards:3 (fun ~dim -> Dt_engine.make ~dim) in
  Fun.protect ~finally:close_all @@ fun () ->
  let dir = Io.mem_dir () in
  let wrapped, h = Durable.wrap ~dir (make ~dim) in
  let plain = (Dt_engine.make ~dim : Engine.t) in
  wrapped.register_batch queries;
  plain.register_batch queries;
  Alcotest.(check (list int))
    "sharded+durable matures like unsharded (part 1)" (plain.feed_batch part1)
    (wrapped.feed_batch part1);
  Durable.close h;
  (* recover into a fresh sharded engine and continue the stream *)
  let recovered, _report = Recovery.recover ~dim ~make ~dir () in
  Alcotest.(check int) "recovered alive count" (plain.alive ()) (recovered.Engine.alive ());
  Alcotest.(check (list int))
    "recovered sharded engine continues bit-identically (part 2)" (plain.feed_batch part2)
    (recovered.Engine.feed_batch part2);
  Alcotest.(check int) "alive after part 2" (plain.alive ()) (recovered.Engine.alive ())

(* Net_shadow.wrap over a sharded engine: the networked protocol must
   land every maturity on the same element as the sharded engine (wrap
   raises on divergence), with zero mismatches on lossless links. *)
let test_net_shadow_composition () =
  let dim = 1 in
  let rng = Prng.create ~seed:31 in
  let queries = List.init 25 (fun id -> gen_query rng ~dim ~domain:8 ~max_tau:120 ~id) in
  let elems = Array.init 400 (fun _ -> gen_elem rng ~dim ~domain:8 ~max_weight:3) in
  let make, close_all = Shard.factory ~shards:2 (fun ~dim -> Dt_engine.make ~dim) in
  Fun.protect ~finally:close_all @@ fun () ->
  let shadow = Net_shadow.create ~config:{ Net_shadow.default with seed = 5 } ~dim () in
  let e = Net_shadow.wrap shadow (make ~dim) in
  e.Engine.register_batch queries;
  let matured = ref 0 in
  Array.iter (fun el -> matured := !matured + List.length (e.Engine.process el)) elems;
  Alcotest.(check bool) "some queries matured" true (!matured > 0);
  Alcotest.(check int) "no engine/shadow mismatches" 0 (Net_shadow.mismatches shadow);
  Alcotest.(check bool) "never early" true (Net_shadow.never_early_ok shadow)

(* ---- shard metrics + lifecycle ------------------------------------ *)

let test_shard_surface () =
  let rng = Prng.create ~seed:9 in
  let queries = List.init 30 (fun id -> gen_query rng ~dim:1 ~domain:8 ~max_tau:10_000 ~id) in
  let elems = Array.init 100 (fun _ -> gen_elem rng ~dim:1 ~domain:8 ~max_weight:2) in
  List.iter
    (fun kind ->
      let sh = Shard.create ~executor:kind ~shards:3 ~dim:1 (fun ~dim -> Dt_engine.make ~dim) in
      let e = Shard.engine sh in
      let expected_name =
        "dt+k3" ^ (match kind with Executor.Domains -> "/domains" | Executor.Seq -> "")
      in
      Alcotest.(check string) "engine name" expected_name e.Engine.name;
      e.Engine.register_batch queries;
      ignore (e.Engine.feed_batch elems);
      ignore (e.Engine.process elems.(0));
      (* placement accessors agree with the hash and with each other *)
      List.iter
        (fun (q : Types.query) ->
          Alcotest.(check int) "owner = rendezvous" (Rendezvous.owner ~shards:3 q.id)
            (Shard.owner sh q.id))
        queries;
      let per = Shard.queries_per_shard sh in
      Alcotest.(check int) "per-shard alive sums to total" (e.Engine.alive ())
        (Array.fold_left ( + ) 0 per);
      Alcotest.(check int) "per_shard_metrics arity" 3
        (Array.length (Shard.per_shard_metrics sh));
      let m = e.Engine.metrics () in
      let c name = Metrics.counter_value m name in
      Alcotest.(check int) "stream elements counted once" 101 (c "shard_elements_total");
      Alcotest.(check int) "one stream batch" 1 (c "shard_batches_total");
      Alcotest.(check int) "registered through the layer" 30 (c "shard_registered_total");
      (match Metrics.get m "shard_count" with
      | Some (Metrics.Gauge g) -> Alcotest.(check (float 0.0)) "shard_count gauge" 3.0 g
      | _ -> Alcotest.fail "shard_count gauge missing");
      (match Metrics.get m "alive" with
      | Some (Metrics.Gauge g) ->
          Alcotest.(check (float 0.0))
            "alive gauge is the true total"
            (float_of_int (e.Engine.alive ()))
            g
      | _ -> Alcotest.fail "alive gauge missing");
      (* every shard really scans the whole stream: merged inner
         elements_total reads k * n by design *)
      Alcotest.(check int) "merged inner elements_total = k*n" (3 * 101) (c "elements_total");
      Shard.close sh;
      Shard.close sh (* idempotent *);
      Alcotest.check_raises "ops raise after close" (Invalid_argument "Shard: engine is closed")
        (fun () -> ignore (e.Engine.alive ())))
    executors

let test_create_validation () =
  Alcotest.check_raises "shards < 1" (Invalid_argument "Shard.create: shards < 1") (fun () ->
      ignore (Shard.create ~shards:0 ~dim:1 (fun ~dim -> Baseline_engine.make ~dim)));
  Alcotest.check_raises "dim < 1" (Invalid_argument "Shard.create: dim < 1") (fun () ->
      ignore (Shard.create ~shards:2 ~dim:0 (fun ~dim -> Baseline_engine.make ~dim)))

let () =
  Alcotest.run "shard"
    [
      ( "rendezvous",
        [
          Alcotest.test_case "owner range + determinism" `Quick test_rendezvous_range;
          Alcotest.test_case "balance" `Quick test_rendezvous_balance;
          Alcotest.test_case "k -> k+1 moves ids only to the new shard" `Quick
            test_rendezvous_monotone;
        ] );
      ( "executor",
        [
          Alcotest.test_case "slot order, exceptions, close" `Quick test_executor_basics;
          Alcotest.test_case "kind strings" `Quick test_executor_strings;
        ] );
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_shard_equivalence;
          Alcotest.test_case "pinned seeds: maturity log verbatim (k x executor x batch)" `Slow
            test_scenario_pinned;
        ] );
      ( "composition",
        [
          Alcotest.test_case "durable wrap + recovery into sharded engine" `Quick
            test_durable_composition;
          Alcotest.test_case "net shadow over sharded engine" `Quick test_net_shadow_composition;
        ] );
      ( "surface",
        [
          Alcotest.test_case "metrics, names, placement, close" `Quick test_shard_surface;
          Alcotest.test_case "create validation" `Quick test_create_validation;
        ] );
    ]
