(* Sharded ingestion equivalence: a sharded engine — query-partitioned
   (replicated stream) or element-partitioned (routed stream) — must be
   observably indistinguishable from the unsharded engine it partitions:
   matured id lists at every step, alive counts, per-query accumulated
   weights, and (through the Scenario driver) the maturity log verbatim,
   timestamps included — for every engine, shard count, partition,
   executor and batch size.

   Layers:
   - unit tests for the rendezvous placement (range, determinism, rough
     balance, the k -> k+1 monotonicity that makes growing a deployment
     cheap), the range router (cut validation, owner arithmetic,
     straddler pinning + interest accounting), the SPSC task ring, and
     the executor contract (slot-ordered results, lowest-slot exception,
     post/barrier, empty dispatch, exception-safe teardown) on BOTH
     backends where available;
   - a qcheck property driving random episodes (random shard counts,
     adversarial router cut points, batch cut points, mid-stream
     registrations and terminations) over every engine, comparing BOTH
     sharded modes step by step against the unsharded reference —
     element-partitioned = replicated = unsharded;
   - pinned-seed Scenario regressions (`make check-shard` widens the
     seed list via RTS_SHARD_SEEDS) asserting maturity-log equality for
     k in {1,2,4} x partitions x executors x batch in {1,64};
   - wrapper composition: Durable.wrap around a sharded engine recovers
     into an equivalent sharded engine, and Net_shadow cross-checks a
     sharded engine without divergence. *)

open Rts_core
open Rts_workload
open Rts_resilience
module Prng = Rts_util.Prng
module Metrics = Rts_obs.Metrics
module Shard = Rts_shard.Shard
module Executor = Rts_shard.Executor
module Rendezvous = Rts_shard.Rendezvous
module Range_router = Rts_shard.Range_router
module Spsc_ring = Rts_shard.Spsc_ring
module Net_shadow = Rts_netcheck.Net_shadow

let executors = Executor.Seq :: (if Executor.domains_available then [ Executor.Domains ] else [])

let exec_str = Executor.kind_to_string

(* ---- rendezvous placement ----------------------------------------- *)

let test_rendezvous_range () =
  List.iter
    (fun shards ->
      for id = 0 to 2_000 do
        let s = Rendezvous.owner ~shards id in
        if s < 0 || s >= shards then
          Alcotest.failf "owner ~shards:%d %d = %d out of range" shards id s;
        Alcotest.(check int)
          (Printf.sprintf "owner is deterministic (k=%d id=%d)" shards id)
          s
          (Rendezvous.owner ~shards id)
      done)
    [ 1; 2; 3; 4; 7; 8 ];
  for id = 0 to 100 do
    Alcotest.(check int) "single shard owns everything" 0 (Rendezvous.owner ~shards:1 id)
  done;
  Alcotest.check_raises "shards=0 rejected" (Invalid_argument "Rendezvous.owner: shards < 1")
    (fun () -> ignore (Rendezvous.owner ~shards:0 5))

let test_rendezvous_balance () =
  let n = 10_000 and shards = 8 in
  let counts = Array.make shards 0 in
  for id = 0 to n - 1 do
    let s = Rendezvous.owner ~shards id in
    counts.(s) <- counts.(s) + 1
  done;
  let expected = n / shards in
  Array.iteri
    (fun s c ->
      if c < expected / 2 || c > expected * 2 then
        Alcotest.failf "shard %d owns %d of %d ids (expected ~%d): hash is badly skewed" s c n
          expected)
    counts

(* HRW monotonicity: adding shard k+1 only ever moves ids TO the new
   shard — an id whose argmax was s <= k keeps it unless the new shard's
   score beats it. *)
let test_rendezvous_monotone () =
  for shards = 1 to 7 do
    for id = 0 to 3_000 do
      let before = Rendezvous.owner ~shards id in
      let after = Rendezvous.owner ~shards:(shards + 1) id in
      if after <> before && after <> shards then
        Alcotest.failf "k=%d -> k=%d moved id %d from shard %d to OLD shard %d" shards
          (shards + 1) id before after
    done
  done

(* ---- executor contract -------------------------------------------- *)

let test_executor_basics () =
  List.iter
    (fun kind ->
      let t = Executor.create ~kind ~shards:4 () in
      Alcotest.(check int) "shards" 4 (Executor.shards t);
      let r = Executor.run_all t (fun i -> (10 * i) + 1) in
      Alcotest.(check (array int)) (exec_str kind ^ ": slot-ordered results") [| 1; 11; 21; 31 |] r;
      Alcotest.(check int) (exec_str kind ^ ": run_on") 42 (Executor.run_on t 2 (fun () -> 42));
      (* lowest failing slot wins, deterministically *)
      (try
         ignore
           (Executor.run_all t (fun i -> if i >= 1 then raise (Failure (string_of_int i)) else i));
         Alcotest.fail "expected exception from run_all"
       with Failure s ->
         Alcotest.(check string) (exec_str kind ^ ": lowest-slot exception") "1" s);
      (* the pool survives a task exception *)
      Alcotest.(check (array int))
        (exec_str kind ^ ": usable after exception")
        [| 0; 1; 2; 3 |]
        (Executor.run_all t (fun i -> i));
      Executor.close t;
      Executor.close t (* idempotent *);
      Alcotest.check_raises (exec_str kind ^ ": run after close") (Invalid_argument "Executor: closed")
        (fun () -> ignore (Executor.run_all t (fun i -> i))))
    executors;
  if not Executor.domains_available then
    try
      ignore (Executor.create ~kind:Executor.Domains ~shards:2 ());
      Alcotest.fail "domains executor should be unavailable"
    with Invalid_argument _ -> ()

let test_executor_strings () =
  List.iter
    (fun kind ->
      Alcotest.(check bool) "kind_of_string inverts kind_to_string" true
        (Executor.kind_of_string (exec_str kind) = Ok kind))
    [ Executor.Seq; Executor.Domains ];
  Alcotest.(check bool) "par = domains" true
    (Executor.kind_of_string "par" = Ok Executor.Domains);
  Alcotest.(check bool) "unknown rejected" true
    (match Executor.kind_of_string "gpu" with Error _ -> true | Ok _ -> false)

let test_executor_post_barrier () =
  List.iter
    (fun kind ->
      let t = Executor.create ~kind ~shards:3 () in
      (* barrier with nothing posted: a no-op, never a deadlock *)
      Executor.barrier t;
      let cells = Array.make 3 0 in
      for i = 0 to 2 do
        Executor.post t i (fun () -> cells.(i) <- cells.(i) + 1);
        Executor.post t i (fun () -> cells.(i) <- (cells.(i) * 10) + 1)
      done;
      Executor.barrier t;
      Alcotest.(check (array int))
        (exec_str kind ^ ": posted tasks ran, per-slot FIFO")
        [| 11; 11; 11 |] cells;
      (* posted exceptions surface at the barrier: first error of the
         lowest-numbered failing slot, then the error state is clear *)
      Executor.post t 2 (fun () -> failwith "slot2");
      Executor.post t 1 (fun () -> failwith "slot1");
      Executor.post t 1 (fun () -> failwith "slot1-second");
      (try
         Executor.barrier t;
         Alcotest.fail "expected barrier to re-raise"
       with Failure s ->
         Alcotest.(check string) (exec_str kind ^ ": lowest slot, first error") "slot1" s);
      Executor.barrier t;
      Alcotest.(check (array int))
        (exec_str kind ^ ": pool survives posted exceptions")
        [| 0; 1; 2 |]
        (Executor.run_all t (fun i -> i));
      Executor.close t)
    executors

(* The PR-6 teardown fix, as a leak detector: OCaml caps live domains
   low (~128), so if a raising task — dispatched or posted — ever left
   close unable to Quit+join every worker, 200 create/raise/close
   cycles with 4 slots each would exhaust the runtime's domain slots
   and Executor.create would start failing long before the loop ends. *)
let test_executor_teardown_leak () =
  List.iter
    (fun kind ->
      for _ = 1 to 200 do
        let t = Executor.create ~kind ~shards:4 () in
        (try
           ignore (Executor.run_all t (fun i -> if i land 1 = 0 then failwith "boom" else i));
           Alcotest.fail "expected run_all to re-raise"
         with Failure _ -> ());
        Executor.post t 3 (fun () -> failwith "posted-boom");
        (try Executor.barrier t with Failure _ -> ());
        Executor.close t
      done)
    executors

(* Shard.create must close its executor when the engine factory raises
   partway through construction — the pre-fix behaviour parked 4 worker
   domains forever per failed create, so the same 200-cycle loop doubles
   as the regression test. *)
let test_shard_create_no_leak () =
  List.iter
    (fun kind ->
      for _ = 1 to 200 do
        let calls = ref 0 in
        try
          ignore
            (Shard.create ~executor:kind ~shards:4 ~dim:1 (fun ~dim ->
                 incr calls;
                 if !calls = 3 then failwith "factory refuses"
                 else Baseline_engine.make ~dim));
          Alcotest.fail "factory exception should propagate"
        with Failure _ -> ()
      done)
    executors

(* ---- SPSC task ring ------------------------------------------------ *)

let test_spsc_ring () =
  let r = Spsc_ring.create ~capacity:3 in
  Alcotest.(check int) "capacity rounds to a power of two" 4 (Spsc_ring.capacity r);
  Alcotest.(check bool) "fresh ring is empty" true (Spsc_ring.is_empty r);
  Alcotest.(check bool) "pop on empty" true (Spsc_ring.try_pop r = None);
  for i = 1 to 4 do
    Alcotest.(check bool) (Printf.sprintf "push %d" i) true (Spsc_ring.try_push r i)
  done;
  Alcotest.(check bool) "push on full refused" false (Spsc_ring.try_push r 5);
  Alcotest.(check int) "length at capacity" 4 (Spsc_ring.length r);
  (* FIFO preserved across index wraparound *)
  for round = 0 to 25 do
    Alcotest.(check bool)
      (Printf.sprintf "fifo round %d" round)
      true
      (Spsc_ring.try_pop r = Some (round + 1));
    Alcotest.(check bool) "refill" true (Spsc_ring.try_push r (round + 5))
  done;
  Alcotest.check_raises "capacity < 1 rejected" (Invalid_argument "Spsc_ring.create: capacity < 1")
    (fun () -> ignore (Spsc_ring.create ~capacity:0))

(* ---- range router -------------------------------------------------- *)

let test_router_owner () =
  let r = Range_router.create ~shards:4 ~cuts:[| 10.; 20.; 30. |] in
  Alcotest.(check int) "shards" 4 (Range_router.shards r);
  (* boundaries are half-open: a value equal to a cut belongs right *)
  List.iter
    (fun (v, s) ->
      Alcotest.(check int) (Printf.sprintf "owner %g" v) s (Range_router.owner_of_value r v))
    [ (-1e18, 0); (9.875, 0); (10., 1); (15., 1); (20., 2); (29.875, 2); (30., 3); (1e18, 3) ];
  (* binary search = linear count of cuts <= v *)
  let rng = Prng.create ~seed:4 in
  for _ = 1 to 2_000 do
    let v = float_of_int (Prng.int rng 45) -. 2.5 in
    let linear =
      (if v >= 10. then 1 else 0) + (if v >= 20. then 1 else 0) + if v >= 30. then 1 else 0
    in
    Alcotest.(check int) (Printf.sprintf "binary = linear at %g" v) linear
      (Range_router.owner_of_value r v)
  done;
  (* spans: local interval, straddling interval, half-open hi — an
     interval ending exactly AT a cut does not enter the next subrange *)
  let sp = Range_router.span_of_interval r ~lo:12. ~hi:18. in
  Alcotest.(check (list int)) "local span" [ 1; 1; 1 ] [ sp.home; sp.first; sp.last ];
  let sp = Range_router.span_of_interval r ~lo:12. ~hi:20. in
  Alcotest.(check (list int)) "hi at a cut stays left" [ 1; 1; 1 ] [ sp.home; sp.first; sp.last ];
  let sp = Range_router.span_of_interval r ~lo:12. ~hi:20.5 in
  Alcotest.(check (list int)) "just past the cut straddles" [ 1; 1; 2 ]
    [ sp.home; sp.first; sp.last ];
  let sp = Range_router.span_of_interval r ~lo:5. ~hi:35. in
  Alcotest.(check (list int)) "full straddle pinned to low end" [ 0; 0; 3 ]
    [ sp.home; sp.first; sp.last ]

let test_router_subscriptions () =
  let r = Range_router.create ~shards:4 ~cuts:[| 10.; 20.; 30. |] in
  Alcotest.(check (list int)) "no straddlers: owner only" [ 2 ] (Range_router.targets r 25.);
  let home = Range_router.register r ~id:7 ~lo:15. ~hi:35. in
  Alcotest.(check int) "pinned to the low-endpoint owner" 1 home;
  Alcotest.(check int) "one straddler" 1 (Range_router.straddlers r);
  Alcotest.(check (list int)) "subrange 2 forwards to the home" [ 1; 2 ]
    (Range_router.targets r 25.);
  Alcotest.(check (list int)) "subrange 3 forwards too" [ 1; 3 ] (Range_router.targets r 30.);
  Alcotest.(check (list int)) "subrange 0 is untouched" [ 0 ] (Range_router.targets r 5.);
  (* a local query subscribes nothing *)
  Alcotest.(check int) "local home" 0 (Range_router.register r ~id:8 ~lo:2. ~hi:7.);
  Alcotest.(check int) "still one straddler" 1 (Range_router.straddlers r);
  Alcotest.(check (list int)) "still no forward from subrange 0" [ 0 ] (Range_router.targets r 5.);
  Alcotest.(check bool) "home lookup" true (Range_router.home r 7 = Some 1);
  Alcotest.(check int) "alive" 2 (Range_router.alive r);
  (* re-registering an alive id routes to the existing home, no rewire *)
  Alcotest.(check int) "duplicate keeps its home" 1 (Range_router.register r ~id:7 ~lo:2. ~hi:3.);
  Alcotest.(check int) "duplicate adds no straddler" 1 (Range_router.straddlers r);
  Range_router.forget r 7;
  Alcotest.(check int) "subscription released" 0 (Range_router.straddlers r);
  Alcotest.(check (list int)) "forwarding stops" [ 2 ] (Range_router.targets r 25.);
  Range_router.forget r 7 (* idempotent *);
  Alcotest.(check bool) "forgotten" true (Range_router.home r 7 = None);
  Alcotest.(check int) "one left" 1 (Range_router.alive r)

let test_router_validation () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "wrong cut count" true
    (invalid (fun () -> Range_router.create ~shards:3 ~cuts:[| 5. |]));
  Alcotest.(check bool) "non-increasing cuts" true
    (invalid (fun () -> Range_router.create ~shards:3 ~cuts:[| 5.; 5. |]));
  Alcotest.(check bool) "NaN cut" true
    (invalid (fun () -> Range_router.create ~shards:2 ~cuts:[| Float.nan |]));
  Alcotest.(check bool) "shards < 1" true
    (invalid (fun () -> Range_router.create ~shards:0 ~cuts:[||]));
  Alcotest.(check (array (float 1e-9))) "uniform cuts"
    [| 25.; 50.; 75. |]
    (Range_router.uniform_cuts ~shards:4 ~lo:0. ~hi:100.);
  Alcotest.(check (array (float 0.))) "k=1 needs no cuts" [||]
    (Range_router.uniform_cuts ~shards:1 ~lo:0. ~hi:100.);
  Alcotest.(check bool) "uniform_cuts lo >= hi" true
    (invalid (fun () -> Range_router.uniform_cuts ~shards:2 ~lo:1. ~hi:1.))

(* ---- engine roster + generators (test_feed_batch idiom) ----------- *)

let engines_for dim =
  List.concat
    [
      [
        ("baseline", fun () -> Baseline_engine.make ~dim);
        ("dt", fun () -> Dt_engine.make ~dim);
        ("dt-eager", fun () -> Dt_engine.make_eager ~dim);
      ];
      (if dim <= 3 then [ ("r-tree", fun () -> Rtree_engine.make ~dim) ] else []);
      (if dim = 1 then [ ("interval-tree", fun () -> Stab1d_engine.make ()) ] else []);
      (if dim = 2 then [ ("seg-intv", fun () -> Stab2d_engine.make ()) ] else []);
    ]

let gen_query rng ~dim ~domain ~max_tau ~id =
  let bounds =
    Array.init dim (fun _ ->
        let a = float_of_int (Prng.int rng domain) in
        (a, a +. 1. +. float_of_int (Prng.int rng domain)))
  in
  { Types.id; rect = Types.rect_make bounds; threshold = 1 + Prng.int rng max_tau }

let gen_elem rng ~dim ~domain ~max_weight =
  {
    Types.value = Array.init dim (fun _ -> float_of_int (Prng.int rng (domain + 4)));
    weight = 1 + Prng.int rng max_weight;
  }

let gen_cuts rng n =
  let segs = ref [] and used = ref 0 in
  while !used < n do
    let len = min (n - !used) (Prng.int rng 14) in
    segs := len :: !segs;
    used := !used + len
  done;
  List.rev !segs

(* Adversarial router cut points: [shards - 1] distinct integers drawn
   from the element coordinate pool itself, so cuts land exactly ON
   element values and query endpoints — the half-open boundary rules get
   no slack. *)
let gen_router_cuts rng ~shards ~domain =
  let pool = Array.init (domain + 5) float_of_int in
  let n = Array.length pool in
  for i = 0 to shards - 2 do
    let j = i + Prng.int rng (n - i) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  let cuts = Array.sub pool 0 (shards - 1) in
  Array.sort compare cuts;
  cuts

let snapshot_str snap =
  String.concat ";" (List.map (fun ((q : Types.query), w) -> Printf.sprintf "%d:%d" q.id w) snap)

let ids_str l = String.concat ";" (List.map string_of_int l)

(* Empty dispatch is a total no-op — no deadlock (a zero-task barrier),
   no matured ids, no state change — for every unsharded engine and for
   both sharded partitions on both executors. *)
let test_empty_batch () =
  List.iter
    (fun (name, make) ->
      let e = (make () : Engine.t) in
      Alcotest.(check (list int)) (name ^ ": feed_batch [||] = []") [] (e.feed_batch [||]))
    (engines_for 1);
  List.iter
    (fun kind ->
      List.iter
        (fun (pname, partition) ->
          let sh =
            Shard.create ~executor:kind ~partition ~shards:3 ~dim:1 (fun ~dim ->
                Dt_engine.make ~dim)
          in
          Fun.protect ~finally:(fun () -> Shard.close sh) @@ fun () ->
          let e = Shard.engine sh in
          let ctx = Printf.sprintf "%s/%s" pname (exec_str kind) in
          let rng = Prng.create ~seed:3 in
          let queries =
            List.init 10 (fun id -> gen_query rng ~dim:1 ~domain:8 ~max_tau:1_000 ~id)
          in
          e.Engine.register_batch queries;
          Alcotest.(check (list int)) (ctx ^ ": empty batch matures nothing") []
            (e.Engine.feed_batch [||]);
          Alcotest.(check int) (ctx ^ ": alive unchanged") 10 (e.Engine.alive ());
          e.Engine.register_batch [];
          Alcotest.(check int) (ctx ^ ": empty register batch is a no-op") 10 (e.Engine.alive ()))
        [ ("queries", Shard.Queries); ("elements", Shard.Elements [| 3.; 6. |]) ])
    executors

(* ---- one randomized episode: sharded vs unsharded step by step ---- *)

type episode_cfg = {
  seed : int;
  dim : int;
  shards : int;
  kind : Executor.kind;
  m : int;
  domain : int;
  max_weight : int;
  max_tau : int;
  n_elements : int;
  p_term : float;
  p_reg : float; (* per-boundary probability of a mid-stream registration *)
}

let episode cfg =
  let rng = Prng.create ~seed:cfg.seed in
  let queries =
    Array.init cfg.m (fun id ->
        gen_query rng ~dim:cfg.dim ~domain:cfg.domain ~max_tau:cfg.max_tau ~id)
  in
  let elems =
    Array.init cfg.n_elements (fun _ ->
        gen_elem rng ~dim:cfg.dim ~domain:cfg.domain ~max_weight:cfg.max_weight)
  in
  let cuts = gen_cuts rng cfg.n_elements in
  (* Pre-draw per-boundary decisions so every engine sees the identical
     op stream: maybe terminate one alive query, maybe register a fresh
     one, and whether to drive this window per-element or batched. *)
  let draws =
    List.map
      (fun _ ->
        ( (if Prng.bernoulli rng cfg.p_term then Some (Prng.int rng 1_000_000) else None),
          (if Prng.bernoulli rng cfg.p_reg then
             Some (gen_query rng ~dim:cfg.dim ~domain:cfg.domain ~max_tau:cfg.max_tau ~id:0)
           else None),
          Prng.bernoulli rng 0.5 ))
      cuts
  in
  let router_cuts = gen_router_cuts rng ~shards:cfg.shards ~domain:cfg.domain in
  List.iter
    (fun (name, make) ->
      let ctx = Printf.sprintf "seed %d %s k=%d %s" cfg.seed name cfg.shards (exec_str cfg.kind) in
      let plain = (make () : Engine.t) in
      let sh = Shard.create ~executor:cfg.kind ~shards:cfg.shards ~dim:cfg.dim (fun ~dim:_ -> make ()) in
      let shr =
        Shard.create ~executor:cfg.kind ~partition:(Shard.Elements router_cuts) ~shards:cfg.shards
          ~dim:cfg.dim (fun ~dim:_ -> make ())
      in
      (* both sharded modes run against the same unsharded reference:
         element-partitioned = replicated = unsharded *)
      let variants = [ ("replicated", Shard.engine sh); ("routed", Shard.engine shr) ] in
      Fun.protect ~finally:(fun () -> Shard.close sh; Shard.close shr) @@ fun () ->
      plain.register_batch (Array.to_list queries);
      List.iter (fun (_, e) -> e.Engine.register_batch (Array.to_list queries)) variants;
      let alive = ref (Array.to_list (Array.map (fun (q : Types.query) -> q.id) queries)) in
      let next_id = ref cfg.m in
      let off = ref 0 in
      List.iteri
        (fun bi (len, (term_draw, reg_draw, batched)) ->
          (match term_draw with
          | Some k when !alive <> [] ->
              let v = List.nth !alive (k mod List.length !alive) in
              alive := List.filter (fun i -> i <> v) !alive;
              plain.terminate v;
              List.iter (fun (_, e) -> e.Engine.terminate v) variants
          | _ -> ());
          (match reg_draw with
          | Some q ->
              let q = { q with Types.id = !next_id } in
              incr next_id;
              alive := q.Types.id :: !alive;
              plain.register q;
              List.iter (fun (_, e) -> e.Engine.register q) variants
          | None -> ());
          let seg = Array.sub elems !off len in
          off := !off + len;
          let matured_p, matured_vs =
            if batched then
              ( plain.feed_batch seg,
                List.map (fun (vn, e) -> (vn, e.Engine.feed_batch seg)) variants )
            else begin
              let accp = ref [] in
              let accvs = List.map (fun (vn, _) -> (vn, ref [])) variants in
              Array.iter
                (fun el ->
                  let mp = plain.process el in
                  List.iter2
                    (fun (vn, e) (_, acc) ->
                      let mv = e.Engine.process el in
                      if mp <> mv then
                        Alcotest.failf "%s batch %d: process matured plain=[%s] %s=[%s]" ctx bi
                          (ids_str mp) vn (ids_str mv);
                      acc := List.rev_append mv !acc)
                    variants accvs;
                  accp := List.rev_append mp !accp)
                seg;
              ( Engine.sort_matured !accp,
                List.map (fun (vn, acc) -> (vn, Engine.sort_matured !acc)) accvs )
            end
          in
          List.iter
            (fun (vn, mv) ->
              if matured_p <> mv then
                Alcotest.failf "%s batch %d: matured plain=[%s] %s=[%s]" ctx bi
                  (ids_str matured_p) vn (ids_str mv))
            matured_vs;
          alive := List.filter (fun i -> not (List.mem i matured_p)) !alive;
          List.iter
            (fun (vn, e) ->
              if plain.alive () <> e.Engine.alive () then
                Alcotest.failf "%s batch %d: alive plain=%d %s=%d" ctx bi (plain.alive ()) vn
                  (e.Engine.alive ());
              let sp = plain.alive_snapshot () and sv = e.Engine.alive_snapshot () in
              if snapshot_str sp <> snapshot_str sv then
                Alcotest.failf "%s batch %d: snapshot plain=[%s] %s=[%s]" ctx bi (snapshot_str sp)
                  vn (snapshot_str sv))
            variants)
        (List.combine cuts draws);
      (* Merged lifecycle counters must agree with the unsharded engine
         (each query registers/matures/terminates on exactly one shard);
         elements_total is excluded by design — it is k * n under query
         partitioning and n + forwarding under element partitioning; the
         shard layer's own counter holds the stream total either way. *)
      let pm = plain.metrics () in
      List.iter
        (fun (vn, e) ->
          let sm = e.Engine.metrics () in
          List.iter
            (fun c ->
              if Metrics.counter_value pm c <> Metrics.counter_value sm c then
                Alcotest.failf "%s %s: counter %s plain=%d sharded=%d" ctx vn c
                  (Metrics.counter_value pm c) (Metrics.counter_value sm c))
            [ "registered_total"; "matured_total"; "terminated_total" ];
          if Metrics.counter_value sm "shard_elements_total" <> cfg.n_elements then
            Alcotest.failf "%s %s: shard_elements_total=%d, stream had %d" ctx vn
              (Metrics.counter_value sm "shard_elements_total")
              cfg.n_elements)
        variants)
    (engines_for cfg.dim)

let cfg_gen =
  QCheck.Gen.(
    let* seed = int_range 1 1_000_000 in
    let* dim = int_range 1 2 in
    let* shards = int_range 1 5 in
    let* kind =
      if Executor.domains_available then
        map (fun b -> if b then Executor.Domains else Executor.Seq) bool
      else return Executor.Seq
    in
    let* m = int_range 1 50 in
    let* domain = int_range 2 24 in
    let* max_weight = int_range 1 50 in
    let* max_tau = int_range 1 500 in
    let* n_elements = int_range 0 250 in
    let* p_term = float_bound_inclusive 0.15 in
    let* p_reg = float_bound_inclusive 0.2 in
    return { seed; dim; shards; kind; m; domain; max_weight; max_tau; n_elements; p_term; p_reg })

let prop_shard_equivalence =
  QCheck.Test.make ~count:(Qcheck_env.count 40)
    ~name:"sharded engine = unsharded engine (matured, weights, counters)"
    (QCheck.make
       ~print:(fun c ->
         Printf.sprintf "seed=%d dim=%d k=%d exec=%s m=%d domain=%d maxw=%d maxtau=%d n=%d"
           c.seed c.dim c.shards (exec_str c.kind) c.m c.domain c.max_weight c.max_tau
           c.n_elements)
       cfg_gen)
    (fun cfg ->
      episode cfg;
      true)

(* ---- pinned-seed Scenario regressions ------------------------------ *)

(* RTS_SHARD_SEEDS widens the pinned list (same idiom as RTS_FAULT_SEEDS /
   RTS_NET_SEEDS); `make check-shard` and the CI shard-equivalence job
   pin it explicitly. *)
let shard_seeds =
  match Sys.getenv_opt "RTS_SHARD_SEEDS" with
  | None | Some "" -> [ 5; 17; 91 ]
  | Some s ->
      String.split_on_char ',' s
      |> List.filter_map (fun x ->
             match String.trim x with "" -> None | x -> Some (int_of_string x))

let factories_for dim =
  match dim with
  | 1 ->
      [
        ("baseline", fun ~dim -> Baseline_engine.make ~dim);
        ("dt", fun ~dim -> Dt_engine.make ~dim);
        ("interval-tree", fun ~dim:_ -> Stab1d_engine.make ());
      ]
  | _ ->
      [
        ("baseline", fun ~dim -> Baseline_engine.make ~dim);
        ("dt", fun ~dim -> Dt_engine.make ~dim);
        ("seg-intv", fun ~dim:_ -> Stab2d_engine.make ());
        ("r-tree", fun ~dim -> Rtree_engine.make ~dim);
      ]

(* The sharded maturity log — timestamps included — must equal the
   unsharded one verbatim: same ids on the same elements, attributed at
   the same batch barriers, for every k, partition, executor and batch
   size. Element partitioning uses uniform cuts over the generator's key
   domain, the same geometry the par bench sweeps. *)
let scenario_equivalence ~dim ~seed ~batch ?(ks = [ 1; 2; 4 ]) () =
  let cfg =
    {
      Scenario.default with
      Scenario.dim;
      seed;
      initial_queries = 250;
      tau = 2_500;
      mode = Scenario.Stochastic { p_ins = 0.3; horizon = 1_600 };
      max_elements = 2_400;
      chunk = 256;
      batch;
    }
  in
  List.iter
    (fun (name, base) ->
      let reference = Scenario.run cfg base in
      List.iter
        (fun shards ->
          let partitions =
            [
              ("queries", Shard.Queries);
              ( "elements",
                Shard.Elements (Range_router.uniform_cuts ~shards ~lo:0.0 ~hi:Generator.domain) );
            ]
          in
          List.iter
            (fun kind ->
              List.iter
                (fun (pname, partition) ->
                  let make, close_all = Shard.factory ~executor:kind ~partition ~shards base in
                  let r = Fun.protect ~finally:close_all (fun () -> Scenario.run cfg make) in
                  Alcotest.(check (list (pair int int)))
                    (Printf.sprintf "%s d=%d seed=%d batch=%d k=%d %s/%s: maturity log verbatim"
                       name dim seed batch shards (exec_str kind) pname)
                    reference.Scenario.maturity_log r.Scenario.maturity_log;
                  Alcotest.(check int)
                    (Printf.sprintf "%s d=%d seed=%d batch=%d k=%d %s/%s: element count" name dim
                       seed batch shards (exec_str kind) pname)
                    reference.Scenario.elements r.Scenario.elements)
                partitions)
            executors)
        ks)
    (factories_for dim)

let test_scenario_pinned () =
  List.iter
    (fun seed ->
      scenario_equivalence ~dim:1 ~seed ~batch:1 ();
      scenario_equivalence ~dim:1 ~seed ~batch:64 ())
    shard_seeds;
  match shard_seeds with
  | seed :: _ ->
      (* k=8 spot check — the top of the par bench sweep — plus one 2D
         rotation (cheaper than the full cross product) *)
      scenario_equivalence ~dim:1 ~seed ~batch:64 ~ks:[ 8 ] ();
      scenario_equivalence ~dim:2 ~seed ~batch:64 ()
  | [] -> ()

(* ---- wrapper composition ------------------------------------------ *)

(* Durable.wrap around Shard.engine: log ops, recover the WAL into a
   FRESH sharded engine (Shard.factory as ~make), and the recovered
   engine must continue the stream exactly like an unsharded engine that
   saw everything. *)
let test_durable_composition () =
  let dim = 1 in
  let rng = Prng.create ~seed:77 in
  let queries = List.init 40 (fun id -> gen_query rng ~dim ~domain:10 ~max_tau:400 ~id) in
  let part1 = Array.init 150 (fun _ -> gen_elem rng ~dim ~domain:10 ~max_weight:3) in
  let part2 = Array.init 150 (fun _ -> gen_elem rng ~dim ~domain:10 ~max_weight:3) in
  let make, close_all = Shard.factory ~shards:3 (fun ~dim -> Dt_engine.make ~dim) in
  Fun.protect ~finally:close_all @@ fun () ->
  let dir = Io.mem_dir () in
  let wrapped, h = Durable.wrap ~dir (make ~dim) in
  let plain = (Dt_engine.make ~dim : Engine.t) in
  wrapped.register_batch queries;
  plain.register_batch queries;
  Alcotest.(check (list int))
    "sharded+durable matures like unsharded (part 1)" (plain.feed_batch part1)
    (wrapped.feed_batch part1);
  Durable.close h;
  (* recover into a fresh sharded engine and continue the stream *)
  let recovered, _report = Recovery.recover ~dim ~make ~dir () in
  Alcotest.(check int) "recovered alive count" (plain.alive ()) (recovered.Engine.alive ());
  Alcotest.(check (list int))
    "recovered sharded engine continues bit-identically (part 2)" (plain.feed_batch part2)
    (recovered.Engine.feed_batch part2);
  Alcotest.(check int) "alive after part 2" (plain.alive ()) (recovered.Engine.alive ())

(* Net_shadow.wrap over a sharded engine: the networked protocol must
   land every maturity on the same element as the sharded engine (wrap
   raises on divergence), with zero mismatches on lossless links. *)
let test_net_shadow_composition () =
  let dim = 1 in
  let rng = Prng.create ~seed:31 in
  let queries = List.init 25 (fun id -> gen_query rng ~dim ~domain:8 ~max_tau:120 ~id) in
  let elems = Array.init 400 (fun _ -> gen_elem rng ~dim ~domain:8 ~max_weight:3) in
  let make, close_all = Shard.factory ~shards:2 (fun ~dim -> Dt_engine.make ~dim) in
  Fun.protect ~finally:close_all @@ fun () ->
  let shadow = Net_shadow.create ~config:{ Net_shadow.default with seed = 5 } ~dim () in
  let e = Net_shadow.wrap shadow (make ~dim) in
  e.Engine.register_batch queries;
  let matured = ref 0 in
  Array.iter (fun el -> matured := !matured + List.length (e.Engine.process el)) elems;
  Alcotest.(check bool) "some queries matured" true (!matured > 0);
  Alcotest.(check int) "no engine/shadow mismatches" 0 (Net_shadow.mismatches shadow);
  Alcotest.(check bool) "never early" true (Net_shadow.never_early_ok shadow)

(* ---- shard metrics + lifecycle ------------------------------------ *)

let test_shard_surface () =
  let rng = Prng.create ~seed:9 in
  let queries = List.init 30 (fun id -> gen_query rng ~dim:1 ~domain:8 ~max_tau:10_000 ~id) in
  let elems = Array.init 100 (fun _ -> gen_elem rng ~dim:1 ~domain:8 ~max_weight:2) in
  List.iter
    (fun kind ->
      let sh = Shard.create ~executor:kind ~shards:3 ~dim:1 (fun ~dim -> Dt_engine.make ~dim) in
      let e = Shard.engine sh in
      let expected_name =
        "dt+k3" ^ (match kind with Executor.Domains -> "/domains" | Executor.Seq -> "")
      in
      Alcotest.(check string) "engine name" expected_name e.Engine.name;
      e.Engine.register_batch queries;
      ignore (e.Engine.feed_batch elems);
      ignore (e.Engine.process elems.(0));
      (* placement accessors agree with the hash and with each other *)
      List.iter
        (fun (q : Types.query) ->
          Alcotest.(check int) "owner = rendezvous" (Rendezvous.owner ~shards:3 q.id)
            (Shard.owner sh q.id))
        queries;
      let per = Shard.queries_per_shard sh in
      Alcotest.(check int) "per-shard alive sums to total" (e.Engine.alive ())
        (Array.fold_left ( + ) 0 per);
      Alcotest.(check int) "per_shard_metrics arity" 3
        (Array.length (Shard.per_shard_metrics sh));
      let m = e.Engine.metrics () in
      let c name = Metrics.counter_value m name in
      Alcotest.(check int) "stream elements counted once" 101 (c "shard_elements_total");
      Alcotest.(check int) "one stream batch" 1 (c "shard_batches_total");
      Alcotest.(check int) "registered through the layer" 30 (c "shard_registered_total");
      (match Metrics.get m "shard_count" with
      | Some (Metrics.Gauge g) -> Alcotest.(check (float 0.0)) "shard_count gauge" 3.0 g
      | _ -> Alcotest.fail "shard_count gauge missing");
      (match Metrics.get m "alive" with
      | Some (Metrics.Gauge g) ->
          Alcotest.(check (float 0.0))
            "alive gauge is the true total"
            (float_of_int (e.Engine.alive ()))
            g
      | _ -> Alcotest.fail "alive gauge missing");
      (* every shard really scans the whole stream: merged inner
         elements_total reads k * n by design *)
      Alcotest.(check int) "merged inner elements_total = k*n" (3 * 101) (c "elements_total");
      Shard.close sh;
      Shard.close sh (* idempotent *);
      Alcotest.check_raises "ops raise after close" (Invalid_argument "Shard: engine is closed")
        (fun () -> ignore (e.Engine.alive ())))
    executors

(* Element-partitioned surface: naming, pinning, forwarding accounting.
   With cuts {3, 7} inside an 8-wide key domain most generated queries
   straddle a cut, so forwarding and the straddler gauge are exercised
   for real. *)
let test_range_surface () =
  let rng = Prng.create ~seed:9 in
  let queries = List.init 30 (fun id -> gen_query rng ~dim:1 ~domain:8 ~max_tau:10_000 ~id) in
  let elems = Array.init 100 (fun _ -> gen_elem rng ~dim:1 ~domain:8 ~max_weight:2) in
  List.iter
    (fun kind ->
      let cuts = [| 3.; 7. |] in
      let sh =
        Shard.create ~executor:kind ~partition:(Shard.Elements cuts) ~shards:3 ~dim:1 (fun ~dim ->
            Dt_engine.make ~dim)
      in
      let e = Shard.engine sh in
      let expected_name =
        "dt+k3/range" ^ (match kind with Executor.Domains -> "/domains" | Executor.Seq -> "")
      in
      Alcotest.(check string) "engine name" expected_name e.Engine.name;
      Alcotest.(check int) "worker domain count"
        (match kind with Executor.Domains -> 3 | Executor.Seq -> 1)
        (Shard.worker_domains sh);
      (match Shard.partition sh with
      | Shard.Elements c -> Alcotest.(check (array (float 0.))) "cuts round-trip" cuts c
      | Shard.Queries -> Alcotest.fail "partition should be Elements");
      e.Engine.register_batch queries;
      ignore (e.Engine.feed_batch elems);
      ignore (e.Engine.process elems.(0));
      (* alive queries are pinned to the shard owning their low endpoint *)
      List.iter
        (fun (q : Types.query) ->
          match Shard.owner sh q.id with
          | s ->
              let lo = q.rect.Types.lo.(0) in
              let expected = (if lo >= 3. then 1 else 0) + if lo >= 7. then 1 else 0 in
              Alcotest.(check int) "pinned to the low-endpoint owner" expected s
          | exception Not_found -> () (* matured queries have left the router *))
        queries;
      let m = e.Engine.metrics () in
      let c name = Metrics.counter_value m name in
      Alcotest.(check int) "stream elements counted once" 101 (c "shard_elements_total");
      (* routed mode: merged inner elements_total is the stream plus
         boundary forwarding, never the k-fold replication *)
      Alcotest.(check int) "inner elements_total = stream + forwarded"
        (101 + c "shard_forwarded_total")
        (c "elements_total");
      Alcotest.(check bool) "forwarding happened (straddling workload)" true
        (c "shard_forwarded_total" > 0);
      (match Metrics.get m "shard_straddlers" with
      | Some (Metrics.Gauge g) -> Alcotest.(check bool) "straddler gauge is sane" true (g >= 0.)
      | _ -> Alcotest.fail "shard_straddlers gauge missing");
      Alcotest.check_raises "terminate unknown id raises" Not_found (fun () ->
          e.Engine.terminate 424_242);
      Shard.close sh;
      Shard.close sh (* idempotent *))
    executors

let test_create_validation () =
  Alcotest.check_raises "shards < 1" (Invalid_argument "Shard.create: shards < 1") (fun () ->
      ignore (Shard.create ~shards:0 ~dim:1 (fun ~dim -> Baseline_engine.make ~dim)));
  Alcotest.check_raises "dim < 1" (Invalid_argument "Shard.create: dim < 1") (fun () ->
      ignore (Shard.create ~shards:2 ~dim:0 (fun ~dim -> Baseline_engine.make ~dim)));
  (* element-partition cut validation fires before any engine or domain
     is created *)
  Alcotest.check_raises "element partition: wrong cut count"
    (Invalid_argument "Range_router: 3 shards need 2 cut points, got 1") (fun () ->
      ignore
        (Shard.create ~partition:(Shard.Elements [| 5. |]) ~shards:3 ~dim:1 (fun ~dim ->
             Baseline_engine.make ~dim)));
  Alcotest.check_raises "element partition: non-increasing cuts"
    (Invalid_argument "Range_router: cut points must be strictly increasing") (fun () ->
      ignore
        (Shard.create ~partition:(Shard.Elements [| 5.; 5. |]) ~shards:3 ~dim:1 (fun ~dim ->
             Baseline_engine.make ~dim)))

let () =
  Alcotest.run "shard"
    [
      ( "rendezvous",
        [
          Alcotest.test_case "owner range + determinism" `Quick test_rendezvous_range;
          Alcotest.test_case "balance" `Quick test_rendezvous_balance;
          Alcotest.test_case "k -> k+1 moves ids only to the new shard" `Quick
            test_rendezvous_monotone;
        ] );
      ( "executor",
        [
          Alcotest.test_case "slot order, exceptions, close" `Quick test_executor_basics;
          Alcotest.test_case "kind strings" `Quick test_executor_strings;
          Alcotest.test_case "post/barrier contract" `Quick test_executor_post_barrier;
          Alcotest.test_case "teardown after raising tasks leaks no domains" `Slow
            test_executor_teardown_leak;
          Alcotest.test_case "Shard.create closes the pool when a factory raises" `Slow
            test_shard_create_no_leak;
        ] );
      ( "routing",
        [
          Alcotest.test_case "spsc ring" `Quick test_spsc_ring;
          Alcotest.test_case "owner + span arithmetic" `Quick test_router_owner;
          Alcotest.test_case "straddler subscriptions" `Quick test_router_subscriptions;
          Alcotest.test_case "validation + uniform cuts" `Quick test_router_validation;
        ] );
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_shard_equivalence;
          Alcotest.test_case "empty batches are no-ops everywhere" `Quick test_empty_batch;
          Alcotest.test_case
            "pinned seeds: maturity log verbatim (k x partition x executor x batch)" `Slow
            test_scenario_pinned;
        ] );
      ( "composition",
        [
          Alcotest.test_case "durable wrap + recovery into sharded engine" `Quick
            test_durable_composition;
          Alcotest.test_case "net shadow over sharded engine" `Quick test_net_shadow_composition;
        ] );
      ( "surface",
        [
          Alcotest.test_case "metrics, names, placement, close" `Quick test_shard_surface;
          Alcotest.test_case "element-partitioned surface" `Quick test_range_surface;
          Alcotest.test_case "create validation" `Quick test_create_validation;
        ] );
    ]
